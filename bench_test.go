// Benchmark harness: one benchmark per experiment in DESIGN.md §6.
//
// F1–F3/E5 regenerate the paper's figures end to end; B1–B6 are the
// engine-evaluation benchmarks (the paper has no performance tables, so
// these are the tables a systems venue would have demanded: fixpoint
// strategies, ordered-vs-classical overhead, grounding modes, stable-model
// search, and inheritance scaling). cmd/olpbench prints the same sweeps as
// readable tables with derived metrics.
package ordlog_test

import (
	"fmt"
	"testing"

	ordlog "repro"
	"repro/internal/classical"
	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/stable"
	"repro/internal/transform"
	"repro/internal/workload"
)

// --- F1–F3, E5: the paper's figures as end-to-end benchmarks ---

const fig1Src = `
module birds {
  bird(penguin). bird(pigeon).
  fly(X) :- bird(X).
  -ground_animal(X) :- bird(X).
}
module arctic extends birds {
  ground_animal(penguin).
  -fly(X) :- ground_animal(X).
}
`

const fig2Src = `
module c3 { rich(mimmo). -poor(X) :- rich(X). }
module c2 { poor(mimmo). -rich(X) :- poor(X). }
module c1 extends c2, c3 { free_ticket(X) :- poor(X). }
`

const fig3Src = `
module expert2 { take_loan :- inflation(X), X > 11. }
module expert4 { -take_loan :- loan_rate(X), X > 14. }
module expert3 extends expert4 {
  take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
}
module myself extends expert2, expert3 {
  inflation(19). loan_rate(16).
}
`

const ex5Src = `
module c2 { a. b. c. }
module c1 extends c2 {
  -a :- b, c.
  -b :- a.
  -b :- -b.
}
`

func benchLeast(b *testing.B, src, comp string) {
	b.Helper()
	prog, err := ordlog.ParseProgram(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := ordlog.NewEngine(prog, ordlog.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.LeastModel(comp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1Penguin(b *testing.B)   { benchLeast(b, fig1Src, "arctic") }
func BenchmarkFig2Defeating(b *testing.B) { benchLeast(b, fig2Src, "c1") }
func BenchmarkFig3Loan(b *testing.B)      { benchLeast(b, fig3Src, "myself") }

func BenchmarkEx5Stable(b *testing.B) {
	prog, err := ordlog.ParseProgram(ex5Src)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := ordlog.NewEngine(prog, ordlog.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := eng.StableModels("c1", ordlog.EnumOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) != 2 {
			b.Fatalf("want 2 stable models, got %d", len(ms))
		}
	}
}

// --- B1: least-model fixpoint, semi-naive vs naive ---

func ovView(b *testing.B, rules []*ordlog.Rule) *eval.View {
	b.Helper()
	ov, err := transform.OV("c", rules)
	if err != nil {
		b.Fatal(err)
	}
	g, err := ground.Ground(ov, ground.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	v, err := eval.NewViewByName(g, "c")
	if err != nil {
		b.Fatal(err)
	}
	return v
}

func BenchmarkB1FixpointSemiNaive(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("anc_n=%d", n), func(b *testing.B) {
			v := ovView(b, workload.AncestorChain(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.LeastModel(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkB1FixpointNaive(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("anc_n=%d", n), func(b *testing.B) {
			v := ovView(b, workload.AncestorChain(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.LeastModelNaive(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B2: ordered OV vs classical baselines on ancestor ---

func BenchmarkB2OrderedOV(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("anc_n=%d", n), func(b *testing.B) {
			rules := workload.AncestorChain(n)
			ov, err := transform.OV("c", rules)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := ground.Ground(ov, ground.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				v, err := eval.NewViewByName(g, "c")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := v.LeastModel(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkB2ClassicalStratified(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("anc_n=%d", n), func(b *testing.B) {
			rules := workload.AncestorChain(n)
			strat, err := classical.Stratify(rules)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := classical.GroundRules(rules, classical.Options{})
				if err != nil {
					b.Fatal(err)
				}
				_ = p.StratifiedModel(strat)
			}
		})
	}
}

func BenchmarkB2ClassicalWellFounded(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("anc_n=%d", n), func(b *testing.B) {
			rules := workload.AncestorChain(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := classical.GroundRules(rules, classical.Options{})
				if err != nil {
					b.Fatal(err)
				}
				_ = p.WellFounded()
			}
		})
	}
}

// --- B3: grounding, smart vs full, on a mixed-domain EDB ---

// mixedDomain is an ancestor chain over n constants plus m unrelated
// item facts: relevance grounding ignores the items when instantiating the
// recursive rule, exhaustive grounding pays (n+m)^3.
func mixedDomain(n, m int) []*ordlog.Rule {
	rules := workload.AncestorChain(n)
	for j := 0; j < m; j++ {
		lit, err := ordlog.ParseLiteral(fmt.Sprintf("item(d%d)", j))
		if err != nil {
			panic(err)
		}
		rules = append(rules, &ordlog.Rule{Head: lit})
	}
	return rules
}

func BenchmarkB3GroundingSmart(b *testing.B) {
	for _, nm := range [][2]int{{8, 8}, {8, 24}, {16, 16}, {16, 48}} {
		b.Run(fmt.Sprintf("n=%d_m=%d", nm[0], nm[1]), func(b *testing.B) {
			ov, err := transform.OV("c", mixedDomain(nm[0], nm[1]))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ground.Ground(ov, ground.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkB3GroundingFull(b *testing.B) {
	for _, nm := range [][2]int{{8, 8}, {8, 24}, {16, 16}, {16, 48}} {
		b.Run(fmt.Sprintf("n=%d_m=%d", nm[0], nm[1]), func(b *testing.B) {
			ov, err := transform.OV("c", mixedDomain(nm[0], nm[1]))
			if err != nil {
				b.Fatal(err)
			}
			opts := ground.DefaultOptions()
			opts.Mode = ground.ModeFull
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ground.Ground(ov, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B4: stable-model enumeration on win–move ---

func BenchmarkB4StableWinMoveCycle(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("cycle_n=%d", n), func(b *testing.B) {
			rules := workload.WinMove(workload.CycleEdges(n))
			ov, err := transform.OV("c", rules)
			if err != nil {
				b.Fatal(err)
			}
			g, err := ground.Ground(ov, ground.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			v, err := eval.NewViewByName(g, "c")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stable.StableModels(v, stable.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkB4StableClassicalGL(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("cycle_n=%d", n), func(b *testing.B) {
			rules := workload.WinMove(workload.CycleEdges(n))
			p, err := classical.GroundRules(rules, classical.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.StableModelsTotal(classical.StableOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B5: well-founded vs ordered least model on win–move chains ---

func BenchmarkB5OrderedWinMoveChain(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("chain_n=%d", n), func(b *testing.B) {
			rules := workload.WinMove(workload.ChainEdges(n))
			ov, err := transform.OV("c", rules)
			if err != nil {
				b.Fatal(err)
			}
			g, err := ground.Ground(ov, ground.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			v, err := eval.NewViewByName(g, "c")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.LeastModel(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkB5WellFoundedWinMoveChain(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("chain_n=%d", n), func(b *testing.B) {
			p, err := classical.GroundRules(workload.WinMove(workload.ChainEdges(n)), classical.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = p.WellFounded()
			}
		})
	}
}

// --- B6: inheritance hierarchies with exceptions ---

func BenchmarkB6Inheritance(b *testing.B) {
	for _, cfg := range [][3]int{{2, 4, 8}, {4, 4, 8}, {8, 4, 8}, {8, 8, 16}} {
		depth, props, members := cfg[0], cfg[1], cfg[2]
		b.Run(fmt.Sprintf("depth=%d_props=%d_members=%d", depth, props, members), func(b *testing.B) {
			p := workload.Inheritance(depth, props, members)
			g, err := ground.Ground(p, ground.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			v, err := eval.NewViewByName(g, "lvl0")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.LeastModel(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
