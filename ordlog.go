// Package ordlog is an ordered logic programming engine: a complete Go
// implementation of "Extending Logic Programming" (Laenens, Saccà, Vermeir,
// SIGMOD 1990).
//
// An ordered logic program is a partially ordered set of modules
// (components), each a logic program whose rules may carry classical
// negation in heads as well as bodies. A component inherits the rules of
// every component above it; contradictions are resolved by overruling
// (a more specific rule wins) and defeating (unordered contradicting rules
// silence each other). The declarative semantics is three-valued: a
// program has a least model, a family of assumption-free models, and
// stable models (the maximal assumption-free ones).
//
// # Quick start
//
//	prog, err := ordlog.Parse(`
//	    module birds {
//	        bird(penguin).  bird(pigeon).
//	        fly(X) :- bird(X).
//	        -ground_animal(X) :- bird(X).
//	    }
//	    module arctic extends birds {
//	        ground_animal(penguin).
//	        -fly(X) :- ground_animal(X).
//	    }
//	`)
//	eng, err := ordlog.NewEngine(prog.Program, ordlog.Config{})
//	m, err := eng.LeastModel("arctic")
//	fmt.Println(m) // {-fly(penguin), ..., fly(pigeon), ...}
//
// The classical semantics the paper subsumes are available through the
// translations OV, EV and ThreeV (§3–§4 of the paper) and through the
// baseline implementations in internal/classical.
//
// # Snapshots and updates
//
// The fact base of an Engine is maintained through immutable versioned
// snapshots. Engine.Update and Engine.Retract assert and remove ground
// facts without rebuilding the engine: each returns a new *Snapshot that
// shares the interned-term storage — and, for every component unaffected
// by the change, the memoised views and least models — with its parent.
// Every Engine query method reads the current snapshot; callers that need
// several queries to agree on one version pin it with Engine.Current and
// query the snapshot directly:
//
//	snap, err := eng.Update(ctx, "birds", facts)
//	m, err := snap.LeastModel("arctic") // this version, whatever happens next
//
// # Concurrency
//
// An Engine is safe for concurrent shared use, including concurrent
// updates: writers are serialised among themselves and never block
// readers, and a reader keeps the snapshot it pinned. Per-component views
// and least models are memoised with singleflight semantics, and the
// batched front ends (Engine.QueryBatch, Engine.LeastModelAll,
// Engine.ProveBatch, Engine.StableModelsParallel) fan independent work
// over a bounded worker pool against one pinned snapshot each. Returned
// models are shared and must be treated as read-only. See README.md
// "Concurrency" for the full contract.
package ordlog

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analyze"
	"repro/internal/ast"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/interrupt"
	"repro/internal/parser"
	"repro/internal/stable"
	"repro/internal/transform"
	"repro/internal/wal"
)

// Cancellation sentinels. Every Engine method has a ...Ctx variant that
// honours context cancellation and deadlines at cooperative checkpoints;
// when one fires, the returned error matches ErrInterrupted (and also
// context.Canceled / context.DeadlineExceeded via Unwrap). Enumeration
// entry points return whatever partial models were found alongside the
// error — the same graceful-degradation contract as ErrEnumBudget.
var (
	// ErrInterrupted matches any context-induced interruption.
	ErrInterrupted = interrupt.ErrInterrupted
	// ErrEnumBudget reports that stable/assumption-free enumeration
	// exceeded its leaf budget; partial models accompany it.
	ErrEnumBudget = stable.ErrBudget
	// ErrVersionUnknown reports a version never published (ahead of the
	// tip); Engine.AsOf and Tenant.AsOf wrap it.
	ErrVersionUnknown = core.ErrVersionUnknown
	// ErrVersionEvicted reports a version that existed but is no longer
	// reconstructible (no durability, or it predates every checkpoint).
	ErrVersionEvicted = core.ErrVersionEvicted
	// ErrWALCorrupt reports CRC, hash-chain, or checkpoint damage in a
	// durability directory.
	ErrWALCorrupt = wal.ErrCorrupt
)

// IsInterrupted reports whether err records a context interruption.
func IsInterrupted(err error) bool { return interrupt.IsInterrupted(err) }

// Re-exported core types. See the respective internal packages for the
// full method sets.
type (
	// Program is a parsed ordered program.
	Program = ast.OrderedProgram
	// Component is one module of an ordered program.
	Component = ast.Component
	// Rule is a (possibly negative) rule.
	Rule = ast.Rule
	// Literal is an atom or its classical negation.
	Literal = ast.Literal
	// Atom is a predicate applied to terms.
	Atom = ast.Atom
	// Query is a conjunctive goal.
	Query = ast.Query
	// Engine evaluates a grounded ordered program.
	Engine = core.Engine
	// Snapshot is one immutable version of an engine's fact base.
	Snapshot = core.Snapshot
	// Config configures engine construction.
	Config = core.Config
	// Option is a functional engine option (WithWorkers, WithEnumBudget,
	// WithTrace) applied on top of a Config by NewEngine.
	Option = core.Option
	// ConfigError reports the invalid Config field that made NewEngine
	// reject a configuration; inspect it with errors.As.
	ConfigError = core.ConfigError
	// Model is a (possibly partial) model in one component.
	Model = core.Model
	// Binding maps query variables to ground terms.
	Binding = core.Binding
	// GroundOptions configures the grounder.
	GroundOptions = ground.Options
	// EnumOptions bounds stable-model enumeration.
	EnumOptions = stable.Options
	// ParallelEnumOptions adds a worker count to EnumOptions.
	ParallelEnumOptions = stable.ParallelOptions
	// BatchOptions sizes the worker pool of the batched query APIs.
	BatchOptions = batch.Options
	// QueryRequest is one unit of Engine.QueryBatch.
	QueryRequest = core.QueryRequest
	// QueryResult is the outcome of one QueryRequest.
	QueryResult = core.QueryResult
	// Consequences holds cautious/brave stable inference results.
	Consequences = core.Consequences
	// Diagnostic is one static-analysis finding.
	Diagnostic = analyze.Diagnostic
	// Value is a three-valued truth value.
	Value = interp.Value
	// ParseResult is a parsed program together with its queries.
	ParseResult = parser.Result
)

// Three-valued truth values with the ordering False < Undef < True.
const (
	False = interp.False
	Undef = interp.Undef
	True  = interp.True
)

// Grounding modes.
const (
	// ModeSmart grounds only relevant instances (the default).
	ModeSmart = ground.ModeSmart
	// ModeFull grounds exhaustively over the whole Herbrand universe.
	ModeFull = ground.ModeFull
)

// Parse parses ordered-program source text: module blocks with extends /
// order declarations, rules, and optional ?- queries.
func Parse(src string) (*ParseResult, error) { return parser.Parse(src) }

// ParseProgram parses source that must not contain queries.
func ParseProgram(src string) (*Program, error) { return parser.ParseProgram(src) }

// ParseFile reads and parses a .olp file.
func ParseFile(path string) (*ParseResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parser.Parse(string(b))
}

// ParseFiles reads several .olp files as one program: module blocks with
// the same name accumulate across files (the parser's reopening rule), and
// queries from all files are concatenated in order. Useful for splitting a
// knowledge base into per-module files.
func ParseFiles(paths ...string) (*ParseResult, error) {
	var src strings.Builder
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		src.Write(b)
		src.WriteByte('\n')
	}
	return parser.Parse(src.String())
}

// ParseRule parses a single clause such as "fly(X) :- bird(X).".
func ParseRule(src string) (*Rule, error) { return parser.ParseRule(src) }

// ParseLiteral parses a single literal such as "-fly(penguin)".
func ParseLiteral(src string) (Literal, error) { return parser.ParseLiteral(src) }

// NewEngine grounds a program and returns an evaluation engine. The
// functional options are applied on top of cfg; an invalid configuration
// is rejected with a *ConfigError.
func NewEngine(p *Program, cfg Config, opts ...Option) (*Engine, error) {
	return core.NewEngine(p, cfg, opts...)
}

// NewEngineCtx is NewEngine with cooperative cancellation of the grounding
// phase.
func NewEngineCtx(ctx context.Context, p *Program, cfg Config, opts ...Option) (*Engine, error) {
	return core.NewEngineCtx(ctx, p, cfg, opts...)
}

// WithWorkers returns an Option setting the default worker-pool size used
// by the batched entry points and parallel enumeration whenever a call
// leaves its own Workers field zero.
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// WithEnumBudget returns an Option setting the default leaf budget for
// stable and assumption-free enumeration whenever a call leaves
// EnumOptions.MaxLeaves zero.
func WithEnumBudget(n int) Option { return core.WithEnumBudget(n) }

// WithTrace returns an Option directing one line per engine lifecycle
// event (grounding, updates, least-model computations) to w.
func WithTrace(w io.Writer) Option { return core.WithTrace(w) }

// WithShards returns an Option running grounding and least-model fixpoints
// sharded over n parallel workers (atoms and rule instances partitioned by
// first-argument term id). Results are identical to the sequential
// engine's; n <= 1 keeps evaluation sequential.
func WithShards(n int) Option { return core.WithShards(n) }

// SyncPolicy selects when the write-ahead log fsyncs: SyncAlways after
// every append (an acknowledged update is on disk), SyncInterval on a
// background cadence (bounded loss window, near-memory throughput).
type SyncPolicy = wal.SyncPolicy

// Sync policies for WithSync.
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
)

// WithDurability returns an Option attaching a write-ahead log under dir:
// every Update/Retract batch is appended (length-prefixed, CRC-guarded,
// SHA-256 hash-chained) before its snapshot is published, and periodic
// checkpoints bound recovery replay. Restore a directory with Recover.
func WithDurability(dir string) Option { return core.WithDurability(dir) }

// WithCheckpointEvery returns an Option setting the checkpoint cadence (a
// snapshot of the effective program every n logged updates). Requires
// WithDurability.
func WithCheckpointEvery(n int) Option { return core.WithCheckpointEvery(n) }

// WithSync returns an Option selecting the WAL fsync policy. Requires
// WithDurability.
func WithSync(p SyncPolicy) Option { return core.WithSync(p) }

// WithDurableName returns an Option seeding the WAL hash chain with a
// tenant name, isolating histories that share a filesystem. Requires
// WithDurability.
func WithDurableName(name string) Option { return core.WithDurableName(name) }

// WithRotateRecords returns an Option rotating the WAL to a fresh segment
// every n records, bounding per-file size under sustained churn. Requires
// WithDurability; 0 keeps the single-file layout.
func WithRotateRecords(n int) Option { return core.WithRotateRecords(n) }

// WithRotateBytes returns an Option rotating the WAL to a fresh segment
// once the current one reaches n bytes. Requires WithDurability; 0 never
// rotates by size.
func WithRotateBytes(n int64) Option { return core.WithRotateBytes(n) }

// WithKeepCheckpoints returns an Option retaining only the newest n
// checkpoints and pruning WAL segments wholly covered by the survivors,
// bounding the on-disk footprint. AsOf reads below the pruned horizon
// report ErrVersionEvicted. Requires WithDurability; 0 keeps everything.
func WithKeepCheckpoints(n int) Option { return core.WithKeepCheckpoints(n) }

// WithCompactEvery returns an Option compacting the engine's snapshot
// every n incremental updates: the retained update history is collapsed
// to its net effect and dead rule instances are dropped, bounding memory
// under sustained assert/retract churn. 0 disables count-driven
// compaction.
func WithCompactEvery(n int) Option { return core.WithCompactEvery(n) }

// WithCompactRatio returns an Option compacting the snapshot whenever the
// dead-instance fraction of the grounded program reaches r in (0, 1].
// 0 disables ratio-driven compaction.
func WithCompactRatio(r float64) Option { return core.WithCompactRatio(r) }

// Recover rebuilds a durable engine from a directory written by an engine
// constructed with WithDurability: load the newest checkpoint consistent
// with the log, replay the WAL suffix through the ordinary update path,
// and verify the hash chain end to end. See Engine.AsOf for time travel
// over the recovered history.
func Recover(ctx context.Context, dir string, cfg Config, opts ...Option) (*Engine, error) {
	return core.Recover(ctx, dir, cfg, opts...)
}

// ParseFacts parses module-free clauses (typically a bulk fact base) and
// returns them as literals suitable for Engine.Update. Every clause must
// be a ground fact.
func ParseFacts(src string) ([]Literal, error) {
	extra, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	if len(extra.Components) == 0 {
		return nil, nil
	}
	if len(extra.Components) != 1 || extra.Components[0].Name != parser.MainComponent {
		return nil, fmt.Errorf("fact source must be module-free")
	}
	rules, err := transform.FlattenSingle(extra)
	if err != nil {
		return nil, err
	}
	facts := make([]Literal, 0, len(rules))
	for _, r := range rules {
		if !r.IsFact() || !r.Head.Atom.Ground() {
			return nil, fmt.Errorf("not a ground fact: %s", r)
		}
		facts = append(facts, r.Head)
	}
	return facts, nil
}

// OV builds the ordered version of a seminegative program (§3): a
// closed-world component above the program, capturing the founded and
// stable 3-valued models of classical logic programming.
func OV(name string, rules []*Rule) (*Program, error) { return transform.OV(name, rules) }

// EV builds the extended version (§3): OV plus reflexive rules, capturing
// every 3-valued model.
func EV(name string, rules []*Rule) (*Program, error) { return transform.EV(name, rules) }

// ThreeV builds the 3-level version of a negative program (§4), reading
// negative rules as exceptions to the general seminegative rules.
func ThreeV(rules []*Rule) (*Program, error) { return transform.ThreeV(rules) }

// SingleComponent wraps a rule list as a one-component ordered program.
func SingleComponent(name string, rules []*Rule) *Program {
	return ast.SingleComponent(name, rules)
}

// Analyze runs the static diagnostics of internal/analyze: unsafe
// variables, undefined body predicates, defeat sources, empty components.
func Analyze(p *Program) []Diagnostic { return analyze.Program(p) }

// MergeFacts parses additional clauses (typically a bulk-loaded fact base)
// and appends them to the named component of an already-parsed program.
// Call before NewEngine; the program is modified in place.
//
// Deprecated: build the engine first and use Engine.Update, which applies
// the facts as an incremental snapshot without mutating the source program
// (mutating a Program after NewEngine has undefined results). MergeFacts
// keeps working for pre-engine bulk loading; ParseFacts converts the same
// source text into the literals Engine.Update takes.
func MergeFacts(p *Program, comp string, src string) error {
	extra, err := parser.ParseProgram(src)
	if err != nil {
		return err
	}
	if len(extra.Components) == 0 {
		return nil // nothing to merge
	}
	if len(extra.Components) != 1 || extra.Components[0].Name != parser.MainComponent {
		return fmt.Errorf("fact source must be module-free")
	}
	rules, err := transform.FlattenSingle(extra)
	if err != nil {
		return err
	}
	c := p.Component(comp)
	if c == nil {
		return fmt.Errorf("unknown component %q", comp)
	}
	c.Rules = append(c.Rules, rules...)
	return nil
}
