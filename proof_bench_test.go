// B8: goal-directed proof vs full materialisation. The top-down prover
// (internal/proof) answers a single query without computing the whole
// least model; this benchmark measures when that pays off on OV(ancestor).
package ordlog_test

import (
	"fmt"
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/proof"
	"repro/internal/transform"
	"repro/internal/workload"
)

func ancestorView(b *testing.B, n int) *eval.View {
	b.Helper()
	ov, err := transform.OV("c", workload.AncestorChain(n))
	if err != nil {
		b.Fatal(err)
	}
	g, err := ground.Ground(ov, ground.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	v, err := eval.NewViewByName(g, "c")
	if err != nil {
		b.Fatal(err)
	}
	return v
}

func ancLit(b *testing.B, v *eval.View, from, to int) interp.Lit {
	b.Helper()
	l, err := parser.ParseLiteral(fmt.Sprintf("anc(c%d, c%d)", from, to))
	if err != nil {
		b.Fatal(err)
	}
	id, ok := v.G.Tab.Lookup(l.Atom)
	if !ok {
		b.Fatalf("atom %s not interned", l.Atom)
	}
	return interp.MkLit(id, l.Neg)
}

func BenchmarkB8ProveSingleQuery(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("anc_n=%d", n), func(b *testing.B) {
			v := ancestorView(b, n)
			goal := ancLit(b, v, 0, n/2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr := proof.New(v, 0) // fresh memo: a cold single query
				ok, err := pr.Prove(goal)
				if err != nil || !ok {
					b.Fatalf("prove: %v %v", ok, err)
				}
			}
		})
	}
}

func BenchmarkB8MaterialiseThenQuery(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("anc_n=%d", n), func(b *testing.B) {
			v := ancestorView(b, n)
			goal := ancLit(b, v, 0, n/2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := v.LeastModel()
				if err != nil {
					b.Fatal(err)
				}
				if !m.HasLit(goal) {
					b.Fatal("goal not in least model")
				}
			}
		})
	}
}
