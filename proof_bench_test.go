// B8: goal-directed proof vs full materialisation. The top-down prover
// (internal/proof) answers a single query without computing the whole
// least model; this benchmark measures when that pays off on OV(ancestor).
package ordlog_test

import (
	"fmt"
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/proof"
	"repro/internal/transform"
	"repro/internal/workload"
)

func ancestorView(tb testing.TB, n int) *eval.View {
	tb.Helper()
	ov, err := transform.OV("c", workload.AncestorChain(n))
	if err != nil {
		tb.Fatal(err)
	}
	g, err := ground.Ground(ov, ground.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	v, err := eval.NewViewByName(g, "c")
	if err != nil {
		tb.Fatal(err)
	}
	return v
}

func ancLit(tb testing.TB, v *eval.View, from, to int) interp.Lit {
	tb.Helper()
	l, err := parser.ParseLiteral(fmt.Sprintf("anc(c%d, c%d)", from, to))
	if err != nil {
		tb.Fatal(err)
	}
	id, ok := v.G.Tab.Lookup(l.Atom)
	if !ok {
		tb.Fatalf("atom %s not interned", l.Atom)
	}
	return interp.MkLit(id, l.Neg)
}

func BenchmarkB8ProveSingleQuery(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("anc_n=%d", n), func(b *testing.B) {
			v := ancestorView(b, n)
			goal := ancLit(b, v, 0, n/2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr := proof.New(v, 0) // fresh memo: a cold single query
				ok, err := pr.Prove(goal)
				if err != nil || !ok {
					b.Fatalf("prove: %v %v", ok, err)
				}
			}
		})
	}
}

// BenchmarkB8ProveWarm re-proves a memoised goal on a reused prover. The
// DFS in-progress set is pooled on the Prover, so the warm path performs
// no allocations at all; TestProveWarmZeroAllocs pins that.
func BenchmarkB8ProveWarm(b *testing.B) {
	v := ancestorView(b, 32)
	goal := ancLit(b, v, 0, 16)
	pr := proof.New(v, 0)
	if ok, err := pr.Prove(goal); err != nil || !ok {
		b.Fatalf("warm-up prove: %v %v", ok, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, err := pr.Prove(goal); err != nil || !ok {
			b.Fatalf("prove: %v %v", ok, err)
		}
	}
}

// A warm re-proof must be allocation-free: results are memoised and the
// in-progress set is a pooled field, not a per-call map. This guard
// pinned a real regression — ProveCtx used to allocate a fresh map on
// every call, memo hit or not.
func TestProveWarmZeroAllocs(t *testing.T) {
	v := ancestorView(t, 32)
	goal := ancLit(t, v, 0, 16)
	pr := proof.New(v, 0)
	if ok, err := pr.Prove(goal); err != nil || !ok {
		t.Fatalf("warm-up prove: %v %v", ok, err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		ok, err := pr.Prove(goal)
		if err != nil || !ok {
			t.Fatalf("prove: %v %v", ok, err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm Prove allocated %.1f times per op, want 0", allocs)
	}
}

func BenchmarkB8MaterialiseThenQuery(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("anc_n=%d", n), func(b *testing.B) {
			v := ancestorView(b, n)
			goal := ancLit(b, v, 0, n/2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := v.LeastModel()
				if err != nil {
					b.Fatal(err)
				}
				if !m.HasLit(goal) {
					b.Fatal("goal not in least model")
				}
			}
		})
	}
}
