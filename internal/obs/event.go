package obs

import (
	"fmt"
	"strings"
)

// Event is one structured trace event: a name plus ordered key=value
// fields. Events render to the engine's historical line format ("name:
// k=v k=v"), so a trace consumer that greps for "ground:" or
// "mode=incremental" keeps working, while programmatic consumers can
// inspect fields by key.
type Field struct {
	Key string
	Val any
}

// F builds one event field. An empty key renders the bare value — used
// for positional fragments like the "v0 -> v1" version arrow in update
// events, which have no natural key in the line format.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Event is a named trace event with ordered fields.
type Event struct {
	Name   string
	Fields []Field
}

// E builds an event.
func E(name string, fields ...Field) Event { return Event{Name: name, Fields: fields} }

// String renders the event in the engine's line format: "name: k=v k=v",
// with empty-key fields contributing their bare value.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Name)
	b.WriteString(":")
	for _, f := range e.Fields {
		b.WriteByte(' ')
		if f.Key != "" {
			b.WriteString(f.Key)
			b.WriteByte('=')
		}
		fmt.Fprint(&b, f.Val)
	}
	return b.String()
}

// Get returns the value of the first field with the given key, or nil.
func (e Event) Get(key string) any {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Val
		}
	}
	return nil
}
