// Package obs is the engine-wide observability layer: a lock-cheap metrics
// registry (atomic counters and gauges plus a synchronised wrapper over the
// power-of-two batch.Histogram) and structured trace events.
//
// Metric names are dotted paths; the segment before the first dot is the
// metric family (ground, eval, storage, stable, core). Dynamic label values
// — e.g. the reason an incremental update fell back to regrounding — are
// appended as one more segment ("core.update.fallback.compound-args"), so
// an export stays a flat expvar-style JSON object.
//
// Hot paths do not look metrics up by name: each instrumented package
// resolves its counters once into package-level vars and accumulates
// locally, flushing one atomic add per counter at the end of an operation
// (a fixpoint run, a grounding pass, a join). The registry itself is safe
// for concurrent use; a counter add is a single atomic instruction.
//
// The package-wide Enabled flag (default on) lets a deployment shed even
// the batched atomic adds: instrumented call sites gate their flush on
// On(), which is one atomic load. Counters are process-global — snapshots
// taken with Registry.Snap and compared with Snap.Diff give per-operation
// deltas, which is how the differential counter-consistency tests and the
// olpbench -metrics mode use them.
package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
)

// enabled is the package-wide metrics switch (default on). It gates the
// batched flushes at instrumented call sites, not the registry itself:
// direct Counter.Add calls always count.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled flips the package-wide metrics switch.
func SetEnabled(on bool) { enabled.Store(on) }

// On reports whether metrics collection is enabled. One atomic load; hot
// paths call it once per operation, not per event.
func On() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic last-value metric.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Max raises the gauge to n if n is larger.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Hist is a mutex-synchronised wrapper over batch.Histogram, for latency
// metrics shared across goroutines (the raw histogram is per-worker by
// design and unsynchronised).
type Hist struct {
	mu sync.Mutex
	h  batch.Histogram
}

// Observe records one latency.
func (h *Hist) Observe(d time.Duration) {
	h.mu.Lock()
	h.h.Observe(d)
	h.mu.Unlock()
}

// Summary returns a copy of the underlying histogram, safe to read without
// further synchronisation.
func (h *Hist) Summary() batch.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h
}

// Registry is a named collection of metrics. Metric accessors get-or-create
// under an RWMutex; instrumented packages resolve their metrics once at init
// so steady-state operation never touches the maps.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// defaultRegistry is the process-global registry every engine layer
// publishes into.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Hist {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Hist{}
	r.hists[name] = h
	return h
}

// SanitizeSegment makes an arbitrary string — a tenant name, a file path —
// safe to splice into a dotted metric path as one segment: every byte
// outside [A-Za-z0-9_-] becomes '_' and the empty string becomes "_", so
// caller-controlled names can never add dots (which would shift the family
// prefix) or break the flat JSON export. The mapping is not injective;
// callers that need exact names keep them out of metric paths.
func SanitizeSegment(s string) string {
	if s == "" {
		return "_"
	}
	clean := true
	for i := 0; i < len(s); i++ {
		if !segmentByteOK(s[i]) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if !segmentByteOK(c) {
			b[i] = '_'
		}
	}
	return string(b)
}

func segmentByteOK(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

// Snap is a point-in-time reading of every integer-valued metric: counters
// and gauges under their own names, histograms contributing
// "<name>.count". Snapshots are plain maps — diff them, marshal them, or
// index them directly.
type Snap map[string]int64

// Snap captures the current value of every registered metric.
func (r *Registry) Snap() Snap {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := make(Snap, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		s[name] = c.Value()
	}
	for name, g := range r.gauges {
		s[name] = g.Value()
	}
	for name, h := range r.hists {
		sum := h.Summary()
		s[name+".count"] = sum.Count()
	}
	return s
}

// Diff returns s - prev per key: the counter deltas accumulated between the
// two snapshots. Keys absent from prev count from zero; zero deltas are
// dropped (gauges that did not move disappear from the diff).
func (s Snap) Diff(prev Snap) Snap {
	out := make(Snap)
	for k, v := range s {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// Get returns the value under name (0 when absent).
func (s Snap) Get(name string) int64 { return s[name] }

// histJSON is the JSON shape of one histogram in the export.
type histJSON struct {
	Count  int64 `json:"count"`
	MinNs  int64 `json:"min_ns"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// WriteJSON writes the registry as one flat, expvar-style JSON object:
// counters and gauges as numbers, histograms as {count, min_ns, mean_ns,
// p50_ns, p99_ns, max_ns} objects. Keys are sorted, so the export is
// deterministic for a fixed state.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	flat := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		flat[name] = c.Value()
	}
	for name, g := range r.gauges {
		flat[name] = g.Value()
	}
	for name, h := range r.hists {
		sum := h.Summary()
		flat[name] = histJSON{
			Count:  sum.Count(),
			MinNs:  sum.Min().Nanoseconds(),
			MeanNs: sum.Mean().Nanoseconds(),
			P50Ns:  sum.Quantile(0.5).Nanoseconds(),
			P99Ns:  sum.Quantile(0.99).Nanoseconds(),
			MaxNs:  sum.Max().Nanoseconds(),
		}
	}
	r.mu.RUnlock()

	keys := make([]string, 0, len(flat))
	for k := range flat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, k := range keys {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		} else if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return err
		}
		vb, err := json.Marshal(flat[k])
		if err != nil {
			return err
		}
		if _, err := w.Write(append(append(kb, ": "...), vb...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// Handler returns an http.Handler serving the registry as JSON — the
// /debug/metrics endpoint of cmd/ordlog -metrics-addr.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}
