package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("eval.fired")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("eval.fired") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("core.version")
	g.Set(3)
	g.Max(7)
	g.Max(2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistSynchronised(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("batch.latency")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if sum := h.Summary(); sum.Count() != 800 {
		t.Fatalf("histogram count = %d, want 800", sum.Count())
	}
}

func TestSnapDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ground.instances")
	c.Add(10)
	r.Gauge("core.version").Set(1)
	before := r.Snap()
	c.Add(5)
	r.Counter("eval.rounds").Add(2)
	after := r.Snap()
	d := after.Diff(before)
	if d.Get("ground.instances") != 5 {
		t.Fatalf("diff ground.instances = %d, want 5", d.Get("ground.instances"))
	}
	if d.Get("eval.rounds") != 2 {
		t.Fatalf("diff eval.rounds = %d, want 2", d.Get("eval.rounds"))
	}
	if _, ok := d["core.version"]; ok {
		t.Fatal("unchanged gauge should be dropped from the diff")
	}
}

func TestSnapIncludesHistogramCount(t *testing.T) {
	r := NewRegistry()
	r.Histogram("batch.latency").Observe(time.Millisecond)
	if got := r.Snap().Get("batch.latency.count"); got != 1 {
		t.Fatalf("snap histogram count = %d, want 1", got)
	}
}

func TestWriteJSONValidAndSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.Gauge("c.gauge").Set(-3)
	r.Histogram("d.hist").Observe(5 * time.Millisecond)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var m map[string]any
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, out)
	}
	if m["a.one"].(float64) != 1 || m["b.two"].(float64) != 2 || m["c.gauge"].(float64) != -3 {
		t.Fatalf("wrong values in export: %v", m)
	}
	hist, ok := m["d.hist"].(map[string]any)
	if !ok {
		t.Fatalf("histogram not exported as object: %v", m["d.hist"])
	}
	if hist["count"].(float64) != 1 {
		t.Fatalf("histogram count = %v, want 1", hist["count"])
	}
	if strings.Index(out, `"a.one"`) > strings.Index(out, `"b.two"`) {
		t.Fatal("keys are not sorted")
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.y").Add(9)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("handler body is not valid JSON: %v", err)
	}
	if m["x.y"].(float64) != 9 {
		t.Fatalf("handler body = %v", m)
	}
}

func TestEnabledToggle(t *testing.T) {
	if !On() {
		t.Fatal("metrics should default to enabled")
	}
	SetEnabled(false)
	if On() {
		t.Fatal("SetEnabled(false) did not take")
	}
	SetEnabled(true)
	if !On() {
		t.Fatal("SetEnabled(true) did not take")
	}
}

func TestEventString(t *testing.T) {
	ev := E("update",
		F("", "v0 -> v1"),
		F("comp", "main"),
		F("assert", 2),
		F("mode", "incremental"),
	)
	want := "update: v0 -> v1 comp=main assert=2 mode=incremental"
	if got := ev.String(); got != want {
		t.Fatalf("event rendering = %q, want %q", got, want)
	}
	if ev.Get("mode") != "incremental" {
		t.Fatalf("Get(mode) = %v", ev.Get("mode"))
	}
	if ev.Get("absent") != nil {
		t.Fatalf("Get(absent) = %v", ev.Get("absent"))
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter("shared").Inc()
			r.Gauge("g").Set(1)
			r.Histogram("h").Observe(time.Microsecond)
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 16 {
		t.Fatalf("shared counter = %d, want 16", got)
	}
}

func TestSanitizeSegment(t *testing.T) {
	cases := map[string]string{
		"":             "_",
		"tenant-1":     "tenant-1",
		"Tenant_OK":    "Tenant_OK",
		"a.b.c":        "a_b_c", // dots would shift the metric family prefix
		"sp ace/slash": "sp_ace_slash",
		"ünïcode":      "__n__code",
	}
	for in, want := range cases {
		if got := SanitizeSegment(in); got != want {
			t.Errorf("SanitizeSegment(%q) = %q, want %q", in, got, want)
		}
	}
}
