// Package negsem implements the *direct* semantics for negative programs
// of Definition 11 (§4 of the paper), which makes no reference to ordered
// programs: negative rules act as exceptions to general rules. Theorem 2
// states its equivalence with the 3-level translation 3V(C); the test
// suite verifies that equivalence against the ordered engine.
package negsem

import (
	"errors"

	"repro/internal/ground"
	"repro/internal/interp"
)

// ErrBudget reports that enumeration exceeded its budget.
var ErrBudget = errors.New("negsem: search budget exceeded")

// Semantics evaluates Definition 11 over the ground rules of a negative
// program (all components of the ground program are treated alike; the
// intended input is a single-component grounding).
type Semantics struct {
	G *ground.Program
	// negHeads[a] lists rules with head ¬a (potential exceptions).
	negHeads map[interp.AtomID][]int
	// posHeads[l] lists rules with the given head literal.
	headOf map[interp.Lit][]int
}

// New prepares Definition 11 evaluation over g.
func New(g *ground.Program) *Semantics {
	s := &Semantics{
		G:        g,
		negHeads: make(map[interp.AtomID][]int),
		headOf:   make(map[interp.Lit][]int),
	}
	for i := range g.Rules {
		h := g.Rules[i].Head
		s.headOf[h] = append(s.headOf[h], i)
		if h.Neg() {
			s.negHeads[h.Atom()] = append(s.negHeads[h.Atom()], i)
		}
	}
	return s
}

func litValue(m *interp.Interp, l interp.Lit) interp.Value {
	v := m.Value(l.Atom())
	if l.Neg() {
		return interp.True - v
	}
	return v
}

func (s *Semantics) bodyValue(m *interp.Interp, body []interp.Lit) interp.Value {
	v := interp.True
	for _, l := range body {
		if w := litValue(m, l); w < v {
			v = w
		}
	}
	return v
}

// IsModel checks Definition 11(a): every ground rule either satisfies
// value(H) >= value(B) or is excused by an exception.
//
// The paper states the exception clause tersely; reconstructing it so that
// Theorem 2 (equivalence with the 3V translation, verified by the test
// suite) holds gives a case split on the head's value. A violated
// *seminegative* rule with head atom A is excused when
//
//   - value(A) = F and some negative rule with head ¬A is applied
//     (value of its body is T) — the exception actively overrules; or
//   - value(A) = U and some negative rule with head ¬A is non-blocked
//     (value of its body is at least U) — the possible exception keeps A
//     undefined.
//
// Negative rules are never excused: exceptions cannot themselves be
// excepted (3V(C) has no component below the exceptions).
func (s *Semantics) IsModel(m *interp.Interp) bool {
	if !m.Consistent() {
		return false
	}
	for i := range s.G.Rules {
		r := &s.G.Rules[i]
		if litValue(m, r.Head) >= s.bodyValue(m, r.Body) {
			continue
		}
		if !s.excused(m, r) {
			return false
		}
	}
	return true
}

// excused reports the reconstructed Definition 11(a)(ii) for rule r; see
// IsModel.
func (s *Semantics) excused(m *interp.Interp, r *ground.Rule) bool {
	if r.Head.Neg() {
		return false
	}
	comp := r.Head.Complement()
	var need interp.Value
	switch m.Value(r.Head.Atom()) {
	case interp.False:
		need = interp.True // applied exception required
	case interp.Undef:
		need = interp.Undef // non-blocked exception suffices
	default:
		return false // true heads satisfy value(H) >= value(B) trivially
	}
	for _, i := range s.negHeads[comp.Atom()] {
		e := &s.G.Rules[i]
		if e.Head == comp && s.bodyValue(m, e.Body) >= need {
			return true
		}
	}
	return false
}

// FindAssumptionSet returns a non-empty assumption set X ⊆ I⁺ w.r.t. I in
// the sense of §4 ([SZ]): for each atom A in X every rule with head A has
// body value ≤ U or a body literal in X. Nil when none exists.
func (s *Semantics) FindAssumptionSet(m *interp.Interp) []interp.AtomID {
	x := make(map[interp.AtomID]bool)
	for _, a := range m.PosAtoms() {
		x[a] = true
	}
	for changed := true; changed; {
		changed = false
		for a := range x {
			supported := false
			for _, i := range s.headOf[interp.MkLit(a, false)] {
				r := &s.G.Rules[i]
				if s.bodyValue(m, r.Body) != interp.True {
					continue
				}
				dep := false
				for _, b := range r.Body {
					if !b.Neg() && x[b.Atom()] {
						dep = true
						break
					}
				}
				if !dep {
					supported = true
					break
				}
			}
			if supported {
				delete(x, a)
				changed = true
			}
		}
	}
	if len(x) == 0 {
		return nil
	}
	out := make([]interp.AtomID, 0, len(x))
	for a := range x {
		out = append(out, a)
	}
	return out
}

// IsAssumptionFree checks Definition 11(b): I is a model and no non-empty
// subset of I⁺ is an assumption set.
func (s *Semantics) IsAssumptionFree(m *interp.Interp) bool {
	return s.IsModel(m) && s.FindAssumptionSet(m) == nil
}

// AssumptionFreeModels enumerates all Definition 11 assumption-free models
// by brute force over three-valued assignments (for theorem verification
// on small programs).
func (s *Semantics) AssumptionFreeModels(maxLeaves int) ([]*interp.Interp, error) {
	if maxLeaves == 0 {
		maxLeaves = 1 << 22
	}
	n := s.G.Tab.Len()
	cur := interp.New(s.G.Tab)
	var found []*interp.Interp
	leaves := 0
	var rec func(a int) error
	rec = func(a int) error {
		if a == n {
			leaves++
			if leaves > maxLeaves {
				return ErrBudget
			}
			if s.IsAssumptionFree(cur) {
				found = append(found, cur.Clone())
			}
			return nil
		}
		id := interp.AtomID(a)
		cur.AddLit(interp.MkLit(id, false))
		if err := rec(a + 1); err != nil {
			return err
		}
		cur.RemoveLit(interp.MkLit(id, false))
		cur.AddLit(interp.MkLit(id, true))
		if err := rec(a + 1); err != nil {
			return err
		}
		cur.RemoveLit(interp.MkLit(id, true))
		return rec(a + 1)
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return found, nil
}

// StableModels returns the maximal assumption-free models of Definition
// 11(c).
func (s *Semantics) StableModels(maxLeaves int) ([]*interp.Interp, error) {
	af, err := s.AssumptionFreeModels(maxLeaves)
	if err != nil {
		return nil, err
	}
	var out []*interp.Interp
	for i, m := range af {
		maximal := true
		for j, o := range af {
			if i != j && m.ProperSubsetOf(o) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, m)
		}
	}
	return out, nil
}
