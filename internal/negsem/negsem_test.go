package negsem_test

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/negsem"
	"repro/internal/parser"
)

func semOf(t *testing.T, src string) *negsem.Semantics {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := ground.DefaultOptions()
	opts.Mode = ground.ModeFull
	g, err := ground.Ground(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return negsem.New(g)
}

func interpOf(t *testing.T, s *negsem.Semantics, lits ...string) *interp.Interp {
	t.Helper()
	var ls []ast.Literal
	for _, x := range lits {
		l, err := parser.ParseLiteral(x)
		if err != nil {
			t.Fatal(err)
		}
		ls = append(ls, l)
	}
	in, err := interp.FromLiterals(s.G.Tab, ls)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// Example 8's flying program under the direct semantics: the exception
// makes the grounded bird not fly.
func TestExceptionOverridesGeneral(t *testing.T) {
	s := semOf(t, `
fly(X) :- bird(X).
-fly(X) :- ground_animal(X).
bird(tweety).
ground_animal(tweety).
`)
	m := interpOf(t, s, "bird(tweety)", "ground_animal(tweety)", "-fly(tweety)")
	if !s.IsModel(m) {
		t.Error("exception model rejected")
	}
	// Leaving fly(tweety) undefined is NOT a model: the exception rule is
	// applied-able (its body is true) and negative rules are never
	// excused, so it forces -fly(tweety).
	m2 := interpOf(t, s, "bird(tweety)", "ground_animal(tweety)")
	if s.IsModel(m2) {
		t.Error("an applicable exception must force its conclusion")
	}
	// Claiming fly(tweety) while the applied exception contradicts it is
	// inconsistent as an interpretation only if -fly is also present; as
	// a model check, fly=T makes the exception rule violated.
	m3 := interpOf(t, s, "bird(tweety)", "ground_animal(tweety)", "fly(tweety)")
	if s.IsModel(m3) {
		t.Error("fly(tweety) = T should violate the applied exception rule")
	}
}

func TestFalseHeadNeedsAppliedException(t *testing.T) {
	s := semOf(t, `
p :- q.
-p :- r.
q.
`)
	// p false with the exception's body undefined: not excused.
	m := interpOf(t, s, "q", "-p")
	if s.IsModel(m) {
		t.Error("false head excused by a non-applied exception")
	}
	// p false with the exception applied: excused.
	m2 := interpOf(t, s, "q", "r", "-p")
	if !s.IsModel(m2) {
		t.Error("applied exception did not excuse the false head")
	}
	// p undefined with the exception non-blocked (r undefined): excused.
	m3 := interpOf(t, s, "q")
	if !s.IsModel(m3) {
		t.Error("undefined head not excused by a non-blocked exception")
	}
	// p undefined with the exception blocked (r false): not excused.
	m4 := interpOf(t, s, "q", "-r")
	if s.IsModel(m4) {
		t.Error("undefined head excused by a blocked exception")
	}
}

func TestNegativeRulesNeverExcused(t *testing.T) {
	s := semOf(t, `
-p :- q.
q.
`)
	m := interpOf(t, s, "q", "p")
	if s.IsModel(m) {
		t.Error("violated negative rule accepted")
	}
	m2 := interpOf(t, s, "q", "-p")
	if !s.IsModel(m2) {
		t.Error("satisfied negative rule rejected")
	}
}

func TestAssumptionSets(t *testing.T) {
	// p :- p has only circular support: {p} is a model but p is an
	// assumption.
	s := semOf(t, "p :- p.\n")
	m := interpOf(t, s, "p")
	if !s.IsModel(m) {
		t.Error("{p} should be a 3-valued model of p :- p")
	}
	if x := s.FindAssumptionSet(m); len(x) != 1 {
		t.Errorf("assumption set = %v, want {p}", x)
	}
	if s.IsAssumptionFree(m) {
		t.Error("{p} should not be assumption free")
	}
	empty := interpOf(t, s)
	if !s.IsAssumptionFree(empty) {
		t.Error("{} should be assumption free")
	}
}

func TestStableDirect(t *testing.T) {
	// colored example: the literal Example 9 program has a single stable
	// model under the direct semantics too (agreement with 3V is
	// property-tested in internal/transform).
	s := semOf(t, `
colored(X) :- color(X), -colored(Y), X != Y.
-colored(X) :- ugly_color(X).
color(red).
color(green).
color(brown).
ugly_color(brown).
`)
	ms, err := s.StableModels(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("stable models = %d, want 1", len(ms))
	}
	m := ms[0]
	check := func(lit string, want bool) {
		l, err := parser.ParseLiteral(lit)
		if err != nil {
			t.Fatal(err)
		}
		id, ok := s.G.Tab.Lookup(l.Atom)
		if !ok {
			t.Fatalf("atom %s missing", l.Atom)
		}
		if got := m.HasLit(interp.MkLit(id, l.Neg)); got != want {
			t.Errorf("%s in stable model = %v, want %v", lit, got, want)
		}
	}
	check("colored(red)", true)
	check("colored(green)", true)
	check("-colored(brown)", true)
}
