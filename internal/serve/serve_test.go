package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// doReq runs one request through the daemon's handler and returns the
// recorded response.
func doReq(h http.Handler, method, target, contentType, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeJSON(t *testing.T, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decode response %q: %v", w.Body.String(), err)
	}
}

// ownerSrc is a tiny distinguishable program per tenant: owner(<name>) and
// a derived fact layer, so cross-tenant bleed is detectable from answers.
func ownerSrc(name string) string {
	return fmt.Sprintf("module main {\n  owner(%s).\n  served(X) :- owner(X).\n}\n", name)
}

func TestDaemonTenantLifecycle(t *testing.T) {
	d := New(Config{})
	h := d.Handler()

	// Unknown tenant: reads and writes 404.
	if w := doReq(h, "GET", "/v1/tenants/ghost", "", ""); w.Code != http.StatusNotFound {
		t.Fatalf("info on unknown tenant: code = %d, want 404", w.Code)
	}
	if w := doReq(h, "GET", "/v1/tenants/ghost/query?q=p(X)", "", ""); w.Code != http.StatusNotFound {
		t.Fatalf("query on unknown tenant: code = %d, want 404", w.Code)
	}

	// Create: 201 with the tenant info body.
	w := doReq(h, "PUT", "/v1/tenants/alpha", "text/plain", ownerSrc("alpha"))
	if w.Code != http.StatusCreated {
		t.Fatalf("create: code = %d, want 201 (body %s)", w.Code, w.Body)
	}
	var info tenantInfoJSON
	decodeJSON(t, w, &info)
	if info.Name != "alpha" || info.Version != 0 || info.Rules == 0 {
		t.Fatalf("create info = %+v, want name alpha, version 0, rules > 0", info)
	}

	// JSON body form of load.
	body, _ := json.Marshal(map[string]string{"program": ownerSrc("beta")})
	if w := doReq(h, "PUT", "/v1/tenants/beta", "application/json", string(body)); w.Code != http.StatusCreated {
		t.Fatalf("create beta via JSON: code = %d (body %s)", w.Code, w.Body)
	}

	// Replace: 200, not 201.
	if w := doReq(h, "PUT", "/v1/tenants/alpha", "text/plain", ownerSrc("alpha")); w.Code != http.StatusOK {
		t.Fatalf("replace: code = %d, want 200", w.Code)
	}

	// List contains both, sorted.
	w = doReq(h, "GET", "/v1/tenants", "", "")
	var list struct {
		Tenants []tenantInfoJSON `json:"tenants"`
	}
	decodeJSON(t, w, &list)
	if len(list.Tenants) != 2 || list.Tenants[0].Name != "alpha" || list.Tenants[1].Name != "beta" {
		t.Fatalf("list = %+v, want [alpha beta]", list.Tenants)
	}

	// Query each tenant: answers must be that tenant's own facts.
	for _, name := range []string{"alpha", "beta"} {
		w := doReq(h, "GET", "/v1/tenants/"+name+"/query?q=served(X)", "", "")
		if w.Code != http.StatusOK {
			t.Fatalf("query %s: code = %d (body %s)", name, w.Code, w.Body)
		}
		var resp queryRespJSON
		decodeJSON(t, w, &resp)
		if len(resp.Answers) != 1 || resp.Answers[0]["X"] != name {
			t.Fatalf("query %s: answers = %v, want [{X: %s}]", name, resp.Answers, name)
		}
		if got := w.Header().Get("Ordlog-Version"); got != "0" {
			t.Fatalf("query %s: Ordlog-Version = %q, want 0", name, got)
		}
	}

	// Prove a positive and a negative literal.
	w = doReq(h, "GET", "/v1/tenants/alpha/prove?lit=owner(alpha)", "", "")
	var pr proveRespJSON
	decodeJSON(t, w, &pr)
	if pr.Proved == nil || !*pr.Proved {
		t.Fatalf("prove owner(alpha): %+v, want proved", pr)
	}
	w = doReq(h, "GET", "/v1/tenants/alpha/prove?lit=owner(beta)", "", "")
	decodeJSON(t, w, &pr)
	if pr.Proved == nil || *pr.Proved {
		t.Fatalf("prove owner(beta) on alpha: %+v, want not proved", pr)
	}

	// Malformed inputs are 400s, not panics.
	for _, target := range []string{
		"/v1/tenants/alpha/query?q=served(",
		"/v1/tenants/alpha/query",
		"/v1/tenants/alpha/query?q=served(X)&timeout=banana",
		"/v1/tenants/alpha/query?q=served(X)&version=banana",
		"/v1/tenants/alpha/stable?max=-3",
	} {
		if w := doReq(h, "GET", target, "", ""); w.Code != http.StatusBadRequest {
			t.Errorf("GET %s: code = %d, want 400", target, w.Code)
		}
	}
	if w := doReq(h, "PUT", "/v1/tenants/bad", "text/plain", "module main { p(X :- }"); w.Code != http.StatusBadRequest {
		t.Errorf("load malformed program: code = %d, want 400", w.Code)
	}

	// Drop: 204, then everything 404s; dropping again 404s.
	if w := doReq(h, "DELETE", "/v1/tenants/beta", "", ""); w.Code != http.StatusNoContent {
		t.Fatalf("drop: code = %d, want 204", w.Code)
	}
	if w := doReq(h, "GET", "/v1/tenants/beta", "", ""); w.Code != http.StatusNotFound {
		t.Fatalf("info after drop: code = %d, want 404", w.Code)
	}
	if w := doReq(h, "DELETE", "/v1/tenants/beta", "", ""); w.Code != http.StatusNotFound {
		t.Fatalf("double drop: code = %d, want 404", w.Code)
	}
}

func TestDaemonWritesAndVersionPinning(t *testing.T) {
	d := New(Config{Retain: 3})
	h := d.Handler()
	if w := doReq(h, "PUT", "/v1/tenants/pin", "text/plain", "module main {\n  seen(X) :- u(X).\n  u(c0).\n}\n"); w.Code != http.StatusCreated {
		t.Fatalf("load: code = %d (body %s)", w.Code, w.Body)
	}

	// Five updates publish versions 1..5; with Retain 3 only {3,4,5} stay
	// pinnable.
	for k := 1; k <= 5; k++ {
		body, _ := json.Marshal(writeReqJSON{Component: "main", Facts: fmt.Sprintf("u(c%d).", k)})
		w := doReq(h, "POST", "/v1/tenants/pin/update", "application/json", string(body))
		if w.Code != http.StatusOK {
			t.Fatalf("update %d: code = %d (body %s)", k, w.Code, w.Body)
		}
		var resp writeRespJSON
		decodeJSON(t, w, &resp)
		if resp.Version != uint64(k) || resp.Facts != 1 {
			t.Fatalf("update %d: resp = %+v, want version %d, 1 fact", k, resp, k)
		}
	}

	// A pinned read sees exactly the facts of its version: version v has
	// answers u(c0)..u(cv).
	for v := 3; v <= 5; v++ {
		w := doReq(h, "GET", "/v1/tenants/pin/query?q=seen(X)&version="+strconv.Itoa(v), "", "")
		if w.Code != http.StatusOK {
			t.Fatalf("pinned query v%d: code = %d (body %s)", v, w.Code, w.Body)
		}
		var resp queryRespJSON
		decodeJSON(t, w, &resp)
		if resp.Version != uint64(v) || len(resp.Answers) != v+1 {
			t.Fatalf("pinned query v%d: version %d with %d answers, want %d answers",
				v, resp.Version, len(resp.Answers), v+1)
		}
	}

	// Evicted pin: 410. Never-published pin: 404.
	if w := doReq(h, "GET", "/v1/tenants/pin/query?q=seen(X)&version=1", "", ""); w.Code != http.StatusGone {
		t.Fatalf("evicted pin: code = %d, want 410 (body %s)", w.Code, w.Body)
	}
	if w := doReq(h, "GET", "/v1/tenants/pin/query?q=seen(X)&version=99", "", ""); w.Code != http.StatusNotFound {
		t.Fatalf("future pin: code = %d, want 404 (body %s)", w.Code, w.Body)
	}

	// Retract narrows the tip back down and publishes version 6.
	body, _ := json.Marshal(writeReqJSON{Component: "main", Facts: "u(c4). u(c5)."})
	w := doReq(h, "POST", "/v1/tenants/pin/retract", "application/json", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("retract: code = %d (body %s)", w.Code, w.Body)
	}
	w = doReq(h, "GET", "/v1/tenants/pin/query?q=seen(X)", "", "")
	var resp queryRespJSON
	decodeJSON(t, w, &resp)
	if resp.Version != 6 || len(resp.Answers) != 4 {
		t.Fatalf("post-retract tip: version %d with %d answers, want v6 with 4 (c0..c3)", resp.Version, len(resp.Answers))
	}

	// A pinned read of version 5 still sees the retracted facts: snapshots
	// are immutable.
	w = doReq(h, "GET", "/v1/tenants/pin/query?q=seen(X)&version=5", "", "")
	decodeJSON(t, w, &resp)
	if w.Code != http.StatusOK || len(resp.Answers) != 6 {
		t.Fatalf("pinned v5 after retract: code %d, %d answers, want 200 with 6", w.Code, len(resp.Answers))
	}

	// Non-ground and non-fact writes are rejected without a version bump.
	for _, facts := range []string{"u(X).", "u(c9) :- u(c0).", "module m { u(c9). }"} {
		body, _ := json.Marshal(writeReqJSON{Component: "main", Facts: facts})
		if w := doReq(h, "POST", "/v1/tenants/pin/update", "application/json", string(body)); w.Code != http.StatusBadRequest {
			t.Errorf("update %q: code = %d, want 400", facts, w.Code)
		}
	}
}

// TestDaemonConcurrentTenantsNoBleed drives two tenants with racing writers
// and readers (run under -race in CI): answers must never leak across
// tenants, and each tenant's served version must be monotonically
// non-decreasing from any single client's point of view.
func TestDaemonConcurrentTenantsNoBleed(t *testing.T) {
	d := New(Config{Retain: 4})
	h := d.Handler()
	tenants := []string{"alpha", "beta"}
	for _, name := range tenants {
		if w := doReq(h, "PUT", "/v1/tenants/"+name, "text/plain", ownerSrc(name)); w.Code != http.StatusCreated {
			t.Fatalf("load %s: code = %d (body %s)", name, w.Code, w.Body)
		}
	}

	const writesPerTenant = 20
	const readers = 4
	var wg sync.WaitGroup
	errc := make(chan error, 2+readers*len(tenants))

	// One writer per tenant: appends tenant-tagged facts, checks version
	// strictly ascends in its own response stream (writers are serialized
	// per engine, and this is the only writer for its tenant).
	for _, name := range tenants {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			last := uint64(0)
			for k := 0; k < writesPerTenant; k++ {
				body, _ := json.Marshal(writeReqJSON{
					Component: "main",
					Facts:     fmt.Sprintf("extra_%s(e%d).", name, k),
				})
				w := doReq(h, "POST", "/v1/tenants/"+name+"/update", "application/json", string(body))
				if w.Code != http.StatusOK {
					errc <- fmt.Errorf("%s write %d: code %d (body %s)", name, k, w.Code, w.Body)
					return
				}
				var resp writeRespJSON
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errc <- err
					return
				}
				if resp.Version <= last {
					errc <- fmt.Errorf("%s write %d: version %d not above %d", name, k, resp.Version, last)
					return
				}
				last = resp.Version
			}
		}(name)
	}

	// Readers per tenant: unpinned queries must only ever see the tenant's
	// own owner fact, and the served version must never move backwards.
	for _, name := range tenants {
		for i := 0; i < readers; i++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				last := uint64(0)
				for k := 0; k < 30; k++ {
					w := doReq(h, "GET", "/v1/tenants/"+name+"/query?q=owner(X)", "", "")
					if w.Code != http.StatusOK {
						errc <- fmt.Errorf("%s read %d: code %d (body %s)", name, k, w.Code, w.Body)
						return
					}
					var resp queryRespJSON
					if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
						errc <- err
						return
					}
					if len(resp.Answers) != 1 || resp.Answers[0]["X"] != name {
						errc <- fmt.Errorf("%s read %d: cross-tenant bleed, answers %v", name, k, resp.Answers)
						return
					}
					if resp.Version < last {
						errc <- fmt.Errorf("%s read %d: version went backwards %d -> %d", name, k, last, resp.Version)
						return
					}
					last = resp.Version
				}
			}(name)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Both tenants ended at their writer's final version.
	for _, name := range tenants {
		w := doReq(h, "GET", "/v1/tenants/"+name, "", "")
		var info tenantInfoJSON
		decodeJSON(t, w, &info)
		if info.Version != writesPerTenant {
			t.Errorf("%s final version = %d, want %d", name, info.Version, writesPerTenant)
		}
	}
}

// TestDaemonDeadlinePartialResults pins the deadline contract: a stable
// enumeration that cannot finish inside ?timeout= returns 206 with the
// truncation markers and whatever models it found, within timeout + a
// scheduling epsilon — never a hard error, never the full runtime.
func TestDaemonDeadlinePartialResults(t *testing.T) {
	d := New(Config{})
	h := d.Handler()
	// 8 cycles = 256 stable models, ~300ms+ to enumerate fully.
	if w := doReq(h, "PUT", "/v1/tenants/slow", "text/plain", winMoveCyclesSrc(8)); w.Code != http.StatusCreated {
		t.Fatalf("load: code = %d (body %s)", w.Code, w.Body)
	}

	const timeout = 25 * time.Millisecond
	// Generous epsilon: the engine observes the deadline at its next
	// checkpoint, and -race slows everything by ~10x.
	const epsilon = 3 * time.Second
	start := time.Now()
	w := doReq(h, "GET", "/v1/tenants/slow/stable?component=main&timeout="+timeout.String(), "", "")
	elapsed := time.Since(start)

	if w.Code != http.StatusPartialContent {
		t.Fatalf("code = %d, want 206 (body %s)", w.Code, w.Body)
	}
	if got := w.Header().Get("Ordlog-Truncated"); got != "true" {
		t.Fatalf("Ordlog-Truncated = %q, want true", got)
	}
	var resp stableRespJSON
	decodeJSON(t, w, &resp)
	if !resp.Truncated {
		t.Fatalf("body truncated = false, want true")
	}
	if resp.Count >= 256 {
		t.Fatalf("count = %d, want a strict subset of the 256 models", resp.Count)
	}
	if elapsed > timeout+epsilon {
		t.Fatalf("truncated request took %v, want <= %v + %v", elapsed, timeout, epsilon)
	}

	// The same enumeration with room to breathe is a clean 200 with all
	// 2^8 models and no truncation marker.
	w = doReq(h, "GET", "/v1/tenants/slow/stable?component=main&timeout=2m", "", "")
	if w.Code != http.StatusOK {
		t.Fatalf("full enumeration: code = %d (body %s)", w.Code, w.Body)
	}
	decodeJSON(t, w, &resp)
	if resp.Truncated || resp.Count != 256 {
		t.Fatalf("full enumeration: truncated %v, count %d, want 256 clean models", resp.Truncated, resp.Count)
	}
	if got := w.Header().Get("Ordlog-Truncated"); got != "" {
		t.Fatalf("clean response carries Ordlog-Truncated = %q", got)
	}

	// A query under an unmeetably small deadline also degrades to 206 with
	// the marker and no answers, not an error.
	w = doReq(h, "GET", "/v1/tenants/slow/query?q=win(X)&component=main&timeout=1ns", "", "")
	if w.Code != http.StatusPartialContent {
		t.Fatalf("query under 1ns deadline: code = %d, want 206 (body %s)", w.Code, w.Body)
	}
	var qresp queryRespJSON
	decodeJSON(t, w, &qresp)
	if !qresp.Truncated || len(qresp.Answers) != 0 {
		t.Fatalf("query under 1ns deadline: truncated %v with %d answers, want truncated and none",
			qresp.Truncated, len(qresp.Answers))
	}

	// ?max= is a client-requested cap, not a deadline artifact: hitting it
	// is a clean 200, no truncation marker (the client knows it asked for
	// at most 3; the maximality filter may keep fewer).
	w = doReq(h, "GET", "/v1/tenants/slow/stable?component=main&max=3&timeout=2m", "", "")
	if w.Code != http.StatusOK {
		t.Fatalf("capped enumeration: code = %d, want 200 (body %s)", w.Code, w.Body)
	}
	decodeJSON(t, w, &resp)
	if resp.Truncated || resp.Count == 0 || resp.Count >= 256 {
		t.Fatalf("capped enumeration: truncated %v, count %d, want a small clean subset", resp.Truncated, resp.Count)
	}
}

// TestDaemonAdmission fills a tenant's only admission slot and checks that
// the next deadline-bounded request is rejected with 429 + Retry-After
// instead of queueing forever, and that the slot works again once freed.
func TestDaemonAdmission(t *testing.T) {
	d := New(Config{InFlight: 1})
	h := d.Handler()
	if w := doReq(h, "PUT", "/v1/tenants/busy", "text/plain", ownerSrc("busy")); w.Code != http.StatusCreated {
		t.Fatalf("load: code = %d (body %s)", w.Code, w.Body)
	}
	tn, ok := d.Registry().Get("busy")
	if !ok {
		t.Fatal("tenant not registered")
	}
	release, ok := tn.TryAcquire()
	if !ok {
		t.Fatal("could not take the only admission slot")
	}

	w := doReq(h, "GET", "/v1/tenants/busy/query?q=owner(X)&timeout=30ms", "", "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant: code = %d, want 429 (body %s)", w.Code, w.Body)
	}
	if got := w.Header().Get("Retry-After"); got == "" {
		t.Fatalf("429 without Retry-After")
	}

	// Saturation of one tenant must not reject others.
	if w := doReq(h, "PUT", "/v1/tenants/calm", "text/plain", ownerSrc("calm")); w.Code != http.StatusCreated {
		t.Fatalf("load calm: code = %d", w.Code)
	}
	if w := doReq(h, "GET", "/v1/tenants/calm/query?q=owner(X)&timeout=1s", "", ""); w.Code != http.StatusOK {
		t.Fatalf("other tenant under alpha saturation: code = %d (body %s)", w.Code, w.Body)
	}

	release()
	if w := doReq(h, "GET", "/v1/tenants/busy/query?q=owner(X)&timeout=1s", "", ""); w.Code != http.StatusOK {
		t.Fatalf("after release: code = %d (body %s)", w.Code, w.Body)
	}
	if got := tn.InFlight(); got != 0 {
		t.Fatalf("in-flight after all requests done = %d, want 0", got)
	}
}

// TestDaemonGracefulShutdownDrains runs the daemon on a real listener,
// parks a slow stable enumeration in flight, triggers shutdown, and checks
// that the in-flight request completes cleanly, new connections are
// refused, Serve returns nil, and no goroutines leak.
func TestDaemonGracefulShutdownDrains(t *testing.T) {
	d := New(Config{})
	h := d.Handler()
	if w := doReq(h, "PUT", "/v1/tenants/slow", "text/plain", winMoveCyclesSrc(6)); w.Code != http.StatusCreated {
		t.Fatalf("load: code = %d (body %s)", w.Code, w.Body)
	}

	before := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	srv := NewHTTPServer(h)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- Serve(ctx, srv, ln, 30*time.Second) }()

	// Park a slow request: 64 models takes tens of milliseconds, long
	// enough for the shutdown to start while it is in flight.
	type result struct {
		code  int
		count int
		err   error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/v1/tenants/slow/stable?component=main&timeout=1m")
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var body stableRespJSON
		err = json.NewDecoder(resp.Body).Decode(&body)
		resc <- result{code: resp.StatusCode, count: body.Count, err: err}
	}()

	// Give the request time to be admitted, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if tn, ok := d.Registry().Get("slow"); ok && tn.InFlight() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", res.err)
	}
	if res.code != http.StatusOK || res.count != 64 {
		t.Fatalf("in-flight request: code %d count %d, want 200 with all 64 models", res.code, res.count)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// The listener is gone: new connections are refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}

	// Everything the serving stack spawned has exited.
	leakDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after shutdown: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHardenedServerDefaults pins the slowloris hardening of the shared
// server constructor used by both ordlogd and ordlog -metrics-addr.
func TestHardenedServerDefaults(t *testing.T) {
	srv := NewHTTPServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slowloris headers can hold connections forever")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alives pile up")
	}
	if srv.MaxHeaderBytes <= 0 {
		t.Error("MaxHeaderBytes unset")
	}
	if srv.WriteTimeout != 0 {
		t.Error("WriteTimeout set: the handler owns deadline semantics, a transport write timeout would cut partial results off")
	}
}
