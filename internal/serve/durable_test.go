package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"testing"

	"repro/internal/wal"
)

const pinSrc = "module main {\n  seen(X) :- u(X).\n  u(c0).\n}\n"

// loadAndUpdate loads tenant "pin" and publishes n update versions
// (u(c1)..u(cn)) through the HTTP surface.
func loadAndUpdate(t *testing.T, h http.Handler, n int) {
	t.Helper()
	if w := doReq(h, "PUT", "/v1/tenants/pin", "text/plain", pinSrc); w.Code != http.StatusCreated {
		t.Fatalf("load: code = %d (body %s)", w.Code, w.Body)
	}
	for k := 1; k <= n; k++ {
		body, _ := json.Marshal(writeReqJSON{Component: "main", Facts: fmt.Sprintf("u(c%d).", k)})
		if w := doReq(h, "POST", "/v1/tenants/pin/update", "application/json", string(body)); w.Code != http.StatusOK {
			t.Fatalf("update %d: code = %d (body %s)", k, w.Code, w.Body)
		}
	}
}

func TestDaemonAsOfTimeTravel(t *testing.T) {
	d := New(Config{Retain: 2})
	h := d.Handler()
	loadAndUpdate(t, h, 4) // versions 1..4; retain 2 keeps {3,4} pinnable

	// The ?version= contract is untouched: evicted pins stay 410, unknown
	// versions stay 404.
	if w := doReq(h, "GET", "/v1/tenants/pin/query?q=seen(X)&version=1", "", ""); w.Code != http.StatusGone {
		t.Fatalf("?version=1: code = %d, want 410 (body %s)", w.Code, w.Body)
	}
	if w := doReq(h, "GET", "/v1/tenants/pin/query?q=seen(X)&version=99", "", ""); w.Code != http.StatusNotFound {
		t.Fatalf("?version=99: code = %d, want 404 (body %s)", w.Code, w.Body)
	}

	// ?as_of= reaches past the retention ring: every published version is
	// answerable, with the answer set of that version (v has u(c0)..u(cv)).
	for v := 0; v <= 4; v++ {
		w := doReq(h, "GET", fmt.Sprintf("/v1/tenants/pin/query?q=seen(X)&as_of=%d", v), "", "")
		if w.Code != http.StatusOK {
			t.Fatalf("?as_of=%d: code = %d (body %s)", v, w.Code, w.Body)
		}
		var resp queryRespJSON
		decodeJSON(t, w, &resp)
		if resp.Version != uint64(v) || len(resp.Answers) != v+1 {
			t.Fatalf("?as_of=%d: version %d with %d answers, want %d", v, resp.Version, len(resp.Answers), v+1)
		}
	}
	// Prove pins the same way.
	if w := doReq(h, "GET", "/v1/tenants/pin/prove?lit=seen(c3)&as_of=2", "", ""); w.Code != http.StatusOK {
		t.Fatalf("prove as_of=2: code = %d (body %s)", w.Code, w.Body)
	} else {
		var resp proveRespJSON
		decodeJSON(t, w, &resp)
		if resp.Proved == nil || *resp.Proved {
			t.Fatal("seen(c3) proved as of v2, but c3 arrived at v3")
		}
	}

	// A version that never existed is 404; both pins at once is a 400.
	if w := doReq(h, "GET", "/v1/tenants/pin/query?q=seen(X)&as_of=99", "", ""); w.Code != http.StatusNotFound {
		t.Fatalf("?as_of=99: code = %d, want 404 (body %s)", w.Code, w.Body)
	}
	if w := doReq(h, "GET", "/v1/tenants/pin/query?q=seen(X)&version=3&as_of=2", "", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("both pins: code = %d, want 400 (body %s)", w.Code, w.Body)
	}
}

func TestDaemonDurableRecovery(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{Retain: 4, DataDir: dataDir, CheckpointEvery: 2, Sync: wal.SyncAlways}

	d := New(cfg)
	loadAndUpdate(t, d.Handler(), 3)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh daemon over the same data dir restores the tenant — tip
	// version, answers, and the time-travel history all survive.
	d2 := New(cfg)
	names, err := d2.RecoverTenants(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if len(names) != 1 || names[0] != "pin" {
		t.Fatalf("recovered %v, want [pin]", names)
	}
	h := d2.Handler()
	w := doReq(h, "GET", "/v1/tenants/pin/query?q=seen(X)", "", "")
	if w.Code != http.StatusOK {
		t.Fatalf("query after recovery: code = %d (body %s)", w.Code, w.Body)
	}
	var resp queryRespJSON
	decodeJSON(t, w, &resp)
	if resp.Version != 3 || len(resp.Answers) != 4 {
		t.Fatalf("recovered tip: version %d with %d answers, want v3 with 4", resp.Version, len(resp.Answers))
	}
	for v := 0; v <= 3; v++ {
		w := doReq(h, "GET", fmt.Sprintf("/v1/tenants/pin/query?q=seen(X)&as_of=%d", v), "", "")
		var resp queryRespJSON
		decodeJSON(t, w, &resp)
		if w.Code != http.StatusOK || len(resp.Answers) != v+1 {
			t.Fatalf("?as_of=%d after recovery: code %d, %d answers, want %d", v, w.Code, len(resp.Answers), v+1)
		}
	}
	// Writes continue the recovered chain and the directory verifies.
	body, _ := json.Marshal(writeReqJSON{Component: "main", Facts: "u(c4)."})
	if w := doReq(h, "POST", "/v1/tenants/pin/update", "application/json", string(body)); w.Code != http.StatusOK {
		t.Fatalf("post-recovery update: code = %d (body %s)", w.Code, w.Body)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if res, err := wal.VerifyDir(d2.tenantDir("pin")); err != nil || res.Version != 4 {
		t.Fatalf("verify tenant dir: res=%+v err=%v", res, err)
	}

	// Dropping a durable tenant removes its directory; a daemon booting
	// afterwards recovers nothing.
	d3 := New(cfg)
	if _, err := d3.RecoverTenants(context.Background()); err != nil {
		t.Fatal(err)
	}
	if w := doReq(d3.Handler(), "DELETE", "/v1/tenants/pin", "", ""); w.Code != http.StatusNoContent {
		t.Fatalf("drop: code = %d (body %s)", w.Code, w.Body)
	}
	if _, err := os.Stat(d3.tenantDir("pin")); !os.IsNotExist(err) {
		t.Fatalf("tenant dir survives drop: %v", err)
	}
	if err := d3.Close(); err != nil {
		t.Fatal(err)
	}
	d4 := New(cfg)
	names, err = d4.RecoverTenants(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer d4.Close()
	if len(names) != 0 {
		t.Fatalf("recovered %v after drop, want none", names)
	}
}

// TestDaemonMemoryOnlyUnchanged pins the no-DataDir daemon: recovery is a
// no-op and TenantConfig carries no durability.
func TestDaemonMemoryOnlyUnchanged(t *testing.T) {
	d := New(Config{})
	names, err := d.RecoverTenants(context.Background())
	if err != nil || names != nil {
		t.Fatalf("RecoverTenants on memory-only daemon: %v, %v", names, err)
	}
	if cfg := d.TenantConfig("x"); cfg.Durability.Dir != "" {
		t.Fatalf("memory-only TenantConfig has durability: %+v", cfg.Durability)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
