package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// chainSrc is a right-recursive transitive closure whose goal-directed
// slice for path(c0, _) is a strict subset of the full grounding.
const chainSrc = `
module main {
  edge(c0, c1). edge(c1, c2). edge(c2, c3).
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- path(X, Y), edge(Y, Z).
}
`

// TestDaemonGoalDirected drives a goal-directed daemon end to end: ?q=
// answers come from per-goal slices, repeated queries with the same
// binding pattern hit the per-snapshot slice cache, an update invalidates
// the cache (answers reflect the new fact base), and ?version= pinning
// keeps answering from the pinned snapshot's own slices.
func TestDaemonGoalDirected(t *testing.T) {
	d := New(Config{Retain: 3, Engine: core.Config{GoalDirected: true}})
	h := d.Handler()
	if w := doReq(h, "PUT", "/v1/tenants/gd", "text/plain", chainSrc); w.Code != http.StatusCreated {
		t.Fatalf("load: code = %d (body %s)", w.Code, w.Body)
	}

	answers := func(target string, wantCode int) []map[string]string {
		t.Helper()
		w := doReq(h, "GET", target, "", "")
		if w.Code != wantCode {
			t.Fatalf("GET %s: code = %d, want %d (body %s)", target, w.Code, wantCode, w.Body)
		}
		var resp queryRespJSON
		decodeJSON(t, w, &resp)
		return resp.Answers
	}
	reached := func(as []map[string]string, varName string) string {
		var names []string
		for _, a := range as {
			names = append(names, a[varName])
		}
		return strings.Join(names, ",")
	}

	before := obs.Default().Snap()
	if got := reached(answers("/v1/tenants/gd/query?q=path(c0,X)", http.StatusOK), "X"); got != "c1,c2,c3" {
		t.Fatalf("goal-directed answers = %q, want c1,c2,c3", got)
	}
	// Same binding pattern, different variable name: a slice-cache hit.
	if got := reached(answers("/v1/tenants/gd/query?q=path(c0,Y)", http.StatusOK), "Y"); got != "c1,c2,c3" {
		t.Fatalf("renamed-variable answers = %q, want c1,c2,c3", got)
	}
	diff := obs.Default().Snap().Diff(before)
	if diff.Get("relevance.cache.misses") < 1 || diff.Get("relevance.cache.hits") < 1 {
		t.Fatalf("slice cache counters = %v, want >=1 miss (first query) and >=1 hit (renamed repeat)", diff)
	}

	// Prove goes through the slice too.
	w := doReq(h, "GET", "/v1/tenants/gd/prove?lit=path(c0,c3)", "", "")
	var pr proveRespJSON
	decodeJSON(t, w, &pr)
	if pr.Proved == nil || !*pr.Proved {
		t.Fatalf("prove path(c0,c3): %+v, want proved", pr)
	}

	// An update publishes version 1; the tip's fresh snapshot starts with
	// an empty slice cache, so the same query sees the new edge.
	body, _ := json.Marshal(writeReqJSON{Component: "main", Facts: "edge(c3, c4)."})
	if w := doReq(h, "POST", "/v1/tenants/gd/update", "application/json", string(body)); w.Code != http.StatusOK {
		t.Fatalf("update: code = %d (body %s)", w.Code, w.Body)
	}
	if got := reached(answers("/v1/tenants/gd/query?q=path(c0,X)", http.StatusOK), "X"); got != "c1,c2,c3,c4" {
		t.Fatalf("post-update answers = %q, want c1,c2,c3,c4", got)
	}
	// The pinned version still answers from its own (pre-update) slices.
	if got := reached(answers("/v1/tenants/gd/query?q=path(c0,X)&version=0", http.StatusOK), "X"); got != "c1,c2,c3" {
		t.Fatalf("pinned v0 answers = %q, want c1,c2,c3", got)
	}
}
