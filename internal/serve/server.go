// Package serve is the network serving layer of the engine: the HTTP/JSON
// daemon behind cmd/ordlogd (multi-tenant program hosting, snapshot-pinned
// reads, per-tenant admission control, deadline propagation with partial
// results) and the hardened http.Server plumbing shared with the
// cmd/ordlog -metrics-addr endpoint.
//
// Wire protocol (all bodies JSON; see DESIGN.md §11):
//
//	GET    /healthz                         liveness
//	GET    /v1/tenants                      list tenants + versions
//	PUT    /v1/tenants/{t}                  load/replace a program (source text
//	                                        body, or JSON {"program": "..."})
//	GET    /v1/tenants/{t}                  tenant info (version, sizes)
//	DELETE /v1/tenants/{t}                  drop the tenant
//	POST   /v1/tenants/{t}/update           {"component","facts"} assert facts
//	POST   /v1/tenants/{t}/retract          {"component","facts"} retract facts
//	GET    /v1/tenants/{t}/query            ?q=&component=&version=&timeout=
//	GET    /v1/tenants/{t}/prove            ?lit=&component=&version=&timeout=
//	GET    /v1/tenants/{t}/stable           ?component=&max=&version=&timeout=
//
// Reads pin a snapshot: ?version= re-reads any retained version, the
// response always carries the version served (body "version" plus the
// Ordlog-Version header). Deadline expiry returns 206 Partial Content with
// a truncation marker ("truncated": true, Ordlog-Truncated: true) and
// whatever partial results the engine's ...Ctx contract produced — not an
// error. Admission rejection is 429, an evicted pin 410.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// NewHTTPServer returns an *http.Server hardened for long-lived exposure:
// a header read timeout (so a slowloris peer trickling header bytes cannot
// hold a connection forever), an idle keep-alive timeout, and a bounded
// header size. No global write timeout is set — per-request deadlines come
// from the ?timeout= parameter and the daemon's defaults, so the handler,
// not the transport, owns partial-result semantics.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// Serve runs srv on ln until ctx is cancelled, then shuts down gracefully:
// the listener closes immediately, in-flight requests get up to grace to
// drain, and only then are connections forced closed. http.ErrServerClosed
// is the normal clean-exit signal and is swallowed, never returned or worth
// logging. A non-nil return is a real failure: the listener broke, or the
// drain exceeded grace (in-flight requests were cut off).
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(sctx)
	// Collect the Serve goroutine's exit; ErrServerClosed is the expected
	// handoff, anything else surfaces (unless the drain already failed).
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	if err != nil {
		srv.Close()
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}
