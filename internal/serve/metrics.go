package serve

import (
	"repro/internal/obs"
)

// Serving-layer metrics, resolved once from the process-global registry
// (the serve.* family of /debug/metrics). Per-tenant counters are looked
// up dynamically under serve.tenant.<name>.<op> with the name sanitised to
// one path segment — tenant churn is not a hot path, and the flat export
// stays intact whatever callers name their tenants.
var (
	mRequests  = obs.Default().Counter("serve.requests")
	mErrors    = obs.Default().Counter("serve.errors")
	mRejected  = obs.Default().Counter("serve.admission.rejected")
	mTruncated = obs.Default().Counter("serve.truncated")
	mTenants   = obs.Default().Gauge("serve.tenants")
	hLatency   = obs.Default().Histogram("serve.latency")
)

// opCounter counts one operation kind daemon-wide: serve.ops.query,
// serve.ops.update, ...
func opCounter(op string) *obs.Counter {
	return obs.Default().Counter("serve.ops." + op)
}

// tenantCounter counts reads/writes per tenant:
// serve.tenant.<sanitised-name>.<op>.
func tenantCounter(tenant, op string) *obs.Counter {
	return obs.Default().Counter("serve.tenant." + obs.SanitizeSegment(tenant) + "." + op)
}
