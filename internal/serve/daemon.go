package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/interrupt"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/stable"
	"repro/internal/transform"
	"repro/internal/wal"
)

// Config configures a Daemon. The zero value serves: unbounded admission,
// 8 retained versions, no default deadline, 30s deadline cap, 8 MiB bodies
// and a zero-value engine config for every tenant.
type Config struct {
	// InFlight bounds the concurrently admitted requests per tenant
	// (query/prove/stable/update/retract); excess requests queue until
	// their own deadline and are rejected with 429. <= 0 = unbounded.
	InFlight int

	// Retain is the number of snapshot versions kept pinnable per tenant
	// (<= 0 = 8). The current version is always pinnable.
	Retain int

	// DefaultTimeout is applied to requests that carry no ?timeout=
	// (0 = none: the request runs until the client disconnects).
	DefaultTimeout time.Duration

	// MaxTimeout caps ?timeout= (0 = 30s). A larger request value is
	// clamped, not rejected — the response still honours the contract.
	MaxTimeout time.Duration

	// MaxBodyBytes bounds program and fact uploads (0 = 8 MiB).
	MaxBodyBytes int64

	// Engine is the construction config for every tenant's engine
	// (shards, workers, enumeration budget, grounding options).
	Engine core.Config

	// DataDir, when non-empty, makes every tenant durable: each gets a
	// write-ahead log under DataDir/<sanitized-name> (obs.SanitizeSegment,
	// so arbitrary tenant names cannot escape the tree), loads reset the
	// tenant's history, drops delete its directory, and RecoverTenants
	// restores every surviving tenant at boot. Empty = memory-only.
	DataDir string

	// CheckpointEvery is the per-tenant WAL checkpoint cadence when
	// DataDir is set (<= 0 = core.DefaultCheckpointEvery).
	CheckpointEvery int

	// Sync is the per-tenant WAL fsync policy when DataDir is set.
	Sync wal.SyncPolicy

	// RotateRecords / RotateBytes are the per-tenant WAL segment rotation
	// caps when DataDir is set (see core.Durability); 0/0 keeps each
	// tenant's log in the legacy single file.
	RotateRecords int
	RotateBytes   int64

	// KeepCheckpoints bounds each tenant's on-disk footprint when DataDir
	// is set: only the newest KeepCheckpoints checkpoints survive each
	// checkpoint write, and log segments they cover are pruned. 0 keeps
	// everything.
	KeepCheckpoints int
}

// Daemon is the multi-tenant serving state behind the HTTP handler. One
// Daemon hosts many named engines; all handler state lives in the tenant
// registry, so the handler itself is stateless and safe for concurrent use.
type Daemon struct {
	cfg Config
	reg *core.Registry
}

// New returns a Daemon with the given configuration.
func New(cfg Config) *Daemon {
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	return &Daemon{cfg: cfg, reg: core.NewRegistry(cfg.InFlight, cfg.Retain)}
}

// Registry exposes the tenant registry (for preloading tenants at startup
// and for tests).
func (d *Daemon) Registry() *core.Registry { return d.reg }

// TenantConfig returns the engine construction config for one named
// tenant: the daemon-wide Config.Engine, plus per-tenant durability under
// DataDir when persistence is on. Startup preloading uses it so -load
// tenants get the same WAL wiring as tenants loaded over the wire.
func (d *Daemon) TenantConfig(name string) core.Config {
	cfg := d.cfg.Engine
	if d.cfg.DataDir == "" {
		return cfg
	}
	every := d.cfg.CheckpointEvery
	if every <= 0 {
		every = core.DefaultCheckpointEvery
	}
	cfg.Durability = core.Durability{
		Dir:             d.tenantDir(name),
		Name:            name,
		CheckpointEvery: every,
		Sync:            d.cfg.Sync,
		RotateRecords:   d.cfg.RotateRecords,
		RotateBytes:     d.cfg.RotateBytes,
		KeepCheckpoints: d.cfg.KeepCheckpoints,
	}
	return cfg
}

// tenantDir maps a tenant name to its durability directory.
func (d *Daemon) tenantDir(name string) string {
	return filepath.Join(d.cfg.DataDir, obs.SanitizeSegment(name))
}

// RecoverTenants scans DataDir and rebuilds every tenant with WAL state
// (core.Recover: checkpoint + suffix replay + chain verification),
// publishing each under its recorded name. It returns the recovered
// names, sorted by the directory scan. A daemon without DataDir recovers
// nothing. Recovery is all-or-nothing per call: the first corrupt tenant
// aborts with its error so an operator never silently serves a partial
// fleet.
func (d *Daemon) RecoverTenants(ctx context.Context) ([]string, error) {
	if d.cfg.DataDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(d.cfg.DataDir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(d.cfg.DataDir, e.Name())
		if !wal.IsDurabilityDir(dir) {
			continue
		}
		eng, err := core.Recover(ctx, dir, d.cfg.Engine,
			core.WithCheckpointEvery(d.cfg.CheckpointEvery), core.WithSync(d.cfg.Sync),
			core.WithRotateRecords(d.cfg.RotateRecords), core.WithRotateBytes(d.cfg.RotateBytes),
			core.WithKeepCheckpoints(d.cfg.KeepCheckpoints))
		if err != nil {
			return names, fmt.Errorf("recover tenant dir %s: %w", dir, err)
		}
		name := eng.DurableName()
		if _, _, err := d.reg.Attach(name, eng); err != nil {
			_ = eng.Close()
			return names, fmt.Errorf("recover tenant dir %s: %w", dir, err)
		}
		names = append(names, name)
	}
	mTenants.Set(int64(d.reg.Len()))
	return names, nil
}

// Close flushes and closes every tenant's write-ahead log; the daemon
// calls it after the HTTP drain so interval-sync appends reach disk
// before exit.
func (d *Daemon) Close() error { return d.reg.Close() }

// Handler returns the daemon's HTTP handler: the /v1 tenant API, /healthz,
// and /debug/metrics (the process-global obs registry as flat JSON).
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.Handle("GET /debug/metrics", obs.Default().Handler())
	mux.HandleFunc("GET /v1/tenants", d.instrument("list", d.handleList))
	mux.HandleFunc("PUT /v1/tenants/{tenant}", d.instrument("load", d.handleLoad))
	mux.HandleFunc("GET /v1/tenants/{tenant}", d.instrument("info", d.handleInfo))
	mux.HandleFunc("DELETE /v1/tenants/{tenant}", d.instrument("drop", d.handleDrop))
	mux.HandleFunc("POST /v1/tenants/{tenant}/update", d.instrument("update", d.handleUpdate))
	mux.HandleFunc("POST /v1/tenants/{tenant}/retract", d.instrument("retract", d.handleRetract))
	mux.HandleFunc("GET /v1/tenants/{tenant}/query", d.instrument("query", d.handleQuery))
	mux.HandleFunc("GET /v1/tenants/{tenant}/prove", d.instrument("prove", d.handleProve))
	mux.HandleFunc("GET /v1/tenants/{tenant}/stable", d.instrument("stable", d.handleStable))
	return mux
}

// instrument wraps a handler with the serve.* request accounting: total
// requests, per-op counts and the latency histogram.
func (d *Daemon) instrument(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		mRequests.Inc()
		opCounter(op).Inc()
		h(w, r)
		hLatency.Observe(time.Since(start))
	}
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func failf(w http.ResponseWriter, code int, format string, args ...any) {
	mErrors.Inc()
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// reqCtx derives the request's evaluation context from ?timeout=, clamped
// to MaxTimeout, falling back to the daemon default. The base is the
// request context, so a client disconnect cancels evaluation either way.
func (d *Daemon) reqCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	timeout := d.cfg.DefaultTimeout
	if s := r.URL.Query().Get("timeout"); s != "" {
		dur, err := time.ParseDuration(s)
		if err != nil {
			return nil, nil, fmt.Errorf("bad timeout %q: %v", s, err)
		}
		if dur <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q: must be positive", s)
		}
		timeout = dur
	}
	if timeout > d.cfg.MaxTimeout {
		timeout = d.cfg.MaxTimeout
	}
	if timeout <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, nil
}

// tenant resolves the {tenant} path segment, failing the request with 404.
func (d *Daemon) tenant(w http.ResponseWriter, r *http.Request) (*core.Tenant, bool) {
	name := r.PathValue("tenant")
	t, ok := d.reg.Get(name)
	if !ok {
		failf(w, http.StatusNotFound, "unknown tenant %q", name)
		return nil, false
	}
	return t, true
}

// admit acquires the tenant's admission slot under ctx. On failure it
// writes the 429 rejection and reports false; the caller must return.
func admit(ctx context.Context, w http.ResponseWriter, t *core.Tenant) (release func(), ok bool) {
	release, err := t.Acquire(ctx)
	if err != nil {
		mRejected.Inc()
		mErrors.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorJSON{
			Error: fmt.Sprintf("tenant %q admission queue full: %v", t.Name(), err)})
		return nil, false
	}
	return release, true
}

// pin resolves the snapshot a read runs against. ?version= re-reads a
// retained version; ?as_of= time-travels through Tenant.AsOf, which falls
// past the retention ring into the engine's update history and — on a
// durable tenant — the WAL on disk. At most one of the two may be given;
// absent both, reads see the current tip. Version sentinels map uniformly
// for both parameters: ErrVersionEvicted → 410 Gone, ErrVersionUnknown →
// 404 Not Found.
func pin(w http.ResponseWriter, r *http.Request, t *core.Tenant) (*core.Snapshot, bool) {
	vs := r.URL.Query().Get("version")
	as := r.URL.Query().Get("as_of")
	if vs != "" && as != "" {
		failf(w, http.StatusBadRequest, "at most one of ?version= and ?as_of=")
		return nil, false
	}
	param, s, resolve := "version", vs, t.At
	if as != "" {
		param, s, resolve = "as_of", as, t.AsOf
	}
	if s == "" {
		return t.Current(), true
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		failf(w, http.StatusBadRequest, "bad %s %q: %v", param, s, err)
		return nil, false
	}
	snap, err := resolve(v)
	if err != nil {
		failf(w, versionStatus(err), "%v", err)
		return nil, false
	}
	return snap, true
}

// versionStatus maps the core version sentinels to their wire statuses:
// the one place the ad-hoc per-handler mapping used to live.
func versionStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrVersionEvicted):
		return http.StatusGone
	case errors.Is(err, core.ErrVersionUnknown):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// truncation marks a partial response: 206, the Ordlog-Truncated header
// and the body's "truncated" field (set by the caller) carry the marker.
func markTruncated(w http.ResponseWriter) {
	mTruncated.Inc()
	w.Header().Set("Ordlog-Truncated", "true")
}

func setVersion(w http.ResponseWriter, v uint64) {
	w.Header().Set("Ordlog-Version", strconv.FormatUint(v, 10))
}

// partialErr reports whether err is the graceful-degradation kind — the
// engine returned whatever it had alongside the error.
func partialErr(err error) bool {
	return errors.Is(err, interrupt.ErrInterrupted) || errors.Is(err, stable.ErrBudget)
}

// --- tenant lifecycle -----------------------------------------------------

type tenantInfoJSON struct {
	Name       string   `json:"name"`
	Version    uint64   `json:"version"`
	Rules      int      `json:"rules"`
	Atoms      int      `json:"atoms"`
	Components []string `json:"components"`
	Retained   []uint64 `json:"retained"`
	InFlight   int      `json:"in_flight"`
}

func tenantInfo(t *core.Tenant) tenantInfoJSON {
	snap := t.Current()
	src := t.Engine().Source()
	comps := make([]string, len(src.Components))
	for i, c := range src.Components {
		comps[i] = c.Name
	}
	return tenantInfoJSON{
		Name:       t.Name(),
		Version:    snap.Version(),
		Rules:      snap.NumGroundRules(),
		Atoms:      snap.NumAtoms(),
		Components: comps,
		Retained:   t.Versions(),
		InFlight:   t.InFlight(),
	}
}

func (d *Daemon) handleList(w http.ResponseWriter, _ *http.Request) {
	names := d.reg.Names()
	out := struct {
		Tenants []tenantInfoJSON `json:"tenants"`
	}{Tenants: make([]tenantInfoJSON, 0, len(names))}
	for _, n := range names {
		if t, ok := d.reg.Get(n); ok {
			out.Tenants = append(out.Tenants, tenantInfo(t))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (d *Daemon) handleInfo(w http.ResponseWriter, r *http.Request) {
	t, ok := d.tenant(w, r)
	if !ok {
		return
	}
	setVersion(w, t.Current().Version())
	writeJSON(w, http.StatusOK, tenantInfo(t))
}

func (d *Daemon) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.cfg.MaxBodyBytes))
	if err != nil {
		failf(w, http.StatusRequestEntityTooLarge, "read program: %v", err)
		return
	}
	src := string(body)
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var req struct {
			Program string `json:"program"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			failf(w, http.StatusBadRequest, "bad JSON body: %v", err)
			return
		}
		src = req.Program
	}
	// Queries embedded in the source (testdata files carry them) are
	// ignored: the daemon's query surface is the wire API.
	res, err := parser.Parse(src)
	if err != nil {
		failf(w, http.StatusBadRequest, "parse program: %v", err)
		return
	}
	ctx, cancel, err := d.reqCtx(r)
	if err != nil {
		failf(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	t, replaced, err := d.reg.Put(ctx, name, res.Program, d.TenantConfig(name))
	if err != nil {
		code := http.StatusBadRequest
		if interrupt.IsInterrupted(err) {
			code = http.StatusServiceUnavailable
		}
		failf(w, code, "ground program: %v", err)
		return
	}
	mTenants.Set(int64(d.reg.Len()))
	tenantCounter(name, "loads").Inc()
	code := http.StatusCreated
	if replaced {
		code = http.StatusOK
	}
	setVersion(w, t.Current().Version())
	writeJSON(w, code, tenantInfo(t))
}

func (d *Daemon) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if !d.reg.Drop(name) {
		failf(w, http.StatusNotFound, "unknown tenant %q", name)
		return
	}
	if d.cfg.DataDir != "" {
		// Drop means gone: without this, the next boot would resurrect the
		// tenant from its WAL directory.
		if err := os.RemoveAll(d.tenantDir(name)); err != nil {
			failf(w, http.StatusInternalServerError, "tenant %q dropped but data dir not removed: %v", name, err)
			return
		}
	}
	mTenants.Set(int64(d.reg.Len()))
	w.WriteHeader(http.StatusNoContent)
}

// --- writes ---------------------------------------------------------------

// parseFacts parses module-free source text into ground-fact literals —
// the body format of update/retract (same contract as ordlog.ParseFacts).
func parseFacts(src string) ([]ast.Literal, error) {
	extra, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	if len(extra.Components) == 0 {
		return nil, nil
	}
	if len(extra.Components) != 1 || extra.Components[0].Name != parser.MainComponent {
		return nil, fmt.Errorf("fact source must be module-free")
	}
	rules, err := transform.FlattenSingle(extra)
	if err != nil {
		return nil, err
	}
	facts := make([]ast.Literal, 0, len(rules))
	for _, r := range rules {
		if !r.IsFact() || !r.Head.Atom.Ground() {
			return nil, fmt.Errorf("not a ground fact: %s", r)
		}
		facts = append(facts, r.Head)
	}
	return facts, nil
}

type writeReqJSON struct {
	Component string `json:"component"`
	Facts     string `json:"facts"`
}

type writeRespJSON struct {
	Tenant    string `json:"tenant"`
	Component string `json:"component"`
	Version   uint64 `json:"version"`
	Facts     int    `json:"facts"`
}

func (d *Daemon) handleUpdate(w http.ResponseWriter, r *http.Request)  { d.handleWrite(w, r, false) }
func (d *Daemon) handleRetract(w http.ResponseWriter, r *http.Request) { d.handleWrite(w, r, true) }

func (d *Daemon) handleWrite(w http.ResponseWriter, r *http.Request, retract bool) {
	t, ok := d.tenant(w, r)
	if !ok {
		return
	}
	var req writeReqJSON
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.cfg.MaxBodyBytes))
	if err != nil {
		failf(w, http.StatusRequestEntityTooLarge, "read body: %v", err)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		failf(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	facts, err := parseFacts(req.Facts)
	if err != nil {
		failf(w, http.StatusBadRequest, "parse facts: %v", err)
		return
	}
	ctx, cancel, err := d.reqCtx(r)
	if err != nil {
		failf(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	release, ok := admit(ctx, w, t)
	if !ok {
		return
	}
	defer release()
	op := t.Update
	if retract {
		op = t.Retract
	}
	snap, err := op(ctx, req.Component, facts)
	if err != nil {
		// Writes are atomic snapshot bumps: there is no partial write, so
		// an interrupted one reports unavailability, not truncation.
		code := http.StatusBadRequest
		if interrupt.IsInterrupted(err) {
			code = http.StatusServiceUnavailable
		}
		failf(w, code, "%v", err)
		return
	}
	tenantCounter(t.Name(), "writes").Inc()
	setVersion(w, snap.Version())
	writeJSON(w, http.StatusOK, writeRespJSON{
		Tenant: t.Name(), Component: req.Component,
		Version: snap.Version(), Facts: len(facts),
	})
}

// --- reads ----------------------------------------------------------------

type queryRespJSON struct {
	Tenant    string              `json:"tenant"`
	Component string              `json:"component"`
	Version   uint64              `json:"version"`
	Query     string              `json:"query"`
	Truncated bool                `json:"truncated"`
	Answers   []map[string]string `json:"answers"`
}

// parseQuery parses the ?q= conjunctive goal ("anc(c0, X), p(X)").
func parseQuery(q string) (ast.Query, error) {
	res, err := parser.Parse("?- " + q + ".")
	if err != nil {
		return ast.Query{}, err
	}
	if len(res.Queries) != 1 {
		return ast.Query{}, fmt.Errorf("want exactly one goal, got %d", len(res.Queries))
	}
	return res.Queries[0], nil
}

func (d *Daemon) handleQuery(w http.ResponseWriter, r *http.Request) {
	t, ok := d.tenant(w, r)
	if !ok {
		return
	}
	qtext := r.URL.Query().Get("q")
	if qtext == "" {
		failf(w, http.StatusBadRequest, "missing ?q= goal")
		return
	}
	q, err := parseQuery(qtext)
	if err != nil {
		failf(w, http.StatusBadRequest, "parse query: %v", err)
		return
	}
	comp := r.URL.Query().Get("component")
	snap, ok := pin(w, r, t)
	if !ok {
		return
	}
	ctx, cancel, err := d.reqCtx(r)
	if err != nil {
		failf(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	release, ok := admit(ctx, w, t)
	if !ok {
		return
	}
	defer release()
	tenantCounter(t.Name(), "reads").Inc()
	resp := queryRespJSON{
		Tenant: t.Name(), Component: comp, Version: snap.Version(),
		Query: q.String(), Answers: []map[string]string{},
	}
	bindings, err := snap.QueryCtx(ctx, comp, q)
	setVersion(w, snap.Version())
	if err != nil {
		if partialErr(err) {
			// The least model did not converge inside the deadline: no
			// bindings exist yet. The truncation marker tells the client
			// this is a deadline artifact, not an empty answer set.
			resp.Truncated = true
			markTruncated(w)
			writeJSON(w, http.StatusPartialContent, resp)
			return
		}
		failf(w, http.StatusBadRequest, "%v", err)
		return
	}
	for _, b := range bindings {
		row := make(map[string]string, len(b))
		for k, v := range b {
			row[k] = v.String()
		}
		resp.Answers = append(resp.Answers, row)
	}
	writeJSON(w, http.StatusOK, resp)
}

type proveRespJSON struct {
	Tenant    string `json:"tenant"`
	Component string `json:"component"`
	Version   uint64 `json:"version"`
	Literal   string `json:"literal"`
	Truncated bool   `json:"truncated"`
	Proved    *bool  `json:"proved"`
}

func (d *Daemon) handleProve(w http.ResponseWriter, r *http.Request) {
	t, ok := d.tenant(w, r)
	if !ok {
		return
	}
	ltext := r.URL.Query().Get("lit")
	if ltext == "" {
		failf(w, http.StatusBadRequest, "missing ?lit= literal")
		return
	}
	l, err := parser.ParseLiteral(ltext)
	if err != nil {
		failf(w, http.StatusBadRequest, "parse literal: %v", err)
		return
	}
	comp := r.URL.Query().Get("component")
	snap, ok := pin(w, r, t)
	if !ok {
		return
	}
	ctx, cancel, err := d.reqCtx(r)
	if err != nil {
		failf(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	release, ok := admit(ctx, w, t)
	if !ok {
		return
	}
	defer release()
	tenantCounter(t.Name(), "reads").Inc()
	resp := proveRespJSON{
		Tenant: t.Name(), Component: comp, Version: snap.Version(), Literal: l.String(),
	}
	proved, err := snap.ProveCtx(ctx, comp, l)
	setVersion(w, snap.Version())
	if err != nil {
		if partialErr(err) {
			resp.Truncated = true
			markTruncated(w)
			writeJSON(w, http.StatusPartialContent, resp)
			return
		}
		failf(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp.Proved = &proved
	writeJSON(w, http.StatusOK, resp)
}

type stableRespJSON struct {
	Tenant    string            `json:"tenant"`
	Component string            `json:"component"`
	Version   uint64            `json:"version"`
	Truncated bool              `json:"truncated"`
	Count     int               `json:"count"`
	Models    []json.RawMessage `json:"models"`
}

func (d *Daemon) handleStable(w http.ResponseWriter, r *http.Request) {
	t, ok := d.tenant(w, r)
	if !ok {
		return
	}
	comp := r.URL.Query().Get("component")
	var maxModels int
	if s := r.URL.Query().Get("max"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			failf(w, http.StatusBadRequest, "bad max %q", s)
			return
		}
		maxModels = n
	}
	snap, ok := pin(w, r, t)
	if !ok {
		return
	}
	ctx, cancel, err := d.reqCtx(r)
	if err != nil {
		failf(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	release, ok := admit(ctx, w, t)
	if !ok {
		return
	}
	defer release()
	tenantCounter(t.Name(), "reads").Inc()
	models, err := snap.StableModelsCtx(ctx, comp, stable.Options{MaxModels: maxModels})
	setVersion(w, snap.Version())
	if err != nil && !partialErr(err) {
		failf(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := stableRespJSON{
		Tenant: t.Name(), Component: comp, Version: snap.Version(),
		Count: len(models), Models: make([]json.RawMessage, 0, len(models)),
	}
	for _, m := range models {
		b, jerr := m.JSON(false)
		if jerr != nil {
			failf(w, http.StatusInternalServerError, "render model: %v", jerr)
			return
		}
		resp.Models = append(resp.Models, b)
	}
	if err != nil {
		// Partial enumeration: the models found before the deadline or
		// budget, plus the truncation marker.
		resp.Truncated = true
		markTruncated(w)
		writeJSON(w, http.StatusPartialContent, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
