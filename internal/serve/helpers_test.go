package serve

import (
	"fmt"
	"strings"
)

// winMoveCyclesSrc builds a win-move program of k disjoint 2-cycles:
// every cycle contributes an independent binary choice, so the program
// has 2^k stable models — the deadline and drain tests use it as a
// long-running but well-understood enumeration.
func winMoveCyclesSrc(k int) string {
	var sb strings.Builder
	// The OV encoding (closed-world component above) makes -win behave as
	// default negation, so each 2-cycle is an independent binary choice.
	sb.WriteString("module cwa {\n  -win(X1).\n  -move(X1,X2).\n}\n")
	sb.WriteString("module main extends cwa {\n  win(X) :- move(X,Y), -win(Y).\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "  move(a%d,b%d). move(b%d,a%d).\n", i, i, i, i)
	}
	sb.WriteString("}\n")
	return sb.String()
}
