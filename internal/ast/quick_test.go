package ast

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randGroundTerm(rng *rand.Rand, depth int) Term {
	switch {
	case depth <= 0 || rng.Intn(3) == 0:
		if rng.Intn(2) == 0 {
			return Sym([]string{"a", "b", "c", "d"}[rng.Intn(4)])
		}
		return Int(int64(rng.Intn(5) - 2))
	default:
		k := 1 + rng.Intn(2)
		args := make([]Term, k)
		for i := range args {
			args[i] = randGroundTerm(rng, depth-1)
		}
		return Compound{Functor: []string{"f", "g"}[rng.Intn(2)], Args: args}
	}
}

// TestQuickCompareTermsTotalOrder: CompareTerms is reflexive-zero,
// antisymmetric and transitive on random ground terms, and consistent
// with Equal.
func TestQuickCompareTermsTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randGroundTerm(rng, 3)
		y := randGroundTerm(rng, 3)
		z := randGroundTerm(rng, 3)
		if CompareTerms(x, x) != 0 {
			return false
		}
		cxy, cyx := CompareTerms(x, y), CompareTerms(y, x)
		if (cxy == 0) != (cyx == 0) || (cxy < 0) != (cyx > 0) {
			return false
		}
		if (cxy == 0) != x.Equal(y) {
			return false
		}
		// Transitivity on ≤.
		if CompareTerms(x, y) <= 0 && CompareTerms(y, z) <= 0 && CompareTerms(x, z) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTermStringInjective: distinct ground terms render distinctly
// (String is used as a canonical key by the storage layer only with type
// tags, but within one kind the plain rendering must already separate).
func TestQuickTermStringInjective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randGroundTerm(rng, 3)
		y := randGroundTerm(rng, 3)
		if x.Equal(y) {
			return x.String() == y.String()
		}
		// Non-equal terms of the same dynamic type must render apart;
		// Sym("1") vs Int(1) is the known cross-kind collision, which the
		// key encoders tag explicitly.
		sameKind := termRank(x) == termRank(y)
		if sameKind && x.String() == y.String() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubstituteGrounds: substituting every variable with a ground
// term grounds the rule and never changes its shape counts.
func TestQuickSubstituteGrounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars := []Term{Var{Name: "X"}, Var{Name: "Y"}}
		mkAtom := func() Atom {
			args := []Term{vars[rng.Intn(2)], randGroundTerm(rng, 1)}
			return Atom{Pred: "p", Args: args}
		}
		r := &Rule{Head: Literal{Neg: rng.Intn(2) == 0, Atom: mkAtom()}}
		for i := 0; i < rng.Intn(3); i++ {
			r.Body = append(r.Body, Literal{Neg: rng.Intn(2) == 0, Atom: mkAtom()})
		}
		g := r.Substitute(func(v Var) Term { return Sym("k" + v.Name) })
		if !g.Ground() {
			return false
		}
		return len(g.Body) == len(r.Body) && g.Head.Neg == r.Head.Neg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
