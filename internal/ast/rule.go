package ast

import (
	"strings"
)

// Rule is a (possibly negative) rule Head <- Body, Builtins. The paper's
// terminology:
//
//   - a rule is *negative* in general (the head may be a negative literal);
//   - it is *seminegative* when the head is positive;
//   - it is *positive* (a Horn clause) when head and all body literals are
//     positive.
//
// Builtins are comparison conditions evaluated at grounding time; they are
// kept apart from Body because they never participate in the model-theoretic
// rule statuses (blocked/overruled/defeated) — an instance whose builtins
// fail simply has no ground instance.
type Rule struct {
	Head     Literal
	Body     []Literal
	Builtins []Builtin
}

// Fact returns a rule with the given head and empty body.
func Fact(h Literal) *Rule { return &Rule{Head: h} }

// IsFact reports whether the rule has an empty body (builtins included).
func (r *Rule) IsFact() bool { return len(r.Body) == 0 && len(r.Builtins) == 0 }

// IsSeminegative reports whether the head is positive.
func (r *Rule) IsSeminegative() bool { return !r.Head.Neg }

// IsPositive reports whether head and all body literals are positive.
func (r *Rule) IsPositive() bool {
	if r.Head.Neg {
		return false
	}
	for _, l := range r.Body {
		if l.Neg {
			return false
		}
	}
	return true
}

// Ground reports whether the rule contains no variables.
func (r *Rule) Ground() bool {
	if !r.Head.Ground() {
		return false
	}
	for _, l := range r.Body {
		if !l.Ground() {
			return false
		}
	}
	for _, b := range r.Builtins {
		if len(b.Vars(nil)) > 0 {
			return false
		}
	}
	return true
}

// Vars returns the variables of the rule in order of first occurrence
// (head first, then body, then builtins).
func (r *Rule) Vars() []Var {
	vs := r.Head.Vars(nil)
	for _, l := range r.Body {
		vs = l.Vars(vs)
	}
	for _, b := range r.Builtins {
		vs = b.Vars(vs)
	}
	return vs
}

// String renders the rule in the surface syntax, terminated by a period.
func (r *Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Head.String())
	if len(r.Body) > 0 || len(r.Builtins) > 0 {
		b.WriteString(" :- ")
		writeList(&b, r.Body, ", ")
		if len(r.Body) > 0 && len(r.Builtins) > 0 {
			b.WriteString(", ")
		}
		writeList(&b, r.Builtins, ", ")
	}
	b.WriteByte('.')
	return b.String()
}

// Equal reports structural equality of rules, including body order.
func (r *Rule) Equal(o *Rule) bool {
	if !r.Head.Equal(o.Head) || len(r.Body) != len(o.Body) || len(r.Builtins) != len(o.Builtins) {
		return false
	}
	for i := range r.Body {
		if !r.Body[i].Equal(o.Body[i]) {
			return false
		}
	}
	for i := range r.Builtins {
		if !r.Builtins[i].Equal(o.Builtins[i]) {
			return false
		}
	}
	return true
}

// Substitute applies a binding function to every part of the rule,
// returning a new rule. Unbound variables are left in place.
func (r *Rule) Substitute(bind func(Var) Term) *Rule {
	nr := &Rule{Head: SubstituteLiteral(r.Head, bind)}
	if len(r.Body) > 0 {
		nr.Body = make([]Literal, len(r.Body))
		for i, l := range r.Body {
			nr.Body[i] = SubstituteLiteral(l, bind)
		}
	}
	if len(r.Builtins) > 0 {
		nr.Builtins = make([]Builtin, len(r.Builtins))
		for i, b := range r.Builtins {
			nr.Builtins[i] = Builtin{Op: b.Op, L: SubstituteExpr(b.L, bind), R: SubstituteExpr(b.R, bind)}
		}
	}
	return nr
}

// Clone returns a deep-enough copy of the rule (shared immutable terms).
func (r *Rule) Clone() *Rule {
	nr := &Rule{Head: r.Head}
	nr.Body = append([]Literal(nil), r.Body...)
	nr.Builtins = append([]Builtin(nil), r.Builtins...)
	return nr
}
