package ast

import "testing"

func atomOf(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

func TestAtomString(t *testing.T) {
	if got := atomOf("p").String(); got != "p" {
		t.Errorf("propositional atom = %q", got)
	}
	if got := atomOf("p", Sym("a"), Int(2)).String(); got != "p(a, 2)" {
		t.Errorf("atom = %q, want p(a, 2)", got)
	}
}

func TestAtomEqualAndGround(t *testing.T) {
	a := atomOf("p", Sym("a"))
	if !a.Equal(atomOf("p", Sym("a"))) {
		t.Error("equal atoms not Equal")
	}
	if a.Equal(atomOf("p", Sym("b"))) || a.Equal(atomOf("q", Sym("a"))) || a.Equal(atomOf("p")) {
		t.Error("unequal atoms Equal")
	}
	if !a.Ground() {
		t.Error("ground atom not Ground")
	}
	if atomOf("p", Var{Name: "X"}).Ground() {
		t.Error("non-ground atom Ground")
	}
}

func TestAtomKey(t *testing.T) {
	if got := atomOf("p", Sym("a"), Sym("b")).Key(); got != (PredKey{"p", 2}) {
		t.Errorf("Key = %v", got)
	}
	if got := (PredKey{"parent", 2}).String(); got != "parent/2" {
		t.Errorf("PredKey.String = %q", got)
	}
	if got := (PredKey{"p", 12}).String(); got != "p/12" {
		t.Errorf("PredKey.String two-digit arity = %q", got)
	}
}

func TestLiteralBasics(t *testing.T) {
	a := atomOf("fly", Sym("tweety"))
	pos, neg := Pos(a), Neg(a)
	if pos.Neg || !neg.Neg {
		t.Error("Pos/Neg signs wrong")
	}
	if pos.String() != "fly(tweety)" || neg.String() != "-fly(tweety)" {
		t.Errorf("literal strings: %q %q", pos, neg)
	}
	if !pos.Complement().Equal(neg) || !neg.Complement().Equal(pos) {
		t.Error("Complement not involutive")
	}
	if pos.Equal(neg) {
		t.Error("complementary literals Equal")
	}
	if !pos.Ground() {
		t.Error("ground literal not Ground")
	}
}

func TestCompareLiterals(t *testing.T) {
	ordered := []Literal{
		Pos(atomOf("a")),
		Neg(atomOf("a")),
		Pos(atomOf("b", Sym("x"))),
		Pos(atomOf("b", Sym("y"))),
		Neg(atomOf("b", Sym("y"))),
		Pos(atomOf("c")),
	}
	for i := range ordered {
		for j := range ordered {
			got := CompareLiterals(ordered[i], ordered[j])
			if i < j && got >= 0 || i > j && got <= 0 || i == j && got != 0 {
				t.Errorf("CompareLiterals(%s, %s) = %d with i=%d j=%d", ordered[i], ordered[j], got, i, j)
			}
		}
	}
}

func TestSubstituteLiteral(t *testing.T) {
	l := Neg(atomOf("p", Var{Name: "X"}))
	out := SubstituteLiteral(l, func(v Var) Term { return Sym("a") })
	if out.String() != "-p(a)" {
		t.Errorf("SubstituteLiteral = %s", out)
	}
	if l.String() != "-p(X)" {
		t.Error("substitution mutated source literal")
	}
}
