package ast

import (
	"fmt"
	"strings"
)

// CmpOp is a comparison operator usable in rule bodies.
type CmpOp int

// Comparison operators. EQ and NE apply to arbitrary ground terms; the
// ordering operators require both sides to evaluate to integers.
const (
	EQ CmpOp = iota // =
	NE              // !=
	LT              // <
	LE              // <=
	GT              // >
	GE              // >=
)

// String returns the surface-syntax spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", int(op))
}

// Negate returns the complementary comparison (e.g. < becomes >=).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return op
}

// ArithOp is an arithmetic operator inside comparison arguments.
type ArithOp byte

// Arithmetic operators over integers. Division truncates toward zero;
// division and modulo by zero make the enclosing builtin unsatisfiable.
const (
	Add ArithOp = '+'
	Sub ArithOp = '-'
	Mul ArithOp = '*'
	Div ArithOp = '/'
	Mod ArithOp = '%'
)

// Expr is an arithmetic expression: a TermExpr leaf or a BinExpr node.
type Expr interface {
	fmt.Stringer

	// ExprVars appends the variables of the expression to vs.
	ExprVars(vs []Var) []Var
	isExpr()
}

// TermExpr wraps a term (a variable, integer or symbol) as an expression
// leaf. Symbols are only meaningful under EQ and NE.
type TermExpr struct {
	Term Term
}

// BinExpr is a binary arithmetic node.
type BinExpr struct {
	Op   ArithOp
	L, R Expr
}

func (TermExpr) isExpr() {}
func (BinExpr) isExpr()  {}

// String renders the leaf term.
func (e TermExpr) String() string { return e.Term.String() }

// String renders the expression fully parenthesised. Mod prints as the
// keyword "mod" ('%' opens a comment in the surface syntax).
func (e BinExpr) String() string {
	op := string(e.Op)
	if e.Op == Mod {
		op = "mod"
	}
	return "(" + e.L.String() + " " + op + " " + e.R.String() + ")"
}

// ExprVars appends the leaf's variables to vs.
func (e TermExpr) ExprVars(vs []Var) []Var { return TermVars(e.Term, vs) }

// ExprVars appends both operand's variables to vs.
func (e BinExpr) ExprVars(vs []Var) []Var { return e.R.ExprVars(e.L.ExprVars(vs)) }

// Builtin is a comparison L op R between arithmetic expressions. Builtins
// appear only in rule bodies and are evaluated during grounding; every
// variable in a builtin must be bound by a positive body literal (safety).
type Builtin struct {
	Op   CmpOp
	L, R Expr
}

// String renders the builtin in the surface syntax.
func (b Builtin) String() string {
	return b.L.String() + " " + b.Op.String() + " " + b.R.String()
}

// Vars appends the variables of both sides to vs.
func (b Builtin) Vars(vs []Var) []Var { return b.R.ExprVars(b.L.ExprVars(vs)) }

// EvalExpr evaluates a ground arithmetic expression. It returns the
// resulting term: for TermExpr leaves the term itself, for BinExpr an
// integer. ok is false if the expression contains a variable, applies
// arithmetic to a non-integer, or divides by zero.
func EvalExpr(e Expr) (Term, bool) {
	switch e := e.(type) {
	case TermExpr:
		if !e.Term.Ground() {
			return nil, false
		}
		return e.Term, true
	case BinExpr:
		lt, ok := EvalExpr(e.L)
		if !ok {
			return nil, false
		}
		rt, ok := EvalExpr(e.R)
		if !ok {
			return nil, false
		}
		li, ok := lt.(Int)
		if !ok {
			return nil, false
		}
		ri, ok := rt.(Int)
		if !ok {
			return nil, false
		}
		switch e.Op {
		case Add:
			return li + ri, true
		case Sub:
			return li - ri, true
		case Mul:
			return li * ri, true
		case Div:
			if ri == 0 {
				return nil, false
			}
			return li / ri, true
		case Mod:
			if ri == 0 {
				return nil, false
			}
			return li % ri, true
		}
	}
	return nil, false
}

// EvalBuiltin evaluates a ground builtin. ok is false when the builtin is
// not ground or ill-typed (ordering on non-integers, arithmetic failure);
// callers treat !ok as unsatisfied.
func EvalBuiltin(b Builtin) (holds, ok bool) {
	lt, lok := EvalExpr(b.L)
	rt, rok := EvalExpr(b.R)
	if !lok || !rok {
		return false, false
	}
	switch b.Op {
	case EQ:
		return lt.Equal(rt), true
	case NE:
		return !lt.Equal(rt), true
	}
	li, lok := lt.(Int)
	ri, rok := rt.(Int)
	if !lok || !rok {
		return false, false
	}
	switch b.Op {
	case LT:
		return li < ri, true
	case LE:
		return li <= ri, true
	case GT:
		return li > ri, true
	case GE:
		return li >= ri, true
	}
	return false, false
}

// exprEqual reports structural equality of expressions.
func exprEqual(a, b Expr) bool {
	switch a := a.(type) {
	case TermExpr:
		o, ok := b.(TermExpr)
		return ok && a.Term.Equal(o.Term)
	case BinExpr:
		o, ok := b.(BinExpr)
		return ok && a.Op == o.Op && exprEqual(a.L, o.L) && exprEqual(a.R, o.R)
	}
	return false
}

// Equal reports structural equality of builtins.
func (b Builtin) Equal(o Builtin) bool {
	return b.Op == o.Op && exprEqual(b.L, o.L) && exprEqual(b.R, o.R)
}

// SubstituteExpr applies a variable binding function to the expression,
// returning a new expression. Unbound variables are left in place (bind
// returns nil for them).
func SubstituteExpr(e Expr, bind func(Var) Term) Expr {
	switch e := e.(type) {
	case TermExpr:
		return TermExpr{Term: SubstituteTerm(e.Term, bind)}
	case BinExpr:
		return BinExpr{Op: e.Op, L: SubstituteExpr(e.L, bind), R: SubstituteExpr(e.R, bind)}
	}
	return e
}

// SubstituteTerm applies a variable binding function to the term, returning
// a new term. Unbound variables (bind returns nil) are left in place.
func SubstituteTerm(t Term, bind func(Var) Term) Term {
	switch t := t.(type) {
	case Var:
		if r := bind(t); r != nil {
			return r
		}
		return t
	case Compound:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = SubstituteTerm(a, bind)
		}
		return Compound{Functor: t.Functor, Args: args}
	}
	return t
}

// SubstituteAtom applies a variable binding function to every argument.
func SubstituteAtom(a Atom, bind func(Var) Term) Atom {
	if len(a.Args) == 0 {
		return a
	}
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = SubstituteTerm(t, bind)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// SubstituteLiteral applies a variable binding function to the literal.
func SubstituteLiteral(l Literal, bind func(Var) Term) Literal {
	return Literal{Neg: l.Neg, Atom: SubstituteAtom(l.Atom, bind)}
}

// writeList is a small helper for comma-separated rendering.
func writeList[T fmt.Stringer](b *strings.Builder, items []T, sep string) {
	for i, it := range items {
		if i > 0 {
			b.WriteString(sep)
		}
		b.WriteString(it.String())
	}
}
