package ast

import (
	"fmt"
	"sort"
	"strings"
)

// Component is a named negative program: one module/object of an ordered
// program. Components with smaller order are more specific; they inherit
// (and may overrule) the rules of the components above them.
type Component struct {
	Name  string
	Rules []*Rule
}

// AddRule appends a rule to the component.
func (c *Component) AddRule(r *Rule) { c.Rules = append(c.Rules, r) }

// IsSeminegative reports whether every rule head in the component is
// positive.
func (c *Component) IsSeminegative() bool {
	for _, r := range c.Rules {
		if r.Head.Neg {
			return false
		}
	}
	return true
}

// IsPositive reports whether every rule in the component is a Horn clause.
func (c *Component) IsPositive() bool {
	for _, r := range c.Rules {
		if !r.IsPositive() {
			return false
		}
	}
	return true
}

// String renders the component as a module block in the surface syntax.
func (c *Component) String() string {
	var b strings.Builder
	b.WriteString("module ")
	b.WriteString(c.Name)
	b.WriteString(" {\n")
	for _, r := range c.Rules {
		b.WriteString("  ")
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String()
}

// Edge declares Child < Parent in the component order: Child is more
// specific and inherits Parent's rules.
type Edge struct {
	Child, Parent string
}

// OrderedProgram is a finite partially-ordered set of components. The
// order is the reflexive-transitive closure of the Edges (child < parent);
// it must be acyclic across distinct components.
type OrderedProgram struct {
	Components []*Component
	Edges      []Edge

	index map[string]int  // component name -> position in Components
	less  map[[2]int]bool // transitive closure of strict order, by position
}

// NewOrderedProgram returns an empty ordered program.
func NewOrderedProgram() *OrderedProgram {
	return &OrderedProgram{index: make(map[string]int)}
}

// AddComponent appends a component; the name must be fresh.
func (p *OrderedProgram) AddComponent(c *Component) error {
	if p.index == nil {
		p.index = make(map[string]int)
	}
	if _, dup := p.index[c.Name]; dup {
		return fmt.Errorf("duplicate component %q", c.Name)
	}
	p.index[c.Name] = len(p.Components)
	p.Components = append(p.Components, c)
	p.less = nil
	return nil
}

// Component returns the component with the given name, or nil.
func (p *OrderedProgram) Component(name string) *Component {
	i, ok := p.index[name]
	if !ok {
		return nil
	}
	return p.Components[i]
}

// ComponentIndex returns the position of the named component and whether it
// exists. Positions are stable and used as component ids by the grounder.
func (p *OrderedProgram) ComponentIndex(name string) (int, bool) {
	i, ok := p.index[name]
	return i, ok
}

// AddEdge declares child < parent. Both components must already exist.
func (p *OrderedProgram) AddEdge(child, parent string) error {
	if _, ok := p.index[child]; !ok {
		return fmt.Errorf("unknown component %q in order declaration", child)
	}
	if _, ok := p.index[parent]; !ok {
		return fmt.Errorf("unknown component %q in order declaration", parent)
	}
	if child == parent {
		return fmt.Errorf("component %q cannot extend itself", child)
	}
	p.Edges = append(p.Edges, Edge{Child: child, Parent: parent})
	p.less = nil
	return nil
}

// Validate checks that the declared order is a strict partial order
// (acyclic) and computes its transitive closure.
func (p *OrderedProgram) Validate() error {
	n := len(p.Components)
	less := make(map[[2]int]bool, len(p.Edges)*2)
	adj := make([][]int, n)
	for _, e := range p.Edges {
		ci, pi := p.index[e.Child], p.index[e.Parent]
		adj[ci] = append(adj[ci], pi)
	}
	// Transitive closure by DFS from each node; cycle detection via the
	// closure itself (x < x is a cycle).
	var stack []int
	for s := 0; s < n; s++ {
		seen := make([]bool, n)
		stack = append(stack[:0], adj[s]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			less[[2]int{s, v}] = true
			stack = append(stack, adj[v]...)
		}
	}
	for i := 0; i < n; i++ {
		if less[[2]int{i, i}] {
			return fmt.Errorf("component order contains a cycle through %q", p.Components[i].Name)
		}
	}
	p.less = less
	return nil
}

// Less reports whether component i is strictly below component j (i < j,
// i.e. i is more specific). Validate must have succeeded.
func (p *OrderedProgram) Less(i, j int) bool {
	return p.less != nil && p.less[[2]int{i, j}]
}

// Incomparable reports whether distinct components i and j are unrelated
// in the order (the paper's C_i <> C_j).
func (p *OrderedProgram) Incomparable(i, j int) bool {
	return i != j && !p.Less(i, j) && !p.Less(j, i)
}

// Above returns the positions of all components j with i <= j: the
// component itself plus everything it inherits from. The result is sorted.
func (p *OrderedProgram) Above(i int) []int {
	out := []int{i}
	for j := range p.Components {
		if p.Less(i, j) {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

// VisibleRules returns ground(C*)'s generator: every rule visible from the
// component at position i — its own rules and those of the components above
// it — paired with the position of the component the rule comes from.
func (p *OrderedProgram) VisibleRules(i int) []ComponentRule {
	var out []ComponentRule
	for _, j := range p.Above(i) {
		for _, r := range p.Components[j].Rules {
			out = append(out, ComponentRule{Comp: j, Rule: r})
		}
	}
	return out
}

// ComponentRule pairs a rule with the position of its owning component.
type ComponentRule struct {
	Comp int
	Rule *Rule
}

// Predicates returns the set of predicate keys occurring anywhere in the
// program, sorted by name then arity.
func (p *OrderedProgram) Predicates() []PredKey {
	seen := make(map[PredKey]bool)
	var keys []PredKey
	add := func(k PredKey) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, c := range p.Components {
		for _, r := range c.Rules {
			add(r.Head.Atom.Key())
			for _, l := range r.Body {
				add(l.Atom.Key())
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Arity < keys[j].Arity
	})
	return keys
}

// Constants returns all constants (symbols and integers) occurring in the
// program, sorted canonically.
func (p *OrderedProgram) Constants() []Term {
	seen := make(map[string]bool)
	var out []Term
	var walk func(t Term)
	walk = func(t Term) {
		switch t := t.(type) {
		case Sym, Int:
			k := t.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		case Compound:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	walkExpr := func(e Expr) {
		var w func(Expr)
		w = func(e Expr) {
			switch e := e.(type) {
			case TermExpr:
				walk(e.Term)
			case BinExpr:
				w(e.L)
				w(e.R)
			}
		}
		w(e)
	}
	for _, c := range p.Components {
		for _, r := range c.Rules {
			for _, t := range r.Head.Atom.Args {
				walk(t)
			}
			for _, l := range r.Body {
				for _, t := range l.Atom.Args {
					walk(t)
				}
			}
			for _, b := range r.Builtins {
				walkExpr(b.L)
				walkExpr(b.R)
			}
		}
	}
	SortTerms(out)
	return out
}

// Functors returns the function symbols (name/arity) occurring in program
// terms, sorted.
func (p *OrderedProgram) Functors() []PredKey {
	seen := make(map[PredKey]bool)
	var out []PredKey
	var walk func(t Term)
	walk = func(t Term) {
		if c, ok := t.(Compound); ok {
			k := PredKey{c.Functor, len(c.Args)}
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
			for _, a := range c.Args {
				walk(a)
			}
		}
	}
	for _, c := range p.Components {
		for _, r := range c.Rules {
			for _, t := range r.Head.Atom.Args {
				walk(t)
			}
			for _, l := range r.Body {
				for _, t := range l.Atom.Args {
					walk(t)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// NumRules returns the total number of rules across all components.
func (p *OrderedProgram) NumRules() int {
	n := 0
	for _, c := range p.Components {
		n += len(c.Rules)
	}
	return n
}

// String renders the whole program: module blocks followed by order
// declarations, in the surface syntax accepted by the parser.
func (p *OrderedProgram) String() string {
	var b strings.Builder
	for i, c := range p.Components {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(c.String())
	}
	for _, e := range p.Edges {
		fmt.Fprintf(&b, "order %s < %s.\n", e.Child, e.Parent)
	}
	return b.String()
}

// SingleComponent wraps a plain negative program (a rule list) as an
// ordered program with one component named name.
func SingleComponent(name string, rules []*Rule) *OrderedProgram {
	p := NewOrderedProgram()
	c := &Component{Name: name}
	c.Rules = append(c.Rules, rules...)
	if err := p.AddComponent(c); err != nil {
		panic(err) // fresh program: cannot have a duplicate
	}
	if err := p.Validate(); err != nil {
		panic(err) // no edges: cannot have a cycle
	}
	return p
}
