package ast

import (
	"testing"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{Var{Name: "X"}, "X"},
		{Sym("penguin"), "penguin"},
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Compound{Functor: "f", Args: []Term{Sym("a")}}, "f(a)"},
		{Compound{Functor: "f", Args: []Term{Sym("a"), Var{Name: "X"}}}, "f(a, X)"},
		{Compound{Functor: "f", Args: []Term{Compound{Functor: "g", Args: []Term{Int(1)}}}}, "f(g(1))"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermEqual(t *testing.T) {
	f := func(args ...Term) Term { return Compound{Functor: "f", Args: args} }
	cases := []struct {
		a, b Term
		want bool
	}{
		{Sym("a"), Sym("a"), true},
		{Sym("a"), Sym("b"), false},
		{Sym("1"), Int(1), false}, // symbol "1" differs from integer 1
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Var{Name: "X"}, Var{Name: "X"}, true},
		{Var{Name: "X"}, Var{Name: "Y"}, false},
		{Var{Name: "X"}, Sym("x"), false},
		{f(Sym("a")), f(Sym("a")), true},
		{f(Sym("a")), f(Sym("b")), false},
		{f(Sym("a")), f(Sym("a"), Sym("a")), false},
		{f(Sym("a")), Compound{Functor: "g", Args: []Term{Sym("a")}}, false},
		{f(f(Int(1))), f(f(Int(1))), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%s.Equal(%s) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal not symmetric on %s, %s", c.a, c.b)
		}
	}
}

func TestTermGround(t *testing.T) {
	f := func(args ...Term) Term { return Compound{Functor: "f", Args: args} }
	cases := []struct {
		t    Term
		want bool
	}{
		{Sym("a"), true},
		{Int(0), true},
		{Var{Name: "X"}, false},
		{f(Sym("a"), Int(1)), true},
		{f(Sym("a"), Var{Name: "X"}), false},
		{f(f(Var{Name: "Y"})), false},
	}
	for _, c := range cases {
		if got := c.t.Ground(); got != c.want {
			t.Errorf("Ground(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTermVars(t *testing.T) {
	x, y := Var{Name: "X"}, Var{Name: "Y"}
	f := Compound{Functor: "f", Args: []Term{x, Compound{Functor: "g", Args: []Term{y, x}}}}
	vs := TermVars(f, nil)
	if len(vs) != 2 || vs[0].Name != "X" || vs[1].Name != "Y" {
		t.Errorf("TermVars = %v, want [X Y] (first-occurrence order, deduplicated)", vs)
	}
	if vs := TermVars(Sym("a"), nil); len(vs) != 0 {
		t.Errorf("TermVars(a) = %v, want none", vs)
	}
}

func TestTermDepthAndSize(t *testing.T) {
	g := Compound{Functor: "g", Args: []Term{Int(1)}}
	f := Compound{Functor: "f", Args: []Term{g, Sym("a")}}
	cases := []struct {
		t           Term
		depth, size int
	}{
		{Sym("a"), 0, 1},
		{Int(3), 0, 1},
		{Var{Name: "X"}, 0, 1},
		{g, 1, 2},
		{f, 2, 4},
	}
	for _, c := range cases {
		if got := TermDepth(c.t); got != c.depth {
			t.Errorf("TermDepth(%s) = %d, want %d", c.t, got, c.depth)
		}
		if got := TermSize(c.t); got != c.size {
			t.Errorf("TermSize(%s) = %d, want %d", c.t, got, c.size)
		}
	}
}

func TestCompareTerms(t *testing.T) {
	// Ints before syms before compounds before vars; then by value.
	ordered := []Term{
		Int(-1), Int(0), Int(5),
		Sym("a"), Sym("b"),
		Compound{Functor: "f", Args: []Term{Sym("a")}},
		Compound{Functor: "f", Args: []Term{Sym("b")}},
		Compound{Functor: "f", Args: []Term{Sym("a"), Sym("a")}},
		Compound{Functor: "g", Args: []Term{Sym("a")}},
		Var{Name: "X"},
	}
	for i := range ordered {
		for j := range ordered {
			got := CompareTerms(ordered[i], ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%s, %s) = %d, want < 0", ordered[i], ordered[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%s, %s) = %d, want > 0", ordered[i], ordered[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%s, %s) = %d, want 0", ordered[i], ordered[j], got)
			}
		}
	}
}

func TestSortTerms(t *testing.T) {
	ts := []Term{Sym("b"), Int(3), Sym("a"), Int(1)}
	SortTerms(ts)
	want := "1 3 a b"
	got := ""
	for i, x := range ts {
		if i > 0 {
			got += " "
		}
		got += x.String()
	}
	if got != want {
		t.Errorf("SortTerms = %q, want %q", got, want)
	}
}

func TestSubstituteTerm(t *testing.T) {
	x, y := Var{Name: "X"}, Var{Name: "Y"}
	f := Compound{Functor: "f", Args: []Term{x, y}}
	out := SubstituteTerm(f, func(v Var) Term {
		if v.Name == "X" {
			return Sym("a")
		}
		return nil // Y stays
	})
	if out.String() != "f(a, Y)" {
		t.Errorf("SubstituteTerm = %s, want f(a, Y)", out)
	}
	// The original is unchanged.
	if f.String() != "f(X, Y)" {
		t.Errorf("substitution mutated the source term: %s", f)
	}
}
