package ast

import "strings"

// Atom is a predicate applied to terms: p(t1,...,tn). A propositional atom
// has no arguments.
type Atom struct {
	Pred string
	Args []Term
}

// String renders the atom in the surface syntax.
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports structural equality of atoms.
func (a Atom) Equal(o Atom) bool {
	if a.Pred != o.Pred || len(a.Args) != len(o.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// Ground reports whether every argument of the atom is ground.
func (a Atom) Ground() bool {
	for _, t := range a.Args {
		if !t.Ground() {
			return false
		}
	}
	return true
}

// Vars appends the variables of the atom to vs in order of first occurrence.
func (a Atom) Vars(vs []Var) []Var {
	for _, t := range a.Args {
		vs = TermVars(t, vs)
	}
	return vs
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// PredKey identifies a predicate by name and arity, e.g. "parent/2".
type PredKey struct {
	Name  string
	Arity int
}

// Key returns the atom's predicate key.
func (a Atom) Key() PredKey { return PredKey{a.Pred, len(a.Args)} }

// String renders the key in the conventional name/arity form.
func (k PredKey) String() string {
	var b strings.Builder
	b.WriteString(k.Name)
	b.WriteByte('/')
	// small arities only; avoid fmt for speed in hot printing paths
	if k.Arity >= 10 {
		b.WriteByte(byte('0' + k.Arity/10))
	}
	b.WriteByte(byte('0' + k.Arity%10))
	return b.String()
}

// Literal is an atom or its classical negation. The paper writes the
// negation as ¬A; the surface syntax writes -A.
type Literal struct {
	Neg  bool
	Atom Atom
}

// Pos returns the positive literal on atom a.
func Pos(a Atom) Literal { return Literal{Neg: false, Atom: a} }

// Neg returns the negative literal on atom a.
func Neg(a Atom) Literal { return Literal{Neg: true, Atom: a} }

// String renders the literal in the surface syntax.
func (l Literal) String() string {
	if l.Neg {
		return "-" + l.Atom.String()
	}
	return l.Atom.String()
}

// Equal reports structural equality of literals.
func (l Literal) Equal(o Literal) bool { return l.Neg == o.Neg && l.Atom.Equal(o.Atom) }

// Complement returns the complementary literal (A <-> -A).
func (l Literal) Complement() Literal { return Literal{Neg: !l.Neg, Atom: l.Atom} }

// Ground reports whether the underlying atom is ground.
func (l Literal) Ground() bool { return l.Atom.Ground() }

// Vars appends the variables of the literal to vs.
func (l Literal) Vars(vs []Var) []Var { return l.Atom.Vars(vs) }

// CompareAtoms orders ground atoms canonically: by predicate name, then
// arity, then arguments.
func CompareAtoms(a, b Atom) int {
	if c := strings.Compare(a.Pred, b.Pred); c != 0 {
		return c
	}
	if c := len(a.Args) - len(b.Args); c != 0 {
		return c
	}
	for i := range a.Args {
		if c := CompareTerms(a.Args[i], b.Args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// CompareLiterals orders literals for canonical model printing: by
// predicate name, then arity, then arguments, positives before negatives.
func CompareLiterals(a, b Literal) int {
	if c := CompareAtoms(a.Atom, b.Atom); c != 0 {
		return c
	}
	switch {
	case !a.Neg && b.Neg:
		return -1
	case a.Neg && !b.Neg:
		return 1
	}
	return 0
}
