package ast

import "strings"

// Query is a conjunctive goal ?- l1, ..., ln, builtins. Queries are not
// part of an ordered program's semantics; they are evaluated against a
// computed model by the engine.
type Query struct {
	Body     []Literal
	Builtins []Builtin
}

// Vars returns the variables of the query in order of first occurrence.
func (q Query) Vars() []Var {
	var vs []Var
	for _, l := range q.Body {
		vs = l.Vars(vs)
	}
	for _, b := range q.Builtins {
		vs = b.Vars(vs)
	}
	return vs
}

// String renders the query in the surface syntax.
func (q Query) String() string {
	var b strings.Builder
	b.WriteString("?- ")
	writeList(&b, q.Body, ", ")
	if len(q.Body) > 0 && len(q.Builtins) > 0 {
		b.WriteString(", ")
	}
	writeList(&b, q.Builtins, ", ")
	b.WriteByte('.')
	return b.String()
}
