package ast

import (
	"strings"
	"testing"
)

func rule(head Literal, body ...Literal) *Rule { return &Rule{Head: head, Body: body} }

func TestRulePredicates(t *testing.T) {
	r := rule(Pos(atomOf("p", Var{Name: "X"})), Pos(atomOf("q", Var{Name: "X"})), Neg(atomOf("r")))
	if r.IsFact() {
		t.Error("rule with body IsFact")
	}
	if !Fact(Pos(atomOf("p"))).IsFact() {
		t.Error("fact not IsFact")
	}
	if !r.IsSeminegative() {
		t.Error("positive-head rule not seminegative")
	}
	if r.IsPositive() {
		t.Error("rule with negative body literal IsPositive")
	}
	pos := rule(Pos(atomOf("p")), Pos(atomOf("q")))
	if !pos.IsPositive() {
		t.Error("Horn clause not IsPositive")
	}
	negHead := rule(Neg(atomOf("p")))
	if negHead.IsSeminegative() || negHead.IsPositive() {
		t.Error("negative-head rule misclassified")
	}
}

func TestRuleString(t *testing.T) {
	r := &Rule{
		Head:     Pos(atomOf("take_loan")),
		Body:     []Literal{Pos(atomOf("inflation", Var{Name: "X"}))},
		Builtins: []Builtin{{Op: GT, L: te(Var{Name: "X"}), R: te(Int(11))}},
	}
	if got := r.String(); got != "take_loan :- inflation(X), X > 11." {
		t.Errorf("Rule.String = %q", got)
	}
	if got := Fact(Neg(atomOf("fly", Sym("p")))).String(); got != "-fly(p)." {
		t.Errorf("fact String = %q", got)
	}
}

func TestRuleVarsAndGround(t *testing.T) {
	r := &Rule{
		Head:     Pos(atomOf("p", Var{Name: "X"})),
		Body:     []Literal{Pos(atomOf("q", Var{Name: "Y"}))},
		Builtins: []Builtin{{Op: LT, L: te(Var{Name: "Y"}), R: te(Var{Name: "Z"})}},
	}
	vs := r.Vars()
	if len(vs) != 3 || vs[0].Name != "X" || vs[1].Name != "Y" || vs[2].Name != "Z" {
		t.Errorf("Rule.Vars = %v", vs)
	}
	if r.Ground() {
		t.Error("non-ground rule Ground")
	}
	g := r.Substitute(func(v Var) Term { return Int(1) })
	if !g.Ground() {
		t.Errorf("substituted rule not ground: %s", g)
	}
	if r.Ground() {
		t.Error("Substitute mutated the source rule")
	}
}

func TestRuleEqualAndClone(t *testing.T) {
	a := rule(Pos(atomOf("p")), Pos(atomOf("q")), Neg(atomOf("r")))
	b := rule(Pos(atomOf("p")), Pos(atomOf("q")), Neg(atomOf("r")))
	if !a.Equal(b) {
		t.Error("equal rules not Equal")
	}
	c := rule(Pos(atomOf("p")), Neg(atomOf("r")), Pos(atomOf("q"))) // body order matters
	if a.Equal(c) {
		t.Error("body-permuted rules Equal")
	}
	cl := a.Clone()
	if !a.Equal(cl) {
		t.Error("clone differs")
	}
	cl.Body[0] = Neg(atomOf("q"))
	if a.Equal(cl) {
		t.Error("mutating clone affected source")
	}
}

func buildProgram(t *testing.T, edges [][2]string, comps ...string) *OrderedProgram {
	t.Helper()
	p := NewOrderedProgram()
	for _, c := range comps {
		if err := p.AddComponent(&Component{Name: c}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := p.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOrderValidation(t *testing.T) {
	p := NewOrderedProgram()
	if err := p.AddComponent(&Component{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddComponent(&Component{Name: "a"}); err == nil {
		t.Error("duplicate component accepted")
	}
	if err := p.AddEdge("a", "a"); err == nil {
		t.Error("self edge accepted")
	}
	if err := p.AddEdge("a", "zzz"); err == nil {
		t.Error("edge to unknown component accepted")
	}

	// A cycle through three components must be rejected.
	q := NewOrderedProgram()
	for _, c := range []string{"a", "b", "c"} {
		if err := q.AddComponent(&Component{Name: c}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}} {
		if err := q.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Validate(); err == nil {
		t.Error("cyclic order accepted")
	}
}

func TestOrderRelations(t *testing.T) {
	// Diamond: d < b < a, d < c < a; b and c incomparable.
	p := buildProgram(t, [][2]string{{"d", "b"}, {"d", "c"}, {"b", "a"}, {"c", "a"}}, "a", "b", "c", "d")
	idx := func(n string) int {
		i, ok := p.ComponentIndex(n)
		if !ok {
			t.Fatalf("missing %s", n)
		}
		return i
	}
	a, b, c, d := idx("a"), idx("b"), idx("c"), idx("d")
	if !p.Less(d, a) {
		t.Error("transitive closure missing d < a")
	}
	if !p.Less(b, a) || !p.Less(d, b) || !p.Less(d, c) || !p.Less(c, a) {
		t.Error("declared edges missing from closure")
	}
	if p.Less(a, d) || p.Less(b, c) || p.Less(c, b) {
		t.Error("spurious order relations")
	}
	if !p.Incomparable(b, c) {
		t.Error("b and c should be incomparable")
	}
	if p.Incomparable(d, a) || p.Incomparable(a, a) {
		t.Error("Incomparable wrong on comparable/equal pairs")
	}
	above := p.Above(d)
	if len(above) != 4 {
		t.Errorf("Above(d) = %v, want all four components", above)
	}
	if got := p.Above(a); len(got) != 1 || got[0] != a {
		t.Errorf("Above(a) = %v, want [a]", got)
	}
}

func TestVisibleRules(t *testing.T) {
	p := buildProgram(t, [][2]string{{"c1", "c2"}}, "c2", "c1")
	p.Component("c2").AddRule(Fact(Pos(atomOf("top"))))
	p.Component("c1").AddRule(Fact(Pos(atomOf("bottom"))))
	i1, _ := p.ComponentIndex("c1")
	i2, _ := p.ComponentIndex("c2")
	if got := len(p.VisibleRules(i1)); got != 2 {
		t.Errorf("c1 sees %d rules, want 2", got)
	}
	if got := len(p.VisibleRules(i2)); got != 1 {
		t.Errorf("c2 sees %d rules, want 1", got)
	}
}

func TestProgramInventories(t *testing.T) {
	p := buildProgram(t, nil, "c")
	c := p.Component("c")
	c.AddRule(&Rule{
		Head: Pos(atomOf("p", Sym("a"), Int(3))),
		Body: []Literal{Neg(atomOf("q", Compound{Functor: "f", Args: []Term{Sym("b")}}))},
		Builtins: []Builtin{
			{Op: GT, L: te(Var{Name: "X"}), R: te(Int(7))},
		},
	})
	preds := p.Predicates()
	if len(preds) != 2 || preds[0].String() != "p/2" || preds[1].String() != "q/1" {
		t.Errorf("Predicates = %v", preds)
	}
	consts := p.Constants()
	var names []string
	for _, x := range consts {
		names = append(names, x.String())
	}
	if got := strings.Join(names, " "); got != "3 7 a b" {
		t.Errorf("Constants = %q, want \"3 7 a b\"", got)
	}
	fns := p.Functors()
	if len(fns) != 1 || fns[0].String() != "f/1" {
		t.Errorf("Functors = %v", fns)
	}
	if p.NumRules() != 1 {
		t.Errorf("NumRules = %d", p.NumRules())
	}
}

func TestProgramStringRoundTripShape(t *testing.T) {
	p := buildProgram(t, [][2]string{{"c1", "c2"}}, "c2", "c1")
	p.Component("c2").AddRule(Fact(Pos(atomOf("a"))))
	s := p.String()
	for _, want := range []string{"module c2 {", "module c1 {", "order c1 < c2."} {
		if !strings.Contains(s, want) {
			t.Errorf("program String missing %q:\n%s", want, s)
		}
	}
}

func TestSingleComponent(t *testing.T) {
	p := SingleComponent("only", []*Rule{Fact(Pos(atomOf("a")))})
	if len(p.Components) != 1 || p.Components[0].Name != "only" {
		t.Errorf("SingleComponent shape wrong: %v", p.Components)
	}
	if p.Component("only") == nil || p.Component("other") != nil {
		t.Error("Component lookup wrong")
	}
}

func TestComponentClassification(t *testing.T) {
	c := &Component{Name: "c"}
	c.AddRule(rule(Pos(atomOf("p")), Pos(atomOf("q"))))
	if !c.IsSeminegative() || !c.IsPositive() {
		t.Error("Horn component misclassified")
	}
	c.AddRule(rule(Pos(atomOf("p")), Neg(atomOf("q"))))
	if !c.IsSeminegative() || c.IsPositive() {
		t.Error("seminegative component misclassified")
	}
	c.AddRule(rule(Neg(atomOf("p"))))
	if c.IsSeminegative() {
		t.Error("negative component misclassified")
	}
}

func TestQueryStringAndVars(t *testing.T) {
	q := Query{
		Body:     []Literal{Pos(atomOf("p", Var{Name: "X"})), Neg(atomOf("q", Var{Name: "Y"}))},
		Builtins: []Builtin{{Op: LT, L: te(Var{Name: "X"}), R: te(Var{Name: "Y"})}},
	}
	if got := q.String(); got != "?- p(X), -q(Y), X < Y." {
		t.Errorf("Query.String = %q", got)
	}
	vs := q.Vars()
	if len(vs) != 2 || vs[0].Name != "X" || vs[1].Name != "Y" {
		t.Errorf("Query.Vars = %v", vs)
	}
}
