package ast

import "testing"

func te(t Term) Expr { return TermExpr{Term: t} }

func TestEvalExpr(t *testing.T) {
	cases := []struct {
		e    Expr
		want Term
		ok   bool
	}{
		{te(Int(3)), Int(3), true},
		{te(Sym("a")), Sym("a"), true},
		{te(Var{Name: "X"}), nil, false},
		{BinExpr{Op: Add, L: te(Int(2)), R: te(Int(3))}, Int(5), true},
		{BinExpr{Op: Sub, L: te(Int(2)), R: te(Int(3))}, Int(-1), true},
		{BinExpr{Op: Mul, L: te(Int(4)), R: te(Int(3))}, Int(12), true},
		{BinExpr{Op: Div, L: te(Int(7)), R: te(Int(2))}, Int(3), true},
		{BinExpr{Op: Div, L: te(Int(7)), R: te(Int(0))}, nil, false},
		{BinExpr{Op: Mod, L: te(Int(7)), R: te(Int(3))}, Int(1), true},
		{BinExpr{Op: Mod, L: te(Int(7)), R: te(Int(0))}, nil, false},
		{BinExpr{Op: Add, L: te(Sym("a")), R: te(Int(1))}, nil, false},
		{BinExpr{Op: Add, L: BinExpr{Op: Mul, L: te(Int(2)), R: te(Int(3))}, R: te(Int(1))}, Int(7), true},
	}
	for _, c := range cases {
		got, ok := EvalExpr(c.e)
		if ok != c.ok {
			t.Errorf("EvalExpr(%s) ok = %v, want %v", c.e, ok, c.ok)
			continue
		}
		if ok && !got.Equal(c.want) {
			t.Errorf("EvalExpr(%s) = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestEvalBuiltin(t *testing.T) {
	cases := []struct {
		b         Builtin
		holds, ok bool
	}{
		{Builtin{Op: EQ, L: te(Int(3)), R: te(Int(3))}, true, true},
		{Builtin{Op: EQ, L: te(Sym("a")), R: te(Sym("a"))}, true, true},
		{Builtin{Op: EQ, L: te(Sym("a")), R: te(Sym("b"))}, false, true},
		{Builtin{Op: EQ, L: te(Sym("1")), R: te(Int(1))}, false, true},
		{Builtin{Op: NE, L: te(Sym("a")), R: te(Sym("b"))}, true, true},
		{Builtin{Op: LT, L: te(Int(1)), R: te(Int(2))}, true, true},
		{Builtin{Op: LE, L: te(Int(2)), R: te(Int(2))}, true, true},
		{Builtin{Op: GT, L: te(Int(1)), R: te(Int(2))}, false, true},
		{Builtin{Op: GE, L: te(Int(2)), R: te(Int(3))}, false, true},
		// Ordering on non-integers is ill-typed.
		{Builtin{Op: LT, L: te(Sym("a")), R: te(Sym("b"))}, false, false},
		// Unbound variables make the builtin unevaluable.
		{Builtin{Op: LT, L: te(Var{Name: "X"}), R: te(Int(2))}, false, false},
		// Arithmetic inside comparisons (Figure 3's X > Y + 2).
		{Builtin{Op: GT, L: te(Int(19)), R: BinExpr{Op: Add, L: te(Int(16)), R: te(Int(2))}}, true, true},
		{Builtin{Op: GT, L: te(Int(12)), R: BinExpr{Op: Add, L: te(Int(16)), R: te(Int(2))}}, false, true},
	}
	for _, c := range cases {
		holds, ok := EvalBuiltin(c.b)
		if holds != c.holds || ok != c.ok {
			t.Errorf("EvalBuiltin(%s) = (%v,%v), want (%v,%v)", c.b, holds, ok, c.holds, c.ok)
		}
	}
}

func TestCmpOpNegate(t *testing.T) {
	pairs := [][2]CmpOp{{EQ, NE}, {LT, GE}, {LE, GT}}
	for _, p := range pairs {
		if p[0].Negate() != p[1] || p[1].Negate() != p[0] {
			t.Errorf("Negate(%s) <-> %s broken", p[0], p[1])
		}
	}
}

func TestBuiltinString(t *testing.T) {
	b := Builtin{Op: GT, L: te(Var{Name: "X"}), R: BinExpr{Op: Add, L: te(Var{Name: "Y"}), R: te(Int(2))}}
	if got := b.String(); got != "X > (Y + 2)" {
		t.Errorf("Builtin.String = %q", got)
	}
	vs := b.Vars(nil)
	if len(vs) != 2 || vs[0].Name != "X" || vs[1].Name != "Y" {
		t.Errorf("Builtin.Vars = %v", vs)
	}
}

func TestSubstituteExpr(t *testing.T) {
	e := BinExpr{Op: Add, L: te(Var{Name: "X"}), R: te(Var{Name: "Y"})}
	out := SubstituteExpr(e, func(v Var) Term {
		if v.Name == "X" {
			return Int(4)
		}
		return nil
	})
	if got := out.String(); got != "(4 + Y)" {
		t.Errorf("SubstituteExpr = %q", got)
	}
}

func TestBuiltinEqual(t *testing.T) {
	a := Builtin{Op: GT, L: te(Var{Name: "X"}), R: te(Int(1))}
	b := Builtin{Op: GT, L: te(Var{Name: "X"}), R: te(Int(1))}
	c := Builtin{Op: GE, L: te(Var{Name: "X"}), R: te(Int(1))}
	if !a.Equal(b) {
		t.Error("equal builtins not Equal")
	}
	if a.Equal(c) {
		t.Error("different op builtins Equal")
	}
}
