package relevance_test

import (
	"testing"

	"repro/internal/relevance"
)

// The degraded-SIP pin: head-only information passing loses the binding
// exactly when it only flows through body-local variables, and the
// analysis must name those predicates so callers can warn (DESIGN §12).

const rightRecSrc = `
module main {
  edge(c0, c1). edge(c1, c2).
  path(X, Z) :- edge(X, Y), path(Y, Z).
  path(X, Y) :- edge(X, Y).
}
`

const leftRecSrc = `
module main {
  edge(c0, c1). edge(c1, c2).
  path(X, Z) :- path(X, Y), edge(Y, Z).
  path(X, Y) :- edge(X, Y).
}
`

func TestDegradedRightRecursion(t *testing.T) {
	// path(c0, X) over the right-recursive rule: the recursive call
	// path(Y, Z) shares no variable with the head's bound position — Y is
	// reachable only sideways through edge(X, Y) — so the head-only SIP
	// collapses path to all-free and must report it as degraded.
	a := relevance.Analyze(parse(t, rightRecSrc), goalOf(t, "path(c0, X)"))
	if got := a.AdornString(key("path", 2)); got != "path/2^ff" {
		t.Fatalf("path adornment = %q, want path/2^ff (head-only loses the binding)", got)
	}
	if len(a.Degraded) != 1 || a.Degraded[0] != key("path", 2) {
		t.Fatalf("Degraded = %v, want [path/2]", a.Degraded)
	}
}

func TestLeftRecursionNotDegraded(t *testing.T) {
	// The left-recursive formulation passes the binding through the head
	// variable X itself: restricted to (b,f), nothing degraded.
	a := relevance.Analyze(parse(t, leftRecSrc), goalOf(t, "path(c0, X)"))
	if got := a.AdornString(key("path", 2)); got != "path/2^bf" {
		t.Fatalf("path adornment = %q, want path/2^bf", got)
	}
	if len(a.Degraded) != 0 {
		t.Fatalf("Degraded = %v, want none", a.Degraded)
	}
}

func TestPointGoalRightRecursionNotDegraded(t *testing.T) {
	// A fully ground goal still keeps the second position bound through
	// the head (Z appears in both head and recursive call), so the slice
	// stays restricted and no degradation is reported.
	a := relevance.Analyze(parse(t, rightRecSrc), goalOf(t, "path(c0, c2)"))
	if got := a.AdornString(key("path", 2)); got != "path/2^fb" {
		t.Fatalf("path adornment = %q, want path/2^fb", got)
	}
	if len(a.Degraded) != 0 {
		t.Fatalf("Degraded = %v, want none", a.Degraded)
	}
}

func TestAllFreeGoalNotDegraded(t *testing.T) {
	// An unbound goal was never restricted to begin with: all-free by
	// construction is not a degradation.
	a := relevance.Analyze(parse(t, rightRecSrc), goalOf(t, "path(X, Y)"))
	if len(a.Degraded) != 0 {
		t.Fatalf("Degraded = %v, want none for an all-free goal", a.Degraded)
	}
}
