package relevance_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relevance"
)

func parse(t *testing.T, src string) *ast.OrderedProgram {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func goalOf(t *testing.T, lits ...string) []ast.Literal {
	t.Helper()
	goal := make([]ast.Literal, len(lits))
	for i, s := range lits {
		l, err := parser.ParseLiteral(s)
		if err != nil {
			t.Fatal(err)
		}
		goal[i] = l
	}
	return goal
}

func key(name string, arity int) ast.PredKey { return ast.PredKey{Name: name, Arity: arity} }

// The right-recursive transitive closure: path keeps its first position
// bound under head-only information passing, edge is EDB-exempt, and the
// disconnected junk predicates fall out of the slice entirely.
const chainSrc = `
module base {
  edge(c0, c1). edge(c1, c2). edge(c2, c3).
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- path(X, Y), edge(Y, Z).
}
module exc extends base {
  -path(X, c3) :- edge(X, c3).
}
module junk {
  je(d0, d1).
  jp(X) :- je(X, Y).
}
`

func TestChainRightRecursive(t *testing.T) {
	p := parse(t, chainSrc)
	a := relevance.Analyze(p, goalOf(t, "path(c0, X)"))

	if got := a.AdornString(key("path", 2)); got != "path/2^bf" {
		t.Errorf("path adornment = %q, want path/2^bf", got)
	}
	if !a.Restricted(key("path", 2)) {
		t.Error("path not restricted")
	}
	if !a.EDB[key("edge", 2)] || a.Restricted(key("edge", 2)) {
		t.Error("edge should be EDB-exempt and unrestricted")
	}
	for _, k := range []ast.PredKey{key("je", 2), key("jp", 1)} {
		if a.Demanded[k] {
			t.Errorf("disconnected predicate %v demanded", k)
		}
	}
	for _, c := range p.Components {
		for _, r := range c.Rules {
			want := c.Name != "junk"
			if got := a.RuleDemanded(r); got != want {
				t.Errorf("RuleDemanded(%s in %s) = %v, want %v", r, c.Name, got, want)
			}
		}
	}
	if len(a.Seeds) != 1 {
		t.Fatalf("seeds = %v, want exactly one", a.Seeds)
	}
	s := a.Seeds[0]
	if s.Key != key("m:path/2", 1) || len(s.Args) != 1 || s.Args[0].String() != "c0" {
		t.Errorf("seed = %+v, want m:path/2(c0)", s)
	}
	// One propagation rule (the recursive call), deduplicated and safe.
	if len(a.Magic) != 1 {
		t.Fatalf("magic rules = %v, want exactly one", a.Magic)
	}
	for _, r := range a.Magic {
		if err := r.CheckSafety(); err != nil {
			t.Errorf("magic rule unsafe: %v", err)
		}
	}
	if got, want := a.Magic[0].String(), "m:path/2(X) :- m:path/2(X)."; got != want {
		t.Errorf("magic rule = %q, want %q", got, want)
	}
}

// The left-recursive formulation defeats head-only information passing:
// the recursive call's first argument is not head-bound, so the meet
// collapses to all-free and path is unrestricted (sound, just not sliced
// by bindings — see DESIGN §12).
func TestChainLeftRecursiveUnrestricted(t *testing.T) {
	p := parse(t, `
module base {
  edge(c0, c1). edge(c1, c2).
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- edge(X, Y), path(Y, Z).
}
`)
	a := relevance.Analyze(p, goalOf(t, "path(c0, X)"))
	if got := a.AdornString(key("path", 2)); got != "path/2^ff" {
		t.Errorf("path adornment = %q, want path/2^ff", got)
	}
	if a.Restricted(key("path", 2)) {
		t.Error("left-recursive path should be unrestricted")
	}
	if len(a.Seeds) != 0 || len(a.Magic) != 0 {
		t.Errorf("unrestricted slice has seeds %v / magic %v", a.Seeds, a.Magic)
	}
}

// Upward closure pulls in consumers of demanded predicates (so the slice
// stays closed for model enumeration); consumers without call sites of
// their own are pinned unrestricted, and their ground call sites become
// guardless magic facts.
func TestUpwardClosure(t *testing.T) {
	p := parse(t, chainSrc+`
module watch {
  mark(X) :- path(c1, X).
}
`)
	a := relevance.Analyze(p, goalOf(t, "path(c0, X)"))
	mk := key("mark", 1)
	if !a.Demanded[mk] {
		t.Fatal("mark not demanded through upward closure")
	}
	if a.Restricted(mk) {
		t.Error("mark has no call site and must be unrestricted")
	}
	// mark's body occurrence path(c1, X) contributes a guardless demand
	// fact m:path/2(c1) so the c1 cone grounds like the full program.
	found := false
	for _, r := range a.Magic {
		if r.Head.Key == key("m:path/2", 1) && len(r.Body) == 0 &&
			len(r.Head.Args) == 1 && r.Head.Args[0].String() == "c1" {
			found = true
		}
		if err := r.CheckSafety(); err != nil {
			t.Errorf("magic rule unsafe: %v", err)
		}
	}
	if !found {
		t.Errorf("missing guardless m:path/2(c1) fact; magic = %v", a.Magic)
	}
}

// A predicate defined by rules (not just ground facts) loses the EDB
// exemption and can be restricted when all call sites bind it.
func TestDerivedPredicateRestricted(t *testing.T) {
	p := parse(t, `
module m {
  raw(c0, c1).
  edge(X, Y) :- raw(X, Y).
  out(Y) :- edge(c0, Y).
}
`)
	a := relevance.Analyze(p, goalOf(t, "out(X)"))
	if a.EDB[key("edge", 2)] {
		t.Error("derived edge must not be EDB-exempt")
	}
	if got := a.AdornString(key("edge", 2)); got != "edge/2^bf" {
		t.Errorf("edge adornment = %q, want edge/2^bf", got)
	}
	if !a.EDB[key("raw", 2)] {
		t.Error("raw should be EDB-exempt")
	}
	if a.Restricted(key("out", 1)) {
		t.Error("out is unbound in the goal and must be unrestricted")
	}
	if len(a.Seeds) != 0 {
		t.Errorf("no goal literal is restricted, seeds = %v", a.Seeds)
	}
	found := false
	for _, r := range a.Magic {
		if r.Head.Key == key("m:edge/2", 1) && len(r.Body) == 0 &&
			len(r.Head.Args) == 1 && r.Head.Args[0].String() == "c0" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing guardless m:edge/2(c0) fact; magic = %v", a.Magic)
	}
}

func TestPropositionalGoal(t *testing.T) {
	p := parse(t, "module m {\n  b.\n  a :- b.\n}\n")
	a := relevance.Analyze(p, goalOf(t, "a"))
	if !a.Demanded[key("a", 0)] || !a.Demanded[key("b", 0)] {
		t.Error("propositional closure incomplete")
	}
	if a.Restricted(key("a", 0)) || len(a.Seeds) != 0 || len(a.Magic) != 0 {
		t.Error("arity-0 predicates must never be restricted")
	}
}

func TestEmptyGoal(t *testing.T) {
	p := parse(t, chainSrc)
	a := relevance.Analyze(p, nil)
	if a.NumDemanded() != 0 {
		t.Errorf("empty goal demanded %d predicates", a.NumDemanded())
	}
}

func TestGoalKey(t *testing.T) {
	g1 := goalOf(t, "path(c0, X)", "-edge(X, Y)")
	g2 := goalOf(t, "-edge(A, B)", "path(c0, Z)")
	if k1, k2 := relevance.GoalKey(g1), relevance.GoalKey(g2); k1 != k2 {
		t.Errorf("GoalKey order/variable-name sensitive: %q vs %q", k1, k2)
	}
	if k := relevance.GoalKey(goalOf(t, "path(c0, X)")); k != "path/2(c0,_)" {
		t.Errorf("GoalKey = %q", k)
	}
	pos := relevance.GoalKey(goalOf(t, "edge(c0, c1)"))
	neg := relevance.GoalKey(goalOf(t, "-edge(c0, c1)"))
	if pos == neg {
		t.Error("GoalKey ignores the literal sign")
	}
	if !strings.Contains(neg, "-edge/2") {
		t.Errorf("negative GoalKey = %q", neg)
	}
}
