// Package relevance computes the query-reachable slice of an ordered
// logic program: an adorned predicate-dependency analysis plus a
// magic-set style demand transform. Given a conjunctive goal it decides
//
//   - which predicates are demanded — connected to the goal through
//     rules, closed in both directions (a demanded head demands its body
//     predicates, and a rule whose body mentions a demanded predicate
//     demands its head predicate) and over both head signs, so the
//     Definition 2 overruler/defeater sources of every demanded
//     predicate are pulled in too (a competitor rule's head is the
//     complementary literal of a demanded one, i.e. the same predicate
//     key), and so no rule outside the slice ever reads an atom inside
//     it — which is what lets assumption-free/stable model sets project
//     onto the slice instead of just the least model;
//   - an adornment (bound/free mask) per demanded predicate: the meet of
//     every occurrence's bound positions, where a position is bound when
//     its argument is ground or all its variables occur at a bound head
//     position of the enclosing rule (head-only sideways information
//     passing — deliberately weaker than full left-to-right SIPs, see
//     DESIGN §12);
//   - the magic ("demand") relations, seed tuples and propagation rules
//     that restrict the grounder's possible-atom fixpoint to bindings
//     actually reachable from the goal.
//
// Predicates whose positive definitions are all ground facts are exempt
// from binding restriction: the smart grounder's competitor pass joins
// their possible-atom relations directly (ground.emitCompetitors), so
// restricting them would make competitor emission — and with it the
// Definition 2 rule statuses inside the slice — diverge from the full
// grounding.
package relevance

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/datalog"
)

// Seed is one initial demand tuple: the goal literal's ground arguments
// at the predicate's bound positions, inserted into the magic relation
// before the possible-atom fixpoint runs.
type Seed struct {
	Key  ast.PredKey
	Args []ast.Term
}

// Analysis is the result of analysing one program against one goal. All
// maps are keyed by source predicate; Adorn masks have len == arity with
// true marking bound positions.
type Analysis struct {
	Goal     []ast.Literal
	Demanded map[ast.PredKey]bool
	Adorn    map[ast.PredKey][]bool
	// EDB marks demanded predicates exempt from binding restriction:
	// every positive-head rule is a ground fact (or there is none).
	EDB   map[ast.PredKey]bool
	Magic []*datalog.Rule
	Seeds []Seed

	// Degraded lists (sorted) the predicates whose head-only SIP collapsed
	// to all-free even though a full left-to-right SIP would keep at least
	// one position bound — the known head-only limit (DESIGN §12): the
	// binding only flows through body-local variables, e.g. the
	// right-recursive path(X,Z) :- edge(X,Y), path(Y,Z) under goal
	// path(c,W). A degraded predicate loses its magic restriction, so the
	// slice for it is the unrestricted (full) grounding of its region.
	Degraded []ast.PredKey
}

// Analyze runs the demand/adornment analysis of p for the conjunctive
// goal. A nil or empty goal demands nothing (the empty slice).
func Analyze(p *ast.OrderedProgram, goal []ast.Literal) *Analysis {
	a := &Analysis{
		Goal:     goal,
		Demanded: make(map[ast.PredKey]bool),
		Adorn:    make(map[ast.PredKey][]bool),
		EDB:      make(map[ast.PredKey]bool),
	}

	byHead := make(map[ast.PredKey][]*ast.Rule)
	byBody := make(map[ast.PredKey][]*ast.Rule)
	for _, c := range p.Components {
		for _, r := range c.Rules {
			byHead[r.Head.Atom.Key()] = append(byHead[r.Head.Atom.Key()], r)
			for _, l := range r.Body {
				byBody[l.Atom.Key()] = append(byBody[l.Atom.Key()], r)
			}
		}
	}

	// Demand closure, sign-agnostic and bidirectional: the goal's
	// predicates seed it; a demanded predicate demands the body
	// predicates of every rule defining it — in any component, with
	// either head sign — and the head predicate of every rule consuming
	// it. Downward closure keeps the slice derivation-complete (closing
	// over negative-head rules covers the competitors the grounder emits:
	// their head is the complementary literal of a demanded one, so their
	// body predicates are demanded and their possible-atom relations
	// populated). Upward closure guarantees no out-of-slice rule reads an
	// in-slice atom, so the rest of the program cannot skew model
	// maximality relative to the full grounding.
	var work []ast.PredKey
	demand := func(k ast.PredKey) {
		if !a.Demanded[k] {
			a.Demanded[k] = true
			work = append(work, k)
		}
	}
	for _, l := range goal {
		demand(l.Atom.Key())
	}
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		for _, r := range byHead[k] {
			for _, l := range r.Body {
				demand(l.Atom.Key())
			}
		}
		for _, r := range byBody[k] {
			demand(r.Head.Atom.Key())
		}
	}

	// EDB exemption (superset of the grounder's onlyFactPos shape).
	for k := range a.Demanded {
		a.EDB[k] = true
	}
	for _, c := range p.Components {
		for _, r := range c.Rules {
			k := r.Head.Atom.Key()
			if !a.Demanded[k] || r.Head.Neg {
				continue
			}
			if !r.IsFact() || !r.Head.Atom.Ground() {
				a.EDB[k] = false
			}
		}
	}

	// Body occurrences of each demanded predicate inside demanded-head
	// rules (every rule of byHead[k] for demanded k qualifies — its head
	// predicate is k).
	type occurrence struct {
		r   *ast.Rule
		idx int // body position, so sibling literals can be identified
	}
	occs := make(map[ast.PredKey][]occurrence)
	for k := range a.Demanded {
		for _, r := range byHead[k] {
			for i, l := range r.Body {
				occs[l.Atom.Key()] = append(occs[l.Atom.Key()], occurrence{r, i})
			}
		}
	}

	// Meet-adornment fixpoint. Masks start all-bound and only ever
	// shrink: each pass recomputes every predicate's mask as the meet
	// over its occurrences given the current head masks, so the sequence
	// is decreasing and terminates. Arity-0 and EDB-exempt predicates are
	// pinned all-free, as are predicates with no call site at all (in the
	// goal or any rule body) — those are demanded through upward closure
	// only, and an all-bound mask with no seeds would silence their rules
	// instead of grounding them like the full path does.
	inGoal := make(map[ast.PredKey]bool)
	for _, l := range goal {
		inGoal[l.Atom.Key()] = true
	}
	pinnedFree := func(k ast.PredKey) bool {
		return k.Arity == 0 || a.EDB[k] || (len(occs[k]) == 0 && !inGoal[k])
	}
	// solve runs the fixpoint over a private mask map. With sideways off
	// this is the engine's real head-only SIP. With sideways on, a call
	// site's bound-variable set optimistically includes every variable of
	// its sibling body literals — the upper bound a full left-to-right SIP
	// (free to order the body) could deliver; it exists only to detect
	// degradation, never to drive grounding.
	solve := func(sideways bool) map[ast.PredKey][]bool {
		adorn := make(map[ast.PredKey][]bool, len(a.Demanded))
		for k := range a.Demanded {
			if pinnedFree(k) {
				adorn[k] = make([]bool, k.Arity)
				continue
			}
			m := make([]bool, k.Arity)
			for i := range m {
				m[i] = true
			}
			adorn[k] = m
		}
		headBoundVars := func(r *ast.Rule) map[string]bool {
			mask := adorn[r.Head.Atom.Key()]
			var hb map[string]bool
			for i, t := range r.Head.Atom.Args {
				if !mask[i] {
					continue
				}
				for _, v := range ast.TermVars(t, nil) {
					if hb == nil {
						hb = make(map[string]bool)
					}
					hb[v.Name] = true
				}
			}
			return hb
		}
		for changed := true; changed; {
			changed = false
			for k, mask := range adorn {
				if pinnedFree(k) {
					continue
				}
				nm := make([]bool, k.Arity)
				for i := range nm {
					nm[i] = true
				}
				for _, gl := range goal {
					if gl.Atom.Key() != k {
						continue
					}
					for i, t := range gl.Atom.Args {
						if !t.Ground() {
							nm[i] = false
						}
					}
				}
				for _, o := range occs[k] {
					hb := headBoundVars(o.r)
					if sideways {
						for j, bl := range o.r.Body {
							if j == o.idx {
								continue
							}
							for _, t := range bl.Atom.Args {
								for _, v := range ast.TermVars(t, nil) {
									if hb == nil {
										hb = make(map[string]bool)
									}
									hb[v.Name] = true
								}
							}
						}
					}
					for i, t := range o.r.Body[o.idx].Atom.Args {
						if nm[i] && !argBound(t, hb) {
							nm[i] = false
						}
					}
				}
				if !maskEq(nm, mask) {
					adorn[k] = nm
					changed = true
				}
			}
		}
		return adorn
	}
	a.Adorn = solve(false)

	// Degradation diagnostic: predicates the real head-only SIP left fully
	// free but the optimistic sideways bound would restrict. Everything the
	// slice loses to the head-only limit is here; callers surface it (the
	// relevance.sip.degraded counter, ordlog -v).
	opt := solve(true)
	for k, mask := range a.Adorn {
		if pinnedFree(k) || anyBound(mask) || !anyBound(opt[k]) {
			continue
		}
		a.Degraded = append(a.Degraded, k)
	}
	sort.Slice(a.Degraded, func(i, j int) bool {
		if a.Degraded[i].Name != a.Degraded[j].Name {
			return a.Degraded[i].Name < a.Degraded[j].Name
		}
		return a.Degraded[i].Arity < a.Degraded[j].Arity
	})
	countDegraded(len(a.Degraded))

	// Seeds: one per goal literal over a restricted predicate. Bound
	// positions are ground in every goal occurrence (the meet includes
	// them), so the extracted arguments are ground terms.
	for _, gl := range goal {
		k := gl.Atom.Key()
		if !a.Restricted(k) {
			continue
		}
		a.Seeds = append(a.Seeds, Seed{Key: a.MagicKey(k), Args: boundArgs(a.Adorn[k], gl.Atom.Args)})
	}

	// Propagation rules: m:p(bound args of l) :- m:h(bound args of head)
	// for every body occurrence l of a restricted p inside a rule with
	// demanded head h; the guard is dropped when h itself is
	// unrestricted, in which case the bound arguments of l are ground by
	// construction (no head position contributes variables) and the rule
	// degenerates to a fact. Safety holds structurally: every variable
	// at a bound position of l occurs at a bound head position, i.e. in
	// the guard literal.
	dedup := make(map[string]bool)
	for hk := range a.Demanded {
		for _, r := range byHead[hk] {
			guard, guarded := a.GuardLit(r.Head)
			for _, l := range r.Body {
				bk := l.Atom.Key()
				if !a.Restricted(bk) {
					continue
				}
				mr := &datalog.Rule{
					Head: datalog.Lit{Key: a.MagicKey(bk), Args: boundArgs(a.Adorn[bk], l.Atom.Args)},
				}
				if guarded {
					mr.Body = []datalog.Lit{guard}
				}
				key := magicRuleKey(mr)
				if dedup[key] {
					continue
				}
				dedup[key] = true
				a.Magic = append(a.Magic, mr)
			}
		}
	}
	return a
}

// Restricted reports whether the predicate's possible-atom relations are
// magic-guarded in the sliced grounding: demanded, at least one bound
// position, and not EDB-exempt.
func (a *Analysis) Restricted(k ast.PredKey) bool {
	if !a.Demanded[k] || a.EDB[k] {
		return false
	}
	for _, b := range a.Adorn[k] {
		if b {
			return true
		}
	}
	return false
}

// RuleDemanded reports whether the rule survives slicing: its head
// predicate is demanded (either sign — demand is sign-agnostic).
func (a *Analysis) RuleDemanded(r *ast.Rule) bool {
	return a.Demanded[r.Head.Atom.Key()]
}

// MagicKey returns the magic relation for a source predicate. The
// original arity is encoded into the name ("m:p/2") because the magic
// relation's own arity is the bound-position count, and p/2 and p/3 must
// not collide.
func (a *Analysis) MagicKey(k ast.PredKey) ast.PredKey {
	n := 0
	for _, b := range a.Adorn[k] {
		if b {
			n++
		}
	}
	return ast.PredKey{Name: "m:" + k.Name + "/" + strconv.Itoa(k.Arity), Arity: n}
}

// GuardLit returns the magic guard literal for a rule head — the body
// literal restricting the rule's possible-atom derivation (and its join
// instantiation) to demanded bindings — and whether the head predicate
// is restricted at all.
func (a *Analysis) GuardLit(head ast.Literal) (datalog.Lit, bool) {
	k := head.Atom.Key()
	if !a.Restricted(k) {
		return datalog.Lit{}, false
	}
	return datalog.Lit{Key: a.MagicKey(k), Args: boundArgs(a.Adorn[k], head.Atom.Args)}, true
}

// NumDemanded returns the number of demanded predicates.
func (a *Analysis) NumDemanded() int { return len(a.Demanded) }

// NumRestricted returns the number of magic-restricted predicates.
func (a *Analysis) NumRestricted() int {
	n := 0
	for k := range a.Demanded {
		if a.Restricted(k) {
			n++
		}
	}
	return n
}

// DemandedPreds returns the demanded predicates in sorted order (for
// diagnostics and deterministic rendering).
func (a *Analysis) DemandedPreds() []ast.PredKey {
	out := make([]ast.PredKey, 0, len(a.Demanded))
	for k := range a.Demanded {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// AdornString renders a predicate's adornment in the classic b/f
// notation ("path/2^bf"); predicates without positions render bare.
func (a *Analysis) AdornString(k ast.PredKey) string {
	var b strings.Builder
	b.WriteString(k.Name)
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(k.Arity))
	mask := a.Adorn[k]
	if len(mask) == 0 {
		return b.String()
	}
	b.WriteByte('^')
	for _, bound := range mask {
		if bound {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return b.String()
}

// GoalKey canonicalises a goal for slice caching: one entry per literal,
// sign plus predicate plus each argument rendered as its ground term or
// "_" — exactly the information the slice depends on (non-ground
// arguments force their position free regardless of structure) — sorted
// so literal order does not split the cache.
func GoalKey(goal []ast.Literal) string {
	parts := make([]string, len(goal))
	for i, l := range goal {
		var b strings.Builder
		if l.Neg {
			b.WriteByte('-')
		}
		b.WriteString(l.Atom.Pred)
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(len(l.Atom.Args)))
		b.WriteByte('(')
		for j, t := range l.Atom.Args {
			if j > 0 {
				b.WriteByte(',')
			}
			if t.Ground() {
				b.WriteString(t.String())
			} else {
				b.WriteByte('_')
			}
		}
		b.WriteByte(')')
		parts[i] = b.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// argBound reports whether a call-site argument is bound under the given
// head-bound variable set: ground, or every variable head-bound.
func argBound(t ast.Term, hb map[string]bool) bool {
	if t.Ground() {
		return true
	}
	for _, v := range ast.TermVars(t, nil) {
		if !hb[v.Name] {
			return false
		}
	}
	return true
}

func boundArgs(mask []bool, args []ast.Term) []ast.Term {
	var out []ast.Term
	for i, b := range mask {
		if b {
			out = append(out, args[i])
		}
	}
	return out
}

func anyBound(mask []bool) bool {
	for _, b := range mask {
		if b {
			return true
		}
	}
	return false
}

func maskEq(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func magicRuleKey(r *datalog.Rule) string {
	var b strings.Builder
	writeLit := func(l datalog.Lit) {
		b.WriteString(l.Key.Name)
		b.WriteByte('(')
		for i, t := range l.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(t.String())
		}
		b.WriteByte(')')
	}
	writeLit(r.Head)
	for _, l := range r.Body {
		b.WriteString(" :- ")
		writeLit(l)
	}
	return b.String()
}
