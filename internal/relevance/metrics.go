package relevance

import "repro/internal/obs"

// mDegraded counts predicates whose head-only SIP degraded to
// unrestricted (see Analysis.Degraded): the visibility hook for the known
// PR-8 limit, so a deployment can tell "goal-directed but sliced" apart
// from "goal-directed in name only" without tracing every analysis.
var mDegraded = obs.Default().Counter("relevance.sip.degraded")

func countDegraded(n int) {
	if n == 0 || !obs.On() {
		return
	}
	mDegraded.Add(int64(n))
}
