// Package lexer tokenises the .olp surface syntax for ordered logic
// programs. The syntax is Prolog-like:
//
//	% line comment
//	module c2 {
//	  bird(penguin).
//	  fly(X) :- bird(X).
//	  -ground_animal(X) :- bird(X).
//	}
//	module c1 extends c2 {
//	  ground_animal(penguin).
//	  -fly(X) :- ground_animal(X).
//	}
//
// Identifiers starting with a lower-case letter are predicate/constant
// symbols; identifiers starting with an upper-case letter or '_' are
// variables. Keywords (module, extends, order, not, mod) are contextual and
// resolved by the parser.
package lexer

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF      Kind = iota
	Ident         // lower-case identifier: predicates, constants, keywords
	Variable      // upper-case or '_' identifier
	Integer       // decimal integer literal
	LParen        // (
	RParen        // )
	LBrace        // {
	RBrace        // }
	Comma         // ,
	Dot           // .
	Implies       // :-
	Query         // ?-
	Minus         // -
	Plus          // +
	Star          // *
	Slash         // /
	Lt            // <
	Le            // <=
	Gt            // >
	Ge            // >=
	Eq            // =
	Ne            // !=
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Variable:
		return "variable"
	case Integer:
		return "integer"
	case LParen:
		return "'('"
	case RParen:
		return "')'"
	case LBrace:
		return "'{'"
	case RBrace:
		return "'}'"
	case Comma:
		return "','"
	case Dot:
		return "'.'"
	case Implies:
		return "':-'"
	case Query:
		return "'?-'"
	case Minus:
		return "'-'"
	case Plus:
		return "'+'"
	case Star:
		return "'*'"
	case Slash:
		return "'/'"
	case Lt:
		return "'<'"
	case Le:
		return "'<='"
	case Gt:
		return "'>'"
	case Ge:
		return "'>='"
	case Eq:
		return "'='"
	case Ne:
		return "'!='"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	if t.Text != "" && (t.Kind == Ident || t.Kind == Variable || t.Kind == Integer) {
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// Error is a lexical error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

// Lexer scans an input string into tokens.
type Lexer struct {
	src       string
	pos       int
	line, col int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokens scans the entire input, returning all tokens (excluding EOF).
func Tokens(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return out, nil
		}
		out = append(out, t)
	}
}

func (l *Lexer) peek() (rune, int) {
	if l.pos >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.pos:])
}

func (l *Lexer) advance() rune {
	r, w := l.peek()
	l.pos += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		r, _ := l.peek()
		switch {
		case r == '%':
			for {
				r, _ = l.peek()
				if r == 0 || r == '\n' {
					break
				}
				l.advance()
			}
		case unicode.IsSpace(r):
			l.advance()
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentRest(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	r, _ := l.peek()
	mk := func(k Kind, text string) Token { return Token{Kind: k, Text: text, Line: line, Col: col} }
	switch {
	case r == 0:
		return mk(EOF, ""), nil
	case unicode.IsDigit(r):
		start := l.pos
		for {
			r, _ := l.peek()
			if !unicode.IsDigit(r) {
				break
			}
			l.advance()
		}
		return mk(Integer, l.src[start:l.pos]), nil
	case isIdentStart(r):
		start := l.pos
		for {
			r, _ := l.peek()
			if !isIdentRest(r) {
				break
			}
			l.advance()
		}
		text := l.src[start:l.pos]
		first, _ := utf8.DecodeRuneInString(text)
		if first == '_' || unicode.IsUpper(first) {
			return mk(Variable, text), nil
		}
		return mk(Ident, text), nil
	}
	l.advance()
	switch r {
	case '(':
		return mk(LParen, "("), nil
	case ')':
		return mk(RParen, ")"), nil
	case '{':
		return mk(LBrace, "{"), nil
	case '}':
		return mk(RBrace, "}"), nil
	case ',':
		return mk(Comma, ","), nil
	case '.':
		return mk(Dot, "."), nil
	case '+':
		return mk(Plus, "+"), nil
	case '*':
		return mk(Star, "*"), nil
	case '/':
		return mk(Slash, "/"), nil
	case '-':
		return mk(Minus, "-"), nil
	case '~': // accepted synonym for '-' (classical negation)
		return mk(Minus, "~"), nil
	case '=':
		return mk(Eq, "="), nil
	case '<':
		if n, _ := l.peek(); n == '=' {
			l.advance()
			return mk(Le, "<="), nil
		}
		return mk(Lt, "<"), nil
	case '>':
		if n, _ := l.peek(); n == '=' {
			l.advance()
			return mk(Ge, ">="), nil
		}
		return mk(Gt, ">"), nil
	case '!':
		if n, _ := l.peek(); n == '=' {
			l.advance()
			return mk(Ne, "!="), nil
		}
		return Token{}, &Error{line, col, "unexpected '!' (did you mean '!=')"}
	case ':':
		if n, _ := l.peek(); n == '-' {
			l.advance()
			return mk(Implies, ":-"), nil
		}
		return Token{}, &Error{line, col, "unexpected ':' (did you mean ':-')"}
	case '?':
		if n, _ := l.peek(); n == '-' {
			l.advance()
			return mk(Query, "?-"), nil
		}
		return Token{}, &Error{line, col, "unexpected '?' (did you mean '?-')"}
	}
	return Token{}, &Error{line, col, fmt.Sprintf("unexpected character %q", r)}
}
