package lexer

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokensBasicClause(t *testing.T) {
	toks, err := Tokens(`fly(X) :- bird(X).`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Ident, LParen, Variable, RParen, Implies, Ident, LParen, Variable, RParen, Dot}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[0].Text != "fly" || toks[2].Text != "X" {
		t.Errorf("token texts wrong: %v", toks)
	}
}

func TestTokensOperators(t *testing.T) {
	toks, err := Tokens(`< <= > >= = != + - * / , . { } ( ) :- ?- ~`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Lt, Le, Gt, Ge, Eq, Ne, Plus, Minus, Star, Slash,
		Comma, Dot, LBrace, RBrace, LParen, RParen, Implies, Query, Minus}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVariablesVsIdents(t *testing.T) {
	toks, err := Tokens(`foo Foo _bar bAR x1 X1`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Ident, Variable, Variable, Ident, Ident, Variable}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("%q classified as %v, want %v", toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestIntegers(t *testing.T) {
	toks, err := Tokens(`42 0 -7`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Integer, Integer, Minus, Integer}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v (lexer emits Minus then Integer)", i, got[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokens("a. % comment with :- symbols\nb. % trailing")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 {
		t.Fatalf("got %d tokens, want 4: %v", len(toks), toks)
	}
	if toks[2].Text != "b" {
		t.Errorf("comment not skipped: %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokens("a.\n  b.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[2].Line != 2 || toks[2].Col != 3 {
		t.Errorf("b at %d:%d, want 2:3", toks[2].Line, toks[2].Col)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "a !b", "a : b", "a ? b"} {
		if _, err := Tokens(src); err == nil {
			t.Errorf("no error for %q", src)
		} else if le, ok := err.(*Error); !ok {
			t.Errorf("error for %q is %T, want *Error", src, err)
		} else if le.Line != 1 {
			t.Errorf("error position for %q: %v", src, le)
		}
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	toks, err := Tokens("père(andré).")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Ident || toks[0].Text != "père" {
		t.Errorf("unicode ident mislexed: %v", toks[0])
	}
}

func TestKindStringsCovered(t *testing.T) {
	for k := EOF; k <= Ne; k++ {
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, err := Tokens(`foo 42 X <=`)
	if err != nil {
		t.Fatal(err)
	}
	if got := toks[0].String(); got != `identifier "foo"` {
		t.Errorf("Token.String = %q", got)
	}
	if got := toks[3].String(); got != "'<='" {
		t.Errorf("Token.String = %q", got)
	}
}
