// Package interrupt defines the engine-wide cancellation sentinel and the
// cooperative checkpoint helper every evaluation layer polls. The contract
// (README.md "Concurrency", DESIGN.md §7): a ...Ctx entry point that
// observes a cancelled or expired context stops at its next checkpoint and
// returns an *Error alongside whatever partial results it had already
// produced — like the leaf-budget ErrBudget errors, cancellation degrades
// gracefully instead of discarding work.
package interrupt

import (
	"context"
	"errors"
)

// ErrInterrupted is the sentinel every context-induced failure matches:
// errors.Is(err, ErrInterrupted) holds for any error produced by Check,
// regardless of which checkpoint fired or whether the cause was
// cancellation or a deadline.
var ErrInterrupted = errors.New("evaluation interrupted by context")

// Error reports that evaluation stopped at a cooperative checkpoint. It
// matches ErrInterrupted via Is and unwraps to the context's own error, so
// errors.Is also answers context.Canceled / context.DeadlineExceeded
// correctly.
type Error struct {
	// Stage names the checkpoint that observed the cancellation
	// (e.g. "eval: semi-naive fixpoint").
	Stage string
	// Cause is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

// Error implements the error interface.
func (e *Error) Error() string { return "interrupted at " + e.Stage + ": " + e.Cause.Error() }

// Is matches the package sentinel.
func (e *Error) Is(target error) bool { return target == ErrInterrupted }

// Unwrap exposes the context's error.
func (e *Error) Unwrap() error { return e.Cause }

// IsInterrupted reports whether err records a context interruption
// (convenience for errors.Is(err, ErrInterrupted)).
func IsInterrupted(err error) bool { return errors.Is(err, ErrInterrupted) }

// Check is the cooperative checkpoint: it returns nil while ctx is live
// and an *Error naming the stage once ctx is cancelled or past its
// deadline. Polling a background context is free, so hot loops call Check
// unconditionally (at a stride) rather than branching on ctx identity.
func Check(ctx context.Context, stage string) error {
	if err := ctx.Err(); err != nil {
		return &Error{Stage: stage, Cause: err}
	}
	return nil
}
