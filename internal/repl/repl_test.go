package repl_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/repl"
)

const penguinSrc = `
module birds {
  bird(penguin). bird(pigeon).
  fly(X) :- bird(X).
  -ground_animal(X) :- bird(X).
}
module arctic extends birds {
  ground_animal(penguin).
  -fly(X) :- ground_animal(X).
}
`

func session(t *testing.T, src string, commands ...string) string {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	r := repl.New(prog, core.Config{}, &out)
	in := strings.NewReader(strings.Join(commands, "\n") + "\n")
	if err := r.Run(in); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestQueryCommand(t *testing.T) {
	out := session(t, penguinSrc, "?- fly(X).", "quit")
	if !strings.Contains(out, "X = pigeon") {
		t.Errorf("query output missing answer:\n%s", out)
	}
	out = session(t, penguinSrc, "?- fly(penguin).", "quit")
	if !strings.Contains(out, "no") {
		t.Errorf("false ground query should answer no:\n%s", out)
	}
	out = session(t, penguinSrc, "?- -fly(penguin).", "quit")
	if !strings.Contains(out, "yes") {
		t.Errorf("true ground query should answer yes:\n%s", out)
	}
}

func TestAssertRegrounds(t *testing.T) {
	out := session(t, penguinSrc,
		"?- bird(tweety).",
		"assert birds bird(tweety).",
		"?- fly(tweety).",
		"quit")
	// First query: no; after assert, tweety flies.
	if !strings.Contains(out, "no") || !strings.Contains(out, "yes") {
		t.Errorf("assert did not change answers:\n%s", out)
	}
	out = session(t, penguinSrc, "assert nowhere p.", "quit")
	if !strings.Contains(out, "unknown component") {
		t.Errorf("bad assert not rejected:\n%s", out)
	}
	out = session(t, penguinSrc, "assert birds p :-", "quit")
	if !strings.Contains(out, "error") {
		t.Errorf("syntax error not reported:\n%s", out)
	}
}

func TestModelCommands(t *testing.T) {
	out := session(t, penguinSrc, "least", "quit")
	if !strings.Contains(out, "-fly(penguin)") {
		t.Errorf("least output wrong:\n%s", out)
	}
	out = session(t, penguinSrc, "least birds", "quit")
	if !strings.Contains(out, "fly(penguin)") || strings.Contains(out, "-fly(penguin)") {
		t.Errorf("least birds output wrong:\n%s", out)
	}
	src := `
module c2 { a. b. c. }
module c1 extends c2 { -a :- b, c. -b :- a. -b :- -b. }
`
	out = session(t, src, "stable", "quit")
	if !strings.Contains(out, "1: ") || !strings.Contains(out, "2: ") {
		t.Errorf("stable output wrong:\n%s", out)
	}
	out = session(t, src, "cautious", "quit")
	if !strings.Contains(out, "over 2 stable models") || !strings.Contains(out, "  c") {
		t.Errorf("cautious output wrong:\n%s", out)
	}
}

func TestProveAndExplainCommands(t *testing.T) {
	out := session(t, penguinSrc, "prove -fly(penguin)", "quit")
	if !strings.Contains(out, "proved -fly(penguin)") {
		t.Errorf("prove output wrong:\n%s", out)
	}
	out = session(t, penguinSrc, "prove fly(penguin)", "quit")
	if !strings.Contains(out, "no") {
		t.Errorf("failed proof should say no:\n%s", out)
	}
	out = session(t, penguinSrc, "explain fly(penguin)", "quit")
	if !strings.Contains(out, "value F") || !strings.Contains(out, "overruled") {
		t.Errorf("explain output wrong:\n%s", out)
	}
}

func TestComponentSwitchAndStats(t *testing.T) {
	out := session(t, penguinSrc,
		"component birds",
		"?- fly(penguin).",
		"quit")
	if !strings.Contains(out, "yes") {
		t.Errorf("component switch ineffective:\n%s", out)
	}
	out = session(t, penguinSrc, "stats", "quit")
	if !strings.Contains(out, "ground rules") {
		t.Errorf("stats output wrong:\n%s", out)
	}
	out = session(t, penguinSrc, "list", "quit")
	if !strings.Contains(out, "module birds {") {
		t.Errorf("list output wrong:\n%s", out)
	}
	out = session(t, penguinSrc, "bogus command", "quit")
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown command not reported:\n%s", out)
	}
	out = session(t, penguinSrc, "help", "quit")
	if !strings.Contains(out, "assert <comp> <clause>") {
		t.Errorf("help output wrong:\n%s", out)
	}
}

func TestAnalyzeAndGroundCommands(t *testing.T) {
	src := `
module c3 { rich(mimmo). -poor(X) :- rich(X). }
module c2 { poor(mimmo). -rich(X) :- poor(X). }
module c1 extends c2, c3 { free_ticket(X) :- poor(X). }
`
	out := session(t, src, "analyze", "quit")
	if !strings.Contains(out, "may defeat each other") {
		t.Errorf("analyze output wrong:\n%s", out)
	}
	out = session(t, src, "ground", "quit")
	if !strings.Contains(out, "% component c1") || !strings.Contains(out, "instances over") {
		t.Errorf("ground output wrong:\n%s", out)
	}
	if !strings.Contains(out, "free_ticket(mimmo) :- poor(mimmo).") {
		t.Errorf("ground dump missing instance:\n%s", out)
	}
}
