// Package repl implements the interactive shell behind "ordlog -i": a
// small knowledge-base console in the spirit the paper's conclusion
// sketches. It keeps a mutable program (facts can be asserted into
// components), re-grounds lazily, and answers queries, membership checks,
// proofs and model requests.
//
// Commands (one per line):
//
//	?- <literals>.          query against the current least model
//	assert <comp> <clause>  add a clause to a component
//	least [comp]            print the least model
//	stable [comp]           print the stable models
//	cautious [comp]         print the cautious consequences
//	prove <literal>         goal-directed proof with derivation tree
//	explain <atom>          rule statuses around an atom
//	component <name>        set the default component
//	analyze                 static diagnostics over the current program
//	ground                  dump the ground program
//	stats                   grounding statistics
//	list                    print the current program
//	help                    this text
//	quit                    leave
package repl

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/analyze"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/stable"
)

// REPL is an interactive session over one ordered program.
type REPL struct {
	prog   *ast.OrderedProgram
	eng    *core.Engine // nil when dirty
	comp   string       // default component ("" = engine default)
	out    io.Writer
	cfg    core.Config
	prompt string
}

// New returns a session over the program (which may be empty).
func New(prog *ast.OrderedProgram, cfg core.Config, out io.Writer) *REPL {
	return &REPL{prog: prog, cfg: cfg, out: out, prompt: "> "}
}

// Run reads commands until EOF or quit.
func (r *REPL) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	fmt.Fprint(r.out, r.prompt)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := r.Exec(line); quit {
				return nil
			}
		}
		fmt.Fprint(r.out, r.prompt)
	}
	return sc.Err()
}

// Exec runs one command line; it returns true on quit.
func (r *REPL) Exec(line string) bool {
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(r.out, "error: internal panic: %v\n", p)
		}
	}()
	switch {
	case line == "quit" || line == "exit":
		return true
	case line == "help":
		r.help()
	case line == "stats":
		r.stats()
	case line == "list":
		fmt.Fprint(r.out, r.prog.String())
	case line == "analyze":
		for _, d := range analyze.Program(r.prog) {
			fmt.Fprintln(r.out, d)
		}
	case line == "ground":
		eng, err := r.engine()
		if err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
			return false
		}
		if err := eng.Grounded().Dump(r.out); err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
		}
	case strings.HasPrefix(line, "?-"):
		r.query(line)
	case strings.HasPrefix(line, "assert "):
		r.assert(strings.TrimPrefix(line, "assert "))
	case line == "least" || strings.HasPrefix(line, "least "):
		r.least(strings.TrimSpace(strings.TrimPrefix(line, "least")))
	case line == "stable" || strings.HasPrefix(line, "stable "):
		r.stable(strings.TrimSpace(strings.TrimPrefix(line, "stable")))
	case line == "cautious" || strings.HasPrefix(line, "cautious "):
		r.cautious(strings.TrimSpace(strings.TrimPrefix(line, "cautious")))
	case strings.HasPrefix(line, "prove "):
		r.prove(strings.TrimSpace(strings.TrimPrefix(line, "prove ")))
	case strings.HasPrefix(line, "explain "):
		r.explain(strings.TrimSpace(strings.TrimPrefix(line, "explain ")))
	case strings.HasPrefix(line, "component "):
		r.comp = strings.TrimSpace(strings.TrimPrefix(line, "component "))
		fmt.Fprintf(r.out, "default component: %s\n", r.comp)
	default:
		fmt.Fprintf(r.out, "error: unknown command %q (try help)\n", line)
	}
	return false
}

func (r *REPL) help() {
	fmt.Fprint(r.out, `commands:
  ?- <literals>.          query the least model
  assert <comp> <clause>  add a clause to a component
  least | stable | cautious [comp]
  prove <literal>         goal-directed proof
  explain <atom>          rule statuses
  component <name>        set default component
  analyze                 static diagnostics
  ground                  dump the ground program
  stats | list | help | quit
`)
}

func (r *REPL) engine() (*core.Engine, error) {
	if r.eng != nil {
		return r.eng, nil
	}
	eng, err := core.NewEngine(r.prog, r.cfg)
	if err != nil {
		return nil, err
	}
	r.eng = eng
	return eng, nil
}

func (r *REPL) compOr(arg string) string {
	if arg != "" {
		return arg
	}
	return r.comp
}

func (r *REPL) query(line string) {
	res, err := parser.Parse(line)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	if len(res.Queries) != 1 {
		fmt.Fprintln(r.out, "error: expected exactly one query")
		return
	}
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	m, err := eng.LeastModel(r.comp)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	q := res.Queries[0]
	answers := m.Query(q)
	if len(answers) == 0 {
		fmt.Fprintln(r.out, "no")
		return
	}
	vars := q.Vars()
	if len(vars) == 0 {
		fmt.Fprintln(r.out, "yes")
		return
	}
	for _, b := range answers {
		parts := make([]string, 0, len(vars))
		for _, v := range vars {
			parts = append(parts, v.Name+" = "+b[v.Name].String())
		}
		fmt.Fprintln(r.out, strings.Join(parts, ", "))
	}
}

func (r *REPL) assert(rest string) {
	fields := strings.SplitN(rest, " ", 2)
	if len(fields) != 2 {
		fmt.Fprintln(r.out, "error: usage: assert <component> <clause>")
		return
	}
	comp, clause := fields[0], fields[1]
	rule, err := parser.ParseRule(clause)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	c := r.prog.Component(comp)
	if c == nil {
		fmt.Fprintf(r.out, "error: unknown component %q\n", comp)
		return
	}
	c.AddRule(rule)
	r.eng = nil // re-ground lazily
	fmt.Fprintf(r.out, "added to %s: %s\n", comp, rule)
}

func (r *REPL) least(comp string) {
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	m, err := eng.LeastModel(r.compOr(comp))
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	fmt.Fprintln(r.out, m)
}

func (r *REPL) stable(comp string) {
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	ms, err := eng.StableModels(r.compOr(comp), stable.Options{})
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	for i, m := range ms {
		fmt.Fprintf(r.out, "%d: %s\n", i+1, m)
	}
}

func (r *REPL) cautious(comp string) {
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	cons, err := eng.Reason(r.compOr(comp), stable.Options{})
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(r.out, "over %d stable models:\n", cons.NumModels())
	for _, l := range cons.CautiousLiterals() {
		fmt.Fprintln(r.out, "  "+l.String())
	}
}

func (r *REPL) prove(arg string) {
	lit, err := parser.ParseLiteral(strings.TrimSuffix(arg, "."))
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	tree, ok, err := eng.ProveExplain(r.comp, lit)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	if !ok {
		fmt.Fprintln(r.out, "no")
		return
	}
	fmt.Fprint(r.out, tree)
}

func (r *REPL) explain(arg string) {
	lit, err := parser.ParseLiteral(strings.TrimSuffix(arg, "."))
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	m, err := eng.LeastModel(r.comp)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(r.out, "%s has value %s\n", lit.Atom, m.Value(lit.Atom))
	for _, line := range m.Explain(lit.Atom) {
		fmt.Fprintln(r.out, "  "+line)
	}
}

func (r *REPL) stats() {
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(r.out, "components: %d, ground rules: %d, relevant atoms: %d\n",
		len(r.prog.Components), eng.NumGroundRules(), eng.NumAtoms())
}
