// Package repl implements the interactive shell behind "ordlog -i": a
// small knowledge-base console in the spirit the paper's conclusion
// sketches. Ground facts are asserted and retracted through the engine's
// incremental snapshot machinery (no re-grounding); asserting a proper
// rule rebuilds the engine lazily. Queries, membership checks, proofs and
// model requests all read the current snapshot.
//
// Commands (one per line):
//
//	?- <literals>.          query against the current least model
//	assert <comp> <clause>  add a fact (incremental) or rule to a component
//	retract <comp> <fact>   remove a ground fact (incremental)
//	least [comp]            print the least model
//	stable [comp]           print the stable models
//	cautious [comp]         print the cautious consequences
//	prove <literal>         goal-directed proof with derivation tree
//	explain <atom>          rule statuses around an atom
//	component <name>        set the default component
//	analyze                 static diagnostics over the current program
//	ground                  dump the ground program
//	stats                   grounding statistics
//	list                    print the current program
//	help                    this text
//	quit                    leave
package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/analyze"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/stable"
)

// factEvent records one incremental assert/retract applied to the live
// engine but not yet folded into the source program.
type factEvent struct {
	comp    string
	lit     ast.Literal
	retract bool
}

// REPL is an interactive session over one ordered program.
type REPL struct {
	prog   *ast.OrderedProgram
	eng    *core.Engine // nil when dirty
	events []factEvent  // fact updates applied to eng, pending in prog
	comp   string       // default component ("" = engine default)
	out    io.Writer
	cfg    core.Config
	prompt string
}

// New returns a session over the program (which may be empty).
func New(prog *ast.OrderedProgram, cfg core.Config, out io.Writer) *REPL {
	return &REPL{prog: prog, cfg: cfg, out: out, prompt: "> "}
}

// Run reads commands until EOF or quit.
func (r *REPL) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	fmt.Fprint(r.out, r.prompt)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := r.Exec(line); quit {
				return nil
			}
		}
		fmt.Fprint(r.out, r.prompt)
	}
	return sc.Err()
}

// Exec runs one command line; it returns true on quit.
func (r *REPL) Exec(line string) bool {
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(r.out, "error: internal panic: %v\n", p)
		}
	}()
	switch {
	case line == "quit" || line == "exit":
		return true
	case line == "help":
		r.help()
	case line == "stats":
		r.stats()
	case line == "list":
		fmt.Fprint(r.out, r.prog.String())
		for _, ev := range r.events {
			if ev.retract {
				fmt.Fprintf(r.out, "%% retracted from %s: %s\n", ev.comp, ev.lit)
			} else {
				fmt.Fprintf(r.out, "%% asserted in %s: %s.\n", ev.comp, ev.lit)
			}
		}
	case line == "analyze":
		for _, d := range analyze.Program(r.prog) {
			fmt.Fprintln(r.out, d)
		}
	case line == "ground":
		eng, err := r.engine()
		if err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
			return false
		}
		if err := eng.Grounded().Dump(r.out); err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
		}
	case strings.HasPrefix(line, "?-"):
		r.query(line)
	case strings.HasPrefix(line, "assert "):
		r.assert(strings.TrimPrefix(line, "assert "))
	case strings.HasPrefix(line, "retract "):
		r.retract(strings.TrimPrefix(line, "retract "))
	case line == "least" || strings.HasPrefix(line, "least "):
		r.least(strings.TrimSpace(strings.TrimPrefix(line, "least")))
	case line == "stable" || strings.HasPrefix(line, "stable "):
		r.stable(strings.TrimSpace(strings.TrimPrefix(line, "stable")))
	case line == "cautious" || strings.HasPrefix(line, "cautious "):
		r.cautious(strings.TrimSpace(strings.TrimPrefix(line, "cautious")))
	case strings.HasPrefix(line, "prove "):
		r.prove(strings.TrimSpace(strings.TrimPrefix(line, "prove ")))
	case strings.HasPrefix(line, "explain "):
		r.explain(strings.TrimSpace(strings.TrimPrefix(line, "explain ")))
	case strings.HasPrefix(line, "component "):
		r.comp = strings.TrimSpace(strings.TrimPrefix(line, "component "))
		fmt.Fprintf(r.out, "default component: %s\n", r.comp)
	default:
		fmt.Fprintf(r.out, "error: unknown command %q (try help)\n", line)
	}
	return false
}

func (r *REPL) help() {
	fmt.Fprint(r.out, `commands:
  ?- <literals>.          query the least model
  assert <comp> <clause>  add a fact (incremental) or rule to a component
  retract <comp> <fact>   remove a ground fact (incremental)
  least | stable | cautious [comp]
  prove <literal>         goal-directed proof
  explain <atom>          rule statuses
  component <name>        set default component
  analyze                 static diagnostics
  ground                  dump the ground program
  stats | list | help | quit
`)
}

func (r *REPL) engine() (*core.Engine, error) {
	if r.eng != nil {
		return r.eng, nil
	}
	eng, err := core.NewEngine(r.prog, r.cfg)
	if err != nil {
		return nil, err
	}
	r.eng = eng
	return eng, nil
}

func (r *REPL) compOr(arg string) string {
	if arg != "" {
		return arg
	}
	return r.comp
}

func (r *REPL) query(line string) {
	res, err := parser.Parse(line)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	if len(res.Queries) != 1 {
		fmt.Fprintln(r.out, "error: expected exactly one query")
		return
	}
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	m, err := eng.LeastModel(r.comp)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	q := res.Queries[0]
	answers := m.Query(q)
	if len(answers) == 0 {
		fmt.Fprintln(r.out, "no")
		return
	}
	vars := q.Vars()
	if len(vars) == 0 {
		fmt.Fprintln(r.out, "yes")
		return
	}
	for _, b := range answers {
		parts := make([]string, 0, len(vars))
		for _, v := range vars {
			parts = append(parts, v.Name+" = "+b[v.Name].String())
		}
		fmt.Fprintln(r.out, strings.Join(parts, ", "))
	}
}

func (r *REPL) assert(rest string) {
	fields := strings.SplitN(rest, " ", 2)
	if len(fields) != 2 {
		fmt.Fprintln(r.out, "error: usage: assert <component> <clause>")
		return
	}
	comp, clause := fields[0], fields[1]
	rule, err := parser.ParseRule(clause)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	if r.prog.Component(comp) == nil {
		fmt.Fprintf(r.out, "error: unknown component %q\n", comp)
		return
	}
	// Ground facts against a live engine go through the incremental
	// snapshot machinery; the source program catches up lazily (flush) when
	// a proper rule forces a rebuild.
	if r.eng != nil && rule.IsFact() && rule.Head.Atom.Ground() {
		snap, err := r.eng.Update(context.Background(), comp, []ast.Literal{rule.Head})
		if err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
			return
		}
		r.events = append(r.events, factEvent{comp: comp, lit: rule.Head})
		fmt.Fprintf(r.out, "asserted in %s: %s (version %d)\n", comp, rule, snap.Version())
		return
	}
	r.flush()
	r.prog.Component(comp).AddRule(rule)
	r.eng = nil // re-ground lazily
	fmt.Fprintf(r.out, "added to %s: %s\n", comp, rule)
}

func (r *REPL) retract(rest string) {
	fields := strings.SplitN(rest, " ", 2)
	if len(fields) != 2 {
		fmt.Fprintln(r.out, "error: usage: retract <component> <fact>")
		return
	}
	comp, arg := fields[0], strings.TrimSuffix(strings.TrimSpace(fields[1]), ".")
	lit, err := parser.ParseLiteral(arg)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	if !lit.Atom.Ground() {
		fmt.Fprintln(r.out, "error: retract needs a ground fact")
		return
	}
	if r.prog.Component(comp) == nil {
		fmt.Fprintf(r.out, "error: unknown component %q\n", comp)
		return
	}
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	snap, err := eng.Retract(context.Background(), comp, []ast.Literal{lit})
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	r.events = append(r.events, factEvent{comp: comp, lit: lit, retract: true})
	fmt.Fprintf(r.out, "retracted from %s: %s (version %d)\n", comp, lit, snap.Version())
}

// flush folds the incremental fact updates into the source program — the
// same replay Engine.Update uses when it must reground — so a rebuild from
// r.prog starts from the state the retiring engine ended at.
func (r *REPL) flush() {
	for _, ev := range r.events {
		c := r.prog.Component(ev.comp)
		if c == nil {
			continue
		}
		if ev.retract {
			kept := c.Rules[:0]
			for _, rule := range c.Rules {
				if rule.IsFact() && rule.Head.Neg == ev.lit.Neg && rule.Head.Atom.Ground() && rule.Head.Atom.Equal(ev.lit.Atom) {
					continue
				}
				kept = append(kept, rule)
			}
			c.Rules = kept
			continue
		}
		present := false
		for _, rule := range c.Rules {
			if rule.IsFact() && rule.Head.Neg == ev.lit.Neg && rule.Head.Atom.Ground() && rule.Head.Atom.Equal(ev.lit.Atom) {
				present = true
				break
			}
		}
		if !present {
			c.AddRule(ast.Fact(ev.lit))
		}
	}
	r.events = nil
}

func (r *REPL) least(comp string) {
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	m, err := eng.LeastModel(r.compOr(comp))
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	fmt.Fprintln(r.out, m)
}

func (r *REPL) stable(comp string) {
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	ms, err := eng.StableModels(r.compOr(comp), stable.Options{})
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	for i, m := range ms {
		fmt.Fprintf(r.out, "%d: %s\n", i+1, m)
	}
}

func (r *REPL) cautious(comp string) {
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	cons, err := eng.Reason(r.compOr(comp), stable.Options{})
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(r.out, "over %d stable models:\n", cons.NumModels())
	for _, l := range cons.CautiousLiterals() {
		fmt.Fprintln(r.out, "  "+l.String())
	}
}

func (r *REPL) prove(arg string) {
	lit, err := parser.ParseLiteral(strings.TrimSuffix(arg, "."))
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	tree, ok, err := eng.ProveExplain(r.comp, lit)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	if !ok {
		fmt.Fprintln(r.out, "no")
		return
	}
	fmt.Fprint(r.out, tree)
}

func (r *REPL) explain(arg string) {
	lit, err := parser.ParseLiteral(strings.TrimSuffix(arg, "."))
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	m, err := eng.LeastModel(r.comp)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(r.out, "%s has value %s\n", lit.Atom, m.Value(lit.Atom))
	for _, line := range m.Explain(lit.Atom) {
		fmt.Fprintln(r.out, "  "+line)
	}
}

func (r *REPL) stats() {
	eng, err := r.engine()
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(r.out, "components: %d, ground rules: %d, relevant atoms: %d, version: %d\n",
		len(r.prog.Components), eng.NumGroundRules(), eng.NumAtoms(), eng.Current().Version())
}
