package parser

import (
	"strings"
	"testing"
)

// FuzzParse checks two robustness invariants on arbitrary input: the
// parser never panics, and everything it accepts round-trips through the
// canonical printer to an equal program.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"a.",
		"p(X) :- q(X).",
		"-p(a, f(b, 2)) :- q(X), X > 1 + 2.",
		"module m { a. }",
		"module c1 extends c2 { -fly(X) :- ga(X). }\nmodule c2 { fly(X) :- bird(X). }",
		"order a < b.",
		"?- p(X), X != a.",
		"p :- not q.",
		"t :- a(X), X mod 2 = 1.",
		"% comment\na.",
		"p(f(g(h(a)))).",
		"module m extends m { a. }",
		"p :- .",
		"p(",
		"~x.",
		"a :- 1 < 2.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := res.Program.String()
		for _, q := range res.Queries {
			printed += q.String() + "\n"
		}
		res2, err := Parse(printed)
		if err != nil {
			t.Fatalf("round trip failed to parse:\ninput: %q\nprinted: %q\nerr: %v", src, printed, err)
		}
		printed2 := res2.Program.String()
		for _, q := range res2.Queries {
			printed2 += q.String() + "\n"
		}
		if printed != printed2 {
			t.Fatalf("printer not idempotent:\nfirst:  %q\nsecond: %q", printed, printed2)
		}
	})
}

// FuzzParseRule does the same for single clauses.
func FuzzParseRule(f *testing.F) {
	for _, s := range []string{
		"a.", "p(X) :- q(X).", "-p :- q, -r.", "t :- a(X), X > -3.",
		"p(f(a, g(b))).", "x :- y, 1 = 1.",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := ParseRule(src)
		if err != nil {
			return
		}
		r2, err := ParseRule(r.String())
		if err != nil {
			t.Fatalf("round trip failed: %q -> %q: %v", src, r.String(), err)
		}
		if r.String() != r2.String() {
			t.Fatalf("printer not idempotent: %q vs %q", r.String(), r2.String())
		}
	})
}

// TestPrinterIdempotentOnCorpus runs the fuzz property over a fixed corpus
// so it executes in ordinary test runs too.
func TestPrinterIdempotentOnCorpus(t *testing.T) {
	corpus := []string{
		"module c2 {\n  bird(penguin).\n  fly(X) :- bird(X).\n}\nmodule c1 extends c2 {\n  -fly(X) :- ground_animal(X).\n}\n",
		"take_loan :- inflation(X), loan_rate(Y), X > Y + 2.\n",
		"p(f(X)) :- q(X), not r(X), X >= 0.\n?- p(Y).\n",
	}
	for _, src := range corpus {
		res, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := res.Program.String()
		res2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if !strings.Contains(printed, "module") && len(res.Program.Components) != len(res2.Program.Components) {
			t.Error("component count changed")
		}
		if printed != res2.Program.String() {
			t.Errorf("printer not idempotent for %q", src)
		}
	}
}
