package parser

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// addTestdataSeeds seeds the corpus with every .olp program shipped in
// testdata, so the fuzzers start from realistic multi-module inputs
// (inheritance chains, arithmetic builtins, queries) rather than only the
// hand-picked snippets below.
func addTestdataSeeds(f *testing.F) []string {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.olp"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no testdata/*.olp seeds found")
	}
	var srcs []string
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b))
		srcs = append(srcs, string(b))
	}
	return srcs
}

// FuzzParse checks the robustness invariants on arbitrary input: the
// parser never panics, and everything it accepts survives a full
// parse→print→reparse round trip — the reprint parses, the printer is
// idempotent, and the reparsed program has the same component, rule and
// query structure as the first parse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"a.",
		"p(X) :- q(X).",
		"-p(a, f(b, 2)) :- q(X), X > 1 + 2.",
		"module m { a. }",
		"module c1 extends c2 { -fly(X) :- ga(X). }\nmodule c2 { fly(X) :- bird(X). }",
		"order a < b.",
		"?- p(X), X != a.",
		"p :- not q.",
		"t :- a(X), X mod 2 = 1.",
		"% comment\na.",
		"p(f(g(h(a)))).",
		"module m extends m { a. }",
		"p :- .",
		"p(",
		"~x.",
		"a :- 1 < 2.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	addTestdataSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := res.Program.String()
		for _, q := range res.Queries {
			printed += q.String() + "\n"
		}
		res2, err := Parse(printed)
		if err != nil {
			t.Fatalf("round trip failed to parse:\ninput: %q\nprinted: %q\nerr: %v", src, printed, err)
		}
		// Structural round-trip invariant: the reparse preserves the
		// component count, per-component rule counts, and query count.
		if got, want := len(res2.Program.Components), len(res.Program.Components); got != want {
			t.Fatalf("round trip changed component count %d -> %d:\ninput: %q", want, got, src)
		}
		for i, c := range res.Program.Components {
			c2 := res2.Program.Components[i]
			if c2.Name != c.Name || len(c2.Rules) != len(c.Rules) {
				t.Fatalf("round trip changed component %d: %s/%d rules -> %s/%d rules\ninput: %q",
					i, c.Name, len(c.Rules), c2.Name, len(c2.Rules), src)
			}
		}
		if len(res2.Queries) != len(res.Queries) {
			t.Fatalf("round trip changed query count %d -> %d:\ninput: %q",
				len(res.Queries), len(res2.Queries), src)
		}
		printed2 := res2.Program.String()
		for _, q := range res2.Queries {
			printed2 += q.String() + "\n"
		}
		if printed != printed2 {
			t.Fatalf("printer not idempotent:\nfirst:  %q\nsecond: %q", printed, printed2)
		}
	})
}

// FuzzParseRule does the same for single clauses. Its corpus is seeded
// with every individual rule of the testdata programs in addition to the
// hand-picked clauses.
func FuzzParseRule(f *testing.F) {
	for _, s := range []string{
		"a.", "p(X) :- q(X).", "-p :- q, -r.", "t :- a(X), X > -3.",
		"p(f(a, g(b))).", "x :- y, 1 = 1.",
	} {
		f.Add(s)
	}
	for _, src := range addTestdataSeeds(f) {
		res, err := Parse(src)
		if err != nil {
			continue // a testdata file the parser rejects is caught elsewhere
		}
		for _, c := range res.Program.Components {
			for _, r := range c.Rules {
				f.Add(r.String())
			}
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := ParseRule(src)
		if err != nil {
			return
		}
		r2, err := ParseRule(r.String())
		if err != nil {
			t.Fatalf("round trip failed: %q -> %q: %v", src, r.String(), err)
		}
		// Structural invariant: the reparse preserves head sign and body
		// length, so printing cannot silently drop literals.
		if r2.Head.Neg != r.Head.Neg || len(r2.Body) != len(r.Body) {
			t.Fatalf("round trip changed structure: %q -> %q", src, r.String())
		}
		if r.String() != r2.String() {
			t.Fatalf("printer not idempotent: %q vs %q", r.String(), r2.String())
		}
	})
}

// TestPrinterIdempotentOnCorpus runs the fuzz property over a fixed corpus
// so it executes in ordinary test runs too.
func TestPrinterIdempotentOnCorpus(t *testing.T) {
	corpus := []string{
		"module c2 {\n  bird(penguin).\n  fly(X) :- bird(X).\n}\nmodule c1 extends c2 {\n  -fly(X) :- ground_animal(X).\n}\n",
		"take_loan :- inflation(X), loan_rate(Y), X > Y + 2.\n",
		"p(f(X)) :- q(X), not r(X), X >= 0.\n?- p(Y).\n",
	}
	for _, src := range corpus {
		res, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := res.Program.String()
		res2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if !strings.Contains(printed, "module") && len(res.Program.Components) != len(res2.Program.Components) {
			t.Error("component count changed")
		}
		if printed != res2.Program.String() {
			t.Errorf("printer not idempotent for %q", src)
		}
	}
}
