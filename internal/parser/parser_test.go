package parser

import (
	"strings"
	"testing"
)

func TestParseSimpleClauses(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical String of the parsed rule
	}{
		{"p.", "p."},
		{"p(a).", "p(a)."},
		{"p(a, b, 3).", "p(a, b, 3)."},
		{"-p(a).", "-p(a)."},
		{"~p(a).", "-p(a)."},
		{"p(X) :- q(X).", "p(X) :- q(X)."},
		{"p(X) :- q(X), -r(X).", "p(X) :- q(X), -r(X)."},
		{"p(X) :- not r(X).", "p(X) :- -r(X)."},
		{"p :- q, r, s.", "p :- q, r, s."},
		{"p(f(a, X)).", "p(f(a, X))."},
		{"p(f(g(a))).", "p(f(g(a)))."},
		{"p(-3).", "p(-3)."},
		{"take_loan :- inflation(X), X > 11.", "take_loan :- inflation(X), X > 11."},
		{"t :- i(X), l(Y), X > Y + 2.", "t :- i(X), l(Y), X > (Y + 2)."},
		{"t :- a(X), X >= 2 * 3 - 1.", "t :- a(X), X >= ((2 * 3) - 1)."},
		{"t :- a(X), X != b.", "t :- a(X), X != b."},
		{"t :- a(X), X = 4.", "t :- a(X), X = 4."},
		{"t :- a(X), X mod 2 = 1.", "t :- a(X), (X mod 2) = 1."},
		{"t :- a(X, Y), X < Y.", "t :- a(X, Y), X < Y."},
		// Mixed literal/builtin ordering is normalised: literals first.
		{"t :- X > 1, a(X).", "t :- a(X), X > 1."},
	}
	for _, c := range cases {
		r, err := ParseRule(c.src)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", c.src, err)
			continue
		}
		if got := r.String(); got != c.want {
			t.Errorf("ParseRule(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, src := range []string{
		"p",             // missing dot
		"p :- .",        // empty body
		"p :- q",        // missing dot
		"p(X",           // unclosed paren
		"P(a).",         // variable as predicate
		"p :- 3.",       // integer literal as body atom
		"p :- X + 1.",   // bare arithmetic as literal
		"p. q.",         // trailing clause in ParseRule
		"p :- not X>1.", /* 'not' cannot negate comparison */
	} {
		if _, err := ParseRule(src); err == nil {
			t.Errorf("ParseRule(%q) succeeded, want error", src)
		}
	}
}

func TestParseModules(t *testing.T) {
	src := `
module c2 {
  bird(penguin).
  fly(X) :- bird(X).
}
module c1 extends c2 {
  -fly(X) :- ground_animal(X).
}
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Components) != 2 {
		t.Fatalf("got %d components", len(p.Components))
	}
	i1, _ := p.ComponentIndex("c1")
	i2, _ := p.ComponentIndex("c2")
	if !p.Less(i1, i2) {
		t.Error("extends edge missing (c1 < c2)")
	}
	if n := len(p.Component("c2").Rules); n != 2 {
		t.Errorf("c2 has %d rules", n)
	}
}

func TestParseMultiExtendsAndOrderDecl(t *testing.T) {
	src := `
module a { x. }
module b { y. }
module c extends a, b { z. }
module d { w. }
order d < a < b.
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	idx := func(n string) int { i, _ := p.ComponentIndex(n); return i }
	if !p.Less(idx("c"), idx("a")) || !p.Less(idx("c"), idx("b")) {
		t.Error("multi-extends edges missing")
	}
	if !p.Less(idx("d"), idx("a")) || !p.Less(idx("a"), idx("b")) || !p.Less(idx("d"), idx("b")) {
		t.Error("order chain edges missing")
	}
}

func TestParseOrderForwardReference(t *testing.T) {
	// order may reference modules declared later in the file.
	src := `
order a < b.
module a { x. }
module b { y. }
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	ia, _ := p.ComponentIndex("a")
	ib, _ := p.ComponentIndex("b")
	if !p.Less(ia, ib) {
		t.Error("forward order reference not resolved")
	}
}

func TestParseImplicitMain(t *testing.T) {
	p, err := ParseProgram("a.\nb :- a.\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Components) != 1 || p.Components[0].Name != MainComponent {
		t.Fatalf("implicit component wrong: %v", p.Components)
	}
	if len(p.Components[0].Rules) != 2 {
		t.Errorf("main has %d rules", len(p.Components[0].Rules))
	}
}

func TestParseReopenedModule(t *testing.T) {
	src := `
module m { a. }
module m { b. }
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(p.Component("m").Rules); n != 2 {
		t.Errorf("reopened module has %d rules, want 2", n)
	}
}

func TestParseQueries(t *testing.T) {
	res, err := Parse(`
p(a).
?- p(X).
?- p(X), X != a.
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 2 {
		t.Fatalf("got %d queries", len(res.Queries))
	}
	if got := res.Queries[0].String(); got != "?- p(X)." {
		t.Errorf("query 0 = %q", got)
	}
	if got := res.Queries[1].String(); got != "?- p(X), X != a." {
		t.Errorf("query 1 = %q", got)
	}
	if _, err := ParseProgram(`?- p(X).`); err == nil {
		t.Error("ParseProgram accepted a query")
	}
}

func TestParseProgramErrors(t *testing.T) {
	for _, src := range []string{
		"module m { a. ",              // unterminated module
		"module m extends zzz { a. }", // unknown parent
		"order a < b.",                // unknown components
		"module a { x. } module b extends a { y. } module m { } order a < b.", // cycle a<b plus b<a? no
		"module m extends m { a. }", // self-extends
		"order a.",                  // missing <
	} {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) succeeded, want error", src)
		}
	}
	// A genuine cycle through extends.
	cyc := `
module a extends b { x. }
module b extends a { y. }
`
	if _, err := ParseProgram(cyc); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not rejected: %v", err)
	}
}

func TestParseLiteralHelper(t *testing.T) {
	l, err := ParseLiteral("-fly(penguin)")
	if err != nil {
		t.Fatal(err)
	}
	if !l.Neg || l.Atom.Pred != "fly" {
		t.Errorf("ParseLiteral = %v", l)
	}
	if _, err := ParseLiteral("fly(penguin) extra"); err == nil {
		t.Error("trailing input accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		"module c2 {\n  bird(penguin).\n  fly(X) :- bird(X).\n}\n",
		"module a {\n  p(f(X, 3)) :- q(X), X > -2.\n}\n",
	}
	for _, src := range srcs {
		p1, err := ParseProgram(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		p2, err := ParseProgram(p1.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip changed program:\n%s\nvs\n%s", p1, p2)
		}
	}
}

func TestUnaryMinusInComparisons(t *testing.T) {
	r, err := ParseRule("p :- a(X), -X > 3.")
	if err != nil {
		t.Fatal(err)
	}
	// The leading '-' before a variable inside a comparison is arithmetic
	// negation, encoded as 0 - X.
	if len(r.Builtins) != 1 {
		t.Fatalf("builtins = %v", r.Builtins)
	}
	if got := r.Builtins[0].String(); got != "(0 - X) > 3" {
		t.Errorf("builtin = %q", got)
	}

	// And a '-' before an identifier that turns out to be a comparison
	// operand is also arithmetic.
	r2, err := ParseRule("p :- a(X), -X + 1 > 3.")
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Builtins) != 1 || len(r2.Body) != 1 {
		t.Fatalf("rule = %v", r2)
	}
}

func TestMustHelpersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseRule did not panic on bad input")
		}
	}()
	MustParseRule("p :-")
}
