// Package parser builds ordered-program ASTs from the .olp surface syntax.
//
// Grammar (informally):
//
//	program    = { module | order | clause | query } .
//	module     = "module" IDENT [ "extends" IDENT { "," IDENT } ] "{" { clause } "}" .
//	order      = "order" IDENT "<" IDENT { "<" IDENT } "." .
//	clause     = literal [ ":-" bodyitem { "," bodyitem } ] "." .
//	query      = "?-" bodyitem { "," bodyitem } "." .
//	literal    = [ "-" | "not" ] atom .
//	bodyitem   = literal | expr cmp expr .
//	atom       = IDENT [ "(" term { "," term } ")" ] .
//
// Clauses outside a module block belong to the implicit component "main".
// "extends" and "order" both declare child < parent edges of the component
// order (the child is the more specific component).
package parser

import (
	"fmt"
	"strconv"

	"repro/internal/ast"
	"repro/internal/lexer"
)

// MainComponent is the name of the implicit component that receives
// clauses written outside any module block.
const MainComponent = "main"

// Result is the outcome of parsing a source file: the ordered program
// (validated) and any queries it contained.
type Result struct {
	Program *ast.OrderedProgram
	Queries []ast.Query
}

// Parse parses src and validates the component order.
func Parse(src string) (*Result, error) {
	toks, err := lexer.Tokens(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	res, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := res.Program.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// ParseProgram is a convenience wrapper returning only the program;
// queries in the source are an error.
func ParseProgram(src string) (*ast.OrderedProgram, error) {
	res, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(res.Queries) > 0 {
		return nil, fmt.Errorf("unexpected query in program source")
	}
	return res.Program, nil
}

// MustParseProgram parses src and panics on error. For tests and examples.
func MustParseProgram(src string) *ast.OrderedProgram {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseRule parses a single clause such as "fly(X) :- bird(X)." and
// returns it.
func ParseRule(src string) (*ast.Rule, error) {
	toks, err := lexer.Tokens(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	r, err := p.parseClause()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != lexer.EOF {
		return nil, p.errf("trailing input after clause")
	}
	return r, nil
}

// MustParseRule parses a single clause and panics on error.
func MustParseRule(src string) *ast.Rule {
	r, err := ParseRule(src)
	if err != nil {
		panic(err)
	}
	return r
}

// ParseLiteral parses a single literal such as "-fly(penguin)".
func ParseLiteral(src string) (ast.Literal, error) {
	toks, err := lexer.Tokens(src)
	if err != nil {
		return ast.Literal{}, err
	}
	p := &parser{toks: toks}
	l, err := p.parseLiteral()
	if err != nil {
		return ast.Literal{}, err
	}
	if p.peek().Kind != lexer.EOF {
		return ast.Literal{}, p.errf("trailing input after literal")
	}
	return l, nil
}

// MustParseLiteral parses a literal and panics on error.
func MustParseLiteral(src string) ast.Literal {
	l, err := ParseLiteral(src)
	if err != nil {
		panic(err)
	}
	return l
}

type parser struct {
	toks []lexer.Token
	pos  int
}

func (p *parser) peek() lexer.Token {
	if p.pos >= len(p.toks) {
		return lexer.Token{Kind: lexer.EOF}
	}
	return p.toks[p.pos]
}

func (p *parser) peek2() lexer.Token {
	if p.pos+1 >= len(p.toks) {
		return lexer.Token{Kind: lexer.EOF}
	}
	return p.toks[p.pos+1]
}

func (p *parser) next() lexer.Token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("%d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, p.errf("expected %s, found %s", k, t)
	}
	return p.next(), nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == lexer.Ident && t.Text == kw
}

func (p *parser) parseProgram() (*Result, error) {
	prog := ast.NewOrderedProgram()
	res := &Result{Program: prog}
	comps := make(map[string]*ast.Component)
	getComp := func(name string) *ast.Component {
		if c, ok := comps[name]; ok {
			return c
		}
		c := &ast.Component{Name: name}
		comps[name] = c
		// AddComponent cannot fail: names are deduplicated by the map.
		if err := prog.AddComponent(c); err != nil {
			panic(err)
		}
		return c
	}
	type edge struct {
		child, parent string
		line, col     int
	}
	var edges []edge

	for p.peek().Kind != lexer.EOF {
		switch {
		case p.atKeyword("module") && p.peek2().Kind == lexer.Ident:
			p.next() // module
			nameTok, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			comp := getComp(nameTok.Text)
			if p.atKeyword("extends") {
				p.next()
				for {
					parTok, err := p.expect(lexer.Ident)
					if err != nil {
						return nil, err
					}
					edges = append(edges, edge{comp.Name, parTok.Text, parTok.Line, parTok.Col})
					if p.peek().Kind != lexer.Comma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(lexer.LBrace); err != nil {
				return nil, err
			}
			for p.peek().Kind != lexer.RBrace {
				if p.peek().Kind == lexer.EOF {
					return nil, p.errf("unterminated module %q", comp.Name)
				}
				r, err := p.parseClause()
				if err != nil {
					return nil, err
				}
				comp.AddRule(r)
			}
			p.next() // }
		case p.atKeyword("order") && p.peek2().Kind == lexer.Ident:
			p.next() // order
			prevTok, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			prev := prevTok.Text
			n := 0
			for p.peek().Kind == lexer.Lt {
				p.next()
				curTok, err := p.expect(lexer.Ident)
				if err != nil {
					return nil, err
				}
				edges = append(edges, edge{prev, curTok.Text, curTok.Line, curTok.Col})
				prev = curTok.Text
				n++
			}
			if n == 0 {
				return nil, p.errf("order declaration needs at least one '<'")
			}
			if _, err := p.expect(lexer.Dot); err != nil {
				return nil, err
			}
		case p.peek().Kind == lexer.Query:
			p.next()
			body, builtins, err := p.parseBody()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.Dot); err != nil {
				return nil, err
			}
			res.Queries = append(res.Queries, ast.Query{Body: body, Builtins: builtins})
		default:
			r, err := p.parseClause()
			if err != nil {
				return nil, err
			}
			getComp(MainComponent).AddRule(r)
		}
	}
	for _, e := range edges {
		if _, ok := prog.ComponentIndex(e.child); !ok {
			return nil, fmt.Errorf("%d:%d: unknown component %q", e.line, e.col, e.child)
		}
		if _, ok := prog.ComponentIndex(e.parent); !ok {
			return nil, fmt.Errorf("%d:%d: unknown component %q", e.line, e.col, e.parent)
		}
		if err := prog.AddEdge(e.child, e.parent); err != nil {
			return nil, fmt.Errorf("%d:%d: %v", e.line, e.col, err)
		}
	}
	return res, nil
}

func (p *parser) parseClause() (*ast.Rule, error) {
	head, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	r := &ast.Rule{Head: head}
	if p.peek().Kind == lexer.Implies {
		p.next()
		r.Body, r.Builtins, err = p.parseBody()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(lexer.Dot); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) parseBody() (body []ast.Literal, builtins []ast.Builtin, err error) {
	for {
		lit, blt, isLit, err := p.parseBodyItem()
		if err != nil {
			return nil, nil, err
		}
		if isLit {
			body = append(body, lit)
		} else {
			builtins = append(builtins, blt)
		}
		if p.peek().Kind != lexer.Comma {
			return body, builtins, nil
		}
		p.next()
	}
}

func isCmp(k lexer.Kind) bool {
	switch k {
	case lexer.Lt, lexer.Le, lexer.Gt, lexer.Ge, lexer.Eq, lexer.Ne:
		return true
	}
	return false
}

func cmpOp(k lexer.Kind) ast.CmpOp {
	switch k {
	case lexer.Lt:
		return ast.LT
	case lexer.Le:
		return ast.LE
	case lexer.Gt:
		return ast.GT
	case lexer.Ge:
		return ast.GE
	case lexer.Eq:
		return ast.EQ
	}
	return ast.NE
}

// parseBodyItem parses either a literal or a comparison. It first parses an
// arithmetic expression; if a comparison operator follows, the item is a
// builtin, otherwise the expression must denote an atom.
func (p *parser) parseBodyItem() (ast.Literal, ast.Builtin, bool, error) {
	neg := false
	negByNot := false
	if p.peek().Kind == lexer.Minus && p.peek2().Kind == lexer.Ident {
		// A leading '-' before an identifier is classical negation of a
		// literal unless the whole item turns out to be a comparison.
		p.next()
		neg = true
	} else if p.atKeyword("not") {
		p.next()
		neg, negByNot = true, true
	}
	e, err := p.parseExpr()
	if err != nil {
		return ast.Literal{}, ast.Builtin{}, false, err
	}
	if isCmp(p.peek().Kind) {
		if negByNot {
			return ast.Literal{}, ast.Builtin{}, false, p.errf("'not' cannot negate a comparison")
		}
		opTok := p.next()
		r, err := p.parseExpr()
		if err != nil {
			return ast.Literal{}, ast.Builtin{}, false, err
		}
		op := cmpOp(opTok.Kind)
		if neg {
			// The consumed '-' was a unary minus on the left expression.
			e = ast.BinExpr{Op: ast.Sub, L: ast.TermExpr{Term: ast.Int(0)}, R: e}
		}
		return ast.Literal{}, ast.Builtin{Op: op, L: e, R: r}, false, nil
	}
	te, ok := e.(ast.TermExpr)
	if !ok {
		return ast.Literal{}, ast.Builtin{}, false, p.errf("arithmetic expression is not a valid literal")
	}
	atom, err := termToAtom(te.Term)
	if err != nil {
		return ast.Literal{}, ast.Builtin{}, false, p.errf("%v", err)
	}
	return ast.Literal{Neg: neg, Atom: atom}, ast.Builtin{}, true, nil
}

func termToAtom(t ast.Term) (ast.Atom, error) {
	switch t := t.(type) {
	case ast.Sym:
		return ast.Atom{Pred: string(t)}, nil
	case ast.Compound:
		return ast.Atom{Pred: t.Functor, Args: t.Args}, nil
	}
	return ast.Atom{}, fmt.Errorf("%s is not an atom", t)
}

func (p *parser) parseLiteral() (ast.Literal, error) {
	neg := false
	if p.peek().Kind == lexer.Minus {
		p.next()
		neg = true
	} else if p.atKeyword("not") && p.peek2().Kind == lexer.Ident {
		p.next()
		neg = true
	}
	a, err := p.parseAtom()
	if err != nil {
		return ast.Literal{}, err
	}
	return ast.Literal{Neg: neg, Atom: a}, nil
}

func (p *parser) parseAtom() (ast.Atom, error) {
	nameTok, err := p.expect(lexer.Ident)
	if err != nil {
		return ast.Atom{}, err
	}
	a := ast.Atom{Pred: nameTok.Text}
	if p.peek().Kind == lexer.LParen {
		p.next()
		for {
			t, err := p.parseTerm()
			if err != nil {
				return ast.Atom{}, err
			}
			a.Args = append(a.Args, t)
			if p.peek().Kind != lexer.Comma {
				break
			}
			p.next()
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return ast.Atom{}, err
		}
	}
	return a, nil
}

func (p *parser) parseTerm() (ast.Term, error) {
	t := p.peek()
	switch t.Kind {
	case lexer.Variable:
		p.next()
		return ast.Var{Name: t.Text}, nil
	case lexer.Integer:
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer %q", t.Text)
		}
		return ast.Int(n), nil
	case lexer.Minus:
		p.next()
		it, err := p.expect(lexer.Integer)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(it.Text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer %q", it.Text)
		}
		return ast.Int(-n), nil
	case lexer.Ident:
		p.next()
		if p.peek().Kind != lexer.LParen {
			return ast.Sym(t.Text), nil
		}
		p.next()
		c := ast.Compound{Functor: t.Text}
		for {
			arg, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, arg)
			if p.peek().Kind != lexer.Comma {
				break
			}
			p.next()
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return c, nil
	}
	return nil, p.errf("expected term, found %s", t)
}

// parseExpr parses additive expressions.
func (p *parser) parseExpr() (ast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case lexer.Plus:
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = ast.BinExpr{Op: ast.Add, L: l, R: r}
		case lexer.Minus:
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = ast.BinExpr{Op: ast.Sub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

// parseMul parses multiplicative expressions ('*', '/', and the contextual
// keyword "mod").
func (p *parser) parseMul() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peek().Kind == lexer.Star:
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = ast.BinExpr{Op: ast.Mul, L: l, R: r}
		case p.peek().Kind == lexer.Slash:
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = ast.BinExpr{Op: ast.Div, L: l, R: r}
		case p.atKeyword("mod"):
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = ast.BinExpr{Op: ast.Mod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.peek().Kind == lexer.Minus {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if te, ok := e.(ast.TermExpr); ok {
			if n, ok := te.Term.(ast.Int); ok {
				return ast.TermExpr{Term: ast.Int(-n)}, nil
			}
		}
		return ast.BinExpr{Op: ast.Sub, L: ast.TermExpr{Term: ast.Int(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	if p.peek().Kind == lexer.LParen {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return ast.TermExpr{Term: t}, nil
}
