package storage

import "repro/internal/obs"

// Join metrics, resolved once from the process-global registry. Join is
// called once per rule join (not per tuple), so one enabled check and a
// few atomic adds per call stay off the inner-loop profile.
var (
	mJoins          = obs.Default().Counter("storage.join.calls")
	mJoinsPlanned   = obs.Default().Counter("storage.join.planned")
	mJoinsReordered = obs.Default().Counter("storage.join.reordered")
	mJoinDeltaFirst = obs.Default().Counter("storage.join.delta_first")
)

// isSequential reports whether order equals sequentialOrder(len(order),
// first) — i.e. the planner kept the source order.
func isSequential(order []int, first int) bool {
	want := 0
	for k, got := range order {
		if k == 0 && first >= 0 && first < len(order) {
			if got != first {
				return false
			}
			continue
		}
		if want == first {
			want++
		}
		if got != want {
			return false
		}
		want++
	}
	return true
}
