package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/term"
)

// refRelation is the original string-keyed relation layout, kept here as
// the differential oracle: the interned Relation must be observationally
// identical on Insert / Contains / Len / Candidates.
type refRelation struct {
	arity  int
	tuples [][]ast.Term
	seen   map[string]int
	cols   []map[string][]int
}

func newRefRelation(arity int) *refRelation {
	r := &refRelation{arity: arity, seen: make(map[string]int)}
	r.cols = make([]map[string][]int, arity)
	for i := range r.cols {
		r.cols[i] = make(map[string][]int)
	}
	return r
}

func refTermKey(b *strings.Builder, t ast.Term) {
	switch t := t.(type) {
	case ast.Sym:
		b.WriteByte('s')
		b.WriteString(string(t))
	case ast.Int:
		b.WriteByte('i')
		b.WriteString(t.String())
	case ast.Compound:
		b.WriteByte('c')
		b.WriteString(t.Functor)
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			refTermKey(b, a)
		}
		b.WriteByte(')')
	case ast.Var:
		b.WriteByte('v')
		b.WriteString(t.Name)
	}
}

func refKey(args []ast.Term) string {
	var b strings.Builder
	for i, t := range args {
		if i > 0 {
			b.WriteByte('\x00')
		}
		refTermKey(&b, t)
	}
	return b.String()
}

func (r *refRelation) insert(args []ast.Term) bool {
	k := refKey(args)
	if _, dup := r.seen[k]; dup {
		return false
	}
	idx := len(r.tuples)
	r.seen[k] = idx
	r.tuples = append(r.tuples, args)
	for c, t := range args {
		var b strings.Builder
		refTermKey(&b, t)
		r.cols[c][b.String()] = append(r.cols[c][b.String()], idx)
	}
	return true
}

func (r *refRelation) contains(args []ast.Term) bool {
	_, ok := r.seen[refKey(args)]
	return ok
}

func (r *refRelation) candidates(pattern []ast.Term, lo int) []int {
	best := -1
	var bestBucket []int
	for c := 0; c < r.arity && c < len(pattern); c++ {
		if pattern[c] == nil || !pattern[c].Ground() {
			continue
		}
		var b strings.Builder
		refTermKey(&b, pattern[c])
		bucket := r.cols[c][b.String()]
		if best == -1 || len(bucket) < len(bestBucket) {
			best = c
			bestBucket = bucket
		}
	}
	if best >= 0 {
		out := make([]int, 0, len(bestBucket))
		for _, i := range bestBucket {
			if i >= lo {
				out = append(out, i)
			}
		}
		return out
	}
	var out []int
	for i := lo; i < len(r.tuples); i++ {
		out = append(out, i)
	}
	return out
}

// randomGroundTerm draws from a small skewed universe so duplicates and
// shared index buckets are common.
func randomGroundTerm(rng *rand.Rand, depth int) ast.Term {
	switch r := rng.Intn(6); {
	case r <= 2 || depth >= 2:
		return ast.Sym(fmt.Sprintf("s%d", rng.Intn(5)))
	case r == 3:
		return ast.Int(int64(rng.Intn(4)))
	default:
		n := 1 + rng.Intn(2)
		args := make([]ast.Term, n)
		for i := range args {
			args[i] = randomGroundTerm(rng, depth+1)
		}
		return ast.Compound{Functor: fmt.Sprintf("f%d", rng.Intn(2)), Args: args}
	}
}

// TestRelationDifferential drives the interned Relation and the
// string-keyed reference with the same random operation sequences and
// requires identical observable behaviour: Insert verdicts, Contains
// verdicts, Len, tuple round-trips and Candidates index sets (including
// delta lows).
func TestRelationDifferential(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		arity := 1 + rng.Intn(3)
		rel := NewRelation(term.NewTable(), arity)
		ref := newRefRelation(arity)
		for op := 0; op < 400; op++ {
			args := make([]ast.Term, arity)
			for i := range args {
				args[i] = randomGroundTerm(rng, 0)
			}
			switch rng.Intn(3) {
			case 0:
				if got, want := rel.Insert(args), ref.insert(args); got != want {
					t.Fatalf("seed %d op %d: Insert(%v) = %v, ref %v", seed, op, args, got, want)
				}
			case 1:
				if got, want := rel.Contains(args), ref.contains(args); got != want {
					t.Fatalf("seed %d op %d: Contains(%v) = %v, ref %v", seed, op, args, got, want)
				}
			default:
				// Pattern with a random mix of bound and variable positions.
				pattern := make([]ast.Term, arity)
				for i := range pattern {
					if rng.Intn(2) == 0 {
						pattern[i] = ast.Var{Name: fmt.Sprintf("X%d", i)}
					} else {
						pattern[i] = randomGroundTerm(rng, 0)
					}
				}
				lo := 0
				if rel.Len() > 0 {
					lo = rng.Intn(rel.Len() + 1)
				}
				got := append([]int(nil), rel.Candidates(pattern, lo)...)
				want := ref.candidates(pattern, lo)
				sort.Ints(got)
				sort.Ints(want)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("seed %d op %d: Candidates(%v, %d) = %v, ref %v", seed, op, pattern, lo, got, want)
				}
			}
			if rel.Len() != len(ref.tuples) {
				t.Fatalf("seed %d op %d: Len = %d, ref %d", seed, op, rel.Len(), len(ref.tuples))
			}
		}
		// Tuple round-trip: decoded tuples equal the reference's, in order.
		for i := 0; i < rel.Len(); i++ {
			got, want := rel.Tuple(i), ref.tuples[i]
			for j := range want {
				if !got[j].Equal(want[j]) {
					t.Fatalf("seed %d: Tuple(%d)[%d] = %s, ref %s", seed, i, j, got[j], want[j])
				}
			}
		}
	}
}
