package storage

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/term"
)

func tup(names ...string) []ast.Term {
	out := make([]ast.Term, len(names))
	for i, n := range names {
		out[i] = ast.Sym(n)
	}
	return out
}

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation(term.NewTable(), 2)
	if !r.Insert(tup("a", "b")) {
		t.Error("first insert rejected")
	}
	if r.Insert(tup("a", "b")) {
		t.Error("duplicate insert accepted")
	}
	if !r.Insert(tup("b", "a")) {
		t.Error("permuted tuple rejected")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Contains(tup("a", "b")) || r.Contains(tup("a", "a")) {
		t.Error("Contains wrong")
	}
}

func TestRelationKeyInjective(t *testing.T) {
	r := NewRelation(term.NewTable(), 2)
	r.Insert([]ast.Term{ast.Sym("a"), ast.Sym("b")})
	// A tuple whose rendering could collide must still be distinct.
	if r.Contains([]ast.Term{ast.Sym("a\x00b"), ast.Sym("")}) {
		t.Error("tuple key not injective")
	}
	r2 := NewRelation(term.NewTable(), 1)
	r2.Insert([]ast.Term{ast.Int(1)})
	if r2.Contains([]ast.Term{ast.Sym("1")}) {
		t.Error("int/symbol collision")
	}
}

func TestCandidatesIndexSelection(t *testing.T) {
	r := NewRelation(term.NewTable(), 2)
	for i := 0; i < 10; i++ {
		r.Insert([]ast.Term{ast.Sym("x"), ast.Int(int64(i))})
	}
	r.Insert(tup("y", "z"))
	// Bound second column: the bucket has exactly one candidate.
	cand := r.Candidates([]ast.Term{ast.Var{Name: "A"}, ast.Int(3)}, 0)
	if len(cand) != 1 {
		t.Errorf("bound-column candidates = %v", cand)
	}
	// Bound first column picks the smaller bucket between the two.
	cand = r.Candidates([]ast.Term{ast.Sym("y"), ast.Sym("z")}, 0)
	if len(cand) != 1 {
		t.Errorf("two-bound candidates = %d, want the smaller bucket (1)", len(cand))
	}
	// Unbound pattern scans everything.
	cand = r.Candidates([]ast.Term{ast.Var{Name: "A"}, ast.Var{Name: "B"}}, 0)
	if len(cand) != 11 {
		t.Errorf("full scan = %d", len(cand))
	}
}

func TestCandidatesDelta(t *testing.T) {
	r := NewRelation(term.NewTable(), 1)
	for i := 0; i < 5; i++ {
		r.Insert([]ast.Term{ast.Int(int64(i))})
	}
	// lo=3 restricts to the tuples inserted at index >= 3.
	cand := r.Candidates([]ast.Term{ast.Var{Name: "X"}}, 3)
	if len(cand) != 2 {
		t.Errorf("delta scan = %v", cand)
	}
	// Indexed delta scan.
	cand = r.Candidates([]ast.Term{ast.Int(1)}, 3)
	if len(cand) != 0 {
		t.Errorf("indexed delta scan should exclude old tuples: %v", cand)
	}
	cand = r.Candidates([]ast.Term{ast.Int(4)}, 3)
	if len(cand) != 1 {
		t.Errorf("indexed delta scan missed a new tuple: %v", cand)
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	a := ast.Atom{Pred: "p", Args: tup("a")}
	if !s.InsertAtom(a) || s.InsertAtom(a) {
		t.Error("InsertAtom dedup wrong")
	}
	if !s.ContainsAtom(a) {
		t.Error("ContainsAtom wrong")
	}
	if s.ContainsAtom(ast.Atom{Pred: "q", Args: tup("a")}) {
		t.Error("ContainsAtom found atom in missing relation")
	}
	s.InsertAtom(ast.Atom{Pred: "q"})
	if s.Size() != 2 {
		t.Errorf("Size = %d", s.Size())
	}
	if len(s.Keys()) != 2 {
		t.Errorf("Keys = %v", s.Keys())
	}
	if s.Peek(ast.PredKey{Name: "zzz", Arity: 0}) != nil {
		t.Error("Peek created a relation")
	}
	if s.Rel(ast.PredKey{Name: "zzz", Arity: 0}) == nil {
		t.Error("Rel did not create a relation")
	}
}

func TestRelationArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	NewRelation(term.NewTable(), 2).Insert(tup("a"))
}
