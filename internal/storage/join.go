// Selectivity-driven join planning and execution over relations.
//
// Every multi-literal join in the engine — the semi-naive Datalog deltas,
// the grounder's fireable and competitor passes, the classical baselines —
// used to walk body literals in textual order. Join instead orders the
// literals greedily by boundness (most already-bound argument positions
// first, ties broken by smallest relation), then enumerates matching
// substitutions over the interned tuples with per-level pattern buffers, so
// the inner loop does integer comparisons and allocates nothing per
// candidate.
package storage

import (
	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/term"
	"repro/internal/unify"
)

// JoinLit is one positive body literal of a join: a pattern over a
// relation. A nil Rel means the relation does not exist (no matches). Lo
// restricts the scan to tuples at insertion index >= Lo (semi-naive delta).
type JoinLit struct {
	Rel  *Relation
	Args []ast.Term
	Lo   int
}

// nameIn reports membership in the small bound-variable-name list. Bodies
// are a handful of literals, so a linear scan beats a map allocation.
func nameIn(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// termBoundIn reports whether every variable of t is in bound.
func termBoundIn(t ast.Term, bound []string) bool {
	switch t := t.(type) {
	case ast.Var:
		return nameIn(bound, t.Name)
	case ast.Compound:
		for _, a := range t.Args {
			if !termBoundIn(a, bound) {
				return false
			}
		}
	}
	return true
}

// collectVars appends the variable names of t not already present.
func collectVars(t ast.Term, bound []string) []string {
	switch t := t.(type) {
	case ast.Var:
		if !nameIn(bound, t.Name) {
			bound = append(bound, t.Name)
		}
	case ast.Compound:
		for _, a := range t.Args {
			bound = collectVars(a, bound)
		}
	}
	return bound
}

// seedBound appends the names of t's variables that s already resolves to
// a ground term, so the planner credits positions bound by the incoming
// substitution (e.g. a head match) as selective.
func seedBound(s *unify.Subst, t ast.Term, bound []string) []string {
	switch t := t.(type) {
	case ast.Var:
		if !nameIn(bound, t.Name) {
			w := s.Walk(t)
			if _, isVar := w.(ast.Var); !isVar && w.Ground() {
				bound = append(bound, t.Name)
			}
		}
	case ast.Compound:
		for _, a := range t.Args {
			bound = seedBound(s, a, bound)
		}
	}
	return bound
}

// PlanJoin returns the greedy join order: starting from the literal in
// first (or nothing), repeatedly pick the unplaced literal with the most
// bound argument positions, breaking ties by smallest relation then by
// source position. first >= 0 forces that literal to the front (the
// semi-naive delta literal, whose restricted scan should bind before
// anything else). Variables the incoming substitution s already grounds
// (a nil s means none) count as bound from the start. The plan depends
// only on boundness and relation sizes, never on body order beyond final
// tie-breaks, which makes join cost insensitive to how the program author
// ordered the body.
func PlanJoin(s *unify.Subst, lits []JoinLit, first int) []int {
	n := len(lits)
	order := make([]int, 0, n)
	var usedBuf [16]bool
	used := usedBuf[:]
	if n > len(usedBuf) {
		used = make([]bool, n)
	}
	var boundBuf [24]string
	bound := boundBuf[:0]
	if s != nil && s.Len() > 0 {
		for i := range lits {
			for _, a := range lits[i].Args {
				bound = seedBound(s, a, bound)
			}
		}
	}
	place := func(i int) {
		order = append(order, i)
		used[i] = true
		for _, a := range lits[i].Args {
			bound = collectVars(a, bound)
		}
	}
	if first >= 0 && first < n {
		place(first)
	}
	for len(order) < n {
		best, bestBound, bestSize := -1, -1, 0
		for i := range lits {
			if used[i] {
				continue
			}
			nb := 0
			for _, a := range lits[i].Args {
				if termBoundIn(a, bound) {
					nb++
				}
			}
			size := 0
			if lits[i].Rel != nil {
				size = lits[i].Rel.Len()
			}
			if best == -1 || nb > bestBound || (nb == bestBound && size < bestSize) {
				best, bestBound, bestSize = i, nb, size
			}
		}
		place(best)
	}
	return order
}

// sequentialOrder is the planner-off order: source order with first moved
// to the front.
func sequentialOrder(n, first int) []int {
	order := make([]int, 0, n)
	if first >= 0 && first < n {
		order = append(order, first)
	}
	for i := 0; i < n; i++ {
		if i != first {
			order = append(order, i)
		}
	}
	return order
}

// Join enumerates every substitution extending s that matches all literals
// against their relations, calling yield once per complete match (bindings
// are live in s during the call and undone afterwards). first >= 0 forces
// that literal to be joined first (delta literal); plan selects the greedy
// selectivity order (true) or source order (false, the differential-test
// ablation). Iteration stops at the first non-nil error from yield, which
// is propagated.
func Join(s *unify.Subst, lits []JoinLit, first int, plan bool, yield func() error) error {
	return JoinSharded(s, lits, first, plan, 0, 1, yield)
}

// tupleShard maps a tuple to its owning shard: the first column's interned
// term id mod nShards. Arity-0 relations hold at most one (empty) tuple,
// which belongs to shard 0.
func tupleShard(tup []term.ID, nShards int) int {
	if len(tup) == 0 {
		return 0
	}
	s := int(tup[0]) % nShards
	if s < 0 {
		s += nShards
	}
	return s
}

// JoinSharded is Join restricted to one shard of the enumeration: only
// bindings whose driving-literal tuple (the first literal in join order)
// is owned by shard — first-column term id mod nShards — are enumerated.
// The shards partition Join's substitutions: disjoint, and their union
// over 0..nShards-1 is exactly Join's enumeration in the same per-shard
// order. A zero-literal join has a single empty substitution, assigned to
// shard 0. nShards <= 1 is plain Join.
func JoinSharded(s *unify.Subst, lits []JoinLit, first int, plan bool, shard, nShards int, yield func() error) error {
	n := len(lits)
	if n == 0 {
		if nShards > 1 && shard != 0 {
			return nil
		}
		return yield()
	}
	var order []int
	if plan {
		order = PlanJoin(s, lits, first)
	} else {
		order = sequentialOrder(n, first)
	}
	if obs.On() {
		mJoins.Inc()
		if plan {
			mJoinsPlanned.Inc()
			if !isSequential(order, first) {
				mJoinsReordered.Inc()
			}
		}
		if first >= 0 {
			mJoinDeltaFirst.Inc()
		}
	}
	// Per-level pattern buffers: interned id per position (term.None =
	// unconstrained) plus the walked pattern term for non-ground positions.
	maxA := 0
	for _, l := range lits {
		if len(l.Args) > maxA {
			maxA = len(l.Args)
		}
	}
	patIDs := make([]term.ID, n*maxA)
	patTerms := make([]ast.Term, n*maxA)

	var rec func(k int) error
	rec = func(k int) error {
		if k == n {
			return yield()
		}
		l := lits[order[k]]
		if l.Rel == nil {
			return nil
		}
		tab := l.Rel.tab
		ids := patIDs[k*maxA : k*maxA+len(l.Args)]
		pats := patTerms[k*maxA : k*maxA+len(l.Args)]
		for j, a := range l.Args {
			w := a
			if !w.Ground() {
				if v, ok := w.(ast.Var); ok {
					w = s.Walk(v) // binding or the var itself; no copy
				} else {
					w = s.Apply(a) // partially bound compound
				}
			}
			if w.Ground() {
				id, ok := tab.Lookup(w)
				if !ok {
					return nil // term in no tuple of this store: no match
				}
				ids[j], pats[j] = id, nil
			} else {
				ids[j], pats[j] = term.None, w
			}
		}
		// Enumerate candidates directly off the column buckets (same
		// package): no per-level iterator closure.
		match := func(ti int) error {
			tup := l.Rel.TupleIDs(ti)
			if k == 0 && nShards > 1 && tupleShard(tup, nShards) != shard {
				return nil
			}
			for j, id := range ids {
				if id != term.None && tup[j] != id {
					return nil
				}
			}
			mark := s.Mark()
			for j, p := range pats {
				if p == nil {
					continue
				}
				if !unify.MatchID(s, p, tup[j], tab) {
					s.Undo(mark)
					return nil
				}
			}
			err := rec(k + 1)
			s.Undo(mark)
			return err
		}
		bucket, bound := l.Rel.bestBucket(ids)
		if bound {
			for _, ti := range bucket[cutBucket(bucket, l.Lo):] {
				if err := match(int(ti)); err != nil {
					return err
				}
			}
			return nil
		}
		for ti, m := l.Lo, l.Rel.Len(); ti < m; ti++ {
			if err := match(ti); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}
