// Package storage implements the in-memory extensional store: ground
// relations with per-column hash indexes, plus a Store keyed by predicate.
// It is the substrate under the grounder's possible-atom fixpoint and under
// the classical Datalog baselines.
package storage

import (
	"strings"

	"repro/internal/ast"
)

// termKey returns a canonical string for a ground term, used as index key.
func termKey(t ast.Term) string {
	var b strings.Builder
	writeTermKey(&b, t)
	return b.String()
}

func writeTermKey(b *strings.Builder, t ast.Term) {
	switch t := t.(type) {
	case ast.Sym:
		b.WriteByte('s')
		b.WriteString(string(t))
	case ast.Int:
		b.WriteByte('i')
		b.WriteString(t.String())
	case ast.Compound:
		b.WriteByte('c')
		b.WriteString(t.Functor)
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeTermKey(b, a)
		}
		b.WriteByte(')')
	case ast.Var:
		b.WriteByte('v')
		b.WriteString(t.Name)
	}
}

func tupleKey(args []ast.Term) string {
	var b strings.Builder
	for i, t := range args {
		if i > 0 {
			b.WriteByte('\x00')
		}
		writeTermKey(&b, t)
	}
	return b.String()
}

// Relation is a set of ground tuples of fixed arity with one hash index per
// column. Tuples are append-only.
type Relation struct {
	arity  int
	tuples [][]ast.Term
	seen   map[string]int // tuple key -> index in tuples
	cols   []map[string][]int
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	r := &Relation{arity: arity, seen: make(map[string]int)}
	r.cols = make([]map[string][]int, arity)
	for i := range r.cols {
		r.cols[i] = make(map[string][]int)
	}
	return r
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert adds a ground tuple; it reports whether the tuple was new.
func (r *Relation) Insert(args []ast.Term) bool {
	if len(args) != r.arity {
		panic("storage: tuple arity mismatch")
	}
	k := tupleKey(args)
	if _, dup := r.seen[k]; dup {
		return false
	}
	idx := len(r.tuples)
	r.seen[k] = idx
	r.tuples = append(r.tuples, args)
	for c, t := range args {
		ck := termKey(t)
		r.cols[c][ck] = append(r.cols[c][ck], idx)
	}
	return true
}

// Contains reports whether the ground tuple is present.
func (r *Relation) Contains(args []ast.Term) bool {
	_, ok := r.seen[tupleKey(args)]
	return ok
}

// Tuple returns the i-th tuple (insertion order). The slice is shared.
func (r *Relation) Tuple(i int) []ast.Term { return r.tuples[i] }

// Candidates returns tuple indexes to examine for a pattern whose arguments
// may contain variables: if some pattern argument is ground, the smallest
// matching column index bucket is returned, otherwise all tuple indexes
// from lo (inclusive) onward. lo supports delta scans over the append-only
// tuple list. The returned indexes are not guaranteed to match; callers
// must still Match.
func (r *Relation) Candidates(pattern []ast.Term, lo int) []int {
	best := -1
	var bestBucket []int
	for c := 0; c < r.arity && c < len(pattern); c++ {
		if pattern[c] == nil || !pattern[c].Ground() {
			continue
		}
		bucket := r.cols[c][termKey(pattern[c])]
		if best == -1 || len(bucket) < len(bestBucket) {
			best = c
			bestBucket = bucket
		}
	}
	if best >= 0 {
		if lo == 0 {
			return bestBucket
		}
		out := make([]int, 0, len(bestBucket))
		for _, i := range bestBucket {
			if i >= lo {
				out = append(out, i)
			}
		}
		return out
	}
	out := make([]int, 0, len(r.tuples)-lo)
	for i := lo; i < len(r.tuples); i++ {
		out = append(out, i)
	}
	return out
}

// Store is a set of relations keyed by predicate.
type Store struct {
	rels map[ast.PredKey]*Relation
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{rels: make(map[ast.PredKey]*Relation)} }

// Rel returns the relation for key, creating it if needed.
func (s *Store) Rel(k ast.PredKey) *Relation {
	r, ok := s.rels[k]
	if !ok {
		r = NewRelation(k.Arity)
		s.rels[k] = r
	}
	return r
}

// Peek returns the relation for key or nil without creating it.
func (s *Store) Peek(k ast.PredKey) *Relation { return s.rels[k] }

// InsertAtom adds a ground atom to the store; it reports whether it was new.
func (s *Store) InsertAtom(a ast.Atom) bool { return s.Rel(a.Key()).Insert(a.Args) }

// ContainsAtom reports whether the ground atom is present.
func (s *Store) ContainsAtom(a ast.Atom) bool {
	r := s.rels[a.Key()]
	return r != nil && r.Contains(a.Args)
}

// Size returns the total number of tuples across relations.
func (s *Store) Size() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// Keys returns the predicate keys with a (possibly empty) relation.
func (s *Store) Keys() []ast.PredKey {
	out := make([]ast.PredKey, 0, len(s.rels))
	for k := range s.rels {
		out = append(out, k)
	}
	return out
}
