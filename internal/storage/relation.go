// Package storage implements the in-memory extensional store: ground
// relations with per-column hash indexes, plus a Store keyed by predicate.
// It is the substrate under the grounder's possible-atom fixpoint and under
// the classical Datalog baselines.
//
// Tuples are stored as interned term IDs (internal/term): Insert interns
// each argument once and every later membership test, index probe and join
// comparison is an int32 operation, instead of the per-call string
// re-serialisation of the original string-keyed layout.
package storage

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/term"
)

// Relation is a set of ground tuples of fixed arity with one hash index per
// column. Tuples are append-only and held as a flat []term.ID, arity ids
// per tuple.
type Relation struct {
	tab   *term.Table
	arity int
	flat  []term.ID // len = arity * Len()
	// seen buckets tuple indexes by the FNV-1a hash of their ID tuple;
	// collisions are resolved by comparing the stored ids.
	seen map[uint64][]int32
	cols []map[term.ID][]int32
}

// NewRelation returns an empty relation of the given arity over tab.
func NewRelation(tab *term.Table, arity int) *Relation {
	r := &Relation{tab: tab, arity: arity, seen: make(map[uint64][]int32)}
	r.cols = make([]map[term.ID][]int32, arity)
	for i := range r.cols {
		r.cols[i] = make(map[term.ID][]int32)
	}
	return r
}

// Table returns the term table the relation interns into.
func (r *Relation) Table() *term.Table { return r.tab }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if r.arity == 0 {
		return len(r.flat) // arity-0 relations store one sentinel id per tuple
	}
	return len(r.flat) / r.arity
}

// row returns the ids of the i-th tuple (a view into the flat storage).
func (r *Relation) row(i int) []term.ID {
	if r.arity == 0 {
		return nil
	}
	return r.flat[i*r.arity : (i+1)*r.arity]
}

// TupleIDs returns the interned ids of the i-th tuple (insertion order).
// The slice aliases internal storage; callers must not modify it.
func (r *Relation) TupleIDs(i int) []term.ID { return r.row(i) }

// Tuple returns the i-th tuple decoded to AST terms. It allocates; hot
// paths should use TupleIDs.
func (r *Relation) Tuple(i int) []ast.Term {
	ids := r.row(i)
	out := make([]ast.Term, len(ids))
	for j, id := range ids {
		out[j] = r.tab.Term(id)
	}
	return out
}

// lookupIndex returns the insertion index of the ID tuple, or -1.
func (r *Relation) lookupIndex(ids []term.ID) int {
	h := term.HashIDs(ids)
	for _, i := range r.seen[h] {
		if idsEqual(r.row(int(i)), ids) {
			return int(i)
		}
	}
	return -1
}

func idsEqual(a, b []term.ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InsertIDs adds a tuple of already-interned ids; it reports whether the
// tuple was new. The ids are copied.
func (r *Relation) InsertIDs(ids []term.ID) bool {
	if len(ids) != r.arity {
		panic("storage: tuple arity mismatch")
	}
	h := term.HashIDs(ids)
	for _, i := range r.seen[h] {
		if idsEqual(r.row(int(i)), ids) {
			return false
		}
	}
	idx := int32(r.Len())
	if r.arity == 0 {
		r.flat = append(r.flat, term.None) // sentinel; only Len matters
	} else {
		r.flat = append(r.flat, ids...)
	}
	r.seen[h] = append(r.seen[h], idx)
	for c, id := range ids {
		r.cols[c][id] = append(r.cols[c][id], idx)
	}
	return true
}

// Insert adds a ground tuple; it reports whether the tuple was new.
func (r *Relation) Insert(args []ast.Term) bool {
	if len(args) != r.arity {
		panic("storage: tuple arity mismatch")
	}
	var buf [8]term.ID
	ids := buf[:0]
	for _, t := range args {
		ids = append(ids, r.tab.Intern(t))
	}
	return r.InsertIDs(ids)
}

// ContainsIDs reports whether the ID tuple is present.
func (r *Relation) ContainsIDs(ids []term.ID) bool { return r.lookupIndex(ids) >= 0 }

// Contains reports whether the ground tuple is present. Terms never
// interned cannot be in any tuple, so the test is a pure lookup.
func (r *Relation) Contains(args []ast.Term) bool {
	if len(args) != r.arity {
		return false
	}
	var buf [8]term.ID
	ids := buf[:0]
	for _, t := range args {
		id, ok := r.tab.Lookup(t)
		if !ok {
			return false
		}
		ids = append(ids, id)
	}
	return r.ContainsIDs(ids)
}

// cutBucket returns the position of the first index >= lo in the ascending
// bucket. Buckets are ascending because tuples are append-only, so a delta
// scan is a binary search to the cut point, not a filtered copy.
func cutBucket(bucket []int32, lo int) int {
	if lo == 0 || len(bucket) == 0 || bucket[0] >= int32(lo) {
		return 0
	}
	return sort.Search(len(bucket), func(i int) bool { return bucket[i] >= int32(lo) })
}

// bestBucket picks the smallest column bucket among the bound pattern
// positions. It returns (bucket, true) when some position is bound, where a
// nil bucket means no tuple can match.
func (r *Relation) bestBucket(pattern []term.ID) ([]int32, bool) {
	var best []int32
	bound := false
	for c := 0; c < r.arity && c < len(pattern); c++ {
		if pattern[c] == term.None {
			continue
		}
		b := r.cols[c][pattern[c]]
		if !bound || len(b) < len(best) {
			best = b
		}
		bound = true
		if len(best) == 0 {
			break
		}
	}
	return best, bound
}

// EachCandidate calls fn with the index of every tuple that may match the
// pattern, in ascending insertion order starting at lo: pattern positions
// holding an interned id restrict the scan to the smallest matching column
// bucket; term.None positions are unconstrained. Candidates are not
// guaranteed to match on the other columns; callers must still compare.
// Iteration stops at the first non-nil error, which is returned. The
// iteration allocates nothing.
func (r *Relation) EachCandidate(pattern []term.ID, lo int, fn func(i int) error) error {
	bucket, bound := r.bestBucket(pattern)
	if bound {
		for _, i := range bucket[cutBucket(bucket, lo):] {
			if err := fn(int(i)); err != nil {
				return err
			}
		}
		return nil
	}
	for i, n := lo, r.Len(); i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// Candidates returns tuple indexes to examine for a pattern whose
// arguments may contain variables, as EachCandidate does for an interned
// pattern: ground argument positions restrict the scan to the smallest
// matching column bucket, from lo (inclusive) onward. Kept for callers and
// tests that want a materialised slice; join loops use EachCandidate.
func (r *Relation) Candidates(pattern []ast.Term, lo int) []int {
	var buf [8]term.ID
	ids := buf[:0]
	for c := 0; c < r.arity && c < len(pattern); c++ {
		id := term.None
		if pattern[c] != nil && pattern[c].Ground() {
			got, ok := r.tab.Lookup(pattern[c])
			if ok {
				id = got
			}
			// A ground term never interned matches nothing: keep id at
			// term.None only if we want "unconstrained" — here the column
			// is bound to a missing term, so the candidate set is empty.
			if !ok {
				return nil
			}
		}
		ids = append(ids, id)
	}
	var out []int
	r.EachCandidate(ids, lo, func(i int) error { //nolint:errcheck // fn never errors
		out = append(out, i)
		return nil
	})
	return out
}

// Store is a set of relations keyed by predicate, sharing one term table.
type Store struct {
	tab  *term.Table
	rels map[ast.PredKey]*Relation
}

// NewStore returns an empty store with a fresh term table.
func NewStore() *Store { return NewStoreWith(term.NewTable()) }

// NewStoreWith returns an empty store interning into tab, so callers can
// share one term table between the store and their own atom tables.
func NewStoreWith(tab *term.Table) *Store {
	return &Store{tab: tab, rels: make(map[ast.PredKey]*Relation)}
}

// Table returns the store's term table.
func (s *Store) Table() *term.Table { return s.tab }

// Rel returns the relation for key, creating it if needed.
func (s *Store) Rel(k ast.PredKey) *Relation {
	r, ok := s.rels[k]
	if !ok {
		r = NewRelation(s.tab, k.Arity)
		s.rels[k] = r
	}
	return r
}

// Peek returns the relation for key or nil without creating it.
func (s *Store) Peek(k ast.PredKey) *Relation { return s.rels[k] }

// InsertAtom adds a ground atom to the store; it reports whether it was new.
func (s *Store) InsertAtom(a ast.Atom) bool { return s.Rel(a.Key()).Insert(a.Args) }

// ContainsAtom reports whether the ground atom is present.
func (s *Store) ContainsAtom(a ast.Atom) bool {
	r := s.rels[a.Key()]
	return r != nil && r.Contains(a.Args)
}

// Size returns the total number of tuples across relations.
func (s *Store) Size() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// Keys returns the predicate keys with a (possibly empty) relation.
func (s *Store) Keys() []ast.PredKey {
	out := make([]ast.PredKey, 0, len(s.rels))
	for k := range s.rels {
		out = append(out, k)
	}
	return out
}
