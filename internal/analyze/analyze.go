// Package analyze provides static diagnostics over ordered programs —
// the lint pass of the knowledge-base system: unsafe variables, predicates
// with no defining rules, contradiction hot-spots (predicates defined with
// both signs across unordered components, the defeat sources of §1),
// unreachable components, and DOT renderings of the component lattice and
// predicate dependency graph.
package analyze

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Severity grades a diagnostic.
type Severity int

// Severities: Info notes structure, Warn flags likely mistakes.
const (
	Info Severity = iota
	Warn
)

// String names the severity.
func (s Severity) String() string {
	if s == Warn {
		return "warn"
	}
	return "info"
}

// Diagnostic is one finding.
type Diagnostic struct {
	Severity  Severity
	Component string // "" when program-wide
	Message   string
}

// String renders the diagnostic as a single line.
func (d Diagnostic) String() string {
	where := d.Component
	if where == "" {
		where = "program"
	}
	return fmt.Sprintf("%s: %s: %s", d.Severity, where, d.Message)
}

// Program runs all checks and returns the findings sorted by severity
// (warnings first) then text.
func Program(p *ast.OrderedProgram) []Diagnostic {
	var out []Diagnostic
	out = append(out, unsafeVars(p)...)
	out = append(out, undefinedPreds(p)...)
	out = append(out, defeatSources(p)...)
	out = append(out, emptyComponents(p)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// unsafeVars flags rule variables that no body literal binds: they are
// legal (the grounder ranges them over the universe) but usually
// accidental outside CWA facts.
func unsafeVars(p *ast.OrderedProgram) []Diagnostic {
	var out []Diagnostic
	for _, c := range p.Components {
		for _, r := range c.Rules {
			bound := make(map[string]bool)
			for _, l := range r.Body {
				for _, v := range l.Vars(nil) {
					bound[v.Name] = true
				}
			}
			var free []string
			for _, v := range r.Vars() {
				if !bound[v.Name] {
					free = append(free, v.Name)
				}
			}
			if len(free) == 0 {
				continue
			}
			// Universal CWA facts are idiomatic; only note them.
			sev := Warn
			if r.IsFact() && r.Head.Neg {
				sev = Info
			}
			out = append(out, Diagnostic{
				Severity:  sev,
				Component: c.Name,
				Message: fmt.Sprintf("rule %s has unbound variables %s (instantiated over the whole universe)",
					r, strings.Join(free, ", ")),
			})
		}
	}
	return out
}

// undefinedPreds flags body predicates that no visible rule can derive in
// either sign — their literals are permanently undefined.
func undefinedPreds(p *ast.OrderedProgram) []Diagnostic {
	defined := make(map[ast.PredKey]bool)
	for _, c := range p.Components {
		for _, r := range c.Rules {
			defined[r.Head.Atom.Key()] = true
		}
	}
	seen := make(map[ast.PredKey]bool)
	var out []Diagnostic
	for _, c := range p.Components {
		for _, r := range c.Rules {
			for _, l := range r.Body {
				k := l.Atom.Key()
				if !defined[k] && !seen[k] {
					seen[k] = true
					out = append(out, Diagnostic{
						Severity:  Warn,
						Component: c.Name,
						Message:   fmt.Sprintf("predicate %s occurs in a body but has no defining rule of either sign", k),
					})
				}
			}
		}
	}
	return out
}

// defeatSources flags predicates defined with both signs in components
// neither of which is strictly below the other: their instances can defeat
// each other, which is often intended (Figure 2) but worth surfacing.
func defeatSources(p *ast.OrderedProgram) []Diagnostic {
	type def struct {
		comp int
		neg  bool
	}
	byPred := make(map[ast.PredKey][]def)
	for ci, c := range p.Components {
		for _, r := range c.Rules {
			byPred[r.Head.Atom.Key()] = append(byPred[r.Head.Atom.Key()], def{ci, r.Head.Neg})
		}
	}
	var keys []ast.PredKey
	for k := range byPred {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	var out []Diagnostic
	for _, k := range keys {
		defs := byPred[k]
		reported := false
		for i := 0; i < len(defs) && !reported; i++ {
			for j := i + 1; j < len(defs) && !reported; j++ {
				a, b := defs[i], defs[j]
				if a.neg == b.neg {
					continue
				}
				if p.Less(a.comp, b.comp) || p.Less(b.comp, a.comp) {
					continue // ordered: overruling, not defeating
				}
				out = append(out, Diagnostic{
					Severity:  Info,
					Component: p.Components[a.comp].Name,
					Message: fmt.Sprintf("predicate %s is defined with both signs in unordered components %s and %s: instances may defeat each other",
						k, p.Components[a.comp].Name, p.Components[b.comp].Name),
				})
				reported = true
			}
		}
	}
	return out
}

// emptyComponents notes components with no rules (placeholders like the
// paper's initial "myself").
func emptyComponents(p *ast.OrderedProgram) []Diagnostic {
	var out []Diagnostic
	for _, c := range p.Components {
		if len(c.Rules) == 0 {
			out = append(out, Diagnostic{
				Severity:  Info,
				Component: c.Name,
				Message:   "component has no rules",
			})
		}
	}
	return out
}

// OrderDOT renders the component order as a GraphViz digraph (edges point
// from the more specific component to the more general one it extends).
func OrderDOT(p *ast.OrderedProgram) string {
	var b strings.Builder
	b.WriteString("digraph components {\n  rankdir=BT;\n")
	for _, c := range p.Components {
		fmt.Fprintf(&b, "  %q;\n", c.Name)
	}
	for _, e := range p.Edges {
		fmt.Fprintf(&b, "  %q -> %q;\n", e.Child, e.Parent)
	}
	b.WriteString("}\n")
	return b.String()
}

// DepsDOT renders the predicate dependency graph: an edge p -> q when a
// rule with head on p has q in its body; dashed when the body literal is
// negative, red when the head is negative.
func DepsDOT(p *ast.OrderedProgram) string {
	type edge struct {
		from, to ast.PredKey
		negBody  bool
		negHead  bool
	}
	seen := make(map[string]bool)
	var edges []edge
	for _, c := range p.Components {
		for _, r := range c.Rules {
			h := r.Head.Atom.Key()
			for _, l := range r.Body {
				e := edge{from: h, to: l.Atom.Key(), negBody: l.Neg, negHead: r.Head.Neg}
				k := fmt.Sprintf("%v", e)
				if !seen[k] {
					seen[k] = true
					edges = append(edges, e)
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		return fmt.Sprintf("%v", edges[i]) < fmt.Sprintf("%v", edges[j])
	})
	var b strings.Builder
	b.WriteString("digraph deps {\n")
	for _, e := range edges {
		attrs := []string{}
		if e.negBody {
			attrs = append(attrs, "style=dashed")
		}
		if e.negHead {
			attrs = append(attrs, "color=red")
		}
		suffix := ""
		if len(attrs) > 0 {
			suffix = " [" + strings.Join(attrs, ",") + "]"
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", e.from.String(), e.to.String(), suffix)
	}
	b.WriteString("}\n")
	return b.String()
}
