package analyze

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/relevance"
)

// Goal-directed diagnostics: given a query goal, the adorned predicate
// dependency analysis (internal/relevance) splits the program into the
// slice a goal-directed evaluation would ground and the rules it would
// skip. GoalUnreachable surfaces the skipped part as lint — dead weight
// for this goal — and AdornedDepsDOT renders the dependency graph with
// the adornments and demand status the slice is built from.

// GoalUnreachable reports, per component, the rules the goal's demand
// closure never reaches: a goal-directed evaluation of the goal grounds
// none of their instances. A component whose every rule is unreachable is
// flagged as a whole. Purely informational — unreachable rules are only
// dead weight for this particular goal, not defects.
func GoalUnreachable(p *ast.OrderedProgram, goal []ast.Literal) []Diagnostic {
	a := relevance.Analyze(p, goal)
	var out []Diagnostic
	for _, c := range p.Components {
		var dead []string
		seen := make(map[string]bool)
		for _, r := range c.Rules {
			if a.RuleDemanded(r) {
				continue
			}
			k := r.Head.Atom.Key().String()
			if r.Head.Neg {
				k = "-" + k
			}
			if !seen[k] {
				seen[k] = true
				dead = append(dead, k)
			}
		}
		if len(dead) == 0 {
			continue
		}
		sort.Strings(dead)
		msg := fmt.Sprintf("unreachable from goal %s: rules for %s are never grounded goal-directedly",
			relevance.GoalKey(goal), strings.Join(dead, ", "))
		if !anyDemanded(a, c.Rules) {
			msg = fmt.Sprintf("entire component is unreachable from goal %s (rules for %s)",
				relevance.GoalKey(goal), strings.Join(dead, ", "))
		}
		out = append(out, Diagnostic{Severity: Info, Component: c.Name, Message: msg})
	}
	return out
}

func anyDemanded(a *relevance.Analysis, rules []*ast.Rule) bool {
	for _, r := range rules {
		if a.RuleDemanded(r) {
			return true
		}
	}
	return false
}

// AdornedDepsDOT renders the predicate dependency graph adorned for the
// goal: node labels carry the binding pattern ("path/2^bf"), demanded
// predicates are solid boxes (doubled for restricted ones, whose magic
// guards actually prune instances), predicates outside the demand closure
// are greyed, and edges keep DepsDOT's conventions (dashed for negative
// body literals, red for negative heads).
func AdornedDepsDOT(p *ast.OrderedProgram, goal []ast.Literal) string {
	a := relevance.Analyze(p, goal)
	type edge struct {
		from, to ast.PredKey
		negBody  bool
		negHead  bool
	}
	nodes := make(map[ast.PredKey]bool)
	seen := make(map[string]bool)
	var edges []edge
	for _, c := range p.Components {
		for _, r := range c.Rules {
			h := r.Head.Atom.Key()
			nodes[h] = true
			for _, l := range r.Body {
				nodes[l.Atom.Key()] = true
				e := edge{from: h, to: l.Atom.Key(), negBody: l.Neg, negHead: r.Head.Neg}
				k := fmt.Sprintf("%v", e)
				if !seen[k] {
					seen[k] = true
					edges = append(edges, e)
				}
			}
		}
	}
	for _, l := range goal {
		nodes[l.Atom.Key()] = true
	}
	keys := make([]ast.PredKey, 0, len(nodes))
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	sort.Slice(edges, func(i, j int) bool {
		return fmt.Sprintf("%v", edges[i]) < fmt.Sprintf("%v", edges[j])
	})
	var b strings.Builder
	fmt.Fprintf(&b, "digraph adorned {\n  label=%q;\n  node [shape=box];\n", "goal: "+relevance.GoalKey(goal))
	for _, k := range keys {
		attrs := []string{fmt.Sprintf("label=%q", a.AdornString(k))}
		switch {
		case a.Restricted(k):
			attrs = append(attrs, "peripheries=2")
		case !a.Demanded[k]:
			attrs = append(attrs, "color=grey", "fontcolor=grey")
		}
		fmt.Fprintf(&b, "  %q [%s];\n", k.String(), strings.Join(attrs, ","))
	}
	for _, e := range edges {
		var attrs []string
		if e.negBody {
			attrs = append(attrs, "style=dashed")
		}
		if e.negHead {
			attrs = append(attrs, "color=red")
		}
		suffix := ""
		if len(attrs) > 0 {
			suffix = " [" + strings.Join(attrs, ",") + "]"
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", e.from.String(), e.to.String(), suffix)
	}
	b.WriteString("}\n")
	return b.String()
}
