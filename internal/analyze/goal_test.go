package analyze_test

import (
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/ast"
	"repro/internal/parser"
)

const goalSrc = `
module base {
  edge(c0, c1). edge(c1, c2).
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- path(X, Y), edge(Y, Z).
}
module exc extends base {
  -path(X, c2) :- edge(X, c2).
}
module junk {
  jedge(c0, c1).
  jpath(X, Y) :- jedge(X, Y).
}
`

func goalLits(t *testing.T, srcs ...string) []ast.Literal {
	t.Helper()
	out := make([]ast.Literal, len(srcs))
	for i, s := range srcs {
		l, err := parser.ParseLiteral(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = l
	}
	return out
}

func TestGoalUnreachable(t *testing.T) {
	p, err := parser.ParseProgram(goalSrc)
	if err != nil {
		t.Fatal(err)
	}
	ds := analyze.GoalUnreachable(p, goalLits(t, "path(c0, X)"))
	s := joined(ds)
	if !strings.Contains(s, "junk") || !strings.Contains(s, "entire component is unreachable") {
		t.Errorf("junk component not flagged:\n%s", s)
	}
	for _, d := range ds {
		if d.Component != "junk" {
			t.Errorf("reachable component flagged: %s", d)
		}
		if d.Severity != analyze.Info {
			t.Errorf("goal-unreachable lint should be informational: %s", d)
		}
	}
	// A goal over the junk component flips the picture: base and exc
	// become unreachable, each named with the dead head predicates.
	ds2 := analyze.GoalUnreachable(p, goalLits(t, "jpath(c0, X)"))
	s2 := joined(ds2)
	for _, want := range []string{"base", "exc", "path/2", "-path/2"} {
		if !strings.Contains(s2, want) {
			t.Errorf("missing %q in:\n%s", want, s2)
		}
	}
	if strings.Contains(s2, "junk:") {
		t.Errorf("goal's own component flagged:\n%s", s2)
	}
}

func TestAdornedDepsDOT(t *testing.T) {
	p, err := parser.ParseProgram(goalSrc)
	if err != nil {
		t.Fatal(err)
	}
	dot := analyze.AdornedDepsDOT(p, goalLits(t, "path(c0, X)"))
	for _, want := range []string{
		"digraph adorned",
		`label="goal: path/2(c0,_)"`,
		`label="path/2^bf"`, // right-recursive TC adorns bound-free
		"peripheries=2",     // path/2 is restricted: doubled border
		// Undemanded predicates carry no adornment — they are never called.
		`"jpath/2" [label="jpath/2",color=grey,fontcolor=grey];`,
		`"path/2" -> "edge/2"`, // plain dependency edges survive
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("AdornedDepsDOT missing %q:\n%s", want, dot)
		}
	}
	// The exception rule's negative head keeps DepsDOT's red edge.
	if !strings.Contains(dot, "color=red") {
		t.Errorf("negative-head edge not marked:\n%s", dot)
	}
}
