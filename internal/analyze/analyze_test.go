package analyze_test

import (
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/parser"
)

func diagsOf(t *testing.T, src string) []analyze.Diagnostic {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return analyze.Program(p)
}

func joined(ds []analyze.Diagnostic) string {
	var out []string
	for _, d := range ds {
		out = append(out, d.String())
	}
	return strings.Join(out, "\n")
}

func TestUnsafeVarWarning(t *testing.T) {
	ds := diagsOf(t, "p(X) :- q(Y).\nq(a).\n")
	s := joined(ds)
	if !strings.Contains(s, "unbound variables X") {
		t.Errorf("missing unsafe-var warning:\n%s", s)
	}
	// CWA facts are only informational.
	ds2 := diagsOf(t, "module cwa { -p(X1). }\nmodule c { p(a). }\norder c < cwa.\n")
	for _, d := range ds2 {
		if strings.Contains(d.Message, "unbound variables") && d.Severity == analyze.Warn {
			t.Errorf("CWA fact flagged as warning: %s", d)
		}
	}
}

func TestUndefinedPredicate(t *testing.T) {
	ds := diagsOf(t, "p :- q.\n")
	if !strings.Contains(joined(ds), "predicate q/0 occurs in a body but has no defining rule") {
		t.Errorf("missing undefined-predicate warning:\n%s", joined(ds))
	}
	// Defined in either sign silences it.
	ds2 := diagsOf(t, "p :- q.\n-q.\n")
	if strings.Contains(joined(ds2), "no defining rule") {
		t.Errorf("false positive:\n%s", joined(ds2))
	}
}

func TestDefeatSource(t *testing.T) {
	// Figure 2's shape: both signs in unordered components.
	ds := diagsOf(t, `
module c3 { rich(mimmo). -poor(X) :- rich(X). }
module c2 { poor(mimmo). -rich(X) :- poor(X). }
module c1 extends c2, c3 { free_ticket(X) :- poor(X). }
`)
	s := joined(ds)
	if !strings.Contains(s, "may defeat each other") {
		t.Errorf("missing defeat-source note:\n%s", s)
	}
	// Ordered components overrule instead: no note.
	ds2 := diagsOf(t, `
module c2 { fly(X) :- bird(X). bird(tux). }
module c1 extends c2 { -fly(X) :- bird(X). }
`)
	if strings.Contains(joined(ds2), "defeat") {
		t.Errorf("ordered overruling misreported:\n%s", joined(ds2))
	}
}

func TestEmptyComponent(t *testing.T) {
	ds := diagsOf(t, "module myself { }\nmodule e { a. }\norder myself < e.\n")
	if !strings.Contains(joined(ds), "component has no rules") {
		t.Errorf("missing empty-component note:\n%s", joined(ds))
	}
}

func TestWarningsSortFirst(t *testing.T) {
	ds := diagsOf(t, "module m { }\np(X) :- q(Y).\nq(a).\n")
	if len(ds) < 2 {
		t.Fatalf("expected several diagnostics, got %v", ds)
	}
	sawInfo := false
	for _, d := range ds {
		if d.Severity == analyze.Info {
			sawInfo = true
		}
		if d.Severity == analyze.Warn && sawInfo {
			t.Errorf("warning after info: %v", ds)
		}
	}
}

func TestOrderDOT(t *testing.T) {
	p, err := parser.ParseProgram(`
module c2 { a. }
module c1 extends c2 { b. }
`)
	if err != nil {
		t.Fatal(err)
	}
	dot := analyze.OrderDOT(p)
	for _, want := range []string{"digraph components", `"c1" -> "c2";`, "rankdir=BT"} {
		if !strings.Contains(dot, want) {
			t.Errorf("OrderDOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDepsDOT(t *testing.T) {
	p, err := parser.ParseProgram(`
fly(X) :- bird(X), -heavy(X).
-fly(X) :- penguin(X).
bird(a). heavy(a). penguin(a).
`)
	if err != nil {
		t.Fatal(err)
	}
	dot := analyze.DepsDOT(p)
	for _, want := range []string{
		`"fly/1" -> "bird/1";`,
		`"fly/1" -> "heavy/1" [style=dashed];`,
		`"fly/1" -> "penguin/1" [color=red];`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DepsDOT missing %q:\n%s", want, dot)
		}
	}
}
