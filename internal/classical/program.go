// Package classical implements the classical negation-as-failure semantics
// the paper compares against: stratified Datalog [ABW], the well-founded
// semantics [VRS] via the alternating fixpoint, total stable models [GL1],
// and the 3-valued models and founded/stable models of [P3] and [SZ] that
// §3 of the paper proves are captured by the OV/EV translations.
//
// Programs here are seminegative (positive heads); body negation is read
// as negation as failure. The package has its own ground representation:
// a rule is head <- positive atoms, negated atoms.
package classical

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/datalog"
	"repro/internal/interp"
	"repro/internal/storage"
	"repro/internal/unify"
)

// Rule is a ground seminegative rule over interned atoms: Head <- Pos,
// not Neg.
type Rule struct {
	Head interp.AtomID
	Pos  []interp.AtomID
	Neg  []interp.AtomID
	Src  *ast.Rule
}

// Program is a ground classical program.
type Program struct {
	Tab   *interp.Table
	Rules []Rule
	// headRules[a] lists the indexes of rules with head a.
	headRules map[interp.AtomID][]int32
}

// HeadRules returns the indexes of the rules with the given head atom.
func (p *Program) HeadRules(a interp.AtomID) []int32 { return p.headRules[a] }

// Options configures classical grounding.
type Options struct {
	// MaxDerived caps the possible-atom fixpoint and instance count
	// (0 = 1<<22).
	MaxDerived int
	// Full instantiates every rule over the whole constant universe and
	// interns the complete Herbrand base, instead of relevance-based
	// grounding. Required when enumerating arbitrary 3-valued models
	// (relevance grounding drops rules with underivable positive bodies,
	// which is sound for negation-as-failure fixpoints but changes the
	// 3-valued model family).
	Full bool
}

// domKeyC binds head variables that no positive body literal binds.
var domKeyC = ast.PredKey{Name: "$dom", Arity: 1}

// GroundRules instantiates a seminegative program with relevance-based
// grounding: the positive-projection fixpoint over-approximates the
// derivable atoms, rules are instantiated by joins over it (negation as
// failure never restricts instantiation), and negated atoms are interned
// as encountered. Every rule variable must occur in a positive body
// literal or be a head variable (head variables without positive binding
// range over the universe of program constants).
func GroundRules(rules []*ast.Rule, opts Options) (*Program, error) {
	if opts.MaxDerived == 0 {
		opts.MaxDerived = 1 << 22
	}
	for _, r := range rules {
		if r.Head.Neg {
			return nil, fmt.Errorf("classical: negative head in %s", r)
		}
	}
	// Universe of constants for head-only variables.
	sp := ast.SingleComponent("c", rules)
	uni := sp.Constants()
	if len(uni) == 0 {
		uni = []ast.Term{ast.Sym("u0")}
	}

	st := storage.NewStore()
	dom := st.Rel(domKeyC)
	for _, t := range uni {
		dom.Insert([]ast.Term{t})
	}
	type src struct {
		r    *ast.Rule
		body []datalog.Lit // positive body plus $dom for free head vars
	}
	var srcs []src
	var dl []*datalog.Rule
	for _, r := range rules {
		bound := make(map[string]bool)
		var body []datalog.Lit
		for _, l := range r.Body {
			if l.Neg {
				continue
			}
			body = append(body, datalog.Lit{Key: l.Atom.Key(), Args: l.Atom.Args})
			for _, v := range l.Vars(nil) {
				bound[v.Name] = true
			}
		}
		for _, v := range r.Head.Vars(nil) {
			if !bound[v.Name] {
				bound[v.Name] = true
				body = append(body, datalog.Lit{Key: domKeyC, Args: []ast.Term{v}})
			}
		}
		// Negated and builtin variables must now be bound.
		for _, l := range r.Body {
			if !l.Neg {
				continue
			}
			for _, v := range l.Vars(nil) {
				if !bound[v.Name] {
					return nil, fmt.Errorf("classical: unsafe rule %s: variable %s only in negated literal", r, v.Name)
				}
			}
		}
		for _, b := range r.Builtins {
			for _, v := range b.Vars(nil) {
				if !bound[v.Name] {
					return nil, fmt.Errorf("classical: unsafe rule %s: variable %s only in builtin", r, v.Name)
				}
			}
		}
		dl = append(dl, &datalog.Rule{
			Head:     datalog.Lit{Key: r.Head.Atom.Key(), Args: r.Head.Atom.Args},
			Body:     body,
			Builtins: r.Builtins,
		})
		srcs = append(srcs, src{r: r, body: body})
	}
	if !opts.Full {
		// Bound derived terms by the deepest term written in the program:
		// the classical baselines are Datalog engines, and without the
		// guard a functor head like num(s(X)) :- num(X) would diverge.
		maxDepth := 0
		for _, r := range rules {
			for _, t := range r.Head.Atom.Args {
				if d := ast.TermDepth(t); d > maxDepth {
					maxDepth = d
				}
			}
			for _, l := range r.Body {
				for _, t := range l.Atom.Args {
					if d := ast.TermDepth(t); d > maxDepth {
						maxDepth = d
					}
				}
			}
		}
		filter := func(a ast.Atom) bool {
			for _, t := range a.Args {
				if ast.TermDepth(t) > maxDepth {
					return false
				}
			}
			return true
		}
		if _, err := datalog.Eval(st, dl, datalog.Options{MaxDerived: opts.MaxDerived, AtomFilter: filter}); err != nil {
			return nil, err
		}
	}

	// The atom table shares the store's term table, so instantiation joins
	// and atom interning agree on term ids.
	p := &Program{Tab: interp.NewTableWith(st.Table()), headRules: make(map[interp.AtomID][]int32)}
	seen := make(map[string]bool)
	var keyBuf []byte
	appendLit := func(b []byte, l interp.Lit) []byte {
		return append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	emit := func(r *ast.Rule, s *unify.Subst) error {
		for _, b := range r.Builtins {
			gb := ast.Builtin{Op: b.Op, L: substExpr(s, b.L), R: substExpr(s, b.R)}
			holds, ok := ast.EvalBuiltin(gb)
			if !ok || !holds {
				return nil
			}
		}
		gr := Rule{Src: r}
		head := s.ApplyAtom(r.Head.Atom)
		if !head.Ground() {
			return fmt.Errorf("classical: non-ground head instance of %s", r)
		}
		// Dedup on the interned encoding: head id then signed body lit ids,
		// packed little-endian.
		keyBuf = appendLit(keyBuf[:0], interp.MkLit(p.Tab.Intern(head), false))
		for _, l := range r.Body {
			a := s.ApplyAtom(l.Atom)
			if !a.Ground() {
				return fmt.Errorf("classical: non-ground instance of %s", r)
			}
			id := p.Tab.Intern(a)
			if l.Neg {
				gr.Neg = append(gr.Neg, id)
			} else {
				gr.Pos = append(gr.Pos, id)
			}
			keyBuf = appendLit(keyBuf, interp.MkLit(id, l.Neg))
		}
		key := string(keyBuf)
		if seen[key] {
			return nil
		}
		seen[key] = true
		gr.Head = p.Tab.Intern(head)
		p.headRules[gr.Head] = append(p.headRules[gr.Head], int32(len(p.Rules)))
		p.Rules = append(p.Rules, gr)
		if len(p.Rules) > opts.MaxDerived {
			return datalog.ErrBudget
		}
		return nil
	}
	if opts.Full {
		// Exhaustive instantiation over the constant universe, then intern
		// the complete Herbrand base of every referenced predicate.
		for _, r := range rules {
			if err := enumerateAll(r, uni, func(s *unify.Subst) error { return emit(r, s) }); err != nil {
				return nil, err
			}
		}
		for _, k := range ast.SingleComponent("c", rules).Predicates() {
			if err := internAll(p.Tab, k, uni, opts.MaxDerived); err != nil {
				return nil, err
			}
		}
		return p, nil
	}
	for _, sr := range srcs {
		if err := joinOver(st, sr.body, func(s *unify.Subst) error { return emit(sr.r, s) }); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// enumerateAll binds every rule variable over the universe.
func enumerateAll(r *ast.Rule, uni []ast.Term, yield func(*unify.Subst) error) error {
	vars := r.Vars()
	s := unify.NewSubst()
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			return yield(s)
		}
		for _, t := range uni {
			mark := s.Mark()
			s.Bind(vars[i], t)
			if err := rec(i + 1); err != nil {
				return err
			}
			s.Undo(mark)
		}
		return nil
	}
	return rec(0)
}

// internAll interns every atom of predicate k over the universe.
func internAll(tab *interp.Table, k ast.PredKey, uni []ast.Term, budget int) error {
	args := make([]ast.Term, k.Arity)
	var rec func(i int) error
	rec = func(i int) error {
		if i == k.Arity {
			tab.Intern(ast.Atom{Pred: k.Name, Args: append([]ast.Term(nil), args...)})
			if budget > 0 && tab.Len() > budget {
				return datalog.ErrBudget
			}
			return nil
		}
		for _, t := range uni {
			args[i] = t
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// joinOver enumerates substitutions satisfying the positive body over st,
// in selectivity-planner order.
func joinOver(st *storage.Store, body []datalog.Lit, yield func(*unify.Subst) error) error {
	s := unify.NewSubst()
	lits := make([]storage.JoinLit, len(body))
	for i, l := range body {
		lits[i] = storage.JoinLit{Rel: st.Peek(l.Key), Args: l.Args}
	}
	return storage.Join(s, lits, -1, true, func() error { return yield(s) })
}

func substExpr(s *unify.Subst, e ast.Expr) ast.Expr {
	return ast.SubstituteExpr(e, func(v ast.Var) ast.Term {
		t := s.Apply(v)
		if tv, ok := t.(ast.Var); ok && tv.Name == v.Name {
			return nil
		}
		return t
	})
}

// RuleString renders a ground classical rule.
func (p *Program) RuleString(r *Rule) string {
	s := p.Tab.Atom(r.Head).String()
	if len(r.Pos)+len(r.Neg) > 0 {
		s += " :- "
		first := true
		for _, a := range r.Pos {
			if !first {
				s += ", "
			}
			first = false
			s += p.Tab.Atom(a).String()
		}
		for _, a := range r.Neg {
			if !first {
				s += ", "
			}
			first = false
			s += "not " + p.Tab.Atom(a).String()
		}
	}
	return s + "."
}
