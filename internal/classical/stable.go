package classical

import (
	"errors"

	"repro/internal/interp"
)

// ErrBudget reports that a stable-model search exceeded its budget.
var ErrBudget = errors.New("classical: search budget exceeded")

// StableOptions configures total stable model enumeration.
type StableOptions struct {
	// MaxNodes caps the DPLL nodes explored (0 = 1<<22).
	MaxNodes int
	// MaxModels stops after this many models (0 = all).
	MaxModels int
}

// StableModelsTotal enumerates the total stable models [GL1] of the ground
// program by branch and bound over the undefined atoms of the well-founded
// model: the well-founded true and false atoms belong to every stable
// model, branching assigns one undefined atom at a time, and every leaf is
// verified with the Gelfond–Lifschitz reduct condition.
func (p *Program) StableModelsTotal(opts StableOptions) ([]*interp.Bitset, error) {
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 1 << 22
	}
	n := p.Tab.Len()
	wf := p.WellFounded()
	fixedTrue := interp.NewBitset(n)
	fixedFalse := interp.NewBitset(n)
	var branch []interp.AtomID
	for i := 0; i < n; i++ {
		switch wf.Value(interp.AtomID(i)) {
		case interp.True:
			fixedTrue.Set(i)
		case interp.False:
			fixedFalse.Set(i)
		default:
			branch = append(branch, interp.AtomID(i))
		}
	}
	var found []*interp.Bitset
	nodes := 0
	cand := fixedTrue.Clone()
	var rec func(k int) error
	rec = func(k int) error {
		nodes++
		if nodes > opts.MaxNodes {
			return ErrBudget
		}
		if opts.MaxModels > 0 && len(found) >= opts.MaxModels {
			return nil
		}
		if k == len(branch) {
			if p.IsStableTotal(cand) {
				found = append(found, cand.Clone())
			}
			return nil
		}
		a := int(branch[k])
		cand.Set(a)
		if err := rec(k + 1); err != nil {
			return err
		}
		cand.Clear(a)
		return rec(k + 1)
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return found, nil
}

// value3 returns the three-valued truth value of an atom in a partial
// interpretation.
func value3(m *interp.Interp, a interp.AtomID) interp.Value { return m.Value(a) }

// bodyValue3 returns min over the body literals: positives take the atom's
// value, negated atoms the complement value. An empty body is True.
func (p *Program) bodyValue3(m *interp.Interp, r *Rule) interp.Value {
	v := interp.True
	for _, a := range r.Pos {
		if w := value3(m, a); w < v {
			v = w
		}
	}
	for _, a := range r.Neg {
		w := interp.True - value3(m, a) // complement: T<->F, U fixed
		if w < v {
			v = w
		}
	}
	return v
}

// IsThreeValuedModel checks Przymusinski's condition [P3]: for every ground
// rule, value(head) >= value(body) with F < U < T.
func (p *Program) IsThreeValuedModel(m *interp.Interp) bool {
	for i := range p.Rules {
		r := &p.Rules[i]
		if value3(m, r.Head) < p.bodyValue3(m, r) {
			return false
		}
	}
	return true
}

// IsFounded checks the foundedness condition of [SZ] for a 3-valued model
// M: build the positive version C_M by deleting every non-applied rule
// (a rule is applied when its body literals are all in M and its head is
// in M) and dropping the negated literals of the remaining ones; M is
// founded iff the least model of C_M equals M⁺.
func (p *Program) IsFounded(m *interp.Interp) bool {
	// lfp over the applied rules' positive parts.
	derived := interp.NewBitset(p.Tab.Len())
	for changed := true; changed; {
		changed = false
		for i := range p.Rules {
			r := &p.Rules[i]
			if derived.Get(int(r.Head)) {
				continue
			}
			if !p.applied(m, r) {
				continue
			}
			ok := true
			for _, a := range r.Pos {
				if !derived.Get(int(a)) {
					ok = false
					break
				}
			}
			if ok {
				derived.Set(int(r.Head))
				changed = true
			}
		}
	}
	for i := 0; i < p.Tab.Len(); i++ {
		if derived.Get(i) != (m.Value(interp.AtomID(i)) == interp.True) {
			return false
		}
	}
	return true
}

// applied reports the paper's §3 notion: every body literal of r is a
// member of M (positives true, negated atoms false) and the head is in M.
func (p *Program) applied(m *interp.Interp, r *Rule) bool {
	if m.Value(r.Head) != interp.True {
		return false
	}
	for _, a := range r.Pos {
		if m.Value(a) != interp.True {
			return false
		}
	}
	for _, a := range r.Neg {
		if m.Value(a) != interp.False {
			return false
		}
	}
	return true
}

// FoundedModels enumerates all 3-valued founded models by brute force over
// three-valued assignments — exponential, for theorem verification on
// small programs only. The budget caps the assignments examined.
func (p *Program) FoundedModels(maxLeaves int) ([]*interp.Interp, error) {
	if maxLeaves == 0 {
		maxLeaves = 1 << 22
	}
	n := p.Tab.Len()
	cur := interp.New(p.Tab)
	var found []*interp.Interp
	leaves := 0
	var rec func(a int) error
	rec = func(a int) error {
		if a == n {
			leaves++
			if leaves > maxLeaves {
				return ErrBudget
			}
			if p.IsThreeValuedModel(cur) && p.IsFounded(cur) {
				found = append(found, cur.Clone())
			}
			return nil
		}
		id := interp.AtomID(a)
		cur.AddLit(interp.MkLit(id, false))
		if err := rec(a + 1); err != nil {
			return err
		}
		cur.RemoveLit(interp.MkLit(id, false))
		cur.AddLit(interp.MkLit(id, true))
		if err := rec(a + 1); err != nil {
			return err
		}
		cur.RemoveLit(interp.MkLit(id, true))
		return rec(a + 1)
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return found, nil
}

// StableThreeValued returns the maximal founded models — the 3-valued
// stable models of [SZ]. Brute force; small programs only.
func (p *Program) StableThreeValued(maxLeaves int) ([]*interp.Interp, error) {
	founded, err := p.FoundedModels(maxLeaves)
	if err != nil {
		return nil, err
	}
	var out []*interp.Interp
	for i, m := range founded {
		maximal := true
		for j, o := range founded {
			if i != j && m.ProperSubsetOf(o) {
				maximal = false
				break
			}
		}
		if maximal {
			dup := false
			for _, o := range out {
				if o.Equal(m) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, m)
			}
		}
	}
	return out, nil
}
