package classical_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/classical"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/workload"
)

func rulesOf(t *testing.T, src string) []*ast.Rule {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p.Components[0].Rules
}

// The canonical p :- not p: well-founded leaves p undefined, no total
// stable model exists, the only founded model is {}.
func TestSelfNegation(t *testing.T) {
	p := mustGround(t, rulesOf(t, "p :- -p.\n"), true)
	wf := p.WellFounded()
	id, _ := p.Tab.Lookup(ast.Atom{Pred: "p"})
	if wf.Value(id) != interp.Undef {
		t.Errorf("wf(p) = %v, want U", wf.Value(id))
	}
	ms, err := p.StableModelsTotal(classical.StableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("p :- not p has %d total stable models", len(ms))
	}
	founded, err := p.FoundedModels(0)
	if err != nil {
		t.Fatal(err)
	}
	// Founded models: {} and... {-p}? -p ∈ M means p false; vacuous
	// foundedness constrains only M+; 3-valued model condition: head p
	// has value F, body -p has value T: F >= T fails -> {-p} is not a
	// 3-valued model. {p}: body -p = F <= head T ok; founded? p needs
	// support: rule applied iff -p in M — no. So {p} unfounded.
	if len(founded) != 1 || founded[0].Len() != 0 {
		var got []string
		for _, m := range founded {
			got = append(got, m.String())
		}
		t.Errorf("founded models = %v, want [{}]", got)
	}
}

// Support through double negation: p :- not q, q :- not p is the classic
// two-stable-model program.
func TestEvenNegationLoop(t *testing.T) {
	p := mustGround(t, rulesOf(t, "p :- -q.\nq :- -p.\n"), true)
	wf := p.WellFounded()
	pid, _ := p.Tab.Lookup(ast.Atom{Pred: "p"})
	qid, _ := p.Tab.Lookup(ast.Atom{Pred: "q"})
	if wf.Value(pid) != interp.Undef || wf.Value(qid) != interp.Undef {
		t.Error("wf should leave both undefined")
	}
	ms, err := p.StableModelsTotal(classical.StableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("want 2 stable models, got %d", len(ms))
	}
	var got []string
	for _, m := range ms {
		got = append(got, strings.Join(p.TrueAtoms(m), ","))
	}
	if !(contains(got, "p") && contains(got, "q")) {
		t.Errorf("stable models = %v", got)
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Deep stratification: a chain of negations across predicates.
func TestDeepStrata(t *testing.T) {
	src := `
a0.
a1 :- -a0.
a2 :- -a1.
a3 :- -a2.
a4 :- -a3.
`
	rules := rulesOf(t, src)
	strat, err := classical.Stratify(rules)
	if err != nil {
		t.Fatal(err)
	}
	if strat.NumLevels != 5 {
		t.Errorf("levels = %d, want 5", strat.NumLevels)
	}
	p := mustGround(t, rules, true)
	m := p.StratifiedModel(strat)
	want := map[string]bool{"a0": true, "a1": false, "a2": true, "a3": false, "a4": true}
	for name, expect := range want {
		id, ok := p.Tab.Lookup(ast.Atom{Pred: name})
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if m.Get(int(id)) != expect {
			t.Errorf("%s = %v, want %v", name, m.Get(int(id)), expect)
		}
	}
	// The well-founded model agrees and is total.
	wf := p.WellFounded()
	for name, expect := range want {
		id, _ := p.Tab.Lookup(ast.Atom{Pred: name})
		wantV := interp.False
		if expect {
			wantV = interp.True
		}
		if wf.Value(id) != wantV {
			t.Errorf("wf(%s) = %v, want %v", name, wf.Value(id), wantV)
		}
	}
}

// A non-ground stratified program with NAF over joined variables.
func TestStratifiedNonGround(t *testing.T) {
	src := `
edge(a, b). edge(b, c). edge(a, c).
node(a). node(b). node(c).
sink(X) :- node(X), -hasout(X).
hasout(X) :- edge(X, Y).
`
	rules := rulesOf(t, src)
	strat, err := classical.Stratify(rules)
	if err != nil {
		t.Fatal(err)
	}
	p := mustGround(t, rules, false)
	m := p.StratifiedModel(strat)
	atoms := strings.Join(p.TrueAtoms(m), " ")
	if !strings.Contains(atoms, "sink(c)") || strings.Contains(atoms, "sink(a)") || strings.Contains(atoms, "sink(b)") {
		t.Errorf("sinks wrong: %s", atoms)
	}
}

// Unsafe classical rules are rejected with a useful message.
func TestClassicalSafetyErrors(t *testing.T) {
	for _, src := range []string{
		"p :- -q(X).\n",       // var only in a negated literal
		"p :- q(X), X > Y.\n", // builtin var unbound
	} {
		if _, err := classical.GroundRules(rulesOf(t, src), classical.Options{}); err == nil {
			t.Errorf("unsafe program accepted: %s", src)
		}
	}
	// Head-only variables are allowed (they range over the constants).
	src := "p(X).\nq(a).\n"
	cp, err := classical.GroundRules(rulesOf(t, src), classical.Options{})
	if err != nil {
		t.Fatalf("head-only var rejected: %v", err)
	}
	if cp.Tab.Len() < 2 {
		t.Errorf("head-only var instantiation missing: %d atoms", cp.Tab.Len())
	}
}

// Negative heads are rejected by the classical pipeline.
func TestClassicalRejectsNegativeHeads(t *testing.T) {
	if _, err := classical.GroundRules(rulesOf(t, "-p.\n"), classical.Options{}); err == nil {
		t.Error("negative head accepted")
	}
}

// Budget errors propagate.
func TestClassicalBudget(t *testing.T) {
	rules := rulesOf(t, `
e(a, b). e(b, c). e(c, d). e(d, e2). e(e2, f).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
`)
	if _, err := classical.GroundRules(rules, classical.Options{MaxDerived: 3}); err == nil {
		t.Error("budget not enforced")
	}
}

// TestBacktrackingMatchesDPLL: the [SZ] backtracking fixpoint enumerates
// exactly the same total stable models as the WFS-prefixed DPLL search on
// random programs and on the win-move workloads.
func TestBacktrackingMatchesDPLL(t *testing.T) {
	check := func(t *testing.T, p *classical.Program, tag string) {
		t.Helper()
		a, err := p.StableModelsTotal(classical.StableOptions{})
		if err != nil {
			t.Fatalf("%s: dpll: %v", tag, err)
		}
		b, err := p.StableModelsBacktracking(classical.StableOptions{})
		if err != nil {
			t.Fatalf("%s: backtracking: %v", tag, err)
		}
		as := make(map[string]bool)
		for _, m := range a {
			as[strings.Join(p.TrueAtoms(m), ",")] = true
		}
		bs := make(map[string]bool)
		for _, m := range b {
			bs[strings.Join(p.TrueAtoms(m), ",")] = true
		}
		if len(as) != len(bs) {
			t.Fatalf("%s: %d vs %d stable models", tag, len(as), len(bs))
		}
		for k := range as {
			if !bs[k] {
				t.Fatalf("%s: model %q missing from backtracking enumeration", tag, k)
			}
		}
	}
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rules := workload.RandomPropositional(rng, workload.RandomConfig{
			Atoms: 5, Rules: 8, MaxBody: 2, NegBody: true,
		})
		check(t, mustGround(t, rules, true), "random")
	}
	for _, n := range []int{3, 4, 5, 6} {
		check(t, mustGround(t, workload.WinMove(workload.CycleEdges(n)), false),
			"cycle")
	}
}

// HeadRules index is consistent.
func TestHeadRulesIndex(t *testing.T) {
	p := mustGround(t, rulesOf(t, "a.\na :- b.\nb.\n"), true)
	id, _ := p.Tab.Lookup(ast.Atom{Pred: "a"})
	if got := len(p.HeadRules(id)); got != 2 {
		t.Errorf("HeadRules(a) = %d, want 2", got)
	}
}
