package classical

import (
	"repro/internal/interp"
)

// omega computes the least fixpoint of the positive consequence operator
// with every negated atom evaluated against the fixed set J: "not a" holds
// iff a ∉ J. This is Van Gelder's anti-monotone operator A(J); iterating
// A² yields the well-founded semantics.
func (p *Program) omega(j *interp.Bitset) *interp.Bitset {
	out := interp.NewBitset(p.Tab.Len())
	unsat := make([]int32, len(p.Rules))
	occ := make(map[interp.AtomID][]int32)
	var queue []interp.AtomID
	derive := func(a interp.AtomID) {
		if !out.Get(int(a)) {
			out.Set(int(a))
			queue = append(queue, a)
		}
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		blocked := false
		for _, a := range r.Neg {
			if j.Get(int(a)) {
				blocked = true
				break
			}
		}
		if blocked {
			unsat[i] = -1
			continue
		}
		unsat[i] = int32(len(r.Pos))
		for _, a := range r.Pos {
			occ[a] = append(occ[a], int32(i))
		}
		if len(r.Pos) == 0 {
			derive(r.Head)
		}
	}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for _, ri := range occ[a] {
			if unsat[ri] <= 0 {
				continue
			}
			unsat[ri]--
			if unsat[ri] == 0 {
				derive(p.Rules[ri].Head)
			}
		}
	}
	return out
}

// WellFounded computes the well-founded model [VRS] by the alternating
// fixpoint: the returned interpretation holds the well-founded true atoms
// positively, the well-founded false atoms negatively, and leaves the rest
// undefined.
func (p *Program) WellFounded() *interp.Interp {
	n := p.Tab.Len()
	truth := interp.NewBitset(n) // grows: surely true
	poss := p.omega(truth)       // shrinks: possibly true
	for {
		nextTrue := p.omega(poss)
		nextPoss := p.omega(nextTrue)
		if nextTrue.Equal(truth) && nextPoss.Equal(poss) {
			break
		}
		truth, poss = nextTrue, nextPoss
	}
	out := interp.New(p.Tab)
	for i := 0; i < n; i++ {
		switch {
		case truth.Get(i):
			out.AddLit(interp.MkLit(interp.AtomID(i), false))
		case !poss.Get(i):
			out.AddLit(interp.MkLit(interp.AtomID(i), true))
		}
	}
	return out
}

// occIndex returns, for each atom, the rules whose positive body mentions
// it (one entry per occurrence).
func (p *Program) occIndex() map[interp.AtomID][]int32 {
	occ := make(map[interp.AtomID][]int32)
	for i := range p.Rules {
		for _, a := range p.Rules[i].Pos {
			occ[a] = append(occ[a], int32(i))
		}
	}
	return occ
}

// reductLFP computes the least model of the Gelfond–Lifschitz reduct P^M
// for a total candidate M given as its true-atom set.
func (p *Program) reductLFP(m *interp.Bitset) *interp.Bitset {
	return p.omega(m)
}

// IsStableTotal checks the Gelfond–Lifschitz condition: M (a total
// two-valued interpretation given by its true set) is stable iff the least
// model of the reduct P^M equals M.
func (p *Program) IsStableTotal(m *interp.Bitset) bool {
	return p.reductLFP(m).Equal(m)
}
