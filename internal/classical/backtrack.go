package classical

import (
	"repro/internal/interp"
)

// StableModelsBacktracking enumerates total stable models with the
// backtracking-fixpoint strategy of [SZ] (Saccà & Zaniolo, "Stable models
// and non-determinism for logic programs with negation"): starting from
// the deterministic consequences, repeatedly pick an unresolved negative
// "assumption" (an atom whose rules are all waiting on negated atoms),
// assume it false, propagate, and backtrack over the choice. The leaves
// are verified with the Gelfond–Lifschitz condition, so the enumeration is
// exact; the strategy differs from StableModelsTotal (which branches over
// all well-founded-undefined atoms) by propagating after every choice.
func (p *Program) StableModelsBacktracking(opts StableOptions) ([]*interp.Bitset, error) {
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 1 << 22
	}
	n := p.Tab.Len()
	var found []*interp.Bitset
	nodes := 0

	// Three-valued state: True/False assignments; Undef means open.
	type state struct {
		truth    *interp.Bitset
		falseSet *interp.Bitset
	}
	clone := func(s state) state {
		return state{truth: s.truth.Clone(), falseSet: s.falseSet.Clone()}
	}

	// propagate closes the state under two monotone inferences:
	//  - a rule with true positive body and false negated atoms fires;
	//  - an atom all of whose rules are dead (some positive body atom
	//    false, or some negated atom true) is false.
	// It reports consistency.
	propagate := func(s state) bool {
		for changed := true; changed; {
			changed = false
			for i := range p.Rules {
				r := &p.Rules[i]
				if s.truth.Get(int(r.Head)) {
					continue
				}
				fires := true
				for _, a := range r.Pos {
					if !s.truth.Get(int(a)) {
						fires = false
						break
					}
				}
				if fires {
					for _, a := range r.Neg {
						if !s.falseSet.Get(int(a)) {
							fires = false
							break
						}
					}
				}
				if fires {
					if s.falseSet.Get(int(r.Head)) {
						return false
					}
					s.truth.Set(int(r.Head))
					changed = true
				}
			}
			for a := 0; a < n; a++ {
				if s.truth.Get(a) || s.falseSet.Get(a) {
					continue
				}
				dead := true
				for _, ri := range p.headRules[interp.AtomID(a)] {
					r := &p.Rules[ri]
					ruleDead := false
					for _, b := range r.Pos {
						if s.falseSet.Get(int(b)) {
							ruleDead = true
							break
						}
					}
					if !ruleDead {
						for _, b := range r.Neg {
							if s.truth.Get(int(b)) {
								ruleDead = true
								break
							}
						}
					}
					if !ruleDead {
						dead = false
						break
					}
				}
				if dead {
					s.falseSet.Set(a)
					changed = true
				}
			}
		}
		return true
	}

	var rec func(s state) error
	rec = func(s state) error {
		nodes++
		if nodes > opts.MaxNodes {
			return ErrBudget
		}
		if opts.MaxModels > 0 && len(found) >= opts.MaxModels {
			return nil
		}
		if !propagate(s) {
			return nil
		}
		// Pick an open atom; prefer one occurring under negation in a rule
		// whose positive part is already true (the [SZ] "assumption").
		choice := -1
		for i := range p.Rules {
			r := &p.Rules[i]
			ok := true
			for _, a := range r.Pos {
				if !s.truth.Get(int(a)) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, a := range r.Neg {
				if !s.truth.Get(int(a)) && !s.falseSet.Get(int(a)) {
					choice = int(a)
					break
				}
			}
			if choice >= 0 {
				break
			}
		}
		if choice < 0 {
			for a := 0; a < n; a++ {
				if !s.truth.Get(a) && !s.falseSet.Get(a) {
					choice = a
					break
				}
			}
		}
		if choice < 0 {
			// Total: verify stability.
			if p.IsStableTotal(s.truth) {
				found = append(found, s.truth.Clone())
			}
			return nil
		}
		// Assume false first (the closed-world-leaning branch), then true.
		left := clone(s)
		left.falseSet.Set(choice)
		if err := rec(left); err != nil {
			return err
		}
		right := clone(s)
		right.truth.Set(choice)
		return rec(right)
	}

	start := state{truth: interp.NewBitset(n), falseSet: interp.NewBitset(n)}
	if err := rec(start); err != nil {
		return nil, err
	}
	// Distinct branches can converge to the same model; deduplicate.
	var out []*interp.Bitset
	for _, m := range found {
		dup := false
		for _, o := range out {
			if o.Equal(m) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, m)
		}
	}
	return out, nil
}
