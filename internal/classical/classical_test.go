package classical_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/classical"
	"repro/internal/interp"
	"repro/internal/workload"
)

func mustGround(t *testing.T, rules []*ast.Rule, full bool) *classical.Program {
	t.Helper()
	p, err := classical.GroundRules(rules, classical.Options{Full: full})
	if err != nil {
		t.Fatalf("ground: %v", err)
	}
	return p
}

func TestStratifyAncestor(t *testing.T) {
	rules := workload.AncestorChain(5)
	strat, err := classical.Stratify(rules)
	if err != nil {
		t.Fatalf("stratify: %v", err)
	}
	if strat.NumLevels != 1 {
		t.Errorf("ancestor should be a single stratum, got %d", strat.NumLevels)
	}
	p := mustGround(t, rules, false)
	m := p.StratifiedModel(strat)
	atoms := p.TrueAtoms(m)
	// 4 parent facts + C(5,2)=10 ancestor pairs.
	if len(atoms) != 14 {
		t.Errorf("got %d true atoms, want 14: %v", len(atoms), atoms)
	}
	for _, want := range []string{"anc(c0, c4)", "anc(c3, c4)", "parent(c0, c1)"} {
		found := false
		for _, a := range atoms {
			if a == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %s in stratified model", want)
		}
	}
}

func TestStratifyDetectsNegativeCycle(t *testing.T) {
	rules := workload.WinMove(workload.CycleEdges(3))
	if _, err := classical.Stratify(rules); err == nil {
		t.Fatal("win-move on a cycle should not be stratified")
	}
	// A chain is not stratified either: win depends negatively on itself
	// at the predicate level regardless of the data.
	rules = workload.WinMove(workload.ChainEdges(3))
	if _, err := classical.Stratify(rules); err == nil {
		t.Fatal("win/move is predicate-level unstratified")
	}
}

func TestStratifiedWithNegation(t *testing.T) {
	// reachable / unreachable: classic two-stratum program.
	x, y, z := ast.Var{Name: "X"}, ast.Var{Name: "Y"}, ast.Var{Name: "Z"}
	node := func(v ast.Term) ast.Atom { return ast.Atom{Pred: "node", Args: []ast.Term{v}} }
	edge := func(a, b ast.Term) ast.Atom { return ast.Atom{Pred: "edge", Args: []ast.Term{a, b}} }
	reach := func(v ast.Term) ast.Atom { return ast.Atom{Pred: "reach", Args: []ast.Term{v}} }
	unreach := func(v ast.Term) ast.Atom { return ast.Atom{Pred: "unreach", Args: []ast.Term{v}} }
	rules := []*ast.Rule{
		{Head: ast.Pos(reach(ast.Sym("a")))},
		{Head: ast.Pos(reach(y)), Body: []ast.Literal{ast.Pos(reach(x)), ast.Pos(edge(x, y))}},
		{Head: ast.Pos(unreach(z)), Body: []ast.Literal{ast.Pos(node(z)), ast.Neg(reach(z))}},
		{Head: ast.Pos(node(ast.Sym("a")))},
		{Head: ast.Pos(node(ast.Sym("b")))},
		{Head: ast.Pos(node(ast.Sym("c")))},
		{Head: ast.Pos(edge(ast.Sym("a"), ast.Sym("b")))},
	}
	strat, err := classical.Stratify(rules)
	if err != nil {
		t.Fatalf("stratify: %v", err)
	}
	if strat.NumLevels != 2 {
		t.Errorf("want 2 strata, got %d", strat.NumLevels)
	}
	p := mustGround(t, rules, false)
	m := p.StratifiedModel(strat)
	atoms := strings.Join(p.TrueAtoms(m), " ")
	if !strings.Contains(atoms, "unreach(c)") || strings.Contains(atoms, "unreach(a)") ||
		strings.Contains(atoms, "unreach(b)") {
		t.Errorf("unexpected stratified model: %s", atoms)
	}
}

func TestWellFoundedWinMoveChain(t *testing.T) {
	// Chain c0 -> c1 -> c2: c2 has no move (lost), c1 wins, c0 loses.
	p := mustGround(t, workload.WinMove(workload.ChainEdges(3)), false)
	wf := p.WellFounded()
	val := func(pred string, arg string) interp.Value {
		id, ok := p.Tab.Lookup(ast.Atom{Pred: pred, Args: []ast.Term{ast.Sym(arg)}})
		if !ok {
			t.Fatalf("atom %s(%s) not interned", pred, arg)
		}
		return wf.Value(id)
	}
	if got := val("win", "c1"); got != interp.True {
		t.Errorf("win(c1) = %v, want T", got)
	}
	if got := val("win", "c0"); got != interp.False {
		t.Errorf("win(c0) = %v, want F", got)
	}
	// win(c2) has no instance with true body; under relevance grounding it
	// may not even be interned — use full grounding to check it is false.
	pf := mustGround(t, workload.WinMove(workload.ChainEdges(3)), true)
	wff := pf.WellFounded()
	id, ok := pf.Tab.Lookup(ast.Atom{Pred: "win", Args: []ast.Term{ast.Sym("c2")}})
	if !ok {
		t.Fatal("win(c2) not interned under full grounding")
	}
	if got := wff.Value(id); got != interp.False {
		t.Errorf("win(c2) = %v, want F", got)
	}
}

func TestWellFoundedWinMoveCycle(t *testing.T) {
	// A 3-cycle leaves every position undefined in the well-founded model.
	p := mustGround(t, workload.WinMove(workload.CycleEdges(3)), false)
	wf := p.WellFounded()
	for i := 0; i < 3; i++ {
		a := ast.Atom{Pred: "win", Args: []ast.Term{ast.Sym("c" + string(rune('0'+i)))}}
		id, ok := p.Tab.Lookup(a)
		if !ok {
			t.Fatalf("%s not interned", a)
		}
		if got := wf.Value(id); got != interp.Undef {
			t.Errorf("win(c%d) = %v, want U", i, got)
		}
	}
}

func TestStableTotalEvenCycle(t *testing.T) {
	// win over a 2-cycle: two total stable models (exactly one side wins).
	p := mustGround(t, workload.WinMove(workload.CycleEdges(2)), false)
	ms, err := p.StableModelsTotal(classical.StableOptions{})
	if err != nil {
		t.Fatalf("stable: %v", err)
	}
	var got []string
	for _, m := range ms {
		got = append(got, strings.Join(p.TrueAtoms(m), ","))
	}
	sort.Strings(got)
	if len(got) != 2 {
		t.Fatalf("want 2 stable models, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], "win(c0)") || !strings.Contains(got[1], "win(c1)") {
		t.Errorf("unexpected stable models: %v", got)
	}
}

func TestStableTotalOddCycleHasNone(t *testing.T) {
	p := mustGround(t, workload.WinMove(workload.CycleEdges(3)), false)
	ms, err := p.StableModelsTotal(classical.StableOptions{})
	if err != nil {
		t.Fatalf("stable: %v", err)
	}
	if len(ms) != 0 {
		t.Fatalf("odd win-move cycle should have no total stable model, got %d", len(ms))
	}
}

// TestWFSubsumesStratified: on stratified programs the well-founded model
// is total and equals the perfect model.
func TestWFSubsumesStratified(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rules := workload.RandomPropositional(rng, workload.RandomConfig{
			Atoms: 5, Rules: 7, MaxBody: 2, NegBody: true,
		})
		strat, err := classical.Stratify(rules)
		if err != nil {
			continue // not stratified: skip
		}
		p := mustGround(t, rules, true)
		perfect := p.StratifiedModel(strat)
		wf := p.WellFounded()
		for i := 0; i < p.Tab.Len(); i++ {
			want := interp.False
			if perfect.Get(i) {
				want = interp.True
			}
			if got := wf.Value(interp.AtomID(i)); got != want {
				t.Fatalf("seed %d: atom %s: wf=%v stratified=%v\nprogram: %v",
					seed, p.Tab.Atom(interp.AtomID(i)), got, want, rules)
			}
		}
	}
}

// TestWFIntersectionOfStable: on programs with at least one total stable
// model, the well-founded true/false atoms agree with every total stable
// model ([P3]: the well-founded model is the intersection of the 3-valued
// stable models).
func TestWFIntersectionOfStable(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rules := workload.RandomPropositional(rng, workload.RandomConfig{
			Atoms: 5, Rules: 7, MaxBody: 2, NegBody: true,
		})
		p := mustGround(t, rules, true)
		wf := p.WellFounded()
		ms, err := p.StableModelsTotal(classical.StableOptions{})
		if err != nil {
			t.Fatalf("seed %d: stable: %v", seed, err)
		}
		for _, m := range ms {
			for i := 0; i < p.Tab.Len(); i++ {
				switch wf.Value(interp.AtomID(i)) {
				case interp.True:
					if !m.Get(i) {
						t.Fatalf("seed %d: wf-true atom %s false in stable model", seed, p.Tab.Atom(interp.AtomID(i)))
					}
				case interp.False:
					if m.Get(i) {
						t.Fatalf("seed %d: wf-false atom %s true in stable model", seed, p.Tab.Atom(interp.AtomID(i)))
					}
				}
			}
		}
	}
}

// TestGLStableAreFoundedTotal: total stable models are exactly the total
// founded (= maximal founded, total) 3-valued models.
func TestGLStableAreFoundedTotal(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rules := workload.RandomPropositional(rng, workload.RandomConfig{
			Atoms: 4, Rules: 6, MaxBody: 2, NegBody: true,
		})
		p := mustGround(t, rules, true)
		gl, err := p.StableModelsTotal(classical.StableOptions{})
		if err != nil {
			t.Fatalf("stable: %v", err)
		}
		founded, err := p.FoundedModels(0)
		if err != nil {
			t.Fatalf("founded: %v", err)
		}
		glSet := make(map[string]bool)
		for _, m := range gl {
			glSet[strings.Join(p.TrueAtoms(m), ",")] = true
		}
		totalFounded := make(map[string]bool)
		for _, m := range founded {
			if m.Total() {
				var pos []string
				for _, a := range m.PosAtoms() {
					pos = append(pos, p.Tab.Atom(a).String())
				}
				sort.Strings(pos)
				totalFounded[strings.Join(pos, ",")] = true
			}
		}
		if len(glSet) != len(totalFounded) {
			t.Fatalf("seed %d: GL %v != total founded %v\nprogram: %v", seed, glSet, totalFounded, rules)
		}
		for k := range glSet {
			if !totalFounded[k] {
				t.Fatalf("seed %d: GL model %q not founded-total", seed, k)
			}
		}
	}
}
