package classical

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/interp"
)

// Stratification assigns each predicate to a stratum such that positive
// dependencies stay within or below a stratum and negative dependencies go
// strictly below. A program admitting one is stratified [ABW].
type Stratification struct {
	// Level maps predicate keys to strata, 0-based.
	Level map[ast.PredKey]int
	// NumLevels is 1 + the maximum level.
	NumLevels int
}

// Stratify computes a stratification of the (non-ground) seminegative
// rules, or an error naming a negative cycle.
func Stratify(rules []*ast.Rule) (*Stratification, error) {
	type edge struct {
		to  ast.PredKey
		neg bool
	}
	adj := make(map[ast.PredKey][]edge)
	nodes := make(map[ast.PredKey]bool)
	for _, r := range rules {
		h := r.Head.Atom.Key()
		nodes[h] = true
		for _, l := range r.Body {
			b := l.Atom.Key()
			nodes[b] = true
			adj[h] = append(adj[h], edge{to: b, neg: l.Neg})
		}
	}
	// Iterative lifting: level(h) >= level(b) for positive deps,
	// level(h) >= level(b)+1 for negative deps. A program is stratified
	// iff the lifting stabilises within |preds| rounds.
	level := make(map[ast.PredKey]int, len(nodes))
	n := len(nodes)
	for round := 0; ; round++ {
		changed := false
		for h, es := range adj {
			for _, e := range es {
				want := level[e.to]
				if e.neg {
					want++
				}
				if level[h] < want {
					level[h] = want
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if round > n {
			// Some level exceeded the predicate count: a negative cycle.
			for h, l := range level {
				if l > n {
					return nil, fmt.Errorf("classical: program is not stratified (negation cycle through %s)", h)
				}
			}
			return nil, fmt.Errorf("classical: program is not stratified")
		}
	}
	max := 0
	for _, l := range level {
		if l > max {
			max = l
		}
	}
	return &Stratification{Level: level, NumLevels: max + 1}, nil
}

// StratifiedModel evaluates the ground program stratum by stratum and
// returns the perfect (total) model as the set of true atoms; every other
// atom is false. strat must stratify the program's source rules.
func (p *Program) StratifiedModel(strat *Stratification) *interp.Bitset {
	true_ := interp.NewBitset(p.Tab.Len())
	// Group ground rules by the stratum of their head predicate.
	byLevel := make([][]int32, strat.NumLevels)
	for i := range p.Rules {
		lvl := strat.Level[p.Tab.Atom(p.Rules[i].Head).Key()]
		byLevel[lvl] = append(byLevel[lvl], int32(i))
	}
	for _, ruleIdx := range byLevel {
		// Semi-naive within the stratum: counters on positive bodies; NAF
		// is frozen (lower strata are complete).
		unsat := make(map[int32]int32, len(ruleIdx))
		occ := make(map[interp.AtomID][]int32)
		var queue []interp.AtomID
		derive := func(a interp.AtomID) {
			if !true_.Get(int(a)) {
				true_.Set(int(a))
				queue = append(queue, a)
			}
		}
		for _, ri := range ruleIdx {
			r := &p.Rules[ri]
			blockedNAF := false
			for _, a := range r.Neg {
				if true_.Get(int(a)) {
					blockedNAF = true
					break
				}
			}
			if blockedNAF {
				unsat[ri] = -1
				continue
			}
			cnt := int32(0)
			for _, a := range r.Pos {
				if !true_.Get(int(a)) {
					cnt++
					occ[a] = append(occ[a], ri)
				}
			}
			unsat[ri] = cnt
			if cnt == 0 {
				derive(r.Head)
			}
		}
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			for _, ri := range occ[a] {
				if unsat[ri] < 0 {
					continue
				}
				unsat[ri]--
				if unsat[ri] == 0 {
					derive(p.Rules[ri].Head)
				}
			}
		}
	}
	return true_
}

// TrueAtoms converts a truth bitset to a sorted list of atom strings, for
// printing and tests.
func (p *Program) TrueAtoms(b *interp.Bitset) []string {
	var out []string
	b.Range(func(i int) bool {
		out = append(out, p.Tab.Atom(interp.AtomID(i)).String())
		return true
	})
	sort.Strings(out)
	return out
}
