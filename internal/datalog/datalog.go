// Package datalog implements a bottom-up, semi-naive Datalog evaluator over
// the storage package. Rules are Horn clauses extended with builtin
// comparison filters and (for the stratified baseline) negation-as-failure
// test literals. The grounder uses a purely positive fragment of it to
// compute its possible-atom over-approximation; the classical baselines use
// the full engine stratum by stratum.
package datalog

import (
	"errors"
	"fmt"

	"repro/internal/ast"
	"repro/internal/storage"
	"repro/internal/unify"
)

// Lit is a body or head literal over a predicate. Neg marks a
// negation-as-failure test: "fails to be in the store". Head literals must
// be positive.
type Lit struct {
	Key  ast.PredKey
	Args []ast.Term
	Neg  bool
}

// String renders the literal.
func (l Lit) String() string {
	a := ast.Atom{Pred: l.Key.Name, Args: l.Args}
	if l.Neg {
		return "not " + a.String()
	}
	return a.String()
}

// Atom returns the literal's atom.
func (l Lit) Atom() ast.Atom { return ast.Atom{Pred: l.Key.Name, Args: l.Args} }

// Rule is head <- body, builtins. The head is implicitly positive.
type Rule struct {
	Head     Lit
	Body     []Lit
	Builtins []ast.Builtin
}

// String renders the rule.
func (r *Rule) String() string {
	s := r.Head.String()
	if len(r.Body) > 0 || len(r.Builtins) > 0 {
		s += " :- "
		for i, l := range r.Body {
			if i > 0 {
				s += ", "
			}
			s += l.String()
		}
		for i, b := range r.Builtins {
			if i > 0 || len(r.Body) > 0 {
				s += ", "
			}
			s += b.String()
		}
	}
	return s + "."
}

// CheckSafety verifies that every variable of the head, of each NAF
// literal and of each builtin occurs in a positive body literal.
func (r *Rule) CheckSafety() error {
	bound := make(map[string]bool)
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		for _, v := range (ast.Atom{Pred: l.Key.Name, Args: l.Args}).Vars(nil) {
			bound[v.Name] = true
		}
	}
	requireBound := func(vs []ast.Var, what string) error {
		for _, v := range vs {
			if !bound[v.Name] {
				return fmt.Errorf("unsafe rule %s: variable %s in %s not bound by a positive body literal", r, v.Name, what)
			}
		}
		return nil
	}
	if err := requireBound(r.Head.Atom().Vars(nil), "head"); err != nil {
		return err
	}
	for _, l := range r.Body {
		if !l.Neg {
			continue
		}
		if err := requireBound(l.Atom().Vars(nil), "negative literal"); err != nil {
			return err
		}
	}
	for _, b := range r.Builtins {
		if err := requireBound(b.Vars(nil), "builtin"); err != nil {
			return err
		}
	}
	return nil
}

// ErrBudget is returned when evaluation derives more tuples than allowed.
var ErrBudget = errors.New("datalog: derivation budget exceeded")

// Options configures evaluation.
type Options struct {
	// MaxDerived caps the total number of tuples the evaluation may insert;
	// 0 means no cap.
	MaxDerived int
	// AtomFilter, when non-nil, rejects derived atoms (they are silently
	// not inserted). Callers use it to keep function-symbol programs
	// inside a depth-bounded Herbrand universe, without which a rule like
	// num(s(X)) :- num(X) would diverge.
	AtomFilter func(ast.Atom) bool
	// NoPlanner disables the selectivity-driven join planner and joins
	// body literals in source order (delta literal still first). Used by
	// differential tests to check the planner only changes cost, never the
	// least model.
	NoPlanner bool
}

// Eval runs the rules to fixpoint over st (which already holds the EDB),
// inserting derived tuples in place. It returns the number of new tuples.
//
// Negative (NAF) literals are tested against the store as it stands when
// the enclosing substitution is complete; this is only sound when the
// negated predicates are never derived by the rules being evaluated
// (stratification), which callers must guarantee.
func Eval(st *storage.Store, rules []*Rule, opts Options) (int, error) {
	for _, r := range rules {
		if err := r.CheckSafety(); err != nil {
			return 0, err
		}
	}
	derived := 0
	// watermarks[k] is the tuple count of relation k at the start of the
	// previous round; tuples at index >= watermark are that round's delta.
	marks := make(map[ast.PredKey]int)
	round := 0
	for {
		// Snapshot current sizes: tuples inserted this round extend deltas
		// for the next one.
		startSizes := make(map[ast.PredKey]int)
		for _, k := range st.Keys() {
			startSizes[k] = st.Peek(k).Len()
		}
		newThisRound := 0
		emit := func(a ast.Atom) error {
			if !a.Ground() {
				return fmt.Errorf("datalog: derived non-ground atom %s", a)
			}
			if opts.AtomFilter != nil && !opts.AtomFilter(a) {
				return nil
			}
			if st.InsertAtom(a) {
				newThisRound++
				derived++
				if opts.MaxDerived > 0 && derived > opts.MaxDerived {
					return ErrBudget
				}
			}
			return nil
		}
		for _, r := range rules {
			if round == 0 {
				if err := evalRule(st, r, -1, marks, opts, emit); err != nil {
					return derived, err
				}
				continue
			}
			// Semi-naive: require at least one positive literal to bind in
			// the previous round's delta.
			hasPos := false
			for i, l := range r.Body {
				if l.Neg {
					continue
				}
				hasPos = true
				if err := evalRule(st, r, i, marks, opts, emit); err != nil {
					return derived, err
				}
			}
			if !hasPos {
				continue // facts fire only in round 0
			}
		}
		// Advance watermarks to the sizes seen at the start of this round:
		// everything inserted during this round is the next round's delta.
		for k, n := range startSizes {
			marks[k] = n
		}
		round++
		if newThisRound == 0 {
			return derived, nil
		}
	}
}

// evalRule joins the rule body via the shared storage.Join planner and
// emits head instances. If deltaPos >= 0, the positive body literal at that
// index scans only the previous round's delta of its relation and is forced
// to the front of the join order.
func evalRule(st *storage.Store, r *Rule, deltaPos int, marks map[ast.PredKey]int, opts Options, emit func(ast.Atom) error) error {
	s := unify.NewSubst()
	lits := make([]storage.JoinLit, 0, len(r.Body))
	first := -1
	for i, l := range r.Body {
		if l.Neg {
			continue
		}
		jl := storage.JoinLit{Rel: st.Peek(l.Key), Args: l.Args}
		if i == deltaPos {
			jl.Lo = marks[l.Key]
			first = len(lits)
		}
		lits = append(lits, jl)
	}
	return storage.Join(s, lits, first, !opts.NoPlanner, func() error {
		// All positive literals bound: test builtins and NAF literals.
		for _, b := range r.Builtins {
			gb := ast.Builtin{Op: b.Op, L: substExpr(s, b.L), R: substExpr(s, b.R)}
			holds, ok := ast.EvalBuiltin(gb)
			if !ok || !holds {
				return nil
			}
		}
		for _, l := range r.Body {
			if !l.Neg {
				continue
			}
			if st.ContainsAtom(s.ApplyAtom(l.Atom())) {
				return nil
			}
		}
		return emit(s.ApplyAtom(r.Head.Atom()))
	})
}

func substExpr(s *unify.Subst, e ast.Expr) ast.Expr {
	return ast.SubstituteExpr(e, func(v ast.Var) ast.Term {
		t := s.Apply(v)
		if tv, ok := t.(ast.Var); ok && tv.Name == v.Name {
			return nil
		}
		return t
	})
}
