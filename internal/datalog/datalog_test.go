package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/storage"
)

var (
	vx = ast.Var{Name: "X"}
	vy = ast.Var{Name: "Y"}
	vz = ast.Var{Name: "Z"}
)

func lit(pred string, args ...ast.Term) Lit {
	return Lit{Key: ast.PredKey{Name: pred, Arity: len(args)}, Args: args}
}

func nlit(pred string, args ...ast.Term) Lit {
	l := lit(pred, args...)
	l.Neg = true
	return l
}

func edge(st *storage.Store, a, b int) {
	st.InsertAtom(ast.Atom{Pred: "e", Args: []ast.Term{ast.Int(int64(a)), ast.Int(int64(b))}})
}

func tcRules() []*Rule {
	return []*Rule{
		{Head: lit("tc", vx, vy), Body: []Lit{lit("e", vx, vy)}},
		{Head: lit("tc", vx, vy), Body: []Lit{lit("e", vx, vz), lit("tc", vz, vy)}},
	}
}

func TestTransitiveClosureChain(t *testing.T) {
	st := storage.NewStore()
	n := 10
	for i := 0; i+1 < n; i++ {
		edge(st, i, i+1)
	}
	derived, err := Eval(st, tcRules(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := n * (n - 1) / 2
	if derived != want {
		t.Errorf("derived %d tc tuples, want %d", derived, want)
	}
	if !st.ContainsAtom(ast.Atom{Pred: "tc", Args: []ast.Term{ast.Int(0), ast.Int(9)}}) {
		t.Error("tc(0,9) missing")
	}
	if st.ContainsAtom(ast.Atom{Pred: "tc", Args: []ast.Term{ast.Int(5), ast.Int(5)}}) {
		t.Error("tc(5,5) derived on a chain")
	}
}

func TestTransitiveClosureCycle(t *testing.T) {
	st := storage.NewStore()
	for i := 0; i < 5; i++ {
		edge(st, i, (i+1)%5)
	}
	if _, err := Eval(st, tcRules(), Options{}); err != nil {
		t.Fatal(err)
	}
	// On a cycle every pair (including self-loops) is reachable.
	if got := st.Peek(ast.PredKey{Name: "tc", Arity: 2}).Len(); got != 25 {
		t.Errorf("tc on 5-cycle has %d tuples, want 25", got)
	}
}

// TestSemiNaiveMatchesNaive compares against a reference naive evaluator
// on random graphs.
func TestSemiNaiveMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nn := 4 + rng.Intn(5)
		st := storage.NewStore()
		expect := naiveTC(rng, st, nn)
		if _, err := Eval(st, tcRules(), Options{}); err != nil {
			t.Fatal(err)
		}
		rel := st.Peek(ast.PredKey{Name: "tc", Arity: 2})
		got := 0
		if rel != nil {
			got = rel.Len()
		}
		if got != expect {
			t.Errorf("seed %d: semi-naive %d tuples, naive %d", seed, got, expect)
		}
	}
}

// naiveTC inserts random edges into st and returns the size of the
// transitive closure computed by Floyd–Warshall.
func naiveTC(rng *rand.Rand, st *storage.Store, n int) int {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for k := 0; k < n*2; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if !adj[a][b] {
			adj[a][b] = true
			edge(st, a, b)
		}
	}
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = append([]bool(nil), adj[i]...)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[i][k] && reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	cnt := 0
	for i := range reach {
		for j := range reach[i] {
			if reach[i][j] {
				cnt++
			}
		}
	}
	return cnt
}

func TestBuiltinFilter(t *testing.T) {
	st := storage.NewStore()
	for i := 0; i < 5; i++ {
		st.InsertAtom(ast.Atom{Pred: "n", Args: []ast.Term{ast.Int(int64(i))}})
	}
	rules := []*Rule{{
		Head:     lit("big", vx),
		Body:     []Lit{lit("n", vx)},
		Builtins: []ast.Builtin{{Op: ast.GT, L: ast.TermExpr{Term: vx}, R: ast.TermExpr{Term: ast.Int(2)}}},
	}}
	if _, err := Eval(st, rules, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := st.Peek(ast.PredKey{Name: "big", Arity: 1}).Len(); got != 2 {
		t.Errorf("big has %d tuples, want 2 (3 and 4)", got)
	}
}

func TestNAFFilterStratifiedUse(t *testing.T) {
	st := storage.NewStore()
	st.InsertAtom(ast.Atom{Pred: "node", Args: []ast.Term{ast.Sym("a")}})
	st.InsertAtom(ast.Atom{Pred: "node", Args: []ast.Term{ast.Sym("b")}})
	st.InsertAtom(ast.Atom{Pred: "mark", Args: []ast.Term{ast.Sym("a")}})
	rules := []*Rule{{
		Head: lit("unmarked", vx),
		Body: []Lit{lit("node", vx), nlit("mark", vx)},
	}}
	if _, err := Eval(st, rules, Options{}); err != nil {
		t.Fatal(err)
	}
	if !st.ContainsAtom(ast.Atom{Pred: "unmarked", Args: []ast.Term{ast.Sym("b")}}) {
		t.Error("unmarked(b) missing")
	}
	if st.ContainsAtom(ast.Atom{Pred: "unmarked", Args: []ast.Term{ast.Sym("a")}}) {
		t.Error("unmarked(a) derived")
	}
}

func TestSafetyErrors(t *testing.T) {
	cases := []*Rule{
		{Head: lit("p", vx)},                         // head var unbound
		{Head: lit("p"), Body: []Lit{nlit("q", vx)}}, // NAF var unbound
		{Head: lit("p"), Builtins: []ast.Builtin{{Op: ast.GT, L: ast.TermExpr{Term: vx}, R: ast.TermExpr{Term: ast.Int(0)}}}}, // builtin var unbound
	}
	for _, r := range cases {
		if err := r.CheckSafety(); err == nil {
			t.Errorf("rule %s passed safety", r)
		}
		if _, err := Eval(storage.NewStore(), []*Rule{r}, Options{}); err == nil {
			t.Errorf("Eval accepted unsafe rule %s", r)
		}
	}
	safe := &Rule{Head: lit("p", vx), Body: []Lit{lit("q", vx), nlit("r", vx)}}
	if err := safe.CheckSafety(); err != nil {
		t.Errorf("safe rule rejected: %v", err)
	}
}

func TestBudget(t *testing.T) {
	st := storage.NewStore()
	for i := 0; i < 20; i++ {
		edge(st, i, i+1)
	}
	_, err := Eval(st, tcRules(), Options{MaxDerived: 10})
	if err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestRuleString(t *testing.T) {
	r := &Rule{
		Head:     lit("p", vx),
		Body:     []Lit{lit("q", vx), nlit("r", vx)},
		Builtins: []ast.Builtin{{Op: ast.LT, L: ast.TermExpr{Term: vx}, R: ast.TermExpr{Term: ast.Int(9)}}},
	}
	if got := r.String(); got != "p(X) :- q(X), not r(X), X < 9." {
		t.Errorf("String = %q", got)
	}
}

func TestFactsDeriveOnce(t *testing.T) {
	st := storage.NewStore()
	rules := []*Rule{{Head: lit("p", ast.TermExpr{Term: ast.Sym("a")}.Term)}}
	n, err := Eval(st, rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("derived %d, want 1", n)
	}
}

func TestLargeChainDepth(t *testing.T) {
	// Exercise many semi-naive rounds.
	st := storage.NewStore()
	n := 200
	for i := 0; i+1 < n; i++ {
		edge(st, i, i+1)
	}
	rules := []*Rule{
		{Head: lit("r", ast.Int(0))},
		{Head: lit("r", vy), Body: []Lit{lit("r", vx), lit("e", vx, vy)}},
	}
	if _, err := Eval(st, rules, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := st.Peek(ast.PredKey{Name: "r", Arity: 1}).Len(); got != n {
		t.Errorf("reached %d nodes, want %d", got, n)
	}
}

var _ = fmt.Sprintf // reserved for debugging helpers
