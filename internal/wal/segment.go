package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment identifies one on-disk log segment.
type Segment struct {
	Path  string
	Name  string
	First uint64 // sequence number of the segment's first record
}

// SegmentPath returns the file path of the segment whose first record is
// at sequence first.
func SegmentPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%020d.log", first))
}

// parseSegmentName extracts the first-record sequence from a rotated
// segment file name (wal-<20 digits>.log). The legacy wal.log does not
// match — ListSegments special-cases it as the seq-1 segment.
func parseSegmentName(name string) (first uint64, ok bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(mid) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// ListSegments returns dir's log segments sorted by first sequence
// number. The legacy single-file wal.log, when present, is the segment
// holding records from seq 1 — a layout upgraded in place keeps it as
// the chain's head segment until retention prunes it. A missing
// directory, or one with no log files, is an empty (zero-segment) chain.
func ListSegments(dir string) ([]Segment, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if name == LogName {
			out = append(out, Segment{Path: filepath.Join(dir, name), Name: name, First: 1})
			continue
		}
		if first, ok := parseSegmentName(name); ok {
			out = append(out, Segment{Path: filepath.Join(dir, name), Name: name, First: first})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].First < out[j].First })
	for i := 1; i < len(out); i++ {
		if out[i].First == out[i-1].First {
			return nil, fmt.Errorf("%w: segments %s and %s both claim first seq %d", ErrCorrupt, out[i-1].Name, out[i].Name, out[i].First)
		}
	}
	return out, nil
}

// DirResult is the outcome of decoding a directory's full segment chain.
type DirResult struct {
	Records []Record

	// First is the sequence number of the first retained record: 1 unless
	// retention pruned a prefix of segments. When Records is non-empty,
	// Records[0].Seq == First.
	First uint64

	// Torn reports a torn tail in the final segment; TornPath and
	// TornGood are the file to truncate and the offset to truncate it to.
	Torn     bool
	TornPath string
	TornGood int64

	// Segments is the number of segment files in the chain.
	Segments int
}

// ReadAll decodes dir's whole segment chain from the genesis seed. Only
// the final segment may carry a torn tail — rotation fsyncs a segment
// before its successor exists — so in tolerant mode damage in any
// earlier segment is still hard corruption. Sequence numbers must be
// contiguous across segment boundaries (a missing middle segment is a
// gap, not a tail). A pruned prefix (First > 1) adopts the first
// surviving record's Prev as the chain anchor; callers authenticate that
// anchor against a checkpoint (VerifyDir and core recovery both do).
func ReadAll(dir, genesis string, strict bool) (*DirResult, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	out := &DirResult{First: 1, Segments: len(segs)}
	if len(segs) == 0 {
		return out, nil
	}
	out.First = segs[0].First
	prev := ""
	if segs[0].First == 1 {
		prev = genesis
	}
	next := segs[0].First
	for i, seg := range segs {
		if seg.First != next {
			return nil, fmt.Errorf("%w: segment gap: %s starts at seq %d, want %d", ErrCorrupt, seg.Name, seg.First, next)
		}
		b, err := os.ReadFile(seg.Path)
		if err != nil {
			return nil, err
		}
		final := i == len(segs)-1
		res, err := decodeFrom(b, seg.First, prev, strict || !final)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", seg.Name, err)
		}
		if res.Torn {
			out.Torn, out.TornPath, out.TornGood = true, seg.Path, res.Good
		}
		if len(res.Records) == 0 {
			// An empty segment is only legitimate at the end of the chain:
			// a crash between rotating and the first append leaves one.
			if !final {
				return nil, fmt.Errorf("%w: empty non-final segment %s", ErrCorrupt, seg.Name)
			}
			continue
		}
		prev = res.Records[len(res.Records)-1].Hash
		out.Records = append(out.Records, res.Records...)
		next = seg.First + uint64(len(res.Records))
	}
	return out, nil
}

// PruneCheckpoints deletes all but the newest keep checkpoint files.
// keep <= 0 keeps everything (the legacy unbounded layout). It returns
// the number deleted and the Seq of the oldest retained checkpoint — the
// cover point PruneSegments needs. On error the returned oldestSeq is 0,
// which prunes nothing, so a failed checkpoint pass can never strand a
// segment chain without its anchor.
func PruneCheckpoints(dir string, keep int) (removed int, oldestSeq uint64, err error) {
	cps, err := Checkpoints(dir)
	if err != nil {
		return 0, 0, err
	}
	if len(cps) == 0 {
		return 0, 0, nil
	}
	if keep <= 0 || len(cps) <= keep {
		return 0, cps[0].Seq, nil
	}
	cut := len(cps) - keep
	for _, cp := range cps[:cut] {
		if err := RemoveCheckpoint(dir, cp.Version); err != nil {
			return removed, 0, err
		}
		removed++
		mCPsPruned.Inc()
	}
	if err := syncDir(dir); err != nil {
		return removed, 0, err
	}
	return removed, cps[cut].Seq, nil
}

// PruneSegments deletes every segment whose records are all covered by a
// checkpoint at sequence cpSeq — i.e. whose last record's seq (the next
// segment's First - 1, derived from file names alone) is <= cpSeq. The
// final segment is never deleted: it is the writer's open append target
// and the only segment allowed a torn tail. Callers prune checkpoints
// first and pass the oldest retained checkpoint's Seq, which preserves
// the invariant that every retained checkpoint anchors the retained
// chain (its Seq >= new First - 1).
func PruneSegments(dir string, cpSeq uint64) (removed int, err error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return 0, err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].First-1 > cpSeq {
			break
		}
		if err := os.Remove(segs[i].Path); err != nil {
			return removed, err
		}
		removed++
		mSegsPruned.Inc()
	}
	if removed > 0 {
		if err := syncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
