// Package wal is the engine's durability layer: an append-only,
// length-prefixed, CRC-guarded write-ahead log of update/retract batches
// whose records form a SHA-256 hash chain (genesis-seeded per tenant),
// plus snapshot checkpoints so recovery never replays the full history.
//
// On-disk layout of one durability directory (one engine/tenant each):
//
//	wal.log                   head segment (records from seq 1), append-only
//	wal-<first-seq>.log       later segments, rotated off by size/count
//	checkpoint-<version>.json serialized effective program + chain head
//
// The log is a chain of segments: the legacy single-file wal.log is the
// segment holding records from seq 1, and every rotation finalises the
// active segment (fsync) before opening wal-<next-seq>.log, so only the
// final segment can ever carry a torn tail. The hash chain runs across
// segment boundaries unchanged — the first record of each segment carries
// the Prev of its predecessor's last record — and retention may delete
// whole prefix segments once a checkpoint covers them, in which case the
// surviving chain is anchored at that checkpoint's recorded head.
//
// Record framing is [4-byte big-endian payload length][4-byte IEEE CRC32
// of the payload][JSON payload]. Each record carries the hash of its
// predecessor (Prev) and its own hash over Prev plus every logical field
// (Hash), so any byte flip breaks either the CRC (payload damage) or the
// chain (record replaced wholesale), and truncating anywhere but the tail
// breaks the chain of the first surviving successor. The chain is seeded
// by Genesis(name) so two tenants' logs can never be swapped silently.
//
// A crash can only tear the final record (appends are single writes to an
// O_APPEND file): Decode in tolerant mode reports such a tail via Torn
// and drops it, while strict mode (used by `ordlog wal verify`) treats
// every CRC/chain failure — tail included — as corruption.
//
// Checkpoints are written atomically (temp file, fsync, rename) and carry
// the rendered effective program text at a version together with the
// record count (Seq) and chain head at that point, so recovery is: pick
// the newest checkpoint consistent with the surviving log, reparse its
// program, replay the record suffix, verify the chain end to end.
package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

const (
	// LogName is the record file inside a durability directory.
	LogName = "wal.log"

	// MaxRecordBytes bounds one record's payload; a longer length prefix
	// is treated as corruption, which keeps the decoder from allocating
	// attacker-controlled amounts on a damaged file.
	MaxRecordBytes = 16 << 20

	frameHeader = 8

	// FlushInterval is how often the SyncInterval background flusher
	// fsyncs a dirty log.
	FlushInterval = 100 * time.Millisecond
)

// SyncPolicy selects when appended records are fsynced. The zero value is
// SyncInterval: cheap appends, a background flusher bounding data loss to
// roughly FlushInterval. SyncAlways fsyncs inside every Append — no
// acknowledged record is ever lost, at the price of one fsync per update.
type SyncPolicy int

const (
	SyncInterval SyncPolicy = iota
	SyncAlways
)

// String renders the policy in the -sync flag vocabulary.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -sync flag vocabulary ("always", "interval").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always or interval)", s)
	}
}

// ErrCorrupt wraps every decode/verify failure that is not a recoverable
// torn tail: CRC mismatch before the tail, broken hash chain, impossible
// length prefix, checkpoint inconsistency.
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrClosed reports an append to a closed (or write-failed) log.
var ErrClosed = errors.New("wal: log closed")

// Record is one durable update/retract batch. Facts are the rendered
// ground literals exactly as the engine applied them; replaying them
// through Engine.Update/Retract reproduces the version transition.
type Record struct {
	Seq     uint64   `json:"seq"`     // 1-based position in the log
	Version uint64   `json:"version"` // snapshot version the batch produced
	Op      string   `json:"op"`      // "assert" | "retract"
	Comp    string   `json:"comp"`    // component name
	Facts   []string `json:"facts"`   // rendered ground literals
	Prev    string   `json:"prev"`    // hex hash of the predecessor (genesis for Seq 1)
	Hash    string   `json:"hash"`    // hex hash over Prev + all chained fields
}

// Genesis returns the per-tenant seed of the hash chain: the Prev of the
// first record and the chain head of an empty log.
func Genesis(name string) string {
	h := sha256.Sum256([]byte("ordlog-wal-genesis\x00" + name))
	return hex.EncodeToString(h[:])
}

// ChainHash computes the record's chain hash: SHA-256 over Prev and every
// logical field (Seq, Version, Op, Comp, Facts), NUL-separated so field
// boundaries cannot be shifted without changing the digest.
func (r *Record) ChainHash() string {
	h := sha256.New()
	io.WriteString(h, r.Prev)
	fmt.Fprintf(h, "\x00%d\x00%d\x00%s\x00%s\x00%d", r.Seq, r.Version, r.Op, r.Comp, len(r.Facts))
	for _, f := range r.Facts {
		io.WriteString(h, "\x00")
		io.WriteString(h, f)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// encodeFrame renders a record into its on-disk frame.
func encodeFrame(r *Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("wal: encode record %d: %w", r.Seq, err)
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("wal: record %d payload %d bytes exceeds limit %d", r.Seq, len(payload), MaxRecordBytes)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	return buf, nil
}

// DecodeResult is the outcome of decoding one log.
type DecodeResult struct {
	Records []Record
	// Good is the byte offset just past the last intact record: the
	// truncation point recovery applies when Torn is set.
	Good int64
	// Torn reports a trailing partial or damaged record — the shape a
	// crash mid-append leaves — dropped by a tolerant decode.
	Torn bool
}

// Decode parses a log image, verifying per-record CRCs and the full hash
// chain from the genesis seed. In strict mode every failure is an
// ErrCorrupt; in tolerant mode a failure confined to the final frame is
// reported as a torn tail instead (any damage with intact data after it
// cannot be a crash artifact and stays hard corruption either way).
func Decode(b []byte, genesis string, strict bool) (*DecodeResult, error) {
	return decodeFrom(b, 1, genesis, strict)
}

// decodeFrom parses one segment image whose first record is expected at
// sequence firstSeq. prev is the chain hash preceding that record —
// Genesis(name) when firstSeq is 1, the previous segment's tip hash
// otherwise. An empty prev means the predecessor segments were pruned by
// retention: the first record's own Prev is adopted as the chain anchor,
// and callers must authenticate it against a checkpoint.
func decodeFrom(b []byte, firstSeq uint64, prev string, strict bool) (*DecodeResult, error) {
	res := &DecodeResult{}
	head := prev
	var off int64
	n := int64(len(b))
	nextSeq := func() uint64 { return firstSeq + uint64(len(res.Records)) }
	torn := func(what string) (*DecodeResult, error) {
		if strict {
			return nil, fmt.Errorf("%w: record %d at offset %d: %s", ErrCorrupt, nextSeq(), off, what)
		}
		res.Torn = true
		return res, nil
	}
	for off < n {
		if n-off < frameHeader {
			return torn("truncated frame header")
		}
		plen := int64(binary.BigEndian.Uint32(b[off : off+4]))
		wantCRC := binary.BigEndian.Uint32(b[off+4 : off+8])
		if plen == 0 || plen > MaxRecordBytes {
			// An impossible length prefix: either a torn header tail or
			// mid-log garbage. It can only be a crash artifact when the
			// claimed frame runs past EOF.
			if off+frameHeader+plen > n || plen == 0 {
				return torn(fmt.Sprintf("impossible payload length %d", plen))
			}
			return nil, fmt.Errorf("%w: record %d at offset %d: impossible payload length %d", ErrCorrupt, nextSeq(), off, plen)
		}
		end := off + frameHeader + plen
		if end > n {
			return torn("truncated payload")
		}
		payload := b[off+frameHeader : end]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			if end == n {
				// Tail-only CRC damage is indistinguishable from a torn
				// write; tolerant mode truncates it, strict mode rejects.
				return torn("payload CRC mismatch")
			}
			return nil, fmt.Errorf("%w: record %d at offset %d: payload CRC mismatch", ErrCorrupt, nextSeq(), off)
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			// Valid CRC but unparseable payload is a writer bug or
			// deliberate tampering, never a crash artifact.
			return nil, fmt.Errorf("%w: record %d at offset %d: %v", ErrCorrupt, nextSeq(), off, err)
		}
		if r.Seq != nextSeq() {
			return nil, fmt.Errorf("%w: record at offset %d: seq %d, want %d", ErrCorrupt, off, r.Seq, nextSeq())
		}
		if head == "" {
			head = r.Prev
		}
		if r.Prev != head {
			return nil, fmt.Errorf("%w: record %d: chain broken (prev %.12s, want %.12s)", ErrCorrupt, r.Seq, r.Prev, head)
		}
		if got := r.ChainHash(); got != r.Hash {
			return nil, fmt.Errorf("%w: record %d: hash mismatch (stored %.12s, computed %.12s)", ErrCorrupt, r.Seq, r.Hash, got)
		}
		mChainVerifies.Inc()
		res.Records = append(res.Records, r)
		head = r.Hash
		off = end
		res.Good = off
	}
	return res, nil
}

// ReadLog decodes dir's log file from the genesis seed. A missing file is
// an empty log, not an error.
func ReadLog(dir, genesis string, strict bool) (*DecodeResult, error) {
	b, err := os.ReadFile(filepath.Join(dir, LogName))
	if errors.Is(err, os.ErrNotExist) {
		return &DecodeResult{}, nil
	}
	if err != nil {
		return nil, err
	}
	return Decode(b, genesis, strict)
}

// LogOptions configures the append side of one durability directory.
type LogOptions struct {
	// Policy is the fsync policy (see SyncPolicy).
	Policy SyncPolicy

	// RotateRecords, when > 0, finalises the active segment and opens a
	// fresh one once the active segment holds this many records. 0 never
	// rotates by count.
	RotateRecords int

	// RotateBytes, when > 0, rotates once the active segment's frames
	// reach this many bytes. The cap is checked before an append, so a
	// segment always holds at least one record and may overshoot by one
	// frame. 0 never rotates by size.
	RotateBytes int64
}

// Log is the append side of one durability directory. Appends are
// serialised by an internal mutex; the engine additionally serialises
// them under its write lock, but the background interval flusher needs
// its own synchronisation either way.
type Log struct {
	mu       sync.Mutex
	dir      string
	opts     LogOptions
	f        *os.File
	head     string
	seq      uint64
	segFirst uint64 // seq of the active segment's first record
	segBytes int64  // frame bytes in the active segment
	dirty    bool
	closed   bool
	flushErr error // first background-flush failure; fail-stops the log

	stop chan struct{}
	done chan struct{}
}

// OpenLog opens (creating if absent) dir's log for appending with no
// rotation caps — the single-file layout. head and seq are the chain
// state of the existing content — Genesis(name) and 0 for a fresh log,
// the tail of ReadAll's records after recovery.
func OpenLog(dir, head string, seq uint64, policy SyncPolicy) (*Log, error) {
	return OpenLogWith(dir, head, seq, LogOptions{Policy: policy})
}

// OpenLogWith opens dir's log for appending with explicit options.
// Appends continue the last on-disk segment; a fresh directory starts at
// the legacy single-file name wal.log (= the segment from seq 1), so a
// log that never rotates keeps the old layout byte for byte.
func OpenLogWith(dir, head string, seq uint64, opts LogOptions) (*Log, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, LogName)
	segFirst := uint64(1)
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		path, segFirst = last.Path, last.First
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	var size int64
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	l := &Log{dir: dir, opts: opts, f: f, head: head, seq: seq, segFirst: segFirst, segBytes: size}
	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flusher()
	}
	return l, nil
}

// flusher fsyncs a dirty log every FlushInterval until Close.
func (l *Log) flusher() {
	defer close(l.done)
	t := time.NewTicker(FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.flushTick()
		case <-l.stop:
			return
		}
	}
}

// flushTick is one background flush pass. A failed fsync is latched into
// flushErr and fail-stops the log: acked-but-unsynced records may be
// lost, so pretending later appends are durable would be a lie — they
// fail with the latched error instead, matching Append's own fail-stop
// contract under SyncAlways.
func (l *Log) flushTick() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty || l.closed || l.flushErr != nil {
		return
	}
	if err := l.f.Sync(); err != nil {
		l.flushErr = fmt.Errorf("wal: background flush: %w", err)
		mErrFlush.Inc()
		return
	}
	l.dirty = false
	mFsyncs.Inc()
}

// needRotate reports whether the active segment has reached a rotation
// cap. Checked before an append and never for an empty segment, so every
// segment holds at least one record even under a one-byte cap.
func (l *Log) needRotate() bool {
	if l.seq+1 == l.segFirst {
		return false
	}
	if l.opts.RotateRecords > 0 && l.seq-(l.segFirst-1) >= uint64(l.opts.RotateRecords) {
		return true
	}
	return l.opts.RotateBytes > 0 && l.segBytes >= l.opts.RotateBytes
}

// rotate finalises the active segment and opens wal-<next-seq>.log as
// the new append target. The old segment is fsynced before its successor
// exists — that ordering is what guarantees only the final segment of a
// chain can ever carry a torn tail — and the directory entry is fsynced
// so the new segment itself survives power loss.
func (l *Log) rotate() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	mFsyncs.Inc()
	if err := l.f.Close(); err != nil {
		return err
	}
	first := l.seq + 1
	f, err := os.OpenFile(SegmentPath(l.dir, first), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.segFirst, l.segBytes = f, first, 0
	mRotations.Inc()
	return nil
}

// Append writes one record continuing the chain and returns it. Under
// SyncAlways the record is fsynced before Append returns — an
// acknowledged update survives any crash. A write error poisons the log
// (the file may hold a torn frame that later appends must not bury), so
// every subsequent Append fails with ErrClosed; a background-flush
// failure likewise fail-stops with the latched error.
func (l *Log) Append(version uint64, op, comp string, facts []string) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Record{}, ErrClosed
	}
	if l.flushErr != nil {
		return Record{}, l.flushErr
	}
	if l.needRotate() {
		if err := l.rotate(); err != nil {
			l.closed = true
			mErrRotate.Inc()
			return Record{}, fmt.Errorf("wal: rotate segment at seq %d: %w", l.seq+1, err)
		}
	}
	r := Record{Seq: l.seq + 1, Version: version, Op: op, Comp: comp, Facts: facts, Prev: l.head}
	r.Hash = r.ChainHash()
	frame, err := encodeFrame(&r)
	if err != nil {
		return Record{}, err
	}
	if _, err := l.f.Write(frame); err != nil {
		l.closed = true
		return Record{}, fmt.Errorf("wal: append record %d: %w", r.Seq, err)
	}
	if l.opts.Policy == SyncAlways {
		if err := l.f.Sync(); err != nil {
			l.closed = true
			return Record{}, fmt.Errorf("wal: fsync record %d: %w", r.Seq, err)
		}
		mFsyncs.Inc()
	} else {
		l.dirty = true
	}
	l.seq, l.head = r.Seq, r.Hash
	l.segBytes += int64(len(frame))
	mAppends.Inc()
	mBytes.Add(int64(len(frame)))
	return r, nil
}

// Sync forces a flush of unsynced appends. A latched background-flush
// failure is returned — the unsynced window may already be lost.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.flushErr != nil {
		return l.flushErr
	}
	if l.closed || !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	mFsyncs.Inc()
	return nil
}

// Head returns the chain state after the last append: record count and
// tip hash.
func (l *Log) Head() (seq uint64, hash string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq, l.head
}

// Close flushes and closes the log. Idempotent; a closed log rejects
// further appends with ErrClosed. A latched background-flush failure is
// returned in place of a final flush.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.flushErr
	if err == nil && l.dirty {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	return err
}

// Checkpoint is one snapshot checkpoint: the rendered effective program
// at Version, the number of log records it subsumes (Seq) and the chain
// head at that point. Name ties the checkpoint to its tenant's genesis.
type Checkpoint struct {
	Name      string `json:"name"`
	Version   uint64 `json:"version"`
	Seq       uint64 `json:"seq"`
	ChainHead string `json:"chain_head"`
	Program   string `json:"program"`
	// Sum is the checkpoint's own integrity hash over every field above,
	// set by WriteCheckpoint and verified by Checkpoints: the log's CRCs
	// and chain do not cover checkpoint files, this does.
	Sum string `json:"sum"`
}

// checksum hashes the checkpoint's logical fields (NUL-separated, like
// Record.ChainHash) for the Sum field.
func (cp *Checkpoint) checksum() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00%d\x00%s\x00%s", cp.Name, cp.Version, cp.Seq, cp.ChainHead, cp.Program)
	return hex.EncodeToString(h.Sum(nil))
}

func checkpointPath(dir string, version uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%020d.json", version))
}

// WriteCheckpoint persists cp atomically: temp file, fsync, rename. A
// crash leaves either the previous checkpoint set or the previous set
// plus the complete new file — never a torn checkpoint.
func WriteCheckpoint(dir string, cp *Checkpoint) error {
	cp.Sum = cp.checksum()
	b, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: encode checkpoint v%d: %w", cp.Version, err)
	}
	path := checkpointPath(dir, cp.Version)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write checkpoint v%d: %w", cp.Version, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: publish checkpoint v%d: %w", cp.Version, err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("wal: checkpoint v%d: %w", cp.Version, err)
	}
	mCheckpoints.Inc()
	return nil
}

// syncDir fsyncs the directory so created, renamed and removed entries
// survive power loss. Filesystems that simply do not support directory
// fsync (EINVAL/ENOTSUP) are treated as success; every real failure is
// returned and counted under wal.errors.dirsync — a swallowed directory
// fsync after a checkpoint publish or segment rotation would silently
// forfeit the durability guarantee.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		mErrDirsync.Inc()
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err == nil || errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	mErrDirsync.Inc()
	return fmt.Errorf("wal: sync dir %s: %w", dir, err)
}

// Checkpoints reads every checkpoint in dir, sorted ascending by version.
// Leftover .tmp files from interrupted writes are ignored; an unreadable
// published checkpoint is corruption.
func Checkpoints(dir string) ([]Checkpoint, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Checkpoint
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var cp Checkpoint
		if err := json.Unmarshal(b, &cp); err != nil {
			return nil, fmt.Errorf("%w: checkpoint %s: %v", ErrCorrupt, name, err)
		}
		if cp.Sum != cp.checksum() {
			return nil, fmt.Errorf("%w: checkpoint %s: integrity sum mismatch", ErrCorrupt, name)
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out, nil
}

// Reset removes all WAL state (log, checkpoints, leftover temp files)
// from dir, which must exist. NewEngine-style fresh starts call it so a
// replaced tenant's history cannot bleed into its successor's chain.
func Reset(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		_, isSeg := parseSegmentName(name)
		if name == LogName || isSeg || strings.HasPrefix(name, "checkpoint-") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// RemoveCheckpoint deletes the checkpoint file for version; a missing
// file is not an error. Recovery uses it to prune checkpoints that claim
// records a crash destroyed, so the directory verifies cleanly afterwards.
func RemoveCheckpoint(dir string, version uint64) error {
	err := os.Remove(checkpointPath(dir, version))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// IsDurabilityDir reports whether dir holds WAL state (at least one
// checkpoint): the recovery scan uses it to skip unrelated directories.
func IsDurabilityDir(dir string) bool {
	cps, err := Checkpoints(dir)
	return err == nil && len(cps) > 0
}

// VerifyResult summarises a successful VerifyDir.
type VerifyResult struct {
	Name        string
	Records     int
	Segments    int
	FirstSeq    uint64 // seq of the first retained record (> 1 after retention pruning)
	Checkpoints int
	Version     uint64 // version at the chain tip (last record, or newest checkpoint)
	Head        string // chain head hash
}

// VerifyDir strictly verifies a durability directory end to end: every
// record's CRC and chain hash across the whole segment chain (a single
// flipped byte anywhere fails), plus every checkpoint's consistency with
// the chain (its Seq within the retained range, its ChainHead equal to
// the hash at that point, its Version equal to that record's). A chain
// whose prefix was pruned by retention is anchored at a checkpoint whose
// Seq is the pruned length and whose ChainHead the surviving records
// extend; a pruned chain without such an anchor is corruption. Program
// text is not parsed here — cmd/ordlog's `wal verify` layers that on top.
func VerifyDir(dir string) (*VerifyResult, error) {
	cps, err := Checkpoints(dir)
	if err != nil {
		return nil, err
	}
	if len(cps) == 0 {
		return nil, fmt.Errorf("wal: %s: no checkpoint (not a durability directory)", dir)
	}
	name := cps[0].Name
	for _, cp := range cps {
		if cp.Name != name {
			return nil, fmt.Errorf("%w: checkpoints disagree on tenant name (%q vs %q)", ErrCorrupt, name, cp.Name)
		}
	}
	genesis := Genesis(name)
	res, err := ReadAll(dir, genesis, true)
	if err != nil {
		return nil, err
	}
	first := res.First
	last := first - 1 + uint64(len(res.Records))
	// anchor is the chain hash at seq first-1: the genesis for an intact
	// chain, the adopted Prev of the first surviving record after pruning
	// (authenticated below against a checkpoint), unknown when pruning
	// left no records at all.
	anchor := ""
	switch {
	case first == 1:
		anchor = genesis
	case len(res.Records) > 0:
		anchor = res.Records[0].Prev
	}
	hashAt := func(seq uint64) (string, bool) {
		switch {
		case seq == first-1:
			return anchor, anchor != ""
		case seq >= first && seq <= last:
			return res.Records[seq-first].Hash, true
		}
		return "", false
	}
	anchored := first == 1
	for _, cp := range cps {
		if cp.Seq < first-1 {
			return nil, fmt.Errorf("%w: checkpoint v%d at seq %d predates the retained chain (first seq %d)", ErrCorrupt, cp.Version, cp.Seq, first)
		}
		if cp.Seq > last {
			return nil, fmt.Errorf("%w: checkpoint v%d claims records through seq %d, log ends at %d", ErrCorrupt, cp.Version, cp.Seq, last)
		}
		if anchor == "" && cp.Seq == first-1 {
			// No surviving records to adopt an anchor from: the
			// checkpoint's recorded head is the only witness.
			anchor = cp.ChainHead
		}
		h, ok := hashAt(cp.Seq)
		if !ok || h != cp.ChainHead {
			return nil, fmt.Errorf("%w: checkpoint v%d chain head mismatch at seq %d", ErrCorrupt, cp.Version, cp.Seq)
		}
		if cp.Seq >= first && res.Records[cp.Seq-first].Version != cp.Version {
			return nil, fmt.Errorf("%w: checkpoint v%d sits at record version %d", ErrCorrupt, cp.Version, res.Records[cp.Seq-first].Version)
		}
		// Any checkpoint whose ChainHead matches a hash in [first-1, last]
		// authenticates the adopted anchor transitively: each record's
		// hash covers its Prev, back to the anchor itself.
		anchored = true
	}
	if !anchored {
		return nil, fmt.Errorf("%w: pruned chain starting at seq %d has no anchoring checkpoint", ErrCorrupt, first)
	}
	head, _ := hashAt(last)
	out := &VerifyResult{Name: name, Records: len(res.Records), Segments: res.Segments, FirstSeq: first, Checkpoints: len(cps), Head: head, Version: cps[len(cps)-1].Version}
	if len(res.Records) > 0 {
		out.Version = res.Records[len(res.Records)-1].Version
	}
	return out, nil
}
