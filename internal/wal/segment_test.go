package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSegmented appends n records through a rotating log and returns
// the directory and the appended records.
func writeSegmented(t *testing.T, name string, n int, opts LogOptions) (string, []Record) {
	t.Helper()
	dir := t.TempDir()
	l, err := OpenLogWith(dir, Genesis(name), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < n; i++ {
		op := "assert"
		if i%3 == 2 {
			op = "retract"
		}
		r, err := l.Append(uint64(i+1), op, "main", []string{"p(c" + string(rune('0'+i%10)) + ")."})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, recs
}

func TestRotationRoundtrip(t *testing.T) {
	dir, recs := writeSegmented(t, "tn", 10, LogOptions{RotateRecords: 3})
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 10 records, rotate every 3: wal.log(1..3), wal-4(4..6), wal-7(7..9), wal-10(10).
	if len(segs) != 4 {
		t.Fatalf("got %d segments, want 4: %+v", len(segs), segs)
	}
	if segs[0].Name != LogName || segs[1].First != 4 || segs[2].First != 7 || segs[3].First != 10 {
		t.Fatalf("unexpected segment layout: %+v", segs)
	}
	res, err := ReadAll(dir, Genesis("tn"), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || res.First != 1 || len(res.Records) != len(recs) {
		t.Fatalf("ReadAll: torn=%v first=%d n=%d", res.Torn, res.First, len(res.Records))
	}
	for i, r := range res.Records {
		if r.Hash != recs[i].Hash || r.Seq != recs[i].Seq {
			t.Fatalf("record %d diverged across rotation", i)
		}
	}
}

func TestRotateBytes(t *testing.T) {
	dir, _ := writeSegmented(t, "tn", 6, LogOptions{RotateBytes: 1})
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A one-byte cap still yields one record per segment, never zero.
	if len(segs) != 6 {
		t.Fatalf("got %d segments, want 6 (one record each)", len(segs))
	}
	if _, err := ReadAll(dir, Genesis("tn"), true); err != nil {
		t.Fatal(err)
	}
}

func TestReopenContinuesLastSegment(t *testing.T) {
	dir, recs := writeSegmented(t, "tn", 5, LogOptions{RotateRecords: 2})
	last := recs[len(recs)-1]
	l, err := OpenLogWith(dir, last.Hash, last.Seq, LogOptions{RotateRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(6, "assert", "main", []string{"q(a)."}); err != nil {
		t.Fatal(err)
	}
	// Seq 6 lands in the segment that already held seq 5, filling it;
	// seq 7 forces a rotation to wal-7.
	if _, err := l.Append(7, "assert", "main", []string{"q(b)."}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ReadAll(dir, Genesis("tn"), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 7 {
		t.Fatalf("got %d records, want 7", len(res.Records))
	}
	if _, err := os.Stat(SegmentPath(dir, 7)); err != nil {
		t.Fatalf("expected rotation to wal-7: %v", err)
	}
}

func TestTornTailOnlyInFinalSegment(t *testing.T) {
	dir, _ := writeSegmented(t, "tn", 7, LogOptions{RotateRecords: 3})
	segs, _ := ListSegments(dir)
	last := segs[len(segs)-1]
	b, err := os.ReadFile(last.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last.Path, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ReadAll(dir, Genesis("tn"), false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn || res.TornPath != last.Path {
		t.Fatalf("want torn tail in %s, got torn=%v path=%s", last.Path, res.Torn, res.TornPath)
	}
	if len(res.Records) != 6 {
		t.Fatalf("tolerant decode kept %d records, want 6", len(res.Records))
	}
	// The same damage in a non-final segment is hard corruption even in
	// tolerant mode: rotation fsyncs a segment before its successor
	// exists, so a mid-chain tear cannot be a crash artifact.
	dir2, _ := writeSegmented(t, "tn", 7, LogOptions{RotateRecords: 3})
	segs2, _ := ListSegments(dir2)
	mid := segs2[1]
	b2, err := os.ReadFile(mid.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mid.Path, b2[:len(b2)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(dir2, Genesis("tn"), false); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-chain tear: got %v, want ErrCorrupt", err)
	}
}

func TestSegmentGapIsCorrupt(t *testing.T) {
	dir, _ := writeSegmented(t, "tn", 9, LogOptions{RotateRecords: 3})
	if err := os.Remove(SegmentPath(dir, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(dir, Genesis("tn"), false); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing middle segment: got %v, want ErrCorrupt", err)
	}
}

func TestPruneSegmentsAndCheckpoints(t *testing.T) {
	dir, recs := writeSegmented(t, "tn", 10, LogOptions{RotateRecords: 3})
	// Checkpoints at seq 0 (genesis), 6 and 9.
	for _, seq := range []uint64{0, 6, 9} {
		head := Genesis("tn")
		var version uint64
		if seq > 0 {
			head = recs[seq-1].Hash
			version = recs[seq-1].Version
		}
		cp := &Checkpoint{Name: "tn", Version: version, Seq: seq, ChainHead: head, Program: "p(c0)."}
		if err := WriteCheckpoint(dir, cp); err != nil {
			t.Fatal(err)
		}
	}
	// Keep the newest 2 checkpoints: the genesis checkpoint goes, the
	// oldest retained sits at seq 6.
	removed, oldest, err := PruneCheckpoints(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || oldest != 6 {
		t.Fatalf("PruneCheckpoints: removed=%d oldest=%d, want 1/6", removed, oldest)
	}
	// Segments wal.log(1..3) and wal-4(4..6) are covered by seq 6;
	// wal-7(7..9) is not (its last record is 9 > 6), wal-10 is final.
	n, err := PruneSegments(dir, oldest)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("pruned %d segments, want 2", n)
	}
	res, err := ReadAll(dir, Genesis("tn"), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.First != 7 || len(res.Records) != 4 {
		t.Fatalf("after prune: first=%d n=%d, want 7/4", res.First, len(res.Records))
	}
	// The pruned chain still verifies end to end: the seq-6 checkpoint
	// anchors the adopted Prev of record 7.
	vr, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if vr.FirstSeq != 7 || vr.Records != 4 || vr.Segments != 2 || vr.Checkpoints != 2 {
		t.Fatalf("VerifyDir after prune: %+v", vr)
	}
	// Remove the anchoring checkpoint: the chain loses its witness.
	if err := RemoveCheckpoint(dir, 6); err != nil {
		t.Fatal(err)
	}
	if err := RemoveCheckpoint(dir, 9); err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{Name: "tn", Version: 5, Seq: 5, ChainHead: recs[4].Hash, Program: "p(c0)."}
	if err := WriteCheckpoint(dir, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("checkpoint below retained chain: got %v, want ErrCorrupt", err)
	}
}

func TestPruneNeverTouchesFinalSegment(t *testing.T) {
	dir, _ := writeSegmented(t, "tn", 3, LogOptions{RotateRecords: 3})
	segs, _ := ListSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("want a single segment, got %d", len(segs))
	}
	n, err := PruneSegments(dir, 99)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("pruned the final segment (n=%d)", n)
	}
}

func TestResetRemovesSegments(t *testing.T) {
	dir, _ := writeSegmented(t, "tn", 10, LogOptions{RotateRecords: 3})
	if err := Reset(dir); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("Reset left %d segments behind", len(segs))
	}
}

func TestSyncDirErrorSurfaced(t *testing.T) {
	before := mErrDirsync.Value()
	err := syncDir(filepath.Join(t.TempDir(), "does-not-exist"))
	if err == nil {
		t.Fatal("syncDir on a missing directory returned nil")
	}
	if !strings.Contains(err.Error(), "sync dir") {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := mErrDirsync.Value(); got != before+1 {
		t.Fatalf("wal.errors.dirsync = %d, want %d", got, before+1)
	}
	// WriteCheckpoint surfaces the failure instead of reporting a
	// checkpoint durable that the directory never persisted.
	cp := &Checkpoint{Name: "tn", Seq: 0, ChainHead: Genesis("tn")}
	dir := t.TempDir()
	sub := filepath.Join(dir, "gone")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(sub, cp); err != nil {
		t.Fatal(err)
	}
}

func TestFlushErrorFailStopsAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Genesis("tn"), 0, SyncInterval)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, "assert", "main", []string{"p(a)."}); err != nil {
		t.Fatal(err)
	}
	// Fault injection: yank the descriptor out from under the flusher so
	// its next fsync fails, then run a tick directly.
	before := mErrFlush.Value()
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()
	l.flushTick()
	if got := mErrFlush.Value(); got != before+1 {
		t.Fatalf("wal.errors.flush = %d, want %d", got, before+1)
	}
	if _, err := l.Append(2, "assert", "main", []string{"p(b)."}); err == nil || !strings.Contains(err.Error(), "background flush") {
		t.Fatalf("append after flush failure: got %v, want latched flush error", err)
	}
	if err := l.Sync(); err == nil || !strings.Contains(err.Error(), "background flush") {
		t.Fatalf("sync after flush failure: got %v, want latched flush error", err)
	}
	if err := l.Close(); err == nil || !strings.Contains(err.Error(), "background flush") {
		t.Fatalf("close after flush failure: got %v, want latched flush error", err)
	}
	// A second tick after the latch must not clear or double-count it.
	l.flushTick()
	if got := mErrFlush.Value(); got != before+1 {
		t.Fatalf("latched flush error re-counted: %d", got)
	}
}

func TestLegacySingleFileStillReadable(t *testing.T) {
	// A directory written entirely through the unrotated OpenLog path is
	// the pre-segment layout; ReadAll must read it as a one-segment chain.
	dir, recs, _ := writeLog(t, "tn", 5, SyncAlways)
	res, err := ReadAll(dir, Genesis("tn"), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.First != 1 || res.Segments != 1 || len(res.Records) != len(recs) {
		t.Fatalf("legacy layout: first=%d segs=%d n=%d", res.First, res.Segments, len(res.Records))
	}
}

func TestEmptyFinalSegmentTolerated(t *testing.T) {
	dir, recs := writeSegmented(t, "tn", 4, LogOptions{RotateRecords: 2})
	// Simulate a crash between rotation and the first append: an empty
	// successor segment.
	if err := os.WriteFile(SegmentPath(dir, 5), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ReadAll(dir, Genesis("tn"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("got %d records, want 4", len(res.Records))
	}
	// Reopening for append lands in the empty segment and continues the chain.
	last := recs[len(recs)-1]
	l, err := OpenLogWith(dir, last.Hash, last.Seq, LogOptions{RotateRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(5, "assert", "main", []string{"q(a)."}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(dir, Genesis("tn"), true); err != nil {
		t.Fatal(err)
	}
}
