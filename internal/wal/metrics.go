package wal

import "repro/internal/obs"

// Resolved once at init; obs counters are no-ops until obs.SetEnabled.
var (
	mAppends       = obs.Default().Counter("wal.appends")
	mFsyncs        = obs.Default().Counter("wal.fsyncs")
	mBytes         = obs.Default().Counter("wal.bytes")
	mCheckpoints   = obs.Default().Counter("wal.checkpoints")
	mChainVerifies = obs.Default().Counter("wal.chain.verifies")
	mRotations     = obs.Default().Counter("wal.rotations")
	mSegsPruned    = obs.Default().Counter("wal.segments.pruned")
	mCPsPruned     = obs.Default().Counter("wal.checkpoints.pruned")

	// wal.errors family: every counted event is a durability-affecting
	// failure that was also surfaced to the caller as an error — the
	// counters exist so an operator can alert on them without scraping
	// logs, not as a substitute for the error path.
	mErrDirsync = obs.Default().Counter("wal.errors.dirsync")
	mErrFlush   = obs.Default().Counter("wal.errors.flush")
	mErrRotate  = obs.Default().Counter("wal.errors.rotate")
)
