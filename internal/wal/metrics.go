package wal

import "repro/internal/obs"

// Resolved once at init; obs counters are no-ops until obs.SetEnabled.
var (
	mAppends       = obs.Default().Counter("wal.appends")
	mFsyncs        = obs.Default().Counter("wal.fsyncs")
	mBytes         = obs.Default().Counter("wal.bytes")
	mCheckpoints   = obs.Default().Counter("wal.checkpoints")
	mChainVerifies = obs.Default().Counter("wal.chain.verifies")
)
