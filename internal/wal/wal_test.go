package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeLog appends n small records through the real Log and returns the
// directory, the records, and the raw log bytes.
func writeLog(t *testing.T, name string, n int, policy SyncPolicy) (dir string, recs []Record, raw []byte) {
	t.Helper()
	dir = t.TempDir()
	l, err := OpenLog(dir, Genesis(name), 0, policy)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		op := "assert"
		if i%3 == 2 {
			op = "retract"
		}
		r, err := l.Append(uint64(i+1), op, "main", []string{"p(c" + string(rune('0'+i%10)) + ")."})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	return dir, recs, raw
}

func TestLogRoundtrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncInterval, SyncAlways} {
		t.Run(policy.String(), func(t *testing.T) {
			dir, recs, _ := writeLog(t, "tn", 7, policy)
			res, err := ReadLog(dir, Genesis("tn"), true)
			if err != nil {
				t.Fatal(err)
			}
			if res.Torn {
				t.Fatal("clean log reported torn")
			}
			if len(res.Records) != len(recs) {
				t.Fatalf("decoded %d records, want %d", len(res.Records), len(recs))
			}
			for i, r := range res.Records {
				if r.Hash != recs[i].Hash || r.Seq != recs[i].Seq || r.Op != recs[i].Op {
					t.Fatalf("record %d diverged: %+v vs %+v", i, r, recs[i])
				}
				if r.ChainHash() != r.Hash {
					t.Fatalf("record %d hash does not recompute", i)
				}
			}
		})
	}
}

func TestGenesisSeparatesTenants(t *testing.T) {
	if Genesis("a") == Genesis("b") {
		t.Fatal("genesis hashes collide across tenants")
	}
	dir, _, _ := writeLog(t, "a", 3, SyncAlways)
	// A log decoded against the wrong tenant's genesis must fail on the
	// very first record — this is what makes swapped directories loud.
	// A chain mismatch is hard corruption in both modes: a crash cannot
	// reseed the chain, only tampering or a swapped directory can.
	for _, strict := range []bool{true, false} {
		if _, err := ReadLog(dir, Genesis("b"), strict); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("wrong-genesis decode (strict=%v): got %v, want ErrCorrupt", strict, err)
		}
	}
}

func TestEveryFlippedByteDetectedStrict(t *testing.T) {
	_, _, raw := writeLog(t, "tn", 5, SyncAlways)
	for i := range raw {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= bit
			if _, err := Decode(mut, Genesis("tn"), true); err == nil {
				t.Fatalf("flipping bit %#x of byte %d went undetected in strict mode", bit, i)
			}
		}
	}
}

func TestTruncationTolerantPrefix(t *testing.T) {
	_, recs, raw := writeLog(t, "tn", 5, SyncAlways)
	// Frame boundaries: offsets where a truncation is a clean log.
	boundary := map[int64]int{0: 0}
	var off int64
	for i := range recs {
		b, err := encodeFrame(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		off += int64(len(b))
		boundary[off] = i + 1
	}
	if off != int64(len(raw)) {
		t.Fatalf("re-encoded frames span %d bytes, log has %d", off, len(raw))
	}
	for cut := 0; cut <= len(raw); cut++ {
		res, err := Decode(raw[:cut], Genesis("tn"), false)
		if err != nil {
			t.Fatalf("tolerant decode of %d-byte prefix: %v", cut, err)
		}
		if n, clean := boundary[int64(cut)]; clean {
			if res.Torn || len(res.Records) != n {
				t.Fatalf("cut at boundary %d: torn=%v records=%d want %d", cut, res.Torn, len(res.Records), n)
			}
			continue
		}
		if !res.Torn {
			t.Fatalf("cut mid-frame at %d not reported torn", cut)
		}
		if _, ok := boundary[res.Good]; !ok {
			t.Fatalf("cut at %d: Good=%d is not a frame boundary", cut, res.Good)
		}
		if res.Good > int64(cut) {
			t.Fatalf("cut at %d: Good=%d past the cut", cut, res.Good)
		}
		// Strict mode must reject the same torn image outright.
		if _, err := Decode(raw[:cut], Genesis("tn"), true); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("strict decode of torn %d-byte prefix: got %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Genesis("tn"), 0, SyncInterval)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, "assert", "main", []string{"p(a)."}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(2, "assert", "main", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: got %v, want ErrClosed", err)
	}
}

func TestCheckpointRoundtripAndVerify(t *testing.T) {
	dir, recs, _ := writeLog(t, "tn", 6, SyncAlways)
	writeCP := func(seq uint64) {
		t.Helper()
		head := Genesis("tn")
		var version uint64
		if seq > 0 {
			head = recs[seq-1].Hash
			version = recs[seq-1].Version
		}
		if err := WriteCheckpoint(dir, &Checkpoint{Name: "tn", Version: version, Seq: seq, ChainHead: head, Program: "module main { }"}); err != nil {
			t.Fatal(err)
		}
	}
	writeCP(0)
	writeCP(4)
	cps, err := Checkpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 2 || cps[0].Seq != 0 || cps[1].Seq != 4 {
		t.Fatalf("checkpoints = %+v", cps)
	}
	res, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "tn" || res.Records != 6 || res.Checkpoints != 2 || res.Version != 6 {
		t.Fatalf("verify = %+v", res)
	}
	if res.Head != recs[5].Hash {
		t.Fatalf("verify head %s, want %s", res.Head, recs[5].Hash)
	}
	if !IsDurabilityDir(dir) {
		t.Fatal("directory with checkpoints not recognised")
	}
	if IsDurabilityDir(t.TempDir()) {
		t.Fatal("empty directory recognised as durability dir")
	}
}

func TestVerifyDirDetectsInconsistencies(t *testing.T) {
	build := func(t *testing.T) (string, []Record) {
		dir, recs, _ := writeLog(t, "tn", 4, SyncAlways)
		if err := WriteCheckpoint(dir, &Checkpoint{Name: "tn", Version: 2, Seq: 2, ChainHead: recs[1].Hash, Program: "module main { }"}); err != nil {
			t.Fatal(err)
		}
		return dir, recs
	}

	t.Run("ok", func(t *testing.T) {
		dir, _ := build(t)
		if _, err := VerifyDir(dir); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("checkpoint byte flipped", func(t *testing.T) {
		dir, _ := build(t)
		path := checkpointPath(dir, 2)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte inside the program text: JSON still parses, only the
		// integrity sum can catch it.
		i := bytes.Index(b, []byte("main"))
		b[i] ^= 0x01
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyDir(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("checkpoint beyond log", func(t *testing.T) {
		dir, recs := build(t)
		if err := WriteCheckpoint(dir, &Checkpoint{Name: "tn", Version: 9, Seq: 9, ChainHead: recs[3].Hash, Program: "module main { }"}); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyDir(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("checkpoint wrong chain head", func(t *testing.T) {
		dir, recs := build(t)
		if err := WriteCheckpoint(dir, &Checkpoint{Name: "tn", Version: 3, Seq: 3, ChainHead: recs[0].Hash, Program: "module main { }"}); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyDir(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("names disagree", func(t *testing.T) {
		dir, _ := build(t)
		if err := WriteCheckpoint(dir, &Checkpoint{Name: "other", Version: 0, Seq: 0, ChainHead: Genesis("other"), Program: "module main { }"}); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyDir(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated log", func(t *testing.T) {
		dir, _ := build(t)
		path := filepath.Join(dir, LogName)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b[:len(b)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyDir(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

func TestReset(t *testing.T) {
	dir, recs, _ := writeLog(t, "tn", 3, SyncAlways)
	if err := WriteCheckpoint(dir, &Checkpoint{Name: "tn", Version: 0, Seq: 0, ChainHead: Genesis("tn"), Program: "module main { }"}); err != nil {
		t.Fatal(err)
	}
	_ = recs
	if err := Reset(dir); err != nil {
		t.Fatal(err)
	}
	if IsDurabilityDir(dir) {
		t.Fatal("reset directory still recognised as durability dir")
	}
	res, err := ReadLog(dir, Genesis("tn"), true)
	if err != nil || len(res.Records) != 0 {
		t.Fatalf("reset log: %d records, err %v", len(res.Records), err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"always", SyncAlways, false},
		{"interval", SyncInterval, false},
		{"", SyncInterval, false},
		{"fsync", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", c.in, got, err)
		}
		if err == nil && got.String() == "" {
			t.Fatalf("policy %v has empty String", got)
		}
	}
}

// FuzzWALDecode drives the decoder with arbitrary bytes (must never panic)
// and with random mutations of a valid log: a tolerant decode either fails
// or returns an intact chain prefix of the original.
func FuzzWALDecode(f *testing.F) {
	dir := f.TempDir()
	l, err := OpenLog(dir, Genesis("fz"), 0, SyncAlways)
	if err != nil {
		f.Fatal(err)
	}
	var orig []Record
	for i := 0; i < 4; i++ {
		r, err := l.Append(uint64(i+1), "assert", "main", []string{"p(a).", "q(b, c)."})
		if err != nil {
			f.Fatal(err)
		}
		orig = append(orig, r)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, -1, byte(0))
	f.Add([]byte{}, -1, byte(0))
	f.Add([]byte("garbage that is not a frame"), -1, byte(0))
	f.Add(valid, 3, byte(0x40))
	f.Add(valid[:len(valid)-5], -1, byte(0))

	f.Fuzz(func(t *testing.T, b []byte, mutAt int, mutBit byte) {
		img := b
		if mutAt >= 0 && len(valid) > 0 {
			img = append([]byte(nil), valid...)
			img[mutAt%len(img)] ^= mutBit | 1
		}
		for _, strict := range []bool{false, true} {
			res, err := Decode(img, Genesis("fz"), strict)
			if err != nil {
				if !strings.Contains(err.Error(), "wal:") {
					t.Fatalf("foreign error from decoder: %v", err)
				}
				continue
			}
			if strict && res.Torn {
				t.Fatal("strict decode returned a torn result instead of an error")
			}
			// Whatever survives must be a chain prefix: recomputing every
			// hash from genesis must reproduce the stored values.
			head := Genesis("fz")
			for i := range res.Records {
				r := &res.Records[i]
				if r.Prev != head || r.ChainHash() != r.Hash {
					t.Fatalf("record %d of decoded result breaks the chain", i)
				}
				head = r.Hash
			}
			if mutAt >= 0 {
				// A mutated valid log can only yield a prefix of the
				// original records, never different content.
				if len(res.Records) > len(orig) {
					t.Fatalf("mutation grew the log: %d records", len(res.Records))
				}
				for i, r := range res.Records {
					if r.Hash != orig[i].Hash {
						t.Fatalf("mutation rewrote record %d", i)
					}
				}
			}
		}
	})
}

func TestRandomTruncationMatchesOracle(t *testing.T) {
	_, recs, raw := writeLog(t, "tn", 12, SyncAlways)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		cut := rng.Intn(len(raw) + 1)
		res, err := Decode(raw[:cut], Genesis("tn"), false)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for j, r := range res.Records {
			if r.Hash != recs[j].Hash {
				t.Fatalf("cut %d: record %d diverged", cut, j)
			}
		}
	}
}
