// Differential tests pinning the parallel smart grounder to its sequential
// twin: identical retained instance sets on a seeded corpus at every shard
// count, cooperative cancellation with no partial program and no leaked
// workers, and work-balance counters that account for every instance. Run
// with -race: the fireable and competitor passes share the possible-atom
// store and the interning tables across workers.
package ground

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/interrupt"
	"repro/internal/obs"
	"repro/internal/workload"
)

// parallelCorpus mixes the random workload families the eval differential
// suite uses; grounding is the subject here, so the non-ground Datalog
// generators matter most.
func parallelCorpus() []*ast.OrderedProgram {
	var progs []*ast.OrderedProgram
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		progs = append(progs, workload.RandomOrdered(rng, 1+rng.Intn(3), workload.RandomConfig{
			Atoms: 3 + rng.Intn(4), Rules: 5 + rng.Intn(8), MaxBody: 3,
			NegHeads: true, NegBody: true,
		}))
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 1_000))
		progs = append(progs, workload.RandomOrderedDatalog(rng, 1+rng.Intn(3), 2+rng.Intn(3)))
	}
	for depth := 1; depth <= 3; depth++ {
		for props := 1; props <= 3; props++ {
			progs = append(progs, workload.Inheritance(depth, props, 2))
		}
	}
	return progs
}

// ruleSet renders a ground program as an order-free multiset fingerprint:
// one "comp|rule" string per retained instance, sorted. Atom ids may differ
// between sequential and parallel grounding (interning order is schedule
// dependent); the rendered strings may not.
func ruleSet(g *Program) []string {
	out := make([]string, len(g.Rules))
	for i := range g.Rules {
		out[i] = fmt.Sprintf("%d|%s", g.Rules[i].Comp, g.RuleString(&g.Rules[i]))
	}
	sort.Strings(out)
	return out
}

// TestParallelGroundingDifferential: on every corpus program the parallel
// grounder retains exactly the sequential grounder's instance set at every
// shard count.
func TestParallelGroundingDifferential(t *testing.T) {
	for pi, p := range parallelCorpus() {
		seq, err := Ground(p, DefaultOptions())
		if err != nil {
			t.Fatalf("program %d: sequential: %v", pi, err)
		}
		want := ruleSet(seq)
		for _, n := range []int{2, 3, 8} {
			opts := DefaultOptions()
			opts.Shards = n
			par, err := Ground(p, opts)
			if err != nil {
				t.Fatalf("program %d shards %d: %v", pi, n, err)
			}
			got := ruleSet(par)
			if len(got) != len(want) {
				t.Fatalf("program %d shards %d: %d instances, sequential has %d\nprogram:\n%s",
					pi, n, len(got), len(want), p)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("program %d shards %d: instance sets diverge at %q vs %q\nprogram:\n%s",
						pi, n, got[i], want[i], p)
				}
			}
		}
	}
}

// TestParallelGroundingDeterministic: the parallel grounder is reproducible
// run to run — not only the same set but the same Rules order, which the
// deterministic merge (shard asc, worker asc, emission order) guarantees.
func TestParallelGroundingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := workload.RandomOrderedDatalog(rng, 3, 4)
	opts := DefaultOptions()
	opts.Shards = 8
	first, err := Ground(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run < 20; run++ {
		g, err := Ground(p, opts)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if len(g.Rules) != len(first.Rules) {
			t.Fatalf("run %d: %d instances, first run had %d", run, len(g.Rules), len(first.Rules))
		}
		for i := range g.Rules {
			if got, want := g.RuleString(&g.Rules[i]), first.RuleString(&first.Rules[i]); got != want {
				t.Fatalf("run %d: Rules[%d] = %q, first run had %q", run, i, got, want)
			}
		}
	}
}

// TestParallelGroundingCancelled: a dead context stops the parallel passes
// with the interrupt sentinel and no partial program; a live context
// afterwards is unaffected.
func TestParallelGroundingCancelled(t *testing.T) {
	p := parse(t, `
module c {
  edge(a, b). edge(b, c). edge(c, d).
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- edge(X, Y), path(Y, Z).
}
`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Shards = 8
	g, err := GroundCtx(ctx, p, opts)
	if !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to unwrap to context.Canceled", err)
	}
	if g != nil {
		t.Fatalf("partial ground program returned alongside the interrupt")
	}
	if _, err := GroundCtx(context.Background(), p, opts); err != nil {
		t.Fatalf("live context after abandoned attempt: %v", err)
	}
}

// TestParallelGroundingNoLeaks: repeated successful and cancelled parallel
// groundings leave no workers behind.
func TestParallelGroundingNoLeaks(t *testing.T) {
	p := parse(t, `
module c {
  edge(a, b). edge(b, c). edge(c, d). edge(d, e).
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- edge(X, Y), path(Y, Z).
}
`)
	opts := DefaultOptions()
	opts.Shards = 8
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		if _, err := Ground(p, opts); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := GroundCtx(ctx, p, opts); !errors.Is(err, interrupt.ErrInterrupted) {
			t.Fatalf("iteration %d: err = %v, want ErrInterrupted", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 20 groundings", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelGroundingCounters: the per-shard instance counters of one
// parallel run sum to the retained instance total, and the skew gauge stays
// within its meaningful range [100, shards*100].
func TestParallelGroundingCounters(t *testing.T) {
	if !obs.On() {
		t.Skip("metrics registry disabled")
	}
	p := parse(t, `
module c {
  edge(a, b). edge(b, c). edge(c, d). edge(d, e). edge(e, f).
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- edge(X, Y), path(Y, Z).
}
`)
	const n = 4
	opts := DefaultOptions()
	opts.Shards = n
	before := obs.Default().Snap()
	g, err := Ground(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := obs.Default().Snap().Diff(before)
	var sum int64
	for i := 0; i < n; i++ {
		sum += d.Get(fmt.Sprintf("ground.shard.instances.%d", i))
	}
	if sum != int64(len(g.Rules)) {
		t.Fatalf("sum(ground.shard.instances.*) = %d, retained instances = %d", sum, len(g.Rules))
	}
	if d.Get("ground.shard.runs") != 1 {
		t.Fatalf("ground.shard.runs delta = %d, want 1", d.Get("ground.shard.runs"))
	}
	if skew := obs.Default().Gauge("ground.shard.skew").Value(); skew < 100 || skew > n*100 {
		t.Fatalf("ground.shard.skew = %d, want within [100, %d]", skew, n*100)
	}
}

// TestParallelGroundingBudgets: instance and atom budgets hold exactly
// under parallel grounding — the post-merge re-check, not the relaxed
// in-flight valve, is what callers observe.
func TestParallelGroundingBudgets(t *testing.T) {
	p := parse(t, `
module c {
  edge(a, b). edge(b, c). edge(c, d).
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- edge(X, Y), path(Y, Z).
}
`)
	seq, err := Ground(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Shards = 4
	opts.MaxInstances = len(seq.Rules) - 1
	if _, err := Ground(p, opts); err == nil {
		t.Fatalf("budget %d not enforced on %d instances", opts.MaxInstances, len(seq.Rules))
	}
	opts.MaxInstances = len(seq.Rules)
	if _, err := Ground(p, opts); err != nil {
		t.Fatalf("budget exactly at the instance count rejected: %v", err)
	}
}
