package ground

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/datalog"
	"repro/internal/interp"
	"repro/internal/interrupt"
	"repro/internal/obs"
	"repro/internal/relevance"
	"repro/internal/storage"
	"repro/internal/term"
	"repro/internal/unify"
)

// Mode selects the grounding strategy.
type Mode int

const (
	// ModeSmart instantiates only relevant instances (fireable rules plus
	// their potential competitors); its atom table is the relevant
	// Herbrand base. The default.
	ModeSmart Mode = iota
	// ModeFull instantiates every rule over the whole universe and interns
	// the complete Herbrand base. Reference semantics; exponential in rule
	// width.
	ModeFull
)

// Options configures grounding.
type Options struct {
	Mode Mode
	// MaxDepth bounds functor nesting in the Herbrand universe; -1 (the
	// default through DefaultOptions) uses the deepest term in the program.
	MaxDepth int
	// MaxUniverse, MaxAtoms and MaxInstances are size budgets (0 = default).
	MaxUniverse  int
	MaxAtoms     int
	MaxInstances int
	// NoEDBSimplify disables the EDB/CWA competitor simplification in
	// smart mode (ablation switch; results are unchanged, the competitor
	// pass just materialises provably blocked instances too).
	NoEDBSimplify bool
	// NoJoinPlanner disables the selectivity-driven join planner in the
	// possible-atom fixpoint and the smart-mode join passes, joining body
	// literals in source order instead (ablation switch; the ground program
	// is unchanged, only join cost differs).
	NoJoinPlanner bool
	// Shards runs the smart-mode fireable and competitor passes on that
	// many parallel workers, partitioning join enumeration and competitor
	// targets by shard; <= 1 (the default) grounds sequentially. The
	// retained instance set is identical either way — only the append order
	// differs (grouped by shard instead of interleaved). Ignored by
	// ModeFull.
	Shards int
	// Goal, when non-empty, grounds only the query-reachable slice for
	// this conjunctive goal: the magic-set demand transform of
	// internal/relevance restricts the possible-atom fixpoint and the
	// fireable pass to demanded predicates and magic-reachable bindings,
	// while the competitor pass keeps the Definition 2 overruler/defeater
	// closure intact (see DESIGN §12 for the soundness argument). A
	// sliced program answers queries matching the goal pattern exactly
	// like the full grounding, but its Rules/atom table cover only the
	// slice and it supports no incremental updates (AssertFacts and
	// RetractFacts refuse). Requires ModeSmart; a goal forces sequential
	// grounding (Shards is ignored).
	Goal []ast.Literal
}

// DefaultOptions returns the default grounding configuration.
func DefaultOptions() Options {
	return Options{Mode: ModeSmart, MaxDepth: -1, MaxUniverse: 1 << 20, MaxAtoms: 1 << 21, MaxInstances: 1 << 22}
}

// IsZero reports whether o is the zero configuration. Callers treating a
// zero Options as "use DefaultOptions" need this spelled out because the
// Goal slice makes Options non-comparable.
func (o Options) IsZero() bool {
	return o.Mode == ModeSmart && o.MaxDepth == 0 && o.MaxUniverse == 0 &&
		o.MaxAtoms == 0 && o.MaxInstances == 0 && !o.NoEDBSimplify &&
		!o.NoJoinPlanner && o.Shards == 0 && o.Goal == nil
}

func (o *Options) fill() {
	if o.MaxUniverse == 0 {
		o.MaxUniverse = 1 << 20
	}
	if o.MaxAtoms == 0 {
		o.MaxAtoms = 1 << 21
	}
	if o.MaxInstances == 0 {
		o.MaxInstances = 1 << 22
	}
}

// Rule is a ground rule instance over interned literals. Comp is the
// position of the owning component in the source program; Src points to the
// rule it instantiates.
type Rule struct {
	Head interp.Lit
	Body []interp.Lit
	Comp int32
	Src  *ast.Rule
}

// Program is a grounded ordered program.
//
// Rules is append-only: incremental updates (AssertFacts, RetractFacts)
// add instances at the end and never reorder or remove existing ones, so a
// prefix of Rules captured at one version stays valid forever. Retraction
// is expressed as per-snapshot dead sets maintained by the caller, not as
// mutation of Rules.
type Program struct {
	Src      *ast.OrderedProgram
	Tab      *interp.Table
	Rules    []Rule
	Universe []ast.Term

	// inc retains the smart-grounding working state (possible-atom store,
	// encoded rules, competitor targets, semi-naive watermarks) so facts can
	// be asserted and retracted in place. nil after full-mode grounding and
	// after goal-directed (sliced) grounding; sliced distinguishes the
	// latter so update fallbacks report the right reason.
	inc    *grounder
	sliced bool
}

// NumComponents returns the number of components of the source program.
func (g *Program) NumComponents() int { return len(g.Src.Components) }

// RuleString renders a ground rule instance for diagnostics.
func (g *Program) RuleString(r *Rule) string {
	var b strings.Builder
	b.WriteString(g.Tab.LitString(r.Head))
	if len(r.Body) > 0 {
		b.WriteString(" :- ")
		for i, l := range r.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.Tab.LitString(l))
		}
	}
	b.WriteByte('.')
	return b.String()
}

// Dump writes the ground program in a readable form: instances grouped by
// component in source order, one rule per line, followed by a summary.
func (g *Program) Dump(w io.Writer) error {
	byComp := make([][]int, len(g.Src.Components))
	for i := range g.Rules {
		c := int(g.Rules[i].Comp)
		byComp[c] = append(byComp[c], i)
	}
	for ci, c := range g.Src.Components {
		if _, err := fmt.Fprintf(w, "%% component %s (%d instances)\n", c.Name, len(byComp[ci])); err != nil {
			return err
		}
		lines := make([]string, 0, len(byComp[ci]))
		for _, i := range byComp[ci] {
			lines = append(lines, g.RuleString(&g.Rules[i]))
		}
		sort.Strings(lines)
		for _, l := range lines {
			if _, err := fmt.Fprintln(w, l); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "%% %d instances over %d atoms\n", len(g.Rules), g.Tab.Len())
	return err
}

// Ground instantiates the program. The source program must have been
// validated (parser output always is).
func Ground(p *ast.OrderedProgram, opts Options) (*Program, error) {
	return GroundCtx(context.Background(), p, opts)
}

// GroundCtx is Ground with cooperative cancellation: the grounder polls
// the context between grounding strata (possible-atom fixpoint, fireable
// pass, competitor pass; per rule in full mode) and every few hundred
// emitted instances, so a cancelled or expired context stops grounding
// within one checkpoint interval and returns an interrupt.Error.
func GroundCtx(ctx context.Context, p *ast.OrderedProgram, opts Options) (*Program, error) {
	opts.fill()
	if len(opts.Goal) > 0 {
		if opts.Mode != ModeSmart {
			return nil, fmt.Errorf("ground: goal-directed grounding requires smart mode")
		}
		// Sliced grounding is sequential: the slice is small by design and
		// the magic seeds are interned before the shard assignment would be
		// pinned, so sharding buys nothing and is simply ignored.
		opts.Shards = 0
	}
	uni, err := Universe(p, opts.MaxDepth, opts.MaxUniverse)
	if err != nil {
		return nil, err
	}
	g := &grounder{
		src:  p,
		ctx:  ctx,
		opts: opts,
		uni:  uni,
		tab:  interp.NewTable(),
		seen: make(map[string]int32),
	}
	if len(opts.Goal) > 0 {
		g.rel = relevance.Analyze(p, opts.Goal)
	}
	switch opts.Mode {
	case ModeFull:
		err = g.full()
	case ModeSmart:
		if opts.Shards > 1 {
			err = g.smartParallel(opts.Shards)
		} else {
			err = g.smart()
		}
	default:
		err = fmt.Errorf("ground: unknown mode %d", opts.Mode)
	}
	if err != nil {
		return nil, err
	}
	gp := &Program{Src: p, Tab: g.tab, Rules: g.rules, Universe: g.uni, sliced: g.rel != nil}
	if opts.Mode == ModeSmart && g.rel == nil {
		// Sliced programs keep inc nil: their instance set is a function of
		// the goal, so in-place deltas would desynchronise them from the
		// full grounding they must agree with. Updates reground.
		gp.inc = g
		g.ctx = nil // updates carry their own context
	}
	if obs.On() {
		mGroundRuns.Inc()
		mGroundInstances.Add(int64(len(gp.Rules)))
		mCompetitorClosure.Add(int64(g.compInstances))
		if g.rel != nil {
			mMagicRuns.Inc()
			mMagicSeeds.Add(int64(len(g.rel.Seeds)))
			mMagicDemanded.Add(int64(g.rel.NumDemanded()))
			mMagicRestricted.Add(int64(g.rel.NumRestricted()))
			mMagicSkipped.Add(int64(g.skippedRules))
		}
	}
	return gp, nil
}

type grounder struct {
	src   *ast.OrderedProgram
	ctx   context.Context
	opts  Options
	uni   []ast.Term
	tab   *interp.Table
	rules []Rule
	// seen dedups instances (key: packed component + head + body ids) and
	// remembers each instance's index in rules, which is how retraction
	// finds the instance of a fact and re-assertion resurrects it.
	seen map[string]int32
	// emitted counts instantiate calls for the stride-based context poll
	// (a single rule can expand to universe^vars instances, so per-stratum
	// checkpoints alone would not bound the interruption latency).
	emitted int
	// compInstances counts the instances the competitor pass appended —
	// the competitor-closure size, flushed to metrics when the run ends.
	compInstances int
	// rel is the goal-directed demand analysis when Options.Goal is set;
	// nil grounds the full program. skippedRules counts source rules the
	// slicing dropped (head predicate not demanded).
	rel          *relevance.Analysis
	skippedRules int
	// factComps maps ground-fact atoms — keyed by their packed interned
	// term ids (predicate symbol id then argument ids) — to the components
	// asserting them; built by predShapes for the competitor pass.
	factComps map[string][]int
	// keyBuf is the reusable dedup-key scratch buffer.
	keyBuf []byte

	// Smart-mode state retained for incremental updates (delta.go). All of
	// it is mutated only under the engine's write lock.
	st            *storage.Store   // possible-atom store (t:/f:/$dom relations)
	dlSrc         []srcRule        // source rules with their encoded datalog bodies
	inUniverse    map[term.ID]bool // universe membership by interned id
	shapes        map[ast.PredKey]*predShape
	targets       map[interp.Lit]*target     // competitor-pass targets emitted so far
	targetsByPred map[predSign][]*target     // same targets indexed by head predicate+sign
	bodyEDB       map[ast.PredKey][]compRule // source rules with a positive body literal on key
	marks         map[ast.PredKey]int        // relation sizes at the end of the last (delta) pass
	extra         map[int][]*ast.Rule        // asserted fact rules per component, still in effect
	// constRefs counts, per constant (keyed by String()), its occurrences in
	// the effective program (source rules plus asserted facts minus retracted
	// ones). A retraction that would drop a count to zero shrinks the
	// Herbrand universe a rebuild computes, so it falls back to regrounding.
	constRefs   map[string]int
	uniFallback bool // universe used the fresh-constant fallback
	hasFunctors bool // program terms use function symbols
	// poisoned marks the incremental state unusable after a mid-update
	// error (budget overrun, interruption): partial appends are already
	// recorded in seen/rules, so further in-place updates could dedup
	// against instances no snapshot contains. Callers fall back to a fresh
	// reground.
	poisoned bool
}

// srcRule pairs a source rule with its owning component and its encoded
// datalog body (possible-atom literals plus $dom literals for free vars).
type srcRule struct {
	comp int
	r    *ast.Rule
	body []datalog.Lit
}

// target is one competitor-pass target: a retained head literal and the
// components owning instances with that head.
type target struct {
	atom  ast.Atom
	neg   bool
	comps map[int32]bool
}

// predSign keys targets by head predicate and sign.
type predSign struct {
	key ast.PredKey
	neg bool
}

// compRule pairs a source rule with its component position.
type compRule struct {
	comp int
	r    *ast.Rule
}

// instantiate builds the ground instance of r under subst, interning its
// atoms directly, and records it unless a duplicate (per component) was
// seen. Instances whose builtins fail are dropped. Returns an error only
// on budget overrun or a non-ground instance (an internal bug).
func (g *grounder) instantiate(comp int, r *ast.Rule, s *unify.Subst) error {
	g.emitted++
	if g.emitted%256 == 0 {
		if err := g.check("ground: instance emission"); err != nil {
			return err
		}
	}
	for _, b := range r.Builtins {
		gb := ast.Builtin{Op: b.Op, L: substExpr(s, b.L), R: substExpr(s, b.R)}
		holds, ok := ast.EvalBuiltin(gb)
		if !ok || !holds {
			return nil
		}
	}
	headAtom := s.ApplyAtom(r.Head.Atom)
	if !headAtom.Ground() {
		return fmt.Errorf("ground: internal error: non-ground head %s of %s", headAtom, r)
	}
	head := interp.MkLit(g.tab.Intern(headAtom), r.Head.Neg)
	var body []interp.Lit
	if len(r.Body) > 0 {
		body = make([]interp.Lit, len(r.Body))
		for i, l := range r.Body {
			a := s.ApplyAtom(l.Atom)
			if !a.Ground() {
				return fmt.Errorf("ground: internal error: non-ground body atom %s of %s", a, r)
			}
			body[i] = interp.MkLit(g.tab.Intern(a), l.Neg)
		}
	}
	// Dedup on the interned encoding: component, head, body, packed as
	// little-endian int32s into a string key (instanceKey, shared with the
	// sharded workers and their merge).
	g.keyBuf = instanceKey(g.keyBuf[:0], comp, head, body)
	key := string(g.keyBuf)
	if _, dup := g.seen[key]; dup {
		return nil
	}
	g.seen[key] = int32(len(g.rules))
	g.rules = append(g.rules, Rule{Head: head, Body: body, Comp: int32(comp), Src: r})
	if g.tab.Len() > g.opts.MaxAtoms {
		return &ErrBudget{"atom", g.opts.MaxAtoms}
	}
	if len(g.rules) > g.opts.MaxInstances {
		return &ErrBudget{"instance", g.opts.MaxInstances}
	}
	return nil
}

// check is the grounder's cooperative checkpoint. Callers pass the full
// "ground: ..." stage constant so the hot path never concatenates.
func (g *grounder) check(stage string) error {
	return interrupt.Check(g.ctx, stage)
}

func appendInt32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// factKey packs a ground atom into the factComps key: the interned
// predicate-symbol id followed by the argument ids, interning terms the
// table has not seen. (blockedByVisibleFact builds the same key
// lookup-only over a stack buffer — it runs on sharded competitor workers
// and must not share this scratch.)
func (g *grounder) factKey(a ast.Atom) string {
	tt := g.tab.TermTable()
	g.keyBuf = g.keyBuf[:0]
	g.keyBuf = term.AppendID(g.keyBuf, tt.InternSym(a.Pred))
	for _, t := range a.Args {
		g.keyBuf = term.AppendID(g.keyBuf, tt.Intern(t))
	}
	return string(g.keyBuf)
}

// addConstRefs adds d to the occurrence count of every constant mentioned
// in r — head arguments, body arguments and builtin expressions, the same
// positions ast.OrderedProgram.Constants walks, so a count reaching zero
// means exactly that a rebuild's universe would no longer contain the
// constant.
func (g *grounder) addConstRefs(r *ast.Rule, d int) {
	var walk func(t ast.Term)
	walk = func(t ast.Term) {
		switch t := t.(type) {
		case ast.Sym:
			g.constRefs[t.String()] += d
		case ast.Int:
			g.constRefs[t.String()] += d
		case ast.Compound:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	var walkExpr func(e ast.Expr)
	walkExpr = func(e ast.Expr) {
		switch e := e.(type) {
		case ast.TermExpr:
			walk(e.Term)
		case ast.BinExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		}
	}
	for _, t := range r.Head.Atom.Args {
		walk(t)
	}
	for _, l := range r.Body {
		for _, t := range l.Atom.Args {
			walk(t)
		}
	}
	for _, b := range r.Builtins {
		walkExpr(b.L)
		walkExpr(b.R)
	}
}

func substExpr(s *unify.Subst, e ast.Expr) ast.Expr {
	return ast.SubstituteExpr(e, func(v ast.Var) ast.Term {
		t := s.Apply(v)
		if tv, ok := t.(ast.Var); ok && tv.Name == v.Name {
			return nil
		}
		return t
	})
}

// full enumerates every substitution of every rule over the universe and
// interns the complete Herbrand base.
func (g *grounder) full() error {
	for ci, c := range g.src.Components {
		for _, r := range c.Rules {
			if err := g.check("ground: full-mode rule"); err != nil {
				return err
			}
			vars := r.Vars()
			if len(vars) == 0 {
				if err := g.instantiate(ci, r, unify.NewSubst()); err != nil {
					return err
				}
				continue
			}
			if len(g.uni) == 0 {
				continue // variables but empty universe: no instances
			}
			s := unify.NewSubst()
			var rec func(i int) error
			rec = func(i int) error {
				if i == len(vars) {
					return g.instantiate(ci, r, s)
				}
				for _, t := range g.uni {
					mark := s.Mark()
					s.Bind(vars[i], t)
					if err := rec(i + 1); err != nil {
						return err
					}
					s.Undo(mark)
				}
				return nil
			}
			if err := rec(0); err != nil {
				return err
			}
		}
	}
	// Intern the complete Herbrand base: every predicate over the universe.
	for _, k := range g.src.Predicates() {
		if err := g.check("ground: Herbrand-base interning"); err != nil {
			return err
		}
		if err := g.internAllAtoms(k); err != nil {
			return err
		}
	}
	return nil
}

func (g *grounder) internAllAtoms(k ast.PredKey) error {
	if k.Arity == 0 {
		g.tab.Intern(ast.Atom{Pred: k.Name})
		return nil
	}
	if len(g.uni) == 0 {
		return nil
	}
	args := make([]ast.Term, k.Arity)
	var rec func(i int) error
	rec = func(i int) error {
		if i == k.Arity {
			g.tab.Intern(ast.Atom{Pred: k.Name, Args: append([]ast.Term(nil), args...)})
			if g.tab.Len() > g.opts.MaxAtoms {
				return &ErrBudget{"atom", g.opts.MaxAtoms}
			}
			return nil
		}
		for _, t := range g.uni {
			args[i] = t
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}
