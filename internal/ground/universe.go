// Package ground instantiates ordered programs: it computes a finite
// Herbrand universe (depth-bounded in the presence of function symbols) and
// produces the set of ground rule instances over interned atoms that the
// evaluator runs on.
//
// Two modes are provided. ModeFull enumerates every instance over the full
// universe and interns the complete Herbrand base: it is the reference
// semantics, exact for arbitrary model checking, and exponential in rule
// width. ModeSmart computes a Datalog over-approximation of the possibly-
// true and possibly-false atoms and instantiates only instances that can
// either fire or act as competitors (overrule/defeat) of firing rules; its
// atom table is the *relevant* Herbrand base. For every atom it interns,
// ModeSmart agrees with ModeFull on least, assumption-free and stable
// models; atoms it omits are undefined in every such model.
package ground

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/term"
)

// ErrBudget reports that grounding exceeded a configured size budget.
type ErrBudget struct {
	What  string
	Limit int
}

// Error implements the error interface.
func (e *ErrBudget) Error() string {
	return fmt.Sprintf("ground: %s budget exceeded (limit %d); raise the budget or simplify the program", e.What, e.Limit)
}

// Universe computes the Herbrand universe of the program: all constants
// plus compound terms nested up to maxDepth. If maxDepth < 0 it defaults to
// the maximum term depth occurring in the program, so every term written in
// the program is constructible but no deeper ones. If the program uses
// variables but has no constants, the conventional fresh constant "u0" is
// added to keep the universe non-empty. A positive budget caps the universe
// size.
func Universe(p *ast.OrderedProgram, maxDepth int, budget int) ([]ast.Term, error) {
	if maxDepth < 0 {
		maxDepth = programTermDepth(p)
	}
	base := p.Constants()
	if len(base) == 0 && programHasVars(p) {
		base = []ast.Term{ast.Sym("u0")}
	}
	all := append([]ast.Term(nil), base...)
	// Dedup members by interned id instead of canonical text. members holds
	// ids of universe members only — a term interned merely as a subterm of
	// a deeper base constant is not in it, so it can still be added when the
	// depth rounds construct it.
	dedup := term.NewTable()
	members := make(map[term.ID]bool, len(all))
	for _, t := range all {
		members[dedup.Intern(t)] = true
	}
	functors := p.Functors()
	for d := 1; d <= maxDepth && len(functors) > 0; d++ {
		var next []ast.Term
		for _, f := range functors {
			args := make([]ast.Term, f.Arity)
			// Enumerate argument tuples from `all`, requiring at least one
			// argument from `prev` (depth d-1) so the compound has depth d.
			var build func(i int, usedPrev bool) error
			build = func(i int, usedPrev bool) error {
				if i == f.Arity {
					if !usedPrev {
						return nil
					}
					c := ast.Compound{Functor: f.Name, Args: append([]ast.Term(nil), args...)}
					id := dedup.Intern(c)
					if members[id] {
						return nil
					}
					members[id] = true
					next = append(next, c)
					if budget > 0 && len(members) > budget {
						return &ErrBudget{"universe", budget}
					}
					return nil
				}
				for _, t := range all {
					args[i] = t
					if err := build(i+1, usedPrev || ast.TermDepth(t) == d-1); err != nil {
						return err
					}
				}
				return nil
			}
			if err := build(0, false); err != nil {
				return nil, err
			}
		}
		if len(next) == 0 {
			break
		}
		all = append(all, next...)
	}
	ast.SortTerms(all)
	if budget > 0 && len(all) > budget {
		return nil, &ErrBudget{"universe", budget}
	}
	return all, nil
}

func programTermDepth(p *ast.OrderedProgram) int {
	max := 0
	upd := func(t ast.Term) {
		if d := ast.TermDepth(t); d > max {
			max = d
		}
	}
	for _, c := range p.Components {
		for _, r := range c.Rules {
			for _, t := range r.Head.Atom.Args {
				upd(t)
			}
			for _, l := range r.Body {
				for _, t := range l.Atom.Args {
					upd(t)
				}
			}
		}
	}
	return max
}

func programHasVars(p *ast.OrderedProgram) bool {
	for _, c := range p.Components {
		for _, r := range c.Rules {
			if len(r.Vars()) > 0 {
				return true
			}
		}
	}
	return false
}
