package ground

import (
	"repro/internal/ast"
	"repro/internal/datalog"
	"repro/internal/interp"
	"repro/internal/storage"
	"repro/internal/term"
	"repro/internal/unify"
)

// domKey is the auxiliary unary predicate holding the Herbrand universe; it
// binds variables that no body literal binds ("$" cannot appear in source
// predicates, so there is no collision).
var domKey = ast.PredKey{Name: "$dom", Arity: 1}

// encKey maps a source predicate and a sign to the possible-atom relation:
// "t:" relations over-approximate possibly-true atoms, "f:" relations
// possibly-false ones.
func encKey(k ast.PredKey, neg bool) ast.PredKey {
	if neg {
		return ast.PredKey{Name: "f:" + k.Name, Arity: k.Arity}
	}
	return ast.PredKey{Name: "t:" + k.Name, Arity: k.Arity}
}

// smart performs relevance-based grounding:
//
//  1. A Datalog fixpoint computes PT/PF, the possibly-true and
//     possibly-false over-approximations, ignoring all overruling and
//     defeating (which only ever remove derivations).
//  2. The fireable pass instantiates each rule over PT/PF joins: these are
//     the instances that can ever become applicable.
//  3. The competitor pass instantiates, for every retained head literal L,
//     the rules with head ¬L in components that can overrule or defeat an
//     owner of L — exhaustively over the universe for variables the head
//     match leaves open, because a competitor with an underivable body is
//     still never blocked and therefore defeats forever.
//
// Every model-relevant instance is retained; the atom table is the
// relevant Herbrand base (atoms omitted are undefined in every least,
// assumption-free or stable model).
//
// The working state (possible-atom store, encoded rules, targets,
// watermarks) is kept on the grounder so delta.go can assert and retract
// facts incrementally after the base grounding.
func (g *grounder) smart() error {
	if err := g.smartPrep(); err != nil {
		return err
	}

	// Fireable pass.
	for _, sr := range g.dlSrc {
		if err := g.check("ground: fireable pass"); err != nil {
			return err
		}
		if err := g.joinInstantiate(g.st, sr.comp, sr.r, sr.body); err != nil {
			return err
		}
	}

	// Competitor pass. Snapshot the retained heads and the components that
	// own instances of each head literal, then instantiate the potential
	// competitors of every target.
	g.prepCompetitors()
	grown := g.registerTargets(0)
	preComp := len(g.rules)
	for _, tg := range grown {
		if err := g.check("ground: competitor pass"); err != nil {
			return err
		}
		if err := g.competitorsFor(tg); err != nil {
			return err
		}
	}
	g.compInstances += len(g.rules) - preComp
	g.recordMarks()
	return nil
}

// smartPrep is smart grounding's sequential prologue, shared with the
// sharded parallel path: store and incremental-state setup, the $dom fill,
// rule encoding and the possible-atom Datalog fixpoint. Running it
// single-threaded in both modes also pins the term-id assignment order, so
// the shard of any atom (first-argument term id mod shard count) is
// deterministic run-to-run even when the later passes intern in parallel.
func (g *grounder) smartPrep() error {
	// The store shares the atom table's term table, so a term interned while
	// filling relations is the same id the instantiation pass sees.
	g.st = storage.NewStoreWith(g.tab.TermTable())
	g.extra = make(map[int][]*ast.Rule)
	g.hasFunctors = len(g.src.Functors()) > 0
	g.uniFallback = len(g.src.Constants()) == 0 && len(g.uni) > 0
	g.constRefs = make(map[string]int)
	for _, c := range g.src.Components {
		for _, r := range c.Rules {
			g.addConstRefs(r, 1)
		}
	}
	domRel := g.st.Rel(domKey)
	for _, t := range g.uni {
		domRel.Insert([]ast.Term{t})
	}

	var dl []*datalog.Rule
	for ci, c := range g.src.Components {
		for _, r := range c.Rules {
			// Goal-directed slicing: rules whose head predicate the goal
			// never demands are dropped outright, and rules defining a
			// magic-restricted predicate get the demand guard prepended to
			// their encoded body — both the possible-atom fixpoint and the
			// fireable join then only explore magic-reachable bindings. The
			// competitor pass is untouched: it enumerates over the full
			// universe per target, and its possible-atom joins only read
			// EDB-exempt (never restricted) relations.
			if g.rel != nil && !g.rel.RuleDemanded(r) {
				g.skippedRules++
				continue
			}
			sr := encodeRule(ci, r)
			if g.rel != nil {
				if guard, ok := g.rel.GuardLit(r.Head); ok {
					sr.body = append([]datalog.Lit{guard}, sr.body...)
				}
			}
			dl = append(dl, &datalog.Rule{
				Head:     datalog.Lit{Key: encKey(r.Head.Atom.Key(), r.Head.Neg), Args: r.Head.Atom.Args},
				Body:     sr.body,
				Builtins: r.Builtins,
			})
			g.dlSrc = append(g.dlSrc, sr)
		}
	}
	if g.rel != nil {
		// Demand propagation rules evaluate together with the guarded
		// possible-atom rules (one semi-naive fixpoint handles the mutual
		// recursion); the goal's seed tuples go straight into the store so
		// round 0 picks them up. Seeding is unconditional — a seed term
		// outside the universe joins nothing, exactly as the full grounding
		// derives nothing for it.
		dl = append(dl, g.rel.Magic...)
		for _, s := range g.rel.Seeds {
			g.st.Rel(s.Key).Insert(s.Args)
		}
	}
	// Keep the possible-atom closure inside the depth-bounded universe:
	// with function symbols a rule like num(s(X)) :- num(X) would
	// otherwise diverge. Universe members were interned when filling $dom,
	// so a term the table has never seen is provably outside the universe
	// and membership is an id probe.
	tt := g.tab.TermTable()
	g.inUniverse = make(map[term.ID]bool, len(g.uni))
	for _, t := range g.uni {
		g.inUniverse[tt.Intern(t)] = true
	}
	if err := g.check("ground: possible-atom fixpoint"); err != nil {
		return err
	}
	if _, err := datalog.Eval(g.st, dl, datalog.Options{MaxDerived: g.opts.MaxAtoms, AtomFilter: g.atomFilter, NoPlanner: g.opts.NoJoinPlanner}); err != nil {
		if err == datalog.ErrBudget {
			return &ErrBudget{"possible-atom", g.opts.MaxAtoms}
		}
		return err
	}
	return nil
}

// prepCompetitors builds the competitor pass's read-only side tables:
// predicate shapes (with factComps), the body-EDB index and the empty
// target maps registerTargets fills.
func (g *grounder) prepCompetitors() {
	g.shapes = g.predShapes()
	g.bodyEDB = make(map[ast.PredKey][]compRule)
	for ci, c := range g.src.Components {
		for _, r := range c.Rules {
			for _, l := range r.Body {
				if !l.Neg {
					g.bodyEDB[l.Atom.Key()] = append(g.bodyEDB[l.Atom.Key()], compRule{comp: ci, r: r})
				}
			}
		}
	}
	g.targets = make(map[interp.Lit]*target)
	g.targetsByPred = make(map[predSign][]*target)
}

// encodeRule builds the datalog encoding of a source rule body: one
// possible-atom literal per body literal plus a $dom literal for every
// variable no body literal binds.
func encodeRule(ci int, r *ast.Rule) srcRule {
	bound := make(map[string]bool)
	body := make([]datalog.Lit, 0, len(r.Body)+2)
	for _, l := range r.Body {
		body = append(body, datalog.Lit{Key: encKey(l.Atom.Key(), l.Neg), Args: l.Atom.Args})
		for _, v := range l.Vars(nil) {
			bound[v.Name] = true
		}
	}
	for _, v := range r.Vars() {
		if !bound[v.Name] {
			bound[v.Name] = true
			body = append(body, datalog.Lit{Key: domKey, Args: []ast.Term{v}})
		}
	}
	return srcRule{comp: ci, r: r, body: body}
}

// atomFilter keeps derived possible atoms inside the current universe.
func (g *grounder) atomFilter(a ast.Atom) bool {
	tt := g.tab.TermTable()
	for _, t := range a.Args {
		id, ok := tt.Lookup(t)
		if !ok || !g.inUniverse[id] {
			return false
		}
	}
	return true
}

// registerTargets folds the instances at index >= from into the target
// index and returns the targets that are new or gained a new owning
// component — exactly the ones whose competitor instantiation must (re)run.
func (g *grounder) registerTargets(from int) []*target {
	var grown []*target
	seen := make(map[*target]bool)
	for i := from; i < len(g.rules); i++ {
		r := &g.rules[i]
		t, ok := g.targets[r.Head]
		if !ok {
			t = &target{atom: g.tab.Atom(r.Head.Atom()), neg: r.Head.Neg(), comps: make(map[int32]bool)}
			g.targets[r.Head] = t
			ps := predSign{key: t.atom.Key(), neg: t.neg}
			g.targetsByPred[ps] = append(g.targetsByPred[ps], t)
		}
		if !t.comps[r.Comp] {
			t.comps[r.Comp] = true
			if !seen[t] {
				seen[t] = true
				grown = append(grown, t)
			}
		}
	}
	return grown
}

// compRules calls fn for every source rule of the component at position ci:
// the parsed rules plus any facts asserted after grounding.
func (g *grounder) compRules(ci int, fn func(*ast.Rule) error) error {
	for _, r := range g.src.Components[ci].Rules {
		if err := fn(r); err != nil {
			return err
		}
	}
	for _, r := range g.extra[ci] {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// emitFn receives each fully bound rule instance the instantiation passes
// produce. The sequential paths pass g.instantiate (dedup + append into the
// shared grounder state); the sharded parallel workers pass their own
// per-worker emit so instance recording needs no locking.
type emitFn func(comp int, r *ast.Rule, s *unify.Subst) error

// competitorsFor instantiates the potential competitors of one target: for
// every component that can overrule or defeat an owner of the target head,
// the head-matched rules with the complementary head. Idempotent — the
// instance dedup absorbs re-runs, which is what lets incremental updates
// re-run it for targets that grew.
func (g *grounder) competitorsFor(tg *target) error {
	return g.competitorsForEmit(tg, g.instantiate)
}

// competitorsForEmit is competitorsFor with an explicit instance sink.
func (g *grounder) competitorsForEmit(tg *target, emit emitFn) error {
	scratch := unify.NewSubst()
	wantKey := tg.atom.Key()
	wantNeg := !tg.neg // competitor head sign
	for ci := range g.src.Components {
		// A rule in component ci can overrule or defeat an instance in
		// component cs iff cs is not strictly below ci.
		relevant := false
		for cs := range tg.comps {
			if !g.src.Less(int(cs), ci) {
				relevant = true
				break
			}
		}
		if !relevant {
			continue
		}
		err := g.compRules(ci, func(r *ast.Rule) error {
			if r.Head.Neg != wantNeg || r.Head.Atom.Key() != wantKey {
				return nil
			}
			mark := scratch.Mark()
			defer scratch.Undo(mark)
			if unify.MatchAtoms(scratch, r.Head.Atom, tg.atom) {
				return g.emitCompetitors(g.st, g.shapes, ci, r, scratch, deltaNone, emit)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// predShape records what the grounder knows about all rules defining one
// predicate, across every component. When a predicate is pure EDB under a
// globally-top closed-world component, competitor instances whose body
// needs a non-fact atom of it are provably blocked in every model — the
// blocking CWA literal is in the least model, which by Theorem 1(b) is
// contained in every model — and can be dropped.
type predShape struct {
	onlyFactPos bool // every positive-head rule is a ground fact
	topCWA      bool // a universal negative fact in a globally-top component
	cwaComp     int
	noOtherNeg  bool // no negative-head rules besides that CWA fact
}

// isUniversalNegFact reports whether r is ¬k(X1,...,Xn) with distinct
// variable arguments and an empty body.
func isUniversalNegFact(r *ast.Rule) bool {
	if !r.Head.Neg || !r.IsFact() {
		return false
	}
	seen := make(map[string]bool)
	for _, t := range r.Head.Atom.Args {
		v, ok := t.(ast.Var)
		if !ok || seen[v.Name] {
			return false
		}
		seen[v.Name] = true
	}
	return true
}

// topComponent returns the position of the component strictly above every
// other one, or -1.
func (g *grounder) topComponent() int {
	n := len(g.src.Components)
	if n == 1 {
		return -1
	}
	for cf := 0; cf < n; cf++ {
		ok := true
		for ci := 0; ci < n; ci++ {
			if ci != cf && !g.src.Less(ci, cf) {
				ok = false
				break
			}
		}
		if ok {
			return cf
		}
	}
	return -1
}

func (g *grounder) predShapes() map[ast.PredKey]*predShape {
	shapes := make(map[ast.PredKey]*predShape)
	get := func(k ast.PredKey) *predShape {
		s, ok := shapes[k]
		if !ok {
			s = &predShape{onlyFactPos: true, noOtherNeg: true, cwaComp: -1}
			shapes[k] = s
		}
		return s
	}
	top := g.topComponent()
	g.factComps = make(map[string][]int)
	for ci, c := range g.src.Components {
		for _, r := range c.Rules {
			k := r.Head.Atom.Key()
			s := get(k)
			if r.Head.Neg {
				if ci == top && isUniversalNegFact(r) {
					s.topCWA = true
					s.cwaComp = ci
				} else {
					s.noOtherNeg = false
				}
			} else if !r.IsFact() || !r.Head.Atom.Ground() {
				s.onlyFactPos = false
			} else {
				fk := g.factKey(r.Head.Atom)
				g.factComps[fk] = append(g.factComps[fk], ci)
			}
		}
	}
	return shapes
}

// edbShape returns the predicate's shape when the EDB/CWA competitor
// simplification applies to it, nil otherwise.
func (g *grounder) edbShape(k ast.PredKey) *predShape {
	if g.opts.NoEDBSimplify {
		return nil
	}
	sh := g.shapes[k]
	if sh != nil && sh.onlyFactPos && sh.topCWA {
		return sh
	}
	return nil
}

// deltaRestrict restricts one emitCompetitors join to the delta of a fact
// relation: only substitutions binding at least one tuple of key at index
// >= lo are enumerated. deltaNone means no restriction (full join).
type deltaRestrict struct {
	key ast.PredKey
	lo  int
	pos int // which occurrence of key in the join (0-based) scans the delta
}

var deltaNone = deltaRestrict{pos: -1}

// emitCompetitors instantiates the bodies of a head-matched competitor
// rule. Positive body literals of EDB-with-CWA predicates join against the
// facts (non-fact bindings are provably blocked); all other variables
// range over the universe; instances satisfying a negative literal on a
// fact of an EDB-with-CWA predicate in a visible-from-everywhere component
// are dropped (provably blocked as well).
func (g *grounder) emitCompetitors(st *storage.Store, shapes map[ast.PredKey]*predShape, comp int, r *ast.Rule, s *unify.Subst, delta deltaRestrict, emit emitFn) error {
	// Join items: positive EDB literals bind from the fact relation, joined
	// in planner order.
	var joinLits []storage.JoinLit
	first := -1
	nth := 0
	for _, l := range r.Body {
		if !l.Neg && g.edbShapeOf(shapes, l.Atom.Key()) != nil {
			jl := storage.JoinLit{Rel: st.Peek(encKey(l.Atom.Key(), false)), Args: l.Atom.Args}
			if delta.pos >= 0 && l.Atom.Key() == delta.key {
				if nth == delta.pos {
					jl.Lo = delta.lo
					first = len(joinLits)
				}
				nth++
			}
			joinLits = append(joinLits, jl)
		}
	}
	if delta.pos >= 0 && first < 0 {
		return nil // requested delta occurrence does not exist
	}
	return storage.Join(s, joinLits, first, !g.opts.NoJoinPlanner, func() error {
		// Remaining variables range over the universe.
		var free []ast.Var
		for _, v := range r.Vars() {
			if _, isVar := s.Walk(v).(ast.Var); isVar {
				free = append(free, v)
			}
		}
		return g.enumerateFiltered(st, shapes, comp, r, s, free, emit)
	})
}

// edbShapeOf is edbShape over an explicit shape map (the base pass passes
// the map it is still building).
func (g *grounder) edbShapeOf(shapes map[ast.PredKey]*predShape, k ast.PredKey) *predShape {
	if g.opts.NoEDBSimplify {
		return nil
	}
	sh := shapes[k]
	if sh != nil && sh.onlyFactPos && sh.topCWA {
		return sh
	}
	return nil
}

// enumerateFiltered binds free variables over the universe and emits
// instances, dropping those provably blocked in every model through a
// satisfied negative literal on an everywhere-visible EDB fact.
func (g *grounder) enumerateFiltered(st *storage.Store, shapes map[ast.PredKey]*predShape, comp int, r *ast.Rule, s *unify.Subst, free []ast.Var, emit emitFn) error {
	emit1 := func() error {
		for _, l := range r.Body {
			if !l.Neg || g.opts.NoEDBSimplify {
				continue
			}
			sh := shapes[l.Atom.Key()]
			if sh == nil || !sh.onlyFactPos || !sh.topCWA || !sh.noOtherNeg {
				continue
			}
			atom := s.ApplyAtom(l.Atom)
			if !atom.Ground() {
				continue
			}
			if g.blockedByVisibleFact(atom, comp, sh) {
				return nil
			}
		}
		return emit(comp, r, s)
	}
	if len(free) == 0 {
		return emit1()
	}
	if len(g.uni) == 0 {
		return nil
	}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(free) {
			return emit1()
		}
		for _, t := range g.uni {
			mark := s.Mark()
			s.Bind(free[i], t)
			if err := rec(i + 1); err != nil {
				return err
			}
			s.Undo(mark)
		}
		return nil
	}
	return rec(0)
}

// blockedByVisibleFact reports whether atom is a ground fact of its
// EDB-with-CWA predicate in a component cb with comp <= cb < cwa — in
// which case the fact is visible and undefeated in every view that sees
// the competitor instance, so a negative literal on it blocks the instance
// in every model. Lookup-only with a stack key buffer: the sharded
// competitor workers call this concurrently, so it must not touch the
// grounder's shared keyBuf scratch or intern anything.
func (g *grounder) blockedByVisibleFact(atom ast.Atom, comp int, sh *predShape) bool {
	tt := g.tab.TermTable()
	var kb [64]byte
	buf := kb[:0]
	id, ok := tt.LookupSym(atom.Pred)
	if !ok {
		return false // predicate symbol never interned: atom equals no fact head
	}
	buf = term.AppendID(buf, id)
	for _, t := range atom.Args {
		tid, ok := tt.Lookup(t)
		if !ok {
			return false // some subterm was never interned: atom equals no fact head
		}
		buf = term.AppendID(buf, tid)
	}
	fk := string(buf)
	for _, cb := range g.factComps[fk] {
		if cb == sh.cwaComp {
			continue
		}
		if cb != comp && !g.src.Less(comp, cb) {
			continue
		}
		if g.src.Less(cb, sh.cwaComp) {
			return true
		}
	}
	return false
}

// joinInstantiate enumerates the substitutions satisfying the encoded body
// over the possible-atom store and emits the corresponding instances. The
// join order is chosen by the shared selectivity planner.
func (g *grounder) joinInstantiate(st *storage.Store, comp int, r *ast.Rule, body []datalog.Lit) error {
	return g.joinInstantiateEmit(st, comp, r, body, 0, 1, g.instantiate)
}

// joinInstantiateEmit is joinInstantiate restricted to one shard of the
// join enumeration (storage.JoinSharded on the driving literal's tuples)
// with an explicit instance sink; shard 0 of 1 is the full sequential
// enumeration.
func (g *grounder) joinInstantiateEmit(st *storage.Store, comp int, r *ast.Rule, body []datalog.Lit, shard, nShards int, emit emitFn) error {
	s := unify.NewSubst()
	lits := make([]storage.JoinLit, len(body))
	for i, l := range body {
		lits[i] = storage.JoinLit{Rel: st.Peek(l.Key), Args: l.Args}
	}
	return storage.JoinSharded(s, lits, -1, !g.opts.NoJoinPlanner, shard, nShards, func() error {
		return emit(comp, r, s)
	})
}

// recordMarks snapshots every relation's size: the next delta pass treats
// tuples inserted after this point as its delta.
func (g *grounder) recordMarks() {
	if g.marks == nil {
		g.marks = make(map[ast.PredKey]int)
	}
	for _, k := range g.st.Keys() {
		g.marks[k] = g.st.Peek(k).Len()
	}
}

// enumerate binds the free variables over the universe and emits each
// resulting instance.
func (g *grounder) enumerate(comp int, r *ast.Rule, s *unify.Subst, free []ast.Var) error {
	if len(free) == 0 {
		return g.instantiate(comp, r, s)
	}
	if len(g.uni) == 0 {
		return nil
	}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(free) {
			return g.instantiate(comp, r, s)
		}
		for _, t := range g.uni {
			mark := s.Mark()
			s.Bind(free[i], t)
			if err := rec(i + 1); err != nil {
				return err
			}
			s.Undo(mark)
		}
		return nil
	}
	return rec(0)
}
