package ground

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func parse(t *testing.T, src string) *ast.OrderedProgram {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUniverseConstantsOnly(t *testing.T) {
	p := parse(t, "p(a, 2).\nq(b) :- p(b, X).\n")
	u, err := Universe(p, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := termStrings(u); got != "2 a b" {
		t.Errorf("universe = %q, want \"2 a b\"", got)
	}
}

func termStrings(ts []ast.Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

func TestUniverseEmptyProgram(t *testing.T) {
	p := parse(t, "p :- q.\n")
	u, err := Universe(p, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 0 {
		t.Errorf("propositional program universe = %v, want empty", u)
	}
}

func TestUniverseFreshConstant(t *testing.T) {
	// Variables but no constants: the conventional u0 keeps it non-empty.
	p := parse(t, "p(X) :- q(X).\n")
	u, err := Universe(p, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if termStrings(u) != "u0" {
		t.Errorf("universe = %v, want [u0]", u)
	}
}

func TestUniverseFunctors(t *testing.T) {
	p := parse(t, "p(f(a)).\n")
	// Default depth: the deepest program term (1), so f(a) and f(f(a))
	// is NOT constructible but f(a) is.
	u, err := Universe(p, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := termStrings(u); got != "a f(a)" {
		t.Errorf("universe depth default = %q", got)
	}
	u2, err := Universe(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := termStrings(u2); got != "a f(a) f(f(a))" {
		t.Errorf("universe depth 2 = %q", got)
	}
	// Depth 0 keeps constants only.
	u0, err := Universe(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := termStrings(u0); got != "a" {
		t.Errorf("universe depth 0 = %q", got)
	}
}

func TestUniverseBinaryFunctor(t *testing.T) {
	p := parse(t, "p(g(a, b)).\n")
	u, err := Universe(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// a, b and the four depth-1 terms g(x,y).
	if len(u) != 6 {
		t.Errorf("universe = %v, want 6 terms", u)
	}
}

func TestUniverseBudget(t *testing.T) {
	p := parse(t, "p(g(a, b)).\n")
	if _, err := Universe(p, 3, 10); err == nil {
		t.Error("budget not enforced")
	} else if _, ok := err.(*ErrBudget); !ok {
		t.Errorf("error type %T", err)
	}
}

func TestGroundPropositional(t *testing.T) {
	p := parse(t, "a.\nb :- a, -c.\n")
	for _, mode := range []Mode{ModeSmart, ModeFull} {
		opts := DefaultOptions()
		opts.Mode = mode
		g, err := Ground(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := 2
		if mode == ModeSmart {
			// -c is underivable (no negative rules at all), so the rule
			// b :- a, -c can never fire, competes with nothing, and is
			// correctly dropped as semantically inert.
			want = 1
		} else if g.Tab.Len() != 3 {
			t.Errorf("full mode interned %d atoms, want 3", g.Tab.Len())
		}
		if len(g.Rules) != want {
			t.Errorf("mode %v: %d rules, want %d", mode, len(g.Rules), want)
		}
	}
}

func TestGroundInstantiation(t *testing.T) {
	p := parse(t, "bird(tweety).\nbird(sam).\nfly(X) :- bird(X).\n")
	opts := DefaultOptions()
	opts.Mode = ModeFull
	g, err := Ground(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 2 facts + 2 instances of the rule.
	if len(g.Rules) != 4 {
		t.Errorf("%d ground rules, want 4", len(g.Rules))
	}
	// Full Herbrand base: bird and fly over 2 constants.
	if g.Tab.Len() != 4 {
		t.Errorf("%d atoms, want 4", g.Tab.Len())
	}
}

func TestGroundBuiltinsFilter(t *testing.T) {
	p := parse(t, "n(1). n(2). n(3).\nbig(X) :- n(X), X > 1.\n")
	g, err := Ground(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := range g.Rules {
		if g.Tab.Atom(g.Rules[i].Head.Atom()).Pred == "big" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("big instances = %d, want 2", count)
	}
}

func TestGroundDedupAcrossComponents(t *testing.T) {
	// The same rule in two components yields two distinct instances
	// (the paper treats them as distinct); within one component it is
	// deduplicated.
	p := parse(t, `
module a { p. p. }
module b { p. }
order a < b.
`)
	g, err := Ground(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rules) != 2 {
		t.Errorf("%d instances, want 2 (one per component)", len(g.Rules))
	}
}

func TestGroundInstanceBudget(t *testing.T) {
	p := parse(t, "e(a, b). e(b, c). e(c, d).\ntc(X, Y) :- e(X, Y).\ntc(X, Y) :- e(X, Z), tc(Z, Y).\n")
	opts := DefaultOptions()
	opts.Mode = ModeFull
	opts.MaxInstances = 5
	if _, err := Ground(p, opts); err == nil {
		t.Error("instance budget not enforced")
	}
}

func TestRuleString(t *testing.T) {
	p := parse(t, "bird(tweety).\nfly(tweety) :- bird(tweety).\n")
	g, err := Ground(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var rule *Rule
	for i := range g.Rules {
		if len(g.Rules[i].Body) > 0 {
			rule = &g.Rules[i]
		}
	}
	if rule == nil {
		t.Fatal("rule instance missing")
	}
	if got := g.RuleString(rule); got != "fly(tweety) :- bird(tweety)." {
		t.Errorf("RuleString = %q", got)
	}
}

func TestSmartKeepsNeverFireableCompetitors(t *testing.T) {
	// The defining subtlety of ordered grounding: the rule -p :- q can
	// never fire (q is underivable) but permanently defeats the fact p,
	// so it must be retained.
	p := parse(t, "p.\n-p :- q.\n")
	g, err := Ground(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rules) != 2 {
		t.Fatalf("smart grounding kept %d rules, want 2", len(g.Rules))
	}
}

func TestSmartEDBSimplification(t *testing.T) {
	// OV-shaped program: anc's recursive competitor instances must join
	// parent against the facts instead of the whole universe.
	p := parse(t, `
module cwa {
  -parent(X1, X2).
  -anc(X1, X2).
}
module c {
  parent(a, b). parent(b, c).
  anc(X, Y) :- parent(X, Y).
  anc(X, Y) :- parent(X, Z), anc(Z, Y).
}
order c < cwa.
`)
	g, err := Ground(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Without the simplification the recursive rule alone would have
	// n^3 = 27 instances; with it, only parent-fact-supported ones.
	recursive := 0
	for i := range g.Rules {
		if len(g.Rules[i].Body) == 2 {
			recursive++
		}
	}
	if recursive > 6 {
		t.Errorf("recursive instances = %d; EDB simplification not applied", recursive)
	}
	// And the CWA facts still cover the full base of both predicates.
	cwaFacts := 0
	for i := range g.Rules {
		if g.Rules[i].Head.Neg() && len(g.Rules[i].Body) == 0 {
			cwaFacts++
		}
	}
	if cwaFacts != 18 {
		t.Errorf("CWA instances = %d, want 18 (2 preds x 9)", cwaFacts)
	}
}

func TestTopComponentDetection(t *testing.T) {
	p := parse(t, `
module a { x. }
module b { y. }
module top { z. }
order a < top.
order b < top.
`)
	g := &grounder{src: p}
	ti, ok := p.ComponentIndex("top")
	if !ok {
		t.Fatal("missing top")
	}
	if got := g.topComponent(); got != ti {
		t.Errorf("topComponent = %d, want %d", got, ti)
	}
	// No unique top when two maximal components exist.
	q := parse(t, `
module a { x. }
module b { y. }
`)
	g2 := &grounder{src: q}
	if got := g2.topComponent(); got != -1 {
		t.Errorf("topComponent = %d, want -1", got)
	}
}

func TestIsUniversalNegFact(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"-p(X1, X2).", true},
		{"-p.", true},
		{"-p(X, X).", false}, // repeated variable: diagonal only
		{"-p(a, X).", false}, // constant argument
		{"-p(X) :- q(X).", false},
		{"p(X1).", false}, // positive
	}
	for _, c := range cases {
		r, err := parser.ParseRule(c.src)
		if err != nil {
			t.Fatal(err)
		}
		if got := isUniversalNegFact(r); got != c.want {
			t.Errorf("isUniversalNegFact(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}
