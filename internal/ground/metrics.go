package ground

import "repro/internal/obs"

// Grounding metrics, resolved once from the process-global registry. Hot
// paths never touch these: counts accumulate in the grounder (or in
// locals) and flush with a handful of atomic adds when a grounding run or
// delta update completes, gated on obs.On().
var (
	mGroundRuns        = obs.Default().Counter("ground.runs")
	mGroundInstances   = obs.Default().Counter("ground.instances")
	mCompetitorClosure = obs.Default().Counter("ground.competitor_instances")
	mDeltaAsserts      = obs.Default().Counter("ground.delta.asserts")
	mDeltaAssertInst   = obs.Default().Counter("ground.delta.assert_instances")
	mDeltaRetracts     = obs.Default().Counter("ground.delta.retracts")
	mDeltaRetractInst  = obs.Default().Counter("ground.delta.retract_instances")
)
