package ground

import "repro/internal/obs"

// Grounding metrics, resolved once from the process-global registry. Hot
// paths never touch these: counts accumulate in the grounder (or in
// locals) and flush with a handful of atomic adds when a grounding run or
// delta update completes, gated on obs.On().
var (
	mGroundRuns        = obs.Default().Counter("ground.runs")
	mGroundInstances   = obs.Default().Counter("ground.instances")
	mCompetitorClosure = obs.Default().Counter("ground.competitor_instances")
	mDeltaAsserts      = obs.Default().Counter("ground.delta.asserts")
	mDeltaAssertInst   = obs.Default().Counter("ground.delta.assert_instances")
	mDeltaRetracts     = obs.Default().Counter("ground.delta.retracts")
	mDeltaRetractInst  = obs.Default().Counter("ground.delta.retract_instances")

	// Sharded-grounding families, mirroring the eval.shard.* ones. The
	// per-shard instance counters (ground.shard.instances.N) are resolved
	// by name at flush time, once per parallel run. ground.shard.skew is
	// 100 * max(instances) / mean(instances) over the shards of the latest
	// run (100 = balanced, shards*100 = everything on one shard);
	// ground.shard.xfer counts instances a worker emitted into a shard
	// buffer other than its own — work that crossed shards at merge time.
	mGroundShardRuns = obs.Default().Counter("ground.shard.runs")
	mGroundShardXfer = obs.Default().Counter("ground.shard.xfer")
	mGroundShardSkew = obs.Default().Gauge("ground.shard.skew")

	// Goal-directed (magic-set) grounding family, flushed once per sliced
	// run: seed tuples inserted, predicates demanded/magic-restricted by
	// the relevance analysis, and source rules the slicing skipped.
	mMagicRuns       = obs.Default().Counter("ground.magic.runs")
	mMagicSeeds      = obs.Default().Counter("ground.magic.seeds")
	mMagicDemanded   = obs.Default().Counter("ground.magic.demanded_preds")
	mMagicRestricted = obs.Default().Counter("ground.magic.restricted_preds")
	mMagicSkipped    = obs.Default().Counter("ground.magic.skipped_rules")
)
