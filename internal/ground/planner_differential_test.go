// Differential tests pinning the selectivity-driven join planner to its
// source-order ablation: planning changes join cost, never join results.
// The population mirrors internal/eval's differential suite (random
// propositional, random non-ground Datalog, inheritance hierarchies) so
// both grounding joins and the possible-atom fixpoint are exercised on the
// same ~200 seeded programs. Models are compared by canonical string —
// different grounding runs assign different atom ids, so id-level
// comparison would be meaningless.
package ground_test

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/workload"
)

// plannerPrograms yields ≥200 seeded programs mixing every random workload
// family plus deterministic inheritance hierarchies.
func plannerPrograms(t *testing.T) []*ast.OrderedProgram {
	t.Helper()
	var progs []*ast.OrderedProgram
	// 80 random propositional ordered programs.
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		progs = append(progs, workload.RandomOrdered(rng, 1+rng.Intn(4), workload.RandomConfig{
			Atoms: 3 + rng.Intn(5), Rules: 5 + rng.Intn(10), MaxBody: 3,
			NegHeads: true, NegBody: true,
		}))
	}
	// 80 random non-ground ordered Datalog programs.
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed + 1_000))
		progs = append(progs, workload.RandomOrderedDatalog(rng, 1+rng.Intn(3), 2+rng.Intn(3)))
	}
	// 48 inheritance hierarchies sweeping depth, properties and members.
	for depth := 1; depth <= 4; depth++ {
		for props := 1; props <= 4; props++ {
			for members := 1; members <= 3; members++ {
				progs = append(progs, workload.Inheritance(depth, props, members))
			}
		}
	}
	if len(progs) < 200 {
		t.Fatalf("planner differential population too small: %d < 200", len(progs))
	}
	return progs
}

// leastModelStrings grounds p under opts and returns the canonical least
// model of every component, in component order.
func leastModelStrings(t *testing.T, p *ast.OrderedProgram, opts ground.Options) []string {
	t.Helper()
	g, err := ground.Ground(p, opts)
	if err != nil {
		t.Fatalf("ground: %v", err)
	}
	out := make([]string, len(p.Components))
	for ci := range p.Components {
		m, err := eval.NewView(g, ci).LeastModel()
		if err != nil {
			t.Fatalf("comp %d: least model: %v", ci, err)
		}
		out[ci] = m.String()
	}
	return out
}

// TestDifferentialJoinPlanner: on every seeded program, grounding with the
// join planner enabled and disabled yields identical least models in every
// component. The planner reorders joins in the possible-atom fixpoint, the
// fireable pass and the competitor pass; none of that may change the ground
// program's semantics.
func TestDifferentialJoinPlanner(t *testing.T) {
	for pi, p := range plannerPrograms(t) {
		on := leastModelStrings(t, p, ground.DefaultOptions())
		offOpts := ground.DefaultOptions()
		offOpts.NoJoinPlanner = true
		off := leastModelStrings(t, p, offOpts)
		for ci := range on {
			if on[ci] != off[ci] {
				t.Fatalf("program %d comp %d: planner on %s != planner off %s\nprogram:\n%s",
					pi, ci, on[ci], off[ci], p)
			}
		}
	}
}

// TestJoinPlannerOrderInsensitivity: shuffling the body-literal order of
// every rule leaves the least model of every component unchanged. Because
// the planner orders joins by boundness and relation size rather than
// source position, this holds with the planner on; it must also hold with
// the planner off, since body order never carries meaning in the language.
func TestJoinPlannerOrderInsensitivity(t *testing.T) {
	offOpts := ground.DefaultOptions()
	offOpts.NoJoinPlanner = true
	for pi, p := range plannerPrograms(t) {
		want := leastModelStrings(t, p, ground.DefaultOptions())
		for shuffle := int64(0); shuffle < 3; shuffle++ {
			rng := rand.New(rand.NewSource(int64(pi)*10 + shuffle))
			for _, c := range p.Components {
				for _, r := range c.Rules {
					rng.Shuffle(len(r.Body), func(i, j int) {
						r.Body[i], r.Body[j] = r.Body[j], r.Body[i]
					})
				}
			}
			if got := leastModelStrings(t, p, ground.DefaultOptions()); !equalStrings(got, want) {
				t.Fatalf("program %d shuffle %d: planner-on models changed under body reorder\ngot  %v\nwant %v\nprogram:\n%s",
					pi, shuffle, got, want, p)
			}
			if got := leastModelStrings(t, p, offOpts); !equalStrings(got, want) {
				t.Fatalf("program %d shuffle %d: planner-off models changed under body reorder\ngot  %v\nwant %v\nprogram:\n%s",
					pi, shuffle, got, want, p)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
