// Sharded parallel smart grounding.
//
// The sequential smart pass has two embarrassingly parallel stages sitting
// between sequential bookends: the fireable pass enumerates join
// substitutions per encoded rule, and the competitor pass instantiates
// head-matched competitors per target. smartParallel runs both on n
// workers. Work is partitioned so no two workers can race on grounder
// state:
//
//   - The fireable pass is split by join shard: worker i runs every
//     encoded rule through storage.JoinSharded with shard i, which
//     enumerates exactly the substitutions whose driving-literal tuple
//     hashes (first-column term id mod n) to i. The shards partition the
//     sequential enumeration.
//   - The competitor pass is split by target: worker i handles the
//     targets at positions i, i+n, i+2n, ... of the registration order.
//
// Workers share the atom and term tables (mutex-guarded interning, see
// interp.Table and term.Table) and read-only grounder state (possible-atom
// store, shapes, factComps, universe); everything mutable — emission
// counters, dedup scratch, instance buffers — lives on the per-worker
// pworker. Each retained instance lands in the buffer of its head atom's
// shard (interp.Table.ShardKey mod n, the same partition sharded
// evaluation uses). A sequential merge then folds the buffers into
// g.seen/g.rules in a deterministic order — shards ascending, workers
// ascending within a shard, emission order within a worker — so the
// retained instance SET equals the sequential pass's for every program;
// only the append order differs, which no semantics consumer observes
// (models, statuses and dumps are order-independent).
//
// Budgets: workers check MaxAtoms against the shared table as they go and
// bound total buffered instances with a shared valve at twice MaxInstances
// (local dedup cannot see cross-worker duplicates, so the pre-merge count
// over-approximates); the merge re-applies the exact MaxAtoms/MaxInstances
// checks the sequential pass enforces.
package ground

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/interrupt"
	"repro/internal/obs"
	"repro/internal/term"
	"repro/internal/unify"
)

// shardOf maps a shard key (interp.Table.ShardKey) to a shard in [0, n).
func shardOf(k term.ID, n int) int {
	s := int(k) % n
	if s < 0 {
		s += n
	}
	return s
}

// instanceKey packs the dedup key of a ground instance: component, head
// and body literals as little-endian int32s. Shared by the sequential
// instantiate, the worker emit and the merge, so all three agree on
// instance identity.
func instanceKey(b []byte, comp int, head interp.Lit, body []interp.Lit) []byte {
	b = appendInt32(b, int32(comp))
	b = appendInt32(b, int32(head))
	for _, l := range body {
		b = appendInt32(b, int32(l))
	}
	return b
}

// pworker is one sharded grounding worker: a private instance sink with
// its own dedup map, dedup-key scratch and emission counter, so the shared
// grounder is never written from a worker goroutine.
type pworker struct {
	g   *grounder
	id  int
	n   int
	ctx context.Context

	out     [][]Rule        // per destination shard, in emission order
	local   map[string]bool // instances this worker already buffered
	keyBuf  []byte
	emitted int
	xfer    int64         // instances buffered for a shard other than w.id
	total   *atomic.Int64 // shared pre-merge instance valve
}

// emit is the worker-side instantiate: identical builtin evaluation,
// interning and dedup-key packing, but recording into the worker's own
// buffers. Cross-worker duplicates are left for the merge to drop; the
// probe of g.seen still filters instances already retained before the
// parallel stage started (g.seen is read-only while workers run).
func (w *pworker) emit(comp int, r *ast.Rule, s *unify.Subst) error {
	w.emitted++
	if w.emitted%256 == 0 {
		if err := interrupt.Check(w.ctx, "ground: instance emission"); err != nil {
			return err
		}
	}
	g := w.g
	for _, b := range r.Builtins {
		gb := ast.Builtin{Op: b.Op, L: substExpr(s, b.L), R: substExpr(s, b.R)}
		holds, ok := ast.EvalBuiltin(gb)
		if !ok || !holds {
			return nil
		}
	}
	headAtom := s.ApplyAtom(r.Head.Atom)
	if !headAtom.Ground() {
		return fmt.Errorf("ground: internal error: non-ground head %s of %s", headAtom, r)
	}
	head := interp.MkLit(g.tab.Intern(headAtom), r.Head.Neg)
	var body []interp.Lit
	if len(r.Body) > 0 {
		body = make([]interp.Lit, len(r.Body))
		for i, l := range r.Body {
			a := s.ApplyAtom(l.Atom)
			if !a.Ground() {
				return fmt.Errorf("ground: internal error: non-ground body atom %s of %s", a, r)
			}
			body[i] = interp.MkLit(g.tab.Intern(a), l.Neg)
		}
	}
	w.keyBuf = instanceKey(w.keyBuf[:0], comp, head, body)
	key := string(w.keyBuf)
	if w.local[key] {
		return nil
	}
	if _, dup := g.seen[key]; dup {
		return nil
	}
	w.local[key] = true
	shard := shardOf(g.tab.ShardKey(head.Atom()), w.n)
	if shard != w.id {
		w.xfer++
	}
	w.out[shard] = append(w.out[shard], Rule{Head: head, Body: body, Comp: int32(comp), Src: r})
	if g.tab.Len() > g.opts.MaxAtoms {
		return &ErrBudget{"atom", g.opts.MaxAtoms}
	}
	if w.total.Add(1) > 2*int64(g.opts.MaxInstances)+1024 {
		return &ErrBudget{"instance", g.opts.MaxInstances}
	}
	return nil
}

// runWorkers spawns n workers, runs task on each and waits for all of
// them. The first non-nil error cancels the shared worker context so the
// others stop at their next checkpoint; a non-interrupt error (budget,
// internal) is preferred over the interrupt errors the cancellation
// induces in the rest. On success the workers' emission counts fold into
// the grounder's stride counter and the workers are returned for merging.
func (g *grounder) runWorkers(n int, task func(w *pworker) error) ([]*pworker, error) {
	wctx, cancel := context.WithCancel(g.ctx)
	defer cancel()
	workers := make([]*pworker, n)
	errs := make([]error, n)
	var total atomic.Int64
	total.Store(int64(len(g.rules)))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &pworker{
			g:     g,
			id:    i,
			n:     n,
			ctx:   wctx,
			out:   make([][]Rule, n),
			local: make(map[string]bool),
			total: &total,
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := task(w); err != nil {
				errs[w.id] = err
				cancel()
			}
		}()
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (interrupt.IsInterrupted(firstErr) && !interrupt.IsInterrupted(err)) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for _, w := range workers {
		g.emitted += w.emitted
	}
	return workers, nil
}

// mergeParallel folds the worker buffers into the shared instance list in
// the canonical deterministic order — shard ascending, worker ascending,
// emission order — deduping across workers, then re-applies the exact
// budget checks. Returns the number of instances retained per shard.
func (g *grounder) mergeParallel(workers []*pworker) ([]int64, error) {
	n := len(workers)
	perShard := make([]int64, n)
	for s := 0; s < n; s++ {
		for _, w := range workers {
			for i := range w.out[s] {
				r := &w.out[s][i]
				g.keyBuf = instanceKey(g.keyBuf[:0], int(r.Comp), r.Head, r.Body)
				key := string(g.keyBuf)
				if _, dup := g.seen[key]; dup {
					continue
				}
				g.seen[key] = int32(len(g.rules))
				g.rules = append(g.rules, *r)
				perShard[s]++
			}
		}
	}
	if g.tab.Len() > g.opts.MaxAtoms {
		return nil, &ErrBudget{"atom", g.opts.MaxAtoms}
	}
	if len(g.rules) > g.opts.MaxInstances {
		return nil, &ErrBudget{"instance", g.opts.MaxInstances}
	}
	return perShard, nil
}

// smartParallel is smart grounding with the fireable and competitor passes
// sharded over n workers. The sequential bookends — smartPrep (which also
// pins term-id assignment, making shard keys deterministic),
// registerTargets, the merges and recordMarks — are shared with smart().
func (g *grounder) smartParallel(n int) error {
	if err := g.smartPrep(); err != nil {
		return err
	}

	// Fireable pass: worker i enumerates join shard i of every encoded
	// rule body.
	fw, err := g.runWorkers(n, func(w *pworker) error {
		for _, sr := range g.dlSrc {
			if err := interrupt.Check(w.ctx, "ground: fireable pass"); err != nil {
				return err
			}
			if err := g.joinInstantiateEmit(g.st, sr.comp, sr.r, sr.body, w.id, w.n, w.emit); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fireShard, err := g.mergeParallel(fw)
	if err != nil {
		return err
	}

	// Competitor pass: worker i handles every n-th registered target.
	g.prepCompetitors()
	grown := g.registerTargets(0)
	preComp := len(g.rules)
	cw, err := g.runWorkers(n, func(w *pworker) error {
		for i := w.id; i < len(grown); i += w.n {
			if err := interrupt.Check(w.ctx, "ground: competitor pass"); err != nil {
				return err
			}
			if err := g.competitorsForEmit(grown[i], w.emit); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	compShard, err := g.mergeParallel(cw)
	if err != nil {
		return err
	}
	g.compInstances += len(g.rules) - preComp
	g.recordMarks()

	if obs.On() {
		var xfer, totalInst, maxInst int64
		for i := 0; i < n; i++ {
			inst := fireShard[i] + compShard[i]
			obs.Default().Counter(fmt.Sprintf("ground.shard.instances.%d", i)).Add(inst)
			totalInst += inst
			if inst > maxInst {
				maxInst = inst
			}
		}
		for _, w := range fw {
			xfer += w.xfer
		}
		for _, w := range cw {
			xfer += w.xfer
		}
		skew := int64(100)
		if totalInst > 0 {
			skew = maxInst * int64(n) * 100 / totalInst
		}
		mGroundShardRuns.Inc()
		mGroundShardXfer.Add(xfer)
		mGroundShardSkew.Set(skew)
	}
	return nil
}
