package ground

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// chainProgram builds the right-recursive transitive closure over an
// n-edge chain, one exception component overriding path into the last
// node, and a disconnected junk component of the same shape that a
// goal-directed grounding must not instantiate.
func chainProgram(t *testing.T, n int) *ast.OrderedProgram {
	t.Helper()
	var b strings.Builder
	b.WriteString("module base {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  edge(c%d, c%d).\n", i, i+1)
	}
	b.WriteString("  path(X, Y) :- edge(X, Y).\n")
	b.WriteString("  path(X, Z) :- path(X, Y), edge(Y, Z).\n")
	b.WriteString("}\n")
	fmt.Fprintf(&b, "module exc extends base {\n  -path(X, c%d) :- edge(X, c%d).\n}\n", n, n)
	b.WriteString("module junk {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  jedge(c%d, c%d).\n", i, i+1)
	}
	b.WriteString("  jpath(X, Y) :- jedge(X, Y).\n")
	b.WriteString("  jpath(X, Z) :- jpath(X, Y), jedge(Y, Z).\n")
	b.WriteString("}\n")
	p, err := parser.ParseProgram(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func goalLits(t *testing.T, lits ...string) []ast.Literal {
	t.Helper()
	out := make([]ast.Literal, len(lits))
	for i, s := range lits {
		l, err := parser.ParseLiteral(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = l
	}
	return out
}

func ruleStringSet(gp *Program) map[string]bool {
	set := make(map[string]bool, len(gp.Rules))
	for i := range gp.Rules {
		set[fmt.Sprintf("m%d: %s", gp.Rules[i].Comp, gp.RuleString(&gp.Rules[i]))] = true
	}
	return set
}

// The sliced instance set must be a subset of the full one (slicing never
// invents instances), must still contain the goal cone, and must drop the
// disconnected component and the off-goal path instances entirely.
func TestGoalSliceSubset(t *testing.T) {
	const n = 12
	p := chainProgram(t, n)
	opts := DefaultOptions()
	full, err := Ground(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Goal = goalLits(t, "path(c0, X)")
	sliced, err := Ground(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sliced.sliced || sliced.Incremental() {
		t.Error("sliced program must be marked sliced and non-incremental")
	}
	fullSet, slicedSet := ruleStringSet(full), ruleStringSet(sliced)
	for r := range slicedSet {
		if !fullSet[r] {
			t.Errorf("sliced instance %s not in the full grounding", r)
		}
	}
	if len(sliced.Rules) >= len(full.Rules) {
		t.Errorf("sliced %d instances, full %d: no reduction", len(sliced.Rules), len(full.Rules))
	}
	for r := range slicedSet {
		if strings.Contains(r, "jpath") || strings.Contains(r, "jedge") {
			t.Errorf("disconnected instance survived slicing: %s", r)
		}
	}
	// The whole c0 cone must be present...
	for i := 1; i <= n; i++ {
		want := false
		for r := range slicedSet {
			if strings.Contains(r, fmt.Sprintf("path(c0, c%d)", i)) {
				want = true
				break
			}
		}
		if !want {
			t.Errorf("goal-cone atom path(c0, c%d) missing from the slice", i)
		}
	}
	// ...while off-goal cones (sources other than c0) must not be: the
	// full grounding has the O(n^2) closure, the slice only O(n).
	for r := range slicedSet {
		if strings.Contains(r, "path(c5,") {
			t.Errorf("off-goal instance in slice: %s", r)
		}
	}
}

func TestGoalRequiresSmartMode(t *testing.T) {
	p := chainProgram(t, 3)
	opts := DefaultOptions()
	opts.Mode = ModeFull
	opts.Goal = goalLits(t, "path(c0, X)")
	if _, err := Ground(p, opts); err == nil {
		t.Fatal("ModeFull with a goal must be rejected")
	}
}

func TestGoalSlicedUpdatesReground(t *testing.T) {
	p := chainProgram(t, 3)
	opts := DefaultOptions()
	opts.Goal = goalLits(t, "path(c0, X)")
	gp, err := Ground(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = gp.AssertFacts(context.Background(), 0, goalLits(t, "edge(c0, c2)"))
	if !errors.Is(err, ErrNeedsReground) {
		t.Fatalf("AssertFacts on sliced program: err = %v, want ErrNeedsReground", err)
	}
	if got := RegroundReason(err); got != "goal-sliced" {
		t.Errorf("reground reason = %q, want goal-sliced", got)
	}
	if _, err := gp.RetractFacts(0, goalLits(t, "edge(c0, c1)")); !errors.Is(err, ErrNeedsReground) {
		t.Errorf("RetractFacts on sliced program: err = %v, want ErrNeedsReground", err)
	}
}

// An unrestricted goal (every position free) still prunes disconnected
// components but keeps every demanded instance.
func TestGoalFreeVariableSlice(t *testing.T) {
	p := chainProgram(t, 6)
	opts := DefaultOptions()
	full, err := Ground(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Goal = goalLits(t, "path(X, Y)")
	sliced, err := Ground(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	fullSet, slicedSet := ruleStringSet(full), ruleStringSet(sliced)
	for r := range fullSet {
		if strings.Contains(r, "jpath") || strings.Contains(r, "jedge") {
			continue
		}
		if !slicedSet[r] {
			t.Errorf("free-goal slice dropped connected instance %s", r)
		}
	}
	for r := range slicedSet {
		if !fullSet[r] {
			t.Errorf("sliced instance %s not in the full grounding", r)
		}
	}
}
