package ground_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/stable"
	"repro/internal/transform"
	"repro/internal/workload"
)

// TestEDBSimplificationIsPureOptimisation: disabling the EDB/CWA
// competitor simplification changes instance counts but never the least
// model or the assumption-free family.
func TestEDBSimplificationIsPureOptimisation(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rules := workload.RandomDatalog(rng, 3, 4, 5)
		for _, tr := range []string{"ov", "ev"} {
			p, err := transform.OV("c", rules)
			if tr == "ev" {
				p, err = transform.EV("c", rules)
			}
			if err != nil {
				t.Fatal(err)
			}
			on := ground.DefaultOptions()
			off := ground.DefaultOptions()
			off.NoEDBSimplify = true
			gOn, err := ground.Ground(p, on)
			if err != nil {
				t.Fatal(err)
			}
			gOff, err := ground.Ground(p, off)
			if err != nil {
				t.Fatal(err)
			}
			if len(gOn.Rules) > len(gOff.Rules) {
				t.Errorf("seed %d %s: simplification increased instances (%d > %d)",
					seed, tr, len(gOn.Rules), len(gOff.Rules))
			}
			vOn, err := eval.NewViewByName(gOn, "c")
			if err != nil {
				t.Fatal(err)
			}
			vOff, err := eval.NewViewByName(gOff, "c")
			if err != nil {
				t.Fatal(err)
			}
			lOn, err := vOn.LeastModel()
			if err != nil {
				t.Fatal(err)
			}
			lOff, err := vOff.LeastModel()
			if err != nil {
				t.Fatal(err)
			}
			if lOn.String() != lOff.String() {
				t.Fatalf("seed %d %s: least model changed by ablation:\non:  %s\noff: %s",
					seed, tr, lOn, lOff)
			}
			afOn, err1 := stable.AssumptionFreeModels(vOn, stable.Options{MaxLeaves: 1 << 14})
			afOff, err2 := stable.AssumptionFreeModels(vOff, stable.Options{MaxLeaves: 1 << 14})
			if err1 != nil || err2 != nil {
				continue // search too large; least-model agreement already checked
			}
			names := func(ms []*interp.Interp) []string {
				out := make([]string, len(ms))
				for i, m := range ms {
					out[i] = m.String()
				}
				sort.Strings(out)
				return out
			}
			on_, off_ := names(afOn), names(afOff)
			if len(on_) != len(off_) {
				t.Fatalf("seed %d %s: af family size changed by ablation: %d vs %d",
					seed, tr, len(on_), len(off_))
			}
			for i := range on_ {
				if on_[i] != off_[i] {
					t.Fatalf("seed %d %s: af families differ at %d: %s vs %s",
						seed, tr, i, on_[i], off_[i])
				}
			}
		}
	}
}
