package ground

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/unify"
)

// ErrNeedsReground reports that an incremental update cannot preserve the
// smart-grounding invariants in place and the caller must reground from
// source instead. It is a normal fallback signal, not a failure: negative
// fact assertions, retractions of facts the EDB/CWA simplification
// depended on, universe growth under function symbols, and updates against
// full-mode or poisoned ground programs all take this path.
//
// Fallback errors are returned as *RegroundError values that unwrap to
// this sentinel, so errors.Is(err, ErrNeedsReground) keeps matching while
// the concrete value names the cause.
var ErrNeedsReground = errors.New("ground: update requires regrounding")

// RegroundError is the concrete fallback error: ErrNeedsReground plus the
// reason the incremental path bailed. Reasons are short stable slugs
// ("negative-fact", "compound-args", "new-constant", "edb-retract",
// "universal-fact", "last-constant", "full-mode", "goal-sliced",
// "poisoned") usable as metric labels.
type RegroundError struct{ Reason string }

func (e *RegroundError) Error() string {
	return ErrNeedsReground.Error() + " (" + e.Reason + ")"
}

// Unwrap makes errors.Is(err, ErrNeedsReground) hold.
func (e *RegroundError) Unwrap() error { return ErrNeedsReground }

// needsReground builds the reason-tagged fallback error.
func needsReground(reason string) error { return &RegroundError{Reason: reason} }

// RegroundReason extracts the fallback reason from an update error: the
// RegroundError's reason, "unspecified" for a bare ErrNeedsReground, and
// "" for anything else.
func RegroundReason(err error) string {
	var re *RegroundError
	if errors.As(err, &re) {
		return re.Reason
	}
	if errors.Is(err, ErrNeedsReground) {
		return "unspecified"
	}
	return ""
}

// incrReason names why the program has no usable incremental state.
func (gp *Program) incrReason() error {
	if gp.sliced {
		return needsReground("goal-sliced")
	}
	if gp.inc == nil {
		return needsReground("full-mode")
	}
	return needsReground("poisoned")
}

// Delta describes the effect of one successful in-place update on the
// ground program's append-only rule list.
type Delta struct {
	// OldLen and NewLen delimit the instances this update appended:
	// Rules[OldLen:NewLen] are new. NewLen == len(Rules) afterwards.
	OldLen, NewLen int
	// Existing lists instance indexes < OldLen that this update re-asserted
	// (facts that were present before, possibly retracted by the caller's
	// snapshot and now resurrected). The caller owns liveness bookkeeping,
	// so it decides whether each one changes anything.
	Existing []int32
}

// Incremental reports whether the program retains usable smart-grounding
// state for in-place fact maintenance.
func (gp *Program) Incremental() bool { return gp.inc != nil && !gp.inc.poisoned }

// AssertFacts adds ground positive facts to the component at position comp,
// extending the possible-atom store, the rule instances and the competitor
// closure in place by a delta-driven semi-naive pass. On success Rules has
// grown (append-only) and the returned Delta says by how much.
//
// It returns ErrNeedsReground — with the program unchanged — whenever the
// update cannot be expressed as a sound extension: negative facts (they
// shrink derivability for NAF-free possible atoms is no longer an
// over-approximation argument but a competitor one), compound (functor)
// arguments, or fresh constants when the universe was functor-closed or
// used the no-constant fallback (both make the correct universe differ
// from "old universe plus the new constants").
//
// Concurrency: AssertFacts mutates shared grounder state and must be
// serialised with every other update to the same Program (the engine's
// write lock). Readers holding prefix snapshots of Rules are never
// invalidated, but the Rules and Universe headers themselves are
// republished without reader-side synchronisation — concurrent readers
// must go through a pinned snapshot, not the Program fields.
func (gp *Program) AssertFacts(ctx context.Context, comp int, facts []ast.Literal) (*Delta, error) {
	g := gp.inc
	if g == nil || g.poisoned {
		return nil, gp.incrReason()
	}
	if comp < 0 || comp >= len(gp.Src.Components) {
		return nil, fmt.Errorf("ground: component index %d out of range", comp)
	}
	// Validate before touching anything, so ErrNeedsReground (and invalid
	// input) always leaves the program unchanged.
	tt := g.tab.TermTable()
	var newConsts []ast.Term
	newSeen := make(map[ast.Term]bool)
	for _, f := range facts {
		if !f.Atom.Ground() {
			return nil, fmt.Errorf("ground: assert of non-ground fact %s", f)
		}
		if f.Neg {
			return nil, needsReground("negative-fact")
		}
		for _, t := range f.Atom.Args {
			if _, isCompound := t.(ast.Compound); isCompound {
				return nil, needsReground("compound-args")
			}
			if id, ok := tt.Lookup(t); ok && g.inUniverse[id] {
				continue
			}
			if !newSeen[t] {
				newSeen[t] = true
				newConsts = append(newConsts, t)
			}
		}
	}
	if len(newConsts) > 0 {
		if g.hasFunctors || g.uniFallback {
			// A fresh constant changes the functor closure, or replaces the
			// synthetic u0 fallback constant: old universe + constant is not
			// the universe a rebuild would compute.
			return nil, needsReground("new-constant")
		}
		if len(g.uni)+len(newConsts) > g.opts.MaxUniverse {
			return nil, &ErrBudget{"universe", g.opts.MaxUniverse}
		}
	}

	// Point of no return: from here on an error leaves partial appends in
	// seen/rules, so the incremental state is poisoned and the caller must
	// reground. (The published Program header still describes the pre-update
	// prefix, so existing snapshots stay valid either way.)
	g.ctx = ctx
	defer func() { g.ctx = nil }()
	fail := func(err error) (*Delta, error) {
		g.poisoned = true
		return nil, err
	}

	// marks currently hold the pre-update relation sizes (recordMarks ran at
	// the end of the previous pass); keep a copy for the competitor delta.
	preMarks := make(map[ast.PredKey]int, len(g.marks))
	for k, n := range g.marks {
		preMarks[k] = n
	}

	if len(newConsts) > 0 {
		domRel := g.st.Rel(domKey)
		for _, c := range newConsts {
			g.uni = append(g.uni, c)
			g.inUniverse[tt.Intern(c)] = true
			domRel.Insert([]ast.Term{c})
		}
	}

	d := &Delta{OldLen: len(g.rules)}
	var freshEDB []ast.Atom // genuinely new facts on EDB/CWA-shaped predicates
	done := make(map[string]bool, len(facts))
	for _, f := range facts {
		head := interp.MkLit(g.tab.Intern(f.Atom), false)
		g.keyBuf = appendInt32(g.keyBuf[:0], int32(comp))
		g.keyBuf = appendInt32(g.keyBuf, int32(head))
		key := string(g.keyBuf)
		if done[key] {
			continue
		}
		done[key] = true
		atom := g.tab.Atom(head.Atom()) // canonical copy, detached from caller
		r := ast.Fact(ast.Literal{Atom: atom})
		// The fact re-enters the effective program either way; its constants
		// count again towards the rebuild universe.
		g.addConstRefs(r, 1)
		if idx, dup := g.seen[key]; dup {
			// Already instantiated at some earlier version: resurrection (or
			// no-op) is the caller's liveness decision. The possible-atom
			// store, targets and competitors already account for it; the
			// extra rule returns so competitor passes see the fact source
			// again.
			d.Existing = append(d.Existing, idx)
			g.extra[comp] = append(g.extra[comp], r)
			continue
		}
		g.extra[comp] = append(g.extra[comp], r)
		if err := g.instantiate(comp, r, unify.NewSubst()); err != nil {
			return fail(err)
		}
		g.st.Rel(encKey(atom.Key(), false)).Insert(atom.Args)
		fk := g.factKey(atom)
		g.factComps[fk] = append(g.factComps[fk], comp)
		if g.edbShape(atom.Key()) != nil {
			freshEDB = append(freshEDB, atom)
		}
	}

	if err := g.deltaPass(); err != nil {
		return fail(err)
	}

	// Competitor maintenance. Targets that are new or own a new component
	// rerun their full (idempotent) competitor instantiation. When the
	// universe grew, every free-variable competitor enumeration may have new
	// bindings, so everything reruns; otherwise only EDB-joined competitor
	// bodies can produce new instances for pre-existing targets, and those
	// are covered delta-wise from the genuinely new facts.
	preComp := len(g.rules)
	grown := g.registerTargets(d.OldLen)
	if len(newConsts) > 0 {
		for _, tg := range g.targets {
			if err := g.check("ground: competitor pass"); err != nil {
				return fail(err)
			}
			if err := g.competitorsFor(tg); err != nil {
				return fail(err)
			}
		}
	} else {
		for _, tg := range grown {
			if err := g.check("ground: competitor pass"); err != nil {
				return fail(err)
			}
			if err := g.competitorsFor(tg); err != nil {
				return fail(err)
			}
		}
		if err := g.deltaCompetitors(freshEDB, preMarks); err != nil {
			return fail(err)
		}
	}
	// Competitor-emitted instances are deliberately NOT registered as
	// targets of their own: the base grounding doesn't close that loop
	// either (a competitor instance not found by the fireable pass has an
	// unsatisfiable body, so rules that would compete against it can never
	// change any model), and an incremental update must produce exactly the
	// instance set a rebuild would.
	g.recordMarks()
	gp.Rules = g.rules
	gp.Universe = g.uni
	d.NewLen = len(g.rules)
	if obs.On() {
		mDeltaAsserts.Inc()
		mDeltaAssertInst.Add(int64(d.NewLen - d.OldLen))
		mCompetitorClosure.Add(int64(len(g.rules) - preComp))
	}
	return d, nil
}

// RetractFacts removes ground facts previously asserted in (or parsed
// into) the component at position comp. The ground program itself only
// forgets the fact as a future competitor source; the instances stay in
// Rules (append-only) and the returned indexes tell the caller which
// instances its snapshot must stop treating as live. Facts that were never
// present are silently skipped (their absence is already the desired
// state).
//
// Retraction of a positive fact on a predicate the EDB/CWA competitor
// simplification applied to returns ErrNeedsReground: grounding dropped
// competitor instances it proved blocked by that very fact, so removing it
// could resurrect instances that were never materialised. Facts with
// compound (functor) arguments take the same path, mirroring AssertFacts:
// losing the last occurrence of a functor or of a constant nested inside
// one shrinks the rebuild's functor-closed universe, which the per-constant
// reference counts below do not capture.
func (gp *Program) RetractFacts(comp int, facts []ast.Literal) ([]int32, error) {
	g := gp.inc
	if g == nil || g.poisoned {
		return nil, gp.incrReason()
	}
	if comp < 0 || comp >= len(gp.Src.Components) {
		return nil, fmt.Errorf("ground: component index %d out of range", comp)
	}
	// Validate and collect first, mutate only once nothing can fail: a
	// fallback must leave the program exactly as it was.
	type hit struct {
		idx int32
		f   ast.Literal
		r   *ast.Rule
	}
	var hits []hit
	dec := make(map[string]int)
	done := make(map[string]bool, len(facts))
	scratch := unify.NewSubst()
	for _, f := range facts {
		if !f.Atom.Ground() {
			return nil, fmt.Errorf("ground: retract of non-ground fact %s", f)
		}
		if !f.Neg && g.edbShape(f.Atom.Key()) != nil {
			// Grounding dropped competitor instances it proved blocked by
			// this very fact; removing it could resurrect instances that
			// were never materialised.
			return nil, needsReground("edb-retract")
		}
		for _, t := range f.Atom.Args {
			if _, isCompound := t.(ast.Compound); isCompound {
				// A compound argument nests constants the top-level dec
				// count below would miss, and removing a functor's last
				// occurrence shrinks the rebuild's functor closure, which
				// constRefs does not track at all.
				return nil, needsReground("compound-args")
			}
		}
		id, ok := g.tab.Lookup(f.Atom)
		if !ok {
			continue // atom never interned: the fact has no instance
		}
		head := interp.MkLit(id, f.Neg)
		g.keyBuf = appendInt32(g.keyBuf[:0], int32(comp))
		g.keyBuf = appendInt32(g.keyBuf, int32(head))
		key := string(g.keyBuf)
		if done[key] {
			continue
		}
		done[key] = true
		idx, present := g.seen[key]
		if !present {
			continue
		}
		// The bodyless instance about to be dead-marked may be pinned by a
		// source rule a rebuild keeps: a universal fact (p(X).) or a
		// builtin-only rule (p(c) :- c < d.) with a matching head would
		// regenerate it, so dead-marking would diverge from the rebuild. Only
		// the ground-equal true fact — which the rebuild removes too — is
		// safe to take in place.
		for _, r := range gp.Src.Components[comp].Rules {
			if len(r.Body) != 0 || r.Head.Neg != f.Neg {
				continue
			}
			if r.IsFact() && r.Head.Atom.Ground() && r.Head.Atom.Equal(f.Atom) {
				continue
			}
			mark := scratch.Mark()
			matched := unify.MatchAtoms(scratch, r.Head.Atom, f.Atom)
			scratch.Undo(mark)
			if matched {
				return nil, needsReground("universal-fact")
			}
		}
		r := ast.Fact(ast.Literal{Neg: f.Neg, Atom: g.tab.Atom(id)})
		hits = append(hits, hit{idx: idx, f: f, r: r})
		// Compound args were rejected above, so the top-level walk covers
		// every constant addConstRefs will decrement for this fact.
		for _, t := range r.Head.Atom.Args {
			switch t.(type) {
			case ast.Sym, ast.Int:
				dec[t.String()]++
			}
		}
	}
	for k, n := range dec {
		if g.constRefs[k]-n <= 0 {
			// Last occurrence of a constant: a rebuild's Herbrand universe
			// would shrink, and with it the $dom enumerations behind both
			// fireable and competitor instances.
			return nil, needsReground("last-constant")
		}
	}
	gone := make([]int32, 0, len(hits))
	for _, h := range hits {
		gone = append(gone, h.idx)
		g.addConstRefs(h.r, -1)
		// Forget the fact as an asserted extra rule so future competitor
		// passes no longer see it as a rule source. (Instances it already
		// caused stay: a competitor instance with an underivable or absent
		// premise is inert, and the seen index keeps resurrection cheap.)
		id, _ := g.tab.Lookup(h.f.Atom)
		ex := g.extra[comp]
		for i, r := range ex {
			if r.Head.Neg == h.f.Neg {
				if hid, ok := g.tab.Lookup(r.Head.Atom); ok && hid == id {
					g.extra[comp] = append(ex[:i], ex[i+1:]...)
					break
				}
			}
		}
	}
	if obs.On() {
		mDeltaRetracts.Inc()
		mDeltaRetractInst.Add(int64(len(gone)))
	}
	return gone, nil
}

// deltaCompetitors re-instantiates, delta-restricted, the competitor rules
// whose EDB-joined body literals gained tuples from genuinely new facts.
// Pre-existing targets (the grown ones already reran in full) can gain
// competitor instances only this way: non-EDB positive body literals and
// free variables were enumerated exhaustively over the (unchanged)
// universe when the target first appeared. One join runs per occurrence of
// the fact's predicate in each rule body, with that occurrence pinned to
// the delta — the standard semi-naive product cover; overlaps dedup.
func (g *grounder) deltaCompetitors(freshEDB []ast.Atom, preMarks map[ast.PredKey]int) error {
	if len(freshEDB) == 0 {
		return nil
	}
	donePred := make(map[ast.PredKey]bool)
	scratch := unify.NewSubst()
	for _, fact := range freshEDB {
		k := fact.Key()
		if donePred[k] {
			continue // the delta join covers every new fact of k at once
		}
		donePred[k] = true
		lo := preMarks[encKey(k, false)]
		for _, cr := range g.bodyEDB[k] {
			// Occurrence count of k among the EDB-joined literals of cr.r.
			occ := 0
			for _, l := range cr.r.Body {
				if !l.Neg && l.Atom.Key() == k && g.edbShape(k) != nil {
					occ++
				}
			}
			if occ == 0 {
				continue
			}
			for _, tg := range g.targetsByPred[predSign{key: cr.r.Head.Atom.Key(), neg: !cr.r.Head.Neg}] {
				relevant := false
				for cs := range tg.comps {
					if !g.src.Less(int(cs), cr.comp) {
						relevant = true
						break
					}
				}
				if !relevant {
					continue
				}
				mark := scratch.Mark()
				if unify.MatchAtoms(scratch, cr.r.Head.Atom, tg.atom) {
					for pos := 0; pos < occ; pos++ {
						if err := g.check("ground: delta competitor pass"); err != nil {
							scratch.Undo(mark)
							return err
						}
						d := deltaRestrict{key: k, lo: lo, pos: pos}
						if err := g.emitCompetitors(g.st, g.shapes, cr.comp, cr.r, scratch, d, g.instantiate); err != nil {
							scratch.Undo(mark)
							return err
						}
					}
				}
				scratch.Undo(mark)
			}
		}
	}
	return nil
}

// deltaPass runs the merged possible-atom/fireable semi-naive rounds over
// the tuples inserted since the last recordMarks: every encoded rule is
// joined once per body position with that position restricted to the
// delta, and each satisfying substitution both derives the head possible
// atom and instantiates the ground rule (the dedup absorbs substitutions
// reachable through several delta positions). Round 0 is skipped — the
// pre-delta store was already at fixpoint and fully instantiated.
func (g *grounder) deltaPass() error {
	derived := 0
	for {
		startSizes := make(map[ast.PredKey]int)
		for _, k := range g.st.Keys() {
			startSizes[k] = g.st.Peek(k).Len()
		}
		newThisRound := 0
		for _, sr := range g.dlSrc {
			if err := g.check("ground: delta fixpoint"); err != nil {
				return err
			}
			for i := range sr.body {
				n, err := g.evalDeltaRule(sr, i)
				if err != nil {
					return err
				}
				newThisRound += n
				derived += n
				if g.opts.MaxAtoms > 0 && derived > g.opts.MaxAtoms {
					return &ErrBudget{"possible-atom", g.opts.MaxAtoms}
				}
			}
		}
		for k, n := range startSizes {
			g.marks[k] = n
		}
		if newThisRound == 0 {
			return nil
		}
	}
}

// evalDeltaRule joins one encoded rule body with position deltaPos
// restricted to its relation's delta, instantiating the source rule and
// inserting the head possible atom for every satisfying substitution. It
// returns the number of new possible-atom tuples.
func (g *grounder) evalDeltaRule(sr srcRule, deltaPos int) (int, error) {
	s := unify.NewSubst()
	jls := make([]storage.JoinLit, len(sr.body))
	for i, l := range sr.body {
		jls[i] = storage.JoinLit{Rel: g.st.Peek(l.Key), Args: l.Args}
		if i == deltaPos {
			rel := jls[i].Rel
			if rel == nil || rel.Len() <= g.marks[l.Key] {
				return 0, nil // empty delta: nothing new can bind here
			}
			jls[i].Lo = g.marks[l.Key]
		}
	}
	inserted := 0
	headKey := encKey(sr.r.Head.Atom.Key(), sr.r.Head.Neg)
	err := storage.Join(s, jls, deltaPos, !g.opts.NoJoinPlanner, func() error {
		for _, b := range sr.r.Builtins {
			gb := ast.Builtin{Op: b.Op, L: substExpr(s, b.L), R: substExpr(s, b.R)}
			holds, ok := ast.EvalBuiltin(gb)
			if !ok || !holds {
				return nil
			}
		}
		if err := g.instantiate(sr.comp, sr.r, s); err != nil {
			return err
		}
		head := s.ApplyAtom(sr.r.Head.Atom)
		if !g.atomFilter(head) {
			return nil
		}
		if g.st.Rel(headKey).Insert(head.Args) {
			inserted++
		}
		return nil
	})
	return inserted, err
}
