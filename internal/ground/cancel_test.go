// Cancellation checkpoints of the grounder: a dead context stops both the
// smart (relevance-based) and full grounding paths with the interrupt
// sentinel; no partial ground program is returned.
package ground

import (
	"context"
	"errors"
	"testing"

	"repro/internal/interrupt"
)

func TestGroundCtxCancelled(t *testing.T) {
	p := parse(t, `
module c {
  edge(a, b). edge(b, c). edge(c, d).
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- edge(X, Y), path(Y, Z).
}
`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []Mode{ModeSmart, ModeFull} {
		opts := DefaultOptions()
		opts.Mode = mode
		g, err := GroundCtx(ctx, p, opts)
		if !errors.Is(err, interrupt.ErrInterrupted) {
			t.Fatalf("mode %v: err = %v, want ErrInterrupted", mode, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %v: err = %v, want to unwrap to context.Canceled", mode, err)
		}
		if g != nil {
			t.Fatalf("mode %v: partial ground program returned alongside the interrupt", mode)
		}
	}
	if _, err := GroundCtx(context.Background(), p, DefaultOptions()); err != nil {
		t.Fatalf("live context after abandoned attempts: %v", err)
	}
}
