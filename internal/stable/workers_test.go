// Property tests pinning the parallel stable-model enumeration to the
// sequential reference across worker counts, including the budget-
// exhaustion paths, per the ISSUE's differential-harness requirement.
package stable_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/stable"
	"repro/internal/transform"
	"repro/internal/workload"
)

// TestStableParallelWorkerSweep: StableModelsParallel returns exactly the
// same stable-model set as StableModels for worker counts {1, 2, 8} on
// random ordered workloads.
func TestStableParallelWorkerSweep(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed + 7_000))
		p := workload.RandomOrdered(rng, 1+rng.Intn(3), workload.RandomConfig{
			Atoms: 4 + rng.Intn(3), Rules: 8 + rng.Intn(5), MaxBody: 2,
			NegHeads: true, NegBody: true,
		})
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			seq, err := stable.StableModels(v, stable.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := modelStrings(seq)
			for _, workers := range []int{1, 2, 8} {
				par, err := stable.StableModelsParallel(v, stable.ParallelOptions{Workers: workers})
				if err != nil {
					t.Fatalf("seed %d comp %d workers %d: %v", seed, ci, workers, err)
				}
				got := modelStrings(par)
				if len(got) != len(want) {
					t.Fatalf("seed %d comp %d workers %d: %d stable models, want %d\npar: %v\nseq: %v",
						seed, ci, workers, len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d comp %d workers %d: model sets differ\npar: %v\nseq: %v",
							seed, ci, workers, got, want)
					}
				}
			}
		}
	}
}

// TestStableParallelBudgetExhaustion: when the leaf budget is too small,
// the sequential and parallel enumerations both fail with ErrBudget for
// every worker count.
func TestStableParallelBudgetExhaustion(t *testing.T) {
	ov, err := transform.OV("c", workload.WinMove(workload.CycleEdges(8)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := ground.Ground(ov, ground.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v, err := eval.NewViewByName(g, "c")
	if err != nil {
		t.Fatal(err)
	}
	opts := stable.Options{MaxLeaves: 1}
	_, seqErr := stable.StableModels(v, opts)
	if !errors.Is(seqErr, stable.ErrBudget) {
		t.Fatalf("sequential: got %v, want ErrBudget", seqErr)
	}
	for _, workers := range []int{1, 2, 8} {
		_, parErr := stable.StableModelsParallel(v, stable.ParallelOptions{Options: opts, Workers: workers})
		if !errors.Is(parErr, stable.ErrBudget) {
			t.Fatalf("parallel workers=%d: got %v, want ErrBudget (identical to sequential %v)",
				workers, parErr, seqErr)
		}
	}
}
