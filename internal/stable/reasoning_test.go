package stable_test

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/stable"
	"repro/internal/workload"
)

func TestReasonExample5(t *testing.T) {
	v := view(t, `
module c2 { a. b. c. }
module c1 extends c2 { -a :- b, c. -b :- a. -b :- -b. }
`, "c1")
	r, err := stable.Reason(v, stable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumModels != 2 {
		t.Fatalf("models = %d", r.NumModels)
	}
	lit := func(name string, neg bool) interp.Lit {
		l := parser.MustParseLiteral(name)
		id, ok := v.G.Tab.Lookup(l.Atom)
		if !ok {
			t.Fatalf("atom %s missing", name)
		}
		return interp.MkLit(id, neg != l.Neg)
	}
	// c is in both stable models; a and b are contested.
	if !r.HoldsCautiously(lit("c", false)) {
		t.Error("c should hold cautiously")
	}
	if r.HoldsCautiously(lit("a", false)) || r.HoldsCautiously(lit("b", false)) {
		t.Error("contested literal holds cautiously")
	}
	// Both a and -a hold bravely (in different models).
	if !r.HoldsBravely(lit("a", false)) || !r.HoldsBravely(lit("a", true)) {
		t.Error("a / -a should both hold bravely")
	}
	if !r.HoldsBravely(lit("b", false)) || !r.HoldsBravely(lit("b", true)) {
		t.Error("b / -b should both hold bravely")
	}
}

// TestPruneIsPureOptimisation: the doomed-branch prune never changes the
// assumption-free family, only the number of leaves visited.
func TestPruneIsPureOptimisation(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomOrdered(rng, 1+rng.Intn(3), workload.RandomConfig{
			Atoms: 4 + rng.Intn(2), Rules: 8, MaxBody: 2, NegHeads: true, NegBody: true,
		})
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			with, err := stable.AssumptionFreeModels(v, stable.Options{})
			if err != nil {
				t.Fatal(err)
			}
			without, err := stable.AssumptionFreeModels(v, stable.Options{NoPrune: true})
			if err != nil {
				t.Fatal(err)
			}
			ws, os_ := modelStrings(with), modelStrings(without)
			if len(ws) != len(os_) {
				t.Fatalf("seed %d comp %d: prune changed af family size %d vs %d",
					seed, ci, len(ws), len(os_))
			}
			for i := range ws {
				if ws[i] != os_[i] {
					t.Fatalf("seed %d comp %d: prune changed af family: %v vs %v",
						seed, ci, ws, os_)
				}
			}
		}
	}
}

// TestReasonProperties: on random ordered programs, cautious ⊆ every
// stable model, every stable literal is brave, and least ⊆ cautious.
func TestReasonProperties(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomOrdered(rng, 1+rng.Intn(2), workload.RandomConfig{
			Atoms: 4, Rules: 7, MaxBody: 2, NegHeads: true, NegBody: true,
		})
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			r, err := stable.Reason(v, stable.Options{})
			if err != nil {
				t.Fatalf("seed %d comp %d: %v", seed, ci, err)
			}
			ms, err := stable.StableModels(v, stable.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ms {
				if !r.Cautious.SubsetOf(m) {
					t.Fatalf("seed %d: cautious %s not in stable %s", seed, r.Cautious, m)
				}
				for _, l := range m.Lits() {
					if !r.HoldsBravely(l) {
						t.Fatalf("seed %d: stable literal %s not brave", seed, g.Tab.LitString(l))
					}
				}
			}
			least, err := v.LeastModel()
			if err != nil {
				t.Fatal(err)
			}
			if !least.SubsetOf(r.Cautious) {
				t.Fatalf("seed %d: least %s not cautious %s", seed, least, r.Cautious)
			}
		}
	}
}
