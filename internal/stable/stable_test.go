package stable_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/stable"
)

func view(t *testing.T, src, comp string) *eval.View {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := ground.Ground(prog, ground.DefaultOptions())
	if err != nil {
		t.Fatalf("ground: %v", err)
	}
	v, err := eval.NewViewByName(g, comp)
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	return v
}

func modelStrings(ms []*interp.Interp) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	sort.Strings(out)
	return out
}

// Example 5: P5 has exactly two stable models in C1, {a,-b,c} and
// {-a,b,c}, while {c} is assumption-free but not stable.
func TestExample5Stable(t *testing.T) {
	src := `
module c2 { a. b. c. }
module c1 extends c2 {
  -a :- b, c.
  -b :- a.
  -b :- -b.
}
`
	v := view(t, src, "c1")
	af, err := stable.AssumptionFreeModels(v, stable.Options{})
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	gotAF := modelStrings(af)
	wantAF := []string{"{-a, b, c}", "{a, -b, c}", "{c}"}
	if strings.Join(gotAF, ";") != strings.Join(wantAF, ";") {
		t.Errorf("assumption-free models = %v, want %v", gotAF, wantAF)
	}
	st, err := stable.StableModels(v, stable.Options{})
	if err != nil {
		t.Fatalf("stable: %v", err)
	}
	got := modelStrings(st)
	want := []string{"{-a, b, c}", "{a, -b, c}"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("stable models = %v, want %v", got, want)
	}
}

// Example 4: P4 = { a :- b. } has the empty set as its only
// assumption-free model; adding a CWA component makes {-a,-b} the only
// assumption-free (hence stable) model.
func TestExample4(t *testing.T) {
	v := view(t, "a :- b.\n", "main")
	af, err := stable.AssumptionFreeModels(v, stable.Options{})
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if got := modelStrings(af); strings.Join(got, ";") != "{}" {
		t.Errorf("assumption-free models = %v, want [{}]", got)
	}

	src := `
module c2 { -a. -b. }
module c1 extends c2 { a :- b. }
`
	v2 := view(t, src, "c1")
	af2, err := stable.AssumptionFreeModels(v2, stable.Options{})
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	// The paper: {-a,-b} becomes "the only assumption-free model" once the
	// CWA component is added ({} is no longer a model: the applicable fact
	// -b is neither overruled nor defeated, violating condition (b)).
	if got := modelStrings(af2); strings.Join(got, ";") != "{-a, -b}" {
		t.Errorf("assumption-free models = %v, want [{-a, -b}]", got)
	}
	st2, err := stable.StableModels(v2, stable.Options{})
	if err != nil {
		t.Fatalf("stable: %v", err)
	}
	if got := modelStrings(st2); strings.Join(got, ";") != "{-a, -b}" {
		t.Errorf("stable models = %v, want [{-a, -b}]", got)
	}
}

// Theorem 1(b) on Example 3's program: the least model equals the
// intersection of all models.
func TestLeastIsIntersectionOfAllModels(t *testing.T) {
	v := view(t, "a :- b.\n-a :- b.\n", "main")
	least, err := v.LeastModel()
	if err != nil {
		t.Fatalf("least: %v", err)
	}
	all, err := stable.AllModels(v, 0)
	if err != nil {
		t.Fatalf("all models: %v", err)
	}
	if len(all) == 0 {
		t.Fatal("no models found")
	}
	inter := stable.Intersection(all)
	if !inter.Equal(least) {
		t.Errorf("intersection %s != least model %s", inter, least)
	}
}

// Proposition 2 on Figure 1's program: every model extends to an
// exhaustive model.
func TestExtendToExhaustive(t *testing.T) {
	src := `
module c2 {
  bird(penguin).
  bird(pigeon).
  fly(X) :- bird(X).
  -ground_animal(X) :- bird(X).
}
module c1 extends c2 {
  ground_animal(penguin).
  -fly(X) :- ground_animal(X).
}
`
	v := view(t, src, "c1")
	least, err := v.LeastModel()
	if err != nil {
		t.Fatalf("least: %v", err)
	}
	ex, err := stable.ExtendToExhaustive(v, least, 0)
	if err != nil {
		t.Fatalf("extend: %v", err)
	}
	if !least.SubsetOf(ex) {
		t.Errorf("extension %s does not contain %s", ex, least)
	}
	isEx, err := stable.IsExhaustive(v, ex, 0)
	if err != nil {
		t.Fatalf("isExhaustive: %v", err)
	}
	if !isEx {
		t.Errorf("extension %s is not exhaustive", ex)
	}
}
