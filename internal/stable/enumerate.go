package stable

import (
	"repro/internal/eval"
	"repro/internal/interp"
)

// AllModels enumerates every model of Definition 3 for the view's
// component by brute force over all three-valued assignments of the atom
// table. It is exponential and intended for theorem verification on small
// programs (for example, checking Theorem 1(b): the least model is the
// intersection of all models). The budget caps the assignments examined.
func AllModels(v *eval.View, maxLeaves int) ([]*interp.Interp, error) {
	if maxLeaves == 0 {
		maxLeaves = 1 << 22
	}
	n := v.G.Tab.Len()
	cur := v.NewInterp()
	var found []*interp.Interp
	leaves := 0
	var rec func(a int) error
	rec = func(a int) error {
		if a == n {
			leaves++
			if leaves > maxLeaves {
				return ErrBudget
			}
			if v.IsModel(cur) {
				found = append(found, cur.Clone())
			}
			return nil
		}
		id := interp.AtomID(a)
		cur.AddLit(interp.MkLit(id, false))
		if err := rec(a + 1); err != nil {
			return err
		}
		cur.RemoveLit(interp.MkLit(id, false))
		cur.AddLit(interp.MkLit(id, true))
		if err := rec(a + 1); err != nil {
			return err
		}
		cur.RemoveLit(interp.MkLit(id, true))
		return rec(a + 1)
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return found, nil
}

// Intersection returns the intersection of a non-empty family of
// interpretations.
func Intersection(ms []*interp.Interp) *interp.Interp {
	out := ms[0].Clone()
	for _, m := range ms[1:] {
		out.IntersectWith(m)
	}
	return out
}

// ExtendToExhaustive finds an exhaustive model extending m (Proposition 2:
// every model is a subset of an exhaustive one): a model with no proper
// model superset. It searches additions of undefined literals depth-first,
// preferring larger extensions, and verifies maximality exactly. The
// budget caps the candidate models examined; exceeding it returns
// ErrBudget.
func ExtendToExhaustive(v *eval.View, m *interp.Interp, maxLeaves int) (*interp.Interp, error) {
	if maxLeaves == 0 {
		maxLeaves = 1 << 20
	}
	undef := m.Undefined()
	best := m.Clone()
	if !v.IsModel(best) {
		return nil, errNotModel
	}
	leaves := 0
	cur := m.Clone()
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(undef) {
			leaves++
			if leaves > maxLeaves {
				return ErrBudget
			}
			if cur.Len() > best.Len() && v.IsModel(cur) {
				best.CopyFrom(cur)
			}
			return nil
		}
		id := undef[i]
		cur.AddLit(interp.MkLit(id, false))
		if err := rec(i + 1); err != nil {
			return err
		}
		cur.RemoveLit(interp.MkLit(id, false))
		cur.AddLit(interp.MkLit(id, true))
		if err := rec(i + 1); err != nil {
			return err
		}
		cur.RemoveLit(interp.MkLit(id, true))
		return rec(i + 1)
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return best, nil
}

// IsExhaustive reports whether m is an exhaustive model: a model with no
// proper model superset (Definition 5). Exponential in the number of
// undefined atoms; intended for small programs.
func IsExhaustive(v *eval.View, m *interp.Interp, maxLeaves int) (bool, error) {
	if !v.IsModel(m) {
		return false, errNotModel
	}
	if maxLeaves == 0 {
		maxLeaves = 1 << 20
	}
	undef := m.Undefined()
	leaves := 0
	cur := m.Clone()
	extendable := false
	var rec func(i int, added bool) error
	rec = func(i int, added bool) error {
		if extendable {
			return nil
		}
		if i == len(undef) {
			leaves++
			if leaves > maxLeaves {
				return ErrBudget
			}
			if added && v.IsModel(cur) {
				extendable = true
			}
			return nil
		}
		id := undef[i]
		cur.AddLit(interp.MkLit(id, false))
		if err := rec(i+1, true); err != nil {
			return err
		}
		cur.RemoveLit(interp.MkLit(id, false))
		cur.AddLit(interp.MkLit(id, true))
		if err := rec(i+1, true); err != nil {
			return err
		}
		cur.RemoveLit(interp.MkLit(id, true))
		return rec(i+1, added)
	}
	if err := rec(0, false); err != nil {
		return false, err
	}
	return !extendable, nil
}

var errNotModel = errNotModelType{}

type errNotModelType struct{}

func (errNotModelType) Error() string { return "stable: interpretation is not a model" }
