// Package stable enumerates assumption-free and stable models of ordered
// programs (Definitions 7 and 9): a stable model is a maximal
// assumption-free model. The enumeration is exact: it branches three-valued
// (true/false/undefined) over the contested atoms only — atoms outside the
// least model whose literals are derivable at all — with sound pruning, and
// verifies each leaf with the Theorem 1(a) check.
package stable

import (
	"context"
	"errors"

	"repro/internal/eval"
	"repro/internal/interp"
	"repro/internal/interrupt"
)

// ErrBudget reports that enumeration exceeded its leaf budget. Like the
// interrupt.ErrInterrupted cancellation sentinel, it is returned alongside
// the models found before the budget ran out — callers keep partial work.
var ErrBudget = errors.New("stable: search budget exceeded")

// Options configures enumeration.
type Options struct {
	// MaxLeaves caps the number of complete assignments examined
	// (0 = 1<<22).
	MaxLeaves int
	// MaxModels stops after this many assumption-free models (0 = all).
	// When set, the maximal filter applies to the collected prefix only.
	MaxModels int
	// NoPrune disables the Definition 3(a) doomed-branch prune (ablation
	// switch; the search then verifies every complete assignment).
	NoPrune bool
}

func (o *Options) fill() {
	if o.MaxLeaves == 0 {
		o.MaxLeaves = 1 << 22
	}
}

// possible computes lfp(T) over all visible rules, ignoring overruling and
// defeating and tracking the two signs independently: a literal outside the
// result can belong to no assumption-free model (its enabled version could
// never derive it).
func possible(v *eval.View) (pos, neg *interp.Bitset) {
	n := v.G.Tab.Len()
	pos, neg = interp.NewBitset(n), interp.NewBitset(n)
	has := func(l interp.Lit) bool {
		if l.Neg() {
			return neg.Get(int(l.Atom()))
		}
		return pos.Get(int(l.Atom()))
	}
	set := func(l interp.Lit) {
		if l.Neg() {
			neg.Set(int(l.Atom()))
		} else {
			pos.Set(int(l.Atom()))
		}
	}
	for changed := true; changed; {
		changed = false
		for r := 0; r < v.NumRules(); r++ {
			if has(v.Head(r)) {
				continue
			}
			ok := true
			for _, b := range v.Body(r) {
				if !has(b) {
					ok = false
					break
				}
			}
			if ok {
				set(v.Head(r))
				changed = true
			}
		}
	}
	return pos, neg
}

// enumState drives the three-valued DFS.
type enumState struct {
	v         *eval.View
	opts      Options
	least     *interp.Interp
	posP      *interp.Bitset // literals derivable at all
	negP      *interp.Bitset
	atoms     []interp.AtomID // branch atoms in ascending id order
	branchPos []int           // atom id -> index in atoms, or -1
	cur       *interp.Interp
	leaves    int
	nodes     int64 // DFS nodes expanded, flushed to metrics at the end
	found     []*interp.Interp
	overflow  bool
	// ctxDone is the enumeration context's Done channel (nil when the
	// search is unbounded); dfs polls it at every node — the checkpoint
	// interval of the cancellation contract — and raises interrupted.
	ctxDone     <-chan struct{}
	interrupted bool
}

// AssumptionFreeModels enumerates the assumption-free models of the view's
// component. The least model is always among them (Theorem 1).
func AssumptionFreeModels(v *eval.View, opts Options) ([]*interp.Interp, error) {
	return AssumptionFreeModelsCtx(context.Background(), v, opts)
}

// AssumptionFreeModelsCtx is AssumptionFreeModels with cooperative
// cancellation: the DFS polls the context at every node, so a cancelled or
// expired context stops the search within one checkpoint interval and
// returns the models found so far alongside an interrupt.Error — the same
// partial-result contract as ErrBudget.
func AssumptionFreeModelsCtx(ctx context.Context, v *eval.View, opts Options) ([]*interp.Interp, error) {
	opts.fill()
	least, err := v.LeastModelCtx(ctx)
	if err != nil {
		return nil, err
	}
	posP, negP := possible(v)
	st := &enumState{v: v, opts: opts, least: least, posP: posP, negP: negP, ctxDone: ctx.Done()}
	st.branchPos = make([]int, v.G.Tab.Len())
	for i := range st.branchPos {
		st.branchPos[i] = -1
	}
	for i := 0; i < v.G.Tab.Len(); i++ {
		id := interp.AtomID(i)
		if least.Value(id) != interp.Undef {
			continue
		}
		if posP.Get(i) || negP.Get(i) {
			st.branchPos[i] = len(st.atoms)
			st.atoms = append(st.atoms, id)
		}
	}
	st.cur = least.Clone()
	st.dfs(0)
	flushSearch(st.nodes, int64(st.leaves), int64(len(st.found)), st.overflow)
	if st.interrupted {
		return st.found, interrupt.Check(ctx, "stable: three-valued DFS")
	}
	if st.overflow {
		return st.found, ErrBudget
	}
	return st.found, nil
}

func (st *enumState) done() bool {
	return st.overflow || st.interrupted ||
		(st.opts.MaxModels > 0 && len(st.found) >= st.opts.MaxModels)
}

func (st *enumState) dfs(k int) {
	st.nodes++
	if st.ctxDone != nil && !st.interrupted {
		select {
		case <-st.ctxDone:
			st.interrupted = true
		default:
		}
	}
	if st.done() {
		return
	}
	if k == len(st.atoms) {
		st.leaves++
		if st.leaves > st.opts.MaxLeaves {
			st.overflow = true
			return
		}
		if st.v.IsAssumptionFree(st.cur) {
			st.found = append(st.found, st.cur.Clone())
		}
		return
	}
	a := st.atoms[k]
	// Branch order: true, false, undefined — maximal models tend to appear
	// early, which helps when MaxModels is set.
	prune := func() bool { return !st.opts.NoPrune && st.doomed(k) }
	if st.posP.Get(int(a)) {
		st.cur.AddLit(interp.MkLit(a, false))
		if !prune() {
			st.dfs(k + 1)
		}
		st.cur.RemoveLit(interp.MkLit(a, false))
	}
	if st.done() {
		return
	}
	if st.negP.Get(int(a)) {
		st.cur.AddLit(interp.MkLit(a, true))
		if !prune() {
			st.dfs(k + 1)
		}
		st.cur.RemoveLit(interp.MkLit(a, true))
	}
	if st.done() {
		return
	}
	st.dfs(k + 1) // undefined
}

// doomed applies a sound Definition 3(a) prune after deciding branch atom
// k: if some literal already in the candidate is contradicted by a rule
// that can never be blocked and never be overruled by an applied rule —
// under ANY completion of the remaining atoms — no extension survives.
// Only rules all of whose relevant atoms are decided are examined.
func (st *enumState) doomed(k int) bool {
	decided := func(a interp.AtomID) bool {
		p := st.branchPos[a]
		return p < 0 || p <= k // non-branch atoms are permanently undefined
	}
	// mayHold: can literal l be in the final model under some completion?
	mayHold := func(l interp.Lit) bool {
		if decided(l.Atom()) {
			return st.cur.HasLit(l)
		}
		if l.Neg() {
			return st.negP.Get(int(l.Atom()))
		}
		return st.posP.Get(int(l.Atom()))
	}
	v := st.v
	for r := 0; r < v.NumRules(); r++ {
		h := v.Head(r)
		if !st.cur.HasLit(h.Complement()) {
			continue
		}
		// Rule r contradicts a decided literal. Can it still be blocked?
		canBlock := false
		for _, b := range v.Body(r) {
			if mayHold(b.Complement()) {
				canBlock = true
				break
			}
		}
		if canBlock {
			continue
		}
		// Can it still be overruled by an applied rule?
		canOverrule := false
		for _, o := range v.Overrulers(r) {
			ok := true
			for _, b := range v.Body(int(o)) {
				if !mayHold(b) {
					ok = false
					break
				}
			}
			if ok {
				canOverrule = true
				break
			}
		}
		if !canOverrule {
			return true
		}
	}
	return false
}

// StableModels returns the maximal assumption-free models of the view's
// component (Definition 9). On ErrBudget the maximal models of the
// truncated enumeration are returned alongside the error (maximal within
// the collected family only — the full search might have extended them).
func StableModels(v *eval.View, opts Options) ([]*interp.Interp, error) {
	return StableModelsCtx(context.Background(), v, opts)
}

// StableModelsCtx is StableModels with cooperative cancellation; see
// AssumptionFreeModelsCtx for the checkpoint and partial-result contract.
func StableModelsCtx(ctx context.Context, v *eval.View, opts Options) ([]*interp.Interp, error) {
	all, err := AssumptionFreeModelsCtx(ctx, v, opts)
	if err != nil {
		if partialErr(err) {
			return MaximalModels(all), err
		}
		return nil, err
	}
	return MaximalModels(all), nil
}

// partialErr reports whether err is one of the sentinels that carry
// partial results (truncated rather than failed enumeration).
func partialErr(err error) bool {
	return errors.Is(err, ErrBudget) || errors.Is(err, interrupt.ErrInterrupted)
}

// MaximalModels filters a family of interpretations down to its maximal
// elements under set inclusion.
func MaximalModels(ms []*interp.Interp) []*interp.Interp {
	var out []*interp.Interp
	for i, m := range ms {
		maximal := true
		for j, o := range ms {
			if i != j && m.ProperSubsetOf(o) {
				maximal = false
				break
			}
		}
		if maximal {
			dup := false
			for _, o := range out {
				if o.Equal(m) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, m)
			}
		}
	}
	return out
}
