package stable

import (
	"context"
	"errors"

	"repro/internal/eval"
	"repro/internal/interp"
)

// ErrNoStableModels reports that a program has no stable model in the
// queried component — impossible by Theorem 1 (the least model is
// assumption-free and maximal candidates exist), so it only surfaces when
// enumeration was cut short by options.
var ErrNoStableModels = errors.New("stable: no stable models found")

// Reasoning is the outcome of cautious/brave inference over the stable
// models of one component.
type Reasoning struct {
	// Cautious holds the literals true in every stable model (sceptical
	// consequences).
	Cautious *interp.Interp
	// Brave holds the literals true in at least one stable model
	// (credulous consequences). Brave is represented as two literal sets
	// rather than an interpretation because it may contain complementary
	// literals (different stable models may disagree); BraveLits lists
	// them explicitly.
	BraveLits []interp.Lit
	// NumModels is the number of stable models inspected.
	NumModels int
}

// Reason enumerates the stable models of the view's component and returns
// the cautious and brave consequences.
func Reason(v *eval.View, opts Options) (*Reasoning, error) {
	return ReasonCtx(context.Background(), v, opts)
}

// ReasonCtx is Reason with cooperative cancellation. A truncated
// enumeration (budget or interruption) fails the whole call: cautious and
// brave consequences are only sound over the complete stable-model family.
func ReasonCtx(ctx context.Context, v *eval.View, opts Options) (*Reasoning, error) {
	ms, err := StableModelsCtx(ctx, v, opts)
	if err != nil {
		return nil, err
	}
	if len(ms) == 0 {
		return nil, ErrNoStableModels
	}
	cautious := Intersection(ms)
	seen := make(map[interp.Lit]bool)
	var brave []interp.Lit
	for _, m := range ms {
		for _, l := range m.Lits() {
			if !seen[l] {
				seen[l] = true
				brave = append(brave, l)
			}
		}
	}
	return &Reasoning{Cautious: cautious, BraveLits: brave, NumModels: len(ms)}, nil
}

// HoldsCautiously reports whether the literal is in every stable model.
func (r *Reasoning) HoldsCautiously(l interp.Lit) bool { return r.Cautious.HasLit(l) }

// HoldsBravely reports whether the literal is in some stable model.
func (r *Reasoning) HoldsBravely(l interp.Lit) bool {
	for _, b := range r.BraveLits {
		if b == l {
			return true
		}
	}
	return false
}
