package stable

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/interp"
	"repro/internal/interrupt"
)

// ParallelOptions extends Options with a worker count for the three-valued
// search. The search space is split on the first branch atoms: every
// assignment of the prefix becomes an independent subtree evaluated by a
// worker pool. Results and leaf budgets are shared.
type ParallelOptions struct {
	Options
	// Workers is the number of goroutines (0 = GOMAXPROCS).
	Workers int
}

// AssumptionFreeModelsParallel enumerates assumption-free models with a
// worker pool. It returns the same family as AssumptionFreeModels (order
// may differ). MaxModels is treated as a lower bound on the collected
// models rather than an exact cut-off, since subtrees race; once the
// shared count reaches it, workers stop taking subtrees.
func AssumptionFreeModelsParallel(v *eval.View, opts ParallelOptions) ([]*interp.Interp, error) {
	return AssumptionFreeModelsParallelCtx(context.Background(), v, opts)
}

// AssumptionFreeModelsParallelCtx is AssumptionFreeModelsParallel with
// cooperative cancellation: workers poll the context per subtree and per
// DFS node and stop on cancellation, returning the models collected so
// far alongside an interrupt.Error — identical partial-result semantics
// to the sequential enumeration (and to ErrBudget).
func AssumptionFreeModelsParallelCtx(ctx context.Context, v *eval.View, opts ParallelOptions) ([]*interp.Interp, error) {
	opts.Options.fill()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return AssumptionFreeModelsCtx(ctx, v, opts.Options)
	}
	least, err := v.LeastModelCtx(ctx)
	if err != nil {
		return nil, err
	}
	posP, negP := possible(v)
	base := &enumState{v: v, opts: opts.Options, least: least, posP: posP, negP: negP}
	base.branchPos = make([]int, v.G.Tab.Len())
	for i := range base.branchPos {
		base.branchPos[i] = -1
	}
	for i := 0; i < v.G.Tab.Len(); i++ {
		id := interp.AtomID(i)
		if least.Value(id) != interp.Undef {
			continue
		}
		if posP.Get(i) || negP.Get(i) {
			base.branchPos[i] = len(base.atoms)
			base.atoms = append(base.atoms, id)
		}
	}

	// Choose a prefix depth giving at least ~4 tasks per worker.
	prefix := 0
	tasks := 1
	for prefix < len(base.atoms) && tasks < workers*4 {
		prefix++
		tasks *= 3
	}

	type task struct {
		assign []int8 // 0 = undef, 1 = true, 2 = false, per prefix atom
	}
	taskCh := make(chan task, tasks)
	// Generate every prefix assignment (invalid sign choices are skipped
	// inside the worker via the posP/negP check, mirroring the sequential
	// branch conditions). The channel buffer holds every assignment, so
	// the generator never blocks and cannot leak when workers bail early.
	var gen func(k int, cur []int8)
	gen = func(k int, cur []int8) {
		if k == prefix {
			t := task{assign: append([]int8(nil), cur...)}
			taskCh <- t
			return
		}
		a := base.atoms[k]
		if posP.Get(int(a)) {
			gen(k+1, append(cur, 1))
		}
		if negP.Get(int(a)) {
			gen(k+1, append(cur, 2))
		}
		gen(k+1, append(cur, 0))
	}
	go func() {
		gen(0, nil)
		close(taskCh)
	}()

	var (
		mu          sync.Mutex
		found       []*interp.Interp
		foundN      atomic.Int64 // shared found-count for the MaxModels stop
		leaves      atomic.Int64
		nodesTotal  atomic.Int64 // nodes expanded across workers, for metrics
		overflow    atomic.Bool
		interrupted atomic.Bool
		wg          sync.WaitGroup
	)
	ctxDone := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &enumState{
				v: v, opts: opts.Options, least: least,
				posP: posP, negP: negP,
				atoms: base.atoms, branchPos: base.branchPos,
				ctxDone: ctxDone,
			}
			defer func() { nodesTotal.Add(st.nodes) }()
			// Replace the per-state leaf counter with the shared one by
			// sizing the local budget from the global remainder at leaf
			// boundaries: simplest is to run subtree DFS with a local
			// state and periodically publish.
			for tk := range taskCh {
				if overflow.Load() || interrupted.Load() {
					return
				}
				// Satisfied runs stop early: once the shared count reaches
				// MaxModels, no further subtree is started (the final slice
				// may still overshoot — the documented lower-bound
				// semantics — because racing subtrees publish in bulk).
				if opts.MaxModels > 0 && foundN.Load() >= int64(opts.MaxModels) {
					return
				}
				select {
				case <-ctxDone:
					interrupted.Store(true)
					return
				default:
				}
				st.cur = least.Clone()
				ok := true
				for k, bits := range tk.assign {
					a := st.atoms[k]
					switch bits {
					case 1:
						st.cur.AddLit(interp.MkLit(a, false))
					case 2:
						st.cur.AddLit(interp.MkLit(a, true))
					}
					if bits != 0 && !opts.NoPrune && st.doomed(k) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				st.found = st.found[:0]
				st.leaves = 0
				st.overflow = false
				st.interrupted = false
				st.dfs(prefix)
				if int(leaves.Add(int64(st.leaves))) > opts.MaxLeaves || st.overflow {
					overflow.Store(true)
				}
				if st.interrupted {
					interrupted.Store(true)
				}
				if len(st.found) > 0 {
					foundN.Add(int64(len(st.found)))
					mu.Lock()
					found = append(found, st.found...)
					st.found = nil
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	flushSearch(nodesTotal.Load(), leaves.Load(), foundN.Load(), overflow.Load())
	if interrupted.Load() {
		return found, interrupt.Check(ctx, "stable: parallel three-valued DFS")
	}
	if overflow.Load() {
		return found, ErrBudget
	}
	return found, nil
}

// StableModelsParallel returns the maximal assumption-free models using
// the parallel enumeration. On ErrBudget the maximal models of the
// truncated enumeration are returned alongside the error — the same
// partial-result contract as the sequential StableModels.
func StableModelsParallel(v *eval.View, opts ParallelOptions) ([]*interp.Interp, error) {
	return StableModelsParallelCtx(context.Background(), v, opts)
}

// StableModelsParallelCtx is StableModelsParallel with cooperative
// cancellation; see AssumptionFreeModelsParallelCtx for the checkpoint
// and partial-result contract.
func StableModelsParallelCtx(ctx context.Context, v *eval.View, opts ParallelOptions) ([]*interp.Interp, error) {
	all, err := AssumptionFreeModelsParallelCtx(ctx, v, opts)
	if err != nil {
		if partialErr(err) {
			return MaximalModels(all), err
		}
		return nil, err
	}
	return MaximalModels(all), nil
}
