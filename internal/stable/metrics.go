package stable

import "repro/internal/obs"

// Enumeration metrics, resolved once from the process-global registry. The
// DFS counts nodes in a plain per-search field (per-worker in the parallel
// enumerator) and flushes once when the search returns, gated on obs.On().
var (
	mSearches        = obs.Default().Counter("stable.searches")
	mNodes           = obs.Default().Counter("stable.nodes")
	mLeaves          = obs.Default().Counter("stable.leaves")
	mModels          = obs.Default().Counter("stable.models")
	mBudgetExhausted = obs.Default().Counter("stable.budget_exhausted")
)

// flush publishes one finished search's counts.
func flushSearch(nodes, leaves, models int64, overflow bool) {
	if !obs.On() {
		return
	}
	mSearches.Inc()
	mNodes.Add(nodes)
	mLeaves.Add(leaves)
	mModels.Add(models)
	if overflow {
		mBudgetExhausted.Inc()
	}
}
