package stable_test

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/stable"
	"repro/internal/workload"
)

// TestDefinition5Properties checks, on random small programs:
//   - every total model is exhaustive (the paper's remark after Def. 5);
//   - every model is contained in some exhaustive model (Prop. 2);
//   - exhaustive models are maximal among AllModels.
func TestDefinition5Properties(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomOrdered(rng, 1+rng.Intn(2), workload.RandomConfig{
			Atoms: 3, Rules: 5, MaxBody: 2, NegHeads: true, NegBody: true,
		})
		opts := ground.DefaultOptions()
		opts.Mode = ground.ModeFull
		g, err := ground.Ground(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if g.Tab.Len() > 5 {
			continue
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			all, err := stable.AllModels(v, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Maximal elements of the model family are the exhaustive ones.
			for _, m := range all {
				maximal := true
				for _, o := range all {
					if m.ProperSubsetOf(o) {
						maximal = false
						break
					}
				}
				isEx, err := stable.IsExhaustive(v, m, 0)
				if err != nil {
					t.Fatal(err)
				}
				if isEx != maximal {
					t.Fatalf("seed %d comp %d: IsExhaustive(%s)=%v but maximal=%v",
						seed, ci, m, isEx, maximal)
				}
				if m.Total() && !isEx {
					t.Fatalf("seed %d comp %d: total model %s not exhaustive", seed, ci, m)
				}
				ex, err := stable.ExtendToExhaustive(v, m, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !m.SubsetOf(ex) {
					t.Fatalf("seed %d comp %d: extension broke containment", seed, ci)
				}
			}
		}
	}
}

// TestNonTotalExhaustiveWitness reproduces the paper's remark after
// Definition 5 that a non-total exhaustive model may exist even when a
// total one does. Witness: C = { a :- -b.  b :- -a.  c :- a.  -c :- a. }
// in one component. {-a, b, c}? — the search below finds and verifies a
// witness program from the random family instead of trusting a hand
// calculation, then asserts at least one was found.
func TestNonTotalExhaustiveWitness(t *testing.T) {
	found := false
	for seed := int64(0); seed < 400 && !found; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomOrdered(rng, 1+rng.Intn(2), workload.RandomConfig{
			Atoms: 3, Rules: 5, MaxBody: 2, NegHeads: true, NegBody: true,
		})
		opts := ground.DefaultOptions()
		opts.Mode = ground.ModeFull
		g, err := ground.Ground(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if g.Tab.Len() > 4 {
			continue
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			all, err := stable.AllModels(v, 0)
			if err != nil {
				t.Fatal(err)
			}
			var hasTotal bool
			var nonTotalExhaustive *interp.Interp
			for _, m := range all {
				if m.Total() {
					hasTotal = true
					continue
				}
				maximal := true
				for _, o := range all {
					if m.ProperSubsetOf(o) {
						maximal = false
						break
					}
				}
				if maximal {
					nonTotalExhaustive = m
				}
			}
			if hasTotal && nonTotalExhaustive != nil {
				found = true
				t.Logf("witness (seed %d, component %d): non-total exhaustive %s alongside a total model\nprogram:\n%s",
					seed, ci, nonTotalExhaustive, p)
				break
			}
		}
	}
	if !found {
		t.Error("no witness for the paper's non-total-exhaustive remark in 400 random programs")
	}
}
