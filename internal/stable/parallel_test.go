package stable_test

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/stable"
	"repro/internal/transform"
	"repro/internal/workload"
)

// TestParallelMatchesSequential: the parallel enumeration returns exactly
// the sequential family on random ordered programs.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomOrdered(rng, 1+rng.Intn(3), workload.RandomConfig{
			Atoms: 5, Rules: 9, MaxBody: 2, NegHeads: true, NegBody: true,
		})
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			seq, err := stable.AssumptionFreeModels(v, stable.Options{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := stable.AssumptionFreeModelsParallel(v, stable.ParallelOptions{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			ss, ps := modelStrings(seq), modelStrings(par)
			if len(ss) != len(ps) {
				t.Fatalf("seed %d comp %d: sizes differ: %d vs %d", seed, ci, len(ss), len(ps))
			}
			for i := range ss {
				if ss[i] != ps[i] {
					t.Fatalf("seed %d comp %d: families differ:\nseq: %v\npar: %v", seed, ci, ss, ps)
				}
			}
		}
	}
}

// TestParallelWinMove: the parallel stable search solves win-move cycles
// identically.
func TestParallelWinMove(t *testing.T) {
	for _, n := range []int{4, 5, 8} {
		ov, err := transform.OV("c", workload.WinMove(workload.CycleEdges(n)))
		if err != nil {
			t.Fatal(err)
		}
		g, err := ground.Ground(ov, ground.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		v, err := eval.NewViewByName(g, "c")
		if err != nil {
			t.Fatal(err)
		}
		seq, err := stable.StableModels(v, stable.Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := stable.StableModelsParallel(v, stable.ParallelOptions{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		ss, ps := modelStrings(seq), modelStrings(par)
		if len(ss) != len(ps) {
			t.Fatalf("cycle %d: %d vs %d stable models", n, len(ss), len(ps))
		}
		for i := range ss {
			if ss[i] != ps[i] {
				t.Fatalf("cycle %d: stable families differ", n)
			}
		}
	}
}

// TestParallelSingleWorkerFallsBack exercises the sequential fallback.
func TestParallelSingleWorkerFallsBack(t *testing.T) {
	v := view(t, "module c2 { a. }\nmodule c1 extends c2 { -a :- a. }\n", "c1")
	par, err := stable.AssumptionFreeModelsParallel(v, stable.ParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := stable.AssumptionFreeModels(v, stable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Errorf("fallback differs: %d vs %d", len(par), len(seq))
	}
}
