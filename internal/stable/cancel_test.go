// Cancellation and budget-exhaustion contract tests: sequential and
// parallel enumeration must return partial model sets alongside the
// ErrBudget / interrupt.ErrInterrupted sentinels, never discarding work
// already done, and a cancelled context must stop the search within one
// DFS checkpoint.
package stable_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/interrupt"
	"repro/internal/stable"
	"repro/internal/transform"
	"repro/internal/workload"
)

// winMoveView builds the OV(win-move cycle) view used by the contract
// tests: even cycles have several assumption-free models, found early by
// the true-first branch order, so a small leaf budget yields a non-empty
// partial family.
func winMoveView(t *testing.T, n int) *eval.View {
	t.Helper()
	ov, err := transform.OV("c", workload.WinMove(workload.CycleEdges(n)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := ground.Ground(ov, ground.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v, err := eval.NewViewByName(g, "c")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestBudgetPartialContract: on budget exhaustion the sequential and
// parallel enumerations agree on the contract — the sentinel ErrBudget is
// returned together with the models found so far, each of which is a
// genuine assumption-free model, and StableModels additionally filters the
// truncated family to its maximal elements.
func TestBudgetPartialContract(t *testing.T) {
	v := winMoveView(t, 8)
	opts := stable.Options{MaxLeaves: 4}

	af, err := stable.AssumptionFreeModels(v, opts)
	if !errors.Is(err, stable.ErrBudget) {
		t.Fatalf("sequential af: err = %v, want ErrBudget", err)
	}
	if len(af) == 0 {
		t.Fatalf("sequential af: no partial models alongside ErrBudget")
	}
	for _, m := range af {
		if !v.IsAssumptionFree(m) {
			t.Errorf("sequential af: partial result %v is not assumption-free", m)
		}
	}

	st, err := stable.StableModels(v, opts)
	if !errors.Is(err, stable.ErrBudget) {
		t.Fatalf("sequential stable: err = %v, want ErrBudget", err)
	}
	if len(st) == 0 {
		t.Fatalf("sequential stable: no partial models alongside ErrBudget")
	}
	for i, m := range st {
		for j, o := range st {
			if i != j && m.ProperSubsetOf(o) {
				t.Errorf("sequential stable: partial result %d not maximal within family", i)
			}
		}
	}

	// Parallel: identical contract for every worker count. The exact
	// partial family may differ (subtrees race for the shared budget), but
	// the sentinel, the non-nil model slice, and the soundness of every
	// returned model must match the sequential behaviour.
	for _, workers := range []int{2, 4, 8} {
		popts := stable.ParallelOptions{Options: opts, Workers: workers}
		paf, err := stable.AssumptionFreeModelsParallel(v, popts)
		if !errors.Is(err, stable.ErrBudget) {
			t.Fatalf("parallel af workers=%d: err = %v, want ErrBudget", workers, err)
		}
		for _, m := range paf {
			if !v.IsAssumptionFree(m) {
				t.Errorf("parallel af workers=%d: partial result is not assumption-free", workers)
			}
		}
		pst, err := stable.StableModelsParallel(v, popts)
		if !errors.Is(err, stable.ErrBudget) {
			t.Fatalf("parallel stable workers=%d: err = %v, want ErrBudget", workers, err)
		}
		for i, m := range pst {
			for j, o := range pst {
				if i != j && m.ProperSubsetOf(o) {
					t.Errorf("parallel stable workers=%d: partial result %d not maximal", workers, i)
				}
			}
		}
	}
}

// TestCancelledContextUpfront: an already-cancelled context fails the
// enumeration immediately with an error matching both ErrInterrupted and
// context.Canceled; the partial model slice is empty.
func TestCancelledContextUpfront(t *testing.T) {
	v := winMoveView(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	check := func(what string, ms []*interp.Interp, err error) {
		t.Helper()
		if !errors.Is(err, interrupt.ErrInterrupted) {
			t.Fatalf("%s: err = %v, want ErrInterrupted", what, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want to unwrap to context.Canceled", what, err)
		}
		if len(ms) != 0 {
			t.Fatalf("%s: %d models from an enumeration that never ran", what, len(ms))
		}
	}
	ms, err := stable.AssumptionFreeModelsCtx(ctx, v, stable.Options{})
	check("af", ms, err)
	ms, err = stable.StableModelsCtx(ctx, v, stable.Options{})
	check("stable", ms, err)
	ms, err = stable.AssumptionFreeModelsParallelCtx(ctx, v, stable.ParallelOptions{Workers: 4})
	check("parallel af", ms, err)
	ms, err = stable.StableModelsParallelCtx(ctx, v, stable.ParallelOptions{Workers: 4})
	check("parallel stable", ms, err)

	if _, err := stable.ReasonCtx(ctx, v, stable.Options{}); !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("ReasonCtx: err = %v, want ErrInterrupted (no partial consequences)", err)
	}
}

// TestDeadlineMidEnumeration: a deadline expiring mid-search stops the DFS
// within one checkpoint interval — far sooner than the full exhaustive
// search would finish — and the models already found survive alongside the
// ErrInterrupted error. NoPrune makes the n=12 search take hundreds of
// milliseconds, so a 50ms deadline reliably interrupts it.
func TestDeadlineMidEnumeration(t *testing.T) {
	v := winMoveView(t, 12)
	opts := stable.Options{NoPrune: true, MaxLeaves: 1 << 30}

	run := func(what string, f func(ctx context.Context) ([]*interp.Interp, error)) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		start := time.Now()
		ms, err := f(ctx)
		elapsed := time.Since(start)
		if elapsed > 2*time.Second {
			t.Fatalf("%s: took %v, want the deadline to cut the search well under 2s", what, elapsed)
		}
		if err == nil {
			// The machine finished the whole search inside the deadline;
			// nothing to assert about interruption.
			t.Logf("%s: search finished before the deadline (%v)", what, elapsed)
			return
		}
		if !errors.Is(err, interrupt.ErrInterrupted) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: err = %v, want ErrInterrupted unwrapping to DeadlineExceeded", what, err)
		}
		for _, m := range ms {
			if !v.IsAssumptionFree(m) {
				t.Errorf("%s: interrupted partial result is not assumption-free", what)
			}
		}
	}
	run("sequential", func(ctx context.Context) ([]*interp.Interp, error) {
		return stable.AssumptionFreeModelsCtx(ctx, v, opts)
	})
	run("parallel", func(ctx context.Context) ([]*interp.Interp, error) {
		return stable.AssumptionFreeModelsParallelCtx(ctx, v, stable.ParallelOptions{Options: opts, Workers: 4})
	})
}
