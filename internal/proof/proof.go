// Package proof implements a goal-directed (top-down) proof procedure for
// ordered logic programs, the companion to the bottom-up fixpoint that §5
// of the paper attributes to [LV] ("A Fixpoint Semantics for Ordered
// Logic"). It decides membership in the least model lfp(V) of a component
// without materialising the whole model:
//
//	a ground literal L is provable iff some visible rule r with head L has
//	(i) every body literal provable, and (ii) every competitor r' of r
//	(a rule with complementary head in a component not strictly above
//	C(r)) *refutable* — some body literal of r' has a provable complement.
//
// Soundness and completeness w.r.t. lfp(V) follow from stage induction:
// every literal of the least model enters at a finite stage, and its rule's
// body literals and its competitors' blocking literals all enter at
// earlier stages, so proof trees are well-founded. The procedure uses
// depth-first search with an in-progress set (cycles fail the current
// path) and memoises successes always, failures only when they did not
// depend on an in-progress goal.
package proof

import (
	"context"

	"repro/internal/eval"
	"repro/internal/interp"
	"repro/internal/interrupt"
)

// Prover answers least-model membership queries against a view.
type Prover struct {
	v        *eval.View
	proven   map[interp.Lit]bool // memo: literal is in lfp(V)
	failed   map[interp.Lit]bool // memo: literal is not in lfp(V)
	calls    int
	maxCall  int
	ctx      context.Context    // context of the in-flight Prove/Explain call
	stageMap map[interp.Lit]int // lazily built by Explain
	// inProgress is the DFS path set, pooled across Prove calls. The
	// per-frame deferred deletes in prove leave it empty after every call
	// (deferred deletes run during error unwinds too); the clear in
	// ProveCtx is belt-and-braces. Pooling is safe because a Prover is
	// not reentrant — core serialises callers behind a 1-slot semaphore.
	inProgress map[interp.Lit]bool
}

// New returns a prover over the view. maxCalls bounds the total recursive
// goal invocations per Prove call tree (0 = 1<<24); the bound exists to
// guard against pathological blow-ups, not termination (the in-progress
// set already ensures termination).
func New(v *eval.View, maxCalls int) *Prover {
	if maxCalls == 0 {
		maxCalls = 1 << 24
	}
	return &Prover{
		v:          v,
		proven:     make(map[interp.Lit]bool),
		failed:     make(map[interp.Lit]bool),
		maxCall:    maxCalls,
		ctx:        context.Background(),
		inProgress: make(map[interp.Lit]bool),
	}
}

// ErrBudget reports that the call budget was exhausted.
type ErrBudget struct{}

// Error implements the error interface.
func (ErrBudget) Error() string { return "proof: call budget exceeded" }

// Prove reports whether the ground literal is in the least model of the
// prover's component. Results are memoised across calls.
func (p *Prover) Prove(l interp.Lit) (bool, error) {
	return p.ProveCtx(context.Background(), l)
}

// ProveCtx is Prove with cooperative cancellation: the goal recursion
// polls the context every 256 goal invocations (and once up front), so a
// cancelled or expired context fails the proof with an interrupt.Error.
// Memoised results accumulated before the interruption are kept — they
// are sound, only the in-flight call tree is abandoned.
func (p *Prover) ProveCtx(ctx context.Context, l interp.Lit) (bool, error) {
	if err := interrupt.Check(ctx, "proof: goal entry"); err != nil {
		return false, err
	}
	p.calls = 0
	p.ctx = ctx
	clear(p.inProgress)
	ok, _, err := p.prove(l, p.inProgress)
	return ok, err
}

// prove returns (provable, pure, err); pure is false when the failure
// depended on an in-progress goal (such failures must not be memoised:
// the goal might succeed on a different path).
func (p *Prover) prove(l interp.Lit, inProgress map[interp.Lit]bool) (bool, bool, error) {
	if p.proven[l] {
		return true, true, nil
	}
	if p.failed[l] {
		return false, true, nil
	}
	if inProgress[l] {
		return false, false, nil // cycle: fail this path, impurely
	}
	p.calls++
	if p.calls > p.maxCall {
		return false, true, ErrBudget{}
	}
	if p.calls%256 == 0 {
		if err := interrupt.Check(p.ctx, "proof: goal recursion"); err != nil {
			return false, true, err
		}
	}
	inProgress[l] = true
	defer delete(inProgress, l)

	pure := true
	for _, r := range p.v.HeadRules(l) {
		ok, rulePure, err := p.proveViaRule(int(r), inProgress)
		if err != nil {
			return false, true, err
		}
		if ok {
			p.proven[l] = true
			return true, true, nil
		}
		pure = pure && rulePure
	}
	if pure {
		p.failed[l] = true
	}
	return false, pure, nil
}

func (p *Prover) proveViaRule(r int, inProgress map[interp.Lit]bool) (bool, bool, error) {
	pure := true
	for _, b := range p.v.Body(r) {
		ok, subPure, err := p.prove(b, inProgress)
		if err != nil {
			return false, true, err
		}
		pure = pure && subPure
		if !ok {
			return false, pure, nil
		}
	}
	// Refute every competitor: prove the complement of one of its body
	// literals (an empty-bodied competitor is irrefutable).
	for _, c := range p.v.Competitors(r) {
		refuted := false
		for _, b := range p.v.Body(int(c)) {
			ok, subPure, err := p.prove(b.Complement(), inProgress)
			if err != nil {
				return false, true, err
			}
			pure = pure && subPure
			if ok {
				refuted = true
				break
			}
		}
		if !refuted {
			return false, pure, nil
		}
	}
	return true, pure, nil
}
