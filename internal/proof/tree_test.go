package proof_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/proof"
	"repro/internal/workload"
)

func litOf(t *testing.T, v *eval.View, s string) interp.Lit {
	t.Helper()
	l, err := parser.ParseLiteral(s)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := v.G.Tab.Lookup(l.Atom)
	if !ok {
		t.Fatalf("atom %s not interned", l.Atom)
	}
	return interp.MkLit(id, l.Neg)
}

func TestExplainTree(t *testing.T) {
	v := viewOf(t, `
module c2 {
  bird(penguin).
  fly(X) :- bird(X).
}
module c1 extends c2 {
  ground_animal(penguin).
  -fly(X) :- ground_animal(X).
}
`, "c1")
	pr := proof.New(v, 0)
	tree, ok, err := pr.Explain(litOf(t, v, "-fly(penguin)"))
	if err != nil || !ok {
		t.Fatalf("Explain: %v %v", ok, err)
	}
	out := tree.Render(pr)
	for _, want := range []string{
		"proved -fly(penguin)",
		"-fly(penguin) :- ground_animal(penguin).",
		"needs ground_animal(penguin)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The unprovable direction returns ok=false without a tree.
	tree2, ok2, err := pr.Explain(litOf(t, v, "fly(penguin)"))
	if err != nil {
		t.Fatal(err)
	}
	if ok2 || tree2 != nil {
		t.Error("unprovable literal explained")
	}
}

func TestExplainRefutations(t *testing.T) {
	// The fact p is defended against the competitor -p :- q by proving
	// -q... there is no rule for -q, so instead use a competitor whose
	// body complement is derivable.
	v := viewOf(t, `
p.
-p :- q.
-q.
`, "main")
	pr := proof.New(v, 0)
	tree, ok, err := pr.Explain(litOf(t, v, "p"))
	if err != nil || !ok {
		t.Fatalf("Explain(p): %v %v", ok, err)
	}
	out := tree.Render(pr)
	if !strings.Contains(out, "blocks competitor -p :- q.") || !strings.Contains(out, "via -q") {
		t.Errorf("refutation missing:\n%s", out)
	}
}

// TestExplainConsistentWithProve: whenever Prove succeeds, Explain builds
// a tree whose every node is itself provable.
func TestExplainConsistentWithProve(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomOrdered(rng, 1+rng.Intn(2), workload.RandomConfig{
			Atoms: 4, Rules: 8, MaxBody: 2, NegHeads: true, NegBody: true,
		})
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			pr := proof.New(v, 0)
			least, err := v.LeastModel()
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range least.Lits() {
				tree, ok, err := pr.Explain(l)
				if err != nil || !ok {
					t.Fatalf("seed %d: Explain(%s) failed: %v %v", seed, g.Tab.LitString(l), ok, err)
				}
				// Every node is in the least model and no node is its own
				// ancestor (the witness is well-founded).
				onPath := map[*proof.Tree]bool{}
				done := map[*proof.Tree]bool{}
				var walk func(t2 *proof.Tree)
				walk = func(t2 *proof.Tree) {
					if onPath[t2] {
						t.Fatalf("seed %d: circular justification through %s",
							seed, g.Tab.LitString(t2.Goal))
					}
					if done[t2] {
						return
					}
					onPath[t2] = true
					if !least.HasLit(t2.Goal) {
						t.Fatalf("seed %d: tree node %s not in least model", seed, g.Tab.LitString(t2.Goal))
					}
					for _, s := range t2.Body {
						walk(s)
					}
					for _, r := range t2.Refutations {
						walk(r.Blocker)
					}
					delete(onPath, t2)
					done[t2] = true
				}
				walk(tree)
			}
		}
	}
}
