package proof_test

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/proof"
	"repro/internal/transform"
	"repro/internal/workload"
)

func viewOf(t *testing.T, src, comp string) *eval.View {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ground.Ground(p, ground.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v, err := eval.NewViewByName(g, comp)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestProveFig1(t *testing.T) {
	v := viewOf(t, `
module c2 {
  bird(penguin). bird(pigeon).
  fly(X) :- bird(X).
  -ground_animal(X) :- bird(X).
}
module c1 extends c2 {
  ground_animal(penguin).
  -fly(X) :- ground_animal(X).
}
`, "c1")
	pr := proof.New(v, 0)
	check := func(lit string, want bool) {
		t.Helper()
		l, err := parser.ParseLiteral(lit)
		if err != nil {
			t.Fatal(err)
		}
		id, ok := v.G.Tab.Lookup(l.Atom)
		if !ok {
			t.Fatalf("atom %s not interned", l.Atom)
		}
		got, err := pr.Prove(interp.MkLit(id, l.Neg))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Prove(%s) = %v, want %v", lit, got, want)
		}
	}
	check("fly(pigeon)", true)
	check("-fly(penguin)", true)
	check("fly(penguin)", false)
	check("ground_animal(penguin)", true)
	check("-ground_animal(pigeon)", true)
	check("ground_animal(pigeon)", false)
}

// TestProveMatchesLeastModel: soundness and completeness of the prover
// w.r.t. lfp(V) on random ordered programs, every component, every
// literal of the atom table.
func TestProveMatchesLeastModel(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomOrdered(rng, 1+rng.Intn(3), workload.RandomConfig{
			Atoms: 4 + rng.Intn(3), Rules: 8 + rng.Intn(6), MaxBody: 2,
			NegHeads: true, NegBody: true,
		})
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			least, err := v.LeastModel()
			if err != nil {
				t.Fatal(err)
			}
			pr := proof.New(v, 0)
			for a := 0; a < g.Tab.Len(); a++ {
				for _, neg := range []bool{false, true} {
					l := interp.MkLit(interp.AtomID(a), neg)
					got, err := pr.Prove(l)
					if err != nil {
						t.Fatal(err)
					}
					if want := least.HasLit(l); got != want {
						t.Fatalf("seed %d comp %d: Prove(%s) = %v but least membership = %v\nleast = %s\nprogram:\n%s",
							seed, ci, g.Tab.LitString(l), got, want, least, p)
					}
				}
			}
		}
	}
}

// TestProveOnDatalogOV: the prover answers reachability queries on an
// OV-translated ancestor program, including derived negations.
func TestProveOnDatalogOV(t *testing.T) {
	rules := workload.AncestorChain(8)
	ov, err := transform.OV("c", rules)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ground.Ground(ov, ground.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v, err := eval.NewViewByName(g, "c")
	if err != nil {
		t.Fatal(err)
	}
	least, err := v.LeastModel()
	if err != nil {
		t.Fatal(err)
	}
	pr := proof.New(v, 0)
	for a := 0; a < g.Tab.Len(); a++ {
		for _, neg := range []bool{false, true} {
			l := interp.MkLit(interp.AtomID(a), neg)
			got, err := pr.Prove(l)
			if err != nil {
				t.Fatal(err)
			}
			if want := least.HasLit(l); got != want {
				t.Fatalf("Prove(%s) = %v, least = %v", g.Tab.LitString(l), got, want)
			}
		}
	}
}

func TestProverMemoisation(t *testing.T) {
	v := viewOf(t, "a.\nb :- a.\nc :- b.\n", "main")
	pr := proof.New(v, 0)
	id, _ := v.G.Tab.Lookup(parser.MustParseLiteral("c").Atom)
	for i := 0; i < 3; i++ {
		ok, err := pr.Prove(interp.MkLit(id, false))
		if err != nil || !ok {
			t.Fatalf("round %d: %v %v", i, ok, err)
		}
	}
}

func TestProverCycleTermination(t *testing.T) {
	// Pure circular support must fail finitely.
	v := viewOf(t, "p :- p.\nq :- r.\nr :- q.\n", "main")
	pr := proof.New(v, 0)
	for _, name := range []string{"p", "q", "r"} {
		id, ok := v.G.Tab.Lookup(parser.MustParseLiteral(name).Atom)
		if !ok {
			continue
		}
		got, err := pr.Prove(interp.MkLit(id, false))
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("circular %s proved", name)
		}
	}
}
