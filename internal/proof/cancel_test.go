// Cancellation checkpoints of the goal-directed prover: a dead context
// fails ProveCtx/ExplainCtx with the interrupt sentinel, and the prover
// (with its memo tables) remains usable afterwards.
package proof_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/interp"
	"repro/internal/interrupt"
	"repro/internal/parser"
	"repro/internal/proof"
)

func TestProveCtxCancelled(t *testing.T) {
	v := viewOf(t, `
module c2 {
  bird(penguin). bird(pigeon).
  fly(X) :- bird(X).
  -ground_animal(X) :- bird(X).
}
module c1 extends c2 {
  ground_animal(penguin).
  -fly(X) :- ground_animal(X).
}
`, "c1")
	l, err := parser.ParseLiteral("fly(pigeon)")
	if err != nil {
		t.Fatal(err)
	}
	id, ok := v.G.Tab.Lookup(l.Atom)
	if !ok {
		t.Fatalf("atom %s not interned", l.Atom)
	}
	goal := interp.MkLit(id, l.Neg)

	pr := proof.New(v, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pr.ProveCtx(ctx, goal); !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("ProveCtx: err = %v, want ErrInterrupted", err)
	}
	if _, _, err := pr.ExplainCtx(ctx, goal); !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("ExplainCtx: err = %v, want ErrInterrupted", err)
	}
	// The prover survives an interrupted call: a live context proves the
	// same goal.
	got, err := pr.ProveCtx(context.Background(), goal)
	if err != nil || !got {
		t.Fatalf("ProveCtx after interrupt = %v, %v; want true", got, err)
	}
}
