package proof

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/interp"
	"repro/internal/interrupt"
)

// Tree is a derivation tree witnessing least-model membership: the goal
// literal, the rule instance that derives it, the subtrees proving its
// body, and one refutation (a proved complement of a body literal) for
// every competitor of the rule.
type Tree struct {
	Goal interp.Lit
	// Rule is the local index (in the view) of the firing rule.
	Rule int
	// Body holds one subtree per body literal.
	Body []*Tree
	// Refutations holds, per competitor rule index, the subtree proving
	// the complement of one of its body literals.
	Refutations []Refutation
}

// Refutation records why one competitor cannot stay non-blocked: Blocker
// proves the complement of one of its body literals.
type Refutation struct {
	Competitor int
	Blocker    *Tree
}

// Explain proves the literal and returns its derivation tree, or ok=false
// when the literal is not in the least model. The witness is
// stage-respecting: every subtree's goal enters the fixpoint at a strictly
// earlier V stage than its parent, so the justification is well-founded
// (never circular) regardless of rule ordering. Shared subproofs make the
// tree a DAG; rendering elides repeats.
func (p *Prover) Explain(l interp.Lit) (*Tree, bool, error) {
	return p.ExplainCtx(context.Background(), l)
}

// ExplainCtx is Explain with cooperative cancellation: both the proof
// search and the stage computation poll the context.
func (p *Prover) ExplainCtx(ctx context.Context, l interp.Lit) (*Tree, bool, error) {
	ok, err := p.ProveCtx(ctx, l)
	if err != nil || !ok {
		return nil, false, err
	}
	stages, err := p.stages()
	if err != nil {
		return nil, false, err
	}
	memo := make(map[interp.Lit]*Tree)
	var build func(l interp.Lit) (*Tree, error)
	build = func(l interp.Lit) (*Tree, error) {
		if t, ok := memo[l]; ok {
			return t, nil
		}
		goalStage, ok := stages[l]
		if !ok {
			return nil, fmt.Errorf("proof: internal error: proven literal %s outside lfp(V)",
				p.v.G.Tab.LitString(l))
		}
		t := &Tree{Goal: l, Rule: -1}
		memo[l] = t
	rules:
		for _, ri := range p.v.HeadRules(l) {
			r := int(ri)
			// The rule must fire strictly below the goal's stage: body
			// literals and one blocker per competitor all at < goalStage.
			for _, b := range p.v.Body(r) {
				if s, ok := stages[b]; !ok || s >= goalStage {
					continue rules
				}
			}
			blockers := make([]interp.Lit, 0, len(p.v.Competitors(r)))
			for _, c := range p.v.Competitors(r) {
				blocker, ok := p.earlyBlocker(int(c), stages, goalStage)
				if !ok {
					continue rules
				}
				blockers = append(blockers, blocker)
			}
			t.Rule = r
			for _, b := range p.v.Body(r) {
				sub, err := build(b)
				if err != nil {
					return nil, err
				}
				t.Body = append(t.Body, sub)
			}
			for i, c := range p.v.Competitors(r) {
				sub, err := build(blockers[i])
				if err != nil {
					return nil, err
				}
				t.Refutations = append(t.Refutations, Refutation{Competitor: int(c), Blocker: sub})
			}
			return t, nil
		}
		return nil, fmt.Errorf("proof: internal error: no stage-respecting rule for %s",
			p.v.G.Tab.LitString(l))
	}
	t, err := build(l)
	return t, err == nil, err
}

// stages computes, for every literal of lfp(V), the V iteration at which
// it first appears (1-based). Memoised per prover.
func (p *Prover) stages() (map[interp.Lit]int, error) {
	if p.stageMap != nil {
		return p.stageMap, nil
	}
	stages := make(map[interp.Lit]int)
	cur := interp.New(p.v.G.Tab)
	for round := 1; ; round++ {
		if err := interrupt.Check(p.ctx, "proof: stage computation"); err != nil {
			return nil, err
		}
		next, err := p.v.VOnce(cur)
		if err != nil {
			return nil, err
		}
		changed := false
		for _, l := range next.Lits() {
			if _, ok := stages[l]; !ok {
				stages[l] = round
				changed = true
			}
		}
		if !changed {
			break
		}
		next.UnionWith(cur)
		cur = next
	}
	p.stageMap = stages
	return stages, nil
}

// earlyBlocker finds a body literal of competitor c whose complement
// enters the fixpoint strictly before the given stage.
func (p *Prover) earlyBlocker(c int, stages map[interp.Lit]int, before int) (interp.Lit, bool) {
	for _, b := range p.v.Body(c) {
		if s, ok := stages[b.Complement()]; ok && s < before {
			return b.Complement(), true
		}
	}
	return 0, false
}

// Render prints the tree as indented text. Shared subtrees deeper than
// the first occurrence are elided with "(see above)".
func (t *Tree) Render(p *Prover) string {
	var b strings.Builder
	seen := make(map[*Tree]bool)
	var rec func(t *Tree, prefix string, label string)
	rec = func(t *Tree, prefix, label string) {
		b.WriteString(prefix)
		b.WriteString(label)
		b.WriteString(p.v.G.Tab.LitString(t.Goal))
		if seen[t] && (len(t.Body) > 0 || len(t.Refutations) > 0) {
			b.WriteString("  (see above)\n")
			return
		}
		seen[t] = true
		if t.Rule >= 0 {
			b.WriteString("  by  ")
			b.WriteString(p.v.G.RuleString(p.v.GroundRule(t.Rule)))
		}
		b.WriteByte('\n')
		for _, sub := range t.Body {
			rec(sub, prefix+"  ", "needs ")
		}
		for _, ref := range t.Refutations {
			b.WriteString(prefix + "  blocks competitor ")
			b.WriteString(p.v.G.RuleString(p.v.GroundRule(ref.Competitor)))
			b.WriteByte('\n')
			rec(ref.Blocker, prefix+"    ", "via ")
		}
	}
	rec(t, "", "proved ")
	return b.String()
}
