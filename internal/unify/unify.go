// Package unify implements substitutions, most general unifiers and
// matching for the term language of internal/ast. The grounder and the
// query evaluator are its main clients.
package unify

import (
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/term"
)

// Subst is a substitution: a finite mapping from variable names to terms,
// with an undo trail for cheap backtracking. The zero value is not usable;
// call NewSubst.
type Subst struct {
	m     map[string]ast.Term
	trail []string
}

// NewSubst returns an empty substitution.
func NewSubst() *Subst { return &Subst{m: make(map[string]ast.Term)} }

// Clone returns an independent copy of the substitution (without trail
// history).
func (s *Subst) Clone() *Subst {
	c := &Subst{m: make(map[string]ast.Term, len(s.m))}
	for k, v := range s.m {
		c.m[k] = v
	}
	return c
}

// Mark returns an undo point for Undo. Bindings made after a Mark are
// removed by Undo(mark).
func (s *Subst) Mark() int { return len(s.trail) }

// Undo removes every binding made since the corresponding Mark.
func (s *Subst) Undo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		delete(s.m, s.trail[i])
	}
	s.trail = s.trail[:mark]
}

// Bind records v -> t. It does not check for conflicts or occurs; callers
// that need safety use Unify or Match. Rebinding an already-bound variable
// is not supported (the trail would undo it incorrectly); Unify and Match
// never do so.
func (s *Subst) Bind(v ast.Var, t ast.Term) {
	s.m[v.Name] = t
	s.trail = append(s.trail, v.Name)
}

// Lookup returns the binding of v, or nil if unbound.
func (s *Subst) Lookup(v ast.Var) ast.Term { return s.m[v.Name] }

// Len returns the number of bound variables.
func (s *Subst) Len() int { return len(s.m) }

// Walk resolves t one level: if t is a variable bound in s, follow the
// chain of bindings until an unbound variable or a non-variable term.
func (s *Subst) Walk(t ast.Term) ast.Term {
	for {
		v, ok := t.(ast.Var)
		if !ok {
			return t
		}
		b, ok := s.m[v.Name]
		if !ok {
			return t
		}
		t = b
	}
}

// Apply applies the substitution fully (deeply) to t.
func (s *Subst) Apply(t ast.Term) ast.Term {
	t = s.Walk(t)
	if c, ok := t.(ast.Compound); ok {
		args := make([]ast.Term, len(c.Args))
		for i, a := range c.Args {
			args[i] = s.Apply(a)
		}
		return ast.Compound{Functor: c.Functor, Args: args}
	}
	return t
}

// ApplyAtom applies the substitution to every argument of an atom.
func (s *Subst) ApplyAtom(a ast.Atom) ast.Atom {
	if len(a.Args) == 0 {
		return a
	}
	args := make([]ast.Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.Apply(t)
	}
	return ast.Atom{Pred: a.Pred, Args: args}
}

// ApplyLiteral applies the substitution to the literal's atom.
func (s *Subst) ApplyLiteral(l ast.Literal) ast.Literal {
	return ast.Literal{Neg: l.Neg, Atom: s.ApplyAtom(l.Atom)}
}

// ApplyRule applies the substitution to a whole rule.
func (s *Subst) ApplyRule(r *ast.Rule) *ast.Rule {
	return r.Substitute(func(v ast.Var) ast.Term {
		t := s.Apply(v)
		if tv, ok := t.(ast.Var); ok && tv.Name == v.Name {
			return nil // unbound: keep in place
		}
		return t
	})
}

// String renders the substitution as {X->a, Y->f(b)} with sorted keys.
func (s *Subst) String() string {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteString("->")
		b.WriteString(s.m[k].String())
	}
	b.WriteByte('}')
	return b.String()
}

// occurs reports whether variable v occurs in t under s.
func occurs(s *Subst, v ast.Var, t ast.Term) bool {
	t = s.Walk(t)
	switch t := t.(type) {
	case ast.Var:
		return t.Name == v.Name
	case ast.Compound:
		for _, a := range t.Args {
			if occurs(s, v, a) {
				return true
			}
		}
	}
	return false
}

// Unify extends s to a most general unifier of a and b. It returns false
// (leaving s possibly partially extended) when the terms do not unify;
// callers that need rollback should Clone first. The occurs check is on.
func Unify(s *Subst, a, b ast.Term) bool {
	a, b = s.Walk(a), s.Walk(b)
	if av, ok := a.(ast.Var); ok {
		if bv, ok := b.(ast.Var); ok && av.Name == bv.Name {
			return true
		}
		if occurs(s, av, b) {
			return false
		}
		s.Bind(av, b)
		return true
	}
	if bv, ok := b.(ast.Var); ok {
		if occurs(s, bv, a) {
			return false
		}
		s.Bind(bv, a)
		return true
	}
	switch a := a.(type) {
	case ast.Sym:
		o, ok := b.(ast.Sym)
		return ok && a == o
	case ast.Int:
		o, ok := b.(ast.Int)
		return ok && a == o
	case ast.Compound:
		o, ok := b.(ast.Compound)
		if !ok || a.Functor != o.Functor || len(a.Args) != len(o.Args) {
			return false
		}
		for i := range a.Args {
			if !Unify(s, a.Args[i], o.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// UnifyAtoms extends s to unify two atoms.
func UnifyAtoms(s *Subst, a, b ast.Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !Unify(s, a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// Match extends s so that pattern instantiated by s equals the ground term
// g. Variables may only appear in pattern (one-way unification). Returns
// false when matching fails; s may be partially extended.
func Match(s *Subst, pattern, g ast.Term) bool {
	pattern = s.Walk(pattern)
	if v, ok := pattern.(ast.Var); ok {
		s.Bind(v, g)
		return true
	}
	switch p := pattern.(type) {
	case ast.Sym:
		o, ok := g.(ast.Sym)
		return ok && p == o
	case ast.Int:
		o, ok := g.(ast.Int)
		return ok && p == o
	case ast.Compound:
		o, ok := g.(ast.Compound)
		if !ok || p.Functor != o.Functor || len(p.Args) != len(o.Args) {
			return false
		}
		for i := range p.Args {
			if !Match(s, p.Args[i], o.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// MatchID extends s so that pattern instantiated by s equals the interned
// ground term id over tab. It is the interned fast path of Match: an
// unbound variable binds in O(1) to the decoded term, a ground pattern
// reduces to an id comparison (never interned ⇒ cannot match), and only
// partially bound compounds fall back to structural matching.
func MatchID(s *Subst, pattern ast.Term, id term.ID, tab *term.Table) bool {
	pattern = s.Walk(pattern)
	if v, ok := pattern.(ast.Var); ok {
		s.Bind(v, tab.Term(id))
		return true
	}
	if pattern.Ground() {
		pid, ok := tab.Lookup(pattern)
		return ok && pid == id
	}
	return Match(s, pattern, tab.Term(id))
}

// MatchAtoms extends s to match a pattern atom against a ground atom.
func MatchAtoms(s *Subst, pattern, g ast.Atom) bool {
	if pattern.Pred != g.Pred || len(pattern.Args) != len(g.Args) {
		return false
	}
	for i := range pattern.Args {
		if !Match(s, pattern.Args[i], g.Args[i]) {
			return false
		}
	}
	return true
}

// RenameRule returns a copy of r with every variable renamed using the
// given suffix (X becomes X#suffix). Used to keep rule instances apart.
func RenameRule(r *ast.Rule, suffix string) *ast.Rule {
	return r.Substitute(func(v ast.Var) ast.Term {
		return ast.Var{Name: v.Name + "#" + suffix}
	})
}
