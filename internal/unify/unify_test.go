package unify

import (
	"testing"

	"repro/internal/ast"
)

var (
	x = ast.Var{Name: "X"}
	y = ast.Var{Name: "Y"}
	z = ast.Var{Name: "Z"}
	a = ast.Sym("a")
	b = ast.Sym("b")
)

func f(args ...ast.Term) ast.Term { return ast.Compound{Functor: "f", Args: args} }
func g(args ...ast.Term) ast.Term { return ast.Compound{Functor: "g", Args: args} }

func TestUnifyBasics(t *testing.T) {
	cases := []struct {
		l, r ast.Term
		ok   bool
	}{
		{a, a, true},
		{a, b, false},
		{ast.Int(1), ast.Int(1), true},
		{ast.Int(1), ast.Int(2), false},
		{ast.Int(1), ast.Sym("1"), false},
		{x, a, true},
		{a, x, true},
		{x, y, true},
		{x, x, true},
		{f(a), f(a), true},
		{f(a), f(b), false},
		{f(a), g(a), false},
		{f(a), f(a, b), false},
		{f(x), f(a), true},
		{f(x, x), f(a, b), false},
		{f(x, y), f(a, b), true},
		{f(x, x), f(a, a), true},
		{f(x, b), f(a, y), true},
	}
	for _, c := range cases {
		s := NewSubst()
		if got := Unify(s, c.l, c.r); got != c.ok {
			t.Errorf("Unify(%s, %s) = %v, want %v", c.l, c.r, got, c.ok)
		}
	}
}

func TestUnifyProducesUnifier(t *testing.T) {
	s := NewSubst()
	if !Unify(s, f(x, g(y)), f(g(b), z)) {
		t.Fatal("unification failed")
	}
	l := s.Apply(f(x, g(y)))
	r := s.Apply(f(g(b), z))
	if !l.Equal(r) {
		t.Errorf("applying the mgu does not equalise: %s vs %s", l, r)
	}
}

func TestOccursCheck(t *testing.T) {
	s := NewSubst()
	if Unify(s, x, f(x)) {
		t.Error("X unified with f(X): occurs check missing")
	}
	s = NewSubst()
	if Unify(s, f(x, x), f(y, g(y))) {
		t.Error("indirect occurs violation accepted")
	}
}

func TestUnifyChains(t *testing.T) {
	s := NewSubst()
	if !Unify(s, x, y) || !Unify(s, y, z) || !Unify(s, z, a) {
		t.Fatal("chain unification failed")
	}
	for _, v := range []ast.Term{x, y, z} {
		if got := s.Apply(v); !got.Equal(a) {
			t.Errorf("Apply(%s) = %s, want a", v, got)
		}
	}
}

func TestMatchOneWay(t *testing.T) {
	s := NewSubst()
	if !Match(s, f(x, b), f(a, b)) {
		t.Fatal("match failed")
	}
	if got := s.Apply(x); !got.Equal(a) {
		t.Errorf("X bound to %s", got)
	}
	s = NewSubst()
	if Match(s, f(a), f(b)) {
		t.Error("mismatching constants matched")
	}
	// Match is one-way: already-bound pattern vars must agree.
	s = NewSubst()
	s.Bind(x, a)
	if Match(s, f(x), f(b)) {
		t.Error("bound variable re-matched against different constant")
	}
}

func TestMatchAtoms(t *testing.T) {
	s := NewSubst()
	p := ast.Atom{Pred: "p", Args: []ast.Term{x, y}}
	q := ast.Atom{Pred: "p", Args: []ast.Term{a, b}}
	if !MatchAtoms(s, p, q) {
		t.Fatal("atom match failed")
	}
	if !s.Apply(x).Equal(a) || !s.Apply(y).Equal(b) {
		t.Error("bindings wrong")
	}
	if MatchAtoms(NewSubst(), ast.Atom{Pred: "q"}, ast.Atom{Pred: "p"}) {
		t.Error("different predicates matched")
	}
	if MatchAtoms(NewSubst(), ast.Atom{Pred: "p", Args: []ast.Term{x}}, q) {
		t.Error("different arities matched")
	}
}

func TestMarkUndo(t *testing.T) {
	s := NewSubst()
	s.Bind(x, a)
	m := s.Mark()
	s.Bind(y, b)
	s.Bind(z, a)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Undo(m)
	if s.Len() != 1 {
		t.Errorf("after Undo Len = %d, want 1", s.Len())
	}
	if s.Lookup(x) == nil || s.Lookup(y) != nil || s.Lookup(z) != nil {
		t.Error("Undo removed/kept the wrong bindings")
	}
	// Nested marks.
	m1 := s.Mark()
	s.Bind(y, b)
	m2 := s.Mark()
	s.Bind(z, a)
	s.Undo(m2)
	if s.Lookup(y) == nil || s.Lookup(z) != nil {
		t.Error("nested undo wrong")
	}
	s.Undo(m1)
	if s.Lookup(y) != nil {
		t.Error("outer undo wrong")
	}
}

func TestCloneIsolation(t *testing.T) {
	s := NewSubst()
	s.Bind(x, a)
	c := s.Clone()
	c.Bind(y, b)
	if s.Lookup(y) != nil {
		t.Error("clone shares state")
	}
	if c.Lookup(x) == nil {
		t.Error("clone missed existing binding")
	}
}

func TestApplyRule(t *testing.T) {
	r := &ast.Rule{
		Head: ast.Pos(ast.Atom{Pred: "p", Args: []ast.Term{x}}),
		Body: []ast.Literal{ast.Neg(ast.Atom{Pred: "q", Args: []ast.Term{x, y}})},
	}
	s := NewSubst()
	s.Bind(x, a)
	out := s.ApplyRule(r)
	if got := out.String(); got != "p(a) :- -q(a, Y)." {
		t.Errorf("ApplyRule = %q", got)
	}
}

func TestRenameRule(t *testing.T) {
	r := &ast.Rule{
		Head: ast.Pos(ast.Atom{Pred: "p", Args: []ast.Term{x}}),
		Body: []ast.Literal{ast.Pos(ast.Atom{Pred: "q", Args: []ast.Term{x}})},
	}
	out := RenameRule(r, "7")
	if got := out.String(); got != "p(X#7) :- q(X#7)." {
		t.Errorf("RenameRule = %q", got)
	}
}

func TestSubstString(t *testing.T) {
	s := NewSubst()
	s.Bind(y, b)
	s.Bind(x, f(a))
	if got := s.String(); got != "{X->f(a), Y->b}" {
		t.Errorf("String = %q", got)
	}
}
