package unify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

// randTerm builds a random term of bounded depth over a tiny vocabulary.
func randTerm(rng *rand.Rand, depth int) ast.Term {
	switch {
	case depth <= 0 || rng.Intn(3) == 0:
		switch rng.Intn(3) {
		case 0:
			return ast.Sym([]string{"a", "b", "c"}[rng.Intn(3)])
		case 1:
			return ast.Int(int64(rng.Intn(3)))
		default:
			return ast.Var{Name: []string{"X", "Y", "Z"}[rng.Intn(3)]}
		}
	default:
		k := 1 + rng.Intn(2)
		args := make([]ast.Term, k)
		for i := range args {
			args[i] = randTerm(rng, depth-1)
		}
		return ast.Compound{Functor: []string{"f", "g"}[rng.Intn(2)], Args: args}
	}
}

// TestQuickUnifyIsUnifier: whenever Unify succeeds, applying the
// substitution makes the terms structurally equal.
func TestQuickUnifyIsUnifier(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randTerm(rng, 3), randTerm(rng, 3)
		s := NewSubst()
		if !Unify(s, a, b) {
			return true // failure needs no witness
		}
		return s.Apply(a).Equal(s.Apply(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnifySymmetric: unifiability is symmetric.
func TestQuickUnifySymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randTerm(rng, 3), randTerm(rng, 3)
		ab := Unify(NewSubst(), a, b)
		ba := Unify(NewSubst(), b, a)
		return ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMatchImpliesUnify: a successful one-way match of a pattern
// against a ground term is also a unifier, and matching a term against an
// instance of itself always succeeds.
func TestQuickMatchImpliesUnify(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pattern := randTerm(rng, 3)
		// Build a ground instance of the pattern.
		ground := SubstAllVars(pattern, func(v ast.Var) ast.Term {
			return ast.Sym("g" + v.Name)
		})
		s := NewSubst()
		if !Match(s, pattern, ground) {
			return false
		}
		return s.Apply(pattern).Equal(ground)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// SubstAllVars replaces every variable via fn (test helper).
func SubstAllVars(t ast.Term, fn func(ast.Var) ast.Term) ast.Term {
	return ast.SubstituteTerm(t, fn)
}

// TestQuickUndoRestores: any sequence of marks, binds and undos leaves the
// substitution exactly as it was at the mark.
func TestQuickUndoRestores(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSubst()
		names := []string{"A", "B", "C", "D", "E", "F"}
		// Pre-bind a few.
		for i := 0; i < 2; i++ {
			n := names[rng.Intn(len(names))]
			if s.Lookup(ast.Var{Name: n}) == nil {
				s.Bind(ast.Var{Name: n}, ast.Sym("pre"))
			}
		}
		before := s.String()
		mark := s.Mark()
		for k := 0; k < int(opsRaw%12); k++ {
			n := names[rng.Intn(len(names))]
			if s.Lookup(ast.Var{Name: n}) == nil {
				s.Bind(ast.Var{Name: n}, randTerm(rng, 2))
			}
		}
		s.Undo(mark)
		return s.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
