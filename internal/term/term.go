// Package term implements a hash-consing interner for the term language of
// internal/ast: every distinct ground term (symbol, integer, compound) is
// assigned a dense int32 ID exactly once, making structural equality an
// integer comparison and letting the storage layer keep tuples as []ID
// instead of re-serialising terms to strings on every access.
//
// Variables are also accepted (keyed by name) so that callers which
// tolerated variables in canonical-string keys — atom tables used for
// diagnostics — keep working; relations only ever hold ground tuples.
package term

import (
	"sync"

	"repro/internal/ast"
)

// ID identifies an interned term. IDs are dense: the first interned term
// gets 0, the next 1, and so on, so they index directly into per-column
// buckets and dense side tables.
type ID int32

// None is the sentinel for "no term": unbound pattern positions and failed
// lookups.
const None ID = -1

// Table interns terms. The zero value is not usable; call NewTable.
//
// A Table is safe for concurrent use: the mutating methods (Intern,
// InternSym) take the write lock — concurrent writers serialise on the
// mutex, which also guards the shared key scratch — and the reading
// methods (Lookup, LookupSym, Term, Len) take the read lock. Most of the
// engine funnels interning through one grounding run or snapshot update
// at a time; the sharded grounding workers intern concurrently and lean
// on the write lock.
type Table struct {
	mu    sync.RWMutex
	syms  map[string]ID
	ints  map[int64]ID
	vars  map[string]ID
	comps map[string]ID // packed functor + arg-ID key -> ID
	terms []ast.Term
	buf   []byte // scratch for Intern's compound keys; lookups must not touch it
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		syms:  make(map[string]ID),
		ints:  make(map[int64]ID),
		vars:  make(map[string]ID),
		comps: make(map[string]ID),
	}
}

// Len returns the number of interned terms.
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.terms)
	t.mu.RUnlock()
	return n
}

// Term returns the term for an id. The result shares structure with the
// interned term; ground terms are immutable by convention.
func (t *Table) Term(id ID) ast.Term {
	t.mu.RLock()
	x := t.terms[id]
	t.mu.RUnlock()
	return x
}

func (t *Table) add(x ast.Term) ID {
	id := ID(len(t.terms))
	t.terms = append(t.terms, x)
	return id
}

// AppendID packs an ID as 4 little-endian bytes. Shared key-encoding helper
// for tables that build composite keys over term IDs (atom interning,
// ground-instance dedup).
func AppendID(b []byte, id ID) []byte {
	v := int32(id)
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// compoundKey builds the canonical packed key for a compound with already
// interned argument ids into the scratch buffer b and returns it. The
// functor is length-prefixed so that functor bytes can never bleed into the
// argument ids. Taking the scratch as an argument keeps Lookup read-only
// (callers pass a stack buffer) while Intern reuses the table's own.
func compoundKey(b []byte, functor string, args []ID) []byte {
	b = AppendID(b[:0], ID(len(functor)))
	b = append(b, functor...)
	for _, id := range args {
		b = AppendID(b, id)
	}
	return b
}

// InternSym returns the id for the symbol s, interning it if needed. It is
// Intern(ast.Sym(s)) without boxing the symbol into an interface on the
// already-interned path.
func (t *Table) InternSym(s string) ID {
	t.mu.Lock()
	id := t.internSymLocked(s)
	t.mu.Unlock()
	return id
}

func (t *Table) internSymLocked(s string) ID {
	if id, ok := t.syms[s]; ok {
		return id
	}
	id := t.add(ast.Sym(s))
	t.syms[s] = id
	return id
}

// LookupSym returns the id of the symbol s without interning.
func (t *Table) LookupSym(s string) (ID, bool) {
	t.mu.RLock()
	id, ok := t.syms[s]
	t.mu.RUnlock()
	return id, ok
}

// Intern returns the id for x, interning it (and, for compounds, every
// subterm) if needed. Two structurally equal terms always receive the same
// id, so ID equality is structural equality.
func (t *Table) Intern(x ast.Term) ID {
	t.mu.Lock()
	id := t.internLocked(x)
	t.mu.Unlock()
	return id
}

func (t *Table) internLocked(x ast.Term) ID {
	switch x := x.(type) {
	case ast.Sym:
		return t.internSymLocked(string(x))
	case ast.Int:
		if id, ok := t.ints[int64(x)]; ok {
			return id
		}
		id := t.add(x)
		t.ints[int64(x)] = id
		return id
	case ast.Var:
		if id, ok := t.vars[x.Name]; ok {
			return id
		}
		id := t.add(x)
		t.vars[x.Name] = id
		return id
	case ast.Compound:
		var buf [8]ID
		ids := buf[:0]
		for _, a := range x.Args {
			ids = append(ids, t.internLocked(a))
		}
		t.buf = compoundKey(t.buf, x.Functor, ids)
		if id, ok := t.comps[string(t.buf)]; ok {
			return id
		}
		id := t.add(x)
		t.comps[string(t.buf)] = id
		return id
	}
	panic("term: intern of unknown term kind")
}

// Lookup returns the id of x without interning. The second result is false
// when x (or any subterm) has never been interned — in particular, a ground
// term not present in any relation of the owning store. Lookup takes the
// read lock only (and never touches the table's scratch buffer), so any
// number of concurrent Lookups run against at most one writer.
func (t *Table) Lookup(x ast.Term) (ID, bool) {
	t.mu.RLock()
	id, ok := t.lookupLocked(x)
	t.mu.RUnlock()
	return id, ok
}

func (t *Table) lookupLocked(x ast.Term) (ID, bool) {
	switch x := x.(type) {
	case ast.Sym:
		id, ok := t.syms[string(x)]
		return id, ok
	case ast.Int:
		id, ok := t.ints[int64(x)]
		return id, ok
	case ast.Var:
		id, ok := t.vars[x.Name]
		return id, ok
	case ast.Compound:
		var buf [8]ID
		ids := buf[:0]
		for _, a := range x.Args {
			id, ok := t.lookupLocked(a)
			if !ok {
				return None, false
			}
			ids = append(ids, id)
		}
		var kb [64]byte
		id, ok := t.comps[string(compoundKey(kb[:0], x.Functor, ids))]
		return id, ok
	}
	return None, false
}

// HashIDs returns an FNV-1a hash of an ID tuple, used by the storage layer
// to key its seen-set without serialising the tuple.
func HashIDs(ids []ID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, id := range ids {
		v := uint32(id)
		h = (h ^ uint64(v&0xff)) * prime64
		h = (h ^ uint64((v>>8)&0xff)) * prime64
		h = (h ^ uint64((v>>16)&0xff)) * prime64
		h = (h ^ uint64(v>>24)) * prime64
	}
	return h
}
