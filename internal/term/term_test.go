package term

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
)

func TestInternHashConsing(t *testing.T) {
	tab := NewTable()
	a1 := tab.Intern(ast.Sym("a"))
	a2 := tab.Intern(ast.Sym("a"))
	if a1 != a2 {
		t.Errorf("same symbol interned twice: %d != %d", a1, a2)
	}
	if b := tab.Intern(ast.Sym("b")); b == a1 {
		t.Error("distinct symbols share an id")
	}
	c1 := tab.Intern(ast.Compound{Functor: "f", Args: []ast.Term{ast.Sym("a"), ast.Int(1)}})
	c2 := tab.Intern(ast.Compound{Functor: "f", Args: []ast.Term{ast.Sym("a"), ast.Int(1)}})
	if c1 != c2 {
		t.Errorf("structurally equal compounds differ: %d != %d", c1, c2)
	}
	if c3 := tab.Intern(ast.Compound{Functor: "f", Args: []ast.Term{ast.Int(1), ast.Sym("a")}}); c3 == c1 {
		t.Error("argument order ignored")
	}
	if !tab.Term(c1).Equal(ast.Compound{Functor: "f", Args: []ast.Term{ast.Sym("a"), ast.Int(1)}}) {
		t.Errorf("Term round-trip broken: %s", tab.Term(c1))
	}
}

func TestInternNoCrossKindCollision(t *testing.T) {
	tab := NewTable()
	i := tab.Intern(ast.Int(1))
	s := tab.Intern(ast.Sym("1"))
	v := tab.Intern(ast.Var{Name: "1"})
	if i == s || s == v || i == v {
		t.Errorf("kind collision: int=%d sym=%d var=%d", i, s, v)
	}
	// A symbol whose bytes look like a packed compound key must not collide
	// with a compound.
	c := tab.Intern(ast.Compound{Functor: "g", Args: []ast.Term{ast.Sym("x")}})
	s2 := tab.Intern(ast.Sym("g(x)"))
	if c == s2 {
		t.Error("compound/symbol collision")
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	tab := NewTable()
	if _, ok := tab.Lookup(ast.Sym("ghost")); ok {
		t.Error("Lookup found a never-interned term")
	}
	if tab.Len() != 0 {
		t.Errorf("Lookup interned: Len=%d", tab.Len())
	}
	id := tab.Intern(ast.Compound{Functor: "f", Args: []ast.Term{ast.Sym("a")}})
	got, ok := tab.Lookup(ast.Compound{Functor: "f", Args: []ast.Term{ast.Sym("a")}})
	if !ok || got != id {
		t.Errorf("Lookup after Intern = (%d, %v), want (%d, true)", got, ok, id)
	}
	// Compound with an uninterned subterm: lookup fails without interning.
	n := tab.Len()
	if _, ok := tab.Lookup(ast.Compound{Functor: "f", Args: []ast.Term{ast.Sym("zz")}}); ok {
		t.Error("Lookup found compound with uninterned arg")
	}
	if tab.Len() != n {
		t.Error("failed Lookup grew the table")
	}
}

// TestInternEqualIsStructuralEqual: random deep terms, pairwise — interned
// ids agree exactly when ast.Term.Equal does.
func TestInternEqualIsStructuralEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var gen func(depth int) ast.Term
	gen = func(depth int) ast.Term {
		switch r := rng.Intn(4); {
		case r == 0 || depth >= 3:
			return ast.Sym(fmt.Sprintf("s%d", rng.Intn(4)))
		case r == 1:
			return ast.Int(int64(rng.Intn(3)))
		default:
			n := 1 + rng.Intn(2)
			args := make([]ast.Term, n)
			for i := range args {
				args[i] = gen(depth + 1)
			}
			return ast.Compound{Functor: fmt.Sprintf("f%d", rng.Intn(2)), Args: args}
		}
	}
	tab := NewTable()
	terms := make([]ast.Term, 200)
	ids := make([]ID, len(terms))
	for i := range terms {
		terms[i] = gen(0)
		ids[i] = tab.Intern(terms[i])
	}
	for i := range terms {
		for j := range terms {
			if (ids[i] == ids[j]) != terms[i].Equal(terms[j]) {
				t.Fatalf("id equality diverges from structural equality: %s vs %s (ids %d, %d)",
					terms[i], terms[j], ids[i], ids[j])
			}
		}
	}
}

func TestHashIDsOrderSensitive(t *testing.T) {
	a := HashIDs([]ID{1, 2, 3})
	b := HashIDs([]ID{3, 2, 1})
	if a == b {
		t.Error("permuted tuples hash equal (weak but suspicious)")
	}
	if HashIDs([]ID{1, 2, 3}) != a {
		t.Error("hash not deterministic")
	}
}
