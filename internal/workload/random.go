package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
)

// RandomConfig shapes random propositional program generation.
type RandomConfig struct {
	Atoms    int // number of propositional atoms a0..a(n-1)
	Rules    int // number of rules
	MaxBody  int // maximum body length
	NegHeads bool
	NegBody  bool
}

// RandomPropositional generates a seeded random propositional program.
// Bodies never repeat a literal; heads are negative with probability 1/3
// when NegHeads is set; body literals are negative with probability 1/2
// when NegBody is set.
func RandomPropositional(rng *rand.Rand, cfg RandomConfig) []*ast.Rule {
	prop := func(i int) ast.Atom { return ast.Atom{Pred: fmt.Sprintf("a%d", i)} }
	rules := make([]*ast.Rule, 0, cfg.Rules)
	for r := 0; r < cfg.Rules; r++ {
		head := ast.Literal{Atom: prop(rng.Intn(cfg.Atoms))}
		if cfg.NegHeads && rng.Intn(3) == 0 {
			head.Neg = true
		}
		bodyLen := rng.Intn(cfg.MaxBody + 1)
		used := make(map[int]bool)
		var body []ast.Literal
		for len(body) < bodyLen {
			i := rng.Intn(cfg.Atoms)
			if used[i] {
				break // accept shorter bodies rather than loop
			}
			used[i] = true
			l := ast.Literal{Atom: prop(i)}
			if cfg.NegBody && rng.Intn(2) == 0 {
				l.Neg = true
			}
			body = append(body, l)
		}
		rules = append(rules, &ast.Rule{Head: head, Body: body})
	}
	return rules
}

// RandomDatalog generates a seeded random non-ground seminegative program
// over nconst constants: an EDB relation e/2 with random facts, plus rules
// defining p/1, q/1 and r/2 whose bodies draw on all predicates with
// random sign. Every rule is safe-ish in the weak sense that unbound
// variables are tolerated by the grounder's universe enumeration.
func RandomDatalog(rng *rand.Rand, nconst, nfacts, nrules int) []*ast.Rule {
	c := func(i int) ast.Term { return ast.Sym(fmt.Sprintf("c%d", i)) }
	vnames := []string{"X", "Y", "Z"}
	v := func(i int) ast.Term { return ast.Var{Name: vnames[i%len(vnames)]} }
	var rules []*ast.Rule
	for i := 0; i < nfacts; i++ {
		rules = append(rules, ast.Fact(ast.Pos(ast.Atom{
			Pred: "e", Args: []ast.Term{c(rng.Intn(nconst)), c(rng.Intn(nconst))},
		})))
	}
	preds := []struct {
		name  string
		arity int
	}{{"e", 2}, {"p", 1}, {"q", 1}, {"r", 2}}
	randAtom := func(maxVar int) ast.Atom {
		pk := preds[rng.Intn(len(preds))]
		args := make([]ast.Term, pk.arity)
		for j := range args {
			if rng.Intn(3) == 0 {
				args[j] = c(rng.Intn(nconst))
			} else {
				args[j] = v(rng.Intn(maxVar))
			}
		}
		return ast.Atom{Pred: pk.name, Args: args}
	}
	for i := 0; i < nrules; i++ {
		maxVar := 1 + rng.Intn(2)
		headPk := preds[1+rng.Intn(len(preds)-1)] // never redefine the EDB
		hargs := make([]ast.Term, headPk.arity)
		for j := range hargs {
			hargs[j] = v(rng.Intn(maxVar))
		}
		r := &ast.Rule{Head: ast.Pos(ast.Atom{Pred: headPk.name, Args: hargs})}
		for b := 0; b < 1+rng.Intn(2); b++ {
			r.Body = append(r.Body, ast.Literal{Neg: rng.Intn(3) == 0, Atom: randAtom(maxVar)})
		}
		rules = append(rules, r)
	}
	return rules
}

// RandomOrderedDatalog generates a seeded random NON-ground ordered
// program: comps components over a random DAG order, each holding rules
// over unary predicates p0..p3 and the binary EDB e/2 with nconst
// constants. It exercises grounding, inheritance and competitor retention
// together.
func RandomOrderedDatalog(rng *rand.Rand, comps, nconst int) *ast.OrderedProgram {
	p := ast.NewOrderedProgram()
	c := func(i int) ast.Term { return ast.Sym(fmt.Sprintf("c%d", i)) }
	x, y := ast.Var{Name: "X"}, ast.Var{Name: "Y"}
	unary := []string{"p0", "p1", "p2", "p3"}
	for ci := 0; ci < comps; ci++ {
		comp := &ast.Component{Name: fmt.Sprintf("m%d", ci)}
		// A few EDB facts per component.
		for k := 0; k < 2; k++ {
			comp.AddRule(ast.Fact(ast.Pos(ast.Atom{
				Pred: "e", Args: []ast.Term{c(rng.Intn(nconst)), c(rng.Intn(nconst))},
			})))
			comp.AddRule(ast.Fact(ast.Literal{
				Neg:  rng.Intn(4) == 0,
				Atom: ast.Atom{Pred: unary[rng.Intn(len(unary))], Args: []ast.Term{c(rng.Intn(nconst))}},
			}))
		}
		// A few rules.
		for k := 0; k < 3; k++ {
			head := ast.Literal{
				Neg:  rng.Intn(3) == 0,
				Atom: ast.Atom{Pred: unary[rng.Intn(len(unary))], Args: []ast.Term{x}},
			}
			r := &ast.Rule{Head: head}
			r.Body = append(r.Body, ast.Pos(ast.Atom{Pred: "e", Args: []ast.Term{x, y}}))
			r.Body = append(r.Body, ast.Literal{
				Neg:  rng.Intn(2) == 0,
				Atom: ast.Atom{Pred: unary[rng.Intn(len(unary))], Args: []ast.Term{y}},
			})
			comp.AddRule(r)
		}
		if err := p.AddComponent(comp); err != nil {
			panic(err)
		}
	}
	for i := 0; i < comps; i++ {
		for j := i + 1; j < comps; j++ {
			if rng.Intn(2) == 0 {
				if err := p.AddEdge(fmt.Sprintf("m%d", i), fmt.Sprintf("m%d", j)); err != nil {
					panic(err)
				}
			}
		}
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// RandomOrdered generates a seeded random propositional ordered program:
// comps components over a random DAG order, each holding a slice of a
// random negative program.
func RandomOrdered(rng *rand.Rand, comps int, cfg RandomConfig) *ast.OrderedProgram {
	p := ast.NewOrderedProgram()
	for c := 0; c < comps; c++ {
		rules := RandomPropositional(rng, RandomConfig{
			Atoms:    cfg.Atoms,
			Rules:    cfg.Rules/comps + 1,
			MaxBody:  cfg.MaxBody,
			NegHeads: cfg.NegHeads,
			NegBody:  cfg.NegBody,
		})
		comp := &ast.Component{Name: fmt.Sprintf("m%d", c), Rules: rules}
		if err := p.AddComponent(comp); err != nil {
			panic(err)
		}
	}
	// Random DAG edges respecting the index order (i < j can get an edge
	// m_i < m_j), each present with probability 1/2.
	for i := 0; i < comps; i++ {
		for j := i + 1; j < comps; j++ {
			if rng.Intn(2) == 0 {
				if err := p.AddEdge(fmt.Sprintf("m%d", i), fmt.Sprintf("m%d", j)); err != nil {
					panic(err)
				}
			}
		}
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}
