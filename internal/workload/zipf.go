package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf draws ranks from a Zipf(s) distribution over {0, ..., n-1}:
// P(k) ∝ 1/(k+1)^s. Rank 0 is the most popular item; the serving load
// harness uses one generator for tenant popularity and one for goal
// popularity, so a skewed workload hammers a few hot tenants and goals
// the way real multi-tenant traffic does.
//
// Unlike math/rand.Zipf this accepts any skew s >= 0 (s = 0 is uniform;
// measured serving skews typically sit in 0.9–1.3, below the s > 1 floor
// the standard library insists on) and draws by binary search over a
// precomputed CDF: O(log n) per draw, no rejection loop, fully
// deterministic for a fixed rand.Rand seed.
//
// A Zipf is not safe for concurrent use — it owns its *rand.Rand. Give
// each load-generator worker its own.
type Zipf struct {
	rng *rand.Rand
	s   float64
	cdf []float64 // cdf[k] = P(rank <= k), cdf[n-1] == 1
}

// NewZipf returns a generator over {0, ..., n-1} with skew s >= 0, drawing
// randomness from rng. It panics on n <= 0, s < 0 or a nil rng — the
// callers are harness binaries and tests, where a loud failure beats a
// misconfigured benchmark.
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("workload: NewZipf n = %d, want > 0", n))
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("workload: NewZipf s = %v, want finite >= 0", s))
	}
	if rng == nil {
		panic("workload: NewZipf needs a rand.Rand")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1 // pin the top against float round-off
	return &Zipf{rng: rng, s: s, cdf: cdf}
}

// Next draws one rank in [0, N()).
func (z *Zipf) Next() int {
	// SearchFloat64s returns the least k with cdf[k] >= u; u < 1 and
	// cdf[n-1] == 1 keep the result in range.
	return sort.SearchFloat64s(z.cdf, z.rng.Float64())
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Skew returns the generator's s parameter.
func (z *Zipf) Skew() float64 { return z.s }

// Prob returns the exact probability of rank k, for chi-square checks and
// reporting.
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}
