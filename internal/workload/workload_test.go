package workload_test

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/workload"
)

func TestAncestorChain(t *testing.T) {
	rules := workload.AncestorChain(5)
	// 2 rules + 4 parent facts.
	if len(rules) != 6 {
		t.Fatalf("got %d rules", len(rules))
	}
	facts := 0
	for _, r := range rules {
		if r.IsFact() {
			facts++
			if r.Head.Atom.Pred != "parent" {
				t.Errorf("fact %s is not a parent fact", r)
			}
		}
	}
	if facts != 4 {
		t.Errorf("facts = %d", facts)
	}
}

func TestAncestorTree(t *testing.T) {
	rules := workload.AncestorTree(2, 3) // binary tree of depth 3
	facts := 0
	for _, r := range rules {
		if r.IsFact() {
			facts++
		}
	}
	// 2 + 4 + 8 = 14 edges.
	if facts != 14 {
		t.Errorf("tree facts = %d, want 14", facts)
	}
}

func TestWinMoveEdges(t *testing.T) {
	if got := len(workload.ChainEdges(5)); got != 4 {
		t.Errorf("chain edges = %d", got)
	}
	if got := len(workload.CycleEdges(5)); got != 5 {
		t.Errorf("cycle edges = %d", got)
	}
	if got := len(workload.CycleEdges(1)); got != 0 {
		t.Errorf("singleton cycle edges = %d", got)
	}
	rng := rand.New(rand.NewSource(1))
	edges := workload.RandomEdges(rng, 5, 10)
	if len(edges) != 10 {
		t.Errorf("random edges = %d", len(edges))
	}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		if e[0] == e[1] {
			t.Error("self loop generated")
		}
		if seen[e] {
			t.Error("duplicate edge")
		}
		seen[e] = true
	}
	// Requesting more edges than exist caps at n(n-1).
	if got := len(workload.RandomEdges(rng, 3, 100)); got != 6 {
		t.Errorf("capped random edges = %d, want 6", got)
	}
}

func TestWinMoveProgram(t *testing.T) {
	rules := workload.WinMove([][2]int{{0, 1}})
	if len(rules) != 2 {
		t.Fatalf("rules = %d", len(rules))
	}
	if rules[0].String() != "win(X) :- move(X, Y), -win(Y)." {
		t.Errorf("win rule = %s", rules[0])
	}
}

func TestInheritance(t *testing.T) {
	p := workload.Inheritance(3, 2, 4)
	if len(p.Components) != 3 {
		t.Fatalf("components = %d", len(p.Components))
	}
	// Each level: 2 property rules + 4 member facts.
	for _, c := range p.Components {
		if len(c.Rules) != 6 {
			t.Errorf("level %s has %d rules", c.Name, len(c.Rules))
		}
	}
	i0, _ := p.ComponentIndex("lvl0")
	i2, _ := p.ComponentIndex("lvl2")
	if !p.Less(i0, i2) {
		t.Error("lvl0 < lvl2 missing")
	}
}

func TestRandomPropositionalShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rules := workload.RandomPropositional(rng, workload.RandomConfig{
		Atoms: 4, Rules: 20, MaxBody: 3, NegHeads: false, NegBody: true,
	})
	if len(rules) != 20 {
		t.Fatalf("rules = %d", len(rules))
	}
	for _, r := range rules {
		if r.Head.Neg {
			t.Error("negative head with NegHeads=false")
		}
		if len(r.Body) > 3 {
			t.Errorf("body too long: %s", r)
		}
		seen := map[string]bool{}
		for _, l := range r.Body {
			if seen[l.Atom.Pred] {
				t.Errorf("repeated body atom in %s", r)
			}
			seen[l.Atom.Pred] = true
		}
	}
}

func TestRandomOrderedIsValidPartialOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomOrdered(rng, 4, workload.RandomConfig{
			Atoms: 4, Rules: 8, MaxBody: 2, NegHeads: true, NegBody: true,
		})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(p.Components) != 4 {
			t.Errorf("seed %d: components = %d", seed, len(p.Components))
		}
	}
}

func TestRandomDatalogSafeEDB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rules := workload.RandomDatalog(rng, 4, 5, 6)
	facts, nonFacts := 0, 0
	for _, r := range rules {
		if r.IsFact() {
			facts++
			if r.Head.Atom.Pred != "e" || !r.Head.Atom.Ground() {
				t.Errorf("bad fact %s", r)
			}
		} else {
			nonFacts++
			if r.Head.Atom.Pred == "e" {
				t.Errorf("rule redefines the EDB: %s", r)
			}
		}
	}
	if facts != 5 || nonFacts != 6 {
		t.Errorf("facts=%d rules=%d", facts, nonFacts)
	}
}

func TestDeterministicGenerators(t *testing.T) {
	a := workload.RandomPropositional(rand.New(rand.NewSource(42)), workload.RandomConfig{
		Atoms: 5, Rules: 10, MaxBody: 2, NegHeads: true, NegBody: true,
	})
	b := workload.RandomPropositional(rand.New(rand.NewSource(42)), workload.RandomConfig{
		Atoms: 5, Rules: 10, MaxBody: 2, NegHeads: true, NegBody: true,
	})
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed produced different rule %d: %s vs %s", i, a[i], b[i])
		}
	}
	_ = ast.Rule{} // keep ast import for future expansions
}
