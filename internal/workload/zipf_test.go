package workload

import (
	"math/rand"
	"testing"
)

// Chi-square sanity check: for several skews, the empirical rank counts of
// a large sample must match the generator's own exact probabilities. The
// 0.001 critical value for df = 49 is ~85.4; the seeds are fixed, so the
// statistic is deterministic and a comfortable margin below the bar — a
// failure here means the sampler, not the luck, changed.
func TestZipfChiSquare(t *testing.T) {
	const n, draws = 50, 200000
	for _, s := range []float64{0, 0.5, 0.99, 1.1, 1.5} {
		z := NewZipf(rand.New(rand.NewSource(7)), s, n)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		chi2 := 0.0
		for k := 0; k < n; k++ {
			exp := float64(draws) * z.Prob(k)
			d := float64(counts[k]) - exp
			chi2 += d * d / exp
		}
		if chi2 > 85.4 {
			t.Errorf("s=%v: chi-square = %.1f over %d ranks, exceeds the df=49 p=0.001 bar 85.4", s, chi2, n)
		}
	}
}

// s = 0 must be uniform: every rank's probability is exactly 1/n.
func TestZipfZeroSkewUniform(t *testing.T) {
	const n = 64
	z := NewZipf(rand.New(rand.NewSource(1)), 0, n)
	for k := 0; k < n; k++ {
		if p := z.Prob(k); p < 1.0/n-1e-12 || p > 1.0/n+1e-12 {
			t.Fatalf("s=0: Prob(%d) = %v, want 1/%d", k, p, n)
		}
	}
}

// Probabilities are monotonically non-increasing in rank and sum to 1.
func TestZipfProbShape(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(1)), 1.1, 100)
	sum := 0.0
	for k := 0; k < z.N(); k++ {
		p := z.Prob(k)
		if p <= 0 {
			t.Fatalf("Prob(%d) = %v, want > 0", k, p)
		}
		if k > 0 && p > z.Prob(k-1)+1e-15 {
			t.Fatalf("Prob(%d) = %v exceeds Prob(%d) = %v", k, p, k-1, z.Prob(k-1))
		}
		sum += p
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		t.Fatalf("probabilities sum to %v, want 1", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(z.N()) != 0 {
		t.Fatal("out-of-range Prob must be 0")
	}
	if z.Skew() != 1.1 {
		t.Fatalf("Skew = %v, want 1.1", z.Skew())
	}
}

// Same seed, same sequence: the harness relies on reproducible workloads.
func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(rand.New(rand.NewSource(42)), 1.2, 32)
	b := NewZipf(rand.New(rand.NewSource(42)), 1.2, 32)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d: %d != %d with identical seeds", i, x, y)
		}
	}
}

// High skew concentrates mass at the head: with s = 1.1 over 50 ranks the
// most popular rank must dominate the least popular by a wide margin.
func TestZipfSkewConcentrates(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(3)), 1.1, 50)
	const draws = 50000
	counts := make([]int, z.N())
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if counts[0] < 10*counts[z.N()-1]+1 {
		t.Fatalf("head rank drew %d, tail rank %d — skew 1.1 should dominate by >10x", counts[0], counts[z.N()-1])
	}
}

func TestZipfRejectsBadParameters(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":  func() { NewZipf(rand.New(rand.NewSource(1)), 1, 0) },
		"s<0":  func() { NewZipf(rand.New(rand.NewSource(1)), -1, 10) },
		"@nil": func() { NewZipf(nil, 1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}
