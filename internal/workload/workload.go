// Package workload generates the programs used by the test suite and the
// benchmark harness: classical Datalog workloads (ancestor chains, trees
// and grids, win–move games), ordered knowledge bases (inheritance
// hierarchies with default properties and exceptions), and seeded random
// propositional programs for property-based testing of the paper's
// theorems.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
)

func atom(pred string, args ...ast.Term) ast.Atom { return ast.Atom{Pred: pred, Args: args} }
func sym(s string) ast.Term                       { return ast.Sym(s) }

// AncestorChain returns the classic transitive-closure program over a
// parent chain c0 -> c1 -> ... -> c(n-1): parent facts plus
//
//	anc(X,Y) :- parent(X,Y).
//	anc(X,Y) :- parent(X,Z), anc(Z,Y).
func AncestorChain(n int) []*ast.Rule {
	rules := ancestorRules()
	for i := 0; i+1 < n; i++ {
		rules = append(rules, ast.Fact(ast.Pos(atom("parent", sym(constName(i)), sym(constName(i+1))))))
	}
	return rules
}

// AncestorTree returns the ancestor program over a complete tree of the
// given fanout and depth (depth 0 is a single node).
func AncestorTree(fanout, depth int) []*ast.Rule {
	rules := ancestorRules()
	id := 0
	next := func() string { id++; return constName(id - 1) }
	var grow func(parent string, d int)
	root := next()
	grow = func(parent string, d int) {
		if d == 0 {
			return
		}
		for i := 0; i < fanout; i++ {
			child := next()
			rules = append(rules, ast.Fact(ast.Pos(atom("parent", sym(parent), sym(child)))))
			grow(child, d-1)
		}
	}
	grow(root, depth)
	return rules
}

func ancestorRules() []*ast.Rule {
	x, y, z := ast.Var{Name: "X"}, ast.Var{Name: "Y"}, ast.Var{Name: "Z"}
	return []*ast.Rule{
		{Head: ast.Pos(atom("anc", x, y)), Body: []ast.Literal{ast.Pos(atom("parent", x, y))}},
		{Head: ast.Pos(atom("anc", x, y)), Body: []ast.Literal{
			ast.Pos(atom("parent", x, z)), ast.Pos(atom("anc", z, y))}},
	}
}

func constName(i int) string { return fmt.Sprintf("c%d", i) }

// WinMove returns the win–move game over the given directed edges:
//
//	win(X) :- move(X,Y), -win(Y).
//
// A position is winning when it has a move to a losing one. On cycles the
// well-founded model leaves positions undefined and stable models pick
// orientations.
func WinMove(edges [][2]int) []*ast.Rule {
	x, y := ast.Var{Name: "X"}, ast.Var{Name: "Y"}
	rules := []*ast.Rule{
		{Head: ast.Pos(atom("win", x)), Body: []ast.Literal{
			ast.Pos(atom("move", x, y)), ast.Neg(atom("win", y))}},
	}
	for _, e := range edges {
		rules = append(rules, ast.Fact(ast.Pos(atom("move", sym(constName(e[0])), sym(constName(e[1]))))))
	}
	return rules
}

// ChainEdges returns the edges of a simple path of n nodes.
func ChainEdges(n int) [][2]int {
	var out [][2]int
	for i := 0; i+1 < n; i++ {
		out = append(out, [2]int{i, i + 1})
	}
	return out
}

// CycleEdges returns the edges of a directed cycle of n nodes.
func CycleEdges(n int) [][2]int {
	out := ChainEdges(n)
	if n > 1 {
		out = append(out, [2]int{n - 1, 0})
	}
	return out
}

// RandomEdges returns e distinct random directed edges (no self loops)
// over n nodes.
func RandomEdges(rng *rand.Rand, n, e int) [][2]int {
	seen := make(map[[2]int]bool)
	var out [][2]int
	for len(out) < e && len(out) < n*(n-1) {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		out = append(out, [2]int{a, b})
	}
	return out
}

// Inheritance builds an ordered knowledge base shaped like the paper's
// motivating examples: a linear isa-hierarchy of depth levels (level 0 the
// most specific), each level defining nprops default properties
//
//	level k:  p_i(X) :- member(X).     (for even i)
//	          -p_i(X) :- member(X).    (for odd i)
//
// with each level inverting the sign of property k mod nprops — an
// exception to the level above. Each level holds nmembers member facts.
// The program's least model in the bottom component exercises long
// overruling chains.
func Inheritance(depth, nprops, nmembers int) *ast.OrderedProgram {
	p := ast.NewOrderedProgram()
	x := ast.Var{Name: "X"}
	memberOffset := 0
	for lvl := depth - 1; lvl >= 0; lvl-- {
		c := &ast.Component{Name: fmt.Sprintf("lvl%d", lvl)}
		for i := 0; i < nprops; i++ {
			neg := (i+lvl)%2 == 1
			c.AddRule(&ast.Rule{
				Head: ast.Literal{Neg: neg, Atom: atom(fmt.Sprintf("p%d", i), x)},
				Body: []ast.Literal{ast.Pos(atom("member", x))},
			})
		}
		for m := 0; m < nmembers; m++ {
			c.AddRule(ast.Fact(ast.Pos(atom("member", sym(constName(memberOffset))))))
			memberOffset++
		}
		if err := p.AddComponent(c); err != nil {
			panic(err)
		}
	}
	for lvl := 0; lvl+1 < depth; lvl++ {
		if err := p.AddEdge(fmt.Sprintf("lvl%d", lvl), fmt.Sprintf("lvl%d", lvl+1)); err != nil {
			panic(err)
		}
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}
