// Differential tests pinning the semi-naive least-model engine to its
// naive reference oracle (LeastModelNaive iterates Definition 4's V
// transformation literally) on a large population of seeded workloads, in
// the spirit of the cross-checked evaluators of the plp compiler
// (Delgrande & Schaub). Every fast path must agree with the oracle
// exactly, and the reported fixpoint statistics must be consistent with
// the model produced.
package eval_test

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/workload"
)

// differentialPrograms yields ≥200 seeded programs mixing every random
// workload family plus deterministic inheritance hierarchies.
func differentialPrograms(t *testing.T) []*ast.OrderedProgram {
	t.Helper()
	var progs []*ast.OrderedProgram
	// 80 random propositional ordered programs.
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		progs = append(progs, workload.RandomOrdered(rng, 1+rng.Intn(4), workload.RandomConfig{
			Atoms: 3 + rng.Intn(5), Rules: 5 + rng.Intn(10), MaxBody: 3,
			NegHeads: true, NegBody: true,
		}))
	}
	// 80 random non-ground ordered Datalog programs.
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed + 1_000))
		progs = append(progs, workload.RandomOrderedDatalog(rng, 1+rng.Intn(3), 2+rng.Intn(3)))
	}
	// 48 inheritance hierarchies sweeping depth, properties and members.
	for depth := 1; depth <= 4; depth++ {
		for props := 1; props <= 4; props++ {
			for members := 1; members <= 3; members++ {
				progs = append(progs, workload.Inheritance(depth, props, members))
			}
		}
	}
	if len(progs) < 200 {
		t.Fatalf("differential population too small: %d < 200", len(progs))
	}
	return progs
}

// TestDifferentialLeastModel: on every seeded program and every component,
// the semi-naive engine agrees with the naive oracle as a literal set, and
// FixpointStats.Derived equals the least model's size.
func TestDifferentialLeastModel(t *testing.T) {
	for pi, p := range differentialPrograms(t) {
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			t.Fatalf("program %d: ground: %v", pi, err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			naive, err := v.LeastModelNaive()
			if err != nil {
				t.Fatalf("program %d comp %d: naive: %v", pi, ci, err)
			}
			semi, stats, err := v.LeastModelStats()
			if err != nil {
				t.Fatalf("program %d comp %d: semi-naive: %v", pi, ci, err)
			}
			if !semi.Equal(naive) {
				t.Fatalf("program %d comp %d: semi-naive %s != naive %s\nprogram:\n%s",
					pi, ci, semi, naive, p)
			}
			if stats.Derived != semi.Len() {
				t.Fatalf("program %d comp %d: stats.Derived=%d but model size=%d",
					pi, ci, stats.Derived, semi.Len())
			}
			if stats.Fired < stats.Derived {
				t.Fatalf("program %d comp %d: Fired=%d < Derived=%d",
					pi, ci, stats.Fired, stats.Derived)
			}
		}
	}
}

// TestDifferentialLeastModelFullGrounding repeats the oracle comparison
// under exhaustive grounding, so the agreement is not an artifact of the
// relevance-based grounder.
func TestDifferentialLeastModelFullGrounding(t *testing.T) {
	opts := ground.DefaultOptions()
	opts.Mode = ground.ModeFull
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed + 5_000))
		p := workload.RandomOrdered(rng, 1+rng.Intn(3), workload.RandomConfig{
			Atoms: 3 + rng.Intn(4), Rules: 6 + rng.Intn(8), MaxBody: 2,
			NegHeads: true, NegBody: true,
		})
		g, err := ground.Ground(p, opts)
		if err != nil {
			t.Fatalf("seed %d: ground: %v", seed, err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			naive, err := v.LeastModelNaive()
			if err != nil {
				t.Fatalf("seed %d comp %d: naive: %v", seed, ci, err)
			}
			semi, stats, err := v.LeastModelStats()
			if err != nil {
				t.Fatalf("seed %d comp %d: semi-naive: %v", seed, ci, err)
			}
			if !semi.Equal(naive) {
				t.Fatalf("seed %d comp %d: semi-naive %s != naive %s", seed, ci, semi, naive)
			}
			if stats.Derived != semi.Len() {
				t.Fatalf("seed %d comp %d: Derived=%d, model size=%d",
					seed, ci, stats.Derived, semi.Len())
			}
		}
	}
}
