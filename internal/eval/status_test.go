package eval_test

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/parser"
)

// findRule locates a visible ground rule by its rendered text.
func findRule(t *testing.T, v *eval.View, text string) int {
	t.Helper()
	for r := 0; r < v.NumRules(); r++ {
		if v.G.RuleString(v.GroundRule(r)) == text {
			return r
		}
	}
	t.Fatalf("ground rule %q not found", text)
	return -1
}

func interpFrom(t *testing.T, v *eval.View, lits ...string) *interp.Interp {
	t.Helper()
	in := v.NewInterp()
	for _, s := range lits {
		l, err := parser.ParseLiteral(s)
		if err != nil {
			t.Fatal(err)
		}
		id, ok := v.G.Tab.Lookup(l.Atom)
		if !ok {
			t.Fatalf("atom %s not interned", l.Atom)
		}
		if !in.AddLit(interp.MkLit(id, l.Neg)) {
			t.Fatalf("inconsistent literal %s", s)
		}
	}
	return in
}

// TestExample2Statuses replays the paper's Example 2 verbatim: the rule
// statuses of P1's ground instances w.r.t. the total interpretation I1 in
// component C1.
func TestExample2Statuses(t *testing.T) {
	v := view(t, fig1, "c1", ground.ModeFull)
	i1 := interpFrom(t, v,
		"bird(pigeon)", "bird(penguin)",
		"ground_animal(penguin)", "-ground_animal(pigeon)",
		"fly(pigeon)", "-fly(penguin)")

	// "The ground rule fly(penguin) :- bird(penguin) is applicable but it
	// is overruled by the applied ground rule
	// -fly(penguin) :- ground_animal(penguin)."
	r1 := findRule(t, v, "fly(penguin) :- bird(penguin).")
	st := v.Statuses(r1, i1)
	if !st.Applicable || st.Applied || st.Blocked || !st.Overruled {
		t.Errorf("fly(penguin) rule statuses = %+v; want applicable, overruled", st)
	}
	r2 := findRule(t, v, "-fly(penguin) :- ground_animal(penguin).")
	if !v.Applied(r2, i1) {
		t.Error("-fly(penguin) rule should be applied")
	}
	if !v.OverruledByApplied(r1, i1) {
		t.Error("fly(penguin) rule should be overruled by an applied rule")
	}

	// "The ground rule -fly(pigeon) :- ground_animal(pigeon) is both
	// blocked and non-applicable."
	r3 := findRule(t, v, "-fly(pigeon) :- ground_animal(pigeon).")
	st3 := v.Statuses(r3, i1)
	if !st3.Blocked || st3.Applicable {
		t.Errorf("-fly(pigeon) rule statuses = %+v; want blocked, non-applicable", st3)
	}

	// I1 is a total model for P1 in C1 (Example 3).
	if !i1.Total() {
		t.Error("I1 should be total")
	}
	if !v.IsModel(i1) {
		_, why := v.ModelViolation(i1)
		t.Errorf("I1 rejected: %s", why)
	}
}

// TestExample2Flattened replays the single-component P̂1 part of Example 2:
// with all rules in one component, overruling turns into mutual defeat.
func TestExample2Flattened(t *testing.T) {
	flat := `
bird(penguin). bird(pigeon).
fly(X) :- bird(X).
-ground_animal(X) :- bird(X).
ground_animal(penguin).
-fly(X) :- ground_animal(X).
`
	v := view(t, flat, "main", ground.ModeFull)
	i1 := interpFrom(t, v,
		"bird(pigeon)", "bird(penguin)",
		"ground_animal(penguin)", "-ground_animal(pigeon)",
		"fly(pigeon)", "-fly(penguin)")

	// "the applicable rule fly(penguin) :- bird(penguin) is defeated by
	// the applied rule -fly(penguin) :- ground_animal(penguin)."
	r1 := findRule(t, v, "fly(penguin) :- bird(penguin).")
	st1 := v.Statuses(r1, i1)
	if !st1.Applicable || !st1.Defeated || st1.Overruled {
		t.Errorf("flattened fly(penguin) statuses = %+v; want applicable, defeated, not overruled", st1)
	}
	// "Also the applied rule ground_animal(penguin) is defeated by the
	// applicable rule -ground_animal(penguin) :- bird(penguin)."
	r2 := findRule(t, v, "ground_animal(penguin).")
	st2 := v.Statuses(r2, i1)
	if !st2.Applied || !st2.Defeated {
		t.Errorf("flattened ground_animal(penguin) statuses = %+v; want applied, defeated", st2)
	}
	// I1 is NOT a model of the flattened program in its single component
	// (Example 3): M̂1 leaves the penguin undefined instead.
	if v.IsModel(i1) {
		t.Error("I1 should not be a model of the flattened P1")
	}
	m1hat := interpFrom(t, v,
		"bird(pigeon)", "bird(penguin)", "fly(pigeon)", "-ground_animal(pigeon)")
	if !v.IsModel(m1hat) {
		_, why := v.ModelViolation(m1hat)
		t.Errorf("M̂1 rejected: %s", why)
	}
	if !v.IsAssumptionFree(m1hat) {
		t.Error("M̂1 should be assumption free")
	}
}

// TestTEnabledDirect checks the enabled-version operator on a hand-worked
// case.
func TestTEnabledDirect(t *testing.T) {
	v := view(t, "a.\nb :- a.\nc :- d.\n", "main", ground.ModeFull)
	m := interpFrom(t, v, "a", "b", "c")
	// Applied rules w.r.t. m: a., b :- a (c :- d is not applicable).
	out := v.TEnabled(m)
	want := interpFrom(t, v, "a", "b")
	if !out.Equal(want) {
		t.Errorf("TEnabled = %s, want %s", out, want)
	}
	// Hence m is not assumption free (c has no support), but {a,b} is.
	if v.IsAssumptionFree(m) {
		t.Error("{a,b,c} should not be assumption free")
	}
	if !v.IsAssumptionFree(want) {
		t.Error("{a,b} should be assumption free")
	}
	// FindAssumptionSet pinpoints c.
	x := v.FindAssumptionSet(m)
	if len(x) != 1 || v.G.Tab.LitString(x[0]) != "c" {
		got := make([]string, len(x))
		for i, l := range x {
			got[i] = v.G.Tab.LitString(l)
		}
		t.Errorf("assumption set = %v, want [c]", got)
	}
}

// TestVOnceBehaviour exercises single V steps.
func TestVOnceBehaviour(t *testing.T) {
	v := view(t, "a.\nb :- a.\n", "main", ground.ModeFull)
	s0 := v.NewInterp()
	s1, err := v.VOnce(s0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.String() != "{a}" {
		t.Errorf("V(∅) = %s", s1)
	}
	s2, err := v.VOnce(s1)
	if err != nil {
		t.Fatal(err)
	}
	if s2.String() != "{a, b}" {
		t.Errorf("V(V(∅)) = %s", s2)
	}
	s3, err := v.VOnce(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Equal(s2) {
		t.Error("fixpoint not reached")
	}
}

// TestDuplicateBodyLiterals: the semi-naive counters must track body
// occurrences, not distinct literals — p(a, a) instances can repeat a
// literal in the body.
func TestDuplicateBodyLiterals(t *testing.T) {
	src := `
q(a).
p(X, Y) :- q(X), q(Y).
r :- p(a, a), p(a, a).
`
	for _, mode := range []ground.Mode{ground.ModeSmart, ground.ModeFull} {
		v := view(t, src, "main", mode)
		m, err := v.LeastModel()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		naive, err := v.LeastModelNaive()
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(naive) {
			t.Fatalf("mode %v: semi-naive %s != naive %s", mode, m, naive)
		}
		for _, want := range []string{"q(a)", "p(a, a)", "r"} {
			l, err := parser.ParseLiteral(want)
			if err != nil {
				t.Fatal(err)
			}
			id, ok := v.G.Tab.Lookup(l.Atom)
			if !ok || !m.HasLit(interp.MkLit(id, false)) {
				t.Errorf("mode %v: %s missing from least model %s", mode, want, m)
			}
		}
	}
}

// TestSelfBlockingRule: a rule whose body contains the complement of its
// own head (found by the random tests to be a useful degenerate case).
func TestSelfBlockingRule(t *testing.T) {
	v := view(t, "a :- -a.\n", "main", ground.ModeFull)
	m, err := v.LeastModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Errorf("least model = %s, want {}", m)
	}
	// {a} is not a model: condition (b)? a defined... condition (a): no
	// rules with head -a. Both Def 3 conditions hold for {a}: rules with
	// head -a: none; applicable rules on undefined atoms: none (a is
	// defined). So {a} IS a model — but not assumption free (the rule is
	// blocked by a itself, so nothing supports a).
	in := interpFrom(t, v, "a")
	if !v.IsModel(in) {
		t.Error("{a} should be a (non-assumption-free) model")
	}
	if v.IsAssumptionFree(in) {
		t.Error("{a} should not be assumption free")
	}
}

// TestFixpointStats sanity-checks the run counters.
func TestFixpointStats(t *testing.T) {
	v := view(t, fig1, "c1", ground.ModeFull)
	m, st, err := v.LeastModelStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Derived != m.Len() {
		t.Errorf("Derived = %d, model size = %d", st.Derived, m.Len())
	}
	if st.Fired < st.Derived {
		t.Errorf("Fired = %d < Derived = %d", st.Fired, st.Derived)
	}
	if st.BlockEvents == 0 {
		t.Error("expected some block events on Fig. 1")
	}
	// The stats variant computes the same model.
	plain, err := v.LeastModel()
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(m) {
		t.Error("stats variant changed the model")
	}
}

// TestFunctionSymbols: depth-bounded Herbrand universes make Peano-style
// programs evaluable end to end.
func TestFunctionSymbols(t *testing.T) {
	src := "num(z).\nnum(s(X)) :- num(X).\n"
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := ground.DefaultOptions()
	opts.MaxDepth = 3
	g, err := ground.Ground(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	v := eval.NewView(g, 0)
	m, err := v.LeastModel()
	if err != nil {
		t.Fatal(err)
	}
	// Substitutions range over the depth-3 universe {z, s(z), s²(z),
	// s³(z)}; head terms may add one constructor on top, so the deepest
	// derivable number is s⁴(z).
	for _, want := range []string{
		"num(z)", "num(s(z))", "num(s(s(z)))", "num(s(s(s(z))))", "num(s(s(s(s(z)))))",
	} {
		l, err := parser.ParseLiteral(want)
		if err != nil {
			t.Fatal(err)
		}
		id, ok := g.Tab.Lookup(l.Atom)
		if !ok || !m.HasLit(interp.MkLit(id, false)) {
			t.Errorf("%s missing from least model %s", want, m)
		}
	}
	// Nothing deeper is constructed: s⁴(z) is not in the universe, so no
	// instance has it in a body.
	deep, err := parser.ParseLiteral("num(s(s(s(s(s(z))))))")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Tab.Lookup(deep.Atom); ok {
		t.Error("depth bound exceeded")
	}
}

// TestVOnceInconsistentInput: applying V to an interpretation that enables
// complementary firings is reported, not silently mangled.
func TestVOnceInconsistentInput(t *testing.T) {
	v := view(t, "a :- b.\n-a :- c.\n", "main", ground.ModeFull)
	in := interpFrom(t, v, "b", "c", "-a")
	// With b and c true and rules in one component, the rules defeat each
	// other (both non-blocked)... b's rule is blocked? blocked needs -b or
	// -c in I; neither, so both defeat each other and V derives nothing —
	// no inconsistency arises here.
	out, err := v.VOnce(in)
	if err != nil {
		t.Fatalf("VOnce: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("mutual defeat should derive nothing, got %s", out)
	}
}
