// Counter-consistency tests: the Definition 2 status counters flushed by
// the semi-naive postpass (derived from its own unsat/blocked bookkeeping)
// must agree with the ones flushed by the naive oracle (derived from the
// authoritative View.Statuses) on every program of the differential suite.
// A drift here means the cheap postpass is counting a different relation
// than the paper defines.
package eval_test

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/obs"
)

// statusDelta runs f and returns the eval.rules.* counter deltas it caused.
func statusDelta(t *testing.T, f func() error) obs.Snap {
	t.Helper()
	before := obs.Default().Snap()
	if err := f(); err != nil {
		t.Fatal(err)
	}
	return obs.Default().Snap().Diff(before)
}

func TestCounterConsistencyAppliedRules(t *testing.T) {
	if !obs.On() {
		t.Skip("metrics registry disabled")
	}
	for pi, p := range differentialPrograms(t) {
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			t.Fatalf("program %d: ground: %v", pi, err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			semi := statusDelta(t, func() error { _, err := v.LeastModel(); return err })
			naive := statusDelta(t, func() error { _, err := v.LeastModelNaive(); return err })
			for _, name := range []string{
				"eval.rules.applied",
				"eval.rules.blocked",
				"eval.rules.overruled",
				"eval.rules.defeated",
			} {
				if s, n := semi.Get(name), naive.Get(name); s != n {
					t.Fatalf("program %d comp %d: %s: semi-naive counted %d, naive counted %d\nprogram:\n%s",
						pi, ci, name, s, n, p)
				}
			}
		}
	}
}
