// Differential tests pinning the sharded parallel fixpoint (eval.Sharding)
// to the sequential semi-naive engine on the full seeded corpus: identical
// least models at every shard count, schedule-invariant Definition 2 status
// counters, per-shard work counters that sum to the sequential totals,
// run-to-run determinism, cooperative cancellation without goroutine leaks,
// and termination under adversarial shard-key skew. Run with -race: the
// suite doubles as the data-race certification of the worker/coordinator
// protocol.
package eval_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interrupt"
	"repro/internal/obs"
	"repro/internal/stable"
	"repro/internal/workload"
)

// shardCounts is the sweep every differential check runs at: the trivial
// count (sequential delegation), an even and an odd split, and the
// 8-way target of the scaling experiment.
var shardCounts = []int{1, 2, 3, 8}

// TestShardedDifferentialLeastModel: on every program of the seeded corpus
// and every component, the sharded fixpoint agrees with the sequential
// engine as a literal set at every shard count, and its summed statistics
// describe the same run (Derived = model size, Fired and BlockEvents equal
// the sequential run's — both are schedule-invariant for consistent
// programs, since a rule that fires under one fair schedule cannot end up
// blocked under another without deriving a complementary pair).
func TestShardedDifferentialLeastModel(t *testing.T) {
	for pi, p := range differentialPrograms(t) {
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			t.Fatalf("program %d: ground: %v", pi, err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			seq, seqStats, err := v.LeastModelStats()
			if err != nil {
				t.Fatalf("program %d comp %d: sequential: %v", pi, ci, err)
			}
			for _, n := range shardCounts {
				sh := eval.NewSharding(v, n)
				par, parStats, err := sh.LeastModelStats()
				if err != nil {
					t.Fatalf("program %d comp %d shards %d: %v", pi, ci, n, err)
				}
				if !par.Equal(seq) {
					t.Fatalf("program %d comp %d shards %d:\nsharded    %s\nsequential %s\nprogram:\n%s",
						pi, ci, n, par, seq, p)
				}
				if parStats.Derived != seq.Len() {
					t.Fatalf("program %d comp %d shards %d: Derived=%d, model size=%d",
						pi, ci, n, parStats.Derived, seq.Len())
				}
				if parStats != seqStats {
					t.Fatalf("program %d comp %d shards %d: stats %+v != sequential %+v",
						pi, ci, n, parStats, seqStats)
				}
			}
		}
	}
}

// TestShardedThreatEdgesIntraShard verifies the partition invariant the
// parallel Definition 2 bookkeeping rests on: a rule and every one of its
// overrulers and defeaters land on the same shard (their heads are
// complementary literals over the same atom), and a rule's shard is its
// head atom's shard.
func TestShardedThreatEdgesIntraShard(t *testing.T) {
	progs := differentialPrograms(t)
	for pi := 0; pi < len(progs); pi += 4 {
		p := progs[pi]
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			t.Fatalf("program %d: ground: %v", pi, err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			for _, n := range []int{2, 3, 8} {
				sh := eval.NewSharding(v, n)
				for r := 0; r < v.NumRules(); r++ {
					rs := sh.RuleShard(r)
					if as := sh.AtomShard(v.Head(r).Atom()); as != rs {
						t.Fatalf("program %d comp %d shards %d: rule %d on shard %d, head atom on %d",
							pi, ci, n, r, rs, as)
					}
					for _, o := range v.Overrulers(r) {
						if sh.RuleShard(int(o)) != rs {
							t.Fatalf("program %d comp %d shards %d: overruler edge %d->%d crosses shards %d->%d",
								pi, ci, n, r, o, rs, sh.RuleShard(int(o)))
						}
					}
					for _, d := range v.Defeaters(r) {
						if sh.RuleShard(int(d)) != rs {
							t.Fatalf("program %d comp %d shards %d: defeater edge %d->%d crosses shards %d->%d",
								pi, ci, n, r, d, rs, sh.RuleShard(int(d)))
						}
					}
				}
			}
		}
	}
}

// shardSum reads the per-shard counter family `prefix.N` out of a snapshot
// diff and returns the sum over all shards.
func shardSum(d obs.Snap, prefix string, shards int) int64 {
	var sum int64
	for i := 0; i < shards; i++ {
		sum += d.Get(fmt.Sprintf("%s.%d", prefix, i))
	}
	return sum
}

// TestShardedStatusAndWorkCounters: the Definition 2 status counters
// flushed by a sharded run equal the sequential run's on every corpus
// program, and the per-shard work counters (pops/fired/derived) sum to the
// sequential totals — the work is repartitioned, never duplicated or lost.
func TestShardedStatusAndWorkCounters(t *testing.T) {
	if !obs.On() {
		t.Skip("metrics registry disabled")
	}
	progs := differentialPrograms(t)
	for pi := 0; pi < len(progs); pi += 2 {
		p := progs[pi]
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			t.Fatalf("program %d: ground: %v", pi, err)
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			seq := statusDelta(t, func() error { _, err := v.LeastModel(); return err })
			const n = 3
			sh := eval.NewSharding(v, n)
			par := statusDelta(t, func() error { _, err := sh.LeastModel(); return err })
			for _, name := range []string{
				"eval.rules.applied",
				"eval.rules.blocked",
				"eval.rules.overruled",
				"eval.rules.defeated",
			} {
				if s, pr := seq.Get(name), par.Get(name); s != pr {
					t.Fatalf("program %d comp %d: %s: sequential %d, sharded %d\nprogram:\n%s",
						pi, ci, name, s, pr, p)
				}
			}
			for prefix, total := range map[string]int64{
				"eval.shard.pops":    seq.Get("eval.fixpoint.pops"),
				"eval.shard.fired":   seq.Get("eval.fired"),
				"eval.shard.derived": seq.Get("eval.derived"),
			} {
				if got := shardSum(par, prefix, n); got != total {
					t.Fatalf("program %d comp %d: sum(%s.*)=%d, sequential total=%d",
						pi, ci, prefix, got, total)
				}
			}
		}
	}
}

// TestShardedEngineDifferential compares engines built with and without
// WithShards — the full pipeline, parallel grounding included — on least
// models, assumption-free model families and stable-model sets, as
// rendered literal sets (parallel interning may assign different atom ids;
// the semantics may not notice).
func TestShardedEngineDifferential(t *testing.T) {
	progs := differentialPrograms(t)
	for pi := 0; pi < len(progs); pi += 4 {
		p := progs[pi]
		seqEng, err := core.NewEngine(p, core.Config{})
		if err != nil {
			t.Fatalf("program %d: sequential engine: %v", pi, err)
		}
		for _, n := range []int{2, 8} {
			parEng, err := core.NewEngine(p, core.Config{}, core.WithShards(n))
			if err != nil {
				t.Fatalf("program %d shards %d: engine: %v", pi, n, err)
			}
			for _, c := range p.Components {
				ms, err1 := seqEng.LeastModel(c.Name)
				mp, err2 := parEng.LeastModel(c.Name)
				if err1 != nil || err2 != nil {
					t.Fatalf("program %d comp %s shards %d: least: %v / %v", pi, c.Name, n, err1, err2)
				}
				if ms.String() != mp.String() {
					t.Fatalf("program %d comp %s shards %d:\nsharded    %s\nsequential %s\nprogram:\n%s",
						pi, c.Name, n, mp, ms, p)
				}
				opts := stable.Options{MaxLeaves: 1 << 14}
				afs, err1 := seqEng.AssumptionFreeModels(c.Name, opts)
				afp, err2 := parEng.AssumptionFreeModels(c.Name, opts)
				if err1 != nil || err2 != nil {
					continue // enumeration over budget for this seed; least already pinned
				}
				if !sameRenderedModels(afs, afp) {
					t.Fatalf("program %d comp %s shards %d: assumption-free families differ\nsequential: %v\nsharded:    %v",
						pi, c.Name, n, renderModels(afs), renderModels(afp))
				}
				sts, err1 := seqEng.StableModels(c.Name, opts)
				stp, err2 := parEng.StableModels(c.Name, opts)
				if err1 != nil || err2 != nil {
					continue
				}
				if !sameRenderedModels(sts, stp) {
					t.Fatalf("program %d comp %s shards %d: stable sets differ\nsequential: %v\nsharded:    %v",
						pi, c.Name, n, renderModels(sts), renderModels(stp))
				}
			}
		}
	}
}

func renderModels(ms []*core.Model) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}

func sameRenderedModels(a, b []*core.Model) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]int)
	for _, s := range renderModels(a) {
		seen[s]++
	}
	for _, s := range renderModels(b) {
		seen[s]--
		if seen[s] < 0 {
			return false
		}
	}
	return true
}

// TestShardedDeterminism: the same program taken 20 times through the full
// sharded pipeline — parallel grounding and the 8-way parallel fixpoint —
// produces identical models and identical Definition 2 status counters
// every time. The bulk-synchronous barrier makes each round's input batch a
// pure function of the previous round, so nondeterministic goroutine
// scheduling must not show through anywhere.
func TestShardedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := workload.RandomOrderedDatalog(rng, 3, 4)
	var wantModels []string
	var wantStatus obs.Snap
	statusKeys := []string{
		"eval.rules.applied",
		"eval.rules.blocked",
		"eval.rules.overruled",
		"eval.rules.defeated",
	}
	for run := 0; run < 20; run++ {
		before := obs.Default().Snap()
		eng, err := core.NewEngine(p, core.Config{}, core.WithShards(8))
		if err != nil {
			t.Fatalf("run %d: engine: %v", run, err)
		}
		var models []string
		for _, c := range p.Components {
			m, err := eng.LeastModel(c.Name)
			if err != nil {
				t.Fatalf("run %d comp %s: %v", run, c.Name, err)
			}
			models = append(models, c.Name+": "+m.String())
		}
		status := obs.Default().Snap().Diff(before)
		if run == 0 {
			wantModels, wantStatus = models, status
			continue
		}
		for i, m := range models {
			if m != wantModels[i] {
				t.Fatalf("run %d: model drift\nfirst: %s\nnow:   %s", run, wantModels[i], m)
			}
		}
		if obs.On() {
			for _, k := range statusKeys {
				if status.Get(k) != wantStatus.Get(k) {
					t.Fatalf("run %d: %s = %d, first run had %d", run, k, status.Get(k), wantStatus.Get(k))
				}
			}
		}
	}
}

// shardedView grounds an OV-translated ancestor chain big enough for the
// parallel fixpoint to take several rounds.
func shardedView(t *testing.T) *eval.View {
	t.Helper()
	_, v := chainView(t, 48)
	return v
}

func chainView(t *testing.T, n int) (*ground.Program, *eval.View) {
	t.Helper()
	var b strings.Builder
	b.WriteString("module c {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  par(p%d, p%d).\n", i, i+1)
	}
	b.WriteString("  anc(X, Y) :- par(X, Y).\n")
	b.WriteString("  anc(X, Z) :- par(X, Y), anc(Y, Z).\n}\n")
	v := view(t, b.String(), "c", ground.ModeSmart)
	return v.G, v
}

// TestShardedCancellation: a dead context stops the parallel fixpoint with
// the interrupt sentinel and no partial interpretation; a live context
// afterwards is unaffected; a deadline that expires mid-run is honoured.
func TestShardedCancellation(t *testing.T) {
	v := shardedView(t)
	sh := eval.NewSharding(v, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := sh.LeastModelCtx(ctx)
	if !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("dead context: err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("dead context: err = %v, want to unwrap to context.Canceled", err)
	}
	if m != nil {
		t.Fatalf("partial interpretation returned alongside the interrupt")
	}
	m, err = sh.LeastModelCtx(context.Background())
	if err != nil || m == nil {
		t.Fatalf("live context after abandoned attempt: %v, %v", m, err)
	}
	seq, err := v.LeastModel()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(seq) {
		t.Fatalf("post-cancel run diverged from sequential")
	}
}

// TestShardedNoGoroutineLeaks: repeated successful and cancelled parallel
// runs leave no workers behind — the coordinator joins every worker on both
// the success and the error path.
func TestShardedNoGoroutineLeaks(t *testing.T) {
	v := shardedView(t)
	sh := eval.NewSharding(v, 8)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		if _, err := sh.LeastModel(); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := sh.LeastModelCtx(ctx); !errors.Is(err, interrupt.ErrInterrupted) {
			t.Fatalf("iteration %d: err = %v, want ErrInterrupted", i, err)
		}
	}
	// Workers exit asynchronously after the coordinator returns its error;
	// poll briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 20 runs", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardedSkewRegression: a workload whose every atom keys on the same
// first argument (the adversarial case for hash partitioning — one shard
// owns all the work) still terminates, still matches the sequential model,
// reports the imbalance through the eval.shard.skew gauge, and loses no
// work: per-shard pops still sum to the sequential total.
func TestShardedSkewRegression(t *testing.T) {
	var b strings.Builder
	b.WriteString("module c {\n")
	for i := 0; i < 24; i++ {
		fmt.Fprintf(&b, "  p0(hub, d%d).\n", i)
	}
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, "  p%d(hub, X) :- p%d(hub, X).\n", i+1, i)
	}
	b.WriteString("}\n")
	v := view(t, b.String(), "c", ground.ModeSmart)
	seq, err := v.LeastModel()
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	sh := eval.NewSharding(v, n)
	before := obs.Default().Snap()
	par, err := sh.LeastModel()
	if err != nil {
		t.Fatalf("skewed workload did not terminate cleanly: %v", err)
	}
	if !par.Equal(seq) {
		t.Fatalf("skewed sharded model %s != sequential %s", par, seq)
	}
	if !obs.On() {
		return
	}
	d := obs.Default().Snap().Diff(before)
	if skew := obs.Default().Gauge("eval.shard.skew").Value(); skew != n*100 {
		t.Fatalf("eval.shard.skew = %d, want %d (all pops on one shard of %d)", skew, n*100, n)
	}
	// Every derived atom shares the first-argument key "hub": exactly one
	// shard reports pops.
	busy := 0
	for i := 0; i < n; i++ {
		if d.Get(fmt.Sprintf("eval.shard.pops.%d", i)) > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("%d shards reported pops, want exactly 1 (all atoms key on hub)", busy)
	}
	seqDelta := statusDelta(t, func() error { _, err := v.LeastModel(); return err })
	if got, want := shardSum(d, "eval.shard.pops", n), seqDelta.Get("eval.fixpoint.pops"); got != want {
		t.Fatalf("sum(eval.shard.pops.*) = %d, sequential total = %d", got, want)
	}
}
