package eval_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/parser"
)

// fig1 is the ordered program P1 of Figure 1: the penguin does not fly in
// C1 because C1's rules overrule C2's.
const fig1 = `
module c2 {
  bird(penguin).
  bird(pigeon).
  fly(X) :- bird(X).
  -ground_animal(X) :- bird(X).
}
module c1 extends c2 {
  ground_animal(penguin).
  -fly(X) :- ground_animal(X).
}
`

func view(t *testing.T, src, comp string, mode ground.Mode) *eval.View {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	opts := ground.DefaultOptions()
	opts.Mode = mode
	g, err := ground.Ground(prog, opts)
	if err != nil {
		t.Fatalf("ground: %v", err)
	}
	v, err := eval.NewViewByName(g, comp)
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	return v
}

func modelString(m *interp.Interp) string {
	lits := m.Literals()
	parts := make([]string, len(lits))
	for i, l := range lits {
		parts[i] = l.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

func TestFig1LeastModelInC1(t *testing.T) {
	for _, mode := range []ground.Mode{ground.ModeSmart, ground.ModeFull} {
		v := view(t, fig1, "c1", mode)
		m, err := v.LeastModel()
		if err != nil {
			t.Fatalf("mode %v: least model: %v", mode, err)
		}
		// Example 2/3: I1 is a model for P1 in C1 and it is the least one:
		// penguin does not fly, pigeon flies.
		want := "{-fly(penguin), -ground_animal(pigeon), bird(penguin), bird(pigeon), fly(pigeon), ground_animal(penguin)}"
		if got := modelString(m); got != want {
			t.Errorf("mode %v: least model = %s, want %s", mode, got, want)
		}
		if !v.IsModel(m) {
			_, why := v.ModelViolation(m)
			t.Errorf("mode %v: least model rejected by IsModel: %s", mode, why)
		}
		if !v.IsAssumptionFree(m) {
			t.Errorf("mode %v: least model not assumption free", mode)
		}
		if !v.IsAssumptionFreeDirect(m) {
			t.Errorf("mode %v: least model not assumption free (direct check)", mode)
		}
		naive, err := v.LeastModelNaive()
		if err != nil {
			t.Fatalf("mode %v: naive: %v", mode, err)
		}
		if !naive.Equal(m) {
			t.Errorf("mode %v: naive %s != semi-naive %s", mode, modelString(naive), modelString(m))
		}
	}
}

func TestFig1FlattenedDefeats(t *testing.T) {
	// Example 2's P̂1: all rules of P1 in a single component. The applied
	// fact ground_animal(penguin) and the applicable rule
	// -ground_animal(penguin) :- bird(penguin) defeat each other, so the
	// least model leaves the penguin's status undefined (Example 3's M̂1).
	flat := `
bird(penguin).
bird(pigeon).
fly(X) :- bird(X).
-ground_animal(X) :- bird(X).
ground_animal(penguin).
-fly(X) :- ground_animal(X).
`
	for _, mode := range []ground.Mode{ground.ModeSmart, ground.ModeFull} {
		v := view(t, flat, "main", mode)
		m, err := v.LeastModel()
		if err != nil {
			t.Fatalf("least model: %v", err)
		}
		want := "{-ground_animal(pigeon), bird(penguin), bird(pigeon), fly(pigeon)}"
		if got := modelString(m); got != want {
			t.Errorf("mode %v: least model = %s, want %s", mode, got, want)
		}
		if !v.IsAssumptionFree(m) {
			t.Errorf("mode %v: flattened least model not assumption free", mode)
		}
	}
}

func TestExample3Models(t *testing.T) {
	// P3 = { a :- b.  -a :- b. } in one component C. The paper lists as
	// models: {b}... no — {-b}? It lists (b)... Models per the paper:
	// {-b}, {a,-b}? The stated family is {b}? See Example 3: models are
	// {b}-complement free... The paper states the models are:
	// (b), (-b), (a,-b), (-a,-b) and () — wait, it lists (b), (7b),
	// (a,7b), (7a,7b) and (); we verify exactly that family.
	src := `
a :- b.
-a :- b.
`
	v := view(t, src, "main", ground.ModeFull)
	tab := v.G.Tab
	var aID, bID interp.AtomID
	for i := 0; i < tab.Len(); i++ {
		switch tab.Atom(interp.AtomID(i)).Pred {
		case "a":
			aID = interp.AtomID(i)
		case "b":
			bID = interp.AtomID(i)
		}
	}
	type tc struct {
		name  string
		lits  []interp.Lit
		model bool
	}
	mk := func(id interp.AtomID, neg bool) interp.Lit { return interp.MkLit(id, neg) }
	cases := []tc{
		{"{}", nil, true},
		{"{b}", []interp.Lit{mk(bID, false)}, true},
		{"{-b}", []interp.Lit{mk(bID, true)}, true},
		{"{a,-b}", []interp.Lit{mk(aID, false), mk(bID, true)}, true},
		{"{-a,-b}", []interp.Lit{mk(aID, true), mk(bID, true)}, true},
		{"{a}", []interp.Lit{mk(aID, false)}, false},
		{"{-a}", []interp.Lit{mk(aID, true)}, false},
		{"{a,b}", []interp.Lit{mk(aID, false), mk(bID, false)}, false},
		{"{-a,b}", []interp.Lit{mk(aID, true), mk(bID, false)}, false},
		{"{a,-a}", []interp.Lit{mk(aID, false), mk(aID, true)}, false},
	}
	for _, c := range cases {
		m := v.NewInterp()
		ok := true
		for _, l := range c.lits {
			if !m.AddLit(l) {
				ok = false
			}
		}
		got := ok && v.IsModel(m)
		if got != c.model {
			t.Errorf("IsModel(%s) = %v, want %v", c.name, got, c.model)
		}
	}
}

func TestExample5StableCandidates(t *testing.T) {
	// P5: C1 < C2; C2 = {a. b. c.}; C1 = {-a :- b,c.  -b :- a.  -b :- -b.}
	// Paper: {a,-b,c} and {-a,b,c} are stable; {c} is assumption-free but
	// not stable; the least model is {c}.
	src := `
module c2 {
  a. b. c.
}
module c1 extends c2 {
  -a :- b, c.
  -b :- a.
  -b :- -b.
}
`
	for _, mode := range []ground.Mode{ground.ModeSmart, ground.ModeFull} {
		v := view(t, src, "c1", mode)
		m, err := v.LeastModel()
		if err != nil {
			t.Fatalf("least: %v", err)
		}
		if got := modelString(m); got != "{c}" {
			t.Errorf("mode %v: least model = %s, want {c}", mode, got)
		}
		if !v.IsAssumptionFree(m) {
			t.Errorf("mode %v: {c} should be assumption free", mode)
		}

		lit := func(name string, neg bool) interp.Lit {
			for i := 0; i < v.G.Tab.Len(); i++ {
				if v.G.Tab.Atom(interp.AtomID(i)).Pred == name {
					return interp.MkLit(interp.AtomID(i), neg)
				}
			}
			t.Fatalf("atom %s not interned", name)
			return 0
		}
		m1 := v.NewInterp() // {a, -b, c}
		m1.AddLit(lit("a", false))
		m1.AddLit(lit("b", true))
		m1.AddLit(lit("c", false))
		if !v.IsAssumptionFree(m1) {
			t.Errorf("mode %v: {a,-b,c} should be an assumption-free model", mode)
		}
		m2 := v.NewInterp() // {-a, b, c}
		m2.AddLit(lit("a", true))
		m2.AddLit(lit("b", false))
		m2.AddLit(lit("c", false))
		if !v.IsAssumptionFree(m2) {
			t.Errorf("mode %v: {-a,b,c} should be an assumption-free model", mode)
		}
	}
}
