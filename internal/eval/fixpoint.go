package eval

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/interp"
	"repro/internal/interrupt"
	"repro/internal/obs"
)

// checkStride is the cooperative-cancellation polling interval of the
// fixpoint loops: one context poll per this many worklist pops (or naive
// rounds the naive engine does per poll — every round, since rounds are
// O(rules) each). Small enough that a cancelled context is observed well
// within milliseconds on any real program, large enough to keep the poll
// off the profile.
const checkStride = 256

// kindScratch recycles the per-kind competitor-count scratch the fixpoint
// uses for its metrics bookkeeping, so an enabled registry does not add a
// per-run allocation to evaluation.
var kindScratch = sync.Pool{New: func() any { return new([]int32) }}

// VOnce applies the ordered immediate transformation V once (Definition 4):
// it returns the set of head literals of rules that are applicable and
// neither overruled nor defeated w.r.t. in. The result is a fresh
// interpretation; an inconsistent result (possible only for interpretations
// that are not reachable from ∅) is reported as an error.
func (v *View) VOnce(in *interp.Interp) (*interp.Interp, error) {
	out := v.NewInterp()
	for r := 0; r < len(v.heads); r++ {
		if !v.Applicable(r, in) || v.Overruled(r, in) || v.Defeated(r, in) {
			continue
		}
		if !out.AddLit(v.heads[r]) {
			return nil, fmt.Errorf("eval: V produced inconsistent pair on %s", v.G.Tab.LitString(v.heads[r]))
		}
	}
	return out, nil
}

// LeastModelNaive computes lfp(V) by iterating VOnce from the empty
// interpretation. It is the reference implementation used to cross-check
// the semi-naive engine.
func (v *View) LeastModelNaive() (*interp.Interp, error) {
	return v.LeastModelNaiveCtx(context.Background())
}

// LeastModelNaiveCtx is LeastModelNaive with a cancellation checkpoint per
// naive round.
func (v *View) LeastModelNaiveCtx(ctx context.Context) (*interp.Interp, error) {
	in := v.NewInterp()
	rounds := int64(0)
	for {
		if err := interrupt.Check(ctx, "eval: naive fixpoint round"); err != nil {
			return nil, err
		}
		rounds++
		next, err := v.VOnce(in)
		if err != nil {
			return nil, err
		}
		// V is monotone (Lemma 1), so iterating from ∅ the stages grow;
		// union keeps the code robust even on a non-inflationary step.
		if next.SubsetOf(in) {
			if obs.On() {
				mNaiveFixpoints.Inc()
				mNaiveRounds.Add(rounds)
				v.countStatuses(in)
			}
			return in, nil
		}
		if !next.UnionWith(in) {
			return nil, fmt.Errorf("eval: inconsistent V stage")
		}
		in = next
	}
}

// FixpointStats reports work done by one semi-naive least-model run.
type FixpointStats struct {
	// Fired is the number of rules that fired (including duplicates
	// deriving an already-present literal).
	Fired int
	// Derived is the number of distinct literals derived.
	Derived int
	// BlockEvents is the number of rules that became blocked.
	BlockEvents int
}

// LeastModelStats computes lfp(V) like LeastModel and also reports
// counters describing the run.
func (v *View) LeastModelStats() (*interp.Interp, FixpointStats, error) {
	var st FixpointStats
	in, err := v.leastModel(context.Background(), &st)
	return in, st, err
}

// LeastModel computes lfp(V) — the least model of the program in the view's
// component (Proposition 1, Theorem 1(b)) — with a semi-naive algorithm.
//
// A rule fires when its unsatisfied-body count reaches zero and all its
// overrulers and defeaters are blocked. Both events are monotone along the
// fixpoint: adding literals can only satisfy more body literals and block
// more competitors, so per-rule counters driven by a worklist of newly
// derived literals compute the fixpoint in time linear in the total number
// of body occurrences and competitor edges.
func (v *View) LeastModel() (*interp.Interp, error) {
	return v.leastModel(context.Background(), nil)
}

// LeastModelCtx is LeastModel with cooperative cancellation: the worklist
// loop polls the context every checkStride pops (and once up front), so a
// cancelled or expired context stops the fixpoint within one checkpoint
// interval and returns an interrupt.Error. No partial interpretation is
// returned: a truncated prefix of lfp(V) is not a model of anything.
func (v *View) LeastModelCtx(ctx context.Context) (*interp.Interp, error) {
	return v.leastModel(ctx, nil)
}

func (v *View) leastModel(ctx context.Context, stats *FixpointStats) (*interp.Interp, error) {
	const stage = "eval: semi-naive fixpoint"
	if err := interrupt.Check(ctx, stage); err != nil {
		return nil, err
	}
	n := len(v.heads)
	// One backing array per element type: counters (unsat, unblocked) and
	// flags (blocked, fired) each share an allocation.
	counters := make([]int32, 2*n)
	unsat, unblocked := counters[:n], counters[n:]
	flags := make([]bool, 2*n)
	blocked, fired := flags[:n], flags[n:]
	in := v.NewInterp()
	// Each queued literal is a newly derived head, so n bounds the queue.
	queue := make([]interp.Lit, 0, n)

	// track latches the metrics registry's enabled state for the whole run
	// so bookkeeping and flush agree even if it is toggled mid-run; keep
	// adds the caller's explicit stats request. All Definition 2 status
	// bookkeeping hides inside branches the loop takes at most once per
	// rule (body became satisfied, rule became blocked), so a disabled
	// registry costs the per-edge hot paths nothing: nbOver/nbDef are the
	// per-kind non-blocked competitor counts (maintained only when a rule
	// blocks, off the combined unblocked counter the fire test uses),
	// liveOver/liveDef count the rules still holding a non-blocked
	// overruler resp. defeater, and satBlocked lists the rules whose body
	// was satisfied while some competitor was live — the only candidates
	// for applied-without-firing.
	var st FixpointStats
	track := obs.On()
	keep := track || stats != nil
	var nbOver, nbDef, satBlocked []int32
	liveOver, liveDef := 0, 0
	if track && v.liveOverInit+v.liveDefInit > 0 {
		// Pooled scratch: the copies overwrite whatever a previous run
		// left, and a kind the view has no edges of keeps its stale half —
		// the matching threat lists are all empty, so it is never read.
		scratch := kindScratch.Get().(*[]int32)
		defer kindScratch.Put(scratch)
		if cap(*scratch) < 2*n {
			*scratch = make([]int32, 2*n)
		}
		kind := (*scratch)[:2*n]
		nbOver, nbDef = kind[:n], kind[n:]
		if v.liveOverInit > 0 {
			copy(nbOver, v.overInit)
			liveOver = v.liveOverInit
		}
		if v.liveDefInit > 0 {
			copy(nbDef, v.defInit)
			liveDef = v.liveDefInit
		}
	}

	fire := func(r int) error {
		if fired[r] {
			return nil
		}
		fired[r] = true
		if keep {
			st.Fired++
		}
		h := v.heads[r]
		if in.HasLit(h) {
			return nil
		}
		if !in.AddLit(h) {
			return fmt.Errorf("eval: least-model fixpoint derived inconsistent pair on %s", v.G.Tab.LitString(h))
		}
		if keep {
			st.Derived++
		}
		queue = append(queue, h)
		return nil
	}

	for r := 0; r < n; r++ {
		unsat[r] = int32(len(v.bodies[r]))
		unblocked[r] = int32(len(v.overrulers[r]) + len(v.defeaters[r]))
	}
	for r := 0; r < n; r++ {
		if unsat[r] == 0 && unblocked[r] == 0 {
			if err := fire(r); err != nil {
				return nil, err
			}
		} else if track && unsat[r] == 0 {
			satBlocked = append(satBlocked, int32(r))
		}
	}
	pops := 0
	for head := 0; head < len(queue); head++ {
		pops++
		if pops%checkStride == 0 {
			if err := interrupt.Check(ctx, stage); err != nil {
				return nil, err
			}
		}
		lit := queue[head]
		// The new literal satisfies body occurrences of itself...
		for _, r := range v.bodyOcc(lit) {
			unsat[r]--
			if unsat[r] == 0 {
				if unblocked[r] == 0 {
					if err := fire(int(r)); err != nil {
						return nil, err
					}
				} else if track {
					satBlocked = append(satBlocked, r)
				}
			}
		}
		// ...and blocks every rule with the complement in its body, which
		// in turn releases the rules those threatened.
		for _, r := range v.bodyOcc(lit.Complement()) {
			if blocked[r] {
				continue
			}
			blocked[r] = true
			if keep {
				st.BlockEvents++
			}
			if track {
				// Per-kind live-competitor maintenance, once per rule
				// that blocks: each edge decrement reaches zero at most
				// once, which is exactly when its target stops being
				// overruled resp. defeated.
				for _, s := range v.threatOver[r] {
					if nbOver[s]--; nbOver[s] == 0 {
						liveOver--
					}
				}
				for _, s := range v.threatDef[r] {
					if nbDef[s]--; nbDef[s] == 0 {
						liveDef--
					}
				}
			}
			for _, s := range v.threatened[r] {
				unblocked[s]--
				if unsat[s] == 0 && unblocked[s] == 0 {
					if err := fire(int(s)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if stats != nil {
		*stats = st
	}
	if track {
		// Definition 2 status counts w.r.t. the final model, assembled
		// from the run's own transition bookkeeping with no per-rule
		// postpass. A fired rule is applied (fire implies unsat == 0 and
		// puts the head in the model) and fires at most once, so st.Fired
		// counts those; a non-fired applied rule must have had its body
		// satisfied while a competitor was still live — with all of them
		// blocked it would have fired — so satBlocked holds every other
		// candidate and only the head-membership check remains. The
		// blocked flag flips exactly once per blocked rule, making
		// st.BlockEvents the blocked count, and liveOver/liveDef are the
		// rules still holding a non-blocked overruler resp. defeater —
		// Definition 2's overruled and defeated, exactly.
		applied := int64(st.Fired)
		for _, r := range satBlocked {
			if !fired[r] && in.HasLit(v.heads[r]) {
				applied++
			}
		}
		mFixpoints.Inc()
		mFixpointOps.Add(int64(pops))
		mFired.Add(int64(st.Fired))
		mDerived.Add(int64(st.Derived))
		mBlockEvents.Add(int64(st.BlockEvents))
		mRulesApplied.Add(applied)
		mRulesBlocked.Add(int64(st.BlockEvents))
		mRulesOverruled.Add(int64(liveOver))
		mRulesDefeated.Add(int64(liveDef))
	}
	return in, nil
}

// TEnabled computes lfp(T) over the enabled version C^e_M — the applied
// rules of ground(C*) w.r.t. m (Definition 8, Lemma 2). The result is
// always a subset of m.
func (v *View) TEnabled(m *interp.Interp) *interp.Interp {
	// Collect applied rules once, then run a counter-based fixpoint over
	// them treating literals as opaque tokens.
	type arule struct {
		head interp.Lit
		body []interp.Lit
	}
	var applied []arule
	for r := 0; r < len(v.heads); r++ {
		if v.Applied(r, m) {
			applied = append(applied, arule{v.heads[r], v.bodies[r]})
		}
	}
	out := v.NewInterp()
	occ := make(map[interp.Lit][]int32)
	unsat := make([]int32, len(applied))
	var queue []interp.Lit
	add := func(l interp.Lit) {
		if !out.HasLit(l) {
			// Heads of applied rules are members of the consistent m, so
			// AddLit cannot fail.
			out.AddLit(l)
			queue = append(queue, l)
		}
	}
	for i, r := range applied {
		unsat[i] = int32(len(r.body))
		for _, l := range r.body {
			occ[l] = append(occ[l], int32(i))
		}
		if len(r.body) == 0 {
			add(r.head)
		}
	}
	for len(queue) > 0 {
		l := queue[0]
		queue = queue[1:]
		for _, i := range occ[l] {
			unsat[i]--
			if unsat[i] == 0 {
				add(applied[i].head)
			}
		}
	}
	return out
}
