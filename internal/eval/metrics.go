package eval

import (
	"repro/internal/interp"
	"repro/internal/obs"
)

// Evaluation metrics, resolved once from the process-global registry. The
// fixpoint loops accumulate into locals (or the existing FixpointStats
// counters) and flush once per run, gated on obs.On(); the Definition 2
// status counters ride on the once-per-rule transition branches of the
// semi-naive worklist (body satisfied, rule blocked) so the per-edge hot
// paths stay untouched.
var (
	mFixpoints   = obs.Default().Counter("eval.fixpoints")
	mFixpointOps = obs.Default().Counter("eval.fixpoint.pops")
	mFired       = obs.Default().Counter("eval.fired")
	mDerived     = obs.Default().Counter("eval.derived")
	mBlockEvents = obs.Default().Counter("eval.block_events")

	mNaiveFixpoints = obs.Default().Counter("eval.fixpoints.naive")
	mNaiveRounds    = obs.Default().Counter("eval.fixpoint.rounds")

	mViewsBuilt = obs.Default().Counter("eval.views.built")

	// Definition 2 statuses of the visible rules w.r.t. the least model, one
	// counter per status. The semi-naive run derives them from its own
	// counter/flag arrays, the naive run from the authoritative View
	// predicates; the differential counter-consistency suite asserts the two
	// agree program-by-program.
	mRulesApplied   = obs.Default().Counter("eval.rules.applied")
	mRulesBlocked   = obs.Default().Counter("eval.rules.blocked")
	mRulesOverruled = obs.Default().Counter("eval.rules.overruled")
	mRulesDefeated  = obs.Default().Counter("eval.rules.defeated")

	// Sharded-fixpoint families. The per-shard work counters
	// (eval.shard.pops.N, eval.shard.fired.N, eval.shard.derived.N) are
	// resolved by name at flush time, once per parallel run; their sums
	// equal the sequential eval.fixpoint.pops / eval.fired / eval.derived
	// for the same program, which the counter-consistency suite pins.
	// eval.shard.skew is 100 * max(pops) / mean(pops) for the latest run
	// (100 = perfectly balanced, shards*100 = all work on one shard);
	// eval.shard.xfer counts delta-literal deliveries to non-owner shards
	// (each broadcast literal reaches shards-1 foreign workers).
	mShardRuns   = obs.Default().Counter("eval.shard.runs")
	mShardRounds = obs.Default().Counter("eval.shard.rounds")
	mShardXfer   = obs.Default().Counter("eval.shard.xfer")
	mShardSkew   = obs.Default().Gauge("eval.shard.skew")
)

// countStatuses tallies the Definition 2 statuses of every visible rule
// against the final model using the View predicates and flushes them —
// the naive engine's (authoritative) status accounting.
func (v *View) countStatuses(in *interp.Interp) {
	var applied, blocked, overruled, defeated int64
	for r := 0; r < len(v.heads); r++ {
		st := v.Statuses(r, in)
		if st.Applied {
			applied++
		}
		if st.Blocked {
			blocked++
		}
		if st.Overruled {
			overruled++
		}
		if st.Defeated {
			defeated++
		}
	}
	mRulesApplied.Add(applied)
	mRulesBlocked.Add(blocked)
	mRulesOverruled.Add(overruled)
	mRulesDefeated.Add(defeated)
}
