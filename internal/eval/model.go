package eval

import (
	"repro/internal/interp"
)

// IsModel checks the two conditions of Definition 3 for m in the view's
// component:
//
//	(a) for each literal A ∈ M, every rule with head ¬A is blocked or
//	    overruled by an applied rule;
//	(b) for each undefined atom, every applicable rule deriving either
//	    sign of it is overruled or defeated.
func (v *View) IsModel(m *interp.Interp) bool {
	violation, _ := v.ModelViolation(m)
	return !violation
}

// ModelViolation reports whether m violates Definition 3 and, if so, a
// human-readable reason naming the offending rule.
func (v *View) ModelViolation(m *interp.Interp) (bool, string) {
	if !m.Consistent() {
		return true, "interpretation is inconsistent"
	}
	// Condition (a): iterate rules whose head's complement is in M.
	for r := 0; r < len(v.heads); r++ {
		if !m.HasLit(v.heads[r].Complement()) {
			continue
		}
		if v.Blocked(r, m) || v.OverruledByApplied(r, m) {
			continue
		}
		return true, "condition (a): rule " + v.G.RuleString(v.srcs[r]) +
			" contradicts " + v.G.Tab.LitString(v.heads[r].Complement()) +
			" but is neither blocked nor overruled by an applied rule"
	}
	// Condition (b): iterate applicable rules on undefined atoms.
	for r := 0; r < len(v.heads); r++ {
		if m.Value(v.heads[r].Atom()) != interp.Undef {
			continue
		}
		if !v.Applicable(r, m) {
			continue
		}
		if v.Overruled(r, m) || v.Defeated(r, m) {
			continue
		}
		return true, "condition (b): applicable rule " + v.G.RuleString(v.srcs[r]) +
			" would define " + v.G.Tab.LitString(v.heads[r]) +
			" but is neither overruled nor defeated"
	}
	return false, ""
}

// FindAssumptionSet returns a non-empty assumption set X ⊆ m w.r.t. m
// (Definition 6), or nil if none exists. X is an assumption set when for
// each literal A in X every rule with head A is non-applicable, overruled,
// defeated, or depends on X through its body.
//
// The largest candidate is computed as a greatest fixpoint: start from all
// of m and repeatedly discard literals that have a *supporting* rule — one
// that is applicable, neither overruled nor defeated, and whose body avoids
// the remaining candidate set. Any non-empty remainder is the largest
// assumption set; if the remainder is empty no subset of m is one.
func (v *View) FindAssumptionSet(m *interp.Interp) []interp.Lit {
	x := make(map[interp.Lit]bool)
	for _, l := range m.Lits() {
		x[l] = true
	}
	// Precompute per-rule firing eligibility (independent of X).
	eligible := make([]bool, len(v.heads))
	for r := range v.heads {
		eligible[r] = v.Applicable(r, m) && !v.Overruled(r, m) && !v.Defeated(r, m)
	}
	for changed := true; changed; {
		changed = false
		for l := range x {
			supported := false
			for _, r := range v.headOf[l] {
				if !eligible[r] {
					continue
				}
				dep := false
				for _, b := range v.bodies[r] {
					if x[b] {
						dep = true
						break
					}
				}
				if !dep {
					supported = true
					break
				}
			}
			if supported {
				delete(x, l)
				changed = true
			}
		}
	}
	if len(x) == 0 {
		return nil
	}
	out := make([]interp.Lit, 0, len(x))
	for l := range x {
		out = append(out, l)
	}
	return out
}

// IsAssumptionFreeDirect checks Definition 7 directly: m is a model and no
// subset of m is an assumption set w.r.t. m.
func (v *View) IsAssumptionFreeDirect(m *interp.Interp) bool {
	return v.IsModel(m) && v.FindAssumptionSet(m) == nil
}

// IsAssumptionFree checks Theorem 1(a): m is an assumption-free model iff
// m is a model and lfp(T) over its enabled version equals m. This is the
// efficient check; it agrees with IsAssumptionFreeDirect.
func (v *View) IsAssumptionFree(m *interp.Interp) bool {
	return v.IsModel(m) && v.TEnabled(m).Equal(m)
}

// IsTotal reports whether m assigns a truth value to every atom of the
// (relevant) Herbrand base.
func (v *View) IsTotal(m *interp.Interp) bool { return m.Total() }
