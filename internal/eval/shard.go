// Sharded parallel evaluation of the semi-naive Definition 2 fixpoint.
//
// Atoms are hash-partitioned by first-argument term id (interp.ShardKey mod
// shard count) and each rule is owned by the shard of its head atom. Because
// an atom and its complement share the shard key, every overruler/defeater/
// threat edge of the ordered semantics connects rules with complementary
// heads — i.e. rules on the same shard — so the Definition 2 bookkeeping
// (unblocked-competitor counters, block propagation, the consistency check
// on AddLit) never crosses a shard boundary. Only body satisfaction does:
// a literal derived on one shard may satisfy or block bodies anywhere, so
// workers exchange their newly derived literals in bulk-synchronous rounds
// through a coordinator that concatenates the per-shard deltas in shard
// order and broadcasts one identical batch to every worker.
//
// Correctness: V is monotone (Lemma 1), so lfp(V) is invariant under the
// schedule of counter decrements — any fair chaotic iteration converges to
// the same least fixpoint. The barrier makes the schedule deterministic on
// top of that: round k's batch is a pure function of round k-1's batch, so
// repeated runs do identical work in identical order per worker.
package eval

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/interp"
	"repro/internal/interrupt"
	"repro/internal/obs"
	"repro/internal/term"
)

const shardStage = "eval: sharded fixpoint"

// Sharding is the construct-once parallel-evaluation index of one View: the
// atom and rule partition plus per-shard CSR body-occurrence lists. Like
// the View it wraps, a built Sharding is immutable and safe for
// unsynchronised sharing; each LeastModel run allocates its own workers.
type Sharding struct {
	v *View
	n int

	atomShard  []int32   // owning shard per atom id
	ruleShard  []int32   // owning shard per visible rule (= shard of its head atom)
	shardRules [][]int32 // visible rule indexes per shard, ascending

	// Per-shard CSR body-occurrence index: occ[s][occOff[s][l]:occOff[s][l+1]]
	// lists the shard-s rules with literal l in their body, so a worker
	// walks exactly its own rules for every delta literal.
	occOff [][]int32
	occ    [][]int32
}

// shardOfKey maps a partition key to a shard. term.None (unreachable for
// interned atoms, but kept total) lands on a valid shard too.
func shardOfKey(k term.ID, n int) int32 {
	s := int32(k) % int32(n)
	if s < 0 {
		s += int32(n)
	}
	return s
}

// NewSharding builds the sharded-evaluation index of v for the given shard
// count. Counts below 2 yield a trivial index whose LeastModel methods
// delegate to the sequential engine (same code path, same allocations).
func NewSharding(v *View, shards int) *Sharding {
	n := shards
	if n < 1 {
		n = 1
	}
	sh := &Sharding{v: v, n: n}
	if n == 1 {
		return sh
	}
	nAtoms := v.G.Tab.Len()
	sh.atomShard = make([]int32, nAtoms)
	for id := 0; id < nAtoms; id++ {
		sh.atomShard[id] = shardOfKey(v.G.Tab.ShardKey(interp.AtomID(id)), n)
	}
	nr := len(v.heads)
	sh.ruleShard = make([]int32, nr)
	sh.shardRules = make([][]int32, n)
	for r := 0; r < nr; r++ {
		s := sh.atomShard[v.heads[r].Atom()]
		sh.ruleShard[r] = s
		sh.shardRules[s] = append(sh.shardRules[s], int32(r))
	}
	nLits := 2 * nAtoms
	sh.occOff = make([][]int32, n)
	sh.occ = make([][]int32, n)
	for s := 0; s < n; s++ {
		sh.occOff[s] = make([]int32, nLits+1)
	}
	for l := 0; l < nLits; l++ {
		for _, r := range v.bodyOcc(interp.Lit(l)) {
			sh.occOff[sh.ruleShard[r]][l+1]++
		}
	}
	for s := 0; s < n; s++ {
		off := sh.occOff[s]
		for l := 0; l < nLits; l++ {
			off[l+1] += off[l]
		}
		sh.occ[s] = make([]int32, off[nLits])
	}
	// Fill: literals ascending, so each shard's segment for literal l is
	// written contiguously and the cursor restarts from occOff[s][l].
	cursor := make([]int32, n)
	for l := 0; l < nLits; l++ {
		for s := 0; s < n; s++ {
			cursor[s] = sh.occOff[s][l]
		}
		for _, r := range v.bodyOcc(interp.Lit(l)) {
			s := sh.ruleShard[r]
			sh.occ[s][cursor[s]] = r
			cursor[s]++
		}
	}
	return sh
}

// Shards returns the shard count (1 = sequential delegation).
func (sh *Sharding) Shards() int { return sh.n }

// View returns the view the sharding indexes.
func (sh *Sharding) View() *View { return sh.v }

// AtomShard returns the owning shard of an atom id (only valid for shard
// counts above 1).
func (sh *Sharding) AtomShard(id interp.AtomID) int { return int(sh.atomShard[id]) }

// RuleShard returns the owning shard of a visible rule (only valid for
// shard counts above 1).
func (sh *Sharding) RuleShard(r int) int { return int(sh.ruleShard[r]) }

// shardOcc lists the shard-s rules with literal l in their body.
func (sh *Sharding) shardOcc(s int, l interp.Lit) []int32 {
	return sh.occ[s][sh.occOff[s][int(l)]:sh.occOff[s][int(l)+1]]
}

// LeastModel computes lfp(V) with the sharded workers (Shards() == 1
// delegates to the sequential semi-naive engine).
func (sh *Sharding) LeastModel() (*interp.Interp, error) {
	return sh.LeastModelCtx(context.Background())
}

// LeastModelCtx is LeastModel with cooperative cancellation: every worker
// polls the context on the sequential engine's checkStride, so a cancelled
// or expired context stops the round, joins all workers and returns an
// interrupt.Error with no partial interpretation and no leaked goroutines.
func (sh *Sharding) LeastModelCtx(ctx context.Context) (*interp.Interp, error) {
	if sh.n <= 1 {
		return sh.v.leastModel(ctx, nil)
	}
	return sh.leastModelParallel(ctx, nil)
}

// LeastModelStats is LeastModel with the run's FixpointStats (summed over
// workers for shard counts above 1).
func (sh *Sharding) LeastModelStats() (*interp.Interp, FixpointStats, error) {
	var st FixpointStats
	var in *interp.Interp
	var err error
	if sh.n <= 1 {
		in, err = sh.v.leastModel(context.Background(), &st)
	} else {
		in, err = sh.leastModelParallel(context.Background(), &st)
	}
	return in, st, err
}

// shardWorker is the per-shard state of one parallel run. Counter and flag
// arrays are sized over all visible rules (per-worker memory is the price
// of lock-free indexing by global rule id) but only the owned indexes are
// ever touched; the interpretation holds only owned atoms, so the final
// union across workers is consistent by construction.
type shardWorker struct {
	sh    *Sharding
	id    int
	track bool

	unsat, unblocked []int32
	blocked, fired   []bool
	nbOver, nbDef    []int32
	satBlocked       []int32
	liveOver, liveDef int

	in    *interp.Interp
	queue []interp.Lit // owned heads, derived by this worker
	head  int          // queue drain cursor
	sent  int          // queue prefix already handed to the coordinator

	pops    int64 // owned literals processed (sums to the sequential pop count)
	foreign int64 // non-owned batch literals processed
	st      FixpointStats
}

func (w *shardWorker) fire(r int) error {
	if w.fired[r] {
		return nil
	}
	w.fired[r] = true
	w.st.Fired++
	h := w.sh.v.heads[r]
	if w.in.HasLit(h) {
		return nil
	}
	if !w.in.AddLit(h) {
		// Both literals of the pair are owned here (same atom, same shard),
		// so the check is exactly the sequential engine's.
		return fmt.Errorf("eval: least-model fixpoint derived inconsistent pair on %s", w.sh.v.G.Tab.LitString(h))
	}
	w.st.Derived++
	w.queue = append(w.queue, h)
	return nil
}

// processLit applies one delta literal to the worker's owned rules: body
// satisfaction on the literal, blocking (plus threat release and the
// Definition 2 status bookkeeping) on its complement. All rule indexes
// reached here are owned by construction of the per-shard occurrence lists
// and the intra-shard threat invariant.
func (w *shardWorker) processLit(lit interp.Lit) error {
	v, sh := w.sh.v, w.sh
	for _, r := range sh.shardOcc(w.id, lit) {
		w.unsat[r]--
		if w.unsat[r] == 0 {
			if w.unblocked[r] == 0 {
				if err := w.fire(int(r)); err != nil {
					return err
				}
			} else if w.track {
				w.satBlocked = append(w.satBlocked, r)
			}
		}
	}
	for _, r := range sh.shardOcc(w.id, lit.Complement()) {
		if w.blocked[r] {
			continue
		}
		w.blocked[r] = true
		w.st.BlockEvents++
		if w.track {
			for _, s := range v.threatOver[r] {
				if w.nbOver[s]--; w.nbOver[s] == 0 {
					w.liveOver--
				}
			}
			for _, s := range v.threatDef[r] {
				if w.nbDef[s]--; w.nbDef[s] == 0 {
					w.liveDef--
				}
			}
		}
		for _, s := range v.threatened[r] {
			w.unblocked[s]--
			if w.unsat[s] == 0 && w.unblocked[s] == 0 {
				if err := w.fire(int(s)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// drain processes the worker's own queue to quiescence — every owned
// literal is popped exactly once, here and only here, which is what makes
// the per-shard pop counters sum to the sequential total — and returns the
// literals derived since the last hand-off as the round's outbox.
func (w *shardWorker) drain(ctx context.Context) ([]interp.Lit, error) {
	for w.head < len(w.queue) {
		w.pops++
		if w.pops%checkStride == 0 {
			if err := interrupt.Check(ctx, shardStage); err != nil {
				return nil, err
			}
		}
		lit := w.queue[w.head]
		w.head++
		if err := w.processLit(lit); err != nil {
			return nil, err
		}
	}
	out := w.queue[w.sent:]
	w.sent = len(w.queue)
	return out, nil
}

// round0 initialises the owned counters, fires the owned rules that start
// applicable and unthreatened, and drains.
func (w *shardWorker) round0(ctx context.Context) ([]interp.Lit, error) {
	if err := interrupt.Check(ctx, shardStage); err != nil {
		return nil, err
	}
	v := w.sh.v
	n := len(v.heads)
	counters := make([]int32, 2*n)
	w.unsat, w.unblocked = counters[:n], counters[n:]
	flags := make([]bool, 2*n)
	w.blocked, w.fired = flags[:n], flags[n:]
	w.in = v.NewInterp()
	mine := w.sh.shardRules[w.id]
	w.queue = make([]interp.Lit, 0, len(mine))
	if w.track {
		kind := make([]int32, 2*n)
		w.nbOver, w.nbDef = kind[:n], kind[n:]
	}
	for _, r := range mine {
		w.unsat[r] = int32(len(v.bodies[r]))
		w.unblocked[r] = int32(len(v.overrulers[r]) + len(v.defeaters[r]))
		if w.track {
			w.nbOver[r] = v.overInit[r]
			w.nbDef[r] = v.defInit[r]
			if w.nbOver[r] > 0 {
				w.liveOver++
			}
			if w.nbDef[r] > 0 {
				w.liveDef++
			}
		}
	}
	for _, r := range mine {
		if w.unsat[r] == 0 && w.unblocked[r] == 0 {
			if err := w.fire(int(r)); err != nil {
				return nil, err
			}
		} else if w.track && w.unsat[r] == 0 {
			w.satBlocked = append(w.satBlocked, r)
		}
	}
	return w.drain(ctx)
}

// round applies one broadcast batch — skipping the worker's own literals,
// which drain already processed — and drains the fallout.
func (w *shardWorker) round(ctx context.Context, batch []interp.Lit) ([]interp.Lit, error) {
	for i, lit := range batch {
		if i%checkStride == checkStride-1 {
			if err := interrupt.Check(ctx, shardStage); err != nil {
				return nil, err
			}
		}
		if w.sh.atomShard[lit.Atom()] == int32(w.id) {
			continue
		}
		w.foreign++
		if err := w.processLit(lit); err != nil {
			return nil, err
		}
	}
	return w.drain(ctx)
}

// roundResult is one worker's barrier hand-off: the literals it derived
// this round, or the error that stopped it.
type roundResult struct {
	shard int
	delta []interp.Lit
	err   error
}

func (sh *Sharding) leastModelParallel(ctx context.Context, stats *FixpointStats) (*interp.Interp, error) {
	if err := interrupt.Check(ctx, shardStage); err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	n := sh.n
	track := obs.On()
	workers := make([]*shardWorker, n)
	inboxes := make([]chan []interp.Lit, n)
	// results is sized so a worker's send never blocks: at most one result
	// per worker is outstanding per round.
	results := make(chan roundResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		workers[i] = &shardWorker{sh: sh, id: i, track: track}
		inboxes[i] = make(chan []interp.Lit, 1)
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(w *shardWorker, inbox <-chan []interp.Lit) {
			defer wg.Done()
			delta, err := w.round0(runCtx)
			results <- roundResult{shard: w.id, delta: delta, err: err}
			if err != nil {
				return
			}
			for b := range inbox {
				delta, err := w.round(runCtx, b)
				results <- roundResult{shard: w.id, delta: delta, err: err}
				if err != nil {
					return
				}
			}
		}(workers[i], inboxes[i])
	}
	// shutdown ends the round loop for every still-live worker (an erred
	// worker has already returned; closing its unread inbox is harmless)
	// and joins them all, so no goroutine outlives this call.
	shutdown := func() {
		for _, ch := range inboxes {
			close(ch)
		}
		wg.Wait()
	}

	deltas := make([][]interp.Lit, n)
	rounds, xfer := int64(0), int64(0)
	for {
		// Barrier: exactly one result per worker per round, errors included.
		var firstErr error
		for i := 0; i < n; i++ {
			r := <-results
			if r.err != nil && firstErr == nil {
				firstErr = r.err
				cancel() // stop the surviving workers at their next checkpoint
			}
			deltas[r.shard] = r.delta
		}
		if firstErr != nil {
			shutdown()
			// No partial interpretation: a truncated prefix of lfp(V) is
			// not a model of anything (same contract as LeastModelCtx).
			return nil, firstErr
		}
		rounds++
		total := 0
		for _, d := range deltas {
			total += len(d)
		}
		if total == 0 {
			break
		}
		// Concatenate in shard order: every worker receives one identical,
		// deterministic batch, so the next round's work is schedule-free.
		batch := make([]interp.Lit, 0, total)
		for _, d := range deltas {
			batch = append(batch, d...)
		}
		xfer += int64(total) * int64(n-1)
		for _, ch := range inboxes {
			ch <- batch
		}
	}
	shutdown()

	out := sh.v.NewInterp()
	var st FixpointStats
	pops := int64(0)
	for _, w := range workers {
		if !out.UnionWith(w.in) {
			// Unreachable: workers own disjoint atom sets and are internally
			// consistent; kept as a structural invariant check.
			return nil, fmt.Errorf("eval: sharded fixpoint merged inconsistent shard interpretations")
		}
		st.Fired += w.st.Fired
		st.Derived += w.st.Derived
		st.BlockEvents += w.st.BlockEvents
		pops += w.pops
	}
	if stats != nil {
		*stats = st
	}
	if track {
		applied := int64(st.Fired)
		liveOver, liveDef := int64(0), int64(0)
		maxPops := int64(0)
		for _, w := range workers {
			liveOver += int64(w.liveOver)
			liveDef += int64(w.liveDef)
			for _, r := range w.satBlocked {
				if !w.fired[r] && w.in.HasLit(sh.v.heads[r]) {
					applied++
				}
			}
			if w.pops > maxPops {
				maxPops = w.pops
			}
			obs.Default().Counter(fmt.Sprintf("eval.shard.pops.%d", w.id)).Add(w.pops)
			obs.Default().Counter(fmt.Sprintf("eval.shard.fired.%d", w.id)).Add(int64(w.st.Fired))
			obs.Default().Counter(fmt.Sprintf("eval.shard.derived.%d", w.id)).Add(int64(w.st.Derived))
		}
		skew := int64(100)
		if pops > 0 {
			skew = maxPops * int64(n) * 100 / pops
		}
		mShardSkew.Set(skew)
		mShardRuns.Inc()
		mShardRounds.Add(rounds)
		mShardXfer.Add(xfer)
		mFixpoints.Inc()
		mFixpointOps.Add(pops)
		mFired.Add(int64(st.Fired))
		mDerived.Add(int64(st.Derived))
		mBlockEvents.Add(int64(st.BlockEvents))
		mRulesApplied.Add(applied)
		mRulesBlocked.Add(int64(st.BlockEvents))
		mRulesOverruled.Add(liveOver)
		mRulesDefeated.Add(liveDef)
	}
	return out, nil
}
