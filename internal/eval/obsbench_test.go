package eval_test

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/obs"
	"repro/internal/transform"
	"repro/internal/workload"
)

func benchLeast(b *testing.B, on bool) {
	ov, err := transform.OV("c", workload.AncestorChain(32))
	if err != nil {
		b.Fatal(err)
	}
	g, err := ground.Ground(ov, ground.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	v, err := eval.NewViewByName(g, "c")
	if err != nil {
		b.Fatal(err)
	}
	obs.SetEnabled(on)
	defer obs.SetEnabled(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.LeastModel(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeastObsOff(b *testing.B) { benchLeast(b, false) }
func BenchmarkLeastObsOn(b *testing.B)  { benchLeast(b, true) }
