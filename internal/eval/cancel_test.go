// Cancellation checkpoints of the fixpoint evaluators: a dead context
// fails immediately with the interrupt sentinel, a live one is unaffected.
package eval_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ground"
	"repro/internal/interrupt"
)

func TestLeastModelCtxCancelled(t *testing.T) {
	v := view(t, fig1, "c1", ground.ModeSmart)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := v.LeastModelCtx(ctx); !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("LeastModelCtx: err = %v, want ErrInterrupted", err)
	}
	if _, err := v.LeastModelNaiveCtx(ctx); !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("LeastModelNaiveCtx: err = %v, want ErrInterrupted", err)
	}
	// No partial interpretation accompanies the error: a truncated prefix
	// of lfp(V) is not a model of anything.
	m, err := v.LeastModelCtx(context.Background())
	if err != nil || m == nil {
		t.Fatalf("live context after abandoned attempts: %v, %v", m, err)
	}
}
