// Property-based tests for §2 of the paper on seeded random ordered
// programs: Lemma 1 (monotonicity of V), Proposition 1 (lfp(V) is a
// model), Theorem 1(a) (assumption freedom ⟺ enabled-version fixpoint),
// Theorem 1(b) (lfp(V) is assumption free and is the intersection of all
// models), Proposition 2 (every model extends to an exhaustive one), and
// the agreement of smart and full grounding.
package eval_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/stable"
	"repro/internal/transform"
	"repro/internal/workload"
)

func randomOrdered(seed int64) *ast.OrderedProgram {
	rng := rand.New(rand.NewSource(seed))
	comps := 1 + rng.Intn(3)
	return workload.RandomOrdered(rng, comps, workload.RandomConfig{
		Atoms: 3 + rng.Intn(3), Rules: 6 + rng.Intn(6), MaxBody: 2,
		NegHeads: true, NegBody: true,
	})
}

func groundMode(t *testing.T, p *ast.OrderedProgram, mode ground.Mode) *ground.Program {
	t.Helper()
	opts := ground.DefaultOptions()
	opts.Mode = mode
	g, err := ground.Ground(p, opts)
	if err != nil {
		t.Fatalf("ground: %v", err)
	}
	return g
}

// randomInterp builds a random consistent interpretation over the table.
func randomInterp(rng *rand.Rand, tab *interp.Table) *interp.Interp {
	in := interp.New(tab)
	for i := 0; i < tab.Len(); i++ {
		switch rng.Intn(3) {
		case 0:
			in.AddLit(interp.MkLit(interp.AtomID(i), false))
		case 1:
			in.AddLit(interp.MkLit(interp.AtomID(i), true))
		}
	}
	return in
}

const propTrials = 80

// TestLemma1Monotone: I ⊆ J implies V(I) ⊆ V(J).
func TestLemma1Monotone(t *testing.T) {
	for seed := int64(0); seed < propTrials; seed++ {
		p := randomOrdered(seed)
		g := groundMode(t, p, ground.ModeFull)
		rng := rand.New(rand.NewSource(seed + 10_000))
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			for trial := 0; trial < 5; trial++ {
				small := randomInterp(rng, g.Tab)
				// Grow small into a consistent superset.
				big := small.Clone()
				for i := 0; i < g.Tab.Len(); i++ {
					id := interp.AtomID(i)
					if big.Value(id) == interp.Undef && rng.Intn(2) == 0 {
						big.AddLit(interp.MkLit(id, rng.Intn(2) == 0))
					}
				}
				vs, err1 := v.VOnce(small)
				vb, err2 := v.VOnce(big)
				if err1 != nil || err2 != nil {
					// V of an arbitrary interpretation may derive a
					// complementary pair; monotonicity as set inclusion is
					// only claimed within the consistent lattice, so skip.
					continue
				}
				if !vs.SubsetOf(vb) {
					t.Fatalf("seed %d comp %d: V not monotone:\nI=%s -> %s\nJ=%s -> %s",
						seed, ci, small, vs, big, vb)
				}
			}
		}
	}
}

// TestTheorem1 checks, per component: the least model is a model, is
// assumption free under both the direct Definition 6/7 check and the
// Theorem 1(a) fixpoint check, those two checks agree on random
// interpretations, and the least model is the intersection of all models
// (Theorem 1(b)).
func TestTheorem1(t *testing.T) {
	for seed := int64(0); seed < propTrials; seed++ {
		p := randomOrdered(seed)
		g := groundMode(t, p, ground.ModeFull)
		rng := rand.New(rand.NewSource(seed + 20_000))
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			least, err := v.LeastModel()
			if err != nil {
				t.Fatalf("seed %d comp %d: least: %v", seed, ci, err)
			}
			naive, err := v.LeastModelNaive()
			if err != nil {
				t.Fatalf("seed %d comp %d: naive least: %v", seed, ci, err)
			}
			if !least.Equal(naive) {
				t.Fatalf("seed %d comp %d: semi-naive %s != naive %s", seed, ci, least, naive)
			}
			if !v.IsModel(least) {
				_, why := v.ModelViolation(least)
				t.Fatalf("seed %d comp %d: least model %s is not a model: %s", seed, ci, least, why)
			}
			if !v.IsAssumptionFree(least) || !v.IsAssumptionFreeDirect(least) {
				t.Fatalf("seed %d comp %d: least model %s not assumption free", seed, ci, least)
			}
			// Theorem 1(a): the two assumption-freedom characterisations
			// agree on arbitrary interpretations.
			for trial := 0; trial < 20; trial++ {
				m := randomInterp(rng, g.Tab)
				if got, want := v.IsAssumptionFree(m), v.IsAssumptionFreeDirect(m); got != want {
					t.Fatalf("seed %d comp %d: Thm 1(a) mismatch on %s: fixpoint=%v direct=%v",
						seed, ci, m, got, want)
				}
			}
			// Theorem 1(b): least = intersection of all models.
			if g.Tab.Len() <= 8 {
				all, err := stable.AllModels(v, 0)
				if err != nil {
					t.Fatalf("seed %d comp %d: all models: %v", seed, ci, err)
				}
				if len(all) == 0 {
					t.Fatalf("seed %d comp %d: no models (Proposition 1 violated)", seed, ci)
				}
				inter := stable.Intersection(all)
				if !inter.Equal(least) {
					t.Fatalf("seed %d comp %d: intersection %s != least %s", seed, ci, inter, least)
				}
			}
		}
	}
}

// TestProposition2 checks that every assumption-free model extends to an
// exhaustive model.
func TestProposition2(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := randomOrdered(seed)
		g := groundMode(t, p, ground.ModeFull)
		if g.Tab.Len() > 6 {
			continue // keep the doubly exponential check small
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			af, err := stable.AssumptionFreeModels(v, stable.Options{})
			if err != nil {
				t.Fatalf("seed %d comp %d: af: %v", seed, ci, err)
			}
			for _, m := range af {
				ex, err := stable.ExtendToExhaustive(v, m, 0)
				if err != nil {
					t.Fatalf("seed %d comp %d: extend: %v", seed, ci, err)
				}
				if !m.SubsetOf(ex) {
					t.Fatalf("seed %d comp %d: %s ⊄ %s", seed, ci, m, ex)
				}
				ok, err := stable.IsExhaustive(v, ex, 0)
				if err != nil {
					t.Fatalf("seed %d comp %d: isExhaustive: %v", seed, ci, err)
				}
				if !ok {
					t.Fatalf("seed %d comp %d: extension %s of %s not exhaustive", seed, ci, ex, m)
				}
			}
		}
	}
}

// TestSmartVsFullGrounding: on random ordered programs the smart grounder
// agrees with the full grounder on least models, assumption-free model
// families and stable models, restricted to the smart (relevant) atom
// table; atoms the smart grounder omits are undefined in every full-mode
// assumption-free model.
func TestSmartVsFullGrounding(t *testing.T) {
	for seed := int64(0); seed < propTrials; seed++ {
		p := randomOrdered(seed)
		gf := groundMode(t, p, ground.ModeFull)
		gs := groundMode(t, p, ground.ModeSmart)
		for ci := range p.Components {
			vf := eval.NewView(gf, ci)
			vs := eval.NewView(gs, ci)
			lf, err := vf.LeastModel()
			if err != nil {
				t.Fatalf("seed %d comp %d: full least: %v", seed, ci, err)
			}
			ls, err := vs.LeastModel()
			if err != nil {
				t.Fatalf("seed %d comp %d: smart least: %v", seed, ci, err)
			}
			if lf.String() != ls.String() {
				t.Fatalf("seed %d comp %d: full least %s != smart least %s", seed, ci, lf, ls)
			}
			aff, err := stable.AssumptionFreeModels(vf, stable.Options{})
			if err != nil {
				t.Fatalf("seed %d comp %d: full af: %v", seed, ci, err)
			}
			afs, err := stable.AssumptionFreeModels(vs, stable.Options{})
			if err != nil {
				t.Fatalf("seed %d comp %d: smart af: %v", seed, ci, err)
			}
			if !sameModelStrings(aff, afs) {
				t.Fatalf("seed %d comp %d: full af %v != smart af %v\nprogram:\n%s",
					seed, ci, strs(aff), strs(afs), p)
			}
		}
	}
}

func strs(ms []*interp.Interp) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}

func sameModelStrings(a, b []*interp.Interp) bool {
	as, bs := strs(a), strs(b)
	if len(as) != len(bs) {
		return false
	}
	seen := make(map[string]int)
	for _, s := range as {
		seen[s]++
	}
	for _, s := range bs {
		seen[s]--
		if seen[s] < 0 {
			return false
		}
	}
	return true
}

// TestSmartVsFullDatalogOV exercises the grounder's EDB/CWA optimization:
// on random non-ground seminegative programs translated through OV and EV,
// the smart grounder (which joins EDB body literals against the facts and
// drops provably blocked competitors) must agree with exhaustive full
// grounding on least models and assumption-free model families.
func TestSmartVsFullDatalogOV(t *testing.T) {
	for seed := int64(0); seed < 36; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rules := workload.RandomDatalog(rng, 3, 3, 4)
		for _, translate := range []string{"ov", "ev"} {
			var prog *ast.OrderedProgram
			var err error
			if translate == "ov" {
				prog, err = transform.OV("c", rules)
			} else {
				prog, err = transform.EV("c", rules)
			}
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, translate, err)
			}
			gf := groundMode(t, prog, ground.ModeFull)
			gs := groundMode(t, prog, ground.ModeSmart)
			vf, err := eval.NewViewByName(gf, "c")
			if err != nil {
				t.Fatal(err)
			}
			vs, err := eval.NewViewByName(gs, "c")
			if err != nil {
				t.Fatal(err)
			}
			lf, err := vf.LeastModel()
			if err != nil {
				t.Fatalf("seed %d %s: full least: %v", seed, translate, err)
			}
			ls, err := vs.LeastModel()
			if err != nil {
				t.Fatalf("seed %d %s: smart least: %v", seed, translate, err)
			}
			if lf.String() != ls.String() {
				t.Fatalf("seed %d %s: full least != smart least\nfull:  %s\nsmart: %s\nprogram: %v",
					seed, translate, lf, ls, rules)
			}
			aff, err := stable.AssumptionFreeModels(vf, stable.Options{MaxLeaves: 1 << 15})
			if err != nil {
				continue // search too large for this seed; least already checked
			}
			afs, err := stable.AssumptionFreeModels(vs, stable.Options{MaxLeaves: 1 << 15})
			if err != nil {
				continue
			}
			if !sameModelStrings(aff, afs) {
				t.Fatalf("seed %d %s: af families differ\nfull:  %v\nsmart: %v\nprogram: %v",
					seed, translate, strs(aff), strs(afs), rules)
			}
		}
	}
}

// TestSmartVsFullOrderedDatalog: non-ground multi-component random
// programs agree across grounding modes on least models in every
// component, and the least model passes the model and assumption-freedom
// checks.
func TestSmartVsFullOrderedDatalog(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomOrderedDatalog(rng, 1+rng.Intn(3), 3)
		gf := groundMode(t, p, ground.ModeFull)
		gs := groundMode(t, p, ground.ModeSmart)
		for ci := range p.Components {
			vf := eval.NewView(gf, ci)
			vs := eval.NewView(gs, ci)
			lf, err := vf.LeastModel()
			if err != nil {
				t.Fatalf("seed %d comp %d: full: %v", seed, ci, err)
			}
			ls, err := vs.LeastModel()
			if err != nil {
				t.Fatalf("seed %d comp %d: smart: %v", seed, ci, err)
			}
			if lf.String() != ls.String() {
				t.Fatalf("seed %d comp %d: least models differ\nfull:  %s\nsmart: %s\nprogram:\n%s",
					seed, ci, lf, ls, p)
			}
			if !vf.IsAssumptionFree(lf) || !vs.IsAssumptionFree(ls) {
				t.Fatalf("seed %d comp %d: least model not assumption free", seed, ci)
			}
		}
	}
}

// TestQuickLeastModelIsModel drives testing/quick over random seeds: the
// least model in every component is always an assumption-free model.
func TestQuickLeastModelIsModel(t *testing.T) {
	f := func(seed int64) bool {
		p := randomOrdered(seed % 100_000)
		g, err := ground.Ground(p, ground.DefaultOptions())
		if err != nil {
			return false
		}
		for ci := range p.Components {
			v := eval.NewView(g, ci)
			m, err := v.LeastModel()
			if err != nil {
				return false
			}
			if !v.IsModel(m) || !v.IsAssumptionFree(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
