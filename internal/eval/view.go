// Package eval implements the declarative semantics of ordered logic
// programs on ground instances: the rule statuses of Definition 2
// (applicable, applied, blocked, overruled, defeated), the model conditions
// of Definition 3, the ordered immediate transformation V of Definition 4
// with naive and semi-naive least-fixpoint evaluation, the enabled-version
// T operator of Definition 8, and the assumption-set machinery of
// Definitions 6–7 (Laenens, Saccà, Vermeir, SIGMOD 1990).
package eval

import (
	"fmt"

	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/obs"
)

// View is a grounded ordered program as seen from one target component C:
// the rules of ground(C*) — the component's own rules plus all inherited
// ones — with precomputed competitor relations.
//
// For a rule r, a rule r' with complementary head is an *overruler* when
// C(r') < C(r) (a strictly more specific component) and a *defeater* when
// C(r') = C(r) or the components are incomparable. Rules in strictly more
// general components can do neither.
//
// Concurrency invariant: every index a View holds — heads, bodies, comps,
// srcs, overrulers, defeaters, occOff/occ, headOf, headAtom, threatened,
// threatOver/threatDef, overInit/defInit — is built once inside NewView and
// never mutated afterwards (construct-once/
// read-many). A *View is therefore safe for unsynchronised sharing across
// goroutines; all evaluation methods (VOnce, LeastModel, TEnabled,
// IsModel, the Definition 2 status checks) allocate their mutable state
// per call. Any future lazily built index must either move into NewView or
// be guarded, or it breaks core.Engine's concurrency contract.
type View struct {
	G    *ground.Program
	Comp int // target component position

	// Per visible rule (dense local indexes).
	heads  []interp.Lit
	bodies [][]interp.Lit
	comps  []int32
	srcs   []*ground.Rule

	overrulers [][]int32 // local rule indexes that can overrule r
	defeaters  [][]int32 // local rule indexes that can defeat r

	// Body occurrences in CSR layout, indexed by int(Lit): rules with lit l
	// in their body are occ[occOff[l]:occOff[l+1]]. A dense array probe in
	// the fixpoint worklist loop instead of a map lookup per pop.
	occOff   []int32
	occ      []int32
	headOf   map[interp.Lit][]int32
	headAtom map[interp.AtomID][]int32
	// threatened[r] lists the rules that have r among their competitors
	// (the reverse of overrulers/defeaters), so blocking r can decrement
	// their unblocked-competitor counters.
	threatened [][]int32
	// threatOver and threatDef split threatened by competitor kind. The
	// fixpoint worklist only walks the combined index; the split ones feed
	// the metrics bookkeeping that maintains per-kind non-blocked counts,
	// seeded from overInit/defInit (initial per-rule overruler/defeater
	// counts) and liveOverInit/liveDefInit (how many rules start with at
	// least one overruler resp. defeater).
	threatOver   [][]int32
	threatDef    [][]int32
	overInit     []int32
	defInit      []int32
	liveOverInit int
	liveDefInit  int
}

// NewView builds the view of g from the component at position comp, over
// every rule instance of g.
func NewView(g *ground.Program, comp int) *View {
	return NewViewOf(g, comp, g.Rules, nil)
}

// NewViewOf builds the view of g from the component at position comp over
// an explicit rule slice — typically a pinned prefix of g.Rules captured by
// a versioned snapshot — excluding the instance indexes in dead (retracted
// facts). rules must alias a prefix of g.Rules so indexes agree with the
// dead set; the caller guarantees both stay immutable for the life of the
// view, which is what makes a built view safe for unsynchronised sharing
// even while later snapshot updates append further instances to g.Rules.
func NewViewOf(g *ground.Program, comp int, rules []ground.Rule, dead map[int32]struct{}) *View {
	if comp < 0 || comp >= g.NumComponents() {
		panic(fmt.Sprintf("eval: component index %d out of range", comp))
	}
	v := &View{
		G:        g,
		Comp:     comp,
		headOf:   make(map[interp.Lit][]int32),
		headAtom: make(map[interp.AtomID][]int32),
	}
	visible := make(map[int]bool)
	for _, j := range g.Src.Above(comp) {
		visible[j] = true
	}
	for i := range rules {
		r := &rules[i]
		if !visible[int(r.Comp)] {
			continue
		}
		if _, gone := dead[int32(i)]; gone {
			continue
		}
		li := int32(len(v.heads))
		v.heads = append(v.heads, r.Head)
		v.bodies = append(v.bodies, r.Body)
		v.comps = append(v.comps, r.Comp)
		v.srcs = append(v.srcs, r)
		v.headOf[r.Head] = append(v.headOf[r.Head], li)
		v.headAtom[r.Head.Atom()] = append(v.headAtom[r.Head.Atom()], li)
	}
	// CSR body-occurrence index: count per literal, prefix-sum, fill.
	nLits := 2 * g.Tab.Len()
	v.occOff = make([]int32, nLits+1)
	total := 0
	for _, body := range v.bodies {
		total += len(body)
		for _, l := range body {
			v.occOff[int(l)+1]++
		}
	}
	for i := 0; i < nLits; i++ {
		v.occOff[i+1] += v.occOff[i]
	}
	v.occ = make([]int32, total)
	next := make([]int32, nLits)
	copy(next, v.occOff[:nLits])
	for li, body := range v.bodies {
		for _, l := range body {
			v.occ[next[int(l)]] = int32(li)
			next[int(l)]++
		}
	}
	n := len(v.heads)
	v.overrulers = make([][]int32, n)
	v.defeaters = make([][]int32, n)
	v.threatened = make([][]int32, n)
	v.threatOver = make([][]int32, n)
	v.threatDef = make([][]int32, n)
	for r := 0; r < n; r++ {
		for _, o := range v.headOf[v.heads[r].Complement()] {
			cr, co := int(v.comps[r]), int(v.comps[o])
			switch {
			case v.G.Src.Less(co, cr):
				v.overrulers[r] = append(v.overrulers[r], o)
				v.threatened[o] = append(v.threatened[o], int32(r))
				v.threatOver[o] = append(v.threatOver[o], int32(r))
			case !v.G.Src.Less(cr, co):
				// Same component or incomparable: defeater.
				v.defeaters[r] = append(v.defeaters[r], o)
				v.threatened[o] = append(v.threatened[o], int32(r))
				v.threatDef[o] = append(v.threatDef[o], int32(r))
			}
		}
	}
	v.overInit = make([]int32, n)
	v.defInit = make([]int32, n)
	for r := 0; r < n; r++ {
		v.overInit[r] = int32(len(v.overrulers[r]))
		v.defInit[r] = int32(len(v.defeaters[r]))
		if v.overInit[r] > 0 {
			v.liveOverInit++
		}
		if v.defInit[r] > 0 {
			v.liveDefInit++
		}
	}
	if obs.On() {
		mViewsBuilt.Inc()
	}
	return v
}

// NewViewByName builds the view from the named component.
func NewViewByName(g *ground.Program, name string) (*View, error) {
	i, ok := g.Src.ComponentIndex(name)
	if !ok {
		return nil, fmt.Errorf("eval: unknown component %q", name)
	}
	return NewView(g, i), nil
}

// NumRules returns the number of visible ground rules.
func (v *View) NumRules() int { return len(v.heads) }

// Head returns the head literal of visible rule r.
func (v *View) Head(r int) interp.Lit { return v.heads[r] }

// Body returns the body literals of visible rule r (shared slice).
func (v *View) Body(r int) []interp.Lit { return v.bodies[r] }

// RuleComp returns the owning component position of visible rule r.
func (v *View) RuleComp(r int) int { return int(v.comps[r]) }

// GroundRule returns the underlying ground rule of visible rule r.
func (v *View) GroundRule(r int) *ground.Rule { return v.srcs[r] }

// NewInterp returns an empty interpretation over the view's atom table.
func (v *View) NewInterp() *interp.Interp { return interp.New(v.G.Tab) }

// Overrulers returns the local indexes of the rules that can overrule r
// (complementary head in a strictly more specific component). Shared slice.
func (v *View) Overrulers(r int) []int32 { return v.overrulers[r] }

// Defeaters returns the local indexes of the rules that can defeat r
// (complementary head in the same or an incomparable component). Shared
// slice.
func (v *View) Defeaters(r int) []int32 { return v.defeaters[r] }

// HeadRules returns the local indexes of the visible rules with the given
// head literal. Shared slice.
func (v *View) HeadRules(l interp.Lit) []int32 { return v.headOf[l] }

// bodyOcc returns the local indexes of the rules with l among their body
// literals (CSR slice; shared, do not modify).
func (v *View) bodyOcc(l interp.Lit) []int32 {
	return v.occ[v.occOff[int(l)]:v.occOff[int(l)+1]]
}

// Competitors returns the local indexes of every rule that can overrule or
// defeat r. The slice is freshly allocated.
func (v *View) Competitors(r int) []int32 {
	out := make([]int32, 0, len(v.overrulers[r])+len(v.defeaters[r]))
	out = append(out, v.overrulers[r]...)
	return append(out, v.defeaters[r]...)
}

// Applicable reports B(r) ⊆ I (Definition 2).
func (v *View) Applicable(r int, in *interp.Interp) bool {
	for _, l := range v.bodies[r] {
		if !in.HasLit(l) {
			return false
		}
	}
	return true
}

// Applied reports that r is applicable and H(r) ∈ I (Definition 2).
func (v *View) Applied(r int, in *interp.Interp) bool {
	return in.HasLit(v.heads[r]) && v.Applicable(r, in)
}

// Blocked reports that some body literal's complement is in I
// (Definition 2).
func (v *View) Blocked(r int, in *interp.Interp) bool {
	for _, l := range v.bodies[r] {
		if in.HasLit(l.Complement()) {
			return true
		}
	}
	return false
}

// Overruled reports that a non-blocked rule with complementary head exists
// in a strictly more specific component (Definition 2).
func (v *View) Overruled(r int, in *interp.Interp) bool {
	for _, o := range v.overrulers[r] {
		if !v.Blocked(int(o), in) {
			return true
		}
	}
	return false
}

// OverruledByApplied reports that an *applied* rule with complementary head
// exists in a strictly more specific component (the stronger overruling
// demanded by Definition 3, condition (a)).
func (v *View) OverruledByApplied(r int, in *interp.Interp) bool {
	for _, o := range v.overrulers[r] {
		if v.Applied(int(o), in) {
			return true
		}
	}
	return false
}

// Defeated reports that a non-blocked rule with complementary head exists
// in the same or an incomparable component (Definition 2).
func (v *View) Defeated(r int, in *interp.Interp) bool {
	for _, d := range v.defeaters[r] {
		if !v.Blocked(int(d), in) {
			return true
		}
	}
	return false
}

// Status bundles the Definition 2 statuses of one rule for diagnostics.
type Status struct {
	Applicable bool
	Applied    bool
	Blocked    bool
	Overruled  bool
	Defeated   bool
}

// Statuses returns all Definition 2 statuses of visible rule r w.r.t. in.
func (v *View) Statuses(r int, in *interp.Interp) Status {
	return Status{
		Applicable: v.Applicable(r, in),
		Applied:    v.Applied(r, in),
		Blocked:    v.Blocked(r, in),
		Overruled:  v.Overruled(r, in),
		Defeated:   v.Defeated(r, in),
	}
}
