// Package batch provides a bounded worker pool for fanning independent
// engine work items — least-model computations, conjunctive queries,
// stable enumerations — across goroutines, plus a latency histogram for
// benchmark reporting. It is the building block behind
// core.Engine.QueryBatch and core.Engine.LeastModelAll and the
// cmd/olpbench -parallel mode.
//
// The pool is deliberately simple: item order in, result order out. Work
// items must be independent; the engine's per-component singleflight
// caches make concurrent items that touch the same component cheap rather
// than racy.
package batch

import (
	"runtime"
	"sync"
)

// Options configures a batch run.
type Options struct {
	// Workers is the number of goroutines (0 or negative = GOMAXPROCS).
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Each runs fn(worker, i) for every i in [0, n) over a bounded pool. The
// worker index (in [0, workers)) supports per-worker accounting such as
// latency histograms; items are handed out dynamically, so the mapping of
// items to workers is not deterministic.
func Each(n int, opts Options, fn func(worker, i int)) {
	workers := opts.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// Map applies fn to every item over a bounded pool and returns the results
// and errors in input order. A non-nil error for one item does not stop
// the others.
func Map[T, R any](items []T, opts Options, fn func(item T) (R, error)) ([]R, []error) {
	results := make([]R, len(items))
	errs := make([]error, len(items))
	Each(len(items), opts, func(_, i int) {
		results[i], errs[i] = fn(items[i])
	})
	return results, errs
}

// FirstError returns the first non-nil error of a Map/Each error slice.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
