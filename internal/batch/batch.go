// Package batch provides a bounded worker pool for fanning independent
// engine work items — least-model computations, conjunctive queries,
// stable enumerations — across goroutines, plus a latency histogram for
// benchmark reporting. It is the building block behind
// core.Engine.QueryBatch and core.Engine.LeastModelAll and the
// cmd/olpbench -parallel mode.
//
// The pool is deliberately simple: item order in, result order out. Work
// items must be independent; the engine's per-component singleflight
// caches make concurrent items that touch the same component cheap rather
// than racy. The ...Ctx variants stop handing out items once the context
// is cancelled: items already running finish, items never started are
// reported as interrupted, and nothing blocks past the cancellation.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/interrupt"
)

// Options configures a batch run.
type Options struct {
	// Workers is the number of goroutines (0 or negative = GOMAXPROCS).
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Each runs fn(worker, i) for every i in [0, n) over a bounded pool. The
// worker index (in [0, workers)) supports per-worker accounting such as
// latency histograms; items are handed out dynamically, so the mapping of
// items to workers is not deterministic.
func Each(n int, opts Options, fn func(worker, i int)) {
	EachCtx(context.Background(), n, opts, fn)
}

// EachCtx runs fn(worker, i) like Each but stops handing out items once
// ctx is cancelled. Items already handed out run to completion; the
// return value is nil when every item ran and an interrupt.Error (matching
// interrupt.ErrInterrupted) when the context cut the batch short.
func EachCtx(ctx context.Context, n int, opts Options, fn func(worker, i int)) error {
	const stage = "batch: item hand-out"
	workers := opts.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := interrupt.Check(ctx, stage); err != nil {
				return err
			}
			fn(0, i)
		}
		return nil
	}
	var next int
	var mu sync.Mutex
	take := func() (int, bool) {
		if ctx.Err() != nil {
			return 0, false
		}
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	return interrupt.Check(ctx, stage)
}

// Map applies fn to every item over a bounded pool and returns the results
// and errors in input order. A non-nil error for one item does not stop
// the others; per-item errors are wrapped with the item index
// ("item %d: ...") so a failure inside a large batch stays diagnosable.
func Map[T, R any](items []T, opts Options, fn func(item T) (R, error)) ([]R, []error) {
	return MapCtx(context.Background(), items, opts, fn)
}

// MapCtx is Map with cancellation: once ctx is cancelled no further items
// start, and every item that never ran gets an interrupt.Error (wrapped
// with its index) in its error slot. Results of items that did run are
// kept — the batch degrades to partial results rather than discarding
// finished work.
func MapCtx[T, R any](ctx context.Context, items []T, opts Options, fn func(item T) (R, error)) ([]R, []error) {
	results := make([]R, len(items))
	errs := make([]error, len(items))
	ran := make([]bool, len(items))
	batchErr := EachCtx(ctx, len(items), opts, func(_, i int) {
		ran[i] = true
		r, err := fn(items[i])
		results[i] = r
		if err != nil {
			errs[i] = fmt.Errorf("item %d: %w", i, err)
		}
	})
	if batchErr != nil {
		for i := range items {
			if !ran[i] {
				errs[i] = fmt.Errorf("item %d: %w", i, batchErr)
			}
		}
	}
	return results, errs
}

// FirstError returns the first non-nil error of a Map/Each error slice.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
