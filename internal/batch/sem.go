package batch

import (
	"context"
	"sync/atomic"

	"repro/internal/interrupt"
)

// Semaphore is a bounded in-flight semaphore: the admission-control
// building block of the serving layer. A server gives each tenant one
// Semaphore sized to the work it may have in flight at once; requests
// Acquire a slot before touching the engine and Release it when done, so
// a burst against one tenant queues (up to each request's own deadline)
// instead of piling unbounded goroutines onto the evaluator.
//
// The zero bound means "unbounded": every Acquire succeeds immediately.
// That keeps call sites branch-free when admission control is disabled,
// and the in-flight count still tracks the holders for observability.
type Semaphore struct {
	slots chan struct{}
	held  atomic.Int64
}

// NewSemaphore returns a semaphore admitting at most n concurrent holders;
// n <= 0 means unbounded.
func NewSemaphore(n int) *Semaphore {
	if n <= 0 {
		return &Semaphore{}
	}
	return &Semaphore{slots: make(chan struct{}, n)}
}

// TryAcquire takes a slot without blocking, reporting whether it got one.
func (s *Semaphore) TryAcquire() bool {
	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
		default:
			return false
		}
	}
	s.held.Add(1)
	return true
}

// Acquire takes a slot, waiting until one frees up or ctx dies. The error
// follows the engine-wide cancellation contract: nil on success, an
// interrupt.Error (matching interrupt.ErrInterrupted) when the context cut
// the wait short. A free slot admits instantly even under a context that
// is already dead — the deadline governs how long a request may queue, not
// whether an uncontended one runs; its own evaluation observes the dead
// context at the first checkpoint anyway.
func (s *Semaphore) Acquire(ctx context.Context) error {
	if s.TryAcquire() {
		return nil
	}
	const stage = "batch: semaphore acquire"
	select {
	case s.slots <- struct{}{}:
		s.held.Add(1)
		return nil
	case <-ctx.Done():
		return &interrupt.Error{Stage: stage, Cause: ctx.Err()}
	}
}

// Release frees a slot taken by Acquire/TryAcquire. Releasing more than
// was acquired is a programming error and panics.
func (s *Semaphore) Release() {
	if s.held.Add(-1) < 0 {
		s.held.Add(1)
		panic("batch: Semaphore.Release without matching Acquire")
	}
	if s.slots != nil {
		<-s.slots
	}
}

// InFlight returns the number of slots currently held.
func (s *Semaphore) InFlight() int {
	return int(s.held.Load())
}

// Cap returns the admission bound (0 = unbounded).
func (s *Semaphore) Cap() int {
	if s.slots == nil {
		return 0
	}
	return cap(s.slots)
}
