package batch

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		var hits [257]atomic.Int32
		Each(len(hits), Options{Workers: workers}, func(_, i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestEachZeroItems(t *testing.T) {
	called := false
	Each(0, Options{Workers: 4}, func(_, _ int) { called = true })
	if called {
		t.Error("fn called with no items")
	}
}

func TestEachWorkerIndexBounded(t *testing.T) {
	const workers = 5
	var bad atomic.Bool
	Each(200, Options{Workers: workers}, func(w, _ int) {
		if w < 0 || w >= workers {
			bad.Store(true)
		}
	})
	if bad.Load() {
		t.Error("worker index out of range")
	}
}

func TestMapOrderAndErrors(t *testing.T) {
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	wantErr := errors.New("odd")
	got, errs := Map(items, Options{Workers: 3}, func(x int) (string, error) {
		if x%2 == 1 {
			return "", wantErr
		}
		return fmt.Sprintf("v%d", x), nil
	})
	for i, x := range items {
		if x%2 == 1 {
			if !errors.Is(errs[i], wantErr) {
				t.Errorf("item %d: err = %v, want odd", x, errs[i])
			}
			continue
		}
		if errs[i] != nil || got[i] != fmt.Sprintf("v%d", x) {
			t.Errorf("item %d: got %q, %v", x, got[i], errs[i])
		}
	}
	if FirstError(errs) == nil {
		t.Error("FirstError missed the failures")
	}
	_, cleanErrs := Map(items, Options{}, func(x int) (int, error) { return x, nil })
	if FirstError(cleanErrs) != nil {
		t.Error("FirstError on clean run")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.String() != "no observations" {
		t.Errorf("empty histogram: %q", h.String())
	}
	durations := []time.Duration{
		500 * time.Nanosecond, time.Microsecond, 3 * time.Microsecond,
		100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
	}
	for _, d := range durations {
		h.Observe(d)
	}
	if h.Count() != int64(len(durations)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(durations))
	}
	if h.Mean() <= 0 {
		t.Error("Mean not positive")
	}
	if q := h.Quantile(1.0); q < 10*time.Millisecond {
		t.Errorf("p100 %v below max observation", q)
	}
	if q := h.Quantile(0); q > 2*time.Microsecond {
		t.Errorf("p0 %v above smallest bucket boundary", q)
	}

	var other Histogram
	other.Observe(42 * time.Microsecond)
	h.Merge(&other)
	if h.Count() != int64(len(durations))+1 {
		t.Errorf("Merge: Count = %d", h.Count())
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	var dst, src Histogram
	src.Observe(time.Millisecond)
	dst.Merge(&src)
	if dst.Count() != 1 || dst.Mean() != time.Millisecond {
		t.Errorf("merge into empty: n=%d mean=%v", dst.Count(), dst.Mean())
	}
}
