package batch

import (
	"testing"
	"time"
)

// Regression test: Quantile must never report a latency above the observed
// maximum. Before the clamp, a single observation pinned to a bucket's
// lower edge (e.g. exactly 1µs<<b) made p99/p100 report the bucket's upper
// edge — double the real maximum.
func TestQuantileNeverExceedsMax(t *testing.T) {
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}

	// Observations pinned to bucket edges: lower edges (1µs<<b), one tick
	// below upper edges, and sub-microsecond values in bucket 0.
	cases := [][]time.Duration{
		{time.Microsecond},
		{2 * time.Microsecond},
		{4*time.Microsecond - time.Nanosecond},
		{500 * time.Nanosecond},
		{0},
		{time.Microsecond, 2 * time.Microsecond, 4 * time.Microsecond, 8 * time.Microsecond},
		{time.Millisecond, time.Millisecond, time.Millisecond},
		{3 * time.Microsecond, 100 * time.Millisecond},
		// Past the final bucket: the last bucket is open-ended, its nominal
		// upper boundary is far below the observation.
		{time.Microsecond << (numBuckets + 2)},
	}
	for _, obs := range cases {
		var h Histogram
		for _, d := range obs {
			h.Observe(d)
		}
		for _, q := range quantiles {
			if got := h.Quantile(q); got > h.Max() {
				t.Errorf("obs=%v: Quantile(%v) = %v exceeds Max() = %v", obs, q, got, h.Max())
			}
		}
	}
}

func TestQuantileSingleEdgeObservation(t *testing.T) {
	var h Histogram
	h.Observe(8 * time.Microsecond) // lower edge of bucket 3
	if got := h.Quantile(0.99); got != 8*time.Microsecond {
		t.Errorf("p99 of single 8µs observation = %v, want 8µs", got)
	}
	if got := h.Quantile(0.5); got != 8*time.Microsecond {
		t.Errorf("p50 of single 8µs observation = %v, want 8µs", got)
	}
}

func TestMinMaxAccessors(t *testing.T) {
	var h Histogram
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram: Min=%v Max=%v, want 0", h.Min(), h.Max())
	}
	h.Observe(3 * time.Microsecond)
	h.Observe(9 * time.Millisecond)
	if h.Min() != 3*time.Microsecond {
		t.Errorf("Min = %v, want 3µs", h.Min())
	}
	if h.Max() != 9*time.Millisecond {
		t.Errorf("Max = %v, want 9ms", h.Max())
	}
}

// Quantile still reflects bucket boundaries below the final occupied
// bucket: with observations spread over several buckets, low quantiles
// report the (unclamped) boundary of an earlier bucket.
func TestQuantileLowerBucketsUnclamped(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Second)
	if got := h.Quantile(0.5); got != 2*time.Microsecond {
		t.Errorf("p50 = %v, want 2µs (bucket 0 upper edge)", got)
	}
	if got := h.Quantile(1.0); got != time.Second {
		t.Errorf("p100 = %v, want 1s (clamped to max)", got)
	}
}
