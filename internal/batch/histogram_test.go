package batch

import (
	"testing"
	"time"
)

// Regression test: Quantile must never report a latency above the observed
// maximum. Before the clamp, a single observation pinned to a bucket's
// lower edge (e.g. exactly 1µs<<b) made p99/p100 report the bucket's upper
// edge — double the real maximum.
func TestQuantileNeverExceedsMax(t *testing.T) {
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}

	// Observations pinned to bucket edges: lower edges (1µs<<b), one tick
	// below upper edges, and sub-microsecond values in bucket 0.
	cases := [][]time.Duration{
		{time.Microsecond},
		{2 * time.Microsecond},
		{4*time.Microsecond - time.Nanosecond},
		{500 * time.Nanosecond},
		{0},
		{time.Microsecond, 2 * time.Microsecond, 4 * time.Microsecond, 8 * time.Microsecond},
		{time.Millisecond, time.Millisecond, time.Millisecond},
		{3 * time.Microsecond, 100 * time.Millisecond},
		// Past the final bucket: the last bucket is open-ended, its nominal
		// upper boundary is far below the observation.
		{time.Microsecond << (numBuckets + 2)},
	}
	for _, obs := range cases {
		var h Histogram
		for _, d := range obs {
			h.Observe(d)
		}
		for _, q := range quantiles {
			if got := h.Quantile(q); got > h.Max() {
				t.Errorf("obs=%v: Quantile(%v) = %v exceeds Max() = %v", obs, q, got, h.Max())
			}
		}
	}
}

func TestQuantileSingleEdgeObservation(t *testing.T) {
	var h Histogram
	h.Observe(8 * time.Microsecond) // lower edge of bucket 3
	if got := h.Quantile(0.99); got != 8*time.Microsecond {
		t.Errorf("p99 of single 8µs observation = %v, want 8µs", got)
	}
	if got := h.Quantile(0.5); got != 8*time.Microsecond {
		t.Errorf("p50 of single 8µs observation = %v, want 8µs", got)
	}
}

// Regression test: Quantile must clamp q to [0,1]. Before the clamp a
// negative q produced a negative rank — `seen > rank` held at the first
// occupied bucket, so Quantile(-5) quietly reported the first bucket's
// upper bound no matter what the distribution looked like, and a q > 1
// silently degraded to Max via the fallthrough instead of by decision.
func TestQuantileClampsQ(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Second)
	for _, q := range []float64{-1000, -1, -0.01} {
		if got, want := h.Quantile(q), h.Quantile(0); got != want {
			t.Errorf("Quantile(%v) = %v, want Quantile(0) = %v", q, got, want)
		}
	}
	for _, q := range []float64{1.01, 2, 1000} {
		if got, want := h.Quantile(q), h.Quantile(1); got != want {
			t.Errorf("Quantile(%v) = %v, want Quantile(1) = %v", q, got, want)
		}
	}
	// The clamped extremes still honour the existing bounds contract.
	if got := h.Quantile(-1); got > h.Max() {
		t.Errorf("Quantile(-1) = %v exceeds Max() = %v", got, h.Max())
	}
	if got := h.Quantile(2); got != h.Max() {
		t.Errorf("Quantile(2) = %v, want Max() = %v (all mass below rank)", got, h.Max())
	}
}

func TestMinMaxAccessors(t *testing.T) {
	var h Histogram
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram: Min=%v Max=%v, want 0", h.Min(), h.Max())
	}
	h.Observe(3 * time.Microsecond)
	h.Observe(9 * time.Millisecond)
	if h.Min() != 3*time.Microsecond {
		t.Errorf("Min = %v, want 3µs", h.Min())
	}
	if h.Max() != 9*time.Millisecond {
		t.Errorf("Max = %v, want 9ms", h.Max())
	}
}

// Quantile still reflects bucket boundaries below the final occupied
// bucket: with observations spread over several buckets, low quantiles
// report the (unclamped) boundary of an earlier bucket.
func TestQuantileLowerBucketsUnclamped(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Second)
	if got := h.Quantile(0.5); got != 2*time.Microsecond {
		t.Errorf("p50 = %v, want 2µs (bucket 0 upper edge)", got)
	}
	if got := h.Quantile(1.0); got != time.Second {
		t.Errorf("p100 = %v, want 1s (clamped to max)", got)
	}
}
