package batch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/interrupt"
)

func TestSemaphoreBound(t *testing.T) {
	s := NewSemaphore(2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("first two acquisitions must succeed")
	}
	if s.TryAcquire() {
		t.Fatal("third acquisition must fail at bound 2")
	}
	if got := s.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	if got := s.Cap(); got != 2 {
		t.Fatalf("Cap = %d, want 2", got)
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("acquisition after release must succeed")
	}
}

func TestSemaphoreAcquireHonoursContext(t *testing.T) {
	s := NewSemaphore(1)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Acquire(ctx)
	if !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("blocked Acquire error = %v, want ErrInterrupted", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("blocked Acquire returned after %v, want prompt return", elapsed)
	}
	// A free slot admits instantly even under a pre-cancelled context: the
	// deadline bounds queueing, not uncontended admission.
	s.Release()
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := s.Acquire(dead); err != nil {
		t.Fatalf("pre-cancelled Acquire with a free slot = %v, want success", err)
	}
	// But a pre-cancelled context never queues: with the slot held again,
	// the failure is prompt and carries the sentinel.
	if err := s.Acquire(dead); !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("pre-cancelled Acquire at the bound = %v, want ErrInterrupted", err)
	}
}

func TestSemaphoreUnbounded(t *testing.T) {
	s := NewSemaphore(0)
	for i := 0; i < 100; i++ {
		if !s.TryAcquire() {
			t.Fatal("unbounded semaphore refused an acquisition")
		}
	}
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Unbounded still counts its holders for observability.
	if s.InFlight() != 101 || s.Cap() != 0 {
		t.Fatalf("unbounded semaphore reports InFlight=%d Cap=%d, want 101/0", s.InFlight(), s.Cap())
	}
	s.Release()
	if s.InFlight() != 100 {
		t.Fatalf("InFlight after release = %d, want 100", s.InFlight())
	}
}

func TestSemaphoreReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewSemaphore(1).Release()
}

// Under contention the bound is never exceeded: 16 goroutines hammer a
// 3-slot semaphore and track the high-water mark of concurrent holders.
func TestSemaphoreContention(t *testing.T) {
	s := NewSemaphore(3)
	var mu sync.Mutex
	cur, peak := 0, 0
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Acquire(context.Background()); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				mu.Lock()
				cur--
				mu.Unlock()
				s.Release()
			}
		}()
	}
	wg.Wait()
	if peak > 3 {
		t.Fatalf("high-water mark %d exceeds bound 3", peak)
	}
}
