package batch

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

const numBuckets = 40

// Histogram records latencies in power-of-two duration buckets starting at
// 1µs. It is not synchronised: keep one per worker and Merge at the end.
type Histogram struct {
	counts [numBuckets]int64
	total  time.Duration
	n      int64
	min    time.Duration
	max    time.Duration
}

func bucketOf(d time.Duration) int {
	b := 0
	for unit := time.Microsecond; d >= unit*2 && b < numBuckets-1; unit *= 2 {
		b++
	}
	return b
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.total += d
	if h.n == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.n++
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if other.n > 0 {
		if h.n == 0 || other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.total += other.total
	h.n += other.n
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Min returns the smallest observed latency (0 when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observed latency (0 when empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the mean latency (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.total / time.Duration(h.n)
}

// Quantile returns an upper bound on the q-quantile latency (q in [0,1])
// from the bucket boundaries, clamped to the observed maximum — the
// quantile of the final occupied bucket is bounded by Max(), not by the
// bucket's nominal upper edge, so Quantile(q) <= Max() for all q.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	// Clamp q to [0,1]: a negative q would compute a negative rank and
	// silently report the first occupied bucket regardless of how far
	// below zero it was, and q > 1 has no rank past the last observation.
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.n-1))
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen > rank {
			if u := bucketUpper(b); u < h.max {
				return u
			}
			return h.max
		}
	}
	return h.max
}

// bucketUpper returns the exclusive upper boundary of bucket b, matching
// bucketOf: bucket 0 covers [0, 2µs) (sub-microsecond observations land
// there too), bucket b>0 covers [1µs<<b, 1µs<<(b+1)), and the final
// bucket is open-ended — its nominal boundary is a floor, which is why
// Quantile clamps to the observed max.
func bucketUpper(b int) time.Duration {
	return time.Microsecond << uint(b+1)
}

// String renders a compact summary plus the non-empty buckets.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "no observations"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d min=%v mean=%v p50≤%v p99≤%v max=%v",
		h.n, h.min, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
	var used []int
	for b, c := range h.counts {
		if c > 0 {
			used = append(used, b)
		}
	}
	sort.Ints(used)
	for _, b := range used {
		fmt.Fprintf(&sb, "  [<%v]=%d", bucketUpper(b), h.counts[b])
	}
	return sb.String()
}
