// Context-cancellation tests for the bounded worker pool: no new items
// after cancellation, indexed interrupt errors for items that never ran,
// and per-item error wrapping that names the failing item.
package batch_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/batch"
	"repro/internal/interrupt"
)

// TestEachCtxPreCancelled: a dead context runs nothing and reports the
// sentinel, on both the sequential (workers <= 1) and pooled paths.
func TestEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := 0
		err := batch.EachCtx(ctx, 16, batch.Options{Workers: workers}, func(_, _ int) { ran++ })
		if !errors.Is(err, interrupt.ErrInterrupted) {
			t.Fatalf("workers=%d: err = %v, want ErrInterrupted", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want to unwrap to context.Canceled", workers, err)
		}
		if ran != 0 {
			t.Fatalf("workers=%d: %d items ran under a dead context", workers, ran)
		}
	}
}

// TestMapCtxPartial: cancelling after the first item (sequential path, so
// hand-out order is deterministic) keeps the finished result and tags every
// unstarted item with an indexed interrupt error.
func TestMapCtxPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	items := []int{10, 20, 30, 40}
	results, errs := batch.MapCtx(ctx, items, batch.Options{Workers: 1}, func(x int) (int, error) {
		if x == 10 {
			cancel() // dies after the first item completes
		}
		return x * 2, nil
	})
	if errs[0] != nil || results[0] != 20 {
		t.Fatalf("item 0: got (%d, %v), want the completed result (20, nil)", results[0], errs[0])
	}
	for i := 1; i < len(items); i++ {
		if !errors.Is(errs[i], interrupt.ErrInterrupted) {
			t.Errorf("item %d: err = %v, want ErrInterrupted", i, errs[i])
		}
		want := fmt.Sprintf("item %d:", i)
		if errs[i] == nil || !strings.Contains(errs[i].Error(), want) {
			t.Errorf("item %d: error %v does not carry %q", i, errs[i], want)
		}
	}
}

// TestMapItemIndexWrapping: a per-item failure is wrapped with its item
// index but still unwraps to the original error.
func TestMapItemIndexWrapping(t *testing.T) {
	sentinel := errors.New("boom")
	items := []string{"a", "b", "c"}
	results, errs := batch.Map(items, batch.Options{Workers: 2}, func(s string) (string, error) {
		if s == "b" {
			return "", sentinel
		}
		return strings.ToUpper(s), nil
	})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy items errored: %v, %v", errs[0], errs[2])
	}
	if results[0] != "A" || results[2] != "C" {
		t.Fatalf("healthy results = %q, %q", results[0], results[2])
	}
	if !errors.Is(errs[1], sentinel) {
		t.Fatalf("item 1: err = %v does not unwrap to the original error", errs[1])
	}
	if !strings.Contains(errs[1].Error(), "item 1:") {
		t.Fatalf("item 1: error %q does not name the failing item", errs[1])
	}
	if err := batch.FirstError(errs); !errors.Is(err, sentinel) {
		t.Fatalf("FirstError = %v, want the wrapped sentinel", err)
	}
}
