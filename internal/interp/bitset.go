package interp

import "math/bits"

// Bitset is a fixed-capacity bitset over atom ids.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitset returns a bitset with capacity for n bits, all clear.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the bit capacity.
func (b *Bitset) Cap() int { return b.n }

// Get reports whether bit i is set. Indexes at or beyond the capacity read
// as clear: interpretations are sized when built, and an atom interned
// later (by a snapshot update sharing the atom table) is simply not a
// member, not an out-of-range access.
func (b *Bitset) Get(i int) bool {
	if uint(i) >= uint(b.n) {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	nb := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(nb.words, b.words)
	return nb
}

// CopyFrom overwrites b with the contents of o (same capacity required).
func (b *Bitset) CopyFrom(o *Bitset) {
	copy(b.words, o.words)
}

// Equal reports whether both bitsets contain exactly the same bits.
func (b *Bitset) Equal(o *Bitset) bool {
	if len(b.words) != len(o.words) {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every set bit of b is set in o.
func (b *Bitset) SubsetOf(o *Bitset) bool {
	for i, w := range b.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// UnionWith sets every bit of o in b.
func (b *Bitset) UnionWith(o *Bitset) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// IntersectWith clears every bit of b not set in o.
func (b *Bitset) IntersectWith(o *Bitset) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// DifferenceWith clears every bit of b that is set in o.
func (b *Bitset) DifferenceWith(o *Bitset) {
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// Intersects reports whether b and o share a set bit.
func (b *Bitset) Intersects(o *Bitset) bool {
	for i, w := range b.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Empty reports whether no bit is set.
func (b *Bitset) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Range calls f for every set bit in ascending order; f returning false
// stops the iteration.
func (b *Bitset) Range(f func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !f(wi<<6 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Bits returns the indexes of all set bits in ascending order.
func (b *Bitset) Bits() []int {
	out := make([]int, 0, b.Count())
	b.Range(func(i int) bool { out = append(out, i); return true })
	return out
}
