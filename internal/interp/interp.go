package interp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Value is the three-valued truth value of a ground atom under an
// interpretation: True when the atom is in I, False when its complement is,
// Undef otherwise.
type Value int

// Truth values with the paper's ordering False < Undef < True.
const (
	False Value = iota
	Undef
	True
)

// String names the value (T/U/F as in the paper's §3).
func (v Value) String() string {
	switch v {
	case True:
		return "T"
	case False:
		return "F"
	default:
		return "U"
	}
}

// Interp is a consistent set of ground literals over an atom table,
// represented as two bitsets (atoms asserted true, atoms asserted false).
type Interp struct {
	tab *Table
	pos *Bitset
	neg *Bitset
}

// New returns the empty interpretation over tab.
func New(tab *Table) *Interp {
	return &Interp{tab: tab, pos: NewBitset(tab.Len()), neg: NewBitset(tab.Len())}
}

// Table returns the underlying atom table.
func (in *Interp) Table() *Table { return in.tab }

// Value returns the truth value of atom id.
func (in *Interp) Value(id AtomID) Value {
	switch {
	case in.pos.Get(int(id)):
		return True
	case in.neg.Get(int(id)):
		return False
	}
	return Undef
}

// HasLit reports whether the literal is a member of the interpretation.
func (in *Interp) HasLit(l Lit) bool {
	if l.Neg() {
		return in.neg.Get(int(l.Atom()))
	}
	return in.pos.Get(int(l.Atom()))
}

// AddLit inserts a literal. It returns false (and does not insert) when the
// complementary literal is already present, which would make the
// interpretation inconsistent.
func (in *Interp) AddLit(l Lit) bool {
	a := int(l.Atom())
	if l.Neg() {
		if in.pos.Get(a) {
			return false
		}
		in.neg.Set(a)
	} else {
		if in.neg.Get(a) {
			return false
		}
		in.pos.Set(a)
	}
	return true
}

// RemoveLit removes a literal if present.
func (in *Interp) RemoveLit(l Lit) {
	a := int(l.Atom())
	if l.Neg() {
		in.neg.Clear(a)
	} else {
		in.pos.Clear(a)
	}
}

// Len returns the number of literals in the interpretation.
func (in *Interp) Len() int { return in.pos.Count() + in.neg.Count() }

// Undefined returns the ids of atoms with value Undef (the paper's Ī).
func (in *Interp) Undefined() []AtomID {
	var out []AtomID
	for i, n := 0, in.tab.Len(); i < n; i++ {
		if !in.pos.Get(i) && !in.neg.Get(i) {
			out = append(out, AtomID(i))
		}
	}
	return out
}

// Total reports whether no atom is undefined.
func (in *Interp) Total() bool {
	return in.pos.Count()+in.neg.Count() == in.tab.Len()
}

// Clone returns an independent copy.
func (in *Interp) Clone() *Interp {
	return &Interp{tab: in.tab, pos: in.pos.Clone(), neg: in.neg.Clone()}
}

// CopyFrom overwrites in with the contents of o (same table required).
func (in *Interp) CopyFrom(o *Interp) {
	in.pos.CopyFrom(o.pos)
	in.neg.CopyFrom(o.neg)
}

// Equal reports whether two interpretations contain the same literals.
func (in *Interp) Equal(o *Interp) bool {
	return in.pos.Equal(o.pos) && in.neg.Equal(o.neg)
}

// SubsetOf reports whether every literal of in is in o.
func (in *Interp) SubsetOf(o *Interp) bool {
	return in.pos.SubsetOf(o.pos) && in.neg.SubsetOf(o.neg)
}

// ProperSubsetOf reports whether in ⊂ o.
func (in *Interp) ProperSubsetOf(o *Interp) bool {
	return in.SubsetOf(o) && !in.Equal(o)
}

// UnionWith adds every literal of o to in. It returns false if the union
// would be inconsistent (in is then partially modified).
func (in *Interp) UnionWith(o *Interp) bool {
	in.pos.UnionWith(o.pos)
	in.neg.UnionWith(o.neg)
	return !in.pos.Intersects(in.neg)
}

// IntersectWith keeps only literals present in both.
func (in *Interp) IntersectWith(o *Interp) {
	in.pos.IntersectWith(o.pos)
	in.neg.IntersectWith(o.neg)
}

// Consistent reports whether no atom is asserted both true and false.
func (in *Interp) Consistent() bool { return !in.pos.Intersects(in.neg) }

// Lits returns all member literals sorted by atom id, positives first per
// atom.
func (in *Interp) Lits() []Lit {
	out := make([]Lit, 0, in.Len())
	for i, n := 0, in.tab.Len(); i < n; i++ {
		if in.pos.Get(i) {
			out = append(out, MkLit(AtomID(i), false))
		}
		if in.neg.Get(i) {
			out = append(out, MkLit(AtomID(i), true))
		}
	}
	return out
}

// PosAtoms returns the ids of atoms asserted true.
func (in *Interp) PosAtoms() []AtomID {
	bits := in.pos.Bits()
	out := make([]AtomID, len(bits))
	for i, b := range bits {
		out[i] = AtomID(b)
	}
	return out
}

// NegAtoms returns the ids of atoms asserted false.
func (in *Interp) NegAtoms() []AtomID {
	bits := in.neg.Bits()
	out := make([]AtomID, len(bits))
	for i, b := range bits {
		out[i] = AtomID(b)
	}
	return out
}

// Literals returns the member literals as AST literals, sorted canonically
// for stable printing.
func (in *Interp) Literals() []ast.Literal {
	lits := in.Lits()
	out := make([]ast.Literal, len(lits))
	for i, l := range lits {
		out[i] = ast.Literal{Neg: l.Neg(), Atom: in.tab.Atom(l.Atom())}
	}
	sort.Slice(out, func(i, j int) bool { return ast.CompareLiterals(out[i], out[j]) < 0 })
	return out
}

// String renders the interpretation as a sorted literal set.
func (in *Interp) String() string {
	lits := in.Literals()
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range lits {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(l.String())
	}
	b.WriteByte('}')
	return b.String()
}

// FromLiterals builds an interpretation from AST literals; every atom must
// already be interned. It fails on inconsistent or unknown literals.
func FromLiterals(tab *Table, lits []ast.Literal) (*Interp, error) {
	in := New(tab)
	for _, l := range lits {
		id, ok := tab.Lookup(l.Atom)
		if !ok {
			return nil, fmt.Errorf("literal %s: atom not in Herbrand base", l)
		}
		if !in.AddLit(MkLit(id, l.Neg)) {
			return nil, fmt.Errorf("literal %s makes the interpretation inconsistent", l)
		}
	}
	return in, nil
}
