// Package interp provides ground-atom interning and three-valued
// interpretations represented as bitsets. All ground-level evaluation in
// the engine runs on interned atom ids rather than on AST values.
//
// Following the paper, an interpretation I is a consistent set of ground
// literals; a ground atom A has value True if A ∈ I, False if ¬A ∈ I and
// Undef otherwise (the paper's Ī of undefined elements).
package interp

import (
	"sort"
	"strings"

	"repro/internal/ast"
)

// AtomID identifies an interned ground atom.
type AtomID int32

// Lit is an interned ground literal: atom id with a sign bit in the lowest
// position (even = positive, odd = negative).
type Lit int32

// MkLit builds a literal from an atom id and a negation flag.
func MkLit(a AtomID, neg bool) Lit {
	l := Lit(a) << 1
	if neg {
		l |= 1
	}
	return l
}

// Atom returns the literal's atom id.
func (l Lit) Atom() AtomID { return AtomID(l >> 1) }

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l&1 == 1 }

// Complement returns the complementary literal.
func (l Lit) Complement() Lit { return l ^ 1 }

// Table interns ground atoms. The zero value is not usable; call NewTable.
type Table struct {
	byKey map[string]AtomID
	atoms []ast.Atom
	preds map[ast.PredKey][]AtomID
}

// NewTable returns an empty atom table.
func NewTable() *Table {
	return &Table{byKey: make(map[string]AtomID), preds: make(map[ast.PredKey][]AtomID)}
}

// key builds the canonical encoding of a ground atom. Argument terms are
// rendered with type tags so that the symbol "1" and the integer 1 differ.
func key(a ast.Atom) string {
	var b strings.Builder
	b.WriteString(a.Pred)
	for _, t := range a.Args {
		b.WriteByte('\x00')
		writeTermKey(&b, t)
	}
	return b.String()
}

func writeTermKey(b *strings.Builder, t ast.Term) {
	switch t := t.(type) {
	case ast.Sym:
		b.WriteByte('s')
		b.WriteString(string(t))
	case ast.Int:
		b.WriteByte('i')
		b.WriteString(t.String())
	case ast.Compound:
		b.WriteByte('c')
		b.WriteString(t.Functor)
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeTermKey(b, a)
		}
		b.WriteByte(')')
	case ast.Var:
		// Ground atoms never contain variables; tolerate for diagnostics.
		b.WriteByte('v')
		b.WriteString(t.Name)
	}
}

// Intern returns the id for a ground atom, creating it if needed.
func (t *Table) Intern(a ast.Atom) AtomID {
	k := key(a)
	if id, ok := t.byKey[k]; ok {
		return id
	}
	id := AtomID(len(t.atoms))
	t.byKey[k] = id
	t.atoms = append(t.atoms, a)
	pk := a.Key()
	t.preds[pk] = append(t.preds[pk], id)
	return id
}

// Lookup returns the id of a ground atom and whether it is interned.
func (t *Table) Lookup(a ast.Atom) (AtomID, bool) {
	id, ok := t.byKey[key(a)]
	return id, ok
}

// Atom returns the atom for an id.
func (t *Table) Atom(id AtomID) ast.Atom { return t.atoms[id] }

// Len returns the number of interned atoms.
func (t *Table) Len() int { return len(t.atoms) }

// OfPred returns the ids of all interned atoms of a predicate, in
// interning order. The returned slice is shared; do not modify.
func (t *Table) OfPred(k ast.PredKey) []AtomID { return t.preds[k] }

// Preds returns all predicate keys with at least one interned atom,
// sorted by name then arity.
func (t *Table) Preds() []ast.PredKey {
	keys := make([]ast.PredKey, 0, len(t.preds))
	for k := range t.preds {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Arity < keys[j].Arity
	})
	return keys
}

// LitString renders an interned literal using the table.
func (t *Table) LitString(l Lit) string {
	s := t.Atom(l.Atom()).String()
	if l.Neg() {
		return "-" + s
	}
	return s
}
