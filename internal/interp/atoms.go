// Package interp provides ground-atom interning and three-valued
// interpretations represented as bitsets. All ground-level evaluation in
// the engine runs on interned atom ids rather than on AST values.
//
// Following the paper, an interpretation I is a consistent set of ground
// literals; a ground atom A has value True if A ∈ I, False if ¬A ∈ I and
// Undef otherwise (the paper's Ī of undefined elements).
package interp

import (
	"sort"
	"sync"

	"repro/internal/ast"
	"repro/internal/term"
)

// AtomID identifies an interned ground atom.
type AtomID int32

// Lit is an interned ground literal: atom id with a sign bit in the lowest
// position (even = positive, odd = negative).
type Lit int32

// MkLit builds a literal from an atom id and a negation flag.
func MkLit(a AtomID, neg bool) Lit {
	l := Lit(a) << 1
	if neg {
		l |= 1
	}
	return l
}

// Atom returns the literal's atom id.
func (l Lit) Atom() AtomID { return AtomID(l >> 1) }

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l&1 == 1 }

// Complement returns the complementary literal.
func (l Lit) Complement() Lit { return l ^ 1 }

// Table interns ground atoms. Atoms are keyed by their predicate symbol id
// plus the packed interned ids of their arguments (internal/term), so
// interning an already-seen atom costs one per-argument id lookup and one
// map probe over a short binary key instead of re-serialising the atom to
// a string. The zero value is not usable; call NewTable.
//
// Like term.Table, an atom table is safe for concurrent use: Intern and
// InternIDs take the write lock (so concurrent writers serialise on the
// mutex, including the shared key scratch it guards), and
// Lookup/LookupIDs/Atom/Len/OfPred/Preds take the read lock. The sharded
// grounding workers rely on this: several goroutines intern head and body
// atoms of independent rule instances against one table.
type Table struct {
	mu    sync.RWMutex
	tab   *term.Table
	byKey map[string]AtomID
	atoms []ast.Atom
	preds map[ast.PredKey][]AtomID
	buf   []byte // scratch for Intern/InternIDs keys; lookups must not touch it
}

// NewTable returns an empty atom table with its own term table.
func NewTable() *Table { return NewTableWith(term.NewTable()) }

// NewTableWith returns an empty atom table interning argument terms into
// tab, so a caller can share one term table between its atom table and a
// storage.Store.
func NewTableWith(tab *term.Table) *Table {
	return &Table{tab: tab, byKey: make(map[string]AtomID), preds: make(map[ast.PredKey][]AtomID)}
}

// TermTable returns the term table the atom table interns arguments into.
func (t *Table) TermTable() *term.Table { return t.tab }

// appendKey packs the atom's key: the interned predicate-symbol id followed
// by one id per argument. Distinct arities yield distinct key lengths, so
// p/1 and p/2 atoms cannot collide.
func (t *Table) appendKey(b []byte, pred term.ID, args []term.ID) []byte {
	b = term.AppendID(b, pred)
	for _, id := range args {
		b = term.AppendID(b, id)
	}
	return b
}

// Intern returns the id for a ground atom, creating it if needed.
func (t *Table) Intern(a ast.Atom) AtomID {
	var ids [8]term.ID
	args := ids[:0]
	for _, arg := range a.Args {
		args = append(args, t.tab.Intern(arg))
	}
	pred := t.tab.InternSym(a.Pred)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = t.appendKey(t.buf[:0], pred, args)
	if id, ok := t.byKey[string(t.buf)]; ok {
		return id
	}
	id := AtomID(len(t.atoms))
	t.byKey[string(t.buf)] = id
	t.atoms = append(t.atoms, a)
	pk := a.Key()
	t.preds[pk] = append(t.preds[pk], id)
	return id
}

// Lookup returns the id of a ground atom and whether it is interned. It
// never interns: an atom whose predicate symbol or arguments are absent
// from the term table cannot have been interned. Lookup never touches the
// table's shared scratch buffer, so concurrent Lookups on a table that is
// no longer being interned into are safe.
func (t *Table) Lookup(a ast.Atom) (AtomID, bool) {
	pred, ok := t.tab.LookupSym(a.Pred)
	if !ok {
		return 0, false
	}
	var ids [8]term.ID
	args := ids[:0]
	for _, arg := range a.Args {
		id, ok := t.tab.Lookup(arg)
		if !ok {
			return 0, false
		}
		args = append(args, id)
	}
	var kb [64]byte
	key := t.appendKey(kb[:0], pred, args)
	t.mu.RLock()
	id, ok := t.byKey[string(key)]
	t.mu.RUnlock()
	return id, ok
}

// LookupIDs returns the id of the ground atom with the given predicate
// symbol id and already-interned argument ids, without interning. Like
// Lookup it takes only the read lock and is safe against a concurrent
// writer.
func (t *Table) LookupIDs(pred term.ID, args []term.ID) (AtomID, bool) {
	var kb [64]byte
	key := t.appendKey(kb[:0], pred, args)
	t.mu.RLock()
	id, ok := t.byKey[string(key)]
	t.mu.RUnlock()
	return id, ok
}

// InternIDs returns the id for the ground atom a, whose predicate symbol id
// and argument ids have already been interned by the caller (a must decode
// to exactly those ids). It skips re-interning the arguments.
func (t *Table) InternIDs(a ast.Atom, pred term.ID, args []term.ID) AtomID {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = t.appendKey(t.buf[:0], pred, args)
	if id, ok := t.byKey[string(t.buf)]; ok {
		return id
	}
	id := AtomID(len(t.atoms))
	t.byKey[string(t.buf)] = id
	t.atoms = append(t.atoms, a)
	pk := a.Key()
	t.preds[pk] = append(t.preds[pk], id)
	return id
}

// Atom returns the atom for an id.
func (t *Table) Atom(id AtomID) ast.Atom {
	t.mu.RLock()
	a := t.atoms[id]
	t.mu.RUnlock()
	return a
}

// Len returns the number of interned atoms.
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.atoms)
	t.mu.RUnlock()
	return n
}

// OfPred returns the ids of all interned atoms of a predicate, in
// interning order. The returned slice is shared; do not modify. A
// concurrent writer may append further atoms of the predicate, but the
// prefix the caller received is immutable.
func (t *Table) OfPred(k ast.PredKey) []AtomID {
	t.mu.RLock()
	ids := t.preds[k]
	t.mu.RUnlock()
	return ids
}

// Preds returns all predicate keys with at least one interned atom,
// sorted by name then arity.
func (t *Table) Preds() []ast.PredKey {
	t.mu.RLock()
	defer t.mu.RUnlock()
	keys := make([]ast.PredKey, 0, len(t.preds))
	for k := range t.preds {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Arity < keys[j].Arity
	})
	return keys
}

// ShardKey returns the hash-partitioning key of an interned atom for
// sharded evaluation: the interned term id of its first argument, or the
// id of its predicate symbol for arity-0 atoms. The key is a property of
// the atom, not of the literal sign, so an atom and its classical
// complement always map to the same shard — which is what keeps every
// overruler/defeater edge of the ordered semantics shard-local.
func (t *Table) ShardKey(id AtomID) term.ID {
	t.mu.RLock()
	a := t.atoms[id]
	t.mu.RUnlock()
	if len(a.Args) == 0 {
		// Interned atoms always have an interned predicate symbol.
		k, _ := t.tab.LookupSym(a.Pred)
		return k
	}
	k, _ := t.tab.Lookup(a.Args[0])
	return k
}

// LitString renders an interned literal using the table.
func (t *Table) LitString(l Lit) string {
	s := t.Atom(l.Atom()).String()
	if l.Neg() {
		return "-" + s
	}
	return s
}
