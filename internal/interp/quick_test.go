package interp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

// refSet is a map-based reference implementation of a literal set used to
// cross-check the bitset-backed Interp under random operation sequences.
type refSet map[Lit]bool

func (r refSet) consistent() bool {
	for l := range r {
		if r[l.Complement()] {
			return false
		}
	}
	return true
}

// TestQuickInterpMatchesReference drives random add/remove sequences and
// compares every observable against the reference.
func TestQuickInterpMatchesReference(t *testing.T) {
	f := func(seed int64, nAtoms uint8, ops uint8) bool {
		n := int(nAtoms%40) + 1
		tab := NewTable()
		for i := 0; i < n; i++ {
			tab.Intern(ast.Atom{Pred: "p", Args: []ast.Term{ast.Int(int64(i))}})
		}
		rng := rand.New(rand.NewSource(seed))
		in := New(tab)
		ref := refSet{}
		for k := 0; k < int(ops); k++ {
			l := MkLit(AtomID(rng.Intn(n)), rng.Intn(2) == 0)
			if rng.Intn(3) == 0 {
				in.RemoveLit(l)
				delete(ref, l)
				continue
			}
			added := in.AddLit(l)
			wouldConflict := ref[l.Complement()]
			if added == wouldConflict && !ref[l] {
				return false // AddLit must succeed iff no complement present
			}
			if added {
				ref[l] = true
			}
		}
		if !ref.consistent() {
			return false // reference bookkeeping bug
		}
		if in.Len() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			for _, neg := range []bool{false, true} {
				l := MkLit(AtomID(i), neg)
				if in.HasLit(l) != ref[l] {
					return false
				}
			}
		}
		return in.Consistent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBitsetAlgebra checks set-algebra laws on random bitsets.
func TestQuickBitsetAlgebra(t *testing.T) {
	mk := func(seed int64, n int) *Bitset {
		rng := rand.New(rand.NewSource(seed))
		b := NewBitset(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		return b
	}
	f := func(s1, s2 int64, szRaw uint8) bool {
		n := int(szRaw)%150 + 1
		a, b := mk(s1, n), mk(s2, n)

		// Union is an upper bound; intersection a lower bound.
		u := a.Clone()
		u.UnionWith(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		i := a.Clone()
		i.IntersectWith(b)
		if !i.SubsetOf(a) || !i.SubsetOf(b) {
			return false
		}
		// |A| + |B| = |A∪B| + |A∩B|.
		if a.Count()+b.Count() != u.Count()+i.Count() {
			return false
		}
		// A \ B is disjoint from B and unions with A∩B back to A.
		d := a.Clone()
		d.DifferenceWith(b)
		if d.Intersects(b) && d.Clone().Count() > 0 {
			// Intersects is allowed to be true only when sharing a bit.
			chk := d.Clone()
			chk.IntersectWith(b)
			if chk.Count() > 0 {
				return false
			}
		}
		back := d.Clone()
		back.UnionWith(i)
		if !back.Equal(a) {
			return false
		}
		// Range visits exactly the set bits in order.
		prev := -1
		cnt := 0
		ok := true
		a.Range(func(x int) bool {
			if x <= prev || !a.Get(x) {
				ok = false
				return false
			}
			prev = x
			cnt++
			return true
		})
		return ok && cnt == a.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInternStable: interning is injective and stable under
// re-interning in shuffled order.
func TestQuickInternStable(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable()
		atoms := make([]ast.Atom, n)
		ids := make([]AtomID, n)
		for i := 0; i < n; i++ {
			atoms[i] = ast.Atom{Pred: "q", Args: []ast.Term{ast.Int(int64(i)), ast.Sym("s")}}
			ids[i] = tab.Intern(atoms[i])
		}
		perm := rng.Perm(n)
		for _, i := range perm {
			if tab.Intern(atoms[i]) != ids[i] {
				return false
			}
			if got, ok := tab.Lookup(atoms[i]); !ok || got != ids[i] {
				return false
			}
			if !tab.Atom(ids[i]).Equal(atoms[i]) {
				return false
			}
		}
		return tab.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
