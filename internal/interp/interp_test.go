package interp

import (
	"testing"

	"repro/internal/ast"
)

func atomOf(pred string, args ...ast.Term) ast.Atom { return ast.Atom{Pred: pred, Args: args} }

func TestTableIntern(t *testing.T) {
	tab := NewTable()
	a := tab.Intern(atomOf("p", ast.Sym("a")))
	b := tab.Intern(atomOf("p", ast.Sym("b")))
	if a == b {
		t.Error("distinct atoms share an id")
	}
	if got := tab.Intern(atomOf("p", ast.Sym("a"))); got != a {
		t.Error("re-interning changed the id")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
	if got := tab.Atom(a); !got.Equal(atomOf("p", ast.Sym("a"))) {
		t.Errorf("Atom(%d) = %s", a, got)
	}
	if id, ok := tab.Lookup(atomOf("p", ast.Sym("b"))); !ok || id != b {
		t.Error("Lookup failed")
	}
	if _, ok := tab.Lookup(atomOf("q")); ok {
		t.Error("Lookup found a missing atom")
	}
}

func TestTableDistinguishesTermKinds(t *testing.T) {
	tab := NewTable()
	i := tab.Intern(atomOf("p", ast.Int(1)))
	s := tab.Intern(atomOf("p", ast.Sym("1")))
	if i == s {
		t.Error("integer 1 and symbol \"1\" collide")
	}
	c1 := tab.Intern(atomOf("p", ast.Compound{Functor: "f", Args: []ast.Term{ast.Sym("a"), ast.Sym("b")}}))
	c2 := tab.Intern(atomOf("p", ast.Compound{Functor: "f", Args: []ast.Term{ast.Sym("a,b")}}))
	if c1 == c2 {
		t.Error("f(a,b) and f('a,b') collide")
	}
}

func TestOfPredAndPreds(t *testing.T) {
	tab := NewTable()
	tab.Intern(atomOf("p", ast.Sym("a")))
	tab.Intern(atomOf("p", ast.Sym("b")))
	tab.Intern(atomOf("q"))
	if got := tab.OfPred(ast.PredKey{Name: "p", Arity: 1}); len(got) != 2 {
		t.Errorf("OfPred(p/1) = %v", got)
	}
	preds := tab.Preds()
	if len(preds) != 2 || preds[0].Name != "p" || preds[1].Name != "q" {
		t.Errorf("Preds = %v", preds)
	}
}

func TestLitEncoding(t *testing.T) {
	for _, id := range []AtomID{0, 1, 7, 12345} {
		for _, neg := range []bool{false, true} {
			l := MkLit(id, neg)
			if l.Atom() != id || l.Neg() != neg {
				t.Errorf("MkLit(%d,%v) decodes to (%d,%v)", id, neg, l.Atom(), l.Neg())
			}
			if c := l.Complement(); c.Atom() != id || c.Neg() == neg || c.Complement() != l {
				t.Errorf("Complement broken for %v", l)
			}
		}
	}
}

func TestLitString(t *testing.T) {
	tab := NewTable()
	id := tab.Intern(atomOf("fly", ast.Sym("tweety")))
	if got := tab.LitString(MkLit(id, false)); got != "fly(tweety)" {
		t.Errorf("LitString = %q", got)
	}
	if got := tab.LitString(MkLit(id, true)); got != "-fly(tweety)" {
		t.Errorf("LitString = %q", got)
	}
}

func mkTab(n int) *Table {
	tab := NewTable()
	for i := 0; i < n; i++ {
		tab.Intern(atomOf("a", ast.Int(int64(i))))
	}
	return tab
}

func TestInterpBasics(t *testing.T) {
	tab := mkTab(4)
	in := New(tab)
	if in.Len() != 0 || !in.Consistent() || in.Total() {
		t.Error("fresh interp wrong")
	}
	if !in.AddLit(MkLit(0, false)) || !in.AddLit(MkLit(1, true)) {
		t.Fatal("AddLit failed")
	}
	if in.AddLit(MkLit(0, true)) {
		t.Error("inconsistent AddLit accepted")
	}
	if in.Value(0) != True || in.Value(1) != False || in.Value(2) != Undef {
		t.Error("Value wrong")
	}
	if !in.HasLit(MkLit(0, false)) || in.HasLit(MkLit(0, true)) {
		t.Error("HasLit wrong")
	}
	if got := in.Undefined(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Undefined = %v", got)
	}
	in.RemoveLit(MkLit(0, false))
	if in.Value(0) != Undef {
		t.Error("RemoveLit failed")
	}
}

func TestInterpSetOps(t *testing.T) {
	tab := mkTab(4)
	small, big := New(tab), New(tab)
	small.AddLit(MkLit(0, false))
	big.AddLit(MkLit(0, false))
	big.AddLit(MkLit(1, true))
	if !small.SubsetOf(big) || big.SubsetOf(small) {
		t.Error("SubsetOf wrong")
	}
	if !small.ProperSubsetOf(big) || small.ProperSubsetOf(small) {
		t.Error("ProperSubsetOf wrong")
	}
	u := small.Clone()
	if !u.UnionWith(big) || u.Len() != 2 {
		t.Error("UnionWith wrong")
	}
	// Union of conflicting interps reports inconsistency.
	c := New(tab)
	c.AddLit(MkLit(0, true))
	if c.UnionWith(big) {
		t.Error("inconsistent union reported consistent")
	}
	i := big.Clone()
	i.IntersectWith(small)
	if !i.Equal(small) {
		t.Errorf("IntersectWith = %s", i)
	}
}

func TestInterpTotal(t *testing.T) {
	tab := mkTab(2)
	in := New(tab)
	in.AddLit(MkLit(0, false))
	if in.Total() {
		t.Error("partial interp Total")
	}
	in.AddLit(MkLit(1, true))
	if !in.Total() {
		t.Error("total interp not Total")
	}
}

func TestInterpStringSorted(t *testing.T) {
	tab := NewTable()
	b := tab.Intern(atomOf("b"))
	a := tab.Intern(atomOf("a"))
	in := New(tab)
	in.AddLit(MkLit(b, true))
	in.AddLit(MkLit(a, false))
	if got := in.String(); got != "{a, -b}" {
		t.Errorf("String = %q (canonical order expected)", got)
	}
}

func TestFromLiterals(t *testing.T) {
	tab := NewTable()
	tab.Intern(atomOf("a"))
	in, err := FromLiterals(tab, []ast.Literal{ast.Pos(atomOf("a"))})
	if err != nil || !in.HasLit(MkLit(0, false)) {
		t.Errorf("FromLiterals: %v %v", in, err)
	}
	if _, err := FromLiterals(tab, []ast.Literal{ast.Pos(atomOf("zzz"))}); err == nil {
		t.Error("unknown atom accepted")
	}
	if _, err := FromLiterals(tab, []ast.Literal{ast.Pos(atomOf("a")), ast.Neg(atomOf("a"))}); err == nil {
		t.Error("inconsistent literal set accepted")
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130) // cross word boundaries
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d", b.Count())
	}
	if !b.Get(64) || b.Get(65) {
		t.Error("Get wrong")
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 3 {
		t.Error("Clear wrong")
	}
	c := b.Clone()
	if !c.Equal(b) {
		t.Error("Clone not equal")
	}
	c.Set(1)
	if c.Equal(b) || !b.SubsetOf(c) || c.SubsetOf(b) {
		t.Error("Subset/Equal wrong after divergence")
	}
	var got []int
	c.Range(func(i int) bool { got = append(got, i); return true })
	want := []int{0, 1, 63, 129}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Range order %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	c.Range(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("Range did not stop early: %d", n)
	}
	// Boolean algebra.
	d := NewBitset(130)
	d.Set(0)
	d.Set(2)
	e := d.Clone()
	e.UnionWith(b)
	if !d.SubsetOf(e) || !b.SubsetOf(e) {
		t.Error("UnionWith wrong")
	}
	e.DifferenceWith(b)
	if e.Get(63) || !e.Get(2) {
		t.Error("DifferenceWith wrong")
	}
	f := d.Clone()
	f.IntersectWith(b)
	if !f.Get(0) || f.Get(2) {
		t.Error("IntersectWith wrong")
	}
	if !d.Intersects(b) {
		t.Error("Intersects wrong")
	}
	empty := NewBitset(130)
	if !empty.Empty() || b.Empty() {
		t.Error("Empty wrong")
	}
	if bits := b.Bits(); len(bits) != 3 {
		t.Errorf("Bits = %v", bits)
	}
}

func TestValueOrdering(t *testing.T) {
	// The paper's F < U < T ordering drives body evaluation.
	if !(False < Undef && Undef < True) {
		t.Error("truth ordering broken")
	}
	if False.String() != "F" || Undef.String() != "U" || True.String() != "T" {
		t.Error("value names wrong")
	}
}
