// Correspondence tests for §3 and §4 of the paper: Propositions 3, 4 and
// 5, Corollary 1 and Theorem 2 are checked on seeded random propositional
// programs by exhaustive model enumeration, comparing the ordered engine
// (via the OV/EV/3V translations) against the independently implemented
// classical semantics (internal/classical) and the direct Definition 11
// semantics (internal/negsem).
package transform_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/classical"
	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/negsem"
	"repro/internal/stable"
	"repro/internal/transform"
	"repro/internal/workload"
)

// groundFull grounds an ordered program in full mode.
func groundFull(t *testing.T, p *ast.OrderedProgram) *ground.Program {
	t.Helper()
	opts := ground.DefaultOptions()
	opts.Mode = ground.ModeFull
	g, err := ground.Ground(p, opts)
	if err != nil {
		t.Fatalf("ground: %v", err)
	}
	return g
}

func viewOf(t *testing.T, g *ground.Program, comp string) *eval.View {
	t.Helper()
	v, err := eval.NewViewByName(g, comp)
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	return v
}

// modelSet renders a family of interpretations as a sorted string set.
func modelSet(ms []*interp.Interp) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	sort.Strings(out)
	// Deduplicate (brute-force enumerations never duplicate, but maximal
	// filters may hand us equal models from different branches).
	dedup := out[:0]
	for i, s := range out {
		if i == 0 || out[i-1] != s {
			dedup = append(dedup, s)
		}
	}
	return dedup
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// convert rebuilds an interpretation over another atom table (atoms are
// matched structurally).
func convert(t *testing.T, m *interp.Interp, tab *interp.Table) *interp.Interp {
	t.Helper()
	out, err := interp.FromLiterals(tab, m.Literals())
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	return out
}

// enumerate3 runs fn on every three-valued assignment over the table.
func enumerate3(tab *interp.Table, fn func(m *interp.Interp)) {
	cur := interp.New(tab)
	n := tab.Len()
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			fn(cur)
			return
		}
		id := interp.AtomID(i)
		cur.AddLit(interp.MkLit(id, false))
		rec(i + 1)
		cur.RemoveLit(interp.MkLit(id, false))
		cur.AddLit(interp.MkLit(id, true))
		rec(i + 1)
		cur.RemoveLit(interp.MkLit(id, true))
		rec(i + 1)
	}
	rec(0)
}

func randomSeminegative(seed int64) []*ast.Rule {
	rng := rand.New(rand.NewSource(seed))
	return workload.RandomPropositional(rng, workload.RandomConfig{
		Atoms: 4 + rng.Intn(2), Rules: 4 + rng.Intn(4), MaxBody: 2,
		NegHeads: false, NegBody: true,
	})
}

func randomNegative(seed int64) []*ast.Rule {
	rng := rand.New(rand.NewSource(seed))
	return workload.RandomPropositional(rng, workload.RandomConfig{
		Atoms: 4 + rng.Intn(2), Rules: 4 + rng.Intn(4), MaxBody: 2,
		NegHeads: true, NegBody: true,
	})
}

const trials = 120

// TestProp3 checks: every model of OV(C) in C is a 3-valued model of C.
// Example 7 shows the converse fails, which we also witness.
func TestProp3(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		rules := randomSeminegative(seed)
		cp, err := classical.GroundRules(rules, classical.Options{Full: true})
		if err != nil {
			t.Fatalf("seed %d: classical ground: %v", seed, err)
		}
		ov, err := transform.OV("c", rules)
		if err != nil {
			t.Fatalf("seed %d: OV: %v", seed, err)
		}
		g := groundFull(t, ov)
		v := viewOf(t, g, "c")
		models, err := stable.AllModels(v, 0)
		if err != nil {
			t.Fatalf("seed %d: enumerate: %v", seed, err)
		}
		for _, m := range models {
			cm := convert(t, m, cp.Tab)
			if !cp.IsThreeValuedModel(cm) {
				t.Fatalf("seed %d: OV model %s is not a 3-valued model of C", seed, m)
			}
		}
	}
}

// TestExample7 verifies the paper's witness that Proposition 3's converse
// fails: for C = {p :- -p}, {p} is a 3-valued model of C but not a model
// of OV(C) in C.
func TestExample7(t *testing.T) {
	p := ast.Atom{Pred: "p"}
	rules := []*ast.Rule{{Head: ast.Pos(p), Body: []ast.Literal{ast.Neg(p)}}}
	cp, err := classical.GroundRules(rules, classical.Options{Full: true})
	if err != nil {
		t.Fatalf("classical ground: %v", err)
	}
	m := interp.New(cp.Tab)
	id, _ := cp.Tab.Lookup(p)
	m.AddLit(interp.MkLit(id, false))
	if !cp.IsThreeValuedModel(m) {
		t.Fatal("{p} should be a 3-valued model of {p :- -p}")
	}
	ov, err := transform.OV("c", rules)
	if err != nil {
		t.Fatalf("OV: %v", err)
	}
	g := groundFull(t, ov)
	v := viewOf(t, g, "c")
	om := convert(t, m, g.Tab)
	if v.IsModel(om) {
		t.Fatal("{p} should not be a model of OV(C) in C")
	}
	// But it is a model of EV(C) in C (Proposition 5(a)).
	evp, err := transform.EV("c", rules)
	if err != nil {
		t.Fatalf("EV: %v", err)
	}
	ge := groundFull(t, evp)
	ve := viewOf(t, ge, "c")
	em := convert(t, m, ge.Tab)
	if !ve.IsModel(em) {
		t.Fatal("{p} should be a model of EV(C) in C")
	}
}

// TestProp4AndCor1 checks Proposition 4 and Corollary 1.
//
// Proposition 4 as literally stated — the assumption-free models of OV(C)
// in C are exactly the 3-valued founded models of C — has a gap that this
// reproduction uncovered (the paper only sketches the proof): a founded
// model may leave an atom undefined whose every deriving rule is blocked,
// while Definition 3(b) forces OV's CWA fact to make it false. Witness
// (seed 0): C = {a1 :- -a3. a3 :- -a0. a3 :- -a0, a2. a2 :- a2.
// a0 :- a0, -a2. a0 :- a0.} and M = {-a0, a3}: M is founded (its positive
// part {a3} is the fixpoint of its applied rules) but not an OV model,
// because a1's only rule is blocked and the applicable CWA fact -a1 is
// neither overruled nor defeated.
//
// What does hold, and is verified here:
//
//	(i)   af(OV(C)) ⊆ founded(C)            (the sound direction);
//	(ii)  every founded model of C is a subset of an af(OV(C)) model
//	      (the repaired converse);
//	(iii) the stable models coincide        (Corollary 1 survives).
func TestProp4AndCor1(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		rules := randomSeminegative(seed)
		cp, err := classical.GroundRules(rules, classical.Options{Full: true})
		if err != nil {
			t.Fatalf("seed %d: classical ground: %v", seed, err)
		}
		founded, err := cp.FoundedModels(0)
		if err != nil {
			t.Fatalf("seed %d: founded: %v", seed, err)
		}
		ov, err := transform.OV("c", rules)
		if err != nil {
			t.Fatalf("seed %d: OV: %v", seed, err)
		}
		g := groundFull(t, ov)
		v := viewOf(t, g, "c")
		af, err := stable.AssumptionFreeModels(v, stable.Options{})
		if err != nil {
			t.Fatalf("seed %d: af: %v", seed, err)
		}
		// (i): af(OV) ⊆ founded.
		foundedSet := modelSet(founded)
		for _, m := range af {
			s := m.String()
			ok := false
			for _, f := range foundedSet {
				if f == s {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("seed %d: af(OV) model %s is not founded; founded=%v\nprogram: %v",
					seed, s, foundedSet, rules)
			}
		}
		// (ii): every founded model ⊆ some af(OV) model.
		for _, m := range founded {
			fm := convert(t, m, g.Tab)
			ok := false
			for _, a := range af {
				if fm.SubsetOf(a) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("seed %d: founded model %s not contained in any af(OV) model %v\nprogram: %v",
					seed, m, modelSet(af), rules)
			}
		}
		// (iii) Corollary 1: stable models coincide.
		szStable, err := cp.StableThreeValued(0)
		if err != nil {
			t.Fatalf("seed %d: sz stable: %v", seed, err)
		}
		ovStable, err := stable.StableModels(v, stable.Options{})
		if err != nil {
			t.Fatalf("seed %d: ov stable: %v", seed, err)
		}
		if got, want := modelSet(ovStable), modelSet(szStable); !equalSets(got, want) {
			t.Fatalf("seed %d: stable(OV)=%v but stable3(C)=%v\nprogram: %v", seed, got, want, rules)
		}
	}
}

// TestProp5 checks Proposition 5: (a) the models of EV(C) in C are exactly
// the 3-valued models of C; (b) every assumption-free model of OV(C) is
// one of EV(C); (c) every assumption-free model of EV(C) is a subset of
// one of OV(C); (d) the stable models coincide.
func TestProp5(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		rules := randomSeminegative(seed)
		cp, err := classical.GroundRules(rules, classical.Options{Full: true})
		if err != nil {
			t.Fatalf("seed %d: classical ground: %v", seed, err)
		}
		evp, err := transform.EV("c", rules)
		if err != nil {
			t.Fatalf("seed %d: EV: %v", seed, err)
		}
		ge := groundFull(t, evp)
		ve := viewOf(t, ge, "c")

		// (a) by exhaustive enumeration over the classical table.
		enumerate3(cp.Tab, func(m *interp.Interp) {
			em := convert(t, m, ge.Tab)
			if got, want := ve.IsModel(em), cp.IsThreeValuedModel(m); got != want {
				t.Fatalf("seed %d: EV-model=%v but 3-valued-model=%v for %s\nprogram: %v",
					seed, got, want, m, rules)
			}
		})
		if t.Failed() {
			return
		}

		ovp, err := transform.OV("c", rules)
		if err != nil {
			t.Fatalf("seed %d: OV: %v", seed, err)
		}
		go_ := groundFull(t, ovp)
		vo := viewOf(t, go_, "c")
		afOV, err := stable.AssumptionFreeModels(vo, stable.Options{})
		if err != nil {
			t.Fatalf("seed %d: af(OV): %v", seed, err)
		}
		afEV, err := stable.AssumptionFreeModels(ve, stable.Options{})
		if err != nil {
			t.Fatalf("seed %d: af(EV): %v", seed, err)
		}
		// (b): af(OV) ⊆ af(EV).
		evSet := modelSet(afEV)
		for _, m := range afOV {
			s := m.String()
			found := false
			for _, e := range evSet {
				if e == s {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d: af(OV) model %s missing from af(EV)=%v\nprogram: %v", seed, s, evSet, rules)
			}
		}
		// (c): every af(EV) model is ⊆ some af(OV) model.
		for _, m := range afEV {
			em := convert(t, m, go_.Tab)
			ok := false
			for _, o := range afOV {
				if em.SubsetOf(o) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("seed %d: af(EV) model %s not contained in any af(OV) model %v\nprogram: %v",
					seed, m, modelSet(afOV), rules)
			}
		}
		// (d): stable sets coincide.
		stOV := stable.MaximalModels(afOV)
		stEV := stable.MaximalModels(afEV)
		if got, want := modelSet(stEV), modelSet(stOV); !equalSets(got, want) {
			t.Fatalf("seed %d: stable(EV)=%v but stable(OV)=%v\nprogram: %v", seed, got, want, rules)
		}
	}
}

// TestTheorem2 checks that the direct Definition 11 semantics for negative
// programs is equivalent to the 3V translation (Definition 10): same
// assumption-free models and same stable models, evaluated in the
// exceptions component.
func TestTheorem2(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		rules := randomNegative(seed)
		single := ast.SingleComponent("c", rules)
		opts := ground.DefaultOptions()
		opts.Mode = ground.ModeFull
		gs, err := ground.Ground(single, opts)
		if err != nil {
			t.Fatalf("seed %d: ground: %v", seed, err)
		}
		direct := negsem.New(gs)
		afDirect, err := direct.AssumptionFreeModels(0)
		if err != nil {
			t.Fatalf("seed %d: direct af: %v", seed, err)
		}
		tv, err := transform.ThreeV(rules)
		if err != nil {
			t.Fatalf("seed %d: 3V: %v", seed, err)
		}
		g3 := groundFull(t, tv)
		v3 := viewOf(t, g3, transform.ExceptionsName)
		af3, err := stable.AssumptionFreeModels(v3, stable.Options{})
		if err != nil {
			t.Fatalf("seed %d: 3V af: %v", seed, err)
		}
		if got, want := modelSet(af3), modelSet(afDirect); !equalSets(got, want) {
			t.Fatalf("seed %d: af(3V)=%v but af(direct)=%v\nprogram: %v", seed, got, want, rules)
		}
		st3 := stable.MaximalModels(af3)
		stDirect, err := direct.StableModels(0)
		if err != nil {
			t.Fatalf("seed %d: direct stable: %v", seed, err)
		}
		if got, want := modelSet(st3), modelSet(stDirect); !equalSets(got, want) {
			t.Fatalf("seed %d: stable(3V)=%v but stable(direct)=%v\nprogram: %v", seed, got, want, rules)
		}
	}
}
