package transform_test

import (
	"testing"

	"repro/internal/classical"
	"repro/internal/stable"
	"repro/internal/transform"
)

// TestLeastOVvsWellFounded probes the relationship between the least model
// of OV(C) in C and the well-founded model of C. By Theorem 1(b) the least
// model is the intersection of all OV models, and since the assumption-free
// OV models are exactly the founded models (Prop. 4 direction (i)) while
// the well-founded model is the intersection of the 3-valued stable models
// [P3], least(OV) ⊆ WF always. This test asserts containment and records
// whether equality held across the sample (it does not always: V is more
// cautious than the unfounded-set closure of WFS).
func TestLeastOVvsWellFounded(t *testing.T) {
	equal, strict := 0, 0
	for seed := int64(0); seed < trials; seed++ {
		rules := randomSeminegative(seed)
		cp, err := classical.GroundRules(rules, classical.Options{Full: true})
		if err != nil {
			t.Fatalf("seed %d: ground: %v", seed, err)
		}
		wf := cp.WellFounded()
		ov, err := transform.OV("c", rules)
		if err != nil {
			t.Fatalf("seed %d: OV: %v", seed, err)
		}
		g := groundFull(t, ov)
		v := viewOf(t, g, "c")
		least, err := v.LeastModel()
		if err != nil {
			t.Fatalf("seed %d: least: %v", seed, err)
		}
		lw := convert(t, wf, g.Tab)
		if !least.SubsetOf(lw) {
			t.Fatalf("seed %d: least(OV) %s ⊄ WF %s\nprogram: %v", seed, least, wf, rules)
		}
		if least.Equal(lw) {
			equal++
		} else {
			strict++
		}
	}
	t.Logf("least(OV) == WF on %d/%d seeds, strictly smaller on %d", equal, equal+strict, strict)
	if equal == 0 {
		t.Error("least(OV) never equalled WF; the containment test is vacuous")
	}
}

// TestWFTrueFalseInsideEveryStableOV: the well-founded true and false
// atoms are decided the same way in every stable model of OV(C) in C.
func TestWFTrueFalseInsideEveryStableOV(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		rules := randomSeminegative(seed)
		cp, err := classical.GroundRules(rules, classical.Options{Full: true})
		if err != nil {
			t.Fatalf("seed %d: ground: %v", seed, err)
		}
		wf := cp.WellFounded()
		ov, err := transform.OV("c", rules)
		if err != nil {
			t.Fatalf("seed %d: OV: %v", seed, err)
		}
		g := groundFull(t, ov)
		v := viewOf(t, g, "c")
		ms, err := stable.StableModels(v, stable.Options{})
		if err != nil {
			t.Fatalf("seed %d: stable: %v", seed, err)
		}
		wfo := convert(t, wf, g.Tab)
		for _, m := range ms {
			for _, l := range wfo.Lits() {
				if !m.HasLit(l) {
					t.Fatalf("seed %d: wf literal %s absent from stable model %s\nprogram: %v",
						seed, g.Tab.LitString(l), m, rules)
				}
			}
		}
	}
}
