package transform_test

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/transform"
)

func TestOVStructure(t *testing.T) {
	rules := parser.MustParseProgram("anc(X, Y) :- parent(X, Y).\nparent(a, b).\n").Components[0].Rules
	ov, err := transform.OV("c", rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(ov.Components) != 2 {
		t.Fatalf("OV has %d components", len(ov.Components))
	}
	cwa := ov.Component(transform.CWAName)
	if cwa == nil {
		t.Fatal("cwa component missing")
	}
	// One universal negative fact per predicate (anc/2, parent/2).
	if len(cwa.Rules) != 2 {
		t.Errorf("cwa has %d rules, want 2", len(cwa.Rules))
	}
	for _, r := range cwa.Rules {
		if !r.Head.Neg || !r.IsFact() {
			t.Errorf("cwa rule %s is not a negative fact", r)
		}
	}
	ic, _ := ov.ComponentIndex("c")
	icwa, _ := ov.ComponentIndex(transform.CWAName)
	if !ov.Less(ic, icwa) {
		t.Error("c < cwa missing")
	}
	if n := len(ov.Component("c").Rules); n != 2 {
		t.Errorf("program component has %d rules, want 2", n)
	}
}

func TestOVRejectsNegativeHeads(t *testing.T) {
	rules := parser.MustParseProgram("-p(a).\n").Components[0].Rules
	if _, err := transform.OV("c", rules); err == nil {
		t.Error("OV accepted a negative program")
	}
	if _, err := transform.EV("c", rules); err == nil {
		t.Error("EV accepted a negative program")
	}
}

func TestEVAddsReflexiveRules(t *testing.T) {
	rules := parser.MustParseProgram("p(a).\nq(X) :- p(X).\n").Components[0].Rules
	ev, err := transform.EV("c", rules)
	if err != nil {
		t.Fatal(err)
	}
	c := ev.Component("c")
	reflexive := 0
	for _, r := range c.Rules {
		if len(r.Body) == 1 && !r.Head.Neg && r.Head.Equal(r.Body[0]) {
			reflexive++
		}
	}
	if reflexive != 2 { // one per predicate: p/1, q/1
		t.Errorf("EV added %d reflexive rules, want 2", reflexive)
	}
	if len(c.Rules) != len(rules)+2 {
		t.Errorf("EV component has %d rules", len(c.Rules))
	}
}

func TestThreeVStructure(t *testing.T) {
	rules := parser.MustParseProgram(`
colored(X) :- color(X).
-colored(X) :- ugly(X).
color(red).
ugly(red).
`).Components[0].Rules
	tv, err := transform.ThreeV(rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.Components) != 3 {
		t.Fatalf("3V has %d components", len(tv.Components))
	}
	exc := tv.Component(transform.ExceptionsName)
	gen := tv.Component(transform.GeneralName)
	cwa := tv.Component(transform.CWAName)
	if exc == nil || gen == nil || cwa == nil {
		t.Fatal("3V components missing")
	}
	// exceptions: exactly the negative rules.
	if len(exc.Rules) != 1 || !exc.Rules[0].Head.Neg {
		t.Errorf("exceptions = %v", exc.Rules)
	}
	// general: 3 seminegative rules + 3 reflexive (colored, color, ugly).
	if len(gen.Rules) != 6 {
		t.Errorf("general has %d rules, want 6", len(gen.Rules))
	}
	// cwa: one universal negation per predicate.
	if len(cwa.Rules) != 3 {
		t.Errorf("cwa has %d rules, want 3", len(cwa.Rules))
	}
	// Order: exceptions < general < cwa, exceptions < cwa.
	ie, _ := tv.ComponentIndex(transform.ExceptionsName)
	ig, _ := tv.ComponentIndex(transform.GeneralName)
	ic, _ := tv.ComponentIndex(transform.CWAName)
	if !tv.Less(ie, ig) || !tv.Less(ig, ic) || !tv.Less(ie, ic) {
		t.Error("3V order edges wrong")
	}
}

func TestOVNameCollision(t *testing.T) {
	rules := parser.MustParseProgram("p(a).\n").Components[0].Rules
	ov, err := transform.OV("cwa", rules) // user component already named cwa
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, 2)
	for _, c := range ov.Components {
		names = append(names, c.Name)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "cwa") || !strings.Contains(joined, "cwax") {
		t.Errorf("collision not resolved: %v", names)
	}
}

func TestFlattenSingle(t *testing.T) {
	p := parser.MustParseProgram("a.\nb.\n")
	rules, err := transform.FlattenSingle(p)
	if err != nil || len(rules) != 2 {
		t.Errorf("FlattenSingle = %v, %v", rules, err)
	}
	multi := parser.MustParseProgram("module a { x. }\nmodule b { y. }\n")
	if _, err := transform.FlattenSingle(multi); err == nil {
		t.Error("FlattenSingle accepted a multi-component program")
	}
}

// TestOVSizePolynomial: the paper notes the reduced OV encoding is
// polynomially bounded in the size of C: the CWA component has one rule
// per predicate regardless of the data size.
func TestOVSizePolynomial(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString("e(c")
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(", d")
		sb.WriteByte(byte('0' + i/10))
		sb.WriteString(").\n")
	}
	rules := parser.MustParseProgram(sb.String()).Components[0].Rules
	ov, err := transform.OV("c", rules)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ov.Component(transform.CWAName).Rules); n != 1 {
		t.Errorf("cwa rules = %d, want 1 (one per predicate)", n)
	}
}
