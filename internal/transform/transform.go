// Package transform builds the ordered versions of classical programs
// defined in §3 and §4 of the paper:
//
//   - OV(C), the ordered version of a seminegative program: a closed-world
//     component ¬B_C above C, so that every atom is false unless proved;
//   - EV(C), the extended version: OV(C) plus reflexive rules A ← A, which
//     captures every 3-valued model (Proposition 5);
//   - 3V(C), the 3-level version of a negative program: exceptions (the
//     negative rules) below the general seminegative rules below the CWA.
//
// All three use the paper's reduced (non-ground) encodings: one CWA rule
// -p(X1,...,Xn) per predicate and one reflexive rule p(X1,...,Xn) :-
// p(X1,...,Xn) per predicate, keeping the translated program polynomial in
// the source size.
package transform

import (
	"fmt"

	"repro/internal/ast"
)

// Default component names used by the translations. If the source
// component already uses a name, a prime is appended until fresh.
const (
	CWAName        = "cwa"
	GeneralName    = "general"
	ExceptionsName = "exceptions"
)

func freshName(taken map[string]bool, base string) string {
	name := base
	for taken[name] {
		name += "x"
	}
	taken[name] = true
	return name
}

// cwaRules returns the reduced closed-world component content: one rule
// -p(X1,...,Xn) for each predicate key.
func cwaRules(keys []ast.PredKey) []*ast.Rule {
	rules := make([]*ast.Rule, 0, len(keys))
	for _, k := range keys {
		rules = append(rules, ast.Fact(ast.Neg(varAtom(k))))
	}
	return rules
}

// reflexiveRules returns one rule p(X1,...,Xn) :- p(X1,...,Xn) per key.
func reflexiveRules(keys []ast.PredKey) []*ast.Rule {
	rules := make([]*ast.Rule, 0, len(keys))
	for _, k := range keys {
		a := varAtom(k)
		rules = append(rules, &ast.Rule{Head: ast.Pos(a), Body: []ast.Literal{ast.Pos(a)}})
	}
	return rules
}

func varAtom(k ast.PredKey) ast.Atom {
	args := make([]ast.Term, k.Arity)
	for i := range args {
		args[i] = ast.Var{Name: fmt.Sprintf("X%d", i+1)}
	}
	return ast.Atom{Pred: k.Name, Args: args}
}

// componentPreds returns the predicate keys occurring in the rules.
func componentPreds(rules []*ast.Rule) []ast.PredKey {
	tmp := ast.NewOrderedProgram()
	c := &ast.Component{Name: "tmp", Rules: rules}
	if err := tmp.AddComponent(c); err != nil {
		panic(err)
	}
	return tmp.Predicates()
}

// OV builds the ordered version OV(C) of a program given as a rule list:
// <{¬B_C, C}, {C < ¬B_C}>. The program must be seminegative (no negated
// heads); the component holding C's rules is named name.
func OV(name string, rules []*ast.Rule) (*ast.OrderedProgram, error) {
	for _, r := range rules {
		if r.Head.Neg {
			return nil, fmt.Errorf("transform: OV requires a seminegative program, found %s", r)
		}
	}
	taken := map[string]bool{name: true}
	cwa := freshName(taken, CWAName)
	p := ast.NewOrderedProgram()
	if err := p.AddComponent(&ast.Component{Name: cwa, Rules: cwaRules(componentPreds(rules))}); err != nil {
		return nil, err
	}
	if err := p.AddComponent(&ast.Component{Name: name, Rules: rules}); err != nil {
		return nil, err
	}
	if err := p.AddEdge(name, cwa); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// EV builds the extended version EV(C): OV(C) with reflexive rules added
// to the component holding C's rules.
func EV(name string, rules []*ast.Rule) (*ast.OrderedProgram, error) {
	keys := componentPreds(rules)
	extended := append(append([]*ast.Rule(nil), rules...), reflexiveRules(keys)...)
	for _, r := range rules {
		if r.Head.Neg {
			return nil, fmt.Errorf("transform: EV requires a seminegative program, found %s", r)
		}
	}
	taken := map[string]bool{name: true}
	cwa := freshName(taken, CWAName)
	p := ast.NewOrderedProgram()
	if err := p.AddComponent(&ast.Component{Name: cwa, Rules: cwaRules(keys)}); err != nil {
		return nil, err
	}
	if err := p.AddComponent(&ast.Component{Name: name, Rules: extended}); err != nil {
		return nil, err
	}
	if err := p.AddEdge(name, cwa); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ThreeV builds the 3-level version 3V(C) of a negative program:
// <{¬B_C, C+, C−}, {C− < C+, C+ < ¬B_C, C− < ¬B_C}> where C+ holds the
// seminegative rules plus the reflexive rules and C− holds the negative
// rules (the exceptions). The returned component names are cwa / general /
// exceptions (primed if the bases collide, which cannot happen here since
// all three are fixed).
func ThreeV(rules []*ast.Rule) (*ast.OrderedProgram, error) {
	keys := componentPreds(rules)
	var plus, minus []*ast.Rule
	for _, r := range rules {
		if r.Head.Neg {
			minus = append(minus, r)
		} else {
			plus = append(plus, r)
		}
	}
	plus = append(plus, reflexiveRules(keys)...)
	p := ast.NewOrderedProgram()
	if err := p.AddComponent(&ast.Component{Name: CWAName, Rules: cwaRules(keys)}); err != nil {
		return nil, err
	}
	if err := p.AddComponent(&ast.Component{Name: GeneralName, Rules: plus}); err != nil {
		return nil, err
	}
	if err := p.AddComponent(&ast.Component{Name: ExceptionsName, Rules: minus}); err != nil {
		return nil, err
	}
	for _, e := range [][2]string{
		{ExceptionsName, GeneralName},
		{GeneralName, CWAName},
		{ExceptionsName, CWAName},
	} {
		if err := p.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// FlattenSingle extracts the rule list of a single-component program, the
// usual input shape for OV/EV/ThreeV when the source was parsed from a
// module-free file.
func FlattenSingle(p *ast.OrderedProgram) ([]*ast.Rule, error) {
	if len(p.Components) != 1 {
		return nil, fmt.Errorf("transform: expected a single component, found %d", len(p.Components))
	}
	return p.Components[0].Rules, nil
}
