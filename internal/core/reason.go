package core

import (
	"context"
	"fmt"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/interrupt"
	"repro/internal/proof"
	"repro/internal/stable"
	"repro/internal/unify"
)

// prover acquires the component's 1-slot prover semaphore — honouring the
// caller's context while queueing — and returns the shared memoising
// prover plus the release function. The prover is non-reentrant, so
// callers hold the slot across every Prover method call.
func (s *Snapshot) prover(ctx context.Context, i int) (*proof.Prover, func(), error) {
	st := s.comp(i)
	select {
	case st.proverSem <- struct{}{}:
	case <-ctx.Done():
		return nil, nil, &interrupt.Error{Stage: "core: prover queue", Cause: ctx.Err()}
	}
	if st.prover == nil {
		st.prover = proof.New(s.viewAt(i), 0)
	}
	return st.prover, func() { <-st.proverSem }, nil
}

// Prove answers a least-model membership query for one ground literal in
// the component as of this snapshot (see Engine.Prove).
func (s *Snapshot) Prove(comp string, l ast.Literal) (bool, error) {
	return s.ProveCtx(context.Background(), comp, l)
}

// ProveCtx is Prove with cooperative cancellation (see Engine.ProveCtx).
// On a goal-directed engine (Config.GoalDirected) the proof runs over the
// literal's magic-set slice; the answer is identical either way.
func (s *Snapshot) ProveCtx(ctx context.Context, comp string, l ast.Literal) (bool, error) {
	if s.eng.cfg.GoalDirected {
		return s.ProveGoalDirectedCtx(ctx, comp, l)
	}
	i, err := s.resolve(comp)
	if err != nil {
		return false, err
	}
	if !l.Atom.Ground() {
		return false, fmt.Errorf("core: Prove needs a ground literal, got %s", l)
	}
	id, ok := s.gp.Tab.Lookup(l.Atom)
	if !ok {
		return false, nil
	}
	pr, release, err := s.prover(ctx, i)
	if err != nil {
		return false, err
	}
	defer release()
	return pr.ProveCtx(ctx, interp.MkLit(id, l.Neg))
}

// ProveExplain proves the literal goal-directedly and, on success, returns
// the rendered derivation tree (see Engine.ProveExplain).
func (s *Snapshot) ProveExplain(comp string, l ast.Literal) (string, bool, error) {
	return s.ProveExplainCtx(context.Background(), comp, l)
}

// ProveExplainCtx is ProveExplain with cooperative cancellation.
func (s *Snapshot) ProveExplainCtx(ctx context.Context, comp string, l ast.Literal) (string, bool, error) {
	i, err := s.resolve(comp)
	if err != nil {
		return "", false, err
	}
	if !l.Atom.Ground() {
		return "", false, fmt.Errorf("core: ProveExplain needs a ground literal, got %s", l)
	}
	id, ok := s.gp.Tab.Lookup(l.Atom)
	if !ok {
		return "", false, nil
	}
	pr, release, err := s.prover(ctx, i)
	if err != nil {
		return "", false, err
	}
	defer release()
	tree, ok, err := pr.ExplainCtx(ctx, interp.MkLit(id, l.Neg))
	if err != nil || !ok {
		return "", false, err
	}
	return tree.Render(pr), true, nil
}

// ProveQuery answers a conjunctive query goal-directedly as of this
// snapshot (see Engine.ProveQuery).
func (s *Snapshot) ProveQuery(comp string, q ast.Query) ([]Binding, error) {
	return s.ProveQueryCtx(context.Background(), comp, q)
}

// ProveQueryCtx is ProveQuery with cooperative cancellation: the per-goal
// proofs poll the context, and an interruption abandons the remaining
// candidates (no partial binding set is returned — a prefix of the answer
// set has no meaningful semantics for a conjunctive query).
func (s *Snapshot) ProveQueryCtx(ctx context.Context, comp string, q ast.Query) ([]Binding, error) {
	i, err := s.resolve(comp)
	if err != nil {
		return nil, err
	}
	pr, release, err := s.prover(ctx, i)
	if err != nil {
		return nil, err
	}
	defer release()
	tab := s.gp.Tab
	var out []Binding
	seen := make(map[string]bool)
	vars := q.Vars()
	sub := unify.NewSubst()
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(q.Body) {
			for _, b := range q.Builtins {
				gb := ast.Builtin{Op: b.Op, L: substExpr(sub, b.L), R: substExpr(sub, b.R)}
				holds, okB := ast.EvalBuiltin(gb)
				if !okB || !holds {
					return nil
				}
			}
			bind := make(Binding, len(vars))
			sig := ""
			for _, vv := range vars {
				t := sub.Apply(vv)
				bind[vv.Name] = t
				sig += "\x00" + t.String()
			}
			if !seen[sig] {
				seen[sig] = true
				out = append(out, bind)
			}
			return nil
		}
		l := q.Body[i]
		for _, id := range tab.OfPred(l.Atom.Key()) {
			mark := sub.Mark()
			if unify.MatchAtoms(sub, l.Atom, tab.Atom(id)) {
				proved, err := pr.ProveCtx(ctx, interp.MkLit(id, l.Neg))
				if err != nil {
					sub.Undo(mark)
					return err
				}
				if proved {
					if err := rec(i + 1); err != nil {
						sub.Undo(mark)
						return err
					}
				}
			}
			sub.Undo(mark)
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// Reason enumerates the stable models of the component as of this snapshot
// and returns its cautious and brave consequences.
func (s *Snapshot) Reason(comp string, opts stable.Options) (*Consequences, error) {
	return s.ReasonCtx(context.Background(), comp, opts)
}

// ReasonCtx is Reason with cooperative cancellation (see Engine.ReasonCtx
// for why no partial Consequences value is ever returned).
func (s *Snapshot) ReasonCtx(ctx context.Context, comp string, opts stable.Options) (*Consequences, error) {
	v, err := s.View(comp)
	if err != nil {
		return nil, err
	}
	r, err := stable.ReasonCtx(ctx, v, s.eng.fillStable(opts))
	if err != nil {
		return nil, err
	}
	return &Consequences{r: r, tab: s.gp.Tab}, nil
}

// Prove answers a least-model membership query for one ground literal in
// the component with the goal-directed proof procedure (no full model is
// materialised), as of the current snapshot. Literals over atoms outside
// the relevant Herbrand base are unprovable.
func (e *Engine) Prove(comp string, l ast.Literal) (bool, error) {
	return e.Current().Prove(comp, l)
}

// ProveCtx is Prove with cooperative cancellation: both the wait for the
// per-component prover slot and the goal recursion itself honour the
// context (see proof.Prover.ProveCtx for the checkpoints).
func (e *Engine) ProveCtx(ctx context.Context, comp string, l ast.Literal) (bool, error) {
	return e.Current().ProveCtx(ctx, comp, l)
}

// ProveExplain proves the literal goal-directedly and, on success, returns
// the rendered derivation tree: the firing rule, its body subproofs, and
// one blocking proof per competitor.
func (e *Engine) ProveExplain(comp string, l ast.Literal) (string, bool, error) {
	return e.Current().ProveExplain(comp, l)
}

// ProveExplainCtx is ProveExplain with cooperative cancellation.
func (e *Engine) ProveExplainCtx(ctx context.Context, comp string, l ast.Literal) (string, bool, error) {
	return e.Current().ProveExplainCtx(ctx, comp, l)
}

// ProveQuery answers a conjunctive query goal-directedly: candidate
// bindings come from matching each query literal against the relevant
// Herbrand base, and every ground instance is checked with the prover, so
// only the needed parts of the least model are computed. Builtins filter
// as usual.
func (e *Engine) ProveQuery(comp string, q ast.Query) ([]Binding, error) {
	return e.Current().ProveQuery(comp, q)
}

// ProveQueryCtx is ProveQuery with cooperative cancellation.
func (e *Engine) ProveQueryCtx(ctx context.Context, comp string, q ast.Query) ([]Binding, error) {
	return e.Current().ProveQueryCtx(ctx, comp, q)
}

// Consequences holds cautious (every stable model) and brave (some stable
// model) inference results for one component.
type Consequences struct {
	r   *stable.Reasoning
	tab *interp.Table
}

// Reason enumerates the stable models of the component in the current
// snapshot and returns its cautious and brave consequences.
func (e *Engine) Reason(comp string, opts stable.Options) (*Consequences, error) {
	return e.Current().Reason(comp, opts)
}

// ReasonCtx is Reason with cooperative cancellation. Interruption fails
// the whole call: cautious/brave consequences over a truncated model
// family would be unsound (cautious could contain literals a missing
// stable model refutes), so no partial Consequences value is returned.
func (e *Engine) ReasonCtx(ctx context.Context, comp string, opts stable.Options) (*Consequences, error) {
	return e.Current().ReasonCtx(ctx, comp, opts)
}

// NumModels returns the number of stable models inspected.
func (c *Consequences) NumModels() int { return c.r.NumModels }

// Cautious reports whether the ground literal holds in every stable model.
func (c *Consequences) Cautious(l ast.Literal) bool {
	id, ok := c.tab.Lookup(l.Atom)
	if !ok {
		return false
	}
	return c.r.HoldsCautiously(interp.MkLit(id, l.Neg))
}

// Brave reports whether the ground literal holds in some stable model.
func (c *Consequences) Brave(l ast.Literal) bool {
	id, ok := c.tab.Lookup(l.Atom)
	if !ok {
		return false
	}
	return c.r.HoldsBravely(interp.MkLit(id, l.Neg))
}

// CautiousLiterals returns the cautious consequences as sorted literals.
func (c *Consequences) CautiousLiterals() []ast.Literal { return c.r.Cautious.Literals() }
