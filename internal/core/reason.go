package core

import (
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/proof"
	"repro/internal/stable"
	"repro/internal/unify"
)

// prover returns the shared memoising prover for component position i
// together with the mutex that serialises its (non-reentrant) use. Callers
// hold the mutex across every Prover method call.
func (e *Engine) prover(i int) (*proof.Prover, *sync.Mutex) {
	st := e.comp(i)
	st.proverMu.Lock()
	if st.prover == nil {
		st.prover = proof.New(e.viewAt(i), 0)
	}
	return st.prover, &st.proverMu
}

// Prove answers a least-model membership query for one ground literal in
// the component with the goal-directed proof procedure (no full model is
// materialised). Literals over atoms outside the relevant Herbrand base
// are unprovable.
func (e *Engine) Prove(comp string, l ast.Literal) (bool, error) {
	i, err := e.resolve(comp)
	if err != nil {
		return false, err
	}
	if !l.Atom.Ground() {
		return false, fmt.Errorf("core: Prove needs a ground literal, got %s", l)
	}
	id, ok := e.gp.Tab.Lookup(l.Atom)
	if !ok {
		return false, nil
	}
	pr, mu := e.prover(i)
	defer mu.Unlock()
	return pr.Prove(interp.MkLit(id, l.Neg))
}

// ProveExplain proves the literal goal-directedly and, on success, returns
// the rendered derivation tree: the firing rule, its body subproofs, and
// one blocking proof per competitor.
func (e *Engine) ProveExplain(comp string, l ast.Literal) (string, bool, error) {
	i, err := e.resolve(comp)
	if err != nil {
		return "", false, err
	}
	if !l.Atom.Ground() {
		return "", false, fmt.Errorf("core: ProveExplain needs a ground literal, got %s", l)
	}
	id, ok := e.gp.Tab.Lookup(l.Atom)
	if !ok {
		return "", false, nil
	}
	pr, mu := e.prover(i)
	defer mu.Unlock()
	tree, ok, err := pr.Explain(interp.MkLit(id, l.Neg))
	if err != nil || !ok {
		return "", false, err
	}
	return tree.Render(pr), true, nil
}

// ProveQuery answers a conjunctive query goal-directedly: candidate
// bindings come from matching each query literal against the relevant
// Herbrand base, and every ground instance is checked with the prover, so
// only the needed parts of the least model are computed. Builtins filter
// as usual.
func (e *Engine) ProveQuery(comp string, q ast.Query) ([]Binding, error) {
	i, err := e.resolve(comp)
	if err != nil {
		return nil, err
	}
	pr, mu := e.prover(i)
	defer mu.Unlock()
	tab := e.gp.Tab
	var out []Binding
	seen := make(map[string]bool)
	vars := q.Vars()
	s := unify.NewSubst()
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(q.Body) {
			for _, b := range q.Builtins {
				gb := ast.Builtin{Op: b.Op, L: substExpr(s, b.L), R: substExpr(s, b.R)}
				holds, okB := ast.EvalBuiltin(gb)
				if !okB || !holds {
					return nil
				}
			}
			bind := make(Binding, len(vars))
			sig := ""
			for _, vv := range vars {
				t := s.Apply(vv)
				bind[vv.Name] = t
				sig += "\x00" + t.String()
			}
			if !seen[sig] {
				seen[sig] = true
				out = append(out, bind)
			}
			return nil
		}
		l := q.Body[i]
		for _, id := range tab.OfPred(l.Atom.Key()) {
			mark := s.Mark()
			if unify.MatchAtoms(s, l.Atom, tab.Atom(id)) {
				proved, err := pr.Prove(interp.MkLit(id, l.Neg))
				if err != nil {
					s.Undo(mark)
					return err
				}
				if proved {
					if err := rec(i + 1); err != nil {
						s.Undo(mark)
						return err
					}
				}
			}
			s.Undo(mark)
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// Consequences holds cautious (every stable model) and brave (some stable
// model) inference results for one component.
type Consequences struct {
	r   *stable.Reasoning
	tab *interp.Table
}

// Reason enumerates the stable models of the component and returns its
// cautious and brave consequences.
func (e *Engine) Reason(comp string, opts stable.Options) (*Consequences, error) {
	v, err := e.View(comp)
	if err != nil {
		return nil, err
	}
	r, err := stable.Reason(v, opts)
	if err != nil {
		return nil, err
	}
	return &Consequences{r: r, tab: e.gp.Tab}, nil
}

// NumModels returns the number of stable models inspected.
func (c *Consequences) NumModels() int { return c.r.NumModels }

// Cautious reports whether the ground literal holds in every stable model.
func (c *Consequences) Cautious(l ast.Literal) bool {
	id, ok := c.tab.Lookup(l.Atom)
	if !ok {
		return false
	}
	return c.r.HoldsCautiously(interp.MkLit(id, l.Neg))
}

// Brave reports whether the ground literal holds in some stable model.
func (c *Consequences) Brave(l ast.Literal) bool {
	id, ok := c.tab.Lookup(l.Atom)
	if !ok {
		return false
	}
	return c.r.HoldsBravely(interp.MkLit(id, l.Neg))
}

// CautiousLiterals returns the cautious consequences as sorted literals.
func (c *Consequences) CautiousLiterals() []ast.Literal { return c.r.Cautious.Literals() }
