package core
