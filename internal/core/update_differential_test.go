package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/stable"
	"repro/internal/workload"
)

// The differential contract of incremental maintenance: after any sequence
// of Update/Retract calls, the engine must answer exactly like an engine
// freshly built from the equivalently edited source. The shadow replay here
// is deliberately independent of the engine's own effective-program code —
// sharing it would mask bugs in either copy.

type diffOp struct {
	comp    int
	lit     ast.Literal
	retract bool
}

func (o diffOp) String() string {
	verb := "assert"
	if o.retract {
		verb = "retract"
	}
	return fmt.Sprintf("%s m%d %s", verb, o.comp, o.lit)
}

// randomOp draws facts over the generator's predicate alphabet (p0..p3/1,
// e/2) and constants c0..c(nconst+1) — the top two are fresh, so asserts
// grow the universe and retracts sometimes target absent facts. Negative
// facts appear too; asserting one exercises the reground fallback.
func randomOp(rng *rand.Rand, comps, nconst int) diffOp {
	cst := func() ast.Term {
		return ast.Sym(fmt.Sprintf("c%d", rng.Intn(nconst+2)))
	}
	var l ast.Literal
	if rng.Intn(3) == 0 {
		l = ast.Pos(ast.Atom{Pred: "e", Args: []ast.Term{cst(), cst()}})
	} else {
		a := ast.Atom{Pred: fmt.Sprintf("p%d", rng.Intn(4)), Args: []ast.Term{cst()}}
		if rng.Intn(4) == 0 {
			l = ast.Neg(a)
		} else {
			l = ast.Pos(a)
		}
	}
	return diffOp{comp: rng.Intn(comps), lit: l, retract: rng.Intn(2) == 0}
}

func cloneShadow(t *testing.T, src *ast.OrderedProgram) *ast.OrderedProgram {
	t.Helper()
	p := ast.NewOrderedProgram()
	for _, c := range src.Components {
		nc := &ast.Component{Name: c.Name, Rules: append([]*ast.Rule(nil), c.Rules...)}
		if err := p.AddComponent(nc); err != nil {
			t.Fatal(err)
		}
	}
	for _, ed := range src.Edges {
		if err := p.AddEdge(ed.Child, ed.Parent); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func applyShadowOp(p *ast.OrderedProgram, o diffOp) {
	same := func(r *ast.Rule) bool {
		return r.IsFact() && r.Head.Neg == o.lit.Neg && r.Head.Atom.Ground() && r.Head.Atom.Equal(o.lit.Atom)
	}
	c := p.Components[o.comp]
	if o.retract {
		kept := c.Rules[:0]
		for _, r := range c.Rules {
			if !same(r) {
				kept = append(kept, r)
			}
		}
		c.Rules = kept
		return
	}
	for _, r := range c.Rules {
		if same(r) {
			return
		}
	}
	c.AddRule(ast.Fact(o.lit))
}

func diffModelSet(t *testing.T, ms []*core.Model, err error) string {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	sort.Strings(out)
	return strings.Join(out, " | ")
}

func TestUpdateDifferential(t *testing.T) {
	const comps, nconst = 3, 3
	programs := 200
	if testing.Short() {
		programs = 40
	}
	ctx := context.Background()
	for seed := 0; seed < programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))
			prog := workload.RandomOrderedDatalog(rng, comps, nconst)
			shadow := cloneShadow(t, prog)
			eng, err := core.NewEngine(prog, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			names := make([]string, len(prog.Components))
			for i, c := range prog.Components {
				names[i] = c.Name
			}
			var history []string
			var snap *core.Snapshot
			var fresh *core.Engine
			nops := 3 + rng.Intn(3)
			for op := 0; op < nops; op++ {
				o := randomOp(rng, comps, nconst)
				history = append(history, o.String())
				if o.retract {
					snap, err = eng.Retract(ctx, names[o.comp], []ast.Literal{o.lit})
				} else {
					snap, err = eng.Update(ctx, names[o.comp], []ast.Literal{o.lit})
				}
				if err != nil {
					t.Fatalf("after %v: %v", history, err)
				}
				applyShadowOp(shadow, o)
				fresh, err = core.NewEngine(shadow, core.Config{})
				if err != nil {
					t.Fatalf("shadow rebuild after %v: %v", history, err)
				}
				for _, name := range names {
					got, err := snap.LeastModel(name)
					if err != nil {
						t.Fatalf("after %v, comp %s: %v", history, name, err)
					}
					want, err := fresh.LeastModel(name)
					if err != nil {
						t.Fatalf("after %v, comp %s (fresh): %v", history, name, err)
					}
					if got.String() != want.String() {
						t.Fatalf("least model diverged after %v in %s:\nincremental: %s\nrebuild:     %s",
							history, name, got, want)
					}
				}
			}
			if snap == nil {
				return
			}
			// The enumeration semantics must agree too, on the final state.
			for _, name := range names {
				gotAF, errG := snap.AssumptionFreeModels(name, stable.Options{})
				wantAF, errW := fresh.AssumptionFreeModels(name, stable.Options{})
				if g, w := diffModelSet(t, gotAF, errG), diffModelSet(t, wantAF, errW); g != w {
					t.Fatalf("AF models diverged after %v in %s:\nincremental: %s\nrebuild:     %s",
						history, name, g, w)
				}
				gotSt, errG := snap.StableModels(name, stable.Options{})
				wantSt, errW := fresh.StableModels(name, stable.Options{})
				if g, w := diffModelSet(t, gotSt, errG), diffModelSet(t, wantSt, errW); g != w {
					t.Fatalf("stable models diverged after %v in %s:\nincremental: %s\nrebuild:     %s",
						history, name, g, w)
				}
			}
		})
	}
}
