package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/batch"
	"repro/internal/ground"
	"repro/internal/parser"
)

const snapSrc = `
	module kb {
		p(a). p(b).
		bad(X) :- evil(X).
	}
	module policy extends kb {
		ok(X) :- p(X).
	}
	module exc extends policy {
		-ok(X) :- bad(X).
	}
`

func snapEngine(t *testing.T) *Engine {
	t.Helper()
	p, err := parser.ParseProgram(snapSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func lit(t *testing.T, s string) ast.Literal {
	t.Helper()
	l, err := parser.ParseLiteral(s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func holdsIn(t *testing.T, s *Snapshot, comp, l string) bool {
	t.Helper()
	m, err := s.LeastModel(comp)
	if err != nil {
		t.Fatal(err)
	}
	return m.Holds(lit(t, l))
}

func TestUpdateAssertIncremental(t *testing.T) {
	e := snapEngine(t)
	v0 := e.Current()
	if v0.Version() != 0 {
		t.Fatalf("initial version = %d", v0.Version())
	}
	if !holdsIn(t, v0, "policy", "ok(a)") || holdsIn(t, v0, "policy", "ok(c)") {
		t.Fatal("unexpected base model")
	}
	v1, err := e.Update(context.Background(), "kb", []ast.Literal{lit(t, "p(c)")})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version() != 1 {
		t.Fatalf("version after update = %d", v1.Version())
	}
	if v1.Grounded() != v0.Grounded() {
		t.Fatal("assert of p(c) should have stayed incremental (shared ground program)")
	}
	if !holdsIn(t, v1, "policy", "ok(c)") {
		t.Fatal("ok(c) missing after Update")
	}
	// The parent snapshot is unaffected.
	if holdsIn(t, v0, "policy", "ok(c)") {
		t.Fatal("parent snapshot changed by Update")
	}
	if e.Current() != v1 {
		t.Fatal("Current not advanced")
	}
}

func TestUpdateNoop(t *testing.T) {
	e := snapEngine(t)
	v0 := e.Current()
	v1, err := e.Update(context.Background(), "kb", []ast.Literal{lit(t, "p(a)")})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v0 {
		t.Fatal("asserting a fact already in effect must be a no-op")
	}
	v2, err := e.Retract(context.Background(), "kb", []ast.Literal{lit(t, "evil(zz)")})
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v0 {
		t.Fatal("retracting an absent fact must be a no-op")
	}
}

func TestRetractIncrementalAndResurrect(t *testing.T) {
	e := snapEngine(t)
	ctx := context.Background()
	m0, err := e.Current().LeastModel("exc")
	if err != nil {
		t.Fatal(err)
	}
	// bad has a defining rule (bad(X) :- evil(X)), so its facts are not
	// EDB-shaped and both directions stay incremental.
	v1, err := e.Update(ctx, "kb", []ast.Literal{lit(t, "bad(a)")})
	if err != nil {
		t.Fatal(err)
	}
	if !holdsIn(t, v1, "exc", "-ok(a)") || holdsIn(t, v1, "exc", "ok(a)") {
		t.Fatal("exception did not overrule ok(a)")
	}
	m1, err := v1.LeastModel("exc")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.Retract(ctx, "kb", []ast.Literal{lit(t, "bad(a)")})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Grounded() != v1.Grounded() {
		t.Fatal("retract of bad(a) should have stayed incremental (shared ground program)")
	}
	m2, err := v2.LeastModel("exc")
	if err != nil {
		t.Fatal(err)
	}
	if m2.String() != m0.String() {
		t.Fatalf("assert-then-retract is not the identity:\nv0: %s\nv2: %s", m0, m2)
	}
	// The middle version, pinned, still shows the exception.
	if !holdsIn(t, v1, "exc", "-ok(a)") {
		t.Fatal("pinned snapshot v1 changed")
	}
	v3, err := e.Update(ctx, "kb", []ast.Literal{lit(t, "bad(a)")})
	if err != nil {
		t.Fatal(err)
	}
	m3, err := v3.LeastModel("exc")
	if err != nil {
		t.Fatal(err)
	}
	if m3.String() != m1.String() {
		t.Fatalf("resurrection did not restore the asserted state:\nv1: %s\nv3: %s", m1, m3)
	}
	if v3.Version() != 3 {
		t.Fatalf("version = %d, want 3", v3.Version())
	}
}

func TestUpdateFallbackReground(t *testing.T) {
	e := snapEngine(t)
	ctx := context.Background()
	v0 := e.Current()
	// A negative fact cannot be applied in place; the engine regrounds the
	// effective program transparently.
	v1, err := e.Update(ctx, "exc", []ast.Literal{lit(t, "-ok(b)")})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Grounded() == v0.Grounded() {
		t.Fatal("negative fact assert must reground, not update in place")
	}
	if !holdsIn(t, v1, "exc", "-ok(b)") {
		t.Fatal("negative fact not in effect after fallback")
	}
	if !holdsIn(t, v1, "policy", "ok(b)") {
		t.Fatal("policy must not see exc's fact")
	}
	// Updates keep working after a fallback, incrementally again.
	v2, err := e.Update(ctx, "kb", []ast.Literal{lit(t, "p(d)")})
	if err != nil {
		t.Fatal(err)
	}
	if !holdsIn(t, v2, "policy", "ok(d)") || !holdsIn(t, v2, "exc", "-ok(b)") {
		t.Fatal("state lost across fallback + incremental update")
	}
	// Retract the negative fact again.
	v3, err := e.Retract(ctx, "exc", []ast.Literal{lit(t, "-ok(b)")})
	if err != nil {
		t.Fatal(err)
	}
	if holdsIn(t, v3, "exc", "-ok(b)") || !holdsIn(t, v3, "policy", "ok(d)") {
		t.Fatal("retract of negative fact not replayed correctly")
	}
}

func TestUpdateMemoSharing(t *testing.T) {
	p := ast.NewOrderedProgram()
	for _, name := range []string{"m0", "m1"} {
		c := &ast.Component{Name: name}
		c.AddRule(ast.Fact(ast.Pos(ast.Atom{Pred: "q_" + name, Args: []ast.Term{ast.Sym("a")}})))
		c.AddRule(&ast.Rule{
			Head: ast.Pos(ast.Atom{Pred: "r_" + name, Args: []ast.Term{ast.Var{Name: "X"}}}),
			Body: []ast.Literal{ast.Pos(ast.Atom{Pred: "q_" + name, Args: []ast.Term{ast.Var{Name: "X"}}})},
		})
		if err := p.AddComponent(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	v0 := e.Current()
	view0, err := v0.View("m1")
	if err != nil {
		t.Fatal(err)
	}
	m0, err := v0.LeastModel("m1")
	if err != nil {
		t.Fatal(err)
	}
	v1, err := e.Update(context.Background(), "m0", []ast.Literal{lit(t, "q_m0(b)")})
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Grounded().Incremental() {
		t.Fatal("expected incremental update")
	}
	view1, err := v1.View("m1")
	if err != nil {
		t.Fatal(err)
	}
	if view0 != view1 {
		t.Fatal("unaffected component m1 must share its view across versions")
	}
	m1, err := v1.LeastModel("m1")
	if err != nil {
		t.Fatal(err)
	}
	if m0 != m1 {
		t.Fatal("unaffected component m1 must share its least model across versions")
	}
	// The touched component must NOT share.
	t0, err := v0.View("m0")
	if err != nil {
		t.Fatal(err)
	}
	t1, err := v1.View("m0")
	if err != nil {
		t.Fatal(err)
	}
	if t0 == t1 {
		t.Fatal("touched component m0 must rebuild its view")
	}
	if !holdsIn(t, v1, "m0", "r_m0(b)") {
		t.Fatal("derived atom missing in touched component")
	}
}

func TestBatchPinsOneVersion(t *testing.T) {
	e := snapEngine(t)
	ctx := context.Background()
	q, err := parser.Parse("?- ok(X).")
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]QueryRequest, 16)
	for i := range reqs {
		reqs[i] = QueryRequest{Comp: "policy", Query: q.Queries[0]}
	}

	// Deterministic half: a snapshot captured before an update keeps
	// answering with its own version.
	snap := e.Current()
	if _, err := e.Update(ctx, "kb", []ast.Literal{lit(t, "p(zz1)")}); err != nil {
		t.Fatal(err)
	}
	for i, res := range snap.QueryBatch(reqs, batch.Options{}) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if len(res.Bindings) != 2 {
			t.Fatalf("item %d: pinned snapshot sees %d answers, want 2", i, len(res.Bindings))
		}
	}

	// Racing half: whatever version an Engine batch pins, every item of one
	// batch must agree — a mid-batch Update must never split a batch.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		on := false
		f := []ast.Literal{lit(t, "p(zz2)")}
		for {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if on {
				_, err = e.Retract(ctx, "kb", f)
			} else {
				_, err = e.Update(ctx, "kb", f)
			}
			if err != nil {
				t.Error(err)
				return
			}
			on = !on
		}
	}()
	for round := 0; round < 20; round++ {
		out := e.QueryBatch(reqs, batch.Options{Workers: 4})
		want := -1
		for i, res := range out {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if want == -1 {
				want = len(res.Bindings)
			} else if len(res.Bindings) != want {
				t.Fatalf("round %d: item %d saw %d answers, item 0 saw %d — batch not pinned to one version",
					round, i, len(res.Bindings), want)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentReadersDuringUpdates(t *testing.T) {
	e := snapEngine(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := e.Current()
				a := holdsIn(t, snap, "policy", "ok(a)")
				// Re-query the same pinned snapshot: must agree with itself.
				if holdsIn(t, snap, "policy", "ok(a)") != a {
					t.Error("snapshot answered inconsistently")
					return
				}
			}
		}()
	}
	f := []ast.Literal{lit(t, "p(w)")}
	for i := 0; i < 25; i++ {
		if _, err := e.Update(ctx, "kb", f); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Retract(ctx, "kb", f); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestConfigValidation(t *testing.T) {
	p, err := parser.ParseProgram(snapSrc)
	if err != nil {
		t.Fatal(err)
	}
	var cerr *ConfigError
	if _, err := NewEngine(p, Config{Workers: -1}); !errors.As(err, &cerr) || cerr.Field != "Workers" {
		t.Fatalf("want ConfigError on Workers, got %v", err)
	}
	if _, err := NewEngine(p, Config{}, WithEnumBudget(-5)); !errors.As(err, &cerr) || cerr.Field != "EnumBudget" {
		t.Fatalf("want ConfigError on EnumBudget via option, got %v", err)
	}
	if _, err := NewEngine(p, Config{Ground: ground.Options{Mode: ground.Mode(42)}}); !errors.As(err, &cerr) || cerr.Field != "Ground.Mode" {
		t.Fatalf("want ConfigError on Ground.Mode, got %v", err)
	}
	if !strings.Contains(cerr.Error(), "Ground.Mode") {
		t.Fatalf("ConfigError message %q", cerr.Error())
	}
}

func TestFunctionalOptions(t *testing.T) {
	p, err := parser.ParseProgram(snapSrc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	e, err := NewEngine(p, Config{}, WithWorkers(2), WithEnumBudget(1<<16), WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Workers != 2 || e.cfg.EnumBudget != 1<<16 {
		t.Fatalf("options not applied: %+v", e.cfg)
	}
	if _, err := e.Update(context.Background(), "kb", []ast.Literal{lit(t, "p(x1)")}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ground:") || !strings.Contains(out, "mode=incremental") {
		t.Fatalf("trace output missing events:\n%s", out)
	}
}

func TestUpdateValidatesInput(t *testing.T) {
	e := snapEngine(t)
	ctx := context.Background()
	if _, err := e.Update(ctx, "kb", []ast.Literal{lit(t, "p(X)")}); err == nil {
		t.Fatal("non-ground assert must fail")
	}
	if _, err := e.Update(ctx, "nosuch", []ast.Literal{lit(t, "p(q)")}); err == nil {
		t.Fatal("unknown component must fail")
	}
	// Errors leave the tip unchanged.
	if e.Current().Version() != 0 {
		t.Fatal("failed update advanced the version")
	}
}

func TestRetractUniversalFactFallsBack(t *testing.T) {
	p, err := parser.ParseProgram(`
		module m {
			q(a). q(b).
			s(X) :- q(X).
			t(a). t(X).
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	v0 := e.Current()
	// t(a) is a ground fact of the source AND pinned by the universal fact
	// t(X): the ground fact goes away, but a rebuild keeps the instance
	// derivable, so the engine must fall back to regrounding rather than
	// dead-mark it.
	v1, err := e.Retract(ctx, "m", []ast.Literal{lit(t, "t(a)")})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version() != 1 {
		t.Fatalf("version = %d, want 1", v1.Version())
	}
	if v1.Grounded() == v0.Grounded() {
		t.Fatal("universally pinned retract must reground, not update in place")
	}
	if !holdsIn(t, v1, "m", "t(a)") {
		t.Fatal("t(a) must survive: the universal fact t(X) regenerates it")
	}
	if !holdsIn(t, v1, "m", "t(b)") || !holdsIn(t, v1, "m", "s(a)") {
		t.Fatal("unrelated atoms lost across fallback")
	}
}

func TestRetractCompoundFactFallsBack(t *testing.T) {
	p, err := parser.ParseProgram(`
		module m {
			p(f(c)).
			p(X) :- p(X).
			q(X).
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	v0 := e.Current()
	// p(f(c)) is the last occurrence of both c and the functor f: a rebuild's
	// universe collapses to the fresh-constant fallback, which no in-place
	// bookkeeping (it counts top-level constants only) can reproduce.
	v1, err := e.Retract(ctx, "m", []ast.Literal{lit(t, "p(f(c))")})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Grounded() == v0.Grounded() {
		t.Fatal("retract of a compound-argument fact must reground, not update in place")
	}
	if holdsIn(t, v1, "m", "q(c)") || holdsIn(t, v1, "m", "q(f(c))") {
		t.Fatal("stale universe terms survived the retract")
	}
	fresh, err := parser.ParseProgram(`
		module m {
			p(X) :- p(X).
			q(X).
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewEngine(fresh, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := v1.LeastModel("m")
	if err != nil {
		t.Fatal(err)
	}
	want, err := fe.LeastModel("m")
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("retract diverged from rebuild:\nincremental: %s\nrebuild:     %s", got, want)
	}
}

func TestUpdateManyVersionsAgree(t *testing.T) {
	// A chain of updates must answer exactly like a fresh engine built from
	// the equivalent source at every step.
	e := snapEngine(t)
	ctx := context.Background()
	facts := []string{"p(c)", "evil(a)", "p(d)", "evil(b)"}
	var acc []string
	for _, f := range facts {
		if _, err := e.Update(ctx, "kb", []ast.Literal{lit(t, f)}); err != nil {
			t.Fatal(err)
		}
		acc = append(acc, f+".")
		fresh, err := parser.ParseProgram(strings.Replace(snapSrc, "p(a). p(b).", "p(a). p(b). "+strings.Join(acc, " "), 1))
		if err != nil {
			t.Fatal(err)
		}
		fe, err := NewEngine(fresh, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, comp := range []string{"kb", "policy", "exc"} {
			got, err := e.LeastModel(comp)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fe.LeastModel(comp)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Fatalf("after %v, comp %s:\nincremental: %s\nfresh:       %s", acc, comp, got, want)
			}
		}
	}
}

func TestMergeFactsStillWorks(t *testing.T) {
	// The deprecated pre-engine path: mutate the program, then build.
	p, err := parser.ParseProgram(snapSrc)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Component("kb")
	c.AddRule(ast.Fact(ast.Pos(ast.Atom{Pred: "p", Args: []ast.Term{ast.Sym("m")}})))
	e, err := NewEngine(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !holdsIn(t, e.Current(), "policy", "ok(m)") {
		t.Fatal("pre-engine fact merge broken")
	}
}

func ExampleEngine_Update() {
	p, _ := parser.ParseProgram(`
		module kb { p(a). }
		module policy extends kb { ok(X) :- p(X). }
	`)
	e, _ := NewEngine(p, Config{})
	snap, _ := e.Update(context.Background(), "kb", []ast.Literal{
		{Atom: ast.Atom{Pred: "p", Args: []ast.Term{ast.Sym("b")}}},
	})
	m, _ := snap.LeastModel("policy")
	fmt.Println(m.Holds(ast.Pos(ast.Atom{Pred: "ok", Args: []ast.Term{ast.Sym("b")}})))
	// Output: true
}
