package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/parser"
)

// A fallback reground must carry the reason the incremental path bailed,
// both in the trace line and in the labelled fallback counter.
func TestTraceCapturesRegroundReason(t *testing.T) {
	p, err := parser.ParseProgram(`
		module m {
			q(a). q(b).
			s(X) :- q(X).
			t(a). t(X).
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	e, err := NewEngine(p, Config{}, WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	before := obs.Default().Snap()
	// t(a) is pinned by the universal fact t(X): retraction cannot be
	// applied in place, so the engine regrounds with reason universal-fact.
	if _, err := e.Retract(context.Background(), "m", []ast.Literal{lit(t, "t(a)")}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mode=reground") {
		t.Fatalf("trace missing reground event:\n%s", out)
	}
	if !strings.Contains(out, "reason=universal-fact") {
		t.Fatalf("reground trace line drops the ErrNeedsReground cause:\n%s", out)
	}
	d := obs.Default().Snap().Diff(before)
	if d.Get("core.update.fallback.universal-fact") != 1 {
		t.Fatalf("fallback counter not labelled with reason: %v", d)
	}
	if d.Get("core.updates.reground") != 1 {
		t.Fatalf("reground counter = %d, want 1", d.Get("core.updates.reground"))
	}
}

func TestTraceCapturesNegativeFactReason(t *testing.T) {
	var buf bytes.Buffer
	p, err := parser.ParseProgram(snapSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p, Config{}, WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Update(context.Background(), "kb", []ast.Literal{lit(t, "-evil(a)")}); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "reason=negative-fact") {
		t.Fatalf("negative-fact assert should reground with its reason:\n%s", out)
	}
}

// Engine.Metrics / Snapshot.Metrics expose the process-global registry,
// and one incremental update moves the expected counters.
func TestMetricsAccessor(t *testing.T) {
	e := snapEngine(t)
	before := e.Metrics()
	v1, err := e.Update(context.Background(), "kb", []ast.Literal{lit(t, "p(c)")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v1.LeastModel("policy"); err != nil {
		t.Fatal(err)
	}
	d := v1.Metrics().Diff(before)
	if d.Get("core.updates") != 1 || d.Get("core.updates.incremental") != 1 {
		t.Fatalf("update counters wrong: %v", d)
	}
	if d.Get("ground.delta.asserts") != 1 {
		t.Fatalf("delta assert counter = %d, want 1", d.Get("ground.delta.asserts"))
	}
	if d.Get("eval.fixpoints") < 1 {
		t.Fatalf("least-model run did not count a fixpoint: %v", d)
	}
	if d.Get("core.least.computed") < 1 {
		t.Fatalf("least memo miss not counted: %v", d)
	}
	// Second read of the same memo is a hit.
	h0 := v1.Metrics().Get("core.least.hits")
	if _, err := v1.LeastModel("policy"); err != nil {
		t.Fatal(err)
	}
	if v1.Metrics().Get("core.least.hits") != h0+1 {
		t.Fatal("cached least model did not count a hit")
	}
}

// The disabled trace path must allocate nothing: one atomic load gates
// event construction entirely.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	e := snapEngine(t) // no Trace writer
	n := int(testing.AllocsPerRun(1000, func() {
		if e.trace.Enabled() {
			e.trace.Emit(obs.E("update",
				obs.F("comp", "kb"),
				obs.F("mode", "incremental")))
		}
	}))
	if n != 0 {
		t.Fatalf("disabled trace path allocates %d objects per event, want 0", n)
	}
}

func BenchmarkTraceDisabled(b *testing.B) {
	p, err := parser.ParseProgram(snapSrc)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(p, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.trace.Enabled() {
			e.trace.Emit(obs.E("least", obs.F("comp", "kb"), obs.F("version", 0)))
		}
	}
}

func BenchmarkTraceEnabled(b *testing.B) {
	p, err := parser.ParseProgram(snapSrc)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	e, err := NewEngine(p, Config{}, WithTrace(&buf))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if e.trace.Enabled() {
			e.trace.Emit(obs.E("least", obs.F("comp", "kb"), obs.F("version", 0)))
		}
	}
}
