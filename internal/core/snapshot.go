package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/proof"
	"repro/internal/stable"
)

// Snapshot is one immutable version of the engine's fact base. All query
// entry points read from a snapshot; Engine's query methods are shorthands
// that pin the current snapshot for one call. Updates (Engine.Update,
// Engine.Retract) never modify an existing snapshot — they publish a new
// one — so a goroutine holding a *Snapshot keeps reading exactly the
// version it pinned, unaffected by concurrent writers.
//
// Snapshots are cheap: an incremental update shares the interned-term
// storage, the append-only ground rule list, and — for every component
// whose visible rules did not change — the parent's memoised views, least
// models and provers. Only components that can see a touched component are
// recomputed, lazily, on first use.
type Snapshot struct {
	eng     *Engine
	version uint64
	gp      *ground.Program

	// rules pins this version's prefix of gp.Rules; later updates append to
	// gp.Rules without invalidating the prefix. dead lists instance indexes
	// (< len(rules)) retracted as of this version. Both are immutable.
	rules []ground.Rule
	dead  map[int32]struct{}

	// factLive overlays per-(component, fact) liveness on top of the
	// original source program's fact rules: true = asserted, false =
	// retracted, absent = as in the source. log is the full update history
	// that produced this version, replayed to rebuild from source when an
	// update cannot be applied incrementally. Both are immutable.
	factLive map[factKey]bool
	log      []factEvent

	mu    sync.Mutex
	comps map[int]*compState

	// slices is the per-snapshot cache of goal-directed magic-set slices
	// (see goal.go). Each snapshot starts empty, so every published update
	// invalidates all cached slices automatically, while pinned snapshots
	// keep serving their own version's slices.
	slices sliceCache
}

// factKey identifies a ground fact rule by component position and rendered
// literal (the sign is part of the rendering).
type factKey struct {
	comp int
	lit  string
}

// factEvent is one entry of a snapshot's update history. ver is the
// version the event's batch published, so AsOf can cut the history at any
// past version by prefix.
type factEvent struct {
	comp    int
	lit     ast.Literal
	retract bool
	ver     uint64
}

// compState holds the lazily built per-component artifacts. The view is
// construct-once/read-many under a sync.Once; the least model uses the
// channel-based singleflight of lazyCell so waiters can honour their own
// contexts; proverSem (a 1-slot semaphore acquired with context) serialises
// the memoising, non-reentrant goal-directed prover. Snapshots whose
// visible rules agree for a component share one compState, so an update
// carries the unaffected memos over to the new version.
type compState struct {
	viewOnce sync.Once
	view     *eval.View

	// sharding is the view's sharded-evaluation index, built once on first
	// use when the engine is configured with Shards > 1 (nil otherwise).
	shardOnce sync.Once
	sharding  *eval.Sharding

	least lazyCell[*Model]

	proverSem chan struct{}
	prover    *proof.Prover
}

// Version returns the snapshot's version number: 0 for the engine's
// initial grounding, incremented by every successful update.
func (s *Snapshot) Version() uint64 { return s.version }

// Engine returns the engine this snapshot belongs to.
func (s *Snapshot) Engine() *Engine { return s.eng }

// Source returns the original source program. Updates do not rewrite it;
// they are recorded against it (see Engine.Update).
func (s *Snapshot) Source() *ast.OrderedProgram { return s.eng.src }

// Grounded returns the underlying ground program. Treat it as read-only.
//
// The program is shared across snapshots: incremental updates republish its
// Rules and Universe slice headers (under the engine's write lock, which
// readers do not take), so reading those fields races with a concurrent
// Update/Retract. Use Grounded only when no update can be in flight —
// e.g. for diagnostics and dumps — and prefer the snapshot's own accessors
// (NumGroundRules, NumAtoms, View, query methods), which read this
// version's pinned state and are safe under concurrent writers.
func (s *Snapshot) Grounded() *ground.Program { return s.gp }

// NumGroundRules returns the number of live ground rule instances in this
// version (retracted instances excluded).
func (s *Snapshot) NumGroundRules() int { return len(s.rules) - len(s.dead) }

// NumAtoms returns the size of the (relevant) Herbrand base.
func (s *Snapshot) NumAtoms() int { return s.gp.Tab.Len() }

// NumDeadRules returns the number of retracted-but-carried rule
// instances in this version's pinned prefix: the population compaction
// exists to drain (it returns to 0 after every compact/reground).
func (s *Snapshot) NumDeadRules() int { return len(s.dead) }

// NumLogEvents returns the length of the carried update history —
// bounded by the number of distinct facts ever touched once compaction
// collapses it, by the total number of fact changes otherwise.
func (s *Snapshot) NumLogEvents() int { return len(s.log) }

// comp returns the shared per-component state, creating it on first use.
func (s *Snapshot) comp(i int) *compState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.comps[i]
	if !ok {
		st = &compState{proverSem: make(chan struct{}, 1)}
		s.comps[i] = st
	}
	return st
}

// resolve maps a component name ("" = DefaultComponent) to its position.
func (s *Snapshot) resolve(comp string) (int, error) {
	if comp == "" {
		var err error
		comp, err = s.eng.DefaultComponent()
		if err != nil {
			return -1, err
		}
	}
	i, ok := s.gp.Src.ComponentIndex(comp)
	if !ok {
		return -1, fmt.Errorf("core: unknown component %q", comp)
	}
	return i, nil
}

// View returns the cached evaluation view for a component; comp == ""
// selects DefaultComponent. The view is built exactly once per component
// and version even under concurrent callers and is immutable afterwards.
func (s *Snapshot) View(comp string) (*eval.View, error) {
	i, err := s.resolve(comp)
	if err != nil {
		return nil, err
	}
	return s.viewAt(i), nil
}

func (s *Snapshot) viewAt(i int) *eval.View {
	st := s.comp(i)
	built := false
	st.viewOnce.Do(func() {
		st.view = eval.NewViewOf(s.gp, i, s.rules, s.dead)
		built = true
	})
	if obs.On() {
		if built {
			mViewBuilds.Inc()
		} else {
			mViewHits.Inc()
		}
	}
	return st.view
}

// shardingAt returns the component's sharded-evaluation index, built once
// per component and version from the engine's configured shard count. Like
// the view it wraps, the index is immutable after construction and shared
// by every snapshot that shares the compState.
func (s *Snapshot) shardingAt(i int, v *eval.View) *eval.Sharding {
	st := s.comp(i)
	st.shardOnce.Do(func() {
		st.sharding = eval.NewSharding(v, s.eng.cfg.Shards)
	})
	return st.sharding
}

// LeastModel computes the least model of the program in the component as
// of this snapshot (see Engine.LeastModel).
func (s *Snapshot) LeastModel(comp string) (*Model, error) {
	return s.LeastModelCtx(context.Background(), comp)
}

// LeastModelCtx is LeastModel with cooperative cancellation (see
// Engine.LeastModelCtx for the exact singleflight/cancellation contract).
func (s *Snapshot) LeastModelCtx(ctx context.Context, comp string) (*Model, error) {
	i, err := s.resolve(comp)
	if err != nil {
		return nil, err
	}
	st := s.comp(i)
	// Singleflight accounting: the goroutine that runs the fixpoint counts
	// one computation, a caller that parks on someone else's run counts one
	// waiter (once), and a caller that finds the result already cached —
	// never having started or waited — counts one hit.
	return st.least.get(ctx, "core: least-model wait", func(runCtx context.Context) (*Model, error) {
		v := s.viewAt(i)
		var in *interp.Interp
		var err error
		if s.eng.cfg.Shards > 1 {
			in, err = s.shardingAt(i, v).LeastModelCtx(runCtx)
		} else {
			in, err = v.LeastModelCtx(runCtx)
		}
		if err != nil {
			return nil, err
		}
		return &Model{view: v, in: in}, nil
	}, func(kind string) {
		switch kind {
		case "hit":
			if obs.On() {
				mLeastHits.Inc()
			}
		case "waited":
			if obs.On() {
				mLeastWaiters.Inc()
			}
		case "computed":
			if obs.On() {
				mLeastComputed.Inc()
			}
			if s.eng.trace.Enabled() {
				s.eng.trace.Emit(obs.E("least",
					obs.F("comp", s.gp.Src.Components[i].Name),
					obs.F("version", s.version)))
			}
		}
	})
}

// Query evaluates a conjunctive query against the component's least model
// as of this snapshot (see Model.Query).
func (s *Snapshot) Query(comp string, q ast.Query) ([]Binding, error) {
	return s.QueryCtx(context.Background(), comp, q)
}

// QueryCtx is Query with cooperative cancellation of the underlying
// least-model computation. On a goal-directed engine
// (Config.GoalDirected) queries with a non-empty body evaluate against
// the goal's magic-set slice instead of the component's full least model;
// answers are identical either way.
func (s *Snapshot) QueryCtx(ctx context.Context, comp string, q ast.Query) ([]Binding, error) {
	if s.eng.cfg.GoalDirected && len(q.Body) > 0 {
		return s.QueryGoalDirectedCtx(ctx, comp, q)
	}
	m, err := s.LeastModelCtx(ctx, comp)
	if err != nil {
		return nil, err
	}
	return m.Query(q), nil
}

// AssumptionFreeModels enumerates the assumption-free models in the
// component as of this snapshot (see Engine.AssumptionFreeModels).
func (s *Snapshot) AssumptionFreeModels(comp string, opts stable.Options) ([]*Model, error) {
	return s.AssumptionFreeModelsCtx(context.Background(), comp, opts)
}

// AssumptionFreeModelsCtx is AssumptionFreeModels with cooperative
// cancellation and the partial-result contract of
// Engine.AssumptionFreeModelsCtx.
func (s *Snapshot) AssumptionFreeModelsCtx(ctx context.Context, comp string, opts stable.Options) ([]*Model, error) {
	v, err := s.View(comp)
	if err != nil {
		return nil, err
	}
	ms, enumErr := stable.AssumptionFreeModelsCtx(ctx, v, s.eng.fillStable(opts))
	if enumErr != nil && !partialEnumErr(enumErr) {
		return nil, enumErr
	}
	return wrapModels(v, ms), enumErr
}

// StableModels enumerates the stable models in the component as of this
// snapshot (see Engine.StableModels).
func (s *Snapshot) StableModels(comp string, opts stable.Options) ([]*Model, error) {
	return s.StableModelsCtx(context.Background(), comp, opts)
}

// StableModelsCtx is StableModels with cooperative cancellation and the
// same partial-result contract as AssumptionFreeModelsCtx.
func (s *Snapshot) StableModelsCtx(ctx context.Context, comp string, opts stable.Options) ([]*Model, error) {
	v, err := s.View(comp)
	if err != nil {
		return nil, err
	}
	ms, enumErr := stable.StableModelsCtx(ctx, v, s.eng.fillStable(opts))
	if enumErr != nil && !partialEnumErr(enumErr) {
		return nil, enumErr
	}
	return wrapModels(v, ms), enumErr
}

// StableModelsParallel enumerates the stable models with a worker pool as
// of this snapshot (see Engine.StableModelsParallel).
func (s *Snapshot) StableModelsParallel(comp string, opts stable.ParallelOptions) ([]*Model, error) {
	return s.StableModelsParallelCtx(context.Background(), comp, opts)
}

// StableModelsParallelCtx is StableModelsParallel with cooperative
// cancellation and the partial-result contract of
// Engine.StableModelsParallelCtx.
func (s *Snapshot) StableModelsParallelCtx(ctx context.Context, comp string, opts stable.ParallelOptions) ([]*Model, error) {
	v, err := s.View(comp)
	if err != nil {
		return nil, err
	}
	ms, enumErr := stable.StableModelsParallelCtx(ctx, v, s.eng.fillParallel(opts))
	if enumErr != nil && !partialEnumErr(enumErr) {
		return nil, enumErr
	}
	return wrapModels(v, ms), enumErr
}

// InterpFromLiterals builds a Model-shaped interpretation from AST
// literals for use with CheckModel and CheckAssumptionFree. Every atom
// must be in the (relevant) Herbrand base.
func (s *Snapshot) InterpFromLiterals(comp string, lits []ast.Literal) (*Model, error) {
	v, err := s.View(comp)
	if err != nil {
		return nil, err
	}
	in, err := interp.FromLiterals(s.gp.Tab, lits)
	if err != nil {
		return nil, err
	}
	return &Model{view: v, in: in}, nil
}

// liveFact reports whether the (component, fact) pair is in effect at this
// version: the overlay decides when it has an entry, otherwise the original
// source program does.
func (s *Snapshot) liveFact(k factKey, base map[factKey]bool) bool {
	if v, ok := s.factLive[k]; ok {
		return v
	}
	return base[k]
}

// Update publishes a new snapshot with the given ground facts asserted in
// the component ("" = DefaultComponent) and returns it. Facts already in
// effect are no-ops; if every fact is, the current snapshot is returned
// unchanged (same version). The engine's current snapshot advances to the
// result; snapshots held by concurrent readers are unaffected.
//
// When the grounder's incremental state admits it, the update is applied
// as a delta — only components that can see the touched component lose
// their memoised views and least models, everything else is carried over —
// and otherwise the engine transparently regrounds the effective program
// (source plus update history) from scratch. Either way the returned
// snapshot answers queries exactly as an engine freshly built from the
// updated source would.
//
// Updates are serialised with each other but never block readers.
func (e *Engine) Update(ctx context.Context, comp string, facts []ast.Literal) (*Snapshot, error) {
	return e.update(ctx, comp, facts, false)
}

// Retract publishes a new snapshot with the given ground facts removed
// from the component ("" = DefaultComponent) and returns it. Facts not in
// effect are no-ops. The contract is otherwise that of Update; only fact
// rules can be retracted, and only the exact ground fact is removed — rule
// instances that derive the same literal are untouched, exactly as if the
// fact rule were deleted from the source and the engine rebuilt.
func (e *Engine) Retract(ctx context.Context, comp string, facts []ast.Literal) (*Snapshot, error) {
	return e.update(ctx, comp, facts, true)
}

func (e *Engine) update(ctx context.Context, comp string, facts []ast.Literal, retract bool) (*Snapshot, error) {
	verb := "assert"
	if retract {
		verb = "retract"
	}
	for _, f := range facts {
		if !f.Atom.Ground() {
			return nil, fmt.Errorf("core: %s needs ground facts, got %s", verb, f)
		}
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	parent := e.Current()
	ci, err := parent.resolve(comp)
	if err != nil {
		return nil, err
	}
	if e.baseFacts == nil {
		e.buildBaseFacts()
	}
	// Drop no-ops: asserting a fact already in effect or retracting one that
	// is not changes nothing, and the ground layer relies on the caller
	// filtering them (re-asserting a live fact must not double-count its
	// constants).
	ops := make([]ast.Literal, 0, len(facts))
	dedup := make(map[factKey]bool, len(facts))
	for _, f := range facts {
		k := factKey{comp: ci, lit: f.String()}
		if dedup[k] {
			continue
		}
		dedup[k] = true
		if parent.liveFact(k, e.baseFacts) != retract {
			continue
		}
		ops = append(ops, f)
	}
	if len(ops) == 0 {
		return parent, nil
	}

	newLog := make([]factEvent, 0, len(parent.log)+len(ops))
	newLog = append(newLog, parent.log...)
	for _, f := range ops {
		newLog = append(newLog, factEvent{comp: ci, lit: f, retract: retract, ver: parent.version + 1})
	}
	overlay := make(map[factKey]bool, len(parent.factLive)+len(ops))
	for k, v := range parent.factLive {
		overlay[k] = v
	}
	for _, f := range ops {
		overlay[factKey{comp: ci, lit: f.String()}] = !retract
	}

	// Always try the incremental path: when the ground program lacks usable
	// incremental state the delta layer refuses immediately with a typed
	// *ground.RegroundError ("full-mode", "poisoned"), so every fallback —
	// inherent or tuning — carries its reason into the trace and counters.
	child, err := e.applyIncremental(ctx, parent, ci, ops, retract, overlay, newLog)
	if err == nil {
		mode := "incremental"
		compacted := false
		if e.needsCompact(child) {
			// Replace the incremental child with a compacted rebuild at the
			// same version. A failed compaction (e.g. cancellation mid-
			// reground) publishes the incremental child instead: the update
			// itself succeeded, and the thresholds re-trigger next time.
			if c, cerr := e.compactChild(ctx, child); cerr == nil {
				child, mode, compacted = c, "compact", true
			}
		}
		// Write-ahead: the batch reaches the log (fsynced per policy) before
		// the snapshot becomes visible, so every observable version is
		// recoverable. An append failure discards the unpublished child.
		if err := e.walAppend(child, ci, verb, ops); err != nil {
			return nil, err
		}
		e.current.Store(child)
		if compacted {
			e.finishCompact(child.version)
		} else {
			e.sinceCompact++
		}
		if obs.On() {
			mUpdates.Inc()
			mUpdatesIncr.Inc()
			mVersion.Set(int64(child.version))
		}
		if e.trace.Enabled() {
			e.trace.Emit(e.updateEvent(parent, child, ci, verb, len(ops), mode, ""))
		}
		if err := e.walCheckpoint(child); err != nil {
			return nil, fmt.Errorf("core: update v%d applied and logged, checkpoint failed: %w", child.version, err)
		}
		return child, nil
	}
	if !errors.Is(err, ground.ErrNeedsReground) {
		return nil, err
	}
	reason := ground.RegroundReason(err)
	// A fallback reground already rebuilds the prefix and drains the dead
	// set, but it carries the full history forward — under churn that is
	// the part that leaks. When the rebuild would cross the compaction
	// cadence anyway, collapse the history as part of it: the compaction
	// is free (the reground runs regardless) and the log stays bounded by
	// distinct facts, not update count.
	regroundLog, compacted := newLog, false
	if e.cfg.CompactEvery > 0 && e.sinceCompact+1 >= e.cfg.CompactEvery {
		regroundLog, compacted = collapseLog(newLog), true
	}
	child, err = e.reground(ctx, parent.version+1, regroundLog, overlay)
	if err != nil {
		return nil, err
	}
	if err := e.walAppend(child, ci, verb, ops); err != nil {
		return nil, err
	}
	e.current.Store(child)
	mode := "reground"
	if compacted {
		mode = "compact"
		e.finishCompact(child.version)
		if obs.On() {
			mCompactRuns.Inc()
			mCompactDead.Add(int64(len(parent.dead)))
			mCompactCollapsed.Add(int64(len(newLog) - len(regroundLog)))
		}
	} else {
		e.sinceCompact++
	}
	if obs.On() {
		mUpdates.Inc()
		mVersion.Set(int64(child.version))
	}
	countFallback(reason)
	if e.trace.Enabled() {
		e.trace.Emit(e.updateEvent(parent, child, ci, verb, len(ops), mode, reason))
	}
	if err := e.walCheckpoint(child); err != nil {
		return nil, fmt.Errorf("core: update v%d applied and logged, checkpoint failed: %w", child.version, err)
	}
	return child, nil
}

// updateEvent builds the "update:" trace event in the historical line
// format, with the fallback reason appended when the incremental path
// bailed.
func (e *Engine) updateEvent(parent, child *Snapshot, ci int, verb string, n int, mode, reason string) obs.Event {
	fields := []obs.Field{
		obs.F("", fmt.Sprintf("v%d -> v%d", parent.version, child.version)),
		obs.F("comp", parent.gp.Src.Components[ci].Name),
		obs.F(verb, n),
		obs.F("mode", mode),
	}
	if reason != "" {
		fields = append(fields, obs.F("reason", reason))
	}
	return obs.Event{Name: "update", Fields: fields}
}

// applyIncremental applies the update through the grounder's in-place
// delta machinery and builds the child snapshot, sharing the parent's
// per-component state for every component that cannot see a touched one.
func (e *Engine) applyIncremental(ctx context.Context, parent *Snapshot, ci int, ops []ast.Literal, retract bool, overlay map[factKey]bool, newLog []factEvent) (*Snapshot, error) {
	touched := make(map[int]bool)
	dead := make(map[int32]struct{}, len(parent.dead)+len(ops))
	for i := range parent.dead {
		dead[i] = struct{}{}
	}
	if retract {
		gone, err := parent.gp.RetractFacts(ci, ops)
		if err != nil {
			return nil, err
		}
		for _, idx := range gone {
			dead[idx] = struct{}{}
			touched[int(parent.gp.Rules[idx].Comp)] = true
		}
	} else {
		d, err := parent.gp.AssertFacts(ctx, ci, ops)
		if err != nil {
			return nil, err
		}
		for _, r := range parent.gp.Rules[d.OldLen:d.NewLen] {
			touched[int(r.Comp)] = true
		}
		for _, idx := range d.Existing {
			if _, wasDead := dead[idx]; wasDead {
				// Resurrection: the instance exists from an earlier version
				// and this snapshot brings it back to life.
				delete(dead, idx)
				touched[int(parent.gp.Rules[idx].Comp)] = true
			}
		}
	}
	child := &Snapshot{
		eng:      e,
		version:  parent.version + 1,
		gp:       parent.gp,
		rules:    parent.gp.Rules,
		dead:     dead,
		factLive: overlay,
		log:      newLog,
		comps:    make(map[int]*compState),
	}
	// A component's visible rules changed only if it can see a touched
	// component; everything else shares the parent's state pointer, so
	// views, least models and provers memoised on either version serve
	// both.
	for i := range parent.gp.Src.Components {
		affected := false
		for _, j := range parent.gp.Src.Above(i) {
			if touched[j] {
				affected = true
				break
			}
		}
		if !affected {
			child.comps[i] = parent.comp(i)
		}
	}
	return child, nil
}

// reground rebuilds the ground program from the effective source (original
// program plus replayed update history) and wraps it in a fresh snapshot
// at the given version with no carried-over state.
func (e *Engine) reground(ctx context.Context, version uint64, newLog []factEvent, overlay map[factKey]bool) (*Snapshot, error) {
	eff, err := effectiveProgram(e.src, newLog)
	if err != nil {
		return nil, err
	}
	gp, err := ground.GroundCtx(ctx, eff, e.groundOpts())
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		eng:      e,
		version:  version,
		gp:       gp,
		rules:    gp.Rules,
		factLive: overlay,
		log:      newLog,
		comps:    make(map[int]*compState),
	}, nil
}

// buildBaseFacts indexes the ground fact rules of the original source
// program; liveFact consults it beneath the per-snapshot overlay. Called
// lazily under writeMu.
func (e *Engine) buildBaseFacts() {
	e.baseFacts = make(map[factKey]bool)
	for ci, c := range e.src.Components {
		for _, r := range c.Rules {
			if r.IsFact() && r.Head.Atom.Ground() {
				e.baseFacts[factKey{comp: ci, lit: r.Head.String()}] = true
			}
		}
	}
}

// effectiveProgram clones the source program and replays the update
// history: an assert appends the fact rule unless a ground-equal one is
// present, a retract removes every ground-equal fact rule. The result is
// the program a caller maintaining the source by hand would have built, so
// regrounding it yields exactly the semantics the snapshot must expose.
func effectiveProgram(src *ast.OrderedProgram, log []factEvent) (*ast.OrderedProgram, error) {
	comps := make([]*ast.Component, len(src.Components))
	for i, c := range src.Components {
		comps[i] = &ast.Component{Name: c.Name, Rules: append([]*ast.Rule(nil), c.Rules...)}
	}
	equalFact := func(r *ast.Rule, l ast.Literal) bool {
		return r.IsFact() && r.Head.Neg == l.Neg && r.Head.Atom.Ground() && r.Head.Atom.Equal(l.Atom)
	}
	for _, ev := range log {
		c := comps[ev.comp]
		if ev.retract {
			kept := c.Rules[:0]
			for _, r := range c.Rules {
				if !equalFact(r, ev.lit) {
					kept = append(kept, r)
				}
			}
			c.Rules = kept
			continue
		}
		present := false
		for _, r := range c.Rules {
			if equalFact(r, ev.lit) {
				present = true
				break
			}
		}
		if !present {
			c.Rules = append(c.Rules, ast.Fact(ev.lit))
		}
	}
	p := ast.NewOrderedProgram()
	for _, c := range comps {
		if err := p.AddComponent(c); err != nil {
			return nil, err
		}
	}
	for _, ed := range src.Edges {
		if err := p.AddEdge(ed.Child, ed.Parent); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
