package core_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/stable"
	"repro/internal/wal"
	"repro/internal/workload"
)

func TestDurabilityConfigValidation(t *testing.T) {
	prog := tenantProgram(t, "a")
	cases := []struct {
		name  string
		opts  []core.Option
		field string
	}{
		{"checkpoint without durability", []core.Option{core.WithCheckpointEvery(4)}, "Durability.CheckpointEvery"},
		{"sync without durability", []core.Option{core.WithSync(wal.SyncAlways)}, "Durability.Sync"},
		{"name without durability", []core.Option{core.WithDurableName("x")}, "Durability.Name"},
		{"non-positive checkpoint interval", []core.Option{core.WithDurability(t.TempDir()), core.WithCheckpointEvery(-1)}, "Durability.CheckpointEvery"},
		{"unknown sync policy", []core.Option{core.WithDurability(t.TempDir()), core.WithSync(wal.SyncPolicy(7))}, "Durability.Sync"},
		{"unusable directory", []core.Option{core.WithDurability("/dev/null/sub")}, "Durability.Dir"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := core.NewEngine(prog, core.Config{}, c.opts...)
			var ce *core.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("got %v, want *ConfigError", err)
			}
			if ce.Field != c.field {
				t.Fatalf("rejected field %q, want %q", ce.Field, c.field)
			}
		})
	}
	// The happy path: WithDurability alone presets the checkpoint cadence.
	eng, err := core.NewEngine(prog, core.Config{}, core.WithDurability(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !eng.Durable() {
		t.Fatal("engine with WithDurability not durable")
	}
}

// durableEngine builds a durable engine over tenantProgram in a fresh
// temp dir with a tight checkpoint cadence.
func durableEngine(t *testing.T, every int) (*core.Engine, string) {
	t.Helper()
	dir := t.TempDir()
	eng, err := core.NewEngine(tenantProgram(t, "a"), core.Config{},
		core.WithDurability(dir), core.WithDurableName("tn"),
		core.WithCheckpointEvery(every), core.WithSync(wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	return eng, dir
}

func leastStr(t *testing.T, s *core.Snapshot) string {
	t.Helper()
	m, err := s.LeastModel("main")
	if err != nil {
		t.Fatal(err)
	}
	return m.String()
}

func TestRecoverRoundtrip(t *testing.T) {
	ctx := context.Background()
	eng, dir := durableEngine(t, 2)
	var wantByVersion []string // least model per published version
	wantByVersion = append(wantByVersion, leastStr(t, eng.Current()))
	for i := 0; i < 5; i++ {
		snap, err := eng.Update(ctx, "main", []ast.Literal{lit(t, fmt.Sprintf("p(x%d)", i))})
		if err != nil {
			t.Fatal(err)
		}
		wantByVersion = append(wantByVersion, leastStr(t, snap))
	}
	if _, err := eng.Retract(ctx, "main", []ast.Literal{lit(t, "p(x0)")}); err != nil {
		t.Fatal(err)
	}
	wantByVersion = append(wantByVersion, leastStr(t, eng.Current()))
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed log rejects further updates; reads still work.
	if _, err := eng.Update(ctx, "main", []ast.Literal{lit(t, "p(zz)")}); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("update after Close: got %v, want wal.ErrClosed", err)
	}
	if got := leastStr(t, eng.Current()); got != wantByVersion[6] {
		t.Fatal("read after Close diverged")
	}

	rec, err := core.Recover(ctx, dir, core.Config{}, core.WithSync(wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.DurableName() != "tn" {
		t.Fatalf("recovered name %q, want tn", rec.DurableName())
	}
	if v := rec.Current().Version(); v != 6 {
		t.Fatalf("recovered version %d, want 6", v)
	}
	if got := leastStr(t, rec.Current()); got != wantByVersion[6] {
		t.Fatalf("recovered least model diverged:\n%s\nwant:\n%s", got, wantByVersion[6])
	}
	// The recovered engine continues the chain: more updates, then a strict
	// end-to-end verification of the directory.
	if snap, err := rec.Update(ctx, "main", []ast.Literal{lit(t, "p(after)")}); err != nil || snap.Version() != 7 {
		t.Fatalf("post-recovery update: v%v err=%v", snap.Version(), err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := wal.VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "tn" || res.Records != 7 || res.Version != 7 {
		t.Fatalf("verify after recovery = %+v", res)
	}
	// Conflicting WithDurableName is a config error, not silent adoption.
	_, err = core.Recover(ctx, dir, core.Config{}, core.WithDurableName("other"))
	var ce *core.ConfigError
	if !errors.As(err, &ce) || ce.Field != "Durability.Name" {
		t.Fatalf("recover with conflicting name: got %v", err)
	}
}

func TestNewEngineResetsHistory(t *testing.T) {
	ctx := context.Background()
	eng, dir := durableEngine(t, 1)
	if _, err := eng.Update(ctx, "main", []ast.Literal{lit(t, "p(x)")}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// A second NewEngine over the same directory is a fresh genesis: the
	// old log and checkpoints must not bleed into the new chain.
	eng2, err := core.NewEngine(tenantProgram(t, "b"), core.Config{},
		core.WithDurability(dir), core.WithDurableName("tn"), core.WithSync(wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := core.Recover(ctx, dir, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if v := rec.Current().Version(); v != 0 {
		t.Fatalf("recovered version %d after reset, want 0", v)
	}
	if got := leastStr(t, rec.Current()); got != leastStr(t, eng2.Current()) {
		t.Fatal("reset history recovered the old program")
	}
}

func TestAsOfInMemory(t *testing.T) {
	ctx := context.Background()
	eng, err := core.NewEngine(tenantProgram(t, "a"), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{leastStr(t, eng.Current())}
	for i := 0; i < 3; i++ {
		snap, err := eng.Update(ctx, "main", []ast.Literal{lit(t, fmt.Sprintf("p(x%d)", i))})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, leastStr(t, snap))
	}
	// Every past version is reachable from the in-memory history, no
	// durability required — including v0, the initial grounding.
	for v := uint64(0); v <= 3; v++ {
		snap, err := eng.AsOf(v)
		if err != nil {
			t.Fatalf("AsOf(%d): %v", v, err)
		}
		if snap.Version() != v {
			t.Fatalf("AsOf(%d) returned v%d", v, snap.Version())
		}
		if got := leastStr(t, snap); got != want[v] {
			t.Fatalf("AsOf(%d) diverged:\n%s\nwant:\n%s", v, got, want[v])
		}
	}
	// Repeated reads hit the cache: same snapshot pointer.
	s1, _ := eng.AsOf(1)
	s2, _ := eng.AsOf(1)
	if s1 != s2 {
		t.Fatal("AsOf(1) not cached")
	}
	if _, err := eng.AsOf(99); !errors.Is(err, core.ErrVersionUnknown) {
		t.Fatalf("AsOf(99): got %v, want ErrVersionUnknown", err)
	}
}

func TestAsOfFromDisk(t *testing.T) {
	ctx := context.Background()
	eng, dir := durableEngine(t, 2)
	want := []string{leastStr(t, eng.Current())}
	for i := 0; i < 6; i++ {
		snap, err := eng.Update(ctx, "main", []ast.Literal{lit(t, fmt.Sprintf("p(x%d)", i))})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, leastStr(t, snap))
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := core.Recover(ctx, dir, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	// The recovered engine's base is the newest checkpoint (v6 with this
	// cadence), so versions below it resolve through the WAL on disk.
	for v := uint64(0); v <= 6; v++ {
		snap, err := rec.AsOf(v)
		if err != nil {
			t.Fatalf("AsOf(%d) after recovery: %v", v, err)
		}
		if snap.Version() != v {
			t.Fatalf("AsOf(%d) returned v%d", v, snap.Version())
		}
		if got := leastStr(t, snap); got != want[v] {
			t.Fatalf("AsOf(%d) diverged after recovery:\n%s\nwant:\n%s", v, got, want[v])
		}
	}
	if _, err := rec.AsOf(7); !errors.Is(err, core.ErrVersionUnknown) {
		t.Fatalf("AsOf(7): got %v, want ErrVersionUnknown", err)
	}
}

func TestTenantAsOfFallsBackToEngine(t *testing.T) {
	ctx := context.Background()
	r := core.NewRegistry(0, 2) // retain only 2 versions
	tn, _, err := r.Put(ctx, "a", tenantProgram(t, "a"), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want := []string{leastStr(t, tn.Current())}
	for i := 0; i < 4; i++ {
		snap, err := tn.Update(ctx, "main", []ast.Literal{lit(t, fmt.Sprintf("p(x%d)", i))})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, leastStr(t, snap))
	}
	// v1 has aged out of the pinned retention window (At returns evicted)…
	if _, err := tn.At(1); !errors.Is(err, core.ErrVersionEvicted) {
		t.Fatalf("At(1): got %v, want ErrVersionEvicted", err)
	}
	// …but AsOf reconstructs it from the engine's history.
	snap, err := tn.AsOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := leastStr(t, snap); got != want[1] {
		t.Fatalf("Tenant.AsOf(1) diverged:\n%s\nwant:\n%s", got, want[1])
	}
	if _, err := tn.AsOf(9); !errors.Is(err, core.ErrVersionUnknown) {
		t.Fatalf("Tenant.AsOf(9): got %v, want ErrVersionUnknown", err)
	}
}

// copyDir clones a durability directory so a crash simulation can mutate
// the copy.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashRecoveryDifferential is the crash-safety pin: a durable engine
// under a random update/retract workload, "killed" by truncating its log
// at arbitrary byte offsets (exactly the state a SIGKILL mid-append
// leaves, since appends are sequential writes). For every kill point,
// Recover must produce the same least/AF/stable projections and version
// as an in-memory oracle that replays the surviving records from scratch,
// and must keep accepting writes. Random single-byte flips must instead
// fail strict verification.
func TestCrashRecoveryDifferential(t *testing.T) {
	const comps, nconst = 3, 3
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	prog := workload.RandomOrderedDatalog(rng, comps, nconst)
	shadow := cloneShadow(t, prog) // pristine copy for oracle rebuilds

	dir := t.TempDir()
	eng, err := core.NewEngine(prog, core.Config{},
		core.WithDurability(dir), core.WithDurableName("crash"),
		core.WithCheckpointEvery(16), core.WithSync(wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(prog.Components))
	for i, c := range prog.Components {
		names[i] = c.Name
	}
	nops := 60
	if testing.Short() {
		nops = 24
	}
	for op := 0; op < nops; op++ {
		o := randomOp(rng, comps, nconst)
		if o.retract {
			_, err = eng.Retract(ctx, names[o.comp], []ast.Literal{o.lit})
		} else {
			_, err = eng.Update(ctx, names[o.comp], []ast.Literal{o.lit})
		}
		if err != nil {
			t.Fatalf("op %d (%v): %v", op, o, err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, wal.LogName))
	if err != nil {
		t.Fatal(err)
	}

	// oracle replays the k surviving records onto the pristine program in a
	// memory-only engine: the genesis checkpoint holds exactly that
	// program, so whatever checkpoint recovery starts from, the results
	// must agree with the full from-scratch replay.
	oracle := func(t *testing.T, recs []wal.Record) *core.Engine {
		t.Helper()
		fresh, err := core.NewEngine(cloneShadow(t, shadow), core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			facts := make([]ast.Literal, len(rec.Facts))
			for i, fs := range rec.Facts {
				facts[i] = lit(t, fs)
			}
			if rec.Op == "retract" {
				_, err = fresh.Retract(ctx, rec.Comp, facts)
			} else {
				_, err = fresh.Update(ctx, rec.Comp, facts)
			}
			if err != nil {
				t.Fatalf("oracle replay record %d: %v", rec.Seq, err)
			}
		}
		return fresh
	}

	kills := 50
	if testing.Short() {
		kills = 12
	}
	for i := 0; i < kills; i++ {
		cut := rng.Intn(len(raw) + 1)
		t.Run(fmt.Sprintf("kill@%05d", cut), func(t *testing.T) {
			crash := copyDir(t, dir)
			if err := os.Truncate(filepath.Join(crash, wal.LogName), int64(cut)); err != nil {
				t.Fatal(err)
			}
			dec, err := wal.Decode(raw[:cut], wal.Genesis("crash"), false)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := core.Recover(ctx, crash, core.Config{}, core.WithSync(wal.SyncAlways))
			if err != nil {
				t.Fatalf("recover after cut at %d (%d surviving records): %v", cut, len(dec.Records), err)
			}
			defer rec.Close()
			if got, want := rec.Current().Version(), uint64(len(dec.Records)); got != want {
				t.Fatalf("recovered v%d, oracle says v%d", got, want)
			}
			fresh := oracle(t, dec.Records)
			gotSnap, wantSnap := rec.Current(), fresh.Current()
			for _, name := range names {
				got, err1 := gotSnap.LeastModel(name)
				want, err2 := wantSnap.LeastModel(name)
				if err1 != nil || err2 != nil {
					t.Fatalf("least(%s): %v / %v", name, err1, err2)
				}
				if got.String() != want.String() {
					t.Fatalf("least model diverged in %s after cut %d:\nrecovered: %s\noracle:    %s", name, cut, got, want)
				}
			}
			// Enumeration projections on the most specific component.
			name := names[0]
			gotAF, errG := gotSnap.AssumptionFreeModels(name, stable.Options{})
			wantAF, errW := wantSnap.AssumptionFreeModels(name, stable.Options{})
			if g, w := diffModelSet(t, gotAF, errG), diffModelSet(t, wantAF, errW); g != w {
				t.Fatalf("AF models diverged after cut %d:\nrecovered: %s\noracle:    %s", cut, g, w)
			}
			gotSt, errG := gotSnap.StableModels(name, stable.Options{})
			wantSt, errW := wantSnap.StableModels(name, stable.Options{})
			if g, w := diffModelSet(t, gotSt, errG), diffModelSet(t, wantSt, errW); g != w {
				t.Fatalf("stable models diverged after cut %d:\nrecovered: %s\noracle:    %s", cut, g, w)
			}
			// The recovered engine must still be writable on the same chain.
			if _, err := rec.Update(ctx, names[0], []ast.Literal{lit(t, "p0(c0)")}); err != nil {
				t.Fatalf("post-recovery update: %v", err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := wal.VerifyDir(crash); err != nil {
				t.Fatalf("verify after recovery+update: %v", err)
			}
		})
	}

	// A flipped byte is tampering, not a crash: strict verification must
	// refuse the directory.
	flips := 20
	if testing.Short() {
		flips = 5
	}
	for i := 0; i < flips; i++ {
		pos := rng.Intn(len(raw))
		tampered := copyDir(t, dir)
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(filepath.Join(tampered, wal.LogName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := wal.VerifyDir(tampered); err == nil {
			t.Fatalf("flipped bit at byte %d went undetected by VerifyDir", pos)
		}
	}
}
