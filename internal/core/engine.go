// Package core wires the parser, grounder, evaluator and stable-model
// enumerator into one engine: the paper's primary contribution as a usable
// deductive-database library. The root package ordlog re-exports this API.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/batch"
	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/interrupt"
	"repro/internal/obs"
	"repro/internal/stable"
)

// Engine holds a versioned, grounded ordered program. The fact base is
// maintained through immutable snapshots: construction grounds the source
// program into version 0, and Update/Retract publish new versions without
// mutating old ones. Every query method on the Engine pins the current
// snapshot for the duration of one call; callers that need several queries
// to agree on a version hold a *Snapshot (Current) and query that instead.
//
// Concurrency contract: an Engine is safe for concurrent use by multiple
// goroutines, including concurrent updates — writers are serialised among
// themselves and never block readers; a reader keeps the version it
// pinned. Per-component views and least models are memoised per snapshot
// with singleflight semantics — N goroutines asking for the same component
// compute each artifact exactly once and share the result, and snapshots
// whose visible rules agree on a component share the memo across versions.
// The returned *Model values (and the interp.Interp they expose) are
// shared and must be treated as read-only; callers that need a private
// copy clone the interpretation. Goal-directed proofs (Prove,
// ProveExplain, ProveQuery) share a memoising prover per component and are
// serialised per component; queries against different components proceed
// in parallel.
//
// Cancellation contract: every evaluation entry point has a ...Ctx variant
// that stops at the engine's cooperative checkpoints once the context is
// cancelled or past its deadline, returning an error matching
// interrupt.ErrInterrupted together with whatever partial results the
// operation defines (see the per-method comments). The singleflight least-
// model cache respects each caller's context individually: a caller whose
// context dies stops waiting immediately, the in-flight computation keeps
// running while any caller still wants it, and it is cancelled — without
// poisoning the cache — only when the last waiter has given up.
type Engine struct {
	src   *ast.OrderedProgram
	cfg   Config
	trace *tracer

	// base is the version of the engine's initial snapshot: 0 for a fresh
	// engine, the recovered checkpoint's version after core.Recover. The
	// engine's in-memory update history (Snapshot.log) starts at base;
	// AsOf reads below it go through the WAL on disk.
	base uint64

	// memBase is the oldest version the in-memory update history can
	// still reconstruct: base at construction, advanced by compaction
	// (which collapses the carried history to its net effect and thereby
	// forgets the intermediate versions). Atomic because AsOf reads it
	// without the write lock.
	memBase atomic.Uint64

	// sinceCompact counts incremental updates since the last full rebuild
	// (compaction or reground fallback). Only touched under writeMu.
	sinceCompact int

	// dur is the write-ahead log state of a durable engine, nil for a
	// memory-only one. Only touched under writeMu (updates) or at
	// construction/Close.
	dur *durable

	// writeMu serialises updates; baseFacts (the source program's ground
	// fact rules, built lazily) is only touched under it. current is the
	// published tip, advanced by updates and read lock-free by queries.
	writeMu   sync.Mutex
	baseFacts map[factKey]bool
	current   atomic.Pointer[Snapshot]

	// asOfMu guards the small FIFO cache of AsOf-materialised snapshots.
	asOfMu    sync.Mutex
	asOfCache map[uint64]*Snapshot
	asOfOrder []uint64
}

// NewEngine grounds the program into the engine's initial snapshot. The
// program must be validated (parser output always is; hand-built programs
// need Validate). The configuration is cfg with the options applied on
// top; an invalid result is rejected with a *ConfigError.
func NewEngine(p *ast.OrderedProgram, cfg Config, opts ...Option) (*Engine, error) {
	return NewEngineCtx(context.Background(), p, cfg, opts...)
}

// NewEngineCtx is NewEngine with cooperative cancellation of the grounding
// phase (see ground.GroundCtx for the checkpoints). No partial engine is
// returned on interruption.
func NewEngineCtx(ctx context.Context, p *ast.OrderedProgram, cfg Config, opts ...Option) (*Engine, error) {
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e, err := newEngineAt(ctx, p, cfg, 0)
	if err != nil {
		return nil, err
	}
	if cfg.Durability.Dir != "" {
		if err := e.initDurability(); err != nil {
			return nil, err
		}
	}
	if obs.On() {
		mVersion.Set(0)
	}
	return e, nil
}

// newEngineAt grounds p into an engine whose initial snapshot carries
// version base. It is the shared constructor core of NewEngineCtx (base
// 0), Recover (base = checkpoint version) and AsOf materialisation (base
// = requested version); cfg must already be validated, and the caller
// owns the version gauge and durability attachment — throwaway AsOf
// engines must touch neither.
func newEngineAt(ctx context.Context, p *ast.OrderedProgram, cfg Config, base uint64) (*Engine, error) {
	e := &Engine{src: p, cfg: cfg, base: base, trace: newTracer(cfg.Trace)}
	e.memBase.Store(base)
	gp, err := ground.GroundCtx(ctx, p, e.groundOpts())
	if err != nil {
		return nil, err
	}
	e.current.Store(&Snapshot{eng: e, version: base, gp: gp, rules: gp.Rules, comps: make(map[int]*compState)})
	if e.trace.Enabled() {
		e.trace.Emit(obs.E("ground", obs.F("rules", len(gp.Rules)), obs.F("atoms", gp.Tab.Len())))
	}
	return e, nil
}

// groundOpts returns the grounding options in effect (zero Config.Ground
// means ground.DefaultOptions), with Config.Shards seeding Ground.Shards
// unless the latter was set explicitly.
func (e *Engine) groundOpts() ground.Options {
	opts := e.cfg.Ground
	if opts.IsZero() {
		opts = ground.DefaultOptions()
	}
	if opts.Shards == 0 {
		opts.Shards = e.cfg.Shards
	}
	return opts
}

// fillStable applies Config.EnumBudget as the default leaf budget.
func (e *Engine) fillStable(opts stable.Options) stable.Options {
	if opts.MaxLeaves == 0 && e.cfg.EnumBudget > 0 {
		opts.MaxLeaves = e.cfg.EnumBudget
	}
	return opts
}

// fillParallel applies Config.EnumBudget and Config.Workers as defaults.
func (e *Engine) fillParallel(opts stable.ParallelOptions) stable.ParallelOptions {
	opts.Options = e.fillStable(opts.Options)
	if opts.Workers == 0 && e.cfg.Workers > 0 {
		opts.Workers = e.cfg.Workers
	}
	return opts
}

// fillBatch applies Config.Workers as the default pool size.
func (e *Engine) fillBatch(opts batch.Options) batch.Options {
	if opts.Workers == 0 && e.cfg.Workers > 0 {
		opts.Workers = e.cfg.Workers
	}
	return opts
}

// Current returns the engine's current snapshot. The snapshot is immutable;
// queries against it are repeatable regardless of concurrent updates.
func (e *Engine) Current() *Snapshot { return e.current.Load() }

// Source returns the original source program. Updates do not rewrite it.
func (e *Engine) Source() *ast.OrderedProgram { return e.src }

// Grounded returns the current snapshot's ground program. See
// Snapshot.Grounded for the concurrency contract: its Rules and Universe
// fields must not be read while an Update/Retract may be in flight.
func (e *Engine) Grounded() *ground.Program { return e.Current().Grounded() }

// NumGroundRules returns the number of live ground rule instances in the
// current snapshot.
func (e *Engine) NumGroundRules() int { return e.Current().NumGroundRules() }

// NumAtoms returns the size of the (relevant) Herbrand base in the current
// snapshot.
func (e *Engine) NumAtoms() int { return e.Current().NumAtoms() }

// DefaultComponent picks the component a query without an explicit target
// refers to: the unique minimal element of the order (the most specific
// component, the paper's "myself" level); if the order has several minimal
// elements, the implicit component "main" when present. Otherwise an error.
func (e *Engine) DefaultComponent() (string, error) {
	var minimal []string
	for i, c := range e.src.Components {
		isMin := true
		for j := range e.src.Components {
			if e.src.Less(j, i) {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, c.Name)
		}
	}
	if len(minimal) == 1 {
		return minimal[0], nil
	}
	for _, n := range minimal {
		if n == "main" {
			return n, nil
		}
	}
	return "", fmt.Errorf("core: no unique most specific component (minimal: %v); name one explicitly", minimal)
}

// View returns the cached evaluation view for a component in the current
// snapshot; comp == "" selects DefaultComponent. The view is built exactly
// once per component and version even under concurrent callers and is
// immutable afterwards.
func (e *Engine) View(comp string) (*eval.View, error) { return e.Current().View(comp) }

// LeastModel computes the least model of the program in the component
// (lfp of the ordered immediate transformation, Theorem 1(b)) as of the
// current snapshot. Results are cached per component and version with
// singleflight semantics; callers must not mutate the returned model's
// interpretation.
func (e *Engine) LeastModel(comp string) (*Model, error) { return e.Current().LeastModel(comp) }

// LeastModelCtx is LeastModel with cooperative cancellation. The
// singleflight cache stays single-flight: concurrent callers share one
// fixpoint computation, but each waiter honours its own context — a caller
// whose context dies returns an interrupt.Error immediately while the
// computation keeps serving the remaining waiters, and only when every
// waiter has abandoned it is the computation itself cancelled (and the
// cache left clean for the next caller to retry). Deterministic evaluation
// errors are cached exactly as with LeastModel.
func (e *Engine) LeastModelCtx(ctx context.Context, comp string) (*Model, error) {
	return e.Current().LeastModelCtx(ctx, comp)
}

// Query evaluates a conjunctive query against the component's least model
// in the current snapshot and returns one binding per solution (see
// Model.Query).
func (e *Engine) Query(comp string, q ast.Query) ([]Binding, error) {
	return e.Current().Query(comp, q)
}

// QueryCtx is Query with cooperative cancellation of the underlying
// least-model computation. Match enumeration over an already-materialised
// model is not interruptible (it is linear in the model and fast); the
// fixpoint is the unbounded part.
func (e *Engine) QueryCtx(ctx context.Context, comp string, q ast.Query) ([]Binding, error) {
	return e.Current().QueryCtx(ctx, comp, q)
}

// AssumptionFreeModels enumerates the assumption-free models in the
// component (Definition 7) as of the current snapshot. On ErrBudget the
// models found before the budget ran out are returned alongside the error.
func (e *Engine) AssumptionFreeModels(comp string, opts stable.Options) ([]*Model, error) {
	return e.Current().AssumptionFreeModels(comp, opts)
}

// AssumptionFreeModelsCtx is AssumptionFreeModels with cooperative
// cancellation: a cancelled or expired context stops the search within one
// DFS checkpoint and returns the (possibly empty, always non-nil) partial
// model set alongside an interrupt.Error.
func (e *Engine) AssumptionFreeModelsCtx(ctx context.Context, comp string, opts stable.Options) ([]*Model, error) {
	return e.Current().AssumptionFreeModelsCtx(ctx, comp, opts)
}

// StableModels enumerates the stable models in the component — the maximal
// assumption-free models (Definition 9) — as of the current snapshot. On
// ErrBudget the maximal models of the truncated enumeration are returned
// alongside the error.
func (e *Engine) StableModels(comp string, opts stable.Options) ([]*Model, error) {
	return e.Current().StableModels(comp, opts)
}

// StableModelsCtx is StableModels with cooperative cancellation and the
// same partial-result contract as AssumptionFreeModelsCtx.
func (e *Engine) StableModelsCtx(ctx context.Context, comp string, opts stable.Options) ([]*Model, error) {
	return e.Current().StableModelsCtx(ctx, comp, opts)
}

// StableModelsParallel enumerates the stable models with a worker pool
// (see stable.AssumptionFreeModelsParallel for the exact semantics of the
// shared budgets). On ErrBudget the maximal models of the truncated
// enumeration are returned alongside the error, exactly as with the
// sequential StableModels.
func (e *Engine) StableModelsParallel(comp string, opts stable.ParallelOptions) ([]*Model, error) {
	return e.Current().StableModelsParallel(comp, opts)
}

// StableModelsParallelCtx is StableModelsParallel with cooperative
// cancellation: workers stop on the context's cancellation and the partial
// model set collected so far is returned alongside an interrupt.Error.
func (e *Engine) StableModelsParallelCtx(ctx context.Context, comp string, opts stable.ParallelOptions) ([]*Model, error) {
	return e.Current().StableModelsParallelCtx(ctx, comp, opts)
}

// partialEnumErr reports whether an enumeration error carries partial
// results (budget exhaustion or interruption) rather than failure.
func partialEnumErr(err error) bool {
	return errors.Is(err, stable.ErrBudget) || errors.Is(err, interrupt.ErrInterrupted)
}

func wrapModels(v *eval.View, ms []*interp.Interp) []*Model {
	out := make([]*Model, len(ms))
	for i, m := range ms {
		out[i] = &Model{view: v, in: m}
	}
	return out
}

// InterpFromLiterals builds a Model-shaped interpretation from AST
// literals for use with CheckModel and CheckAssumptionFree. Every atom
// must be in the (relevant) Herbrand base of the current snapshot.
func (e *Engine) InterpFromLiterals(comp string, lits []ast.Literal) (*Model, error) {
	return e.Current().InterpFromLiterals(comp, lits)
}

// CheckModel reports whether m satisfies Definition 3 in m's component,
// with a reason when it does not.
func (e *Engine) CheckModel(m *Model) (bool, string) {
	bad, why := m.view.ModelViolation(m.in)
	return !bad, why
}

// CheckAssumptionFree reports whether m is an assumption-free model
// (Definition 7 / Theorem 1(a)).
func (e *Engine) CheckAssumptionFree(m *Model) bool {
	return m.view.IsAssumptionFree(m.in)
}
