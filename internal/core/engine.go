// Package core wires the parser, grounder, evaluator and stable-model
// enumerator into one engine: the paper's primary contribution as a usable
// deductive-database library. The root package ordlog re-exports this API.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/interrupt"
	"repro/internal/proof"
	"repro/internal/stable"
)

// Config configures an Engine.
type Config struct {
	// Ground selects grounding mode, depth bound and budgets. The zero
	// value means ground.DefaultOptions().
	Ground ground.Options
}

// Engine holds a grounded ordered program and caches per-component views,
// least models and provers. An Engine is immutable after construction:
// callers that change the source program build a new Engine.
//
// Concurrency contract: an Engine is safe for concurrent use by multiple
// goroutines. Per-component views and least models are memoised with
// singleflight semantics — N goroutines asking for the same component
// compute each artifact exactly once and share the result. The returned
// *Model values (and the interp.Interp they expose) are shared and must be
// treated as read-only; callers that need a private copy clone the
// interpretation. Goal-directed proofs (Prove, ProveExplain, ProveQuery)
// share a memoising prover per component and are serialised per component;
// queries against different components proceed in parallel.
//
// Cancellation contract: every evaluation entry point has a ...Ctx variant
// that stops at the engine's cooperative checkpoints once the context is
// cancelled or past its deadline, returning an error matching
// interrupt.ErrInterrupted together with whatever partial results the
// operation defines (see the per-method comments). The singleflight least-
// model cache respects each caller's context individually: a caller whose
// context dies stops waiting immediately, the in-flight computation keeps
// running while any caller still wants it, and it is cancelled — without
// poisoning the cache — only when the last waiter has given up.
type Engine struct {
	src *ast.OrderedProgram
	gp  *ground.Program

	mu    sync.Mutex
	comps map[int]*compState
}

// compState holds the lazily built per-component artifacts. The view is
// construct-once/read-many under a sync.Once; the least model uses the
// channel-based singleflight of lazyLeast so waiters can honour their own
// contexts; proverSem (a 1-slot semaphore acquired with context) serialises
// the memoising, non-reentrant goal-directed prover.
type compState struct {
	viewOnce sync.Once
	view     *eval.View

	least lazyLeast

	proverSem chan struct{}
	prover    *proof.Prover
}

// lazyLeast is a context-aware singleflight cell for one component's least
// model. States: idle (done == nil, !ready), running (done != nil), ready
// (ready == true; m/err cached forever). A run executes on a private
// context detached from any caller; each waiter selects on its own context
// and the run's done channel. The last waiter to abandon a run cancels it;
// an interrupted run resets the cell to idle instead of caching the
// interruption, so the next caller simply retries.
type lazyLeast struct {
	mu      sync.Mutex
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	ready   bool
	m       *Model
	err     error
}

// NewEngine grounds the program. The program must be validated (parser
// output always is; hand-built programs need Validate).
func NewEngine(p *ast.OrderedProgram, cfg Config) (*Engine, error) {
	return NewEngineCtx(context.Background(), p, cfg)
}

// NewEngineCtx is NewEngine with cooperative cancellation of the grounding
// phase (see ground.GroundCtx for the checkpoints). No partial engine is
// returned on interruption.
func NewEngineCtx(ctx context.Context, p *ast.OrderedProgram, cfg Config) (*Engine, error) {
	opts := cfg.Ground
	zero := ground.Options{}
	if opts == zero {
		opts = ground.DefaultOptions()
	}
	gp, err := ground.GroundCtx(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{src: p, gp: gp, comps: make(map[int]*compState)}, nil
}

// comp returns the shared per-component state, creating it on first use.
func (e *Engine) comp(i int) *compState {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.comps[i]
	if !ok {
		st = &compState{proverSem: make(chan struct{}, 1)}
		e.comps[i] = st
	}
	return st
}

// resolve maps a component name ("" = DefaultComponent) to its position.
func (e *Engine) resolve(comp string) (int, error) {
	if comp == "" {
		var err error
		comp, err = e.DefaultComponent()
		if err != nil {
			return -1, err
		}
	}
	i, ok := e.src.ComponentIndex(comp)
	if !ok {
		return -1, fmt.Errorf("core: unknown component %q", comp)
	}
	return i, nil
}

// Source returns the source program.
func (e *Engine) Source() *ast.OrderedProgram { return e.src }

// Grounded returns the ground program.
func (e *Engine) Grounded() *ground.Program { return e.gp }

// NumGroundRules returns the number of ground rule instances.
func (e *Engine) NumGroundRules() int { return len(e.gp.Rules) }

// NumAtoms returns the size of the (relevant) Herbrand base.
func (e *Engine) NumAtoms() int { return e.gp.Tab.Len() }

// DefaultComponent picks the component a query without an explicit target
// refers to: the unique minimal element of the order (the most specific
// component, the paper's "myself" level); if the order has several minimal
// elements, the implicit component "main" when present. Otherwise an error.
func (e *Engine) DefaultComponent() (string, error) {
	var minimal []string
	for i, c := range e.src.Components {
		isMin := true
		for j := range e.src.Components {
			if e.src.Less(j, i) {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, c.Name)
		}
	}
	if len(minimal) == 1 {
		return minimal[0], nil
	}
	for _, n := range minimal {
		if n == "main" {
			return n, nil
		}
	}
	return "", fmt.Errorf("core: no unique most specific component (minimal: %v); name one explicitly", minimal)
}

// View returns the cached evaluation view for a component; comp == ""
// selects DefaultComponent. The view is built exactly once per component
// even under concurrent callers and is immutable afterwards.
func (e *Engine) View(comp string) (*eval.View, error) {
	i, err := e.resolve(comp)
	if err != nil {
		return nil, err
	}
	return e.viewAt(i), nil
}

func (e *Engine) viewAt(i int) *eval.View {
	st := e.comp(i)
	st.viewOnce.Do(func() { st.view = eval.NewView(e.gp, i) })
	return st.view
}

// LeastModel computes the least model of the program in the component
// (lfp of the ordered immediate transformation, Theorem 1(b)). Results are
// cached per component with singleflight semantics; callers must not
// mutate the returned model's interpretation.
func (e *Engine) LeastModel(comp string) (*Model, error) {
	return e.LeastModelCtx(context.Background(), comp)
}

// LeastModelCtx is LeastModel with cooperative cancellation. The
// singleflight cache stays single-flight: concurrent callers share one
// fixpoint computation, but each waiter honours its own context — a caller
// whose context dies returns an interrupt.Error immediately while the
// computation keeps serving the remaining waiters, and only when every
// waiter has abandoned it is the computation itself cancelled (and the
// cache left clean for the next caller to retry). Deterministic evaluation
// errors are cached exactly as with LeastModel.
func (e *Engine) LeastModelCtx(ctx context.Context, comp string) (*Model, error) {
	i, err := e.resolve(comp)
	if err != nil {
		return nil, err
	}
	st := e.comp(i)
	ll := &st.least
	for {
		ll.mu.Lock()
		if ll.ready {
			m, err := ll.m, ll.err
			ll.mu.Unlock()
			return m, err
		}
		if err := ctx.Err(); err != nil {
			ll.mu.Unlock()
			return nil, &interrupt.Error{Stage: "core: least-model wait", Cause: err}
		}
		if ll.done == nil {
			// Start the computation on a context detached from any one
			// caller: its lifetime is "some waiter still wants this".
			runCtx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			ll.done, ll.cancel = done, cancel
			go func() {
				v := e.viewAt(i)
				in, err := v.LeastModelCtx(runCtx)
				ll.mu.Lock()
				if err != nil && errors.Is(err, interrupt.ErrInterrupted) {
					// Abandoned run: reset to idle rather than caching the
					// interruption — the result is a property of the
					// program, not of the callers that gave up on it.
					ll.done, ll.cancel = nil, nil
				} else {
					ll.ready = true
					if err != nil {
						ll.err = err
					} else {
						ll.m = &Model{view: v, in: in}
					}
					ll.done, ll.cancel = nil, nil
				}
				ll.mu.Unlock()
				cancel()
				close(done)
			}()
		}
		done := ll.done
		cancel := ll.cancel
		ll.waiters++
		ll.mu.Unlock()

		select {
		case <-done:
			ll.mu.Lock()
			ll.waiters--
			ll.mu.Unlock()
			// Loop: read the cached result, or retry after an abandoned run.
		case <-ctx.Done():
			ll.mu.Lock()
			ll.waiters--
			if ll.waiters == 0 && ll.done == done {
				// Last interested caller is gone: stop the computation. The
				// run observes the cancellation at its next checkpoint and
				// resets the cell (unless it finished first, in which case
				// the result is cached anyway).
				cancel()
			}
			ll.mu.Unlock()
			return nil, &interrupt.Error{Stage: "core: least-model wait", Cause: ctx.Err()}
		}
	}
}

// Query evaluates a conjunctive query against the component's least model
// and returns one binding per solution (see Model.Query).
func (e *Engine) Query(comp string, q ast.Query) ([]Binding, error) {
	return e.QueryCtx(context.Background(), comp, q)
}

// QueryCtx is Query with cooperative cancellation of the underlying
// least-model computation. Match enumeration over an already-materialised
// model is not interruptible (it is linear in the model and fast); the
// fixpoint is the unbounded part.
func (e *Engine) QueryCtx(ctx context.Context, comp string, q ast.Query) ([]Binding, error) {
	m, err := e.LeastModelCtx(ctx, comp)
	if err != nil {
		return nil, err
	}
	return m.Query(q), nil
}

// AssumptionFreeModels enumerates the assumption-free models in the
// component (Definition 7). On ErrBudget the models found before the
// budget ran out are returned alongside the error.
func (e *Engine) AssumptionFreeModels(comp string, opts stable.Options) ([]*Model, error) {
	return e.AssumptionFreeModelsCtx(context.Background(), comp, opts)
}

// AssumptionFreeModelsCtx is AssumptionFreeModels with cooperative
// cancellation: a cancelled or expired context stops the search within one
// DFS checkpoint and returns the (possibly empty, always non-nil) partial
// model set alongside an interrupt.Error.
func (e *Engine) AssumptionFreeModelsCtx(ctx context.Context, comp string, opts stable.Options) ([]*Model, error) {
	v, err := e.View(comp)
	if err != nil {
		return nil, err
	}
	ms, enumErr := stable.AssumptionFreeModelsCtx(ctx, v, opts)
	if enumErr != nil && !partialEnumErr(enumErr) {
		return nil, enumErr
	}
	return wrapModels(v, ms), enumErr
}

// StableModels enumerates the stable models in the component — the maximal
// assumption-free models (Definition 9). On ErrBudget the maximal models
// of the truncated enumeration are returned alongside the error.
func (e *Engine) StableModels(comp string, opts stable.Options) ([]*Model, error) {
	return e.StableModelsCtx(context.Background(), comp, opts)
}

// StableModelsCtx is StableModels with cooperative cancellation and the
// same partial-result contract as AssumptionFreeModelsCtx.
func (e *Engine) StableModelsCtx(ctx context.Context, comp string, opts stable.Options) ([]*Model, error) {
	v, err := e.View(comp)
	if err != nil {
		return nil, err
	}
	ms, enumErr := stable.StableModelsCtx(ctx, v, opts)
	if enumErr != nil && !partialEnumErr(enumErr) {
		return nil, enumErr
	}
	return wrapModels(v, ms), enumErr
}

// StableModelsParallel enumerates the stable models with a worker pool
// (see stable.AssumptionFreeModelsParallel for the exact semantics of the
// shared budgets). On ErrBudget the maximal models of the truncated
// enumeration are returned alongside the error, exactly as with the
// sequential StableModels.
func (e *Engine) StableModelsParallel(comp string, opts stable.ParallelOptions) ([]*Model, error) {
	return e.StableModelsParallelCtx(context.Background(), comp, opts)
}

// StableModelsParallelCtx is StableModelsParallel with cooperative
// cancellation: workers stop on the context's cancellation and the partial
// model set collected so far is returned alongside an interrupt.Error.
func (e *Engine) StableModelsParallelCtx(ctx context.Context, comp string, opts stable.ParallelOptions) ([]*Model, error) {
	v, err := e.View(comp)
	if err != nil {
		return nil, err
	}
	ms, enumErr := stable.StableModelsParallelCtx(ctx, v, opts)
	if enumErr != nil && !partialEnumErr(enumErr) {
		return nil, enumErr
	}
	return wrapModels(v, ms), enumErr
}

// partialEnumErr reports whether an enumeration error carries partial
// results (budget exhaustion or interruption) rather than failure.
func partialEnumErr(err error) bool {
	return errors.Is(err, stable.ErrBudget) || errors.Is(err, interrupt.ErrInterrupted)
}

func wrapModels(v *eval.View, ms []*interp.Interp) []*Model {
	out := make([]*Model, len(ms))
	for i, m := range ms {
		out[i] = &Model{view: v, in: m}
	}
	return out
}

// InterpFromLiterals builds a Model-shaped interpretation from AST
// literals for use with CheckModel and CheckAssumptionFree. Every atom
// must be in the (relevant) Herbrand base.
func (e *Engine) InterpFromLiterals(comp string, lits []ast.Literal) (*Model, error) {
	v, err := e.View(comp)
	if err != nil {
		return nil, err
	}
	in, err := interp.FromLiterals(e.gp.Tab, lits)
	if err != nil {
		return nil, err
	}
	return &Model{view: v, in: in}, nil
}

// CheckModel reports whether m satisfies Definition 3 in m's component,
// with a reason when it does not.
func (e *Engine) CheckModel(m *Model) (bool, string) {
	bad, why := m.view.ModelViolation(m.in)
	return !bad, why
}

// CheckAssumptionFree reports whether m is an assumption-free model
// (Definition 7 / Theorem 1(a)).
func (e *Engine) CheckAssumptionFree(m *Model) bool {
	return m.view.IsAssumptionFree(m.in)
}
