// Package core wires the parser, grounder, evaluator and stable-model
// enumerator into one engine: the paper's primary contribution as a usable
// deductive-database library. The root package ordlog re-exports this API.
package core

import (
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/ground"
	"repro/internal/interp"
	"repro/internal/proof"
	"repro/internal/stable"
)

// Config configures an Engine.
type Config struct {
	// Ground selects grounding mode, depth bound and budgets. The zero
	// value means ground.DefaultOptions().
	Ground ground.Options
}

// Engine holds a grounded ordered program and caches per-component views,
// least models and provers. An Engine is immutable after construction:
// callers that change the source program build a new Engine.
//
// Concurrency contract: an Engine is safe for concurrent use by multiple
// goroutines. Per-component views and least models are memoised with
// singleflight semantics — N goroutines asking for the same component
// compute each artifact exactly once and share the result. The returned
// *Model values (and the interp.Interp they expose) are shared and must be
// treated as read-only; callers that need a private copy clone the
// interpretation. Goal-directed proofs (Prove, ProveExplain, ProveQuery)
// share a memoising prover per component and are serialised per component;
// queries against different components proceed in parallel.
type Engine struct {
	src *ast.OrderedProgram
	gp  *ground.Program

	mu    sync.Mutex
	comps map[int]*compState
}

// compState holds the lazily built per-component artifacts. The sync.Once
// fields give singleflight semantics for the construct-once/read-many
// artifacts; proverMu serialises uses of the memoising (and therefore
// non-reentrant) goal-directed prover.
type compState struct {
	viewOnce sync.Once
	view     *eval.View

	leastOnce sync.Once
	least     *Model
	leastErr  error

	proverMu sync.Mutex
	prover   *proof.Prover
}

// NewEngine grounds the program. The program must be validated (parser
// output always is; hand-built programs need Validate).
func NewEngine(p *ast.OrderedProgram, cfg Config) (*Engine, error) {
	opts := cfg.Ground
	zero := ground.Options{}
	if opts == zero {
		opts = ground.DefaultOptions()
	}
	gp, err := ground.Ground(p, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{src: p, gp: gp, comps: make(map[int]*compState)}, nil
}

// comp returns the shared per-component state, creating it on first use.
func (e *Engine) comp(i int) *compState {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.comps[i]
	if !ok {
		st = &compState{}
		e.comps[i] = st
	}
	return st
}

// resolve maps a component name ("" = DefaultComponent) to its position.
func (e *Engine) resolve(comp string) (int, error) {
	if comp == "" {
		var err error
		comp, err = e.DefaultComponent()
		if err != nil {
			return -1, err
		}
	}
	i, ok := e.src.ComponentIndex(comp)
	if !ok {
		return -1, fmt.Errorf("core: unknown component %q", comp)
	}
	return i, nil
}

// Source returns the source program.
func (e *Engine) Source() *ast.OrderedProgram { return e.src }

// Grounded returns the ground program.
func (e *Engine) Grounded() *ground.Program { return e.gp }

// NumGroundRules returns the number of ground rule instances.
func (e *Engine) NumGroundRules() int { return len(e.gp.Rules) }

// NumAtoms returns the size of the (relevant) Herbrand base.
func (e *Engine) NumAtoms() int { return e.gp.Tab.Len() }

// DefaultComponent picks the component a query without an explicit target
// refers to: the unique minimal element of the order (the most specific
// component, the paper's "myself" level); if the order has several minimal
// elements, the implicit component "main" when present. Otherwise an error.
func (e *Engine) DefaultComponent() (string, error) {
	var minimal []string
	for i, c := range e.src.Components {
		isMin := true
		for j := range e.src.Components {
			if e.src.Less(j, i) {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, c.Name)
		}
	}
	if len(minimal) == 1 {
		return minimal[0], nil
	}
	for _, n := range minimal {
		if n == "main" {
			return n, nil
		}
	}
	return "", fmt.Errorf("core: no unique most specific component (minimal: %v); name one explicitly", minimal)
}

// View returns the cached evaluation view for a component; comp == ""
// selects DefaultComponent. The view is built exactly once per component
// even under concurrent callers and is immutable afterwards.
func (e *Engine) View(comp string) (*eval.View, error) {
	i, err := e.resolve(comp)
	if err != nil {
		return nil, err
	}
	return e.viewAt(i), nil
}

func (e *Engine) viewAt(i int) *eval.View {
	st := e.comp(i)
	st.viewOnce.Do(func() { st.view = eval.NewView(e.gp, i) })
	return st.view
}

// LeastModel computes the least model of the program in the component
// (lfp of the ordered immediate transformation, Theorem 1(b)). Results are
// cached per component with singleflight semantics; callers must not
// mutate the returned model's interpretation.
func (e *Engine) LeastModel(comp string) (*Model, error) {
	i, err := e.resolve(comp)
	if err != nil {
		return nil, err
	}
	st := e.comp(i)
	st.leastOnce.Do(func() {
		v := e.viewAt(i)
		in, err := v.LeastModel()
		if err != nil {
			st.leastErr = err
			return
		}
		st.least = &Model{view: v, in: in}
	})
	return st.least, st.leastErr
}

// AssumptionFreeModels enumerates the assumption-free models in the
// component (Definition 7).
func (e *Engine) AssumptionFreeModels(comp string, opts stable.Options) ([]*Model, error) {
	v, err := e.View(comp)
	if err != nil {
		return nil, err
	}
	ms, err := stable.AssumptionFreeModels(v, opts)
	if err != nil {
		return nil, err
	}
	return wrapModels(v, ms), nil
}

// StableModels enumerates the stable models in the component — the maximal
// assumption-free models (Definition 9).
func (e *Engine) StableModels(comp string, opts stable.Options) ([]*Model, error) {
	v, err := e.View(comp)
	if err != nil {
		return nil, err
	}
	ms, err := stable.StableModels(v, opts)
	if err != nil {
		return nil, err
	}
	return wrapModels(v, ms), nil
}

// StableModelsParallel enumerates the stable models with a worker pool
// (see stable.AssumptionFreeModelsParallel for the exact semantics of the
// shared budgets).
func (e *Engine) StableModelsParallel(comp string, opts stable.ParallelOptions) ([]*Model, error) {
	v, err := e.View(comp)
	if err != nil {
		return nil, err
	}
	ms, err := stable.StableModelsParallel(v, opts)
	if err != nil {
		return nil, err
	}
	return wrapModels(v, ms), nil
}

func wrapModels(v *eval.View, ms []*interp.Interp) []*Model {
	out := make([]*Model, len(ms))
	for i, m := range ms {
		out[i] = &Model{view: v, in: m}
	}
	return out
}

// InterpFromLiterals builds a Model-shaped interpretation from AST
// literals for use with CheckModel and CheckAssumptionFree. Every atom
// must be in the (relevant) Herbrand base.
func (e *Engine) InterpFromLiterals(comp string, lits []ast.Literal) (*Model, error) {
	v, err := e.View(comp)
	if err != nil {
		return nil, err
	}
	in, err := interp.FromLiterals(e.gp.Tab, lits)
	if err != nil {
		return nil, err
	}
	return &Model{view: v, in: in}, nil
}

// CheckModel reports whether m satisfies Definition 3 in m's component,
// with a reason when it does not.
func (e *Engine) CheckModel(m *Model) (bool, string) {
	bad, why := m.view.ModelViolation(m.in)
	return !bad, why
}

// CheckAssumptionFree reports whether m is an assumption-free model
// (Definition 7 / Theorem 1(a)).
func (e *Engine) CheckAssumptionFree(m *Model) bool {
	return m.view.IsAssumptionFree(m.in)
}
