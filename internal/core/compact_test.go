package core_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/stable"
	"repro/internal/wal"
	"repro/internal/workload"
)

// The churn-oracle differential: compaction must be invisible to every
// query surface. Engines configured to compact aggressively (by cadence,
// by dead ratio, and by explicit Compact calls interleaved at random)
// must answer exactly like a fresh engine built from the equivalently
// edited source, after every single operation — and each explicit
// compaction must actually drain the dead set.
func TestChurnCompactDifferential(t *testing.T) {
	const comps, nconst = 3, 3
	programs := 200
	if testing.Short() {
		programs = 40
	}
	ctx := context.Background()
	for seed := 0; seed < programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + seed)))
			prog := workload.RandomOrderedDatalog(rng, comps, nconst)
			shadow := cloneShadow(t, prog)
			// Alternate the trigger per seed: count-driven, ratio-driven,
			// or explicit-only, so all three compaction paths see churn.
			cfg := core.Config{}
			switch seed % 3 {
			case 0:
				cfg.CompactEvery = 2 + rng.Intn(3)
			case 1:
				cfg.CompactRatio = 0.01
			}
			eng, err := core.NewEngine(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			names := make([]string, len(prog.Components))
			for i, c := range prog.Components {
				names[i] = c.Name
			}
			var history []string
			var snap *core.Snapshot
			var fresh *core.Engine
			nops := 4 + rng.Intn(4)
			for op := 0; op < nops; op++ {
				o := randomOp(rng, comps, nconst)
				history = append(history, o.String())
				if o.retract {
					snap, err = eng.Retract(ctx, names[o.comp], []ast.Literal{o.lit})
				} else {
					snap, err = eng.Update(ctx, names[o.comp], []ast.Literal{o.lit})
				}
				if err != nil {
					t.Fatalf("after %v: %v", history, err)
				}
				if rng.Intn(3) == 0 {
					history = append(history, "compact")
					snap, err = eng.Compact(ctx)
					if err != nil {
						t.Fatalf("after %v: %v", history, err)
					}
					if n := snap.NumDeadRules(); n != 0 {
						t.Fatalf("after %v: %d dead rules survived compaction", history, n)
					}
				}
				applyShadowOp(shadow, o)
				fresh, err = core.NewEngine(cloneShadow(t, shadow), core.Config{})
				if err != nil {
					t.Fatalf("shadow rebuild after %v: %v", history, err)
				}
				for _, name := range names {
					got, err := snap.LeastModel(name)
					if err != nil {
						t.Fatalf("after %v, comp %s: %v", history, name, err)
					}
					want, err := fresh.LeastModel(name)
					if err != nil {
						t.Fatalf("after %v, comp %s (fresh): %v", history, name, err)
					}
					if got.String() != want.String() {
						t.Fatalf("least model diverged after %v in %s:\ncompacting: %s\nrebuild:    %s",
							history, name, got, want)
					}
				}
			}
			if snap == nil {
				return
			}
			// A final compaction, then the enumeration semantics too.
			snap, err = eng.Compact(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if n := snap.NumDeadRules(); n != 0 {
				t.Fatalf("final compaction left %d dead rules", n)
			}
			for _, name := range names {
				gotAF, errG := snap.AssumptionFreeModels(name, stable.Options{})
				wantAF, errW := fresh.AssumptionFreeModels(name, stable.Options{})
				if g, w := diffModelSet(t, gotAF, errG), diffModelSet(t, wantAF, errW); g != w {
					t.Fatalf("AF models diverged after %v in %s:\ncompacting: %s\nrebuild:    %s",
						history, name, g, w)
				}
				gotSt, errG := snap.StableModels(name, stable.Options{})
				wantSt, errW := fresh.StableModels(name, stable.Options{})
				if g, w := diffModelSet(t, gotSt, errG), diffModelSet(t, wantSt, errW); g != w {
					t.Fatalf("stable models diverged after %v in %s:\ncompacting: %s\nrebuild:    %s",
						history, name, g, w)
				}
			}
		})
	}
}

// Count-driven compaction must bound the carried history under toggle
// churn: asserting and retracting the same fact forever collapses to at
// most one event per fact, however many updates ran.
func TestCompactEveryBoundsHistory(t *testing.T) {
	ctx := context.Background()
	eng, err := core.NewEngine(tenantProgram(t, "a"), core.Config{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	var snap *core.Snapshot
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			snap, err = eng.Update(ctx, "main", []ast.Literal{lit(t, "p(churn)")})
		} else {
			snap, err = eng.Retract(ctx, "main", []ast.Literal{lit(t, "p(churn)")})
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// 40 toggles over one fact: an uncompacted log would carry 40 events.
	// With CompactEvery=4 at most the last few updates since the newest
	// compaction survive uncollapsed.
	if n := snap.NumLogEvents(); n >= 8 {
		t.Fatalf("carried history grew to %d events under toggle churn (compaction not bounding it)", n)
	}
	if n := snap.NumDeadRules(); n >= 8 {
		t.Fatalf("dead set grew to %d under toggle churn", n)
	}
}

// Ratio-driven compaction: with a tiny threshold, any retract that kills
// instances triggers a compacting publish, so the published snapshot's
// dead set is always empty.
func TestCompactRatioDrainsDeadSet(t *testing.T) {
	ctx := context.Background()
	eng, err := core.NewEngine(tenantProgram(t, "a", "b", "c"), core.Config{CompactRatio: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"p(a)", "p(b)", "p(c)"} {
		snap, err := eng.Retract(ctx, "main", []ast.Literal{lit(t, f)})
		if err != nil {
			t.Fatal(err)
		}
		if n := snap.NumDeadRules(); n != 0 {
			t.Fatalf("retract %s published %d dead rules despite ratio trigger", f, n)
		}
	}
	m, err := eng.Current().LeastModel("main")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.NewEngine(tenantProgram(t), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wm, err := want.Current().LeastModel("main")
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != wm.String() {
		t.Fatalf("after retracting everything: %s, want %s", m, wm)
	}
}

// Explicit Compact republishes the same version — logically nothing
// changed — and afterwards the in-memory history no longer reconstructs
// older versions: on a memory-only engine they are evicted, while the
// current version still reads fine.
func TestCompactSameVersionAndMemoryFloor(t *testing.T) {
	ctx := context.Background()
	eng, err := core.NewEngine(tenantProgram(t, "a"), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Update(ctx, "main", []ast.Literal{lit(t, fmt.Sprintf("p(x%d)", i))}); err != nil {
			t.Fatal(err)
		}
	}
	before := eng.Current()
	wantModel := leastStr(t, before)
	// Older versions reconstruct from memory before the compaction…
	if _, err := eng.AsOf(1); err != nil {
		t.Fatalf("AsOf(1) before compact: %v", err)
	}
	snap, err := eng.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != before.Version() {
		t.Fatalf("compaction moved the version: v%d -> v%d", before.Version(), snap.Version())
	}
	if got := leastStr(t, snap); got != wantModel {
		t.Fatalf("compaction changed the model:\n%s\nwant:\n%s", got, wantModel)
	}
	// …and are evicted after it (no WAL to fall back to). AsOf(1) was
	// cached by the earlier read, so probe v2, which never materialised.
	if _, err := eng.AsOf(2); !errors.Is(err, core.ErrVersionEvicted) {
		t.Fatalf("AsOf(2) after compact: got %v, want ErrVersionEvicted", err)
	}
	if cur, err := eng.AsOf(snap.Version()); err != nil || cur.Version() != snap.Version() {
		t.Fatalf("AsOf(current) after compact: %v", err)
	}
	// Updates continue normally from a compacted snapshot.
	next, err := eng.Update(ctx, "main", []ast.Literal{lit(t, "p(after)")})
	if err != nil {
		t.Fatal(err)
	}
	if next.Version() != snap.Version()+1 {
		t.Fatalf("post-compact update published v%d, want v%d", next.Version(), snap.Version()+1)
	}
}

// On a durable engine the compaction floor is not an eviction horizon:
// versions below memBase fall through to the WAL and reconstruct from
// checkpoint + replay.
func TestCompactAsOfFallsThroughToWAL(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	eng, err := core.NewEngine(tenantProgram(t, "a"), core.Config{CompactEvery: 2},
		core.WithDurability(dir), core.WithDurableName("tn"),
		core.WithCheckpointEvery(1), core.WithSync(wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	want := []string{leastStr(t, eng.Current())}
	for i := 0; i < 6; i++ {
		snap, err := eng.Update(ctx, "main", []ast.Literal{lit(t, fmt.Sprintf("p(x%d)", i))})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, leastStr(t, snap))
	}
	// CompactEvery=2 has advanced the floor past the early versions; every
	// one of them must still read identically through the disk path.
	for v := uint64(0); v <= 6; v++ {
		snap, err := eng.AsOf(v)
		if err != nil {
			t.Fatalf("AsOf(%d) on compacting durable engine: %v", v, err)
		}
		if got := leastStr(t, snap); got != want[v] {
			t.Fatalf("AsOf(%d) diverged:\n%s\nwant:\n%s", v, got, want[v])
		}
	}
}

// The retention cross-feature regression: once KeepCheckpoints prunes the
// checkpoints (and the segments they cover) that a version's replay
// needs, AsOf must report ErrVersionEvicted — never a partial replay —
// while versions inside the retained window still reconstruct.
func TestAsOfEvictedByRetention(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	eng, err := core.NewEngine(tenantProgram(t, "a"), core.Config{},
		core.WithDurability(dir), core.WithDurableName("tn"),
		core.WithCheckpointEvery(1), core.WithSync(wal.SyncAlways),
		core.WithRotateRecords(1), core.WithKeepCheckpoints(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	want := map[uint64]string{}
	var last uint64
	for i := 0; i < 6; i++ {
		snap, err := eng.Update(ctx, "main", []ast.Literal{lit(t, fmt.Sprintf("p(x%d)", i))})
		if err != nil {
			t.Fatal(err)
		}
		last = snap.Version()
		want[last] = leastStr(t, snap)
	}
	// Compact so the in-memory history cannot mask the pruned WAL: reads
	// below the floor must go to disk and meet the retention horizon.
	if _, err := eng.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AsOf(1); !errors.Is(err, core.ErrVersionEvicted) {
		t.Fatalf("AsOf(1) with pruned history: got %v, want ErrVersionEvicted", err)
	}
	// The newest retained checkpoint covers the recent versions.
	for v := last - 1; v <= last; v++ {
		snap, err := eng.AsOf(v)
		if err != nil {
			t.Fatalf("AsOf(%d) inside the retained window: %v", v, err)
		}
		if got := leastStr(t, snap); got != want[v] {
			t.Fatalf("AsOf(%d) diverged:\n%s\nwant:\n%s", v, got, want[v])
		}
	}
	// Retention actually pruned, and what is left verifies end to end.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := wal.VerifyDir(dir)
	if err != nil {
		t.Fatalf("verify after retention pruning: %v", err)
	}
	if res.FirstSeq == 1 {
		t.Fatal("retention never pruned a segment (FirstSeq still 1)")
	}
	if res.Checkpoints > 2 {
		t.Fatalf("%d checkpoints retained, want <= 2", res.Checkpoints)
	}
}

// Rotation + crash + recovery: a durable engine rotating every record
// must recover from a torn tail in its final segment exactly like the
// single-file layout does, and keep writing on the same chain.
func TestRotatedRecoverRoundtrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	eng, err := core.NewEngine(tenantProgram(t, "a"), core.Config{},
		core.WithDurability(dir), core.WithDurableName("tn"),
		core.WithCheckpointEvery(2), core.WithSync(wal.SyncAlways),
		core.WithRotateRecords(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := eng.Update(ctx, "main", []ast.Literal{lit(t, fmt.Sprintf("p(x%d)", i))}); err != nil {
			t.Fatal(err)
		}
	}
	wantModel := leastStr(t, eng.Current())
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := core.Recover(ctx, dir, core.Config{}, core.WithSync(wal.SyncAlways), core.WithRotateRecords(2))
	if err != nil {
		t.Fatal(err)
	}
	if v := rec.Current().Version(); v != 5 {
		t.Fatalf("recovered v%d, want 5", v)
	}
	if got := leastStr(t, rec.Current()); got != wantModel {
		t.Fatalf("recovered model diverged:\n%s\nwant:\n%s", got, wantModel)
	}
	// Keep writing: the chain continues across the recovered segment tip.
	if snap, err := rec.Update(ctx, "main", []ast.Literal{lit(t, "p(after)")}); err != nil || snap.Version() != 6 {
		t.Fatalf("post-recovery update: v%v err=%v", snap.Version(), err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := wal.VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments < 3 {
		t.Fatalf("rotation produced only %d segments", res.Segments)
	}
	if res.Records != 6 || res.Version != 6 {
		t.Fatalf("verify after rotated recovery = %+v", res)
	}
}
