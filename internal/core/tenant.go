package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ast"
	"repro/internal/batch"
)

// Version-pinning errors of Tenant.At. Both are plain sentinels so a
// serving layer can map them to distinct wire statuses (unknown version vs
// version evicted from retention).
var (
	// ErrVersionUnknown reports a version the tenant has never published.
	ErrVersionUnknown = errors.New("core: snapshot version never published")
	// ErrVersionEvicted reports a version that existed but has aged out of
	// the tenant's retention ring.
	ErrVersionEvicted = errors.New("core: snapshot version evicted from retention")
)

// Tenant couples one named Engine with its serving state: a bounded
// admission semaphore and a ring of recently published snapshots, so a
// network client can pin several requests to one version even though other
// clients keep writing. Writes through Tenant.Update/Retract retain the
// snapshot they publish; reads resolve a version with At or take the tip
// with Current.
type Tenant struct {
	name string
	eng  *Engine
	sem  *batch.Semaphore

	mu       sync.Mutex
	retained []*Snapshot // ascending version order, bounded by retain
	retain   int
}

// Name returns the tenant's registry name.
func (t *Tenant) Name() string { return t.name }

// Engine returns the tenant's engine.
func (t *Tenant) Engine() *Engine { return t.eng }

// Acquire takes an admission slot, waiting until one frees or ctx dies,
// and returns the release function. The error contract is that of
// batch.Semaphore.Acquire: an interrupt.Error once ctx is cancelled or
// past its deadline, so a queued request never outlives its own budget.
func (t *Tenant) Acquire(ctx context.Context) (release func(), err error) {
	if err := t.sem.Acquire(ctx); err != nil {
		return nil, err
	}
	return t.sem.Release, nil
}

// TryAcquire takes an admission slot without blocking; the second return
// reports success. On success the first return releases the slot.
func (t *Tenant) TryAcquire() (release func(), ok bool) {
	if !t.sem.TryAcquire() {
		return nil, false
	}
	return t.sem.Release, true
}

// InFlight returns the number of admission slots currently held.
func (t *Tenant) InFlight() int { return t.sem.InFlight() }

// Current returns the engine's current snapshot — the freshest version.
func (t *Tenant) Current() *Snapshot { return t.eng.Current() }

// At resolves a pinned snapshot version: the current version, or any older
// version still in the retention ring. It fails with ErrVersionUnknown for
// versions never published (ahead of the tip) and ErrVersionEvicted for
// versions that have aged out.
func (t *Tenant) At(version uint64) (*Snapshot, error) {
	cur := t.eng.Current()
	if version == cur.Version() {
		return cur, nil
	}
	if version > cur.Version() {
		return nil, fmt.Errorf("%w: v%d is ahead of current v%d", ErrVersionUnknown, version, cur.Version())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.retained {
		if s.Version() == version {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w: v%d (retaining the last %d versions)", ErrVersionEvicted, version, t.retain)
}

// AsOf resolves a time-travel snapshot: the retention ring when the
// version is still pinned there (same fast path as At), otherwise the
// engine's AsOf reconstruction through the update history and — on a
// durable tenant — the WAL. The error contract matches At's:
// ErrVersionUnknown ahead of the tip, ErrVersionEvicted when the version
// predates every reachable source.
func (t *Tenant) AsOf(version uint64) (*Snapshot, error) {
	s, err := t.At(version)
	if err == nil {
		return s, nil
	}
	if !errors.Is(err, ErrVersionEvicted) {
		return nil, err
	}
	return t.eng.AsOf(version)
}

// Versions returns the pinnable versions, ascending. The current version
// is always present.
func (t *Tenant) Versions() []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint64, len(t.retained))
	for i, s := range t.retained {
		out[i] = s.Version()
	}
	return out
}

// Update asserts ground facts in the component through the engine (one
// atomic snapshot bump, see Engine.Update) and retains the published
// version for pinned reads.
func (t *Tenant) Update(ctx context.Context, comp string, facts []ast.Literal) (*Snapshot, error) {
	s, err := t.eng.Update(ctx, comp, facts)
	if err != nil {
		return nil, err
	}
	t.retainSnap(s)
	return s, nil
}

// Retract removes ground facts from the component through the engine and
// retains the published version for pinned reads.
func (t *Tenant) Retract(ctx context.Context, comp string, facts []ast.Literal) (*Snapshot, error) {
	s, err := t.eng.Retract(ctx, comp, facts)
	if err != nil {
		return nil, err
	}
	t.retainSnap(s)
	return s, nil
}

// retainSnap inserts s into the retention ring (idempotently — a no-op
// update returns its parent) and evicts the oldest versions past the
// bound. Insertion keeps ascending order even if two writers race between
// publishing and retaining.
func (t *Tenant) retainSnap(s *Snapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := s.Version()
	i := sort.Search(len(t.retained), func(i int) bool { return t.retained[i].Version() >= v })
	if i < len(t.retained) && t.retained[i].Version() == v {
		return
	}
	t.retained = append(t.retained, nil)
	copy(t.retained[i+1:], t.retained[i:])
	t.retained[i] = s
	if len(t.retained) > t.retain {
		over := len(t.retained) - t.retain
		copy(t.retained, t.retained[over:])
		for j := len(t.retained) - over; j < len(t.retained); j++ {
			t.retained[j] = nil
		}
		t.retained = t.retained[:len(t.retained)-over]
	}
}

// Registry is a concurrent map of named tenants: the multi-program serving
// surface of ordlogd. Create/replace/drop hold the write lock only for the
// map mutation — engine construction (grounding) runs outside it, so
// loading one large tenant never blocks traffic to the others.
type Registry struct {
	inflight int
	retain   int

	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// NewRegistry returns an empty registry. Each tenant created through it
// admits at most inflight concurrent requests (<= 0 = unbounded) and
// retains up to retain snapshot versions for pinned reads (<= 0 uses the
// default of 8; the current version is always pinnable regardless).
func NewRegistry(inflight, retain int) *Registry {
	if retain <= 0 {
		retain = 8
	}
	return &Registry{inflight: inflight, retain: retain, tenants: make(map[string]*Tenant)}
}

// Put grounds the program into a fresh engine and publishes it under the
// name, replacing any existing tenant (replaced reports which). The old
// tenant's engine, if any, keeps serving requests that already hold it;
// new lookups see the new one — the same publish-and-abandon discipline as
// snapshots. Construction honours ctx (see NewEngineCtx); on error the
// registry is unchanged.
func (r *Registry) Put(ctx context.Context, name string, p *ast.OrderedProgram, cfg Config, opts ...Option) (t *Tenant, replaced bool, err error) {
	if name == "" {
		return nil, false, fmt.Errorf("core: tenant name must be non-empty")
	}
	eng, err := NewEngineCtx(ctx, p, cfg, opts...)
	if err != nil {
		return nil, false, err
	}
	t, replaced = r.publish(name, eng)
	return t, replaced, nil
}

// publish wraps eng as a tenant and swaps it in under name, closing the
// replaced tenant's engine (if any). Closing matters for durable tenants:
// the old engine shares the new one's WAL directory, and a stale writer
// appending to it would fork the hash chain — after Close its writes fail
// with wal.ErrClosed instead. In-flight reads against the old engine are
// unaffected.
func (r *Registry) publish(name string, eng *Engine) (*Tenant, bool) {
	t := &Tenant{
		name:     name,
		eng:      eng,
		sem:      batch.NewSemaphore(r.inflight),
		retain:   r.retain,
		retained: []*Snapshot{eng.Current()},
	}
	r.mu.Lock()
	old := r.tenants[name]
	r.tenants[name] = t
	r.mu.Unlock()
	if old != nil {
		_ = old.eng.Close()
	}
	return t, old != nil
}

// Attach publishes an already constructed engine — typically one rebuilt
// by core.Recover — under the name, with the same replace semantics as
// Put.
func (r *Registry) Attach(name string, eng *Engine) (t *Tenant, replaced bool, err error) {
	if name == "" {
		return nil, false, fmt.Errorf("core: tenant name must be non-empty")
	}
	if eng == nil {
		return nil, false, fmt.Errorf("core: tenant %q: nil engine", name)
	}
	t, replaced = r.publish(name, eng)
	return t, replaced, nil
}

// Get returns the named tenant.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[name]
	return t, ok
}

// Drop removes the named tenant, reporting whether it existed. Requests
// already holding the tenant finish against it; the engine is garbage once
// they do.
func (r *Registry) Drop(name string) bool {
	r.mu.Lock()
	t, ok := r.tenants[name]
	delete(r.tenants, name)
	r.mu.Unlock()
	if ok {
		_ = t.eng.Close()
	}
	return ok
}

// Close flushes and closes every tenant's write-ahead log (a no-op for
// memory-only tenants), returning the first error. The daemon calls it
// after drain so a graceful shutdown never loses interval-sync appends.
func (r *Registry) Close() error {
	r.mu.RLock()
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.mu.RUnlock()
	var first error
	for _, t := range tenants {
		if err := t.eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Names returns the tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.tenants))
	for n := range r.tenants {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of tenants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}
