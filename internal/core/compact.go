package core

import (
	"context"
	"fmt"

	"repro/internal/obs"
)

// Compaction bounds what incremental updates let accumulate: retracted
// instances carried as per-version dead sets over the pinned prefix, and
// the replayed update history (Snapshot.log) that grows by one event per
// changed fact forever. A compaction re-grounds the effective program —
// the same rebuild the reground fallback performs — so the new snapshot
// starts with an empty dead set and a fresh prefix, and collapses the
// carried history to its net effect (the last event per fact), which is
// what lets the history stay bounded by the number of distinct facts
// ever touched rather than by the number of updates.
//
// The price is time travel: intermediate versions that only the full
// history could reconstruct are forgotten, so the engine's memBase
// advances to the compacted version and AsOf reads below it fall through
// to the WAL (or ErrVersionEvicted on a memory-only engine). See DESIGN
// §14 for the full story.

// needsCompact reports whether publishing child would cross a compaction
// threshold. Called under writeMu on the not-yet-published incremental
// child.
func (e *Engine) needsCompact(child *Snapshot) bool {
	if e.cfg.CompactEvery > 0 && e.sinceCompact+1 >= e.cfg.CompactEvery {
		return true
	}
	if e.cfg.CompactRatio > 0 && len(child.rules) > 0 {
		if float64(len(child.dead))/float64(len(child.rules)) >= e.cfg.CompactRatio {
			return true
		}
	}
	return false
}

// compactChild rebuilds the incremental child as a compact snapshot at
// the same version: fresh grounding of the effective program, empty dead
// set, collapsed history. Called under writeMu before the child is
// published. On error the caller publishes the incremental child instead
// — compaction is an optimisation and must never fail an update that
// already succeeded.
func (e *Engine) compactChild(ctx context.Context, child *Snapshot) (*Snapshot, error) {
	collapsed := collapseLog(child.log)
	compacted, err := e.reground(ctx, child.version, collapsed, child.factLive)
	if err != nil {
		return nil, err
	}
	if obs.On() {
		mCompactRuns.Inc()
		mCompactDead.Add(int64(len(child.dead)))
		mCompactCollapsed.Add(int64(len(child.log) - len(collapsed)))
	}
	return compacted, nil
}

// finishCompact records the bookkeeping of a successful compaction:
// the in-memory history now reconstructs nothing older than version.
func (e *Engine) finishCompact(version uint64) {
	e.sinceCompact = 0
	e.memBase.Store(version)
}

// collapseLog reduces an update history to the last event per
// (component, fact), preserving the order of those surviving events.
// Replaying the collapsed history through effectiveProgram yields the
// same rule set as the full history — per fact only the final
// assert/retract decides presence, and rule order within a component
// does not affect the semantics — so a compacted snapshot answers every
// query identically.
func collapseLog(log []factEvent) []factEvent {
	last := make(map[factKey]int, len(log))
	for i, ev := range log {
		last[factKey{comp: ev.comp, lit: ev.lit.String()}] = i
	}
	out := make([]factEvent, 0, len(last))
	for i, ev := range log {
		if last[factKey{comp: ev.comp, lit: ev.lit.String()}] == i {
			out = append(out, ev)
		}
	}
	return out
}

// Compact forces a compaction of the current snapshot without publishing
// a new version: the state is republished at the same version with an
// empty dead set, a fresh instance prefix and a collapsed history. It is
// the explicit form of the CompactEvery/CompactRatio triggers — useful
// before a long read-mostly phase, and for tests. No WAL record is
// written (the logical state is unchanged); AsOf reads below the current
// version subsequently go through the WAL, exactly as after an automatic
// compaction. Returns the republished snapshot.
func (e *Engine) Compact(ctx context.Context) (*Snapshot, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	parent := e.Current()
	collapsed := collapseLog(parent.log)
	child, err := e.reground(ctx, parent.version, collapsed, parent.factLive)
	if err != nil {
		return nil, fmt.Errorf("core: compact v%d: %w", parent.version, err)
	}
	e.current.Store(child)
	if obs.On() {
		mCompactRuns.Inc()
		mCompactDead.Add(int64(len(parent.dead)))
		mCompactCollapsed.Add(int64(len(parent.log) - len(collapsed)))
	}
	e.finishCompact(child.version)
	if e.trace.Enabled() {
		e.trace.Emit(obs.E("compact",
			obs.F("version", child.version),
			obs.F("dead_dropped", len(parent.dead)),
			obs.F("events_collapsed", len(parent.log)-len(collapsed))))
	}
	return child, nil
}
