package core

import (
	"encoding/json"

	"repro/internal/ast"
)

// ModelJSON is the serialisable form of a model: the true and false ground
// atoms (rendered in the surface syntax) plus component metadata. Undefined
// atoms are the remainder of the relevant Herbrand base.
type ModelJSON struct {
	Component string   `json:"component"`
	True      []string `json:"true"`
	False     []string `json:"false"`
	Undefined []string `json:"undefined,omitempty"`
	Total     bool     `json:"total"`
}

// JSON renders the model for machine consumption. includeUndefined adds
// the undefined portion of the relevant base (can be large).
func (m *Model) JSON(includeUndefined bool) ([]byte, error) {
	out := ModelJSON{Component: m.ComponentName(), Total: m.Total()}
	for _, l := range m.Literals() {
		if l.Neg {
			out.False = append(out.False, l.Atom.String())
		} else {
			out.True = append(out.True, l.Atom.String())
		}
	}
	if includeUndefined {
		tab := m.view.G.Tab
		for _, id := range m.in.Undefined() {
			out.Undefined = append(out.Undefined, tab.Atom(id).String())
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// BindingJSON renders query bindings as an array of name->term objects.
func BindingsJSON(q ast.Query, bs []Binding) ([]byte, error) {
	type row map[string]string
	out := struct {
		Query   string `json:"query"`
		Answers []row  `json:"answers"`
	}{Query: q.String(), Answers: []row{}}
	for _, b := range bs {
		r := make(row, len(b))
		for k, v := range b {
			r[k] = v.String()
		}
		out.Answers = append(out.Answers, r)
	}
	return json.MarshalIndent(out, "", "  ")
}
