// Engine-level cancellation tests: the acceptance criteria of the
// cancellation contract. A deadline mid-enumeration returns ErrInterrupted
// with a non-nil partial model set well within one checkpoint interval; a
// cancelled batch neither blocks nor leaks goroutines; the singleflight
// least-model cache is not poisoned by an abandoned computation.
package core_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/interrupt"
	"repro/internal/parser"
	"repro/internal/stable"
	"repro/internal/transform"
	"repro/internal/workload"
)

// winMoveEngine builds an engine over OV(win-move cycle n); component "c"
// carries the game, the CWA component sits above it.
func winMoveEngine(t *testing.T, n int) *core.Engine {
	t.Helper()
	ov, err := transform.OV("c", workload.WinMove(workload.CycleEdges(n)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ov, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineDeadlinePartialModels is the acceptance test of the contract:
// on a program whose exhaustive (NoPrune) search takes far longer than 2s,
// a 200ms deadline returns ErrInterrupted with a non-nil (possibly empty)
// model set, and the whole call finishes well under 2s.
func TestEngineDeadlinePartialModels(t *testing.T) {
	eng := winMoveEngine(t, 16)
	opts := stable.Options{NoPrune: true, MaxLeaves: 1 << 30}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	ms, err := eng.AssumptionFreeModelsCtx(ctx, "c", opts)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("deadline call took %v, want well under 2s", elapsed)
	}
	if !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to unwrap to context.DeadlineExceeded", err)
	}
	if ms == nil {
		t.Fatalf("nil model slice alongside ErrInterrupted; want non-nil partial set")
	}
	for _, m := range ms {
		if !eng.CheckAssumptionFree(m) {
			t.Errorf("interrupted partial model is not assumption-free")
		}
	}
}

// TestEngineBudgetPartialAgreement: sequential and parallel engine-level
// enumeration agree on the ErrBudget contract — sentinel error, non-nil
// partial model set, every model sound.
func TestEngineBudgetPartialAgreement(t *testing.T) {
	eng := winMoveEngine(t, 8)
	opts := stable.Options{MaxLeaves: 4}

	seq, err := eng.StableModelsCtx(context.Background(), "c", opts)
	if !errors.Is(err, stable.ErrBudget) {
		t.Fatalf("sequential: err = %v, want ErrBudget", err)
	}
	if len(seq) == 0 {
		t.Fatalf("sequential: no partial models alongside ErrBudget")
	}
	for _, m := range seq {
		if !eng.CheckAssumptionFree(m) {
			t.Errorf("sequential: partial model is not assumption-free")
		}
	}

	par, err := eng.StableModelsParallelCtx(context.Background(), "c",
		stable.ParallelOptions{Options: opts, Workers: 4})
	if !errors.Is(err, stable.ErrBudget) {
		t.Fatalf("parallel: err = %v, want ErrBudget", err)
	}
	if par == nil {
		t.Fatalf("parallel: nil model slice alongside ErrBudget; want non-nil partial set")
	}
	for _, m := range par {
		if !eng.CheckAssumptionFree(m) {
			t.Errorf("parallel: partial model is not assumption-free")
		}
	}
}

// TestLeastModelCacheNotPoisoned: a caller with a dead context fails with
// ErrInterrupted, but the singleflight cache stays clean — the next caller
// computes and caches the model as if the abandoned attempt never happened.
func TestLeastModelCacheNotPoisoned(t *testing.T) {
	eng := winMoveEngine(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.LeastModelCtx(ctx, "c"); !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("cancelled caller: err = %v, want ErrInterrupted", err)
	}
	m, err := eng.LeastModel("c")
	if err != nil || m == nil {
		t.Fatalf("after abandoned attempt: LeastModel = %v, %v; want the model", m, err)
	}
}

// TestLeastModelSingleflightConcurrentWaiters: concurrent callers on the
// same component share one computation; a waiter whose context dies mid-
// wait leaves with ErrInterrupted while the rest still get the model.
func TestLeastModelSingleflightConcurrentWaiters(t *testing.T) {
	eng := winMoveEngine(t, 10)
	liveCtx := context.Background()
	deadCtx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := liveCtx
			if i%2 == 1 {
				ctx = deadCtx
			}
			_, errs[i] = eng.LeastModelCtx(ctx, "c")
		}(i)
	}
	cancel()
	wg.Wait()
	for i, err := range errs {
		if i%2 == 0 {
			if err != nil {
				t.Errorf("live waiter %d: %v", i, err)
			}
		} else if err != nil && !errors.Is(err, interrupt.ErrInterrupted) {
			// A dead-context waiter may still win the race and get the
			// model; if it errors, the error must be the sentinel.
			t.Errorf("cancelled waiter %d: err = %v, want nil or ErrInterrupted", i, err)
		}
	}
}

// TestLeastModelAllCancelNoGoroutineLeak cancels a batched least-model
// computation mid-flight and asserts (under -race in CI) that the call
// returns promptly, reports only nil or ErrInterrupted per item, and that
// every worker and detached singleflight goroutine exits.
func TestLeastModelAllCancelNoGoroutineLeak(t *testing.T) {
	prog := workload.Inheritance(8, 8, 16)
	eng, err := core.NewEngine(prog, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	comps := make([]string, 0, 8)
	for lvl := 0; lvl < 8; lvl++ {
		comps = append(comps, "lvl"+string(rune('0'+lvl)))
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	models, errs := eng.LeastModelAllCtx(ctx, comps, batch.Options{Workers: 4})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled batch took %v, want prompt return", elapsed)
	}
	if len(models) != len(comps) || len(errs) != len(comps) {
		t.Fatalf("got %d models / %d errors, want %d positional slots", len(models), len(errs), len(comps))
	}
	for i, err := range errs {
		if err != nil && !errors.Is(err, interrupt.ErrInterrupted) {
			t.Errorf("item %d: err = %v, want nil or ErrInterrupted", i, err)
		}
		if err == nil && models[i] == nil {
			t.Errorf("item %d: nil model with nil error", i)
		}
	}

	// The detached singleflight computations observe the cancellation at
	// their next checkpoint; give them a bounded grace period to exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after cancelled batch\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueryBatchCtxPreCancelled: a batch under an already-dead context
// reports an indexed interrupt error for every item and runs nothing.
func TestQueryBatchCtxPreCancelled(t *testing.T) {
	eng := engineOf(t, fig1)
	res, err := parser.Parse("?- fly(X).")
	if err != nil {
		t.Fatal(err)
	}
	q := res.Queries[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []core.QueryRequest{
		{Comp: "arctic", Query: q},
		{Comp: "arctic", Query: q},
		{Comp: "birds", Query: q},
	}
	results := eng.QueryBatchCtx(ctx, reqs, batch.Options{Workers: 2})
	for i, r := range results {
		if !errors.Is(r.Err, interrupt.ErrInterrupted) {
			t.Errorf("item %d: err = %v, want ErrInterrupted", i, r.Err)
		}
		if r.Err != nil && !strings.Contains(r.Err.Error(), "item") {
			t.Errorf("item %d: error %q does not carry its item index", i, r.Err)
		}
	}
}

// TestProveCtxCancelled: goal-directed proving under a dead context fails
// with the sentinel both while queueing for the prover slot and inside the
// goal recursion.
func TestProveCtxCancelled(t *testing.T) {
	eng := engineOf(t, fig1)
	lit, err := parser.ParseLiteral("fly(pigeon)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.ProveCtx(ctx, "arctic", lit); !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("ProveCtx: err = %v, want ErrInterrupted", err)
	}
	// The prover slot must have been released (or never taken): a live
	// context proves normally afterwards.
	ok, err := eng.Prove("arctic", lit)
	if err != nil || !ok {
		t.Fatalf("Prove after cancelled attempt = %v, %v; want true", ok, err)
	}
}
