package core_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/interrupt"
	"repro/internal/parser"
	"repro/internal/stable"
	"repro/internal/workload"
)

// The goal-directed differential contract: for every goal, answers from
// the magic-set slice must be byte-identical to answers from the full
// grounding — for least-model queries and proofs through the engine's
// goal-directed path, and for the assumption-free/stable model families of
// an engine grounded with ground.Options.Goal directly.

func mustQuery(t *testing.T, src string) ast.Query {
	t.Helper()
	res, err := parser.Parse("?- " + src + ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 1 {
		t.Fatalf("query %q: want exactly one goal", src)
	}
	return res.Queries[0]
}

// answerSet renders bindings order-independently.
func answerSet(bs []core.Binding) string {
	out := make([]string, len(bs))
	for i, b := range bs {
		parts := make([]string, 0, len(b))
		for v, term := range b {
			parts = append(parts, v+"="+term.String())
		}
		sort.Strings(parts)
		out[i] = "{" + strings.Join(parts, ",") + "}"
	}
	sort.Strings(out)
	return strings.Join(out, " ")
}

// projectedAnswers renders a model family as the deduplicated set of
// per-model answer sets for the query: exactly the part of the enumeration
// a goal can observe, which is what slicing must preserve.
func projectedAnswers(t *testing.T, ms []*core.Model, err error, q ast.Query) string {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[string]bool, len(ms))
	for _, m := range ms {
		set[answerSet(m.Query(q))] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " || ")
}

// chainSource builds the right-recursive transitive closure over an
// n-edge chain with an exception component and a disconnected junk
// component — the program family where the adornment actually restricts
// bindings (path^bf), unlike the head-unbound corpus rules.
func chainSource(t *testing.T, n, excAt int) *ast.OrderedProgram {
	t.Helper()
	var b strings.Builder
	b.WriteString("module base {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  edge(c%d, c%d).\n", i, i+1)
	}
	b.WriteString("  path(X, Y) :- edge(X, Y).\n")
	b.WriteString("  path(X, Z) :- path(X, Y), edge(Y, Z).\n")
	b.WriteString("}\n")
	fmt.Fprintf(&b, "module exc extends base {\n  -path(X, c%d) :- edge(X, c%d).\n}\n", excAt, excAt)
	b.WriteString("module junk {\n  jedge(c0, c1).\n  jpath(X, Y) :- jedge(X, Y).\n}\n")
	p, err := parser.ParseProgram(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func diffGoals(t *testing.T, prog *ast.OrderedProgram, queries []string, proofs []string) {
	t.Helper()
	ctx := context.Background()
	full, err := core.NewEngine(prog, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := core.NewEngine(prog, core.Config{GoalDirected: true})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(prog.Components))
	for i, c := range prog.Components {
		names[i] = c.Name
	}
	for _, qs := range queries {
		q := mustQuery(t, qs)
		// An engine grounded with a fixed Ground.Goal evaluates everything —
		// least, AF and stable models — over the slice; its projected
		// model families must match the full engine's.
		opts := ground.DefaultOptions()
		opts.Goal = q.Body
		slicedEng, err := core.NewEngine(prog, core.Config{Ground: opts})
		if err != nil {
			t.Fatalf("goal %s: sliced engine: %v", qs, err)
		}
		for _, name := range names {
			want, err := full.Current().QueryCtx(ctx, name, q)
			if err != nil {
				t.Fatalf("goal %s in %s: full query: %v", qs, name, err)
			}
			got, err := gd.Current().QueryCtx(ctx, name, q)
			if err != nil {
				t.Fatalf("goal %s in %s: goal-directed query: %v", qs, name, err)
			}
			if w, g := answerSet(want), answerSet(got); w != g {
				t.Errorf("goal %s in %s: least answers diverged\nfull:  %s\nslice: %s", qs, name, w, g)
			}
			wantAF, errW := full.Current().AssumptionFreeModels(name, stable.Options{})
			gotAF, errG := slicedEng.Current().AssumptionFreeModels(name, stable.Options{})
			if w, g := projectedAnswers(t, wantAF, errW, q), projectedAnswers(t, gotAF, errG, q); w != g {
				t.Errorf("goal %s in %s: AF projections diverged\nfull:  %s\nslice: %s", qs, name, w, g)
			}
			wantSt, errW := full.Current().StableModels(name, stable.Options{})
			gotSt, errG := slicedEng.Current().StableModels(name, stable.Options{})
			if w, g := projectedAnswers(t, wantSt, errW, q), projectedAnswers(t, gotSt, errG, q); w != g {
				t.Errorf("goal %s in %s: stable projections diverged\nfull:  %s\nslice: %s", qs, name, w, g)
			}
		}
	}
	for _, ps := range proofs {
		l, err := parser.ParseLiteral(ps)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			want, err := full.Current().ProveCtx(ctx, name, l)
			if err != nil {
				t.Fatalf("prove %s in %s: full: %v", ps, name, err)
			}
			got, err := gd.Current().ProveCtx(ctx, name, l)
			if err != nil {
				t.Fatalf("prove %s in %s: goal-directed: %v", ps, name, err)
			}
			if want != got {
				t.Errorf("prove %s in %s: full %v, goal-directed %v", ps, name, want, got)
			}
		}
	}
}

func TestGoalDirectedDifferentialCorpus(t *testing.T) {
	const comps, nconst = 3, 3
	programs := 200
	if testing.Short() {
		programs = 40
	}
	queries := []string{
		"p0(c0)", "p1(X)", "-p1(c1)", "e(c0, X)", "p0(X), e(X, Y)",
	}
	proofs := []string{"p0(c0)", "-p1(c1)", "p2(c2)", "e(c0, c1)"}
	for seed := 0; seed < programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))
			prog := workload.RandomOrderedDatalog(rng, comps, nconst)
			diffGoals(t, prog, queries, proofs)
		})
	}
}

func TestGoalDirectedDifferentialChain(t *testing.T) {
	sizes := []struct{ n, excAt int }{{4, 2}, {6, 6}, {8, 5}}
	if testing.Short() {
		sizes = sizes[:2]
	}
	for _, sz := range sizes {
		sz := sz
		t.Run(fmt.Sprintf("n%d_exc%d", sz.n, sz.excAt), func(t *testing.T) {
			t.Parallel()
			prog := chainSource(t, sz.n, sz.excAt)
			queries := []string{
				fmt.Sprintf("path(c0, c%d)", sz.n),
				"path(c0, X)",
				"path(c1, X)",
				"path(X, Y)",
				"path(c0, X), edge(X, Y)",
				fmt.Sprintf("-path(c0, c%d)", sz.excAt),
			}
			proofs := []string{
				"path(c0, c1)",
				fmt.Sprintf("path(c0, c%d)", sz.n),
				fmt.Sprintf("-path(c0, c%d)", sz.excAt),
				fmt.Sprintf("path(c1, c%d)", sz.n),
				"path(c2, c0)",
				"jpath(c0, c1)",
			}
			diffGoals(t, prog, queries, proofs)
		})
	}
}

// After an update, goal-directed answers must reflect the new fact base
// (the per-snapshot slice cache starts empty and the slice grounds from
// the effective program), while a pinned pre-update snapshot keeps
// answering from its own version.
func TestGoalDirectedUpdateInvalidation(t *testing.T) {
	ctx := context.Background()
	prog := chainSource(t, 4, 2)
	gd, err := core.NewEngine(prog, core.Config{GoalDirected: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.NewEngine(chainSource(t, 4, 2), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, "path(c0, X)")
	pinned := gd.Current()
	before, err := pinned.QueryCtx(ctx, "base", q)
	if err != nil {
		t.Fatal(err)
	}
	lit, err := parser.ParseLiteral("edge(c4, c9)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gd.Update(ctx, "base", []ast.Literal{lit}); err != nil {
		t.Fatal(err)
	}
	if _, err := full.Update(ctx, "base", []ast.Literal{lit}); err != nil {
		t.Fatal(err)
	}
	after, err := gd.Current().QueryCtx(ctx, "base", q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Current().QueryCtx(ctx, "base", q)
	if err != nil {
		t.Fatal(err)
	}
	if answerSet(after) != answerSet(want) {
		t.Errorf("post-update answers diverged\nfull:  %s\nslice: %s", answerSet(want), answerSet(after))
	}
	if answerSet(after) == answerSet(before) {
		t.Error("update did not change the answer set — the invalidation case is vacuous")
	}
	// The pinned snapshot still answers from the pre-update fact base.
	pinnedAgain, err := pinned.QueryCtx(ctx, "base", q)
	if err != nil {
		t.Fatal(err)
	}
	if answerSet(pinnedAgain) != answerSet(before) {
		t.Errorf("pinned snapshot answers changed after update\nbefore: %s\nafter:  %s", answerSet(before), answerSet(pinnedAgain))
	}
}

// Cancellation contract: a cancelled goal-directed query returns an
// interruption error and leaks no partial slice — the next query with a
// live context recomputes the slice and answers exactly like the full
// path.
func TestGoalDirectedCancellation(t *testing.T) {
	prog := chainSource(t, 30, 15)
	gd, err := core.NewEngine(prog, core.Config{GoalDirected: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.NewEngine(prog, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, "path(c0, X)")
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := gd.Current().QueryCtx(cancelled, "base", q); !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("cancelled goal-directed query: err = %v, want ErrInterrupted", err)
	}
	if _, err := gd.Current().ProveCtx(cancelled, "base", mustLit(t, "path(c0, c30)")); !errors.Is(err, interrupt.ErrInterrupted) {
		t.Fatalf("cancelled goal-directed prove: err = %v, want ErrInterrupted", err)
	}
	ctx := context.Background()
	got, err := gd.Current().QueryCtx(ctx, "base", q)
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	want, err := full.Current().QueryCtx(ctx, "base", q)
	if err != nil {
		t.Fatal(err)
	}
	if answerSet(got) != answerSet(want) {
		t.Errorf("answers after interrupted slice diverged\nfull:  %s\nslice: %s", answerSet(want), answerSet(got))
	}
}

func mustLit(t *testing.T, src string) ast.Literal {
	t.Helper()
	l, err := parser.ParseLiteral(src)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// The batch entry points inherit the goal-directed routing.
func TestGoalDirectedBatch(t *testing.T) {
	prog := chainSource(t, 6, 3)
	gd, err := core.NewEngine(prog, core.Config{GoalDirected: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.NewEngine(prog, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []core.QueryRequest{
		{Comp: "base", Query: mustQuery(t, "path(c0, X)")},
		{Comp: "exc", Query: mustQuery(t, "path(c1, X)")},
		{Comp: "base", Query: mustQuery(t, "path(X, c6)")},
	}
	got := gd.QueryBatch(reqs, batch.Options{})
	want := full.QueryBatch(reqs, batch.Options{})
	for i := range reqs {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("batch[%d]: errs full=%v goal-directed=%v", i, want[i].Err, got[i].Err)
		}
		if g, w := answerSet(got[i].Bindings), answerSet(want[i].Bindings); g != w {
			t.Errorf("batch[%d]: answers diverged\nfull:  %s\nslice: %s", i, w, g)
		}
	}
}

// Rejected configurations.
func TestGoalDirectedConfigValidation(t *testing.T) {
	prog := chainSource(t, 3, 2)
	fullMode := ground.DefaultOptions()
	fullMode.Mode = ground.ModeFull
	if _, err := core.NewEngine(prog, core.Config{GoalDirected: true, Ground: fullMode}); err == nil {
		t.Error("GoalDirected with ModeFull accepted")
	}
	fixed := ground.DefaultOptions()
	fixed.Goal = mustQuery(t, "path(c0, X)").Body
	if _, err := core.NewEngine(prog, core.Config{GoalDirected: true, Ground: fixed}); err == nil {
		t.Error("GoalDirected with a fixed Ground.Goal accepted")
	}
}
